/**
 * @file
 * Ablation: device service age vs. burn-in contrast.
 *
 * Figure 6 (factory-new ZCU102) shows ~1 ps/ns contrast; Figure 7
 * (years-old F1 cards) shows ~5-10x less. The paper attributes the
 * gap to fleet age ("it is likely the device is years old, making BTI
 * effects less observable"). This sweep pins the device age and
 * measures the contrast a 200-hour burn leaves on 5 ns routes.
 */

#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "fabric/design.hpp"
#include "fabric/device.hpp"
#include "phys/thermal.hpp"
#include "tdc/tdc.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace pentimento;

namespace {

double
contrastForAge(double age_hours, std::uint64_t seed)
{
    fabric::DeviceConfig config;
    config.service_age_h = age_hours;
    config.seed = seed;
    fabric::Device device(config);
    phys::OvenEnvironment oven(333.15);
    util::Rng rng(seed);

    util::RunningStats contrast;
    for (int r = 0; r < 6; ++r) {
        const fabric::RouteSpec route = device.allocateRoute(
            "r" + std::to_string(r), 5000.0);
        tdc::Tdc sensor(device, route,
                        device.allocateCarryChain(
                            "c" + std::to_string(r), 64));
        sensor.calibrate(oven.dieTempK(), rng);
        const double before =
            sensor.measure(oven.dieTempK(), rng).deltaPs();

        auto design = std::make_shared<fabric::Design>("burn");
        design->setRouteValue(route, r % 2 == 0);
        device.loadDesign(design);
        device.advance(200.0, oven);
        device.wipe();

        const double after =
            sensor.measure(oven.dieTempK(), rng).deltaPs();
        contrast.add(std::abs(after - before));
    }
    return contrast.mean();
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("=== Ablation: device age vs. burn-in contrast "
                "(5 ns routes, 200 h at 60 C) ===\n\n");
    std::printf("  %12s  %14s  %16s\n", "age", "contrast(ps)",
                "vs factory-new");

    struct AgePoint
    {
        const char *label;
        double hours;
    };
    const std::vector<AgePoint> points = {{"new", 0.0},
                                          {"1 year", 8760.0},
                                          {"2 years", 17520.0},
                                          {"4 years", 35040.0}};
    const auto pool = bench::makePool(argc, argv);
    const std::vector<double> contrasts = util::parallelMap<double>(
        points.size(),
        [&](std::size_t i) {
            return contrastForAge(points[i].hours, 42);
        },
        pool.get());
    const double fresh = contrasts[0];
    for (std::size_t i = 0; i < points.size(); ++i) {
        std::printf("  %12s  %14.2f  %15.2fx\n", points[i].label,
                    contrasts[i], contrasts[i] / fresh);
    }

    std::vector<std::vector<std::string>> csv_rows;
    for (std::size_t i = 0; i < points.size(); ++i) {
        csv_rows.push_back(std::vector<std::string>{
            points[i].label, std::to_string(points[i].hours),
            std::to_string(contrasts[i]),
            std::to_string(contrasts[i] / fresh)});
    }
    bench::dumpGridCsv(
        argc, argv, {"age", "age_hours", "contrast_ps", "vs_new"},
        csv_rows);

    std::printf("\nfresh-trap depletion on worn silicon shrinks new "
                "imprints — the Figure 6 vs\nFigure 7 amplitude gap. "
                "Older fleets leak less, but not nothing.\n");
    return 0;
}
