/**
 * @file
 * server_loadgen: concurrent well-formed + adversarial load for
 * campaign_server.
 *
 * Each client thread round-trips `--requests` Ping requests on a
 * persistent connection (the protocol/framing/admission fast path),
 * and every `--adversarial-every`-th iteration also opens a throwaway
 * connection and feeds the server a malformed stream from a rotating
 * corpus — garbage bytes, oversized declared lengths, truncated
 * frames, corrupted CRCs — verifying the server answers with a typed
 * ERROR (or a clean close) and keeps serving the well-formed traffic.
 *
 * Reports sustained requests/s, and the CI-gated inverse form
 * `ns_per_request` (the perf pipeline's kernels are ns/op,
 * lower-is-better).
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "serve/client.hpp"
#include "util/logging.hpp"
#include "util/snapshot.hpp"

using namespace pentimento;

namespace {

void
printUsage(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: server_loadgen --port P [options]\n"
        "  --port P              server port (required)\n"
        "  --clients N           concurrent client threads "
        "(default 4)\n"
        "  --requests N          well-formed requests per client "
        "(default 500)\n"
        "  --adversarial-every K adversarial connection every Kth "
        "request (default 4, 0 = off)\n"
        "one-shot fleet-scan mode (for crash-recovery scripts):\n"
        "  --scan-days N         submit one FleetScan over N days and "
        "print scan_payload_crc\n"
        "  --scan-id N           request id (default 1)\n"
        "  --scan-seed S         campaign seed (default 1717)\n"
        "  --scan-throttle-ms N  pace the campaign (default 0)\n"
        "  --scan-checkpoint-every N  checkpoint cadence in days "
        "(default 0)\n");
}

bool
argsAreKnown(int argc, char **argv)
{
    static const char *kValueFlags[] = {
        "--port",      "--clients",
        "--requests",  "--adversarial-every",
        "--scan-days", "--scan-id",
        "--scan-seed", "--scan-throttle-ms",
        "--scan-checkpoint-every"};
    for (int i = 1; i < argc; ++i) {
        bool known = false;
        for (const char *flag : kValueFlags) {
            if (std::strcmp(argv[i], flag) == 0) {
                if (i + 1 >= argc) {
                    std::fprintf(stderr,
                                 "server_loadgen: missing value for "
                                 "%s\n",
                                 flag);
                    return false;
                }
                ++i;
                known = true;
                break;
            }
        }
        if (!known) {
            std::fprintf(stderr,
                         "server_loadgen: unknown flag '%s'\n",
                         argv[i]);
            return false;
        }
    }
    return true;
}

/** One adversarial connection from the rotating corpus. */
void
attackOnce(std::uint16_t port, unsigned variant,
           std::atomic<std::uint64_t> *survived)
{
    serve::ClientConnection conn;
    if (!conn.connect(port).ok()) {
        return; // server busy accepting; the well-formed path measures
    }
    std::vector<std::uint8_t> bytes;
    switch (variant % 4) {
      case 0: // garbage: wrong magic from the first byte
        bytes = {0xde, 0xad, 0xbe, 0xef, 0x01, 0x02,
                 0x03, 0x04, 0x05, 0x06, 0x07, 0x08};
        break;
      case 1: { // oversized declared payload length
        serve::WireWriter w;
        w.u32(serve::kFrameMagic);
        w.u32(1);           // Request
        w.u32(0x7fffffffu); // 2 GiB "payload"
        bytes = w.take();
        break;
      }
      case 2: { // truncated frame, then half-close mid-request
        const std::vector<std::uint8_t> frame = serve::encodeFrame(
            serve::FrameType::Request, {1, 2, 3, 4, 5, 6, 7, 8});
        bytes.assign(frame.begin(), frame.begin() + 9);
        break;
      }
      default: { // CRC corrupted in a structurally complete frame
        bytes = serve::encodeFrame(serve::FrameType::Request,
                                   {9, 9, 9, 9});
        bytes.back() ^= 0xff;
        break;
      }
    }
    (void)conn.sendRaw(bytes.data(), bytes.size());
    conn.closeWrite();
    // The server must answer (typed ERROR) or close cleanly — either
    // way this read returns promptly instead of hanging.
    (void)conn.readFrame(2000);
    survived->fetch_add(1, std::memory_order_relaxed);
}

/**
 * One-shot fleet-scan mode: submit a single FleetScan request and
 * print a checksum of the RESULT payload *minus* the echoed request
 * id, so crash-recovery scripts can compare runs submitted under
 * different ids. Exit 0 only on a RESULT frame.
 */
int
runScanMode(std::uint16_t port, long days, long id, long seed,
            long throttle_ms, long checkpoint_every)
{
    serve::Request request;
    request.request_id = static_cast<std::uint64_t>(id);
    request.seed = static_cast<std::uint64_t>(seed);
    request.kind = serve::RequestKind::FleetScan;
    request.fleet = 6;
    request.days = static_cast<std::uint32_t>(days);
    request.scan_routes_per_tenant = 2;
    request.max_measured = 2;
    request.throttle_ms_per_day =
        static_cast<std::uint32_t>(throttle_ms);
    request.checkpoint_every_days =
        static_cast<std::uint32_t>(checkpoint_every);

    serve::ClientConnection conn;
    const util::Expected<void> connected = conn.connect(port);
    if (!connected.ok()) {
        std::fprintf(stderr, "scan: %s\n", connected.error().c_str());
        return 1;
    }
    if (!conn.sendFrame(serve::FrameType::Request,
                        serve::encodeRequest(request))
             .ok()) {
        std::fprintf(stderr, "scan: send failed\n");
        return 1;
    }
    // Generous read deadline: a throttled campaign paces itself.
    const util::Expected<serve::Frame> reply = conn.readFrame(600000);
    if (!reply.ok()) {
        std::fprintf(stderr, "scan: %s\n", reply.error().c_str());
        return 1;
    }
    if (reply.value().type != serve::FrameType::Result) {
        std::fprintf(stderr, "scan: got frame type %u, not RESULT\n",
                     static_cast<unsigned>(reply.value().type));
        return 1;
    }
    const std::vector<std::uint8_t> &payload = reply.value().payload;
    if (payload.size() < 8) {
        std::fprintf(stderr, "scan: short RESULT payload\n");
        return 1;
    }
    const std::uint32_t crc =
        util::crc32c(payload.data() + 8, payload.size() - 8);
    std::printf("scan_status ok\n");
    std::printf("scan_payload_bytes %zu\n", payload.size());
    std::printf("scan_payload_crc %08x\n", crc);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (!argsAreKnown(argc, argv)) {
        printUsage(stderr);
        return 2;
    }
    std::uint16_t port = 0;
    long clients = 0;
    long requests = 0;
    long adversarial_every = 0;
    long scan_days = 0;
    long scan_id = 0;
    long scan_seed = 0;
    long scan_throttle_ms = 0;
    long scan_checkpoint_every = 0;
    try {
        port = static_cast<std::uint16_t>(
            bench::parseLongFlag(argc, argv, "--port", 0));
        clients = bench::parseLongFlag(argc, argv, "--clients", 4);
        requests = bench::parseLongFlag(argc, argv, "--requests", 500);
        adversarial_every = bench::parseLongFlag(
            argc, argv, "--adversarial-every", 4, 0);
        scan_days =
            bench::parseLongFlag(argc, argv, "--scan-days", 0, 0);
        scan_id = bench::parseLongFlag(argc, argv, "--scan-id", 1);
        scan_seed =
            bench::parseLongFlag(argc, argv, "--scan-seed", 1717);
        scan_throttle_ms = bench::parseLongFlag(
            argc, argv, "--scan-throttle-ms", 0, 0);
        scan_checkpoint_every = bench::parseLongFlag(
            argc, argv, "--scan-checkpoint-every", 0, 0);
    } catch (const util::FatalError &error) {
        std::fprintf(stderr, "server_loadgen: %s\n", error.what());
        printUsage(stderr);
        return 2;
    }
    if (scan_days > 0) {
        return runScanMode(port, scan_days, scan_id, scan_seed,
                           scan_throttle_ms, scan_checkpoint_every);
    }

    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> failures{0};
    std::atomic<std::uint64_t> adversarial{0};
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    const auto start = std::chrono::steady_clock::now();
    for (long c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            serve::ClientConnection conn;
            if (!conn.connect(port).ok()) {
                failures.fetch_add(static_cast<std::uint64_t>(requests),
                                   std::memory_order_relaxed);
                return;
            }
            for (long i = 0; i < requests; ++i) {
                serve::Request request;
                request.request_id = static_cast<std::uint64_t>(
                    c * 1000000L + i + 1);
                request.seed = 1;
                request.kind = serve::RequestKind::Ping;
                if (!conn.sendFrame(serve::FrameType::Request,
                                    serve::encodeRequest(request))
                         .ok()) {
                    failures.fetch_add(1, std::memory_order_relaxed);
                    break;
                }
                const util::Expected<serve::Frame> reply =
                    conn.readFrame(5000);
                if (!reply.ok() ||
                    reply.value().type != serve::FrameType::Result) {
                    failures.fetch_add(1, std::memory_order_relaxed);
                    continue;
                }
                completed.fetch_add(1, std::memory_order_relaxed);
                if (adversarial_every > 0 &&
                    (i + 1) % adversarial_every == 0) {
                    attackOnce(port,
                               static_cast<unsigned>(c + i),
                               &adversarial);
                }
            }
        });
    }
    for (std::thread &thread : threads) {
        thread.join();
    }
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    const std::uint64_t done = completed.load();
    const double rps = wall_s > 0.0
                           ? static_cast<double>(done) / wall_s
                           : 0.0;
    const double ns_per_request =
        done > 0 ? 1e9 * wall_s / static_cast<double>(done) : 0.0;
    std::printf("clients               %ld\n", clients);
    std::printf("completed             %llu\n",
                static_cast<unsigned long long>(done));
    std::printf("failures              %llu\n",
                static_cast<unsigned long long>(failures.load()));
    std::printf("adversarial probes    %llu\n",
                static_cast<unsigned long long>(adversarial.load()));
    std::printf("wall seconds          %.3f\n", wall_s);
    std::printf("requests_per_second %.1f\n", rps);
    std::printf("ns_per_request %.0f\n", ns_per_request);
    return failures.load() == 0 && done > 0 ? 0 : 1;
}
