#!/usr/bin/env sh
# Measure the campaign server's sustained request throughput and
# distill it into the perf-trajectory snapshot schema: the loadgen's
# ns_per_request (inverse requests/s) becomes a "kernel" so
# check_perf_regression.py can gate it like any other number.
#
# Usage: bench/run_server_bench.sh [build_dir] [out_json]
#
# Starts a throwaway campaign_server on an ephemeral loopback port,
# drives it with mixed well-formed + adversarial traffic, and tears it
# down. Run from the repository root in a Release build.
set -eu

BUILD_DIR=${1:-build}
OUT=${2:-BENCH_pr8.json}
SERVER="$BUILD_DIR/bench/campaign_server"
LOADGEN="$BUILD_DIR/bench/server_loadgen"

for bin in "$SERVER" "$LOADGEN"; do
    if [ ! -x "$bin" ]; then
        echo "run_server_bench: $bin not found (build the bench tree)" >&2
        exit 1
    fi
done

LOG=$(mktemp)
RAW=$(mktemp)
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill -TERM "$SERVER_PID" 2>/dev/null && \
        wait "$SERVER_PID" 2>/dev/null
    rm -f "$LOG" "$RAW"
}
trap cleanup EXIT

"$SERVER" --port 0 --executors 2 >"$LOG" 2>&1 &
SERVER_PID=$!
PORT=""
i=0
while [ $i -lt 100 ]; do
    PORT=$(sed -n 's/.*listening on port \([0-9]*\).*/\1/p' "$LOG")
    [ -n "$PORT" ] && break
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$PORT" ]; then
    echo "run_server_bench: server did not report a port" >&2
    cat "$LOG" >&2
    exit 1
fi

# No pipeline here: the loadgen's exit code (nonzero on ANY failed
# request) must propagate through `set -e`.
"$LOADGEN" --port "$PORT" --clients 4 --requests 500 \
    --adversarial-every 4 >"$RAW"
cat "$RAW"

python3 - "$RAW" "$OUT" <<'EOF'
import json
import sys

raw_path, out_path = sys.argv[1], sys.argv[2]
ns = None
with open(raw_path) as f:
    for line in f:
        if line.startswith("ns_per_request"):
            ns = float(line.split()[1])
if ns is None or ns <= 0:
    raise SystemExit("run_server_bench: no ns_per_request in loadgen "
                     "output — did the load run fail?")

out = {
    "schema": "pentimento-microbench-v1",
    "unit": "ns/op",
    "kernels": {"ServerPingRoundTrip": round(ns, 1)},
}
with open(out_path, "w") as f:
    json.dump(out, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path} (ServerPingRoundTrip = {ns:.0f} ns/request)")
EOF
