/**
 * @file
 * Ablation: static vs. dynamic data.
 *
 * The attack's necessary condition is that the sensitive value "is
 * statically held in the FPGA resources" (paper §2); §8.1's first
 * mitigation is "do not allow sensitive data to sit unchanged". This
 * sweep varies how statically a route holds its value — from pinned
 * (100% dwell) down to fully balanced toggling — and measures the
 * surviving polarity contrast.
 */

#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "fabric/design.hpp"
#include "fabric/device.hpp"
#include "phys/thermal.hpp"
#include "tdc/tdc.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace pentimento;

namespace {

/**
 * Mean polarity contrast after burning 8 routes whose value dwells at
 * the secret bit for `dwell` of the time and at its complement for
 * the rest.
 */
double
contrastAtDwell(double dwell, std::uint64_t seed)
{
    fabric::Device device{fabric::DeviceConfig{}};
    phys::OvenEnvironment oven(333.15);
    util::Rng rng(seed);

    const int bits = 8;
    std::vector<fabric::RouteSpec> routes;
    std::vector<bool> secret;
    std::vector<tdc::Tdc> sensors;
    std::vector<double> before;
    for (int b = 0; b < bits; ++b) {
        routes.push_back(
            device.allocateRoute("r" + std::to_string(b), 5000.0));
        secret.push_back(b % 2 == 0);
        sensors.emplace_back(device, routes.back(),
                             device.allocateCarryChain(
                                 "c" + std::to_string(b), 64));
        sensors.back().calibrate(oven.dieTempK(), rng);
        before.push_back(
            sensors.back().measure(oven.dieTempK(), rng).deltaPs());
    }

    auto design = std::make_shared<fabric::Design>("burn");
    for (int b = 0; b < bits; ++b) {
        // duty_one = probability of the line sitting at 1: a secret 1
        // dwelling at `dwell` spends dwell of the time at 1.
        const double duty =
            secret[static_cast<std::size_t>(b)] ? dwell : 1.0 - dwell;
        design->setRouteToggling(routes[static_cast<std::size_t>(b)],
                                 duty);
    }
    device.loadDesign(design);
    device.advance(150.0, oven);
    device.wipe();

    // Signed contrast toward the secret value.
    util::RunningStats contrast;
    for (int b = 0; b < bits; ++b) {
        const double drift =
            sensors[static_cast<std::size_t>(b)]
                .measure(oven.dieTempK(), rng)
                .deltaPs() -
            before[static_cast<std::size_t>(b)];
        contrast.add(secret[static_cast<std::size_t>(b)] ? drift
                                                         : -drift);
    }
    return contrast.mean();
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("=== Ablation: data dwell time vs. pentimento "
                "contrast ===\n");
    std::printf("(8 bits on 5 ns routes, 150 h at 60 C; dwell = "
                "fraction of time the route\nactually carries the "
                "secret value)\n\n");
    std::printf("  %8s  %20s\n", "dwell", "signed contrast (ps)");
    const std::vector<double> dwells = {1.0, 0.9, 0.75, 0.6, 0.5};
    const auto pool = bench::makePool(argc, argv);
    const std::vector<double> contrasts = util::parallelMap<double>(
        dwells.size(),
        [&](std::size_t i) { return contrastAtDwell(dwells[i], 99); },
        pool.get());
    for (std::size_t i = 0; i < dwells.size(); ++i) {
        std::printf("  %7.0f%%  %20.3f\n", 100.0 * dwells[i],
                    contrasts[i]);
    }
    std::vector<std::vector<std::string>> csv_rows;
    for (std::size_t i = 0; i < dwells.size(); ++i) {
        csv_rows.push_back(std::vector<std::string>{
            std::to_string(dwells[i]), std::to_string(contrasts[i])});
    }
    bench::dumpGridCsv(argc, argv, {"dwell", "signed_contrast_ps"},
                       csv_rows);

    std::printf("\nthe imprint scales with the dwell *imbalance* and "
                "dies at 50/50 — periodic\ninversion and balanced "
                "encodings (paper 8.1) work by driving exactly this\n"
                "number to zero.\n");
    return 0;
}
