/**
 * @file
 * Fleet-scale persistence campaign (the workload PR 3 unlocks).
 *
 * A marketplace region of 112 boards runs a simulated year of
 * interleaved tenancies: tenants rent boards, burn their secrets for
 * days at a time, release; the pool idles, is re-rented, idles again.
 * At the end a TM2 attacker flash-acquires a handful of recently
 * released boards (≤ 8) and runs the paper's park-and-watch recovery
 * attack against whatever the last tenant left behind — the
 * persistence scan across rented boards that "Security Risks Due to
 * Data Persistence in Cloud FPGA Platforms" (Zhang et al.) performs
 * on real hardware.
 *
 * The campaign engine itself lives in serve/campaign (shared with the
 * campaign server); this binary is the CLI. It runs the scenario in
 * one of two ways:
 *
 *  - **In-process** (default): serve::runFleetScan in golden-compat
 *    mode — the exact historical draw sequence this bench has always
 *    produced, locked by the committed golden CSV. Crash-safe
 *    checkpointing (PR 7): `--checkpoint-every N` writes a rotating
 *    two-generation snapshot every N simulated days; `--resume`
 *    continues from the latest good generation; `--halt-at-day D`
 *    exits cleanly after day D (the kill half of the CI
 *    kill-and-resume stress). SIGINT/SIGTERM flush a final checkpoint
 *    at the next day boundary and exit 128+sig.
 *
 *  - **Sharded** (PR 9): `--shards N` partitions the TM2 scan across
 *    N campaign_server worker *processes* under serve/shard's
 *    fault-tolerant supervisor — crashed, killed or wedged workers
 *    are respawned and resume from their per-shard checkpoints, and
 *    the merged CSV is byte-identical to the in-process run
 *    regardless of shard count, worker deaths or retry order.
 *    `--fault-schedule S` arms util/fault's deterministic
 *    fault-injection schedule here and (via the environment) in every
 *    worker.
 *
 * `--fleet N` and `--years Y` rescale the region and the simulated
 * horizon so the scaling claims are reproducible at other sizes;
 * `--seed S` re-rolls the tenancy/ambient sample paths. The recovery
 * rate is a high-variance statistic at these deliberately marginal
 * conditions (service-aged silicon, short tenancies, 25 h of
 * observation): across nearby seeds it spans roughly 50-85%, and the
 * default seed is chosen to sit near the middle of that range.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "serve/campaign.hpp"
#include "serve/shard.hpp"
#include "util/expected.hpp"
#include "util/fault.hpp"
#include "util/logging.hpp"

using namespace pentimento;

namespace {

constexpr std::size_t kDefaultFleet = 112;
constexpr int kDefaultYears = 1;
constexpr std::uint64_t kDefaultSeed = 90902;
constexpr std::size_t kRoutesPerTenant = 8;
constexpr std::size_t kMaxMeasured = 8;
constexpr const char *kDefaultCheckpointPath = "fleet_campaign.ckpt";

/**
 * Last delivery-requested signal, observed by the day loop. SIGINT or
 * SIGTERM does not abandon the campaign: the loop finishes the current
 * day, writes a final checkpoint, and exits 128+sig — an interrupted
 * campaign is ALWAYS `--resume`-able.
 */
std::atomic<int> g_signal{0};

void
onSignal(int sig)
{
    g_signal.store(sig, std::memory_order_relaxed);
}

/** Day-boundary hook: cancels the engine once a signal is pending. */
class SignalObserver final : public core::SweepObserver
{
  public:
    explicit SignalObserver(int days) : days_(days) {}

    bool
    onSweep(std::size_t day, double, const double *,
            std::size_t) override
    {
        last_day_ = static_cast<int>(day);
        sig_ = g_signal.load(std::memory_order_relaxed);
        return sig_ == 0 || last_day_ >= days_;
    }

    int lastDay() const { return last_day_; }
    int signalNumber() const { return sig_; }

  private:
    int days_ = 0;
    int last_day_ = 0;
    int sig_ = 0;
};

// --------------------------------------------------- CLI validation

void
printUsage(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: fleet_campaign [options]\n"
        "  --fleet N             boards in the region (default %zu)\n"
        "  --years N             simulated years (default %d)\n"
        "  --seed S              campaign seed (default %llu)\n"
        "  --workers N           parallel lanes for the scan phase\n"
        "  --csv PATH            write per-board attack scores as CSV\n"
        "  --journal-stress      daily burn rotations + coverage check\n"
        "  --checkpoint-every N  checkpoint every N simulated days\n"
        "  --checkpoint-path P   checkpoint file (default %s)\n"
        "  --resume              continue from the latest good "
        "checkpoint\n"
        "  --halt-at-day D       exit cleanly after day D (pairs with "
        "--resume)\n"
        "  --day-sleep-ms N      throttle each simulated day (signal "
        "tests)\n"
        "  --shards N            fan the scan out across N worker "
        "processes\n"
        "  --worker-binary P     campaign_server binary for --shards\n"
        "  --fault-schedule S    arm a deterministic fault schedule\n"
        "  --bram                run the BRAM content-remanence "
        "channel too\n"
        "  --bram-scrub P        provider scrub policy: none | "
        "release | rent\n",
        kDefaultFleet, kDefaultYears,
        static_cast<unsigned long long>(kDefaultSeed),
        kDefaultCheckpointPath);
}

/**
 * Whitelist scan: every argument must be a known flag, with its value
 * present when one is required. Anything else is a usage error — a
 * typoed scaling flag silently ignored would misattribute numbers.
 */
bool
argsAreKnown(int argc, char **argv)
{
    static const char *kValueFlags[] = {
        "--fleet",   "--years", "--seed",
        "--workers", "--csv",   "--checkpoint-every",
        "--checkpoint-path",    "--halt-at-day",
        "--day-sleep-ms",       "--shards",
        "--worker-binary",      "--fault-schedule",
        "--bram-scrub"};
    static const char *kBareFlags[] = {"--journal-stress", "--resume",
                                       "--bram"};
    for (int i = 1; i < argc; ++i) {
        bool known = false;
        for (const char *flag : kValueFlags) {
            if (std::strcmp(argv[i], flag) == 0) {
                if (i + 1 >= argc) {
                    std::fprintf(stderr,
                                 "fleet_campaign: missing value for "
                                 "%s\n",
                                 flag);
                    return false;
                }
                ++i;
                known = true;
                break;
            }
        }
        for (const char *flag : kBareFlags) {
            if (!known && std::strcmp(argv[i], flag) == 0) {
                known = true;
                break;
            }
        }
        if (!known) {
            std::fprintf(stderr, "fleet_campaign: unknown flag '%s'\n",
                         argv[i]);
            return false;
        }
    }
    return true;
}

const char *
parseStringFlag(int argc, char **argv, const char *flag,
                const char *fallback)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0) {
            return argv[i + 1];
        }
    }
    return fallback;
}

// ------------------------------------------------------------ report

/**
 * BRAM-channel report, stdout only: the CSV grid keeps its historical
 * aging-channel columns so the committed golden stays byte-exact even
 * under --bram.
 */
void
printBramSummary(const serve::FleetScanResult &result)
{
    std::printf("\n  BRAM channel          %zu provider scrubs\n",
                static_cast<std::size_t>(result.bram_scrub_ops));
    std::printf("  %-12s %8s %10s %8s %8s %9s\n", "board", "blocks",
                "recovered", "decayed", "zeroed", "teardown");
    std::size_t blocks = 0;
    std::size_t recovered = 0;
    for (const serve::FleetScanBramScore &s : result.bram_boards) {
        std::printf("  %-12s %8zu %10zu %8zu %8zu %9s\n",
                    s.board.c_str(),
                    static_cast<std::size_t>(s.blocks),
                    static_cast<std::size_t>(s.recovered),
                    static_cast<std::size_t>(s.decayed),
                    static_cast<std::size_t>(s.zeroed),
                    s.unclean ? "unclean" : "clean");
        blocks += s.blocks;
        recovered += s.recovered;
    }
    if (blocks > 0) {
        std::printf("  %-12s %8zu %9.1f%%\n", "overall", blocks,
                    100.0 * static_cast<double>(recovered) /
                        static_cast<double>(blocks));
    }
}

void
printSummary(const serve::FleetScanResult &result, std::size_t fleet,
             bool journal_stress, double wall_s, int argc, char **argv)
{
    std::printf("  fleet                 %zu boards\n", fleet);
    std::printf("  simulated             %.0f h (%.1f board-years)\n",
                result.simulated_h,
                result.simulated_h * static_cast<double>(fleet) /
                    8760.0);
    std::printf("  tenancies             %zu\n",
                static_cast<std::size_t>(result.tenancies));
    std::printf("  boards measured       %zu (+%zu virgin skipped)\n\n",
                result.boards.size(),
                static_cast<std::size_t>(result.skipped));

    std::printf("  %-12s %8s %10s\n", "board", "bits", "recovered");
    std::size_t bits = 0;
    std::size_t correct = 0;
    std::vector<std::vector<std::string>> rows;
    for (const serve::FleetScanBoardScore &s : result.boards) {
        std::printf("  %-12s %8zu %9.1f%%\n", s.board.c_str(),
                    static_cast<std::size_t>(s.bits),
                    100.0 * s.accuracy);
        bits += s.bits;
        correct += s.correct;
        rows.push_back({s.board, std::to_string(s.bits),
                        std::to_string(s.correct),
                        std::to_string(s.accuracy)});
    }
    if (bits > 0) {
        std::printf("  %-12s %8zu %9.1f%%\n", "overall", bits,
                    100.0 * static_cast<double>(correct) /
                        static_cast<double>(bits));
    }
    if (journal_stress) {
        std::printf("\n  journal stress        %zu deferred elements "
                    "replayed across %zu boards, coverage exact\n",
                    static_cast<std::size_t>(result.stress_elements),
                    static_cast<std::size_t>(result.stress_boards));
    }
    if (!result.bram_boards.empty()) {
        printBramSummary(result);
    }
    std::printf("\n  wall clock            %.2f s (%.0f simulated "
                "board-hours per ms)\n",
                wall_s,
                result.simulated_h * static_cast<double>(fleet) /
                    (1000.0 * wall_s));
    bench::dumpGridCsv(argc, argv,
                       {"board", "bits", "correct", "accuracy"}, rows);
}

} // namespace

int
main(int argc, char **argv)
{
    if (!argsAreKnown(argc, argv)) {
        printUsage(stderr);
        return 2;
    }
    std::size_t kFleet = 0;
    int kDays = 0;
    std::uint64_t seed = 0;
    long checkpoint_every = 0;
    long halt_at_day = 0;
    long day_sleep_ms = 0;
    long shards = 0;
    std::string checkpoint_path;
    try {
        kFleet = static_cast<std::size_t>(
            bench::parseLongFlag(argc, argv, "--fleet", kDefaultFleet));
        kDays = 365 * static_cast<int>(bench::parseLongFlag(
                          argc, argv, "--years", kDefaultYears));
        // Seed 0 is a legal Rng seed, so the floor is 0 here.
        seed = static_cast<std::uint64_t>(bench::parseLongFlag(
            argc, argv, "--seed", static_cast<long>(kDefaultSeed), 0));
        checkpoint_every =
            bench::parseLongFlag(argc, argv, "--checkpoint-every", 0);
        halt_at_day =
            bench::parseLongFlag(argc, argv, "--halt-at-day", 0);
        day_sleep_ms =
            bench::parseLongFlag(argc, argv, "--day-sleep-ms", 0, 0);
        shards = bench::parseLongFlag(argc, argv, "--shards", 0, 0);
        checkpoint_path = parseStringFlag(
            argc, argv, "--checkpoint-path", kDefaultCheckpointPath);
    } catch (const util::FatalError &error) {
        std::fprintf(stderr, "fleet_campaign: %s\n", error.what());
        printUsage(stderr);
        return 2;
    }
    // --journal-stress exercises the activity journal at fleet scale:
    // every active tenancy rotates its burn values daily (in-place
    // design mutations, journaled as O(1) flips on unobserved
    // boards), and after the scan the unmeasured boards' deferred
    // populations are force-materialised and cross-checked against
    // the imprinted listing. Perturbs the aging histories, so the
    // committed CSV golden only applies without the flag.
    const bool journal_stress =
        bench::hasFlag(argc, argv, "--journal-stress");
    const bool resume = bench::hasFlag(argc, argv, "--resume");
    if (shards > 0 && (journal_stress || resume || halt_at_day > 0)) {
        std::fprintf(stderr,
                     "fleet_campaign: --shards cannot be combined "
                     "with --journal-stress/--resume/--halt-at-day "
                     "(workers checkpoint and resume on their own)\n");
        printUsage(stderr);
        return 2;
    }
    const bool bram = bench::hasFlag(argc, argv, "--bram");
    const std::string bram_scrub_name =
        parseStringFlag(argc, argv, "--bram-scrub", "none");
    cloud::BramScrubPolicy bram_scrub = cloud::BramScrubPolicy::None;
    if (bram_scrub_name == "release") {
        bram_scrub = cloud::BramScrubPolicy::ZeroOnRelease;
    } else if (bram_scrub_name == "rent") {
        bram_scrub = cloud::BramScrubPolicy::ZeroOnRent;
    } else if (bram_scrub_name != "none") {
        std::fprintf(stderr,
                     "fleet_campaign: unknown --bram-scrub policy "
                     "'%s'\n",
                     bram_scrub_name.c_str());
        printUsage(stderr);
        return 2;
    }
    if (shards > 0 &&
        (bram || bram_scrub != cloud::BramScrubPolicy::None)) {
        // The per-board BRAM readouts are local-run bookkeeping, not
        // part of the worker wire protocol, so a sharded run could
        // not merge them.
        std::fprintf(stderr,
                     "fleet_campaign: --shards cannot be combined "
                     "with --bram/--bram-scrub\n");
        printUsage(stderr);
        return 2;
    }
    const char *fault_schedule =
        parseStringFlag(argc, argv, "--fault-schedule", "");
    if (fault_schedule[0] != '\0') {
        // Through the environment so spawned shard workers inherit
        // the same schedule (each point draws from its own stream, so
        // sharing the spec is safe).
        ::setenv("PENTIMENTO_FAULTS", fault_schedule, 1);
    }
    const util::Expected<void> armed = util::fault::armFromEnv();
    if (!armed.ok()) {
        std::fprintf(stderr, "fleet_campaign: %s\n",
                     armed.error().c_str());
        return 1;
    }

    std::printf("=== Fleet campaign: %zu boards, %d simulated days, "
                "TM2 scan of <= %zu boards ===\n\n",
                kFleet, kDays, kMaxMeasured);
    const auto wall_start = std::chrono::steady_clock::now();

    // ---- sharded: supervisor over campaign_server workers ---------
    if (shards > 0) {
        std::string worker_binary =
            parseStringFlag(argc, argv, "--worker-binary", "");
        if (worker_binary.empty()) {
            const std::string self = argv[0];
            const std::size_t slash = self.rfind('/');
            worker_binary =
                slash == std::string::npos
                    ? std::string("./campaign_server")
                    : self.substr(0, slash + 1) + "campaign_server";
        }
        serve::ShardSupervisorConfig supervisor;
        supervisor.worker_binary = std::move(worker_binary);
        supervisor.checkpoint_dir = checkpoint_path + ".shards";
        supervisor.shard_count = static_cast<std::uint32_t>(shards);
        supervisor.backoff_seed = seed;
        supervisor.request.kind = serve::RequestKind::FleetScan;
        supervisor.request.seed = seed;
        supervisor.request.deadline_ms = 300000;
        supervisor.request.flags = serve::kFlagGoldenCampaign;
        supervisor.request.fleet = static_cast<std::uint32_t>(kFleet);
        supervisor.request.days = static_cast<std::uint32_t>(kDays);
        supervisor.request.scan_routes_per_tenant =
            static_cast<std::uint32_t>(kRoutesPerTenant);
        supervisor.request.max_measured =
            static_cast<std::uint32_t>(kMaxMeasured);
        supervisor.request.checkpoint_every_days =
            static_cast<std::uint32_t>(checkpoint_every);
        supervisor.request.throttle_ms_per_day =
            static_cast<std::uint32_t>(day_sleep_ms);

        const util::Expected<serve::ShardedScanResult> run =
            serve::runShardedFleetScan(supervisor);
        if (!run.ok()) {
            std::fprintf(stderr, "fleet_campaign: %s\n",
                         run.error().c_str());
            return 1;
        }
        std::uint32_t attempts = 0;
        std::uint32_t spawned = 0;
        for (const serve::ShardOutcome &shard : run.value().shards) {
            attempts += shard.attempts;
            spawned += shard.workers_spawned;
        }
        std::printf("  shards                %zu workers (%u attempts, "
                    "%u processes spawned)\n",
                    run.value().shards.size(), attempts, spawned);
        const double wall_s =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - wall_start)
                .count();
        printSummary(run.value().merged, kFleet, false, wall_s, argc,
                     argv);
        return 0;
    }

    // ---- in-process: the engine in golden-compat mode -------------
    serve::FleetScanConfig config;
    config.fleet = kFleet;
    config.days = kDays;
    config.seed = seed;
    config.routes_per_tenant = kRoutesPerTenant;
    config.max_measured = kMaxMeasured;
    config.checkpoint_every_days = static_cast<int>(checkpoint_every);
    config.checkpoint_path = checkpoint_path;
    config.throttle_ms_per_day =
        static_cast<std::uint32_t>(day_sleep_ms);
    // --resume is a promise, not a hint: if both generations are bad,
    // fail rather than silently redo the year.
    config.resume = resume ? serve::ResumeMode::Require
                           : serve::ResumeMode::Never;
    // This bench's historical draw sequence (fixed driver stream,
    // "tenant_" naming) is locked by the committed golden CSV.
    config.golden_compat = true;
    config.journal_stress = journal_stress;
    config.bram_channel = bram;
    config.bram_scrub = bram_scrub;
    config.halt_at_day = static_cast<int>(halt_at_day);
    const auto pool = bench::makePool(argc, argv);
    config.pool = pool.get();
    SignalObserver observer(kDays);
    config.observer = &observer;
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    serve::FleetScanResult result;
    try {
        util::Expected<serve::FleetScanResult> run =
            serve::runFleetScan(config);
        if (!run.ok()) {
            std::fprintf(stderr, "fleet_campaign: %s\n",
                         run.error().c_str());
            return 1;
        }
        result = std::move(run.value());
    } catch (const util::CancelledError &) {
        std::fprintf(stderr,
                     "fleet_campaign: signal %d after day %d; "
                     "checkpoint written to %s (resume with "
                     "--resume)\n",
                     observer.signalNumber(), observer.lastDay(),
                     checkpoint_path.c_str());
        return 128 + observer.signalNumber();
    }
    if (!result.resumed_from.empty()) {
        std::printf("  resumed from %s at day %d (%zu finished, "
                    "%zu active tenancies)\n\n",
                    result.resumed_from.c_str(), result.resumed_day,
                    static_cast<std::size_t>(result.resumed_finished),
                    static_cast<std::size_t>(result.resumed_active));
    }
    if (result.halted_after_day > 0) {
        std::printf("  halted after day %d; checkpoint written to %s "
                    "(resume with --resume)\n",
                    result.halted_after_day, checkpoint_path.c_str());
        return 0;
    }
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    printSummary(result, kFleet, journal_stress, wall_s, argc, argv);
    return 0;
}
