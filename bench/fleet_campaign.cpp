/**
 * @file
 * Fleet-scale persistence campaign (the workload PR 3 unlocks).
 *
 * A marketplace region of 112 boards runs a simulated year of
 * interleaved tenancies: tenants rent boards, burn their secrets for
 * days at a time, release; the pool idles, is re-rented, idles again.
 * At the end a TM2 attacker flash-acquires a handful of recently
 * released boards (≤ 8) and runs the paper's park-and-watch recovery
 * attack against whatever the last tenant left behind — the
 * persistence scan across rented boards that "Security Risks Due to
 * Data Persistence in Cloud FPGA Platforms" (Zhang et al.) performs
 * on real hardware.
 *
 * Under eager per-hour aging this scenario costs
 * O(board-hours x elements) — a year across 112 boards was
 * intractable. With the segment timeline every unobserved board-hour
 * is O(1) bookkeeping and elements only materialise their BTI state
 * when the attacker's TDC actually binds them; the event-driven
 * ambient (PR 4) defers even the idle boards' temperature walk, so
 * the campaign is bounded by the ≤ 8 measured boards and completes in
 * a fraction of a second.
 *
 * `--fleet N` and `--years Y` rescale the region and the simulated
 * horizon so the scaling claims are reproducible at other sizes;
 * `--seed S` re-rolls the tenancy/ambient sample paths. The recovery
 * rate is a high-variance statistic at these deliberately marginal
 * conditions (service-aged silicon, short tenancies, 25 h of
 * observation): across nearby seeds it spans roughly 50-85%, and the
 * default seed is chosen to sit near the middle of that range.
 */

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cloud/platform.hpp"
#include "core/classifier.hpp"
#include "core/experiment.hpp"
#include "tdc/measure_design.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

using namespace pentimento;

namespace {

constexpr std::size_t kDefaultFleet = 112;
constexpr int kDefaultYears = 1;
constexpr std::uint64_t kDefaultSeed = 90902;
constexpr std::size_t kRoutesPerTenant = 8;
constexpr double kRouteTargetPs = 2000.0;
constexpr std::size_t kMaxMeasured = 8;
constexpr double kRecoveryHours = 25.0;

/** One completed tenancy: what the attacker would need to know. */
struct Tenancy
{
    std::string board;
    std::vector<fabric::RouteSpec> specs;
    std::vector<bool> bits;
    double released_at_h = 0.0;
};

/** Attack result for one measured board. */
struct BoardScore
{
    std::string board;
    std::size_t bits = 0;
    std::size_t correct = 0;
    double accuracy = 0.0;
};

/**
 * TM2 park-and-watch on one re-acquired board: calibrate at takeover,
 * park the victim's routes at 0, record 25 hourly sweeps, classify
 * the recovery slopes.
 */
BoardScore
attackBoard(cloud::CloudPlatform &platform, const std::string &board_id,
            const Tenancy &tenancy, util::ThreadPool *pool)
{
    cloud::FpgaInstance &inst = platform.instance(board_id);
    fabric::Device &device = inst.device();
    device.setWorkPool(pool);

    // Fast sampling: the campaign is measurement-bound, and its
    // accuracy statistics are seed-sweep-equivalent between the exact
    // and fast sampling paths (see tdc_test's FastSampling battery).
    // Deliberate sample-path re-roll, PR-4 style: the committed golden
    // CSV is recorded from this configuration.
    tdc::TdcConfig sensor_config;
    sensor_config.fast_sampling = true;
    auto measure = std::make_shared<tdc::MeasureDesign>(
        device, tenancy.specs, sensor_config);
    if (!platform.loadDesign(board_id, measure).empty()) {
        util::fatal("fleet_campaign: measure design failed DRC");
    }
    measure->calibrateAll(inst.dieTempK(), inst.rng(), pool);

    auto park = std::make_shared<fabric::Design>("park0_" + board_id);
    for (const fabric::RouteSpec &spec : tenancy.specs) {
        park->setRouteValue(spec, false);
    }
    park->setPowerW(2.0);

    std::vector<core::RouteRecord> records(tenancy.specs.size());
    std::vector<core::DeltaSeries> series(tenancy.specs.size());
    double observed = 0.0;
    const auto sweepNow = [&](double hour) {
        if (!platform.loadDesign(board_id, measure).empty()) {
            util::fatal("fleet_campaign: measure design failed DRC");
        }
        platform.advanceHours(core::kMeasureSettleHours);
        const tdc::MeasurementSweep sweep =
            measure->measureAll(inst.dieTempK(), inst.rng(), pool);
        for (std::size_t i = 0; i < series.size(); ++i) {
            series[i].addPoint(hour, sweep.per_route[i].deltaPs());
        }
    };
    sweepNow(0.0);
    while (observed < kRecoveryHours - 1e-9) {
        if (!platform.loadDesign(board_id, park).empty()) {
            util::fatal("fleet_campaign: park design failed DRC");
        }
        platform.advanceHours(1.0 - core::kMeasureSettleHours);
        observed += 1.0;
        sweepNow(observed);
    }

    core::ExperimentResult result;
    for (std::size_t i = 0; i < tenancy.specs.size(); ++i) {
        records[i].name = tenancy.specs[i].name;
        records[i].target_ps = tenancy.specs[i].target_ps;
        records[i].burn_value = tenancy.bits[i];
        records[i].series = series[i].centeredAtFirst();
        result.routes.push_back(records[i]);
    }
    const core::ClassificationReport report =
        core::ThreatModel2Classifier().classify(result);

    platform.release(board_id);
    device.setWorkPool(nullptr);
    BoardScore score;
    score.board = board_id;
    score.bits = report.bits.size();
    score.correct = report.correct;
    score.accuracy = report.accuracy;
    return score;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto kFleet = static_cast<std::size_t>(
        bench::parseLongFlag(argc, argv, "--fleet", kDefaultFleet));
    const int kDays =
        365 * static_cast<int>(bench::parseLongFlag(argc, argv,
                                                    "--years",
                                                    kDefaultYears));
    // Seed 0 is a legal Rng seed, so the floor is 0 here.
    const auto seed = static_cast<std::uint64_t>(bench::parseLongFlag(
        argc, argv, "--seed", static_cast<long>(kDefaultSeed), 0));
    // --journal-stress exercises the activity journal at fleet scale:
    // every active tenancy rotates its burn values daily (in-place
    // design mutations, journaled as O(1) flips on unobserved
    // boards), and after the scan the unmeasured boards' deferred
    // populations are force-materialised and cross-checked against
    // the imprinted listing. Perturbs the aging histories, so the
    // committed CSV golden only applies without the flag.
    const bool journal_stress =
        bench::hasFlag(argc, argv, "--journal-stress");
    std::printf("=== Fleet campaign: %zu boards, %d simulated days, "
                "TM2 scan of <= %zu boards ===\n\n",
                kFleet, kDays, kMaxMeasured);
    const auto wall_start = std::chrono::steady_clock::now();

    cloud::PlatformConfig config;
    config.fleet_size = kFleet;
    config.region = "fleet-sim";
    config.policy = cloud::AllocationPolicy::MostRecentlyReleased;
    config.seed = seed;
    cloud::CloudPlatform platform(config);

    util::Rng rng(424261);
    struct Active
    {
        std::string board;
        double ends_at_h;
        Tenancy record;
        /** Kept only under --journal-stress, for daily burn-value
         *  rotations. */
        std::shared_ptr<fabric::TargetDesign> target;
    };
    std::vector<Active> active;
    std::vector<Tenancy> finished;

    // A year of interleaved tenancies in daily ticks: aim for about a
    // third of the region rented at any time, each tenancy burning a
    // random word on its own freshly allocated routes for 2-14 days.
    for (int day = 0; day < kDays; ++day) {
        const double now = platform.nowHours();
        for (std::size_t i = active.size(); i-- > 0;) {
            if (active[i].ends_at_h <= now) {
                active[i].record.released_at_h = now;
                platform.release(active[i].board);
                finished.push_back(std::move(active[i].record));
                active.erase(active.begin() +
                             static_cast<std::ptrdiff_t>(i));
            }
        }
        while (active.size() < kFleet / 3 && rng.bernoulli(0.35)) {
            const auto board = platform.rent();
            if (!board) {
                break;
            }
            fabric::Device &device =
                platform.instance(*board).device();
            Tenancy tenancy;
            tenancy.board = *board;
            for (std::size_t r = 0; r < kRoutesPerTenant; ++r) {
                tenancy.specs.push_back(device.allocateRoute(
                    *board + "_d" + std::to_string(day) + "_r" +
                        std::to_string(r),
                    kRouteTargetPs));
                tenancy.bits.push_back(rng.bernoulli(0.5));
            }
            fabric::ArithmeticHeavyConfig arith;
            arith.dsp_count = 128;
            auto target = std::make_shared<fabric::TargetDesign>(
                "tenant_" + *board + "_d" + std::to_string(day),
                tenancy.specs, tenancy.bits, arith);
            if (!platform.loadDesign(*board, target).empty()) {
                util::fatal("fleet_campaign: tenant design failed DRC");
            }
            const double duration_h =
                24.0 * static_cast<double>(rng.uniformInt(2, 14));
            active.push_back(Active{*board, now + duration_h,
                                    std::move(tenancy),
                                    journal_stress ? target : nullptr});
        }
        if (journal_stress) {
            // Daily inversion-mitigation-style rotation on every
            // active tenancy: in-place mutations the devices fold in
            // as journal flips at the next advance.
            for (Active &a : active) {
                for (std::size_t i = 0; i < a.record.bits.size();
                     ++i) {
                    a.target->setBurnValue(
                        i, (day % 2 == 0) == a.record.bits[i]);
                }
            }
        }
        platform.advanceHours(24.0);
    }
    // Wind down: everyone still computing releases now.
    for (Active &a : active) {
        a.record.released_at_h = platform.nowHours();
        platform.release(a.board);
        finished.push_back(std::move(a.record));
    }
    active.clear();
    const double simulated_h = platform.nowHours();

    // ---- TM2 persistence scan -------------------------------------
    // Flash-acquire recently released boards (LIFO policy) and attack
    // the most recent tenancy on each.
    const auto pool = bench::makePool(argc, argv);
    std::vector<std::pair<std::string, const Tenancy *>> targets;
    std::vector<std::string> skipped;
    while (targets.size() < kMaxMeasured) {
        // Acquire first, attack later: releasing mid-scan would hand
        // the LIFO scheduler the same board straight back.
        const auto board = platform.rent();
        if (!board) {
            break;
        }
        const Tenancy *last = nullptr;
        for (const Tenancy &t : finished) {
            if (t.board == *board &&
                (last == nullptr ||
                 t.released_at_h > last->released_at_h)) {
                last = &t;
            }
        }
        if (last == nullptr) {
            skipped.push_back(*board); // virgin stock: nothing to scan
            continue;
        }
        targets.emplace_back(*board, last);
    }
    std::vector<BoardScore> scores;
    scores.reserve(targets.size());
    for (const auto &[board, tenancy] : targets) {
        scores.push_back(
            attackBoard(platform, board, *tenancy, pool.get()));
    }
    for (const std::string &board : skipped) {
        platform.release(board);
    }

    // ---- journal coverage check (--journal-stress) ----------------
    // Force-materialise every board's deferred population and verify
    // it converges exactly to the imprinted listing: a year of
    // journaled tenancies (with daily mitigation flips) must replay
    // without losing or inventing a single element.
    std::size_t stress_boards = 0;
    std::size_t stress_elements = 0;
    if (journal_stress) {
        for (const std::string &id : platform.allInstanceIds()) {
            fabric::Device &device = platform.instance(id).device();
            const std::size_t deferred = device.journaledKeyCount();
            if (deferred == 0) {
                continue;
            }
            const std::vector<fabric::ResourceId> imprinted =
                device.imprintedIds();
            for (const fabric::ResourceId &rid : imprinted) {
                (void)device.element(rid); // materialise + replay
            }
            const std::vector<fabric::ResourceId> materialized =
                device.materializedIds();
            bool converged =
                device.journaledKeyCount() == 0 &&
                materialized.size() == imprinted.size();
            for (std::size_t i = 0; converged && i < imprinted.size();
                 ++i) {
                converged = materialized[i].key() == imprinted[i].key();
            }
            if (!converged) {
                util::fatal("fleet_campaign: journal coverage check "
                            "failed on " + id);
            }
            ++stress_boards;
            stress_elements += deferred;
        }
    }

    const auto wall_end = std::chrono::steady_clock::now();
    const double wall_s =
        std::chrono::duration<double>(wall_end - wall_start).count();

    std::printf("  fleet                 %zu boards\n", kFleet);
    std::printf("  simulated             %.0f h (%.1f board-years)\n",
                simulated_h,
                simulated_h * static_cast<double>(kFleet) / 8760.0);
    std::printf("  tenancies             %zu\n", finished.size());
    std::printf("  boards measured       %zu (+%zu virgin skipped)\n\n",
                scores.size(), skipped.size());

    std::printf("  %-12s %8s %10s\n", "board", "bits", "recovered");
    std::size_t bits = 0;
    std::size_t correct = 0;
    std::vector<std::vector<std::string>> rows;
    for (const BoardScore &s : scores) {
        std::printf("  %-12s %8zu %9.1f%%\n", s.board.c_str(), s.bits,
                    100.0 * s.accuracy);
        bits += s.bits;
        correct += s.correct;
        rows.push_back({s.board, std::to_string(s.bits),
                        std::to_string(s.correct),
                        std::to_string(s.accuracy)});
    }
    if (bits > 0) {
        std::printf("  %-12s %8zu %9.1f%%\n", "overall", bits,
                    100.0 * static_cast<double>(correct) /
                        static_cast<double>(bits));
    }
    if (journal_stress) {
        std::printf("\n  journal stress        %zu deferred elements "
                    "replayed across %zu boards, coverage exact\n",
                    stress_elements, stress_boards);
    }
    std::printf("\n  wall clock            %.2f s (%.0f simulated "
                "board-hours per ms)\n",
                wall_s,
                simulated_h * static_cast<double>(kFleet) /
                    (1000.0 * wall_s));
    bench::dumpGridCsv(argc, argv,
                       {"board", "bits", "correct", "accuracy"}, rows);
    return 0;
}
