/**
 * @file
 * Fleet-scale persistence campaign (the workload PR 3 unlocks).
 *
 * A marketplace region of 112 boards runs a simulated year of
 * interleaved tenancies: tenants rent boards, burn their secrets for
 * days at a time, release; the pool idles, is re-rented, idles again.
 * At the end a TM2 attacker flash-acquires a handful of recently
 * released boards (≤ 8) and runs the paper's park-and-watch recovery
 * attack against whatever the last tenant left behind — the
 * persistence scan across rented boards that "Security Risks Due to
 * Data Persistence in Cloud FPGA Platforms" (Zhang et al.) performs
 * on real hardware.
 *
 * Under eager per-hour aging this scenario costs
 * O(board-hours x elements) — a year across 112 boards was
 * intractable. With the segment timeline every unobserved board-hour
 * is O(1) bookkeeping and elements only materialise their BTI state
 * when the attacker's TDC actually binds them; the event-driven
 * ambient (PR 4) defers even the idle boards' temperature walk, so
 * the campaign is bounded by the ≤ 8 measured boards and completes in
 * a fraction of a second.
 *
 * `--fleet N` and `--years Y` rescale the region and the simulated
 * horizon so the scaling claims are reproducible at other sizes;
 * `--seed S` re-rolls the tenancy/ambient sample paths. The recovery
 * rate is a high-variance statistic at these deliberately marginal
 * conditions (service-aged silicon, short tenancies, 25 h of
 * observation): across nearby seeds it spans roughly 50-85%, and the
 * default seed is chosen to sit near the middle of that range.
 *
 * Crash-safe checkpointing (PR 7): `--checkpoint-every N` writes a
 * rotating two-generation snapshot of the entire campaign — fleet
 * board state plus the driver's tenancy ledger and RNG cursor — after
 * every N simulated days; `--resume` continues from the latest good
 * generation, and a resumed run's CSV is byte-identical to an
 * uninterrupted one. `--halt-at-day D` exits cleanly after day D (the
 * kill half of the CI kill-and-resume stress).
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "cloud/platform.hpp"
#include "core/classifier.hpp"
#include "core/experiment.hpp"
#include "tdc/measure_design.hpp"
#include "util/expected.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/snapshot.hpp"

using namespace pentimento;

namespace {

constexpr std::size_t kDefaultFleet = 112;
constexpr int kDefaultYears = 1;
constexpr std::uint64_t kDefaultSeed = 90902;
constexpr std::size_t kRoutesPerTenant = 8;
constexpr double kRouteTargetPs = 2000.0;
constexpr std::size_t kMaxMeasured = 8;
constexpr double kRecoveryHours = 25.0;
constexpr const char *kDefaultCheckpointPath = "fleet_campaign.ckpt";

constexpr std::uint32_t kCfgTag = util::snapshotTag('C', 'F', 'G', '!');
constexpr std::uint32_t kCmpTag = util::snapshotTag('C', 'M', 'P', '!');

/**
 * Last delivery-requested signal, observed by the day loop. SIGINT or
 * SIGTERM does not abandon the campaign: the loop finishes the current
 * day, writes a final checkpoint, and exits 128+sig — an interrupted
 * campaign is ALWAYS `--resume`-able.
 */
std::atomic<int> g_signal{0};

void
onSignal(int sig)
{
    g_signal.store(sig, std::memory_order_relaxed);
}

/** One completed tenancy: what the attacker would need to know. */
struct Tenancy
{
    std::string board;
    std::vector<fabric::RouteSpec> specs;
    std::vector<bool> bits;
    double released_at_h = 0.0;
};

/** One tenancy still computing. */
struct Active
{
    std::string board;
    double ends_at_h = 0.0;
    /** Day the tenant design was created — its identity, for resume. */
    int start_day = 0;
    Tenancy record;
    /** Kept only under --journal-stress, for daily burn-value
     *  rotations. */
    std::shared_ptr<fabric::TargetDesign> target;
};

/** Everything the day loop owns; what a checkpoint must capture. */
struct CampaignState
{
    std::unique_ptr<cloud::CloudPlatform> platform;
    util::Rng rng{424261};
    std::vector<Active> active;
    std::vector<Tenancy> finished;
    int next_day = 0;
};

/** Attack result for one measured board. */
struct BoardScore
{
    std::string board;
    std::size_t bits = 0;
    std::size_t correct = 0;
    double accuracy = 0.0;
};

// --------------------------------------------------- CLI validation

void
printUsage(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: fleet_campaign [options]\n"
        "  --fleet N             boards in the region (default %zu)\n"
        "  --years N             simulated years (default %d)\n"
        "  --seed S              campaign seed (default %llu)\n"
        "  --workers N           parallel lanes for the scan phase\n"
        "  --csv PATH            write per-board attack scores as CSV\n"
        "  --journal-stress      daily burn rotations + coverage check\n"
        "  --checkpoint-every N  checkpoint every N simulated days\n"
        "  --checkpoint-path P   checkpoint file (default %s)\n"
        "  --resume              continue from the latest good "
        "checkpoint\n"
        "  --halt-at-day D       exit cleanly after day D (pairs with "
        "--resume)\n"
        "  --day-sleep-ms N      throttle each simulated day (signal "
        "tests)\n",
        kDefaultFleet, kDefaultYears,
        static_cast<unsigned long long>(kDefaultSeed),
        kDefaultCheckpointPath);
}

/**
 * Whitelist scan: every argument must be a known flag, with its value
 * present when one is required. Anything else is a usage error — a
 * typoed scaling flag silently ignored would misattribute numbers.
 */
bool
argsAreKnown(int argc, char **argv)
{
    static const char *kValueFlags[] = {
        "--fleet",   "--years", "--seed",
        "--workers", "--csv",   "--checkpoint-every",
        "--checkpoint-path",    "--halt-at-day",
        "--day-sleep-ms"};
    static const char *kBareFlags[] = {"--journal-stress", "--resume"};
    for (int i = 1; i < argc; ++i) {
        bool known = false;
        for (const char *flag : kValueFlags) {
            if (std::strcmp(argv[i], flag) == 0) {
                if (i + 1 >= argc) {
                    std::fprintf(stderr,
                                 "fleet_campaign: missing value for "
                                 "%s\n",
                                 flag);
                    return false;
                }
                ++i;
                known = true;
                break;
            }
        }
        for (const char *flag : kBareFlags) {
            if (!known && std::strcmp(argv[i], flag) == 0) {
                known = true;
                break;
            }
        }
        if (!known) {
            std::fprintf(stderr, "fleet_campaign: unknown flag '%s'\n",
                         argv[i]);
            return false;
        }
    }
    return true;
}

const char *
parseStringFlag(int argc, char **argv, const char *flag,
                const char *fallback)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0) {
            return argv[i + 1];
        }
    }
    return fallback;
}

// -------------------------------------------------- tenant designs

/** Rebuild a tenant design exactly as the rent-time site makes it. */
std::shared_ptr<fabric::TargetDesign>
makeTenantDesign(const Tenancy &tenancy, int start_day)
{
    fabric::ArithmeticHeavyConfig arith;
    arith.dsp_count = 128;
    return std::make_shared<fabric::TargetDesign>(
        "tenant_" + tenancy.board + "_d" + std::to_string(start_day),
        tenancy.specs, tenancy.bits, arith);
}

/** The --journal-stress rotation a tenancy carries on day `day`. */
void
applyRotation(const Active &a, int day)
{
    for (std::size_t i = 0; i < a.record.bits.size(); ++i) {
        a.target->setBurnValue(i, (day % 2 == 0) == a.record.bits[i]);
    }
}

// --------------------------------------------- checkpoint write/read

void
writeTenancy(util::SnapshotWriter &writer, const Tenancy &tenancy)
{
    writer.str(tenancy.board);
    writer.u64(tenancy.specs.size());
    for (const fabric::RouteSpec &spec : tenancy.specs) {
        writer.str(spec.name);
        writer.f64(spec.target_ps);
        writer.u64(spec.elements.size());
        for (const fabric::ResourceId &id : spec.elements) {
            writer.u64(id.key());
        }
    }
    writer.u64(tenancy.bits.size());
    for (const bool bit : tenancy.bits) {
        writer.u8(bit ? 1 : 0);
    }
    writer.f64(tenancy.released_at_h);
}

bool
readTenancy(util::SnapshotReader &reader, Tenancy *tenancy)
{
    tenancy->board = reader.str();
    const std::uint64_t spec_count = reader.u64();
    for (std::uint64_t s = 0; s < spec_count && reader.ok(); ++s) {
        fabric::RouteSpec spec;
        spec.name = reader.str();
        spec.target_ps = reader.f64();
        const std::uint64_t elem_count = reader.u64();
        for (std::uint64_t e = 0; e < elem_count && reader.ok(); ++e) {
            spec.elements.push_back(
                fabric::ResourceId::fromKey(reader.u64()));
        }
        tenancy->specs.push_back(std::move(spec));
    }
    const std::uint64_t bit_count = reader.u64();
    for (std::uint64_t b = 0; b < bit_count && reader.ok(); ++b) {
        tenancy->bits.push_back(reader.u8() != 0);
    }
    tenancy->released_at_h = reader.f64();
    if (reader.ok() && tenancy->bits.size() != tenancy->specs.size()) {
        reader.fail("checkpoint: tenancy bits/specs length mismatch");
    }
    return reader.ok();
}

/**
 * Write one rotating checkpoint generation. Failure is reported but
 * non-fatal — a full disk must not kill a year-long campaign.
 */
void
saveCheckpoint(const CampaignState &state, std::size_t fleet, int days,
               std::uint64_t seed, bool journal_stress,
               const std::string &path)
{
    util::SnapshotWriter writer;
    writer.beginChunk(kCfgTag);
    writer.u64(fleet);
    writer.u64(static_cast<std::uint64_t>(days));
    writer.u64(seed);
    writer.u8(journal_stress ? 1 : 0);
    writer.endChunk();

    state.platform->saveState(writer);

    writer.beginChunk(kCmpTag);
    writer.u64(static_cast<std::uint64_t>(state.next_day));
    const util::Rng::State rng = state.rng.state();
    for (const std::uint64_t word : rng.words) {
        writer.u64(word);
    }
    writer.f64(rng.cached);
    writer.u8(rng.have_cached ? 1 : 0);
    writer.u64(state.finished.size());
    for (const Tenancy &tenancy : state.finished) {
        writeTenancy(writer, tenancy);
    }
    writer.u64(state.active.size());
    for (const Active &a : state.active) {
        writer.f64(a.ends_at_h);
        writer.u64(static_cast<std::uint64_t>(a.start_day));
        writeTenancy(writer, a.record);
    }
    writer.endChunk();

    const util::Expected<void> committed = writer.commitRotating(path);
    if (!committed.ok()) {
        std::fprintf(stderr,
                     "fleet_campaign: checkpoint write failed (%s); "
                     "continuing without it\n",
                     committed.error().c_str());
    }
}

/**
 * Restore one checkpoint generation into a freshly built platform.
 * Every corruption path comes back as a recoverable error so the
 * caller can fall through to the previous generation.
 */
util::Expected<CampaignState>
restoreCampaignFrom(const std::string &path,
                    const cloud::PlatformConfig &config, int days,
                    bool journal_stress)
{
    util::Expected<util::SnapshotReader> opened =
        util::SnapshotReader::open(path);
    if (!opened.ok()) {
        return util::unexpected(opened.error());
    }
    util::SnapshotReader &reader = opened.value();

    if (!reader.enterChunk(kCfgTag)) {
        return util::unexpected(reader.error());
    }
    const std::uint64_t fleet = reader.u64();
    const std::uint64_t saved_days = reader.u64();
    const std::uint64_t seed = reader.u64();
    const bool saved_stress = reader.u8() != 0;
    if (!reader.leaveChunk()) {
        return util::unexpected(reader.error());
    }
    if (fleet != config.fleet_size || seed != config.seed ||
        saved_days != static_cast<std::uint64_t>(days) ||
        saved_stress != journal_stress) {
        return util::unexpected(
            "checkpoint was written by a different campaign "
            "(--fleet/--years/--seed/--journal-stress skew)");
    }

    CampaignState state;
    state.platform = std::make_unique<cloud::CloudPlatform>(config);
    std::vector<std::string> boards_with_design;
    const util::Expected<void> restored =
        state.platform->restoreState(reader, &boards_with_design);
    if (!restored.ok()) {
        return util::unexpected(restored.error());
    }

    if (!reader.enterChunk(kCmpTag)) {
        return util::unexpected(reader.error());
    }
    const std::uint64_t next_day = reader.u64();
    util::Rng::State rng;
    for (std::uint64_t &word : rng.words) {
        word = reader.u64();
    }
    rng.cached = reader.f64();
    rng.have_cached = reader.u8() != 0;
    const std::uint64_t finished_count = reader.u64();
    for (std::uint64_t i = 0; i < finished_count && reader.ok(); ++i) {
        Tenancy tenancy;
        if (readTenancy(reader, &tenancy)) {
            state.finished.push_back(std::move(tenancy));
        }
    }
    const std::uint64_t active_count = reader.u64();
    for (std::uint64_t i = 0; i < active_count && reader.ok(); ++i) {
        Active a;
        a.ends_at_h = reader.f64();
        a.start_day = static_cast<int>(reader.u64());
        if (readTenancy(reader, &a.record)) {
            a.board = a.record.board;
            state.active.push_back(std::move(a));
        }
    }
    if (!reader.leaveChunk() || !reader.expectEnd()) {
        return util::unexpected(reader.error());
    }
    if (next_day < 1 || next_day > static_cast<std::uint64_t>(days)) {
        return util::unexpected("checkpoint: day cursor out of range");
    }
    state.next_day = static_cast<int>(next_day);
    state.rng.setState(rng);

    // Designs are code, not board state: rebuild each active tenant's
    // design (with the rotation parity it carried at save time, under
    // --journal-stress) and re-load it. The restored board's activity
    // state already matches, so the load is flip- and draw-neutral.
    if (boards_with_design.size() != state.active.size()) {
        return util::unexpected(
            "checkpoint: design residency does not match the ledger");
    }
    for (Active &a : state.active) {
        bool listed = false;
        for (const std::string &board : boards_with_design) {
            if (board == a.board) {
                listed = true;
                break;
            }
        }
        if (!listed) {
            return util::unexpected("checkpoint: active board '" +
                                    a.board +
                                    "' has no resident design");
        }
        std::shared_ptr<fabric::TargetDesign> target =
            makeTenantDesign(a.record, a.start_day);
        a.target = target;
        if (journal_stress) {
            applyRotation(a, state.next_day - 1);
        }
        if (!state.platform->loadDesign(a.board, target).empty()) {
            return util::unexpected(
                "checkpoint: reconstructed tenant design failed DRC");
        }
        if (!journal_stress) {
            a.target = nullptr;
        }
    }
    return state;
}

// --------------------------------------------------------- TM2 scan

/**
 * TM2 park-and-watch on one re-acquired board: calibrate at takeover,
 * park the victim's routes at 0, record 25 hourly sweeps, classify
 * the recovery slopes.
 */
BoardScore
attackBoard(cloud::CloudPlatform &platform, const std::string &board_id,
            const Tenancy &tenancy, util::ThreadPool *pool)
{
    cloud::FpgaInstance &inst = platform.instance(board_id);
    fabric::Device &device = inst.device();
    device.setWorkPool(pool);

    // Fast sampling: the campaign is measurement-bound, and its
    // accuracy statistics are seed-sweep-equivalent between the exact
    // and fast sampling paths (see tdc_test's FastSampling battery).
    // Deliberate sample-path re-roll, PR-4 style: the committed golden
    // CSV is recorded from this configuration.
    tdc::TdcConfig sensor_config;
    sensor_config.fast_sampling = true;
    auto measure = std::make_shared<tdc::MeasureDesign>(
        device, tenancy.specs, sensor_config);
    if (!platform.loadDesign(board_id, measure).empty()) {
        util::fatal("fleet_campaign: measure design failed DRC");
    }
    measure->calibrateAll(inst.dieTempK(), inst.rng(), pool);

    auto park = std::make_shared<fabric::Design>("park0_" + board_id);
    for (const fabric::RouteSpec &spec : tenancy.specs) {
        park->setRouteValue(spec, false);
    }
    park->setPowerW(2.0);

    std::vector<core::RouteRecord> records(tenancy.specs.size());
    std::vector<core::DeltaSeries> series(tenancy.specs.size());
    double observed = 0.0;
    const auto sweepNow = [&](double hour) {
        if (!platform.loadDesign(board_id, measure).empty()) {
            util::fatal("fleet_campaign: measure design failed DRC");
        }
        platform.advanceHours(core::kMeasureSettleHours);
        const tdc::MeasurementSweep sweep =
            measure->measureAll(inst.dieTempK(), inst.rng(), pool);
        for (std::size_t i = 0; i < series.size(); ++i) {
            series[i].addPoint(hour, sweep.per_route[i].deltaPs());
        }
    };
    sweepNow(0.0);
    while (observed < kRecoveryHours - 1e-9) {
        if (!platform.loadDesign(board_id, park).empty()) {
            util::fatal("fleet_campaign: park design failed DRC");
        }
        platform.advanceHours(1.0 - core::kMeasureSettleHours);
        observed += 1.0;
        sweepNow(observed);
    }

    core::ExperimentResult result;
    for (std::size_t i = 0; i < tenancy.specs.size(); ++i) {
        records[i].name = tenancy.specs[i].name;
        records[i].target_ps = tenancy.specs[i].target_ps;
        records[i].burn_value = tenancy.bits[i];
        records[i].series = series[i].centeredAtFirst();
        result.routes.push_back(records[i]);
    }
    const core::ClassificationReport report =
        core::ThreatModel2Classifier().classify(result);

    platform.release(board_id);
    device.setWorkPool(nullptr);
    BoardScore score;
    score.board = board_id;
    score.bits = report.bits.size();
    score.correct = report.correct;
    score.accuracy = report.accuracy;
    return score;
}

} // namespace

int
main(int argc, char **argv)
{
    if (!argsAreKnown(argc, argv)) {
        printUsage(stderr);
        return 2;
    }
    std::size_t kFleet = 0;
    int kDays = 0;
    std::uint64_t seed = 0;
    long checkpoint_every = 0;
    long halt_at_day = 0;
    long day_sleep_ms = 0;
    std::string checkpoint_path;
    try {
        kFleet = static_cast<std::size_t>(
            bench::parseLongFlag(argc, argv, "--fleet", kDefaultFleet));
        kDays = 365 * static_cast<int>(bench::parseLongFlag(
                          argc, argv, "--years", kDefaultYears));
        // Seed 0 is a legal Rng seed, so the floor is 0 here.
        seed = static_cast<std::uint64_t>(bench::parseLongFlag(
            argc, argv, "--seed", static_cast<long>(kDefaultSeed), 0));
        checkpoint_every =
            bench::parseLongFlag(argc, argv, "--checkpoint-every", 0);
        halt_at_day =
            bench::parseLongFlag(argc, argv, "--halt-at-day", 0);
        day_sleep_ms =
            bench::parseLongFlag(argc, argv, "--day-sleep-ms", 0, 0);
        checkpoint_path = parseStringFlag(
            argc, argv, "--checkpoint-path", kDefaultCheckpointPath);
    } catch (const util::FatalError &error) {
        std::fprintf(stderr, "fleet_campaign: %s\n", error.what());
        printUsage(stderr);
        return 2;
    }
    // --journal-stress exercises the activity journal at fleet scale:
    // every active tenancy rotates its burn values daily (in-place
    // design mutations, journaled as O(1) flips on unobserved
    // boards), and after the scan the unmeasured boards' deferred
    // populations are force-materialised and cross-checked against
    // the imprinted listing. Perturbs the aging histories, so the
    // committed CSV golden only applies without the flag.
    const bool journal_stress =
        bench::hasFlag(argc, argv, "--journal-stress");
    const bool resume = bench::hasFlag(argc, argv, "--resume");
    std::printf("=== Fleet campaign: %zu boards, %d simulated days, "
                "TM2 scan of <= %zu boards ===\n\n",
                kFleet, kDays, kMaxMeasured);
    const auto wall_start = std::chrono::steady_clock::now();

    cloud::PlatformConfig config;
    config.fleet_size = kFleet;
    config.region = "fleet-sim";
    config.policy = cloud::AllocationPolicy::MostRecentlyReleased;
    config.seed = seed;

    CampaignState state;
    if (resume) {
        // Two-generation retry: deeper corruption than a bad header
        // is only discovered while restoring, so each generation gets
        // a fresh platform and a full restore attempt.
        util::Expected<CampaignState> attempt = restoreCampaignFrom(
            checkpoint_path, config, kDays, journal_stress);
        bool used_fallback = false;
        if (!attempt.ok()) {
            const std::string primary_error = attempt.error();
            attempt =
                restoreCampaignFrom(checkpoint_path + ".prev", config,
                                    kDays, journal_stress);
            used_fallback = attempt.ok();
            if (!attempt.ok()) {
                std::fprintf(
                    stderr,
                    "fleet_campaign: cannot resume: %s (previous "
                    "generation also failed: %s)\n",
                    primary_error.c_str(), attempt.error().c_str());
                return 1;
            }
        }
        state = std::move(attempt.value());
        std::printf("  resumed from %s%s at day %d (%zu finished, "
                    "%zu active tenancies)\n\n",
                    checkpoint_path.c_str(),
                    used_fallback ? ".prev" : "", state.next_day,
                    state.finished.size(), state.active.size());
    } else {
        state.platform = std::make_unique<cloud::CloudPlatform>(config);
    }
    cloud::CloudPlatform &platform = *state.platform;

    // A year of interleaved tenancies in daily ticks: aim for about a
    // third of the region rented at any time, each tenancy burning a
    // random word on its own freshly allocated routes for 2-14 days.
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    for (int day = state.next_day; day < kDays; ++day) {
        if (day_sleep_ms > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(day_sleep_ms));
        }
        const double now = platform.nowHours();
        for (std::size_t i = state.active.size(); i-- > 0;) {
            if (state.active[i].ends_at_h <= now) {
                state.active[i].record.released_at_h = now;
                platform.release(state.active[i].board);
                state.finished.push_back(
                    std::move(state.active[i].record));
                state.active.erase(state.active.begin() +
                                   static_cast<std::ptrdiff_t>(i));
            }
        }
        while (state.active.size() < kFleet / 3 &&
               state.rng.bernoulli(0.35)) {
            const auto board = platform.rent();
            if (!board) {
                break;
            }
            fabric::Device &device =
                platform.instance(*board).device();
            Tenancy tenancy;
            tenancy.board = *board;
            for (std::size_t r = 0; r < kRoutesPerTenant; ++r) {
                tenancy.specs.push_back(device.allocateRoute(
                    *board + "_d" + std::to_string(day) + "_r" +
                        std::to_string(r),
                    kRouteTargetPs));
                tenancy.bits.push_back(state.rng.bernoulli(0.5));
            }
            auto target = makeTenantDesign(tenancy, day);
            if (!platform.loadDesign(*board, target).empty()) {
                util::fatal(
                    "fleet_campaign: tenant design failed DRC");
            }
            const double duration_h =
                24.0 *
                static_cast<double>(state.rng.uniformInt(2, 14));
            state.active.push_back(
                Active{*board, now + duration_h, day,
                       std::move(tenancy),
                       journal_stress ? target : nullptr});
        }
        if (journal_stress) {
            // Daily inversion-mitigation-style rotation on every
            // active tenancy: in-place mutations the devices fold in
            // as journal flips at the next advance.
            for (const Active &a : state.active) {
                applyRotation(a, day);
            }
        }
        platform.advanceHours(24.0);

        const int completed = day + 1;
        state.next_day = completed;
        const bool halting = halt_at_day > 0 &&
                             completed >= static_cast<int>(halt_at_day);
        const bool periodic = checkpoint_every > 0 &&
                              completed % checkpoint_every == 0;
        if ((periodic || halting) && completed < kDays) {
            saveCheckpoint(state, kFleet, kDays, seed, journal_stress,
                           checkpoint_path);
            if (halting) {
                std::printf("  halted after day %d; checkpoint "
                            "written to %s (resume with --resume)\n",
                            completed, checkpoint_path.c_str());
                return 0;
            }
        }
        // SIGINT/SIGTERM: flush a final checkpoint at this day
        // boundary (even without --checkpoint-every) and exit
        // 128+sig. The operator can always `--resume`.
        const int sig = g_signal.load(std::memory_order_relaxed);
        if (sig != 0 && completed < kDays) {
            saveCheckpoint(state, kFleet, kDays, seed, journal_stress,
                           checkpoint_path);
            std::fprintf(stderr,
                         "fleet_campaign: signal %d after day %d; "
                         "checkpoint written to %s (resume with "
                         "--resume)\n",
                         sig, completed, checkpoint_path.c_str());
            return 128 + sig;
        }
    }
    // Wind down: everyone still computing releases now.
    for (Active &a : state.active) {
        a.record.released_at_h = platform.nowHours();
        platform.release(a.board);
        state.finished.push_back(std::move(a.record));
    }
    state.active.clear();
    std::vector<Tenancy> &finished = state.finished;
    const double simulated_h = platform.nowHours();

    // ---- TM2 persistence scan -------------------------------------
    // Flash-acquire recently released boards (LIFO policy) and attack
    // the most recent tenancy on each.
    const auto pool = bench::makePool(argc, argv);
    std::vector<std::pair<std::string, const Tenancy *>> targets;
    std::vector<std::string> skipped;
    while (targets.size() < kMaxMeasured) {
        // Acquire first, attack later: releasing mid-scan would hand
        // the LIFO scheduler the same board straight back.
        const auto board = platform.rent();
        if (!board) {
            break;
        }
        const Tenancy *last = nullptr;
        for (const Tenancy &t : finished) {
            if (t.board == *board &&
                (last == nullptr ||
                 t.released_at_h > last->released_at_h)) {
                last = &t;
            }
        }
        if (last == nullptr) {
            skipped.push_back(*board); // virgin stock: nothing to scan
            continue;
        }
        targets.emplace_back(*board, last);
    }
    std::vector<BoardScore> scores;
    scores.reserve(targets.size());
    for (const auto &[board, tenancy] : targets) {
        scores.push_back(
            attackBoard(platform, board, *tenancy, pool.get()));
    }
    for (const std::string &board : skipped) {
        platform.release(board);
    }

    // ---- journal coverage check (--journal-stress) ----------------
    // Force-materialise every board's deferred population and verify
    // it converges exactly to the imprinted listing: a year of
    // journaled tenancies (with daily mitigation flips) must replay
    // without losing or inventing a single element.
    std::size_t stress_boards = 0;
    std::size_t stress_elements = 0;
    if (journal_stress) {
        for (const std::string &id : platform.allInstanceIds()) {
            fabric::Device &device = platform.instance(id).device();
            const std::size_t deferred = device.journaledKeyCount();
            if (deferred == 0) {
                continue;
            }
            const std::vector<fabric::ResourceId> imprinted =
                device.imprintedIds();
            for (const fabric::ResourceId &rid : imprinted) {
                (void)device.element(rid); // materialise + replay
            }
            const std::vector<fabric::ResourceId> materialized =
                device.materializedIds();
            bool converged =
                device.journaledKeyCount() == 0 &&
                materialized.size() == imprinted.size();
            for (std::size_t i = 0; converged && i < imprinted.size();
                 ++i) {
                converged = materialized[i].key() == imprinted[i].key();
            }
            if (!converged) {
                util::fatal("fleet_campaign: journal coverage check "
                            "failed on " + id);
            }
            ++stress_boards;
            stress_elements += deferred;
        }
    }

    const auto wall_end = std::chrono::steady_clock::now();
    const double wall_s =
        std::chrono::duration<double>(wall_end - wall_start).count();

    std::printf("  fleet                 %zu boards\n", kFleet);
    std::printf("  simulated             %.0f h (%.1f board-years)\n",
                simulated_h,
                simulated_h * static_cast<double>(kFleet) / 8760.0);
    std::printf("  tenancies             %zu\n", finished.size());
    std::printf("  boards measured       %zu (+%zu virgin skipped)\n\n",
                scores.size(), skipped.size());

    std::printf("  %-12s %8s %10s\n", "board", "bits", "recovered");
    std::size_t bits = 0;
    std::size_t correct = 0;
    std::vector<std::vector<std::string>> rows;
    for (const BoardScore &s : scores) {
        std::printf("  %-12s %8zu %9.1f%%\n", s.board.c_str(), s.bits,
                    100.0 * s.accuracy);
        bits += s.bits;
        correct += s.correct;
        rows.push_back({s.board, std::to_string(s.bits),
                        std::to_string(s.correct),
                        std::to_string(s.accuracy)});
    }
    if (bits > 0) {
        std::printf("  %-12s %8zu %9.1f%%\n", "overall", bits,
                    100.0 * static_cast<double>(correct) /
                        static_cast<double>(bits));
    }
    if (journal_stress) {
        std::printf("\n  journal stress        %zu deferred elements "
                    "replayed across %zu boards, coverage exact\n",
                    stress_elements, stress_boards);
    }
    std::printf("\n  wall clock            %.2f s (%.0f simulated "
                "board-hours per ms)\n",
                wall_s,
                simulated_h * static_cast<double>(kFleet) /
                    (1000.0 * wall_s));
    bench::dumpGridCsv(argc, argv,
                       {"board", "bits", "correct", "accuracy"}, rows);
    return 0;
}
