/**
 * @file
 * Regenerates Figure 8 — Experiment 3 (Cloud Environment), validating
 * Threat Model 2: recovery of Type B user data via BTI *recovery*.
 *
 * A victim burns a random X for 200 hours with no attacker access,
 * releases the instance (provider wipes it), and the attacker —
 * having re-acquired the same board — parks every route at logic 0
 * and measures for 25 hours.
 *
 * Paper expectations:
 *  - the plot starts at hour 200 (no earlier data exists);
 *  - routes that held 1 (magenta) immediately decrease relative to
 *    the flat routes that held 0 (cyan);
 *  - separation is weaker than in the lab but sufficient to recover
 *    user data, especially on longer routes.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "core/classifier.hpp"
#include "core/experiment.hpp"

using namespace pentimento;

int
main(int argc, char **argv)
{
    std::printf("=== Figure 8: Experiment 3 (cloud, Threat Model 2 "
                "recovery) ===\n\n");
    core::Experiment3Config config;
    config.seed = 2023;
    const auto pool = bench::makePool(argc, argv);
    config.pool = pool.get();
    const core::ExperimentResult result = core::runExperiment3(config);

    const char *labels[] = {"(a) 1000 ps routes", "(b) 2000 ps routes",
                            "(c) 5000 ps routes",
                            "(d) 10000 ps routes"};
    const double groups[] = {1000.0, 2000.0, 5000.0, 10000.0};
    for (int g = 0; g < 4; ++g) {
        std::printf("%s\n",
                    bench::renderGroupChart(result, groups[g],
                                            labels[g], -1.0, 8.0)
                        .c_str());
    }

    std::printf("recovery slopes over the 25-hour attacker window "
                "(ps/h, mean per class):\n");
    std::printf("  %10s  %12s  %12s\n", "group", "burn 0", "burn 1");
    for (const double g : groups) {
        double s0 = 0.0, s1 = 0.0;
        int n0 = 0, n1 = 0;
        for (const std::size_t i : result.groupIndices(g)) {
            const auto &route = result.routes[i];
            if (route.burn_value) {
                s1 += route.series.slopePerHour();
                ++n1;
            } else {
                s0 += route.series.slopePerHour();
                ++n0;
            }
        }
        std::printf("  %8.0fps  %+12.4f  %+12.4f\n", g,
                    n0 ? s0 / n0 : 0.0, n1 ? s1 / n1 : 0.0);
    }

    const core::ClassificationReport report =
        core::ThreatModel2Classifier().classify(result);
    std::printf("\nThreat Model 2 (Type B user data): %s\n",
                bench::classificationSummary(report).c_str());
    std::printf("per-group accuracy:\n");
    for (const double g : groups) {
        int ok = 0, total = 0;
        for (const std::size_t i : result.groupIndices(g)) {
            ++total;
            ok += report.bits[i].value == result.routes[i].burn_value;
        }
        std::printf("  %8.0fps: %2d/%2d\n", g, ok, total);
    }
    std::printf("\nas in the paper, the cloud recovery signal lacks "
                "the lab's magnitude and\nclarity on short routes; "
                "long routes leak reliably.\n");
    bench::handleCsvFlag(argc, argv, result);
    return 0;
}
