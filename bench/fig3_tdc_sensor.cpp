/**
 * @file
 * Regenerates Figure 3's sensor behaviour: raw TDC capture vectors
 * for rising and falling transitions — including metastable bubbles —
 * and their Binary Hamming Distances (the paper's example sequence
 * reads 39, 22, 38, 22), plus a θ-sweep characterisation showing the
 * propagation distance tracking the capture phase.
 */

#include <cstdio>
#include <string>

#include "fabric/device.hpp"
#include "tdc/tdc.hpp"
#include "util/rng.hpp"

using namespace pentimento;

namespace {

std::string
formatBits(const std::vector<bool> &bits)
{
    std::string s;
    for (std::size_t i = 0; i < bits.size(); ++i) {
        if (i != 0 && i % 4 == 0) {
            s += '_';
        }
        s += bits[i] ? '1' : '0';
    }
    return s;
}

} // namespace

int
main()
{
    fabric::Device device{fabric::DeviceConfig{}};
    util::Rng rng(2023);
    const double temp_k = 333.15;

    tdc::TdcConfig config; // 64 taps at 2.8 ps/bit, like Figure 3
    tdc::Tdc sensor(device, device.allocateRoute("rut", 1000.0),
                    device.allocateCarryChain("chain", config.taps),
                    config);
    const double theta = sensor.calibrate(temp_k, rng);
    std::printf("=== Figure 3: Tunable Dual-Polarity TDC ===\n\n");
    std::printf("route under test: 1000 ps nominal, chain: %zu taps "
                "at %.1f ps/bit\n",
                config.taps, config.ps_per_bit);
    std::printf("calibrated theta_init = %.1f ps\n\n", theta);

    std::printf("raw output sequences (MSB = deepest tap):\n");
    for (int pair = 0; pair < 2; ++pair) {
        const tdc::Capture rising = sensor.capture(
            phys::Transition::Rising, theta, temp_k, rng);
        const tdc::Capture falling = sensor.capture(
            phys::Transition::Falling, theta, temp_k, rng);
        std::printf("  Rising Transition  %d: %s   (HD %2zu)\n", pair,
                    formatBits(rising.bits).c_str(),
                    rising.hammingDistance());
        std::printf("  Falling Transition %d: %s   (HD %2zu)\n", pair,
                    formatBits(falling.bits).c_str(),
                    falling.hammingDistance());
    }

    std::printf("\nBinary Hamming Distance sequence over one trace: ");
    const tdc::Trace trace = sensor.takeTrace(phys::Transition::Rising,
                                              theta, temp_k, rng);
    for (std::size_t i = 0; i < 8 && i < trace.hamming.size(); ++i) {
        std::printf("%s%.0f", i == 0 ? "" : ", ", trace.hamming[i]);
    }
    std::printf(", ...\n\n");

    std::printf("theta sweep (propagation distance tracks the capture "
                "phase):\n");
    std::printf("  %10s  %14s  %14s\n", "theta(ps)", "rising HD",
                "falling HD");
    for (double offset = -28.0; offset <= 28.0; offset += 7.0) {
        const tdc::Trace rise = sensor.takeTrace(
            phys::Transition::Rising, theta + offset, temp_k, rng);
        const tdc::Trace fall = sensor.takeTrace(
            phys::Transition::Falling, theta + offset, temp_k, rng);
        std::printf("  %10.1f  %14.2f  %14.2f\n", theta + offset,
                    rise.meanHamming(), fall.meanHamming());
    }

    std::printf("\nmetastability: repeated captures at fixed theta "
                "differ inside the register\naperture, producing the "
                "bubbles visible above (cf. Figure 3's "
                "'0110'/'1001').\n");
    return 0;
}
