/**
 * @file
 * Regenerates Figure 7 — Experiment 2 (Cloud Environment), validating
 * Threat Model 1 on the AWS-F1-like platform.
 *
 * The same four route groups on a rented, years-old F1 card in
 * eu-west-2. 200 hours of burn with the attacker interleaving hourly
 * measurements (the 3896-DSP / ~63 W Arithmetic Heavy target design).
 *
 * Paper expectations:
 *  - same cyan-down / magenta-up separation as the lab, but noisier
 *    and ~5-10x smaller: ±[0,.2] / ±[0,.4] / ±[0,1] / ±[0,2] ps;
 *  - X (Type A design data) recoverable from the drift directions.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "core/classifier.hpp"
#include "core/experiment.hpp"

using namespace pentimento;

int
main(int argc, char **argv)
{
    std::printf("=== Figure 7: Experiment 2 (cloud, aged F1 card, "
                "Threat Model 1) ===\n\n");
    core::Experiment2Config config;
    config.seed = 2023;
    const auto pool = bench::makePool(argc, argv);
    config.pool = pool.get();
    const core::ExperimentResult result = core::runExperiment2(config);

    const char *labels[] = {"(a) 1000 ps routes", "(b) 2000 ps routes",
                            "(c) 5000 ps routes",
                            "(d) 10000 ps routes"};
    const double groups[] = {1000.0, 2000.0, 5000.0, 10000.0};
    for (int g = 0; g < 4; ++g) {
        std::printf("%s\n",
                    bench::renderGroupChart(result, groups[g],
                                            labels[g])
                        .c_str());
    }

    std::printf("deltas at the 200-hour mark (mean of hours "
                "[190, 200]):\n");
    std::printf("  %10s  %12s  %12s  %s\n", "group", "burn 0",
                "burn 1", "paper envelope");
    const char *paper[] = {"-/+ [0,.2] ps", "-/+ [0,.4] ps",
                           "-/+ [0,1] ps", "-/+ [0,2] ps"};
    const auto rows = bench::envelopes(result, 190.0, 200.0);
    for (std::size_t g = 0; g < rows.size(); ++g) {
        std::printf("  %8.0fps  %+10.2fps  %+10.2fps  %s\n",
                    rows[g].target_ps, rows[g].burn0_mean_ps,
                    rows[g].burn1_mean_ps, paper[g]);
    }

    const core::ClassificationReport report =
        core::ThreatModel1Classifier().classify(result);
    std::printf("\nThreat Model 1 (Type A design data): %s\n",
                bench::classificationSummary(report).c_str());
    std::printf("per-group accuracy:\n");
    for (const double g : groups) {
        int ok = 0, total = 0;
        for (const std::size_t i : result.groupIndices(g)) {
            ++total;
            ok += report.bits[i].value == result.routes[i].burn_value;
        }
        std::printf("  %8.0fps: %2d/%2d\n", g, ok, total);
    }

    std::printf("\n%s\n", bench::measurementCost(result).c_str());
    std::printf("cloud contrast is ~5-10x below the lab's (compare "
                "fig6); older, hotter,\nnoisier silicon — exactly the "
                "paper's observation.\n");
    bench::handleCsvFlag(argc, argv, result);
    return 0;
}
