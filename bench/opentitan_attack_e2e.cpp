/**
 * @file
 * End-to-end validation of the OpenTitan case study (paper §5.3):
 * does the Table 1 route-length distribution actually translate into
 * recoverable security assets?
 *
 * For four representative assets — a short life-cycle token, mid-range
 * key-manager keys, and the longest TL-UL signals — we synthesize the
 * asset's routes on a cloud device, let an OpenTitan-like victim hold
 * real asset bits on them for 200 hours, and run the Threat Model 1
 * attack. Measured per-asset recovery is printed beside the analytic
 * vulnerability metric's prediction.
 */

#include <cstdio>
#include <memory>

#include "core/classifier.hpp"
#include "core/delta_series.hpp"
#include "core/presets.hpp"
#include "fabric/design.hpp"
#include "opentitan/assets.hpp"
#include "opentitan/route_synth.hpp"
#include "opentitan/vulnerability.hpp"
#include "tdc/measure_design.hpp"
#include "util/rng.hpp"

using namespace pentimento;

namespace {

struct AssetOutcome
{
    double measured_accuracy = 0.0;
    double predicted_fraction = 0.0;
    std::size_t bits = 0;
};

AssetOutcome
attackAsset(const opentitan::AssetInfo &asset, std::size_t max_bits,
            std::uint64_t seed)
{
    cloud::PlatformConfig region = core::awsF1Region(seed);
    region.fleet_size = 1;
    cloud::CloudPlatform platform(region);
    const auto rented = platform.rent();
    cloud::FpgaInstance &inst = platform.instance(*rented);
    fabric::Device &device = inst.device();
    util::Rng rng(seed);

    // Synthesize the asset's routes; sample a subset of the bus for
    // runtime (stratified: every k-th bit spans the length range).
    opentitan::RouteLengthSynthesizer synth;
    const auto all = synth.synthesizeRoutes(device, asset);
    std::vector<fabric::RouteSpec> specs;
    std::vector<bool> secret;
    const std::size_t stride =
        std::max<std::size_t>(1, all.size() / max_bits);
    for (std::size_t i = 0; i < all.size() && specs.size() < max_bits;
         i += stride) {
        specs.push_back(all[i]);
        secret.push_back(rng.bernoulli(0.5));
    }

    auto victim = std::make_shared<fabric::TargetDesign>(
        "opentitan_" + std::to_string(asset.index), specs, secret);
    auto measure =
        std::make_shared<tdc::MeasureDesign>(device, specs);
    platform.loadDesign(*rented, measure);
    measure->calibrateAll(inst.dieTempK(), inst.rng());

    std::vector<core::DeltaSeries> raw(specs.size());
    const auto measureNow = [&](double hour) {
        platform.loadDesign(*rented, measure);
        platform.advanceHours(core::kMeasureSettleHours);
        const auto sweep =
            measure->measureAll(inst.dieTempK(), inst.rng());
        for (std::size_t i = 0; i < raw.size(); ++i) {
            raw[i].addPoint(hour, sweep.per_route[i].deltaPs());
        }
    };
    measureNow(0.0);
    for (int h = 0; h < 100; ++h) {
        platform.loadDesign(*rented, victim);
        platform.advanceHours(2.0 - core::kMeasureSettleHours);
        measureNow(2.0 * (h + 1));
    }
    platform.release(*rented);

    core::ExperimentResult result;
    result.condition_hours = 200.0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        core::RouteRecord record;
        record.name = specs[i].name;
        record.target_ps = specs[i].target_ps;
        record.burn_value = secret[i];
        record.series = raw[i].centeredAtFirst();
        result.routes.push_back(std::move(record));
    }
    // Routes differ per bit; classify each on its own drift sign.
    const auto report = core::ThreatModel1Classifier().classify(result);

    opentitan::AttackScenario scenario;
    scenario.burn_hours = 200.0;
    scenario.device_age_h = 30000.0;
    // The attack integrates ~100 sweeps into a trend estimate; its
    // effective noise floor is the single-sweep sigma (~0.19 ps)
    // shrunk by the averaging the tail-mean classifier performs.
    scenario.sensor_noise_ps = 0.05;
    const opentitan::VulnerabilityMetric metric(scenario);
    const auto predicted =
        metric.evaluate(asset, synth.synthesize(asset));

    AssetOutcome outcome;
    outcome.measured_accuracy = report.accuracy;
    outcome.predicted_fraction = predicted.recoverable_fraction;
    outcome.bits = specs.size();
    return outcome;
}

} // namespace

int
main()
{
    std::printf("=== OpenTitan end-to-end attack (Table 1 assets "
                "under Threat Model 1) ===\n");
    std::printf("(200 h cloud burn, asset bits sampled across each "
                "bus; prediction = analytic\nvulnerability metric's "
                "recoverable fraction)\n\n");
    std::printf("  %-42s %6s %10s %11s\n", "asset", "bits", "measured",
                "predicted");

    for (const int index : {1, 7, 17, 20}) {
        const opentitan::AssetInfo &asset =
            opentitan::assetByIndex(index);
        const AssetOutcome outcome = attackAsset(asset, 12, 2024);
        std::printf("  #%-2d %-38s %6zu %9.1f%% %10.1f%%\n",
                    asset.index, asset.path.c_str(), outcome.bits,
                    100.0 * outcome.measured_accuracy,
                    100.0 * outcome.predicted_fraction);
    }

    std::printf("\nshort life-cycle tokens (asset 1) hide below the "
                "noise floor; long TL-UL\nbuses and flash keys leak "
                "most of their bits — route length is destiny,\n"
                "which is what Table 1 is in the paper to show. "
                "(predicted = analytic\nper-route SNR threshold; the "
                "trend attack can beat it on routes just under\nthe "
                "threshold, so measured >= predicted is expected.)\n");
    return 0;
}
