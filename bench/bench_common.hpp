/**
 * @file
 * Shared rendering helpers for the figure/table benches.
 */

#ifndef PENTIMENTO_BENCH_COMMON_HPP
#define PENTIMENTO_BENCH_COMMON_HPP

#include <memory>
#include <string>

#include "core/classifier.hpp"
#include "core/experiment.hpp"
#include "util/parallel.hpp"

namespace pentimento::bench {

/**
 * Total parallel lanes requested on the command line: `--workers N`
 * wins, then PENTIMENTO_WORKERS, then 1 (serial). Benches are
 * deterministic by construction, so lanes only change wall-clock,
 * never output.
 */
int parseWorkers(int argc, char **argv);

/**
 * `--flag N` integer argument, or `fallback` when the flag is absent.
 * Fatals on a missing, malformed, or below-minimum value — a scaling
 * flag silently falling back would misattribute the resulting
 * numbers.
 */
long parseLongFlag(int argc, char **argv, const char *flag,
                   long fallback, long min_value = 1);

/** True when a bare boolean flag (e.g. `--journal-stress`) is
 *  present. */
bool hasFlag(int argc, char **argv, const char *flag);

/**
 * Build the bench's work pool from the command line: a pool with
 * parseWorkers() - 1 extra threads (the caller is the final lane).
 * With --workers 1 the pool has zero workers and every
 * parallelMap/parallelFor degenerates to the serial loop.
 */
std::unique_ptr<util::ThreadPool> makePool(int argc, char **argv);

/**
 * Render one route-delay group of an experiment as an ASCII chart:
 * burn-0 routes drawn with 'o', burn-1 routes with 'x', kernel
 * smoothed, with an optional vertical marker at the burn/recovery
 * switch.
 */
std::string renderGroupChart(const core::ExperimentResult &result,
                             double target_ps, const std::string &title,
                             double marker_hour = -1.0,
                             double bandwidth_h = 25.0);

/**
 * Per-group ∆ps envelope at the end of an interval: the mean of
 * |∆ps| over [h_from, h_to] split by burn value, printed next to the
 * paper's reported range.
 */
struct EnvelopeRow
{
    double target_ps = 0.0;
    double burn0_mean_ps = 0.0;
    double burn1_mean_ps = 0.0;
};

/** Compute envelopes for every group over a window. */
std::vector<EnvelopeRow> envelopes(const core::ExperimentResult &result,
                                   double h_from, double h_to);

/** Format a classification summary line. */
std::string classificationSummary(const core::ClassificationReport &r);

/** Print the standard measurement-cost line (paper §6.1: ~1.4%). */
std::string measurementCost(const core::ExperimentResult &result);

/**
 * Dump the raw per-route series behind a figure to CSV (columns:
 * route, target_ps, burn_value, hour, delta_ps) so the plot can be
 * regenerated with external tooling.
 */
void dumpCsv(const core::ExperimentResult &result,
             const std::string &path);

/**
 * Handle an optional `--csv <path>` command-line flag: when present,
 * dump the result and report where. Returns true when a dump was
 * written.
 */
bool handleCsvFlag(int argc, char **argv,
                   const core::ExperimentResult &result);

/** `--csv <path>` argument, or nullptr when the flag is absent. */
const char *csvPath(int argc, char **argv);

/**
 * The shared ablation `--csv` handler: when the flag is present,
 * write header + rows to the requested path and report where, so
 * every sweep is scriptable with the same flag and format
 * conventions. Returns true when a dump was written.
 */
bool dumpGridCsv(int argc, char **argv,
                 const std::vector<std::string> &header,
                 const std::vector<std::vector<std::string>> &rows);

} // namespace pentimento::bench

#endif // PENTIMENTO_BENCH_COMMON_HPP
