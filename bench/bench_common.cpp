#include "bench_common.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "util/ascii_chart.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"

namespace pentimento::bench {

int
parseWorkers(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--workers") == 0) {
            const int lanes = std::atoi(argv[i + 1]);
            if (lanes >= 1) {
                return lanes;
            }
            std::fprintf(stderr,
                         "bench: ignoring bad --workers '%s'\n",
                         argv[i + 1]);
        }
    }
    // Environment fallback goes through the library's single parser
    // of PENTIMENTO_WORKERS so the lanes convention can't drift.
    if (const auto lanes = util::ThreadPool::lanesFromEnv()) {
        return static_cast<int>(*lanes);
    }
    return 1;
}

long
parseLongFlag(int argc, char **argv, const char *flag, long fallback,
              long min_value)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], flag) != 0) {
            continue;
        }
        if (i + 1 >= argc) {
            util::fatal(std::string("bench: missing value for ") +
                        flag);
        }
        char *end = nullptr;
        const long value = std::strtol(argv[i + 1], &end, 10);
        if (end == argv[i + 1] || *end != '\0' || value < min_value) {
            util::fatal(std::string("bench: bad value for ") + flag);
        }
        return value;
    }
    return fallback;
}

bool
hasFlag(int argc, char **argv, const char *flag)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0) {
            return true;
        }
    }
    return false;
}

std::unique_ptr<util::ThreadPool>
makePool(int argc, char **argv)
{
    const int lanes = parseWorkers(argc, argv);
    return std::make_unique<util::ThreadPool>(
        static_cast<std::size_t>(lanes - 1));
}

std::string
renderGroupChart(const core::ExperimentResult &result, double target_ps,
                 const std::string &title, double marker_hour,
                 double bandwidth_h)
{
    util::AsciiChart chart(76, 18);
    chart.setTitle(title);
    chart.setAxisLabels("hours", "delta ps (falling - rising)");

    std::vector<double> h0, v0, h1, v1;
    for (const std::size_t i : result.groupIndices(target_ps)) {
        const core::RouteRecord &record = result.routes[i];
        const std::vector<double> smooth =
            record.series.smoothed(bandwidth_h);
        for (std::size_t k = 0; k < smooth.size(); ++k) {
            if (record.burn_value) {
                h1.push_back(record.series.hours()[k]);
                v1.push_back(smooth[k]);
            } else {
                h0.push_back(record.series.hours()[k]);
                v0.push_back(smooth[k]);
            }
        }
    }
    if (!h0.empty()) {
        chart.addSeries("burn 0 (cyan in paper)", 'o', h0, v0);
    }
    if (!h1.empty()) {
        chart.addSeries("burn 1 (magenta in paper)", 'x', h1, v1);
    }
    if (marker_hour >= 0.0) {
        chart.addVerticalMarker(marker_hour, '|');
    }
    return chart.render();
}

std::vector<EnvelopeRow>
envelopes(const core::ExperimentResult &result, double h_from,
          double h_to)
{
    std::vector<double> groups;
    for (const auto &route : result.routes) {
        bool seen = false;
        for (const double g : groups) {
            seen = seen || g == route.target_ps;
        }
        if (!seen) {
            groups.push_back(route.target_ps);
        }
    }

    std::vector<EnvelopeRow> rows;
    for (const double g : groups) {
        EnvelopeRow row;
        row.target_ps = g;
        util::RunningStats zero, one;
        for (const std::size_t i : result.groupIndices(g)) {
            const core::RouteRecord &record = result.routes[i];
            const double v =
                record.series.meanBetweenHours(h_from, h_to);
            (record.burn_value ? one : zero).add(v);
        }
        row.burn0_mean_ps = zero.mean();
        row.burn1_mean_ps = one.mean();
        rows.push_back(row);
    }
    return rows;
}

std::string
classificationSummary(const core::ClassificationReport &r)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "bit recovery: %zu/%zu correct (%.1f%%)",
                  r.correct, r.bits.size(), 100.0 * r.accuracy);
    return buf;
}

void
dumpCsv(const core::ExperimentResult &result, const std::string &path)
{
    util::CsvWriter csv(path);
    csv.writeRow(std::vector<std::string>{"route", "target_ps",
                                          "burn_value", "hour",
                                          "delta_ps"});
    for (const core::RouteRecord &record : result.routes) {
        for (std::size_t k = 0; k < record.series.size(); ++k) {
            csv.writeRow(std::vector<std::string>{
                record.name, std::to_string(record.target_ps),
                record.burn_value ? "1" : "0",
                std::to_string(record.series.hours()[k]),
                std::to_string(record.series.values()[k])});
        }
    }
}

const char *
csvPath(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--csv") == 0) {
            return argv[i + 1];
        }
    }
    return nullptr;
}

bool
handleCsvFlag(int argc, char **argv,
              const core::ExperimentResult &result)
{
    const char *path = csvPath(argc, argv);
    if (path == nullptr) {
        return false;
    }
    dumpCsv(result, path);
    std::printf("raw series written to %s\n", path);
    return true;
}

bool
dumpGridCsv(int argc, char **argv,
            const std::vector<std::string> &header,
            const std::vector<std::vector<std::string>> &rows)
{
    const char *path = csvPath(argc, argv);
    if (path == nullptr) {
        return false;
    }
    util::CsvWriter csv(path);
    csv.writeRow(header);
    for (const auto &row : rows) {
        csv.writeRow(row);
    }
    std::printf("\nraw grid written to %s\n", path);
    return true;
}

std::string
measurementCost(const core::ExperimentResult &result)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "measurement: %.0f s per sweep, %.2f%% of experiment "
                  "time (paper: 33-52 s, ~1.4%%)",
                  result.secondsPerSweep(),
                  100.0 * result.measurementFraction());
    return buf;
}

} // namespace pentimento::bench
