#!/usr/bin/env python3
"""CI perf gate: compare two microbench snapshots.

Usage: check_perf_regression.py BASELINE.json NEW.json
           [--max-regress 0.10] [--noise-floor-ns 100]
           [--min-speedup NAME=FACTOR ...]

Fails (exit 1) when any kernel present in BOTH snapshots is slower in
NEW by more than --max-regress (fractional). Kernels faster than the
noise floor in the baseline are reported but never fail the gate:
at tens of nanoseconds per op, run-to-run and machine-to-machine
jitter exceeds the regression threshold. Kernels that exist only in
NEW (freshly registered benchmarks) are listed as new. A baseline
kernel that is MISSING from NEW fails the gate by name (a rename or
accidental deregistration would otherwise silently drop coverage);
waive deliberate removals with --allow-removed NAME.

--min-speedup locks a claimed optimisation in: the named kernel must
be at least FACTOR times faster in NEW than in BASELINE (e.g.
`--min-speedup BM_FleetIdleDay=5` gates the event-driven ambient
fast path against the committed PR 3 snapshot).
"""

import argparse
import json
import os
import sys


def load(path):
    # A missing snapshot is a configuration error, not a clean gate: a
    # mistyped baseline name (or a forgotten commit of the new PR's
    # snapshot) must fail loudly instead of green-lighting the build.
    if not os.path.exists(path):
        raise SystemExit(
            f"{path}: snapshot not found — the perf gate needs both a "
            f"committed baseline and a freshly generated snapshot; "
            f"check the file name and that the benchmark step ran")
    with open(path) as f:
        snap = json.load(f)
    if snap.get("schema") != "pentimento-microbench-v1":
        raise SystemExit(f"{path}: unexpected schema {snap.get('schema')!r}")
    return snap["kernels"]


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("new")
    ap.add_argument("--max-regress", type=float, default=0.10,
                    help="max allowed fractional slowdown (default 0.10)")
    ap.add_argument("--noise-floor-ns", type=float, default=100.0,
                    help="baseline ns/op below which kernels are "
                         "advisory only (default 100)")
    ap.add_argument("--min-speedup", action="append", default=[],
                    metavar="NAME=FACTOR",
                    help="require kernel NAME to be at least FACTOR "
                         "times faster than the baseline")
    ap.add_argument("--allow-removed", action="append", default=[],
                    metavar="NAME",
                    help="baseline kernel NAME may be absent from the "
                         "new snapshot (deliberate rename/retirement); "
                         "any other disappearance fails the gate")
    ap.add_argument("--advisory", action="append", default=[],
                    metavar="NAME",
                    help="report kernel NAME but never fail on it — "
                         "for microkernels whose committed history "
                         "proves multi-x swings across host machines")
    args = ap.parse_args()

    base = load(args.baseline)
    new = load(args.new)

    required = {}
    for spec in args.min_speedup:
        name, _, factor = spec.partition("=")
        if not factor:
            raise SystemExit(f"--min-speedup {spec!r}: expected NAME=FACTOR")
        required[name] = float(factor)

    failures = []
    rows = []
    for name in sorted(set(base) & set(new)):
        b, n = base[name], new[name]
        ratio = n / b if b > 0 else float("inf")
        flag = ""
        if ratio > 1.0 + args.max_regress:
            if b < args.noise_floor_ns:
                flag = "  (regressed, sub-noise-floor: advisory)"
            elif name in args.advisory:
                flag = "  (regressed, advisory by flag)"
            else:
                flag = "  << REGRESSION"
                failures.append(name)
        elif ratio < 1.0 - args.max_regress:
            flag = "  (improved)"
        rows.append(f"  {name:44s} {b:>12.1f} {n:>12.1f} {ratio:>7.2f}x{flag}")

    print(f"perf gate: {args.baseline} -> {args.new} "
          f"(max regress {args.max_regress:.0%})")
    print(f"  {'kernel':44s} {'base ns/op':>12s} {'new ns/op':>12s} {'ratio':>8s}")
    for row in rows:
        print(row)
    for name in sorted(set(new) - set(base)):
        print(f"  {name:44s} {'-':>12s} {new[name]:>12.1f}   (new kernel)")
    # A kernel that disappears silently loses its gate coverage — a
    # rename or accidental deregistration must fail loudly, naming the
    # kernel, unless explicitly waived with --allow-removed.
    removed_failures = []
    allowed_removed = set(args.allow_removed)
    for name in sorted(set(base) - set(new)):
        if name in allowed_removed:
            print(f"  {name:44s} {base[name]:>12.1f} {'-':>12s}   "
                  f"(removed: waived by --allow-removed)")
        else:
            print(f"  {name:44s} {base[name]:>12.1f} {'-':>12s}   "
                  f"<< MISSING from new snapshot")
            removed_failures.append(name)

    speedup_failures = []
    for name, factor in sorted(required.items()):
        if name not in base or name not in new:
            print(f"  {name:44s} required >= {factor:.1f}x speedup but "
                  f"kernel is missing from a snapshot")
            speedup_failures.append(name)
            continue
        achieved = base[name] / new[name] if new[name] > 0 else float("inf")
        verdict = "ok" if achieved >= factor else "<< TOO SLOW"
        print(f"  {name:44s} speedup {achieved:>7.2f}x "
              f"(required {factor:.1f}x)  {verdict}")
        if achieved < factor:
            speedup_failures.append(name)

    if failures or speedup_failures or removed_failures:
        parts = []
        if failures:
            parts.append(f"{len(failures)} kernel(s) regressed more than "
                         f"{args.max_regress:.0%}: {', '.join(failures)}")
        if speedup_failures:
            parts.append(f"{len(speedup_failures)} kernel(s) missed their "
                         f"required speedup: {', '.join(speedup_failures)}")
        if removed_failures:
            parts.append(f"{len(removed_failures)} baseline kernel(s) "
                         f"missing from the new snapshot: "
                         f"{', '.join(removed_failures)}")
        print(f"\nFAIL: {'; '.join(parts)}")
        return 1
    print("\nOK: all perf gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
