/**
 * @file
 * Ablation: attack accuracy vs. burn-in duration.
 *
 * The paper warns that "a determined attacker could build more
 * precise sensors to measure BTI on shorter routes with shorter
 * burn-in periods" (§8). This sweep quantifies how many hours of
 * victim computation the simulated attacker needs before Type A
 * extraction becomes reliable on 5 ns cloud routes.
 */

#include <cstdio>

#include "core/classifier.hpp"
#include "core/experiment.hpp"
#include "util/stats.hpp"

using namespace pentimento;

int
main()
{
    std::printf("=== Ablation: burn-in duration vs. TM1 accuracy "
                "(cloud, 5 ns routes) ===\n\n");
    std::printf("  %9s  %14s  %12s\n", "burn (h)", "contrast(ps)",
                "TM1 accuracy");

    for (const double hours : {10.0, 25.0, 50.0, 100.0, 200.0}) {
        core::Experiment2Config config;
        config.groups = {{5000.0, 12}};
        config.burn_hours = hours;
        config.measure_every_h = std::max(1.0, hours / 50.0);
        config.seed = 808;
        const core::ExperimentResult result =
            core::runExperiment2(config);

        util::RunningStats contrast;
        for (const auto &route : result.routes) {
            contrast.add(std::abs(
                route.series.meanBetweenHours(hours * 0.9, hours)));
        }
        const core::ClassificationReport report =
            core::ThreatModel1Classifier().classify(result);
        std::printf("  %9.0f  %14.3f  %10.1f%%\n", hours,
                    contrast.mean(), 100.0 * report.accuracy);
    }

    std::printf("\nBTI's sublinear (t^n) kinetics mean the first tens "
                "of hours do most of the\nimprinting — long-running "
                "designs gain little extra protection from brevity\n"
                "unless they stay well under a day.\n");
    return 0;
}
