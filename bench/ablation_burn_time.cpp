/**
 * @file
 * Ablation: attack accuracy vs. burn-in duration.
 *
 * The paper warns that "a determined attacker could build more
 * precise sensors to measure BTI on shorter routes with shorter
 * burn-in periods" (§8). This sweep quantifies how many hours of
 * victim computation the simulated attacker needs before Type A
 * extraction becomes reliable on 5 ns cloud routes.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "core/classifier.hpp"
#include "core/experiment.hpp"
#include "util/stats.hpp"

using namespace pentimento;

namespace {

struct BurnRow
{
    double hours = 0.0;
    double contrast_ps = 0.0;
    double accuracy = 0.0;
};

BurnRow
runBurn(double hours)
{
    core::Experiment2Config config;
    config.groups = {{5000.0, 12}};
    config.burn_hours = hours;
    config.measure_every_h = std::max(1.0, hours / 50.0);
    config.seed = 808;
    const core::ExperimentResult result = core::runExperiment2(config);

    BurnRow row;
    row.hours = hours;
    util::RunningStats contrast;
    for (const auto &route : result.routes) {
        contrast.add(std::abs(
            route.series.meanBetweenHours(hours * 0.9, hours)));
    }
    row.contrast_ps = contrast.mean();
    row.accuracy =
        core::ThreatModel1Classifier().classify(result).accuracy;
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("=== Ablation: burn-in duration vs. TM1 accuracy "
                "(cloud, 5 ns routes) ===\n\n");
    std::printf("  %9s  %14s  %12s\n", "burn (h)", "contrast(ps)",
                "TM1 accuracy");

    const std::vector<double> grid = {10.0, 25.0, 50.0, 100.0, 200.0};
    const auto pool = bench::makePool(argc, argv);
    const std::vector<BurnRow> rows = util::parallelMap<BurnRow>(
        grid.size(), [&](std::size_t i) { return runBurn(grid[i]); },
        pool.get());
    for (const BurnRow &row : rows) {
        std::printf("  %9.0f  %14.3f  %10.1f%%\n", row.hours,
                    row.contrast_ps, 100.0 * row.accuracy);
    }

    std::vector<std::vector<std::string>> csv_rows;
    for (const BurnRow &row : rows) {
        csv_rows.push_back(std::vector<std::string>{
            std::to_string(row.hours), std::to_string(row.contrast_ps),
            std::to_string(row.accuracy)});
    }
    bench::dumpGridCsv(argc, argv,
                       {"burn_h", "contrast_ps", "tm1_accuracy"},
                       csv_rows);

    std::printf("\nBTI's sublinear (t^n) kinetics mean the first tens "
                "of hours do most of the\nimprinting — long-running "
                "designs gain little extra protection from brevity\n"
                "unless they stay well under a day.\n");
    return 0;
}
