/**
 * @file
 * Regenerates Table 1: "OpenTitan Earl Grey Distribution of Route
 * Lengths (ps) on a Virtex UltraScale+" — twenty security-critical
 * assets sorted ascending by MAX route length.
 *
 * We cannot run the vendor P&R flow, so the table is reproduced by
 * the quantile-anchored synthesizer (see opentitan/route_synth.hpp):
 * each asset's route population is regenerated and re-summarised with
 * the same statistics the paper reports. "paper" rows are the
 * published values; "meas." rows are computed from the synthesized
 * populations.
 */

#include <cstdio>

#include "opentitan/assets.hpp"
#include "opentitan/route_synth.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace pentimento;

int
main()
{
    std::printf("=== Table 1: OpenTitan Earl Grey route-length "
                "distribution (ps) ===\n\n");

    util::TablePrinter table({"#", "Asset", "Type", "Width", "",
                              "MEAN", "SD", "MIN", "25%", "50%", "75%",
                              "MAX"});
    opentitan::RouteLengthSynthesizer synth;
    const auto num = [](double v) {
        return util::TablePrinter::num(v, 1);
    };
    for (const opentitan::AssetInfo &asset :
         opentitan::earlGreyAssets()) {
        const util::Summary &ref = asset.reference;
        table.addRow({std::to_string(asset.index), asset.path,
                      opentitan::toString(asset.type),
                      std::to_string(asset.bus_width), "paper",
                      num(ref.mean), num(ref.sd), num(ref.min),
                      num(ref.p25), num(ref.p50), num(ref.p75),
                      num(ref.max)});
        const util::Summary meas =
            util::summarize(synth.synthesize(asset));
        table.addRow({"", "", "", "", "meas.", num(meas.mean),
                      num(meas.sd), num(meas.min), num(meas.p25),
                      num(meas.p50), num(meas.p75), num(meas.max)});
    }
    std::printf("%s\n", table.render().c_str());

    std::printf("Most routes are short (a few hundred ps) but several "
                "assets approach 4 ns;\nroute lengths grow further "
                "when OpenTitan shares the FPGA with other logic "
                "(paper 5.3).\n");
    return 0;
}
