/**
 * @file
 * Ablation: §8 mitigations vs. both threat models.
 *
 * Runs the Threat Model 1 attack against a tenant employing each user
 * mitigation (hourly inversion, hourly shuffle, wear leveling), and
 * the Threat Model 2 attack against a tenant that holds the instance
 * with complemented values before release, plus the provider-side
 * launch-rate control (quarantine). Reports residual attacker
 * accuracy; 50% is coin-flip safety.
 */

#include <cstdio>
#include <functional>

#include "bench_common.hpp"
#include "core/classifier.hpp"
#include "core/experiment.hpp"
#include "mitigation/strategies.hpp"

using namespace pentimento;

namespace {

double
tm1Accuracy(mitigation::MitigationStrategy *strategy)
{
    core::Experiment2Config config;
    config.groups = {{5000.0, 16}};
    config.burn_hours = 120.0;
    config.measure_every_h = 2.0;
    config.seed = 31337;
    config.strategy = strategy;
    const core::ExperimentResult result = core::runExperiment2(config);
    return core::ThreatModel1Classifier().classify(result).accuracy;
}

double
tm2Accuracy(mitigation::MitigationStrategy *strategy,
            double quarantine_hours = 0.0)
{
    core::Experiment3Config config;
    config.groups = {{8000.0, 12}};
    config.burn_hours = 150.0;
    config.recovery_hours = 25.0;
    config.seed = 4242;
    config.strategy = strategy;
    config.platform.quarantine_hours = quarantine_hours;
    config.platform.fleet_size = 3;
    const core::ExperimentResult result = core::runExperiment3(config);
    return core::ThreatModel2Classifier().classify(result).accuracy;
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("=== Ablation: mitigations vs. attacker accuracy "
                "===\n\n");

    // Each grid point constructs its own strategy inside the lambda:
    // strategies carry mutable state (e.g. the shuffle RNG), so they
    // must not be shared across concurrently-running points.
    enum class Tm
    {
        One,
        Two
    };
    struct Point
    {
        Tm model;
        const char *label;
        std::function<double()> run;
    };
    const std::vector<Point> grid = {
        {Tm::One, "no mitigation", [] { return tm1Accuracy(nullptr); }},
        {Tm::One, "hourly inversion",
         [] {
             mitigation::InversionMitigation invert(1.0);
             return tm1Accuracy(&invert);
         }},
        {Tm::One, "hourly shuffle",
         [] {
             mitigation::ShuffleMitigation shuffle(1.0, 99);
             return tm1Accuracy(&shuffle);
         }},
        {Tm::One, "wear leveling (4 sites)",
         [] {
             mitigation::WearLevelMitigation wear(4.0, 4);
             return tm1Accuracy(&wear);
         }},
        {Tm::Two, "no mitigation", [] { return tm2Accuracy(nullptr); }},
        {Tm::Two, "hold 48 h complemented",
         [] {
             mitigation::HoldRecoveryMitigation hold(
                 mitigation::Epilogue::Policy::Complement, 48.0);
             return tm2Accuracy(&hold);
         }},
        {Tm::Two, "hold 48 h parked at 0",
         [] {
             mitigation::HoldRecoveryMitigation hold(
                 mitigation::Epilogue::Policy::AllZero, 48.0);
             return tm2Accuracy(&hold);
         }},
        {Tm::Two, "provider quarantine (500 h)",
         [] { return tm2Accuracy(nullptr, 500.0); }},
    };

    const auto pool = bench::makePool(argc, argv);
    const std::vector<double> acc = util::parallelMap<double>(
        grid.size(), [&](std::size_t i) { return grid[i].run(); },
        pool.get());

    std::printf("Threat Model 1 (16 bits on 5 ns routes, 120 h "
                "burn):\n");
    for (std::size_t i = 0; i < grid.size(); ++i) {
        if (grid[i].model == Tm::One) {
            std::printf("  %-28s %7.1f%%\n", grid[i].label,
                        100.0 * acc[i]);
        }
    }

    std::printf("\nThreat Model 2 (12 bits on 8 ns routes, 150 h "
                "victim burn, 25 h recovery):\n");
    for (std::size_t i = 0; i < grid.size(); ++i) {
        if (grid[i].model == Tm::Two) {
            std::printf("  %-28s %7.1f%%\n", grid[i].label,
                        100.0 * acc[i]);
        }
    }

    std::vector<std::vector<std::string>> csv_rows;
    for (std::size_t i = 0; i < grid.size(); ++i) {
        csv_rows.push_back(std::vector<std::string>{
            grid[i].model == Tm::One ? "1" : "2", grid[i].label,
            std::to_string(acc[i])});
    }
    bench::dumpGridCsv(argc, argv,
                       {"threat_model", "mitigation", "accuracy"},
                       csv_rows);

    std::printf("\n50%% = coin flip. Data transformations defeat TM1 "
                "by equalising the stress;\nhold-and-recover bleeds "
                "the TM2 signal at rental cost; quarantine denies "
                "board\nreacquisition outright (the attacker measures "
                "a different card).\n");
    return 0;
}
