/**
 * @file
 * Ablation: §8 mitigations vs. both threat models.
 *
 * Runs the Threat Model 1 attack against a tenant employing each user
 * mitigation (hourly inversion, hourly shuffle, wear leveling), and
 * the Threat Model 2 attack against a tenant that holds the instance
 * with complemented values before release, plus the provider-side
 * launch-rate control (quarantine). Reports residual attacker
 * accuracy; 50% is coin-flip safety.
 */

#include <cstdio>

#include "core/classifier.hpp"
#include "core/experiment.hpp"
#include "mitigation/strategies.hpp"

using namespace pentimento;

namespace {

double
tm1Accuracy(mitigation::MitigationStrategy *strategy)
{
    core::Experiment2Config config;
    config.groups = {{5000.0, 16}};
    config.burn_hours = 120.0;
    config.measure_every_h = 2.0;
    config.seed = 31337;
    config.strategy = strategy;
    const core::ExperimentResult result = core::runExperiment2(config);
    return core::ThreatModel1Classifier().classify(result).accuracy;
}

double
tm2Accuracy(mitigation::MitigationStrategy *strategy,
            double quarantine_hours = 0.0)
{
    core::Experiment3Config config;
    config.groups = {{8000.0, 12}};
    config.burn_hours = 150.0;
    config.recovery_hours = 25.0;
    config.seed = 4242;
    config.strategy = strategy;
    config.platform.quarantine_hours = quarantine_hours;
    config.platform.fleet_size = 3;
    const core::ExperimentResult result = core::runExperiment3(config);
    return core::ThreatModel2Classifier().classify(result).accuracy;
}

} // namespace

int
main()
{
    std::printf("=== Ablation: mitigations vs. attacker accuracy "
                "===\n\n");

    std::printf("Threat Model 1 (16 bits on 5 ns routes, 120 h "
                "burn):\n");
    std::printf("  %-28s %7.1f%%\n", "no mitigation",
                100.0 * tm1Accuracy(nullptr));
    mitigation::InversionMitigation invert(1.0);
    std::printf("  %-28s %7.1f%%\n", "hourly inversion",
                100.0 * tm1Accuracy(&invert));
    mitigation::ShuffleMitigation shuffle(1.0, 99);
    std::printf("  %-28s %7.1f%%\n", "hourly shuffle",
                100.0 * tm1Accuracy(&shuffle));
    mitigation::WearLevelMitigation wear(4.0, 4);
    std::printf("  %-28s %7.1f%%\n", "wear leveling (4 sites)",
                100.0 * tm1Accuracy(&wear));

    std::printf("\nThreat Model 2 (12 bits on 8 ns routes, 150 h "
                "victim burn, 25 h recovery):\n");
    std::printf("  %-28s %7.1f%%\n", "no mitigation",
                100.0 * tm2Accuracy(nullptr));
    mitigation::HoldRecoveryMitigation hold_c(
        mitigation::Epilogue::Policy::Complement, 48.0);
    std::printf("  %-28s %7.1f%%\n", "hold 48 h complemented",
                100.0 * tm2Accuracy(&hold_c));
    mitigation::HoldRecoveryMitigation hold_z(
        mitigation::Epilogue::Policy::AllZero, 48.0);
    std::printf("  %-28s %7.1f%%\n", "hold 48 h parked at 0",
                100.0 * tm2Accuracy(&hold_z));
    std::printf("  %-28s %7.1f%%\n",
                "provider quarantine (500 h)",
                100.0 * tm2Accuracy(nullptr, 500.0));

    std::printf("\n50%% = coin flip. Data transformations defeat TM1 "
                "by equalising the stress;\nhold-and-recover bleeds "
                "the TM2 signal at rental cost; quarantine denies "
                "board\nreacquisition outright (the attacker measures "
                "a different card).\n");
    return 0;
}
