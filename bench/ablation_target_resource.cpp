/**
 * @file
 * Ablation: which FPGA resource should a pentimento attack target?
 *
 * Paper §3 lists the conditions a victim resource must meet and picks
 * programmable routing; §7 explains why LUT configuration SRAM — the
 * resource Zick et al. recovered with femtosecond-class off-chip
 * instrumentation — is out of reach for cloud sensors: its burn-in
 * couples into the read path orders of magnitude more weakly, while
 * on-chip TDCs resolve ~ps. This bench burns the same value through
 * a route and through a LUT path and compares the recovered contrast
 * against the sensor noise floor.
 */

#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "fabric/design.hpp"
#include "fabric/device.hpp"
#include "phys/thermal.hpp"
#include "tdc/tdc.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace pentimento;

namespace {

struct ResourceResult
{
    double contrast_ps = 0.0;
    double noise_ps = 0.0;
    int correct = 0;
    int total = 0;
};

ResourceResult
burnAndMeasure(bool use_lut, std::uint64_t seed)
{
    fabric::Device device{fabric::DeviceConfig{}};
    phys::OvenEnvironment oven(333.15);
    util::Rng rng(seed);

    ResourceResult out;
    out.total = 8;
    std::vector<fabric::RouteSpec> paths;
    std::vector<bool> secret;
    for (int b = 0; b < out.total; ++b) {
        // Match total nominal delay (~5 ns) across resource types so
        // only the coupling differs.
        paths.push_back(use_lut
                            ? device.allocateLutPath(
                                  "lut" + std::to_string(b), 40)
                            : device.allocateRoute(
                                  "net" + std::to_string(b), 5000.0));
        secret.push_back(rng.bernoulli(0.5));
    }

    std::vector<tdc::Tdc> sensors;
    std::vector<double> before;
    std::vector<double> noise_samples;
    for (int b = 0; b < out.total; ++b) {
        sensors.emplace_back(device, paths[static_cast<std::size_t>(b)],
                             device.allocateCarryChain(
                                 "c" + std::to_string(b), 64));
        sensors.back().calibrate(oven.dieTempK(), rng);
        const double m1 =
            sensors.back().measure(oven.dieTempK(), rng).deltaPs();
        const double m2 =
            sensors.back().measure(oven.dieTempK(), rng).deltaPs();
        before.push_back(0.5 * (m1 + m2));
        noise_samples.push_back(std::abs(m1 - m2));
    }
    out.noise_ps = util::mean(noise_samples);

    auto victim = std::make_shared<fabric::Design>("victim");
    for (int b = 0; b < out.total; ++b) {
        victim->setRouteValue(paths[static_cast<std::size_t>(b)],
                              secret[static_cast<std::size_t>(b)]);
    }
    device.loadDesign(victim);
    device.advance(200.0, oven);
    device.wipe();

    util::RunningStats contrast;
    for (int b = 0; b < out.total; ++b) {
        const double drift =
            sensors[static_cast<std::size_t>(b)]
                .measure(oven.dieTempK(), rng)
                .deltaPs() -
            before[static_cast<std::size_t>(b)];
        contrast.add(std::abs(drift));
        out.correct +=
            (drift > 0.0) == secret[static_cast<std::size_t>(b)];
    }
    out.contrast_ps = contrast.mean();
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("=== Ablation: target resource — programmable routing "
                "vs. LUT config SRAM ===\n");
    std::printf("(8 bits, ~5 ns paths, 200 h burn at 60 C, 64-tap "
                "TDC)\n\n");

    const auto pool = bench::makePool(argc, argv);
    const std::vector<ResourceResult> results =
        util::parallelMap<ResourceResult>(
            2,
            [](std::size_t i) { return burnAndMeasure(i == 1, 11); },
            pool.get());
    const ResourceResult route = results[0];
    const ResourceResult lut = results[1];

    std::printf("  %-22s %14s %14s %10s\n", "resource",
                "contrast (ps)", "noise (ps)", "recovered");
    std::printf("  %-22s %14.3f %14.3f %6d/%d\n",
                "programmable routing", route.contrast_ps,
                route.noise_ps, route.correct, route.total);
    std::printf("  %-22s %14.3f %14.3f %6d/%d\n", "LUT config SRAM",
                lut.contrast_ps, lut.noise_ps, lut.correct, lut.total);

    const auto resourceRow = [](const char *name,
                                const ResourceResult &r) {
        return std::vector<std::string>{
            name, std::to_string(r.contrast_ps),
            std::to_string(r.noise_ps), std::to_string(r.correct),
            std::to_string(r.total)};
    };
    bench::dumpGridCsv(argc, argv,
                       {"resource", "contrast_ps", "noise_ps",
                        "correct", "total"},
                       {resourceRow("routing", route),
                        resourceRow("lut_sram", lut)});

    std::printf("\nLUT burn-in couples ~%.0fx more weakly into timing; "
                "reading it would need\n~%.0f fs resolution "
                "(Zick et al. used off-chip femtosecond "
                "instrumentation),\nfar beyond the ~10 ps of a cloud "
                "TDC. Routing is the paper's target for a\nreason: it "
                "burns, it differs by polarity, and it is observable "
                "(paper 3).\n",
                route.contrast_ps / std::max(lut.contrast_ps, 1e-9),
                1000.0 * lut.contrast_ps);
    return 0;
}
