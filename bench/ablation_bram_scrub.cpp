/**
 * @file
 * Ablation: when should the provider zero BRAM contents?
 *
 * The aging channel cannot be erased logically
 * (ablation_provider_scrub); the BRAM content-remanence channel can —
 * the provider just has to pay for a zeroing pass somewhere in the
 * tenancy lifecycle. This bench runs the same fleet-scan campaign
 * under the three content-scrub policies and prices them:
 *
 *  - **none**: contents ride along to the next tenant. The attacker
 *    recovers every retained word.
 *  - **zero-on-release**: scrub inside the provider's release
 *    pipeline. Unclean teardowns (tenant crash, host power event)
 *    bypass the pipeline — and therefore the scrub — so a residual
 *    exposure window survives.
 *  - **zero-on-rent**: scrub at hand-over to the next tenant. Catches
 *    unclean teardowns too; recovery drops to zero at the price of
 *    one scrub per rental (including rentals that never needed it).
 *
 * The ScrubPolicyAdvisor ranks the measured outcomes by exposure
 * reduction and reports the scrub-operation cost per point of
 * reduction. The expected strict ordering of recovery rates
 * (none > zero-on-release > zero-on-rent) is locked by bram_test.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "mitigation/advisor.hpp"
#include "serve/campaign.hpp"
#include "util/logging.hpp"

using namespace pentimento;

namespace {

constexpr std::size_t kFleet = 24;
constexpr int kDays = 180;
constexpr std::uint64_t kSeed = 777;

mitigation::ScrubPolicyOutcome
runPolicy(const std::string &name, cloud::BramScrubPolicy policy)
{
    serve::FleetScanConfig config;
    config.fleet = kFleet;
    config.days = kDays;
    config.seed = kSeed;
    config.bram_channel = true;
    config.bram_scrub = policy;
    const util::Expected<serve::FleetScanResult> run =
        serve::runFleetScan(config);
    if (!run.ok()) {
        util::fatal("ablation_bram_scrub: " + run.error());
    }
    std::uint64_t blocks = 0;
    std::uint64_t recovered = 0;
    for (const serve::FleetScanBramScore &score :
         run.value().bram_boards) {
        blocks += score.blocks;
        recovered += score.recovered;
    }
    mitigation::ScrubPolicyOutcome outcome;
    outcome.name = name;
    outcome.recovery_rate =
        blocks > 0 ? static_cast<double>(recovered) /
                         static_cast<double>(blocks)
                   : 0.0;
    outcome.scrub_ops = run.value().bram_scrub_ops;
    return outcome;
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("=== Ablation: provider BRAM content-scrub policies "
                "===\n");
    std::printf("(%zu boards, %d simulated days, TM2 readout of the "
                "last tenancy's words\nbefore the attacker's first "
                "reconfiguration)\n\n",
                kFleet, kDays);

    std::vector<mitigation::ScrubPolicyOutcome> outcomes = {
        runPolicy("none", cloud::BramScrubPolicy::None),
        runPolicy("zero-on-release",
                  cloud::BramScrubPolicy::ZeroOnRelease),
        runPolicy("zero-on-rent", cloud::BramScrubPolicy::ZeroOnRent),
    };

    const std::vector<mitigation::ScrubPolicyAdvice> ranked =
        mitigation::ScrubPolicyAdvisor().rank(outcomes, "none");

    std::printf("  %-18s %10s %10s %10s %14s\n", "policy", "recovery",
                "scrubs", "benefit", "scrubs/point");
    std::vector<std::vector<std::string>> csv_rows;
    for (const mitigation::ScrubPolicyAdvice &a : ranked) {
        char cost[32];
        if (a.benefit > 0.0) {
            std::snprintf(cost, sizeof(cost), "%.0f",
                          a.cost_per_benefit / 100.0);
        } else {
            std::snprintf(cost, sizeof(cost), "-");
        }
        std::printf("  %-18s %9.1f%% %10zu %9.1f%% %14s\n",
                    a.name.c_str(), 100.0 * a.recovery_rate,
                    static_cast<std::size_t>(a.scrub_ops),
                    100.0 * a.benefit, cost);
        csv_rows.push_back(std::vector<std::string>{
            a.name, std::to_string(a.recovery_rate),
            std::to_string(a.scrub_ops), std::to_string(a.benefit),
            std::to_string(a.rank)});
    }
    bench::dumpGridCsv(
        argc, argv,
        {"policy", "recovery_rate", "scrub_ops", "benefit", "rank"},
        csv_rows);

    std::printf(
        "\nzero-on-release buys most of the reduction at the fewest "
        "scrubs but leaves the\nunclean-teardown window open; "
        "zero-on-rent closes it completely for a scrub on\nevery "
        "rental. Unlike the aging channel, content remanence is "
        "logically erasable\n— the provider's only question is where "
        "in the lifecycle to pay.\n");
    return 0;
}
