/**
 * @file
 * campaign_server: the long-running campaign-as-a-service daemon.
 *
 * Binds serve::CampaignServer on loopback and serves protocol-v1
 * requests until SIGINT/SIGTERM, which triggers a graceful drain:
 * stop accepting, answer new requests SHUTTING_DOWN, cancel in-flight
 * campaigns at their next day boundary (flushing a final checkpoint)
 * and exit 0. `--port 0` (the default) binds an ephemeral port and
 * prints it — scripts parse the "listening on port N" line.
 *
 * Crash recovery: with --checkpoint-dir set, fleet-scan campaigns
 * checkpoint under it keyed by request id; after a crash (or kill -9)
 * restart the server with the same directory and resubmit the
 * identical request — it resumes from the latest good generation and
 * re-delivers byte-identical RESULT bytes.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <sys/stat.h>
#include <thread>
#include <unistd.h>

#include "bench_common.hpp"
#include "serve/server.hpp"
#include "util/fault.hpp"
#include "util/logging.hpp"

using namespace pentimento;

namespace {

std::atomic<int> g_signal{0};

void
onSignal(int sig)
{
    g_signal.store(sig, std::memory_order_relaxed);
}

void
printUsage(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: campaign_server [options]\n"
        "  --port P             TCP port (default 0 = ephemeral)\n"
        "  --workers N          simulation lanes shared by requests\n"
        "  --executors N        concurrent request executors "
        "(default 1)\n"
        "  --queue N            admission queue capacity (default 8)\n"
        "  --deadline-ms N      default per-request deadline\n"
        "  --max-deadline-ms N  ceiling on client deadlines\n"
        "  --frame-timeout-ms N mid-frame stall timeout\n"
        "  --checkpoint-dir P   campaign checkpoint directory\n"
        "  --worker             shard-worker mode: exit when stdin "
        "closes\n"
        "  --verbose            per-request log lines\n");
}

bool
argsAreKnown(int argc, char **argv)
{
    static const char *kValueFlags[] = {
        "--port",        "--workers",
        "--executors",   "--queue",
        "--deadline-ms", "--max-deadline-ms",
        "--frame-timeout-ms", "--checkpoint-dir"};
    static const char *kBareFlags[] = {"--verbose", "--worker"};
    for (int i = 1; i < argc; ++i) {
        bool known = false;
        for (const char *flag : kValueFlags) {
            if (std::strcmp(argv[i], flag) == 0) {
                if (i + 1 >= argc) {
                    std::fprintf(stderr,
                                 "campaign_server: missing value for "
                                 "%s\n",
                                 flag);
                    return false;
                }
                ++i;
                known = true;
                break;
            }
        }
        for (const char *flag : kBareFlags) {
            if (!known && std::strcmp(argv[i], flag) == 0) {
                known = true;
                break;
            }
        }
        if (!known) {
            std::fprintf(stderr,
                         "campaign_server: unknown flag '%s'\n",
                         argv[i]);
            return false;
        }
    }
    return true;
}

const char *
parseStringFlag(int argc, char **argv, const char *flag,
                const char *fallback)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0) {
            return argv[i + 1];
        }
    }
    return fallback;
}

} // namespace

int
main(int argc, char **argv)
{
    if (!argsAreKnown(argc, argv)) {
        printUsage(stderr);
        return 2;
    }
    serve::CampaignServerConfig config;
    try {
        config.port = static_cast<std::uint16_t>(
            bench::parseLongFlag(argc, argv, "--port", 0, 0));
        config.sim_workers = static_cast<std::size_t>(
            bench::parseWorkers(argc, argv) - 1);
        config.executors = static_cast<int>(
            bench::parseLongFlag(argc, argv, "--executors", 1));
        config.queue_capacity = static_cast<std::size_t>(
            bench::parseLongFlag(argc, argv, "--queue", 8));
        config.default_deadline_ms = static_cast<std::uint32_t>(
            bench::parseLongFlag(argc, argv, "--deadline-ms", 60000));
        config.max_deadline_ms = static_cast<std::uint32_t>(
            bench::parseLongFlag(argc, argv, "--max-deadline-ms",
                                 600000));
        config.frame_timeout_ms = static_cast<std::uint32_t>(
            bench::parseLongFlag(argc, argv, "--frame-timeout-ms",
                                 5000));
        config.checkpoint_dir =
            parseStringFlag(argc, argv, "--checkpoint-dir", "");
    } catch (const util::FatalError &error) {
        std::fprintf(stderr, "campaign_server: %s\n", error.what());
        printUsage(stderr);
        return 2;
    }
    if (bench::hasFlag(argc, argv, "--verbose")) {
        util::setVerbosity(util::Verbosity::Info);
    }
    // Chaos harnesses hand workers their deterministic fault schedule
    // through the environment; a typoed schedule must refuse to start
    // rather than fake an injection-free green run.
    const util::Expected<void> armed = util::fault::armFromEnv();
    if (!armed.ok()) {
        std::fprintf(stderr, "campaign_server: %s\n",
                     armed.error().c_str());
        return 1;
    }
    if (!config.checkpoint_dir.empty()) {
        if (::mkdir(config.checkpoint_dir.c_str(), 0777) != 0 &&
            errno != EEXIST) {
            std::fprintf(stderr,
                         "campaign_server: cannot create checkpoint "
                         "dir %s: %s\n",
                         config.checkpoint_dir.c_str(),
                         std::strerror(errno));
            return 1;
        }
    }

    serve::CampaignServer server(config);
    const util::Expected<void> started = server.start();
    if (!started.ok()) {
        std::fprintf(stderr, "campaign_server: %s\n",
                     started.error().c_str());
        return 1;
    }
    std::printf("campaign_server listening on port %u\n",
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);

    if (bench::hasFlag(argc, argv, "--worker")) {
        // Shard-worker mode: the supervisor holds our stdin pipe. EOF
        // means it is gone — exit immediately rather than linger as
        // an orphan daemon. _Exit, not exit: a shard worker's only
        // durable state is its checkpoint, already safe on disk, and
        // a prompt death is exactly what the supervisor's crash
        // machinery is built to absorb.
        std::thread([] {
            char buf[64];
            for (;;) {
                const ssize_t n = ::read(0, buf, sizeof(buf));
                if (n == 0 || (n < 0 && errno != EINTR)) {
                    std::_Exit(0);
                }
            }
        }).detach();
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    while (g_signal.load(std::memory_order_relaxed) == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    const int sig = g_signal.load(std::memory_order_relaxed);
    std::printf("campaign_server: signal %d, draining\n", sig);
    std::fflush(stdout);
    server.stop(); // drain: finish/deadline-out in-flight, checkpoint
    std::printf("campaign_server: drained, bye\n");
    return 0;
}
