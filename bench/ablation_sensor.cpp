/**
 * @file
 * Ablation: TDC vs. ring-oscillator sensing (paper §7).
 *
 * Three claims to reproduce:
 *  1. the RO's combinational loop fails the provider's design rule
 *     checks outright, while the TDC loads cleanly — so on the cloud
 *     the comparison is already over;
 *  2. an RO integrates NMOS and PMOS transit into one scalar. Under
 *     perfect lab conditions a residual polarity signal survives
 *     (NBTI grows the period ~20% more than PBTI), but it is
 *     one-sided magnitude, not sign;
 *  3. that residue dies under cloud ambient drift: ±1.6 K between
 *     baseline and post-burn readings moves the RO period by more
 *     than the class gap, while the TDC's falling-minus-rising
 *     observable cancels temperature common-mode and keeps its
 *     opposite-sign separation.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "fabric/design.hpp"
#include "fabric/device.hpp"
#include "fabric/drc.hpp"
#include "phys/thermal.hpp"
#include "tdc/measure_design.hpp"
#include "tdc/ro_sensor.hpp"
#include "tdc/tdc.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace pentimento;

namespace {

struct SensorRun
{
    int tdc_correct = 0;
    int ro_correct = 0;
    int total = 0;
};

/**
 * Burn 12 routes and classify with both sensors. ambient_sigma_k > 0
 * adds independent temperature drift between each route's baseline
 * and post-burn readings (the cloud's uncontrolled environment).
 */
SensorRun
runComparison(double ambient_sigma_k, std::uint64_t seed)
{
    fabric::Device device{fabric::DeviceConfig{}};
    util::Rng rng(seed);
    const double t0 = 318.15;

    std::vector<fabric::RouteSpec> routes;
    std::vector<bool> burn;
    for (int r = 0; r < 12; ++r) {
        routes.push_back(
            device.allocateRoute("r" + std::to_string(r), 5000.0));
        burn.push_back(r % 2 == 0);
    }

    const auto drawTemp = [&] {
        return t0 + rng.gaussian(0.0, ambient_sigma_k);
    };

    std::vector<tdc::Tdc> tdcs;
    std::vector<double> tdc_before, ro_before;
    for (std::size_t r = 0; r < routes.size(); ++r) {
        const double temp = drawTemp();
        tdcs.emplace_back(device, routes[r],
                          device.allocateCarryChain(
                              "c" + std::to_string(r), 64));
        tdcs.back().calibrate(temp, rng);
        tdc_before.push_back(tdcs.back().measure(temp, rng).deltaPs());
        ro_before.push_back(
            tdc::RingOscillatorSensor(device, routes[r])
                .periodPs(temp));
    }

    auto design = std::make_shared<fabric::Design>("burn");
    for (std::size_t r = 0; r < routes.size(); ++r) {
        design->setRouteValue(routes[r], burn[r]);
    }
    device.loadDesign(design);
    phys::OvenEnvironment oven(t0);
    device.advance(150.0, oven);
    device.wipe();

    std::vector<double> tdc_drift, ro_growth;
    for (std::size_t r = 0; r < routes.size(); ++r) {
        const double temp = drawTemp();
        tdc_drift.push_back(tdcs[r].measure(temp, rng).deltaPs() -
                            tdc_before[r]);
        ro_growth.push_back(
            tdc::RingOscillatorSensor(device, routes[r])
                .periodPs(temp) -
            ro_before[r]);
    }

    // TDC: polarity is the drift sign. RO: best unlabeled split of
    // the one-sided growth magnitudes (bigger growth -> NBTI -> 0).
    SensorRun run;
    run.total = static_cast<int>(routes.size());
    const double ro_split = util::otsuThreshold(ro_growth);
    for (std::size_t r = 0; r < routes.size(); ++r) {
        run.tdc_correct += (tdc_drift[r] > 0.0) == burn[r];
        run.ro_correct += (ro_growth[r] < ro_split) == burn[r];
    }
    return run;
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("=== Ablation: TDC vs. ring-oscillator sensor "
                "(12 bits, 5 ns routes, 150 h) ===\n\n");

    const auto pool = bench::makePool(argc, argv);
    const std::vector<double> sigmas = {0.0, 1.6};
    const std::vector<SensorRun> runs = util::parallelMap<SensorRun>(
        sigmas.size(),
        [&](std::size_t i) { return runComparison(sigmas[i], 5); },
        pool.get());

    const SensorRun lab = runs[0];
    std::printf("lab conditions (temperature pinned):\n");
    std::printf("  TDC  sign recovery:      %2d/%d\n", lab.tdc_correct,
                lab.total);
    std::printf("  RO   magnitude recovery: %2d/%d  (rides on the "
                "NBTI/PBTI asymmetry only)\n",
                lab.ro_correct, lab.total);

    const SensorRun cloud = runs[1];
    std::printf("\ncloud conditions (+/-1.6 K ambient drift between "
                "readings):\n");
    std::printf("  TDC  sign recovery:      %2d/%d  (differential "
                "observable cancels drift)\n",
                cloud.tdc_correct, cloud.total);
    std::printf("  RO   magnitude recovery: %2d/%d  (1 ps class gap "
                "buried under ~1.6 ps drift)\n",
                cloud.ro_correct, cloud.total);

    // DRC verdicts: the decisive difference on a real platform.
    fabric::Device device{fabric::DeviceConfig{}};
    std::vector<fabric::RouteSpec> routes{
        device.allocateRoute("r", 5000.0)};
    const fabric::DesignRuleChecker drc;
    tdc::MeasureDesign tdc_design(device, routes);
    tdc::RingOscillatorSensor ro(device, routes[0]);
    const auto ro_violations = drc.check(*ro.buildDesign());
    std::printf("\nprovider DRC: TDC design %s; RO design %s",
                drc.accepts(tdc_design) ? "ACCEPTED" : "rejected",
                ro_violations.empty() ? "accepted" : "REJECTED");
    if (!ro_violations.empty()) {
        std::printf(" (%s)", ro_violations[0].rule.c_str());
    }
    std::vector<std::vector<std::string>> csv_rows;
    for (std::size_t i = 0; i < sigmas.size(); ++i) {
        csv_rows.push_back(std::vector<std::string>{
            std::to_string(sigmas[i]),
            std::to_string(runs[i].tdc_correct),
            std::to_string(runs[i].ro_correct),
            std::to_string(runs[i].total)});
    }
    bench::dumpGridCsv(argc, argv,
                       {"ambient_sigma_k", "tdc_correct", "ro_correct",
                        "total"},
                       csv_rows);

    std::printf("\n\nthe TDC separates NBTI from PBTI by polarity and "
                "passes DRC; the RO loses the\nsign, loses its margin "
                "to ambient drift, and never loads on AWS at all.\n");
    return 0;
}
