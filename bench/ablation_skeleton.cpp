/**
 * @file
 * Ablation: how much of Assumption 1 does the attacker really need?
 *
 * Both threat models assume the attacker knows the victim's placement
 * "skeleton". This sweep corrupts that knowledge: for a fraction of
 * the routes the attacker's Measure design points at the wrong
 * physical location (fresh fabric, no imprint). Recovery accuracy
 * should interpolate from chance (0% knowledge) to the full attack
 * (100%), demonstrating both that Assumption 1 is necessary and that
 * *partial* leaks of placement information already leak data.
 */

#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "fabric/design.hpp"
#include "fabric/device.hpp"
#include "phys/thermal.hpp"
#include "tdc/tdc.hpp"
#include "util/rng.hpp"

using namespace pentimento;

namespace {

/** Fraction of bits recovered with partial skeleton knowledge. */
double
accuracyWithKnowledge(double knowledge, std::uint64_t seed)
{
    fabric::Device device{fabric::DeviceConfig{}};
    phys::OvenEnvironment oven(333.15);
    util::Rng rng(seed);

    const int bits = 16;
    std::vector<fabric::RouteSpec> truth;
    std::vector<bool> secret;
    for (int b = 0; b < bits; ++b) {
        truth.push_back(
            device.allocateRoute("secret" + std::to_string(b), 5000.0));
        secret.push_back(rng.bernoulli(0.5));
    }

    // The attacker's belief: correct spec with probability
    // `knowledge`, otherwise a plausible-but-wrong location.
    std::vector<fabric::RouteSpec> believed;
    for (int b = 0; b < bits; ++b) {
        if (rng.bernoulli(knowledge)) {
            believed.push_back(truth[static_cast<std::size_t>(b)]);
        } else {
            believed.push_back(device.allocateRoute(
                "decoy" + std::to_string(b), 5000.0));
        }
    }

    // Baseline on the believed skeleton, burn on the true one.
    std::vector<tdc::Tdc> sensors;
    std::vector<double> before;
    for (int b = 0; b < bits; ++b) {
        sensors.emplace_back(device,
                             believed[static_cast<std::size_t>(b)],
                             device.allocateCarryChain(
                                 "c" + std::to_string(b), 64));
        sensors.back().calibrate(oven.dieTempK(), rng);
        before.push_back(
            sensors.back().measure(oven.dieTempK(), rng).deltaPs());
    }

    auto victim = std::make_shared<fabric::Design>("victim");
    for (int b = 0; b < bits; ++b) {
        victim->setRouteValue(truth[static_cast<std::size_t>(b)],
                              secret[static_cast<std::size_t>(b)]);
    }
    device.loadDesign(victim);
    device.advance(150.0, oven);
    device.wipe();

    int correct = 0;
    for (int b = 0; b < bits; ++b) {
        const double drift =
            sensors[static_cast<std::size_t>(b)]
                .measure(oven.dieTempK(), rng)
                .deltaPs() -
            before[static_cast<std::size_t>(b)];
        correct += (drift > 0.0) == secret[static_cast<std::size_t>(b)];
    }
    return static_cast<double>(correct) / bits;
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("=== Ablation: skeleton knowledge (Assumption 1) vs. "
                "recovery accuracy ===\n");
    std::printf("(16 bits on 5 ns routes, 150 h burn, lab "
                "conditions; wrong locations point at\nfresh fabric)\n"
                "\n");
    std::printf("  %10s  %10s\n", "knowledge", "accuracy");

    // Flatten (knowledge level x trial) into one grid so every
    // independent run can occupy a worker lane.
    const std::vector<double> levels = {0.0, 0.25, 0.5, 0.75, 1.0};
    const int trials = 3;
    const auto pool = bench::makePool(argc, argv);
    const std::vector<double> acc = util::parallelMap<double>(
        levels.size() * trials,
        [&](std::size_t i) {
            return accuracyWithKnowledge(levels[i / trials],
                                         1000 + i % trials);
        },
        pool.get());
    for (std::size_t level = 0; level < levels.size(); ++level) {
        double sum = 0.0;
        for (int t = 0; t < trials; ++t) {
            sum += acc[level * trials + t];
        }
        std::printf("  %9.0f%%  %9.1f%%\n", 100.0 * levels[level],
                    100.0 * sum / trials);
    }
    std::vector<std::vector<std::string>> csv_rows;
    for (std::size_t level = 0; level < levels.size(); ++level) {
        for (int t = 0; t < trials; ++t) {
            csv_rows.push_back(std::vector<std::string>{
                std::to_string(levels[level]), std::to_string(t),
                std::to_string(acc[level * trials + t])});
        }
    }
    bench::dumpGridCsv(argc, argv, {"knowledge", "trial", "accuracy"},
                       csv_rows);

    std::printf("\naccuracy interpolates from coin-flip to complete "
                "recovery: Assumption 1 is\nnecessary, and every "
                "partially-leaked placement is already a partial key "
                "leak.\n");
    return 0;
}
