/**
 * @file
 * Ablation: temporal-channel lifetime — thermal covert channel vs.
 * pentimenti.
 *
 * Related work (Tian & Szefer, §7) built a single-tenant temporal
 * covert channel from residual *heat*: the receiver must grab the
 * board within minutes because "cloud FPGAs return to ambient
 * temperatures within a few minutes". BTI remanence, by contrast,
 * "can last hundreds of hours". This bench transmits one bit through
 * each channel and sweeps the gap between victim release and attacker
 * measurement.
 */

#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "fabric/design.hpp"
#include "fabric/device.hpp"
#include "phys/thermal.hpp"
#include "tdc/tdc.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

using namespace pentimento;

namespace {

struct ChannelReadout
{
    double thermal_signal_k = 0.0; ///< residual die heating, kelvin
    double bti_signal_ps = 0.0;    ///< pentimento contrast, ps
};

ChannelReadout
readAfterGap(double gap_hours, std::uint64_t seed)
{
    fabric::Device device{fabric::DeviceConfig{}};
    // Cloud-style package thermal model around a 45 C ambient.
    phys::PackageThermalModel thermal(util::celsiusToKelvin(45.0));
    util::Rng rng(seed);

    const fabric::RouteSpec route = device.allocateRoute("bit", 5000.0);
    tdc::Tdc sensor(device, route,
                    device.allocateCarryChain("chain", 64));
    sensor.calibrate(thermal.dieTempK(), rng);
    const double before =
        sensor.measure(thermal.dieTempK(), rng).deltaPs();

    // The transmitter: a hot design holding the route at 1 for 20 h
    // (heat transmits through power; data transmits through BTI).
    auto tx = std::make_shared<fabric::Design>("transmitter");
    tx->setRouteValue(route, true);
    tx->setPowerW(80.0);
    device.loadDesign(tx);
    device.advance(20.0, thermal);
    device.wipe();

    const double hot_k = thermal.dieTempK();
    (void)hot_k;
    // The gap: board idle in the pool.
    if (gap_hours > 0.0) {
        device.advance(gap_hours, thermal);
    }

    ChannelReadout readout;
    readout.thermal_signal_k =
        thermal.dieTempK() - util::celsiusToKelvin(45.0);
    readout.bti_signal_ps =
        sensor.measure(thermal.dieTempK(), rng).deltaPs() - before;
    return readout;
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("=== Ablation: temporal-channel lifetime — heat vs. "
                "pentimento ===\n");
    std::printf("(one 5 ns route held at 1 by an 80 W design for "
                "20 h, then released)\n\n");
    std::printf("  %-18s %18s %18s\n", "gap before read",
                "thermal residue", "BTI contrast");

    struct Gap
    {
        const char *label;
        double hours;
    };
    const std::vector<Gap> gaps = {{"30 seconds", 30.0 / 3600.0},
                                   {"5 minutes", 5.0 / 60.0},
                                   {"1 hour", 1.0},
                                   {"1 day", 24.0},
                                   {"1 week", 168.0}};
    const auto pool = bench::makePool(argc, argv);
    const std::vector<ChannelReadout> readouts =
        util::parallelMap<ChannelReadout>(
            gaps.size(),
            [&](std::size_t i) {
                return readAfterGap(gaps[i].hours, 77);
            },
            pool.get());
    for (std::size_t i = 0; i < gaps.size(); ++i) {
        std::printf("  %-18s %15.2f K  %15.2f ps\n", gaps[i].label,
                    readouts[i].thermal_signal_k,
                    readouts[i].bti_signal_ps);
    }

    std::vector<std::vector<std::string>> csv_rows;
    for (std::size_t i = 0; i < gaps.size(); ++i) {
        csv_rows.push_back(std::vector<std::string>{
            gaps[i].label, std::to_string(gaps[i].hours),
            std::to_string(readouts[i].thermal_signal_k),
            std::to_string(readouts[i].bti_signal_ps)});
    }
    bench::dumpGridCsv(argc, argv,
                       {"gap", "gap_hours", "thermal_residue_k",
                        "bti_contrast_ps"},
                       csv_rows);

    std::printf("\nthe thermal channel decays with the package time "
                "constant (seconds-minutes);\nthe pentimento outlives "
                "it by orders of magnitude — the paper's 'more\n"
                "pernicious temporal channel'.\n");
    return 0;
}
