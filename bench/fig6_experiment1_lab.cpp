/**
 * @file
 * Regenerates Figure 6 — Experiment 1 (Lab Environment).
 *
 * A factory-new ZCU102 in a 60 C oven. 64 routes (16 each of 1000 /
 * 2000 / 5000 / 10000 ps) burn a random X for 200 hours, then recover
 * under X̄ for 200 hours; ∆ps (falling − rising) is measured hourly,
 * centered at hour 0 and kernel-smoothed.
 *
 * Paper expectations:
 *  - burn 0 (cyan) falls, burn 1 (magenta) rises, from hour zero;
 *  - |∆ps| at h200: ±[1,2] / ±[2,3] / ±[5,6] / ±[10,11] ps per group;
 *  - burn-1 routes re-cross zero within 30-50 h of recovery;
 *  - burn-0 routes take >200 h;
 *  - measurement is a ~1.4% tax.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "core/experiment.hpp"

using namespace pentimento;

namespace {

/**
 * Mean hours to re-cross zero after the burn/recovery switch,
 * computed over the 5/10 ns groups (short-route noise straddles zero
 * long before the physics does).
 */
double
meanCrossingHours(const core::ExperimentResult &result, bool burn_value,
                  double switch_hour)
{
    double sum = 0.0;
    int count = 0;
    for (const auto &route : result.routes) {
        if (route.burn_value != burn_value ||
            route.target_ps < 5000.0) {
            continue;
        }
        const auto smooth = route.series.smoothed(20.0);
        const auto &hours = route.series.hours();
        double crossing = -1.0;
        for (std::size_t k = 0; k < hours.size(); ++k) {
            if (hours[k] <= switch_hour) {
                continue;
            }
            const bool crossed = burn_value ? smooth[k] <= 0.0
                                            : smooth[k] >= 0.0;
            if (crossed) {
                crossing = hours[k] - switch_hour;
                break;
            }
        }
        if (crossing >= 0.0) {
            sum += crossing;
            ++count;
        }
    }
    return count == 0 ? -1.0 : sum / count;
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("=== Figure 6: Experiment 1 (lab, new ZCU102, 60 C "
                "oven) ===\n\n");
    core::Experiment1Config config;
    config.seed = 2023;
    const auto pool = bench::makePool(argc, argv);
    config.pool = pool.get();
    const core::ExperimentResult result = core::runExperiment1(config);

    const char *labels[] = {"(a) 1000 ps routes", "(b) 2000 ps routes",
                            "(c) 5000 ps routes",
                            "(d) 10000 ps routes"};
    const double groups[] = {1000.0, 2000.0, 5000.0, 10000.0};
    for (int g = 0; g < 4; ++g) {
        std::printf("%s\n",
                    bench::renderGroupChart(result, groups[g],
                                            labels[g], 200.0)
                        .c_str());
    }

    std::printf("deltas at the 200-hour mark (mean of hours "
                "[190, 200]):\n");
    std::printf("  %10s  %12s  %12s  %s\n", "group", "burn 0", "burn 1",
                "paper envelope");
    const char *paper[] = {"-/+ [1,2] ps", "-/+ [2,3] ps",
                           "-/+ [5,6] ps", "-/+ [10,11] ps"};
    const auto rows = bench::envelopes(result, 190.0, 200.0);
    for (std::size_t g = 0; g < rows.size(); ++g) {
        std::printf("  %8.0fps  %+10.2fps  %+10.2fps  %s\n",
                    rows[g].target_ps, rows[g].burn0_mean_ps,
                    rows[g].burn1_mean_ps, paper[g]);
    }

    std::printf("\nrecovery (after the hour-200 switch to X-bar):\n");
    const double burn1_cross = meanCrossingHours(result, true, 200.0);
    const double burn0_cross = meanCrossingHours(result, false, 200.0);
    if (burn1_cross >= 0.0) {
        std::printf("  burn-1 routes re-cross zero after ~%.0f h "
                    "(paper: 30-50 h)\n",
                    burn1_cross);
    }
    if (burn0_cross >= 0.0) {
        std::printf("  burn-0 routes re-cross zero after ~%.0f h "
                    "(paper: over 200 h)\n",
                    burn0_cross);
    } else {
        std::printf("  burn-0 routes have NOT re-crossed zero within "
                    "200 h (paper: over 200 h)\n");
    }

    std::printf("\n%s\n", bench::measurementCost(result).c_str());
    bench::handleCsvFlag(argc, argv, result);
    return 0;
}
