/**
 * @file
 * Ablation: die temperature vs. burn-in rate.
 *
 * Temperature accelerates BTI — it is why the Target design ships
 * Arithmetic Heavy circuits ("the added benefit of accelerating the
 * BTI effect through increased heat generation", §5.1), why
 * Experiment 1 uses a 60 C oven, and why providers managing thermals
 * is a §8.2 mitigation lever. This sweep burns 5 ns routes for 100 h
 * at four oven temperatures.
 */

#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "fabric/design.hpp"
#include "fabric/device.hpp"
#include "phys/thermal.hpp"
#include "tdc/tdc.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

using namespace pentimento;

namespace {

double
contrastAtTemperature(double temp_c, std::uint64_t seed)
{
    fabric::DeviceConfig config;
    config.seed = seed;
    fabric::Device device(config);
    phys::OvenEnvironment oven(util::celsiusToKelvin(temp_c));
    util::Rng rng(seed);

    util::RunningStats contrast;
    for (int r = 0; r < 6; ++r) {
        const fabric::RouteSpec route = device.allocateRoute(
            "r" + std::to_string(r), 5000.0);
        tdc::Tdc sensor(device, route,
                        device.allocateCarryChain(
                            "c" + std::to_string(r), 64));
        sensor.calibrate(oven.dieTempK(), rng);
        const double before =
            sensor.measure(oven.dieTempK(), rng).deltaPs();

        auto design = std::make_shared<fabric::Design>("burn");
        design->setRouteValue(route, r % 2 == 0);
        device.loadDesign(design);
        device.advance(100.0, oven);
        device.wipe();

        const double after =
            sensor.measure(oven.dieTempK(), rng).deltaPs();
        contrast.add(std::abs(after - before));
    }
    return contrast.mean();
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("=== Ablation: temperature vs. burn-in contrast "
                "(5 ns routes, 100 h, new device) ===\n\n");
    std::printf("  %8s  %14s  %12s\n", "temp", "contrast(ps)",
                "vs 25 C");

    const std::vector<double> temps = {25.0, 45.0, 60.0, 85.0};
    const auto pool = bench::makePool(argc, argv);
    const std::vector<double> contrasts = util::parallelMap<double>(
        temps.size(),
        [&](std::size_t i) {
            return contrastAtTemperature(temps[i], 7);
        },
        pool.get());
    const double room = contrasts[0];
    for (std::size_t i = 0; i < temps.size(); ++i) {
        std::printf("  %6.0f C  %14.2f  %11.2fx\n", temps[i],
                    contrasts[i], contrasts[i] / room);
    }

    std::vector<std::vector<std::string>> csv_rows;
    for (std::size_t i = 0; i < temps.size(); ++i) {
        csv_rows.push_back(std::vector<std::string>{
            std::to_string(temps[i]), std::to_string(contrasts[i]),
            std::to_string(contrasts[i] / room)});
    }
    bench::dumpGridCsv(argc, argv,
                       {"temp_c", "contrast_ps", "vs_25c"}, csv_rows);

    std::printf("\nArrhenius acceleration: hotter dies imprint "
                "faster. An attacker-controlled\nTarget design that "
                "heats the die (Arithmetic Heavy) buys extra signal; "
                "cooler\noperation is a (weak) provider-side "
                "mitigation.\n");
    return 0;
}
