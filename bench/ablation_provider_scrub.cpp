/**
 * @file
 * Ablation: can the provider *actively* erase pentimenti?
 *
 * The paper argues "it is impossible to mitigate burn-in risk via a
 * logical erasure of the device" (§7). The strongest thing a provider
 * could try without knowing the previous values is to drive every
 * previously-used element with toggling data while the board waits in
 * quarantine. Toggling stresses both transistor polarities equally —
 * it adds common-mode wear but can only slowly wash out the
 * *differential* imprint. This bench compares the TM2 attacker
 * against three provider policies at equal delay: immediate re-rental,
 * idle quarantine, and scrubbed quarantine.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "core/classifier.hpp"
#include "core/experiment.hpp"

using namespace pentimento;

namespace {

double
tm2Accuracy(double quarantine_hours, bool active_scrub,
            std::size_t fleet)
{
    core::Experiment3Config config;
    config.groups = {{8000.0, 12}};
    config.burn_hours = 150.0;
    config.recovery_hours = 25.0;
    config.seed = 60606;
    config.attacker_wait_h = quarantine_hours;
    config.platform.fleet_size = fleet;
    config.platform.quarantine_hours = quarantine_hours;
    config.platform.active_scrub = active_scrub;
    const core::ExperimentResult result = core::runExperiment3(config);
    return core::ThreatModel2Classifier().classify(result).accuracy;
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("=== Ablation: provider-side scrubbing vs. Threat "
                "Model 2 ===\n");
    std::printf("(12 bits on 8 ns routes, 150 h victim burn; a "
                "single-board region so the\nattacker always receives "
                "the victim card after quarantine)\n\n");

    struct Policy
    {
        double quarantine_h;
        bool scrub;
    };
    std::vector<Policy> grid = {{0.0, false}};
    for (const double q : {24.0, 72.0, 168.0}) {
        grid.push_back({q, false});
        grid.push_back({q, true});
    }
    const auto pool = bench::makePool(argc, argv);
    const std::vector<double> acc = util::parallelMap<double>(
        grid.size(),
        [&](std::size_t i) {
            return tm2Accuracy(grid[i].quarantine_h, grid[i].scrub, 1);
        },
        pool.get());

    std::printf("  %-34s %10s\n", "policy", "accuracy");
    std::printf("  %-34s %9.1f%%\n", "immediate re-rental (baseline)",
                100.0 * acc[0]);
    for (std::size_t i = 1; i < grid.size(); ++i) {
        char label[64];
        std::snprintf(label, sizeof(label), "%s quarantine %.0f h",
                      grid[i].scrub ? "scrubbed" : "idle",
                      grid[i].quarantine_h);
        std::printf("  %-34s %9.1f%%\n", label, 100.0 * acc[i]);
    }

    std::vector<std::vector<std::string>> csv_rows;
    for (std::size_t i = 0; i < grid.size(); ++i) {
        csv_rows.push_back(std::vector<std::string>{
            std::to_string(grid[i].quarantine_h),
            grid[i].scrub ? "1" : "0", std::to_string(acc[i])});
    }
    bench::dumpGridCsv(argc, argv,
                       {"quarantine_h", "active_scrub", "accuracy"},
                       csv_rows);

    std::printf("\nidle waiting barely helps — the imprint outlives a "
                "week in the pool, matching\nthe paper's 'hundreds of "
                "hours' persistence. Active toggling scrub works (it\n"
                "force-feeds the fresh side of every transistor pair) "
                "but costs the provider\ndays of revenue per rental — "
                "an *analog* erase, which is precisely what the\n"
                "paper says a logical wipe cannot deliver.\n");
    return 0;
}
