/**
 * @file
 * Ablation: recoverability vs. route length.
 *
 * The paper: "There appear to be no limitations in route length as to
 * observable burn-in effects, with the 1000 ps tested routes showing
 * a clear difference" (§6.1) and, as a mitigation, "the user should
 * strive to make routes that hold sensitive data as short as
 * possible" (§8.1). This sweep measures burn-in contrast and TM1
 * accuracy from 500 ps to 20 ns on the cloud platform and compares
 * against the analytic vulnerability model.
 *
 * Each route length is an independent experiment (own platform, own
 * seed), so the grid fans out across `--workers N` lanes; the table
 * and any `--csv` dump are bit-identical for every worker count.
 */

#include <cstdio>

#include "bench_common.hpp"
#include "core/classifier.hpp"
#include "core/experiment.hpp"
#include "opentitan/vulnerability.hpp"
#include "util/stats.hpp"

using namespace pentimento;

namespace {

struct LengthRow
{
    double length_ps = 0.0;
    double contrast_ps = 0.0;
    double predicted_ps = 0.0;
    double accuracy = 0.0;
    /** Per-route end-window contrast, for the CSV dump. */
    std::vector<std::string> route_names;
    std::vector<double> route_contrast_ps;
    std::vector<bool> route_burn;
};

LengthRow
runLength(double length, const opentitan::VulnerabilityMetric &metric)
{
    core::Experiment2Config config;
    config.groups = {{length, 12}};
    config.burn_hours = 100.0;
    config.measure_every_h = 2.0;
    config.seed = 555;
    const core::ExperimentResult result = core::runExperiment2(config);

    LengthRow row;
    row.length_ps = length;
    util::RunningStats contrast;
    for (const auto &route : result.routes) {
        const double c =
            std::abs(route.series.meanBetweenHours(90.0, 100.0));
        contrast.add(c);
        row.route_names.push_back(route.name);
        row.route_contrast_ps.push_back(c);
        row.route_burn.push_back(route.burn_value);
    }
    row.contrast_ps = contrast.mean();
    row.predicted_ps = metric.expectedDeltaPs(length);
    row.accuracy =
        core::ThreatModel1Classifier().classify(result).accuracy;
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("=== Ablation: route length vs. recoverability "
                "(cloud, 100 h burn) ===\n\n");

    opentitan::AttackScenario scenario;
    scenario.burn_hours = 100.0;
    scenario.temp_k = 340.0; // die under the target design
    const opentitan::VulnerabilityMetric metric(scenario);

    const std::vector<double> lengths = {500.0,  1000.0,  2000.0,
                                         5000.0, 10000.0, 20000.0};

    const auto pool = bench::makePool(argc, argv);
    const std::vector<LengthRow> rows = util::parallelMap<LengthRow>(
        lengths.size(),
        [&](std::size_t i) { return runLength(lengths[i], metric); },
        pool.get());

    std::printf("  %9s  %14s  %14s  %12s\n", "length", "contrast(ps)",
                "predicted(ps)", "TM1 accuracy");
    for (const LengthRow &row : rows) {
        std::printf("  %7.0fps  %14.3f  %14.3f  %10.1f%%\n",
                    row.length_ps, row.contrast_ps, row.predicted_ps,
                    100.0 * row.accuracy);
    }

    std::vector<std::vector<std::string>> csv_rows;
    for (const LengthRow &row : rows) {
        for (std::size_t r = 0; r < row.route_names.size(); ++r) {
            csv_rows.push_back(std::vector<std::string>{
                std::to_string(row.length_ps), row.route_names[r],
                row.route_burn[r] ? "1" : "0",
                std::to_string(row.route_contrast_ps[r]),
                std::to_string(row.contrast_ps),
                std::to_string(row.predicted_ps),
                std::to_string(row.accuracy)});
        }
    }
    bench::dumpGridCsv(argc, argv,
                       {"length_ps", "route", "burn_value",
                        "contrast_ps", "group_contrast_ps",
                        "predicted_ps", "tm1_accuracy"},
                       csv_rows);

    std::printf("\ncontrast scales linearly with route length "
                "(more stressed transistors);\nshort routes are the "
                "paper's recommended defensive design pattern.\n");
    return 0;
}
