/**
 * @file
 * Ablation: recoverability vs. route length.
 *
 * The paper: "There appear to be no limitations in route length as to
 * observable burn-in effects, with the 1000 ps tested routes showing
 * a clear difference" (§6.1) and, as a mitigation, "the user should
 * strive to make routes that hold sensitive data as short as
 * possible" (§8.1). This sweep measures burn-in contrast and TM1
 * accuracy from 500 ps to 20 ns on the cloud platform and compares
 * against the analytic vulnerability model.
 */

#include <cstdio>

#include "core/classifier.hpp"
#include "core/experiment.hpp"
#include "opentitan/vulnerability.hpp"
#include "util/stats.hpp"

using namespace pentimento;

int
main()
{
    std::printf("=== Ablation: route length vs. recoverability "
                "(cloud, 100 h burn) ===\n\n");

    opentitan::AttackScenario scenario;
    scenario.burn_hours = 100.0;
    scenario.temp_k = 340.0; // die under the target design
    const opentitan::VulnerabilityMetric metric(scenario);

    std::printf("  %9s  %14s  %14s  %12s\n", "length", "contrast(ps)",
                "predicted(ps)", "TM1 accuracy");
    for (const double length :
         {500.0, 1000.0, 2000.0, 5000.0, 10000.0, 20000.0}) {
        core::Experiment2Config config;
        config.groups = {{length, 12}};
        config.burn_hours = 100.0;
        config.measure_every_h = 2.0;
        config.seed = 555;
        const core::ExperimentResult result =
            core::runExperiment2(config);

        util::RunningStats contrast;
        for (const auto &route : result.routes) {
            contrast.add(
                std::abs(route.series.meanBetweenHours(90.0, 100.0)));
        }
        const core::ClassificationReport report =
            core::ThreatModel1Classifier().classify(result);
        std::printf("  %7.0fps  %14.3f  %14.3f  %10.1f%%\n", length,
                    contrast.mean(), metric.expectedDeltaPs(length),
                    100.0 * report.accuracy);
    }

    std::printf("\ncontrast scales linearly with route length "
                "(more stressed transistors);\nshort routes are the "
                "paper's recommended defensive design pattern.\n");
    return 0;
}
