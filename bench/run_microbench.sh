#!/usr/bin/env sh
# Run the kernel microbenchmarks and distill a perf-trajectory
# snapshot: BENCH_pr7.json maps kernel name -> ns/op (real time).
#
# Usage: bench/run_microbench.sh [build_dir] [out_json]
#
# Requires a build with google-benchmark available (microbench_kernels
# present under <build_dir>/bench). Run from the repository root in a
# Release build for numbers worth recording; CI uploads the JSON as
# an artifact so the trajectory is visible per commit.
set -eu

BUILD_DIR=${1:-build}
OUT=${2:-BENCH_pr7.json}
BIN="$BUILD_DIR/bench/microbench_kernels"

if [ ! -x "$BIN" ]; then
    echo "run_microbench: $BIN not found (configure with" \
         "google-benchmark installed)" >&2
    exit 1
fi

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

"$BIN" --benchmark_min_time=0.4 \
       --benchmark_out="$RAW" --benchmark_out_format=json

python3 - "$RAW" "$OUT" <<'EOF'
import json
import sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    raw = json.load(f)

kernels = {}
for bench in raw.get("benchmarks", []):
    if bench.get("run_type", "iteration") != "iteration":
        continue
    assert bench["time_unit"] == "ns", bench
    kernels[bench["name"]] = round(bench["real_time"], 1)

out = {
    "schema": "pentimento-microbench-v1",
    "unit": "ns/op",
    "kernels": kernels,
}
with open(out_path, "w") as f:
    json.dump(out, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path} ({len(kernels)} kernels)")
EOF
