/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot kernels:
 * BTI kinetics steps, aged-delay evaluation, TDC captures and full
 * measurement sweeps, and whole-device aging steps. These bound the
 * wall-clock cost of the figure benches.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "fabric/design.hpp"
#include "fabric/device.hpp"
#include "phys/aging.hpp"
#include "phys/bti.hpp"
#include "phys/thermal.hpp"
#include "tdc/tdc.hpp"
#include "util/rng.hpp"

using namespace pentimento;

namespace {

void
BM_BtiStressStep(benchmark::State &state)
{
    const phys::BtiParams params = phys::BtiParams::ultrascalePlus();
    phys::BtiState bti;
    for (auto _ : state) {
        bti.applyStress(params.nbti, 1.0, 0.5);
        benchmark::DoNotOptimize(bti.deltaVth(params.nbti, 1.0));
    }
}
BENCHMARK(BM_BtiStressStep);

void
BM_ElementAgingHold(benchmark::State &state)
{
    const phys::BtiParams params = phys::BtiParams::ultrascalePlus();
    phys::ElementAging aging;
    for (auto _ : state) {
        aging.holdStatic(params, true, 333.15, 1.0);
        benchmark::DoNotOptimize(
            aging.deltaVth(params, phys::TransistorType::Nmos));
    }
}
BENCHMARK(BM_ElementAgingHold);

void
BM_RouteDelayQuery(benchmark::State &state)
{
    fabric::Device device{fabric::DeviceConfig{}};
    const fabric::RouteSpec spec = device.allocateRoute(
        "r", static_cast<double>(state.range(0)));
    fabric::Route route = device.bindRoute(spec);
    route.delayPs(phys::Transition::Rising, 333.15); // materialize
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            route.delayPs(phys::Transition::Falling, 333.15));
    }
    state.SetLabel(std::to_string(state.range(0)) + "ps route");
}
BENCHMARK(BM_RouteDelayQuery)->Arg(1000)->Arg(10000);

void
BM_TdcCapture(benchmark::State &state)
{
    fabric::Device device{fabric::DeviceConfig{}};
    tdc::Tdc sensor(device, device.allocateRoute("r", 1000.0),
                    device.allocateCarryChain("c", 64));
    util::Rng rng(1);
    const double theta = sensor.calibrate(333.15, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sensor.capture(phys::Transition::Rising, theta, 333.15,
                           rng));
    }
}
BENCHMARK(BM_TdcCapture);

void
BM_TdcFullMeasurement(benchmark::State &state)
{
    fabric::Device device{fabric::DeviceConfig{}};
    tdc::Tdc sensor(device, device.allocateRoute("r", 5000.0),
                    device.allocateCarryChain("c", 64));
    util::Rng rng(1);
    sensor.calibrate(333.15, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sensor.measure(333.15, rng));
    }
}
BENCHMARK(BM_TdcFullMeasurement);

void
BM_DeviceAdvanceHour(benchmark::State &state)
{
    fabric::Device device{fabric::DeviceConfig{}};
    std::vector<fabric::RouteSpec> specs;
    auto design = std::make_shared<fabric::Design>("d");
    for (int r = 0; r < state.range(0); ++r) {
        specs.push_back(
            device.allocateRoute("r" + std::to_string(r), 5000.0));
        design->setRouteValue(specs.back(), r % 2 == 0);
    }
    device.loadDesign(design);
    phys::OvenEnvironment oven(333.15);
    for (auto _ : state) {
        device.advance(1.0, oven);
    }
    state.SetLabel(std::to_string(state.range(0)) + " routes");
}
BENCHMARK(BM_DeviceAdvanceHour)->Arg(16)->Arg(64);

} // namespace

BENCHMARK_MAIN();
