/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot kernels:
 * BTI kinetics steps, aged-delay evaluation, TDC captures and full
 * measurement sweeps, and whole-device aging steps. These bound the
 * wall-clock cost of the figure benches.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "cloud/ambient.hpp"
#include "cloud/platform.hpp"
#include "fabric/design.hpp"
#include "fabric/device.hpp"
#include "phys/aging.hpp"
#include "phys/bti.hpp"
#include "phys/thermal.hpp"
#include "tdc/measure_design.hpp"
#include "tdc/tdc.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/snapshot.hpp"

using namespace pentimento;

namespace {

void
BM_BtiStressStep(benchmark::State &state)
{
    const phys::BtiParams params = phys::BtiParams::ultrascalePlus();
    phys::BtiState bti;
    for (auto _ : state) {
        bti.applyStress(params.nbti, 1.0, 0.5);
        benchmark::DoNotOptimize(bti.deltaVth(params.nbti, 1.0));
    }
}
BENCHMARK(BM_BtiStressStep);

void
BM_ElementAgingHold(benchmark::State &state)
{
    const phys::BtiParams params = phys::BtiParams::ultrascalePlus();
    phys::ElementAging aging;
    for (auto _ : state) {
        aging.holdStatic(params, true, 333.15, 1.0);
        benchmark::DoNotOptimize(
            aging.deltaVth(params, phys::TransistorType::Nmos));
    }
}
BENCHMARK(BM_ElementAgingHold);

void
BM_RouteDelayQuery(benchmark::State &state)
{
    fabric::Device device{fabric::DeviceConfig{}};
    const fabric::RouteSpec spec = device.allocateRoute(
        "r", static_cast<double>(state.range(0)));
    fabric::Route route = device.bindRoute(spec);
    route.delayPs(phys::Transition::Rising, 333.15); // materialize
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            route.delayPs(phys::Transition::Falling, 333.15));
    }
    state.SetLabel(std::to_string(state.range(0)) + "ps route");
}
BENCHMARK(BM_RouteDelayQuery)->Arg(1000)->Arg(10000);

void
BM_TdcCapture(benchmark::State &state)
{
    fabric::Device device{fabric::DeviceConfig{}};
    tdc::Tdc sensor(device, device.allocateRoute("r", 1000.0),
                    device.allocateCarryChain("c", 64));
    util::Rng rng(1);
    const double theta = sensor.calibrate(333.15, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sensor.capture(phys::Transition::Rising, theta, 333.15,
                           rng));
    }
}
BENCHMARK(BM_TdcCapture);

void
BM_TdcFullMeasurement(benchmark::State &state)
{
    fabric::Device device{fabric::DeviceConfig{}};
    tdc::Tdc sensor(device, device.allocateRoute("r", 5000.0),
                    device.allocateCarryChain("c", 64));
    util::Rng rng(1);
    sensor.calibrate(333.15, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sensor.measure(333.15, rng));
    }
}
BENCHMARK(BM_TdcFullMeasurement);

void
BM_DeviceAdvanceHour(benchmark::State &state)
{
    fabric::Device device{fabric::DeviceConfig{}};
    std::vector<fabric::RouteSpec> specs;
    auto design = std::make_shared<fabric::Design>("d");
    for (int r = 0; r < state.range(0); ++r) {
        specs.push_back(
            device.allocateRoute("r" + std::to_string(r), 5000.0));
        design->setRouteValue(specs.back(), r % 2 == 0);
    }
    device.loadDesign(design);
    phys::OvenEnvironment oven(333.15);
    for (auto _ : state) {
        device.advance(1.0, oven);
    }
    state.SetLabel(std::to_string(state.range(0)) + " routes");
}
BENCHMARK(BM_DeviceAdvanceHour)->Arg(16)->Arg(64);

void
BM_DeviceAdvanceHourParallel(benchmark::State &state)
{
    util::ThreadPool pool(static_cast<std::size_t>(state.range(1)));
    fabric::Device device{fabric::DeviceConfig{}};
    device.setWorkPool(&pool);
    std::vector<fabric::RouteSpec> specs;
    auto design = std::make_shared<fabric::Design>("d");
    for (int r = 0; r < state.range(0); ++r) {
        specs.push_back(
            device.allocateRoute("r" + std::to_string(r), 5000.0));
        design->setRouteValue(specs.back(), r % 2 == 0);
    }
    device.loadDesign(design);
    phys::OvenEnvironment oven(333.15);
    for (auto _ : state) {
        device.advance(1.0, oven);
    }
    state.SetLabel(std::to_string(state.range(0)) + " routes, " +
                   std::to_string(state.range(1) + 1) + " lanes");
}
BENCHMARK(BM_DeviceAdvanceHourParallel)
    ->Args({64, 0})
    ->Args({64, 3})
    ->Args({256, 0})
    ->Args({256, 3});

void
BM_DeviceAdvanceLongJump(benchmark::State &state)
{
    // The paper's Experiment 3 shape: a 256-element design burns X
    // for 200 h uninterrupted, and only then is anything measured.
    // Issued as 200 hourly advance() calls — the segment timeline
    // coalesces them into one O(1)-per-call segment, and the single
    // query at the end replays it once per element. Compare against
    // 200x the PR 2 BM_DeviceAdvanceHour cost at the same element
    // count.
    fabric::Device device{fabric::DeviceConfig{}};
    const fabric::RouteSpec spec = device.allocateRoute("r", 6400.0);
    auto design = std::make_shared<fabric::Design>("burn");
    design->setRouteValue(spec, true);
    device.loadDesign(design);
    fabric::Route route = device.bindRoute(spec);
    phys::OvenEnvironment oven(333.15);
    for (auto _ : state) {
        for (int h = 0; h < 200; ++h) {
            device.advance(1.0, oven);
        }
        benchmark::DoNotOptimize(
            route.delayPs(phys::Transition::Falling, 333.15));
    }
    state.SetLabel("200 h burn, 256 elements, one query");
}
BENCHMARK(BM_DeviceAdvanceLongJump);

void
BM_FleetIdleDay(benchmark::State &state)
{
    // One simulated day across a 100-board region with nothing
    // rented: unconfigured boards defer their whole ambient walk, so
    // per board-day the platform pays O(1) bookkeeping — no draws, no
    // package relaxation, no segments — until something observes a
    // board. This is the kernel under the fleet_campaign scenario.
    cloud::PlatformConfig config;
    config.fleet_size = 100;
    config.seed = 77;
    cloud::CloudPlatform platform(config);
    for (auto _ : state) {
        platform.advanceHours(24.0);
    }
    state.SetLabel("100 boards x 24 h, idle");
}
BENCHMARK(BM_FleetIdleDay);

void
runTenancyTurnover(benchmark::State &state, bool eager)
{
    // The fleet-campaign tenancy-churn kernel: a board cycles through
    // tenancies that load a design, burn, wipe and idle — and nobody
    // ever measures. The tenant designs are built once outside the
    // loop (design construction is the tenant's bitstream, not the
    // board's turnover cost); the kernel times the DEVICE side. With
    // the activity journal every load/wipe is one O(1) run append per
    // key; the eager variant pays variation sampling, a slab insert
    // and flip replays for every configured element of every tenancy.
    // Tenancy shape matches bench/fleet_campaign.cpp: 8 routes of
    // 2000 ps (80 elements each) plus a 128-DSP filler = 768
    // configured keys per tenant.
    fabric::DeviceConfig config;
    config.eager_materialisation = eager;
    constexpr int kTenancies = 16;
    constexpr int kRoutes = 8;
    fabric::Device planner(config); // allocates the shared route plan
    util::Rng rng(1234);
    fabric::ArithmeticHeavyConfig arith;
    arith.dsp_count = 128;
    std::vector<std::shared_ptr<const fabric::TargetDesign>> targets;
    for (int t = 0; t < kTenancies; ++t) {
        std::vector<fabric::RouteSpec> specs;
        std::vector<bool> bits;
        for (int r = 0; r < kRoutes; ++r) {
            specs.push_back(planner.allocateRoute(
                "t" + std::to_string(t) + "_r" + std::to_string(r),
                2000.0));
            bits.push_back(rng.bernoulli(0.5));
        }
        targets.push_back(std::make_shared<fabric::TargetDesign>(
            "tenant_" + std::to_string(t), specs, bits, arith));
    }
    for (auto _ : state) {
        fabric::Device device(config);
        int t = 0;
        for (const auto &target : targets) {
            device.loadDesign(target);
            device.advanceAt(18.0, 333.0 + 0.25 * t);
            device.wipe();
            device.advanceAt(24.0, 318.15);
            ++t;
        }
        benchmark::DoNotOptimize(device.materializedCount());
    }
    state.SetLabel("16 tenancies x (8 routes + filler), unobserved");
}

void
BM_TenancyTurnover(benchmark::State &state)
{
    runTenancyTurnover(state, false);
}
BENCHMARK(BM_TenancyTurnover);

void
BM_TenancyTurnoverEager(benchmark::State &state)
{
    // The pre-journal behaviour, kept in-tree so the >= 3x claim is
    // reproducible on any machine from a single snapshot (compare
    // with BM_TenancyTurnover) rather than only across snapshots.
    runTenancyTurnover(state, true);
}
BENCHMARK(BM_TenancyTurnoverEager);

void
BM_AmbientEventTrace(benchmark::State &state)
{
    // The event-driven ambient kernel: account a whole idle day in
    // O(1), then observe — the observation replays the day's 24
    // event draws with the exact per-event OU transition. Bounds the
    // cost of re-observing long-idle pooled stock.
    cloud::AmbientModel model({}, util::Rng(7));
    for (auto _ : state) {
        model.advance(24.0);
        benchmark::DoNotOptimize(model.ambientK());
    }
    state.SetLabel("24 h jump + observe (24 event draws)");
}
BENCHMARK(BM_AmbientEventTrace);

void
BM_FleetRentedDay(benchmark::State &state)
{
    // The eager counterpart of BM_FleetIdleDay: 16 of the boards run
    // a tenant design, so their walk sub-steps between ambient events
    // — one draw, one closed-form package relaxation and one O(1)
    // timeline segment per board-hour.
    cloud::PlatformConfig config;
    config.fleet_size = 16;
    config.seed = 77;
    cloud::CloudPlatform platform(config);
    const auto ids = platform.rentAll();
    for (const std::string &id : ids) {
        fabric::Device &device = platform.instance(id).device();
        const fabric::RouteSpec spec = device.allocateRoute("r", 2000.0);
        auto design = std::make_shared<fabric::Design>("d_" + id);
        design->setRouteValue(spec, true);
        design->setPowerW(40.0);
        platform.loadDesign(id, design);
    }
    for (auto _ : state) {
        platform.advanceHours(24.0);
    }
    state.SetLabel("16 boards x 24 h, rented");
}
BENCHMARK(BM_FleetRentedDay);

void
runMeasureSweepParallel(benchmark::State &state, bool fast_sampling)
{
    util::ThreadPool pool(static_cast<std::size_t>(state.range(1)));
    util::ThreadPool *handle =
        pool.workerCount() > 0 ? &pool : nullptr;
    fabric::Device device{fabric::DeviceConfig{}};
    std::vector<fabric::RouteSpec> routes;
    for (int r = 0; r < state.range(0); ++r) {
        routes.push_back(
            device.allocateRoute("r" + std::to_string(r), 5000.0));
    }
    tdc::TdcConfig config;
    config.fast_sampling = fast_sampling;
    tdc::MeasureDesign design(device, routes, config);
    util::Rng rng(1);
    design.calibrateAll(333.15, rng, handle);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            design.measureAll(333.15, rng, handle));
    }
    state.SetLabel(std::to_string(state.range(0)) + " sensors, " +
                   std::to_string(state.range(1) + 1) + " lanes" +
                   (fast_sampling ? ", fast sampling" : ", exact"));
}

void
BM_MeasureSweepParallel(benchmark::State &state)
{
    // The attack-phase kernel as the fleet campaign runs it: fast
    // sampling (ziggurat jitter blocks + fused integer-sum traces) on
    // top of the ΔVth epoch cache and dual-polarity arrival walk.
    runMeasureSweepParallel(state, true);
}
BENCHMARK(BM_MeasureSweepParallel)
    ->Args({64, 0})
    ->Args({64, 3})
    ->Args({256, 0})
    ->Args({256, 3});

void
BM_MeasureSweepExact(benchmark::State &state)
{
    // The bit-exact default path (polar-method jitter per sample,
    // Welford trace means), kept measurable in-snapshot so the fast
    // path's speedup is reproducible anywhere (the
    // BM_TenancyTurnoverEager precedent).
    runMeasureSweepParallel(state, false);
}
BENCHMARK(BM_MeasureSweepExact)->Args({256, 0})->Args({256, 3});

void
BM_CheckpointSaveRestore(benchmark::State &state)
{
    // The PR-7 crash-safety kernel: serialize a fleet the size the
    // campaign runs (in-memory image, no disk — the format cost, not
    // the filesystem's) and restore it into a fresh platform,
    // measuring the full round trip a periodic checkpoint pays. The
    // fleet carries some real history so the boards aren't all
    // trivially pristine.
    cloud::PlatformConfig config;
    config.fleet_size = static_cast<std::size_t>(state.range(0));
    config.region = "bench";
    config.seed = 77;
    cloud::CloudPlatform platform(config);
    const auto boards = platform.rentAll();
    for (std::size_t i = 0; i < boards.size() && i < 8; ++i) {
        fabric::Device &device =
            platform.instance(boards[i]).device();
        std::vector<fabric::RouteSpec> specs;
        for (int r = 0; r < 4; ++r) {
            specs.push_back(device.allocateRoute(
                "b" + std::to_string(i) + "_r" + std::to_string(r),
                2000.0));
        }
        auto design = std::make_shared<fabric::TargetDesign>(
            "bench_" + boards[i], specs,
            std::vector<bool>(specs.size(), i % 2 == 0));
        platform.loadDesign(boards[i], design);
    }
    platform.advanceHours(48.0);
    for (const std::string &board : boards) {
        platform.release(board);
    }
    platform.advanceHours(24.0);

    std::size_t image_bytes = 0;
    for (auto _ : state) {
        util::SnapshotWriter writer;
        platform.saveState(writer);
        std::vector<std::uint8_t> image = writer.finish();
        image_bytes = image.size();

        cloud::CloudPlatform restored(config);
        auto reader =
            util::SnapshotReader::fromBuffer(std::move(image));
        if (!reader.ok() ||
            !restored.restoreState(reader.value()).ok()) {
            state.SkipWithError("checkpoint round trip failed");
            break;
        }
        benchmark::DoNotOptimize(restored.nowHours());
    }
    state.SetLabel(std::to_string(state.range(0)) + " boards, " +
                   std::to_string(image_bytes / 1024) + " KiB image");
}
BENCHMARK(BM_CheckpointSaveRestore)->Arg(16)->Arg(112);

void
BM_ThreadPoolOverhead(benchmark::State &state)
{
    util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        std::size_t sink = 0;
        pool.parallelFor(0, 1024, [&](std::size_t i) {
            benchmark::DoNotOptimize(sink += i);
        });
    }
    state.SetLabel(std::to_string(state.range(0) + 1) + " lanes");
}
BENCHMARK(BM_ThreadPoolOverhead)->Arg(0)->Arg(3);

} // namespace

BENCHMARK_MAIN();
