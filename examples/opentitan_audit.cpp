/**
 * @file
 * The §8.1 hardware-security verification tool, applied to OpenTitan.
 *
 * "Verification tools could analyze the design or bitstream for
 * sensitive data residing on long routes... providing a more precise
 * measure of protection (e.g., vulnerability metric) enables even
 * stronger hardware security verification."
 *
 * This audit walks the twenty Earl Grey security assets of Table 1,
 * predicts each route's burn-in contrast under a 200-hour cloud
 * attack, reports the fraction of recoverable bits per asset, and
 * prints concrete shortening advice for the worst offenders.
 */

#include <cstdio>
#include <utility>
#include <vector>

#include "mitigation/advisor.hpp"
#include "opentitan/assets.hpp"
#include "opentitan/route_synth.hpp"
#include "opentitan/vulnerability.hpp"
#include "util/table.hpp"

using namespace pentimento;

int
main()
{
    opentitan::AttackScenario scenario;
    scenario.burn_hours = 200.0;
    scenario.device_age_h = 30000.0; // a typical F1 card
    scenario.sensor_noise_ps = 0.12;
    scenario.detection_snr = 2.0;

    const opentitan::VulnerabilityMetric metric(scenario);
    opentitan::RouteLengthSynthesizer synth;

    std::printf("OpenTitan Earl Grey pentimento audit\n");
    std::printf("scenario: %.0f h burn on a %.1f-year-old cloud FPGA, "
                "noise floor %.2f ps, detect at SNR >= %.1f\n\n",
                scenario.burn_hours, scenario.device_age_h / 8760.0,
                scenario.sensor_noise_ps, scenario.detection_snr);

    util::TablePrinter table({"#", "Asset", "Type", "Width",
                              "median dps", "mean SNR",
                              "recoverable"});
    double worst_fraction = 0.0;
    int worst_index = 0;
    for (const opentitan::AssetInfo &asset :
         opentitan::earlGreyAssets()) {
        const auto lengths = synth.synthesize(asset);
        const opentitan::AssetVulnerability v =
            metric.evaluate(asset, lengths);
        table.addRow({std::to_string(asset.index), asset.path,
                      opentitan::toString(asset.type),
                      std::to_string(asset.bus_width),
                      util::TablePrinter::num(v.median_delta_ps, 3),
                      util::TablePrinter::num(v.mean_snr, 2),
                      util::TablePrinter::num(
                          100.0 * v.recoverable_fraction, 1) +
                          "%"});
        if (v.recoverable_fraction > worst_fraction) {
            worst_fraction = v.recoverable_fraction;
            worst_index = asset.index;
        }
    }
    std::printf("%s\n", table.render().c_str());

    // Shortening advice for the most exposed asset.
    const opentitan::AssetInfo &worst =
        opentitan::assetByIndex(worst_index);
    std::printf("most exposed asset: #%d %s (%.1f%% of bits "
                "recoverable)\n\n",
                worst.index, worst.path.c_str(),
                100.0 * worst_fraction);

    const mitigation::RouteShorteningAdvisor advisor(scenario);
    std::printf("safe route length under this scenario: %.0f ps\n",
                advisor.safeLengthPs());
    std::vector<std::pair<std::string, double>> routes;
    const auto lengths = synth.synthesize(worst);
    for (std::size_t bit = 0; bit < lengths.size(); ++bit) {
        routes.emplace_back(
            worst.path + "[" + std::to_string(bit) + "]",
            lengths[bit]);
    }
    const mitigation::AdvisorReport report = advisor.analyze(routes);
    std::printf("flagged %zu/%zu routes; advice for the five "
                "longest:\n",
                report.flagged_count, report.routes.size());
    for (std::size_t i = report.routes.size();
         i-- > 0 && i + 5 >= report.routes.size();) {
        const mitigation::RouteAdvice &advice = report.routes[i];
        if (!advice.flagged) {
            continue;
        }
        std::printf("  %-40s %6.0f ps  SNR %5.1f -> split into %d "
                    "segments (SNR %.1f)\n",
                    advice.name.c_str(), advice.length_ps, advice.snr,
                    advice.recommended_segments,
                    advice.post_split_snr);
    }
    return 0;
}
