/**
 * @file
 * Threat Model 2 end to end: recovering a previous tenant's runtime
 * data (paper §2, Experiment 3).
 *
 * The full story: the attacker fingerprints a board during
 * reconnaissance; the victim rents it, loads a session key at
 * runtime, computes for 200 hours and releases; the provider wipes
 * the FPGA; the attacker flash-acquires the regional pool,
 * re-identifies the victim board by its process-variation
 * fingerprint, parks the routes at logic 0 and watches 25 hours of
 * BTI recovery to reconstruct the key.
 */

#include <cstdio>
#include <string>

#include "core/attack.hpp"
#include "core/presets.hpp"

using namespace pentimento;

namespace {

std::string
bitsToString(const std::vector<bool> &bits)
{
    std::string s;
    for (const bool b : bits) {
        s += b ? '1' : '0';
    }
    return s;
}

} // namespace

int
main()
{
    cloud::CloudPlatform platform(core::awsF1Region(21));

    // The victim's session key: 16 bits held on 8 ns routes (longer
    // routes leak more; see bench/ablation_route_length).
    util::Rng key_rng(0x5A);
    std::vector<bool> session_key(16);
    for (std::size_t i = 0; i < session_key.size(); ++i) {
        session_key[i] = key_rng.bernoulli(0.5);
    }

    core::Tm2Options options;
    options.victim_hours = 200.0;
    options.recovery_hours = 25.0;
    options.route_ps = 8000.0;
    options.park_value = false; // §6.3: park at 0 for the best signal
    options.seed = 4321;

    const core::Tm2Report report =
        core::recoverUserData(platform, session_key, options);

    std::printf("victim computed on   %s\n",
                report.victim_instance.c_str());
    std::printf("flash acquisition rented %zu boards\n",
                report.flash_rented);
    std::printf("fingerprint match:   %s (similarity %.3f) -> %s\n",
                report.attacker_instance.c_str(),
                report.fingerprint_similarity,
                report.reacquired_same_board ? "victim board reacquired"
                                             : "WRONG BOARD");
    std::printf("recovered key: %s\n",
                bitsToString(report.recovered_bits).c_str());
    std::printf("actual key:    %s\n",
                bitsToString(session_key).c_str());
    std::printf("bits correct: %zu/%zu (%.1f%%)\n",
                report.classification.correct,
                report.classification.bits.size(),
                100.0 * report.classification.accuracy);
    return report.reacquired_same_board &&
                   report.classification.accuracy >= 0.8
               ? 0
               : 1;
}
