/**
 * @file
 * Quickstart: the pentimento effect in ~60 lines.
 *
 * 1. build a simulated UltraScale+ device and one 2 ns route;
 * 2. hold a secret bit on the route for 200 hours (burn-in);
 * 3. wipe the device, as a cloud provider would;
 * 4. program a TDC over the same skeleton and measure ∆ps;
 * 5. read the secret back out of the analog imprint.
 */

#include <cstdio>
#include <memory>

#include "fabric/design.hpp"
#include "fabric/device.hpp"
#include "phys/thermal.hpp"
#include "tdc/tdc.hpp"
#include "util/rng.hpp"

using namespace pentimento;

int
main()
{
    // A factory-new device at 60 C (the paper's lab oven).
    fabric::Device device{fabric::DeviceConfig{}};
    phys::OvenEnvironment oven(333.15);
    util::Rng rng(2023);

    // The skeleton: one 2000 ps route. Assumption 1 says the attacker
    // knows these physical coordinates.
    const fabric::RouteSpec secret_route =
        device.allocateRoute("secret_bit", 2000.0);

    // Attacker baseline: calibrate a TDC on the route *before* the
    // victim computes (Threat Model 1 allows this).
    tdc::Tdc sensor(device, secret_route,
                    device.allocateCarryChain("chain", 64));
    sensor.calibrate(oven.dieTempK(), rng);
    const double before =
        sensor.measure(oven.dieTempK(), rng).deltaPs();

    // The victim design holds secret = 1 on the route for 200 hours.
    const bool secret = true;
    auto victim = std::make_shared<fabric::Design>("victim");
    victim->setRouteValue(secret_route, secret);
    device.loadDesign(victim);
    device.advance(200.0, oven);

    // Provider wipe: configuration gone, imprint not.
    device.wipe();

    // Measure again and recover the bit from the drift direction:
    // burn 1 -> PBTI -> falling edge slowed -> ∆ps drifts positive.
    const double after =
        sensor.measure(oven.dieTempK(), rng).deltaPs();
    const double drift = after - before;
    const bool recovered = drift > 0.0;

    std::printf("baseline  dps : %+7.2f ps\n", before);
    std::printf("post-wipe dps : %+7.2f ps\n", after);
    std::printf("drift         : %+7.2f ps\n", drift);
    std::printf("secret was %d, recovered %d -> %s\n", secret,
                recovered, recovered == secret ? "SUCCESS" : "FAIL");
    return recovered == secret ? 0 : 1;
}
