/**
 * @file
 * Threat Model 1 end to end: extracting proprietary design data from
 * an encrypted marketplace AFI (paper §2, Experiment 2).
 *
 * A vendor publishes an AFI whose netlist constants embed a 32-bit
 * key. AWS promises "no FPGA internal design code is exposed"; the
 * attacker nevertheless rents the AFI, burns it in for 200 simulated
 * hours with hourly TDC measurements on the public skeleton, and
 * reads the key out of the ∆ps drift directions.
 */

#include <cstdio>
#include <string>

#include "core/attack.hpp"
#include "core/keyrank.hpp"
#include "core/presets.hpp"
#include "fabric/device.hpp"

using namespace pentimento;

namespace {

std::string
bitsToString(const std::vector<bool> &bits)
{
    std::string s;
    for (const bool b : bits) {
        s += b ? '1' : '0';
    }
    return s;
}

} // namespace

int
main()
{
    // The eu-west-2 F1 region.
    cloud::CloudPlatform platform(core::awsF1Region(7));

    // ---- Vendor side: build and publish the AFI. The key lives in
    // netlist constants on 5 ns routes; because the vendor ships
    // prebuilt bitstreams (like OpenTitan / FINN), the placement
    // skeleton is public even though the key is not.
    fabric::Device build_box(core::awsF1Silicon(99));
    util::Rng key_rng(0xA5);
    std::vector<bool> key(32);
    for (std::size_t i = 0; i < key.size(); ++i) {
        key[i] = key_rng.bernoulli(0.5);
    }
    core::SecretBundle afi =
        core::makeSecretTarget(build_box, key, 5000.0, "crypto_accel");
    const std::string afi_id =
        platform.marketplace().publish("acme-crypto", afi.design,
                                       afi.skeleton);
    std::printf("vendor published %s with hidden key %s\n",
                afi_id.c_str(), bitsToString(key).c_str());

    // ---- Attacker side: rent the AFI and extract the key.
    core::Tm1Options options;
    options.burn_hours = 200.0;
    options.seed = 1234;
    const core::Tm1Report report =
        core::extractDesignData(platform, afi_id, options);

    std::printf("attacker ran %0.f h of burn-in on %s\n",
                report.result.condition_hours,
                report.instance_id.c_str());
    std::printf("measurement cost: %.1f s/sweep (%.2f%% of rental)\n",
                report.result.secondsPerSweep(),
                100.0 * report.result.measurementFraction());
    std::printf("recovered key:  %s\n",
                bitsToString(report.recovered_bits).c_str());
    std::printf("actual key:     %s\n", bitsToString(key).c_str());
    std::printf("bits correct: %zu/%zu (%.1f%%)\n",
                report.classification.correct,
                report.classification.bits.size(),
                100.0 * report.classification.accuracy);

    // What partial recovery means for the key: brute-force budget.
    const core::KeyRankReport rank =
        core::analyzeKeyRank(report.classification.bits, 0.9);
    std::printf("residual entropy: %.1f bits; enumerate the %zu "
                "least-confident bits\n(2^%zu guesses) for %.0f%% "
                "success\n",
                rank.residual_entropy_bits, rank.brute_force_bits,
                rank.brute_force_bits,
                100.0 * rank.success_probability);
    return report.classification.accuracy >= 0.9 ? 0 : 1;
}
