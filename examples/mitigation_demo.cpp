/**
 * @file
 * User mitigations in action (paper §8.1).
 *
 * Runs the same Threat Model 1 attack against a tenant that (a) does
 * nothing, (b) inverts its data hourly, and (c) shuffles data across
 * routes, and prints how far the attacker's recovery accuracy falls.
 * A 50% accuracy equals coin-flipping — the secret is safe.
 */

#include <cstdio>

#include "core/classifier.hpp"
#include "core/experiment.hpp"
#include "mitigation/strategies.hpp"

using namespace pentimento;

namespace {

core::Experiment2Config
attackConfig(mitigation::MitigationStrategy *strategy)
{
    core::Experiment2Config config;
    config.groups = {{5000.0, 16}};
    config.burn_hours = 120.0;
    config.measure_every_h = 2.0;
    config.seed = 77;
    config.strategy = strategy;
    return config;
}

double
attackAccuracy(mitigation::MitigationStrategy *strategy)
{
    const core::ExperimentResult result =
        core::runExperiment2(attackConfig(strategy));
    return core::ThreatModel1Classifier().classify(result).accuracy;
}

} // namespace

int
main()
{
    std::printf("Threat Model 1 attack vs. user mitigations\n");
    std::printf("(16 secret bits on 5 ns routes, 120 h burn, cloud "
                "device)\n\n");

    const double open = attackAccuracy(nullptr);
    std::printf("%-24s attacker accuracy %5.1f%%\n", "no mitigation:",
                100.0 * open);

    mitigation::InversionMitigation invert(1.0);
    const double inverted = attackAccuracy(&invert);
    std::printf("%-24s attacker accuracy %5.1f%%\n",
                "hourly inversion:", 100.0 * inverted);

    mitigation::ShuffleMitigation shuffle(1.0, 99);
    const double shuffled = attackAccuracy(&shuffle);
    std::printf("%-24s attacker accuracy %5.1f%%\n",
                "hourly shuffle:", 100.0 * shuffled);

    mitigation::WearLevelMitigation wear(4.0, 4);
    const double leveled = attackAccuracy(&wear);
    std::printf("%-24s attacker accuracy %5.1f%%\n",
                "wear leveling (4 sites):", 100.0 * leveled);

    std::printf("\n50%% = coin flip; the data transformations push "
                "the attacker toward chance.\n");
    return open > 0.9 ? 0 : 1;
}
