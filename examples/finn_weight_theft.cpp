/**
 * @file
 * Stealing quantized neural-network weights from a FINN-style AFI
 * (paper §1-2: "netlist constants, e.g., cryptographic keys or
 * machine learning weights").
 *
 * The FINN architecture and compile flow are public, so the weight
 * routes' placement is public too — the attacker recovers it by
 * extracting the skeleton from the project's unencrypted reference
 * bitstream. A vendor's fine-tuned weights ship only inside an
 * encrypted marketplace AFI. The attacker rents that AFI, burns it
 * in, measures the known skeleton, and reassembles the weights.
 */

#include <cstdio>

#include "core/attack.hpp"
#include "core/presets.hpp"
#include "finn/accelerator.hpp"

using namespace pentimento;

int
main()
{
    cloud::CloudPlatform platform(core::awsF1Region(31));
    const fabric::DeviceConfig family = core::awsF1Silicon();

    // ---- Vendor: fine-tune the public architecture and publish.
    finn::FinnConfig arch;
    arch.layer_weights = {6, 6};
    arch.weight_bits = 4;
    arch.route_ps = 5000.0;

    fabric::Device build_box(family);
    util::Rng vendor_rng(0xF1AA);
    const std::vector<int> secret_weights =
        finn::FinnAccelerator::randomWeights(arch, vendor_rng);
    finn::FinnAccelerator accel(build_box, arch, secret_weights);

    // The marketplace image is encrypted; the skeleton is NOT secret
    // because the FINN reference build is public.
    const fabric::Bitstream afi_image = fabric::Bitstream::
        compileEncrypted(accel.design(), family);
    util::Rng ref_rng(1);
    const fabric::Bitstream reference =
        accel.referenceBitstream(family, ref_rng);

    // ---- Attacker: recover the skeleton from the PUBLIC image.
    std::vector<fabric::RouteSpec> skeleton;
    for (fabric::RouteSpec &net : reference.extractSkeleton()) {
        if (net.size() >= 2) { // datapath spacers are single-element
            skeleton.push_back(std::move(net));
        }
    }
    std::printf("public reference bitstream: %zu frames, %zu nets "
                "recovered, %zu weight-bit routes\n",
                reference.frameCount(),
                reference.extractSkeleton().size(), skeleton.size());

    const std::string afi_id = platform.marketplace().publish(
        "nn-vendor", afi_image.instantiate(), skeleton);

    // ---- The attack: Threat Model 1 against the weight routes.
    core::Tm1Options options;
    options.burn_hours = 200.0;
    options.measure_every_h = 2.0;
    options.seed = 555;
    const core::Tm1Report report =
        core::extractDesignData(platform, afi_id, options);

    const std::vector<int> recovered =
        finn::FinnAccelerator::decodeWeights(report.recovered_bits,
                                             arch);
    int exact = 0;
    double mae = 0.0;
    std::printf("\n  %8s  %8s  %10s\n", "weight", "actual",
                "recovered");
    for (std::size_t w = 0; w < recovered.size(); ++w) {
        std::printf("  %8zu  %8d  %10d\n", w, secret_weights[w],
                    recovered[w]);
        exact += recovered[w] == secret_weights[w];
        mae += std::abs(recovered[w] - secret_weights[w]);
    }
    mae /= static_cast<double>(recovered.size());
    std::printf("\nweights exact: %d/%zu, mean abs error %.2f "
                "quantization steps\n",
                exact, recovered.size(), mae);
    std::printf("bit accuracy:  %zu/%zu (%.1f%%)\n",
                report.classification.correct,
                report.classification.bits.size(),
                100.0 * report.classification.accuracy);
    return exact >= static_cast<int>(recovered.size()) - 2 ? 0 : 1;
}
