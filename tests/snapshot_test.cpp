/**
 * @file
 * Checkpoint/restore battery (PR 7).
 *
 * Two halves. The format half fault-injects the snapshot container:
 * truncation at every byte, a bit flip in every byte, stale versions,
 * duplicated/missing/reordered chunks, trailing garbage, and simulated
 * crashes between temp-write and rename — every case must be detected
 * and surfaced as a recoverable util::Expected error, never a fatal.
 *
 * The state half locks round-trip bit-identity: checkpoints are taken
 * at deliberately adversarial points (mid-tenancy with a resident
 * design, pending journal runs spilled into the arena, an open
 * timeline segment, un-flushed deferred idle time) and every delay,
 * temperature, and RNG draw after restore must EQ — not NEAR — the
 * straight-through run. Satellites ride along: the AgingStore rehash
 * round trip past one slab chunk, and the journal's compaction-pin
 * rebase / applyServiceWear orderings immediately after restore.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cloud/platform.hpp"
#include "core/presets.hpp"
#include "fabric/design.hpp"
#include "fabric/device.hpp"
#include "fabric/route.hpp"
#include "util/expected.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"
#include "util/snapshot.hpp"

namespace pc = pentimento::cloud;
namespace pf = pentimento::fabric;
namespace pp = pentimento::phys;
namespace pu = pentimento::util;

namespace {

constexpr std::uint32_t kTag1 = pu::snapshotTag('T', 'S', '1', '!');
constexpr std::uint32_t kTag2 = pu::snapshotTag('T', 'S', '2', '!');
constexpr std::uint32_t kDevTag = pu::snapshotTag('D', 'E', 'V', '!');

/** Two-chunk sample image exercising every primitive. */
std::vector<std::uint8_t>
sampleImage()
{
    pu::SnapshotWriter writer;
    writer.beginChunk(kTag1);
    writer.u8(7);
    writer.u32(0xdeadbeefu);
    writer.u64(0x0123456789abcdefULL);
    writer.f64(-3.5e-9);
    writer.str("pentimento");
    writer.endChunk();
    writer.beginChunk(kTag2);
    writer.u64(42);
    writer.u64(43);
    writer.endChunk();
    return writer.finish();
}

/** Full strict parse of the sample image; false on any defect. */
bool
sampleParses(std::vector<std::uint8_t> image)
{
    pu::Expected<pu::SnapshotReader> made =
        pu::SnapshotReader::fromBuffer(std::move(image));
    if (!made.ok()) {
        return false;
    }
    pu::SnapshotReader &r = made.value();
    if (!r.enterChunk(kTag1)) {
        return false;
    }
    (void)r.u8();
    (void)r.u32();
    (void)r.u64();
    (void)r.f64();
    (void)r.str();
    if (!r.leaveChunk() || !r.enterChunk(kTag2)) {
        return false;
    }
    (void)r.u64();
    (void)r.u64();
    return r.leaveChunk() && r.expectEnd();
}

struct ChunkSpan
{
    std::size_t begin;
    std::size_t end;
};

/** Byte extents of every chunk (incl. END), by walking the headers. */
std::vector<ChunkSpan>
chunkSpans(const std::vector<std::uint8_t> &image)
{
    std::vector<ChunkSpan> spans;
    std::size_t off = 16;
    while (off + 20 <= image.size()) {
        std::uint64_t len = 0;
        std::memcpy(&len, image.data() + off + 8, sizeof(len));
        const std::size_t end = off + 16 + len + 4;
        spans.push_back({off, end});
        off = end;
    }
    return spans;
}

std::string
tempPath(const std::string &leaf)
{
    return ::testing::TempDir() + leaf;
}

void
writeRawFile(const std::string &path, const std::string &bytes)
{
    std::FILE *fp = std::fopen(path.c_str(), "wb");
    ASSERT_NE(fp, nullptr);
    std::fwrite(bytes.data(), 1, bytes.size(), fp);
    std::fclose(fp);
}

bool
fileExists(const std::string &path)
{
    std::FILE *fp = std::fopen(path.c_str(), "rb");
    if (fp == nullptr) {
        return false;
    }
    std::fclose(fp);
    return true;
}

/** One-chunk image carrying a single marker value. */
std::vector<std::uint8_t>
markerImage(std::uint64_t marker)
{
    pu::SnapshotWriter writer;
    writer.beginChunk(kTag1);
    writer.u64(marker);
    writer.endChunk();
    return writer.finish();
}

std::uint64_t
readMarker(pu::SnapshotReader &reader)
{
    EXPECT_TRUE(reader.enterChunk(kTag1));
    const std::uint64_t marker = reader.u64();
    EXPECT_TRUE(reader.leaveChunk());
    EXPECT_TRUE(reader.expectEnd());
    return marker;
}

} // namespace

// --------------------------------------------------- container format

TEST(SnapshotFormat, PrimitiveRoundTrip)
{
    pu::Expected<pu::SnapshotReader> made =
        pu::SnapshotReader::fromBuffer(sampleImage());
    ASSERT_TRUE(made.ok()) << made.error();
    pu::SnapshotReader &r = made.value();
    ASSERT_TRUE(r.enterChunk(kTag1));
    EXPECT_EQ(r.u8(), 7u);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
    EXPECT_EQ(r.f64(), -3.5e-9);
    EXPECT_EQ(r.str(), "pentimento");
    ASSERT_TRUE(r.leaveChunk());
    ASSERT_TRUE(r.enterChunk(kTag2));
    EXPECT_EQ(r.u64(), 42u);
    EXPECT_EQ(r.u64(), 43u);
    ASSERT_TRUE(r.leaveChunk());
    EXPECT_TRUE(r.expectEnd());
    EXPECT_TRUE(r.ok()) << r.error();
}

TEST(SnapshotFormat, EveryTruncationDetected)
{
    const std::vector<std::uint8_t> image = sampleImage();
    for (std::size_t len = 0; len < image.size(); ++len) {
        std::vector<std::uint8_t> cut(image.begin(),
                                      image.begin() +
                                          static_cast<std::ptrdiff_t>(len));
        EXPECT_FALSE(sampleParses(std::move(cut)))
            << "truncation to " << len << " bytes went undetected";
    }
}

TEST(SnapshotFormat, EveryBitFlipDetected)
{
    const std::vector<std::uint8_t> image = sampleImage();
    for (std::size_t i = 0; i < image.size(); ++i) {
        for (const std::uint8_t bit : {std::uint8_t{0x01},
                                       std::uint8_t{0x80}}) {
            std::vector<std::uint8_t> flipped = image;
            flipped[i] ^= bit;
            EXPECT_FALSE(sampleParses(std::move(flipped)))
                << "bit flip at byte " << i << " went undetected";
        }
    }
}

TEST(SnapshotFormat, StaleVersionRejected)
{
    std::vector<std::uint8_t> image = sampleImage();
    image[8] = static_cast<std::uint8_t>(pu::kSnapshotVersion + 1);
    pu::Expected<pu::SnapshotReader> made =
        pu::SnapshotReader::fromBuffer(std::move(image));
    ASSERT_FALSE(made.ok());
    EXPECT_NE(made.error().find("version"), std::string::npos)
        << made.error();
}

TEST(SnapshotFormat, ReservedFlagsRejected)
{
    std::vector<std::uint8_t> image = sampleImage();
    image[13] = 0x40;
    EXPECT_FALSE(pu::SnapshotReader::fromBuffer(std::move(image)).ok());
}

TEST(SnapshotFormat, DuplicateChunkDetected)
{
    std::vector<std::uint8_t> image = sampleImage();
    const std::vector<ChunkSpan> spans = chunkSpans(image);
    ASSERT_EQ(spans.size(), 3u); // TS1, TS2, END
    // Splice a byte-identical copy of chunk 0 (its own CRC intact)
    // right after the original.
    std::vector<std::uint8_t> dup(image.begin(),
                                  image.begin() +
                                      static_cast<std::ptrdiff_t>(
                                          spans[0].end));
    dup.insert(dup.end(),
               image.begin() +
                   static_cast<std::ptrdiff_t>(spans[0].begin),
               image.begin() + static_cast<std::ptrdiff_t>(spans[0].end));
    dup.insert(dup.end(),
               image.begin() + static_cast<std::ptrdiff_t>(spans[0].end),
               image.end());

    pu::Expected<pu::SnapshotReader> made =
        pu::SnapshotReader::fromBuffer(std::move(dup));
    ASSERT_TRUE(made.ok());
    pu::SnapshotReader &r = made.value();
    ASSERT_TRUE(r.enterChunk(kTag1));
    (void)r.u8();
    (void)r.u32();
    (void)r.u64();
    (void)r.f64();
    (void)r.str();
    ASSERT_TRUE(r.leaveChunk());
    EXPECT_FALSE(r.enterChunk(kTag1));
    EXPECT_NE(r.error().find("sequence"), std::string::npos) << r.error();
}

TEST(SnapshotFormat, MissingChunkDetected)
{
    std::vector<std::uint8_t> image = sampleImage();
    const std::vector<ChunkSpan> spans = chunkSpans(image);
    ASSERT_EQ(spans.size(), 3u);
    image.erase(image.begin() +
                    static_cast<std::ptrdiff_t>(spans[1].begin),
                image.begin() + static_cast<std::ptrdiff_t>(spans[1].end));
    EXPECT_FALSE(sampleParses(std::move(image)));
}

TEST(SnapshotFormat, ReorderedChunksDetected)
{
    const std::vector<std::uint8_t> image = sampleImage();
    const std::vector<ChunkSpan> spans = chunkSpans(image);
    ASSERT_EQ(spans.size(), 3u);
    std::vector<std::uint8_t> swapped(image.begin(), image.begin() + 16);
    const auto append = [&](const ChunkSpan &span) {
        swapped.insert(swapped.end(),
                       image.begin() +
                           static_cast<std::ptrdiff_t>(span.begin),
                       image.begin() +
                           static_cast<std::ptrdiff_t>(span.end));
    };
    append(spans[1]);
    append(spans[0]);
    append(spans[2]);
    EXPECT_FALSE(sampleParses(std::move(swapped)));
}

TEST(SnapshotFormat, TrailingGarbageRejected)
{
    std::vector<std::uint8_t> image = sampleImage();
    image.push_back(0xab);
    EXPECT_FALSE(sampleParses(std::move(image)));
}

TEST(SnapshotFormat, WrongTagAndUnderconsumptionDetected)
{
    {
        pu::Expected<pu::SnapshotReader> made =
            pu::SnapshotReader::fromBuffer(sampleImage());
        ASSERT_TRUE(made.ok());
        EXPECT_FALSE(made.value().enterChunk(kTag2));
        EXPECT_NE(made.value().error().find("tag"), std::string::npos);
    }
    {
        pu::Expected<pu::SnapshotReader> made =
            pu::SnapshotReader::fromBuffer(markerImage(9));
        ASSERT_TRUE(made.ok());
        pu::SnapshotReader &r = made.value();
        ASSERT_TRUE(r.enterChunk(kTag1));
        EXPECT_FALSE(r.leaveChunk()); // u64 payload never consumed
        EXPECT_FALSE(r.ok());
    }
}

TEST(SnapshotFormat, StickyErrorReturnsZeroes)
{
    pu::Expected<pu::SnapshotReader> made =
        pu::SnapshotReader::fromBuffer(markerImage(77));
    ASSERT_TRUE(made.ok());
    pu::SnapshotReader &r = made.value();
    ASSERT_TRUE(r.enterChunk(kTag1));
    EXPECT_EQ(r.u64(), 77u);
    EXPECT_EQ(r.u64(), 0u); // past payload end: fails, returns zero
    EXPECT_FALSE(r.ok());
    const std::string first = r.error();
    EXPECT_EQ(r.u32(), 0u);
    EXPECT_EQ(r.f64(), 0.0);
    EXPECT_EQ(r.error(), first) << "later failures must not overwrite";
    EXPECT_FALSE(r.status().ok());
}

// ------------------------------------------- atomic commit & fallback

TEST(SnapshotFormat, CommitIsAtomicAndReopens)
{
    const std::string path = tempPath("snap_commit.bin");
    std::remove(path.c_str());
    pu::SnapshotWriter writer;
    writer.beginChunk(kTag1);
    writer.u64(123);
    writer.endChunk();
    const pu::Expected<void> committed = writer.commit(path);
    ASSERT_TRUE(committed.ok()) << committed.error();
    EXPECT_FALSE(fileExists(path + ".tmp"));

    pu::Expected<pu::SnapshotReader> made = pu::SnapshotReader::open(path);
    ASSERT_TRUE(made.ok()) << made.error();
    EXPECT_EQ(readMarker(made.value()), 123u);
    std::remove(path.c_str());
}

TEST(SnapshotFormat, RotatingCommitSurvivesCorruptPrimary)
{
    const std::string path = tempPath("snap_rotate.bin");
    const std::string prev = path + ".prev";
    std::remove(path.c_str());
    std::remove(prev.c_str());

    {
        pu::SnapshotWriter gen1;
        gen1.beginChunk(kTag1);
        gen1.u64(1);
        gen1.endChunk();
        ASSERT_TRUE(gen1.commitRotating(path).ok());
        EXPECT_TRUE(fileExists(path));
        EXPECT_FALSE(fileExists(prev));
    }
    {
        pu::SnapshotWriter gen2;
        gen2.beginChunk(kTag1);
        gen2.u64(2);
        gen2.endChunk();
        ASSERT_TRUE(gen2.commitRotating(path).ok());
        EXPECT_TRUE(fileExists(prev));
    }
    // Both generations intact and distinguishable.
    bool used_fallback = true;
    pu::Expected<pu::SnapshotReader> fresh =
        pu::SnapshotReader::openWithFallback(path, &used_fallback);
    ASSERT_TRUE(fresh.ok());
    EXPECT_FALSE(used_fallback);
    EXPECT_EQ(readMarker(fresh.value()), 2u);

    // Corrupt the primary (torn/garbage write): fallback recovers the
    // previous good generation.
    writeRawFile(path, "not a snapshot");
    pu::Expected<pu::SnapshotReader> recovered =
        pu::SnapshotReader::openWithFallback(path, &used_fallback);
    ASSERT_TRUE(recovered.ok()) << recovered.error();
    EXPECT_TRUE(used_fallback);
    EXPECT_EQ(readMarker(recovered.value()), 1u);

    std::remove(path.c_str());
    std::remove(prev.c_str());
}

TEST(SnapshotFormat, CrashBetweenTempWriteAndRenameIsHarmless)
{
    const std::string path = tempPath("snap_crash.bin");
    const std::string prev = path + ".prev";
    std::remove(path.c_str());
    std::remove(prev.c_str());

    pu::SnapshotWriter gen1;
    gen1.beginChunk(kTag1);
    gen1.u64(1);
    gen1.endChunk();
    ASSERT_TRUE(gen1.commitRotating(path).ok());

    // Crash while writing the next generation: a torn .tmp exists but
    // neither published file was touched.
    writeRawFile(path + ".tmp", "PNTM torn half-written image");
    bool used_fallback = true;
    pu::Expected<pu::SnapshotReader> primary =
        pu::SnapshotReader::openWithFallback(path, &used_fallback);
    ASSERT_TRUE(primary.ok());
    EXPECT_FALSE(used_fallback);
    EXPECT_EQ(readMarker(primary.value()), 1u);
    std::remove((path + ".tmp").c_str());

    // Crash between the two renames of a rotating commit: the primary
    // is already rotated away, .prev still loads.
    ASSERT_EQ(std::rename(path.c_str(), prev.c_str()), 0);
    pu::Expected<pu::SnapshotReader> fallback =
        pu::SnapshotReader::openWithFallback(path, &used_fallback);
    ASSERT_TRUE(fallback.ok()) << fallback.error();
    EXPECT_TRUE(used_fallback);
    EXPECT_EQ(readMarker(fallback.value()), 1u);

    // Both generations gone: a recoverable error naming both paths.
    std::remove(prev.c_str());
    pu::Expected<pu::SnapshotReader> neither =
        pu::SnapshotReader::openWithFallback(path, &used_fallback);
    EXPECT_FALSE(neither.ok());
    EXPECT_NE(neither.error().find("fallback"), std::string::npos);
}

#if defined(PENTIMENTO_FAULT_INJECTION)

// Failed-commit hygiene, driven through the same injection points the
// chaos battery schedules: a commit that fails for *any* reason must
// leave no stale .tmp behind and must not have touched the published
// generations — .prev still rescues after a torn rename.
TEST(SnapshotFormat, InjectedCommitFailuresLeaveNoTmpAndKeepPrev)
{
    const std::string path = tempPath("snap_fault.bin");
    const std::string prev = path + ".prev";
    std::remove(path.c_str());
    std::remove(prev.c_str());
    std::remove((path + ".tmp").c_str());

    pu::SnapshotWriter gen1;
    gen1.beginChunk(kTag1);
    gen1.u64(1);
    gen1.endChunk();
    ASSERT_TRUE(gen1.commitRotating(path).ok());

    const char *failures[] = {"snapshot.commit.enospc",
                              "snapshot.commit.short_write",
                              "snapshot.commit.rename"};
    for (const char *point : failures) {
        const pu::Expected<pu::fault::Schedule> schedule =
            pu::fault::parseSchedule(std::string("seed=1;") + point +
                                     ":max=1");
        ASSERT_TRUE(schedule.ok()) << schedule.error();
        pu::fault::arm(schedule.value());

        pu::SnapshotWriter gen2;
        gen2.beginChunk(kTag1);
        gen2.u64(2);
        gen2.endChunk();
        const pu::Expected<void> committed = gen2.commitRotating(path);
        pu::fault::disarm();
        ASSERT_FALSE(committed.ok()) << point << " did not fire";
        // No half-written temp file may survive the failure.
        EXPECT_FALSE(fileExists(path + ".tmp")) << point;
        // The rotation already moved gen1 to .prev; the fallback chain
        // must still deliver it.
        bool used_fallback = false;
        pu::Expected<pu::SnapshotReader> recovered =
            pu::SnapshotReader::openWithFallback(path, &used_fallback);
        ASSERT_TRUE(recovered.ok()) << point << ": " << recovered.error();
        EXPECT_TRUE(used_fallback) << point;
        EXPECT_EQ(readMarker(recovered.value()), 1u) << point;

        // Reset for the next failure mode: republish gen1 as primary.
        std::remove(path.c_str());
        std::remove(prev.c_str());
        pu::SnapshotWriter again;
        again.beginChunk(kTag1);
        again.u64(1);
        again.endChunk();
        ASSERT_TRUE(again.commitRotating(path).ok());
    }
    std::remove(path.c_str());
    std::remove(prev.c_str());
}

// A torn rename is worse than a clean failure: the rename itself
// succeeds, so the *published primary* is truncated mid-image (the
// crash-between-fwrite-and-fsync shape) and commit reports it only
// after the fact. CRC validation must reject the primary and the
// rotating fallback must deliver the previous generation.
TEST(SnapshotFormat, InjectedTornRenamePublishesCorruptPrimaryPrevRescues)
{
    const std::string path = tempPath("snap_torn.bin");
    const std::string prev = path + ".prev";
    std::remove(path.c_str());
    std::remove(prev.c_str());

    pu::SnapshotWriter gen1;
    gen1.beginChunk(kTag1);
    gen1.u64(1);
    gen1.endChunk();
    ASSERT_TRUE(gen1.commitRotating(path).ok());

    const pu::Expected<pu::fault::Schedule> schedule =
        pu::fault::parseSchedule(
            "seed=1;snapshot.commit.torn_rename:max=1");
    ASSERT_TRUE(schedule.ok()) << schedule.error();
    pu::fault::arm(schedule.value());
    pu::SnapshotWriter gen2;
    gen2.beginChunk(kTag1);
    gen2.u64(2);
    gen2.endChunk();
    const pu::Expected<void> committed = gen2.commitRotating(path);
    pu::fault::disarm();

    // The write went through rename before the failure surfaced.
    ASSERT_FALSE(committed.ok());
    EXPECT_NE(committed.error().find("torn rename"), std::string::npos)
        << committed.error();
    EXPECT_FALSE(fileExists(path + ".tmp"));
    // Header-only open() cannot see the damage (the first 16 bytes
    // survived the tear) — the fallback chain's full CRC walk must.
    EXPECT_TRUE(pu::SnapshotReader::open(path).ok());

    bool used_fallback = false;
    pu::Expected<pu::SnapshotReader> recovered =
        pu::SnapshotReader::openWithFallback(path, &used_fallback);
    ASSERT_TRUE(recovered.ok()) << recovered.error();
    EXPECT_TRUE(used_fallback);
    EXPECT_EQ(readMarker(recovered.value()), 1u);

    std::remove(path.c_str());
    std::remove(prev.c_str());
}

// The load-side bit-rot point: a good image on disk, corrupted once in
// flight. The first open (of the primary) rejects; the fallback open
// of .prev succeeds because max=1 spends the fault on the primary.
TEST(SnapshotFormat, InjectedLoadCorruptionFallsBackToPrev)
{
    const std::string path = tempPath("snap_rot.bin");
    const std::string prev = path + ".prev";
    std::remove(path.c_str());
    std::remove(prev.c_str());

    for (std::uint64_t marker : {1ULL, 2ULL}) {
        pu::SnapshotWriter writer;
        writer.beginChunk(kTag1);
        writer.u64(marker);
        writer.endChunk();
        ASSERT_TRUE(writer.commitRotating(path).ok());
    }

    const pu::Expected<pu::fault::Schedule> schedule =
        pu::fault::parseSchedule("seed=1;snapshot.load.corrupt_crc:max=1");
    ASSERT_TRUE(schedule.ok()) << schedule.error();
    pu::fault::arm(schedule.value());
    bool used_fallback = false;
    pu::Expected<pu::SnapshotReader> recovered =
        pu::SnapshotReader::openWithFallback(path, &used_fallback);
    pu::fault::disarm();
    ASSERT_TRUE(recovered.ok()) << recovered.error();
    EXPECT_TRUE(used_fallback);
    EXPECT_EQ(readMarker(recovered.value()), 1u);

    std::remove(path.c_str());
    std::remove(prev.c_str());
}

#endif // PENTIMENTO_FAULT_INJECTION

TEST(SnapshotFormat, ExpectedBasics)
{
    pu::Expected<int> value = 5;
    ASSERT_TRUE(value.ok());
    EXPECT_EQ(value.value(), 5);
    pu::Expected<int> error = pu::unexpected("boom");
    ASSERT_FALSE(error.ok());
    EXPECT_EQ(error.error(), "boom");
    pu::Expected<void> fine;
    EXPECT_TRUE(fine.ok());
}

// ------------------------------------------------ device round trips

namespace {

pf::DeviceConfig
tinyConfig(std::uint64_t seed)
{
    pf::DeviceConfig config;
    config.tiles_x = 8;
    config.tiles_y = 8;
    config.nodes_per_tile = 32;
    config.seed = seed;
    config.service_age_h = 20000.0;
    return config;
}

std::vector<std::uint8_t>
saveDeviceImage(const pf::Device &device)
{
    pu::SnapshotWriter writer;
    writer.beginChunk(kDevTag);
    device.saveState(writer);
    writer.endChunk();
    return writer.finish();
}

pu::Expected<void>
restoreDeviceImage(std::vector<std::uint8_t> image, pf::Device &device,
                   bool *had_design = nullptr)
{
    pu::Expected<pu::SnapshotReader> made =
        pu::SnapshotReader::fromBuffer(std::move(image));
    if (!made.ok()) {
        return pu::unexpected(made.error());
    }
    pu::SnapshotReader &reader = made.value();
    if (!reader.enterChunk(kDevTag)) {
        return reader.status();
    }
    const pu::Expected<void> restored =
        device.restoreState(reader, had_design);
    if (!restored.ok()) {
        return restored;
    }
    if (!reader.leaveChunk() || !reader.expectEnd()) {
        return reader.status();
    }
    return {};
}

/** Route delays for both polarities at two temperatures. */
void
observeRoute(pf::Device &device, const pf::RouteSpec &spec,
             std::vector<double> &out)
{
    pf::Route route(device, spec);
    out.push_back(route.delayPs(pp::Transition::Rising, 348.15));
    out.push_back(route.delayPs(pp::Transition::Falling, 348.15));
    out.push_back(route.delayPs(pp::Transition::Rising, 353.0));
    out.push_back(route.delayPs(pp::Transition::Falling, 353.0));
}

void
expectSameSeries(const std::vector<double> &straight,
                 const std::vector<double> &resumed)
{
    ASSERT_EQ(straight.size(), resumed.size());
    for (std::size_t i = 0; i < straight.size(); ++i) {
        EXPECT_EQ(straight[i], resumed[i])
            << "observation " << i << " diverged after restore";
    }
}

} // namespace

TEST(SnapshotDevice, MidTenancyRoundTripIsBitIdentical)
{
    // Straight-through twin: two tenancies, a design replace without a
    // wipe, pending journal runs and an open timeline segment at the
    // cut point — nothing observed yet, so nothing is materialised.
    pf::Device straight(tinyConfig(77));
    const pf::RouteSpec ra = straight.allocateRoute("a", 600.0);
    const pf::RouteSpec rb = straight.allocateRoute("b", 400.0);
    const pf::RouteSpec rc = straight.allocateRoute("c", 500.0);
    auto d1 = std::make_shared<pf::Design>("t1");
    d1->setRouteValue(ra, true);
    d1->setRouteToggling(rb, 0.3);
    straight.loadDesign(d1);
    straight.advanceAt(37.0, 348.15);
    auto d2 = std::make_shared<pf::Design>("t2");
    d2->setRouteValue(ra, false);
    d2->setRouteValue(rc, true);
    straight.loadDesign(d2);
    straight.advanceAt(11.5, 351.0); // leaves the segment open

    const std::size_t journaled_before = straight.journaledKeyCount();
    ASSERT_GT(journaled_before, 0u);
    const std::vector<std::uint8_t> image = saveDeviceImage(straight);
    // Save is strictly non-flushing: nothing materialised, journal
    // untouched.
    EXPECT_EQ(straight.journaledKeyCount(), journaled_before);
    EXPECT_EQ(straight.materializedCount(), 0u);

    pf::Device restored(tinyConfig(77));
    bool had_design = false;
    const pu::Expected<void> result =
        restoreDeviceImage(image, restored, &had_design);
    ASSERT_TRUE(result.ok()) << result.error();
    EXPECT_TRUE(had_design);
    EXPECT_EQ(restored.journaledKeyCount(), journaled_before);

    // Identical continuation on both twins. Designs are code, not
    // board state: the restored twin re-loads the resident design
    // first (draw-neutral on the straight twin, which already has it).
    const auto continuation = [&](pf::Device &device) {
        std::vector<double> obs;
        device.loadDesign(d2);
        device.advanceAt(5.0, 350.0);
        observeRoute(device, ra, obs);
        observeRoute(device, rb, obs);
        observeRoute(device, rc, obs);
        device.advanceAt(7.0, 349.0);
        observeRoute(device, ra, obs);
        observeRoute(device, rc, obs);
        device.applyServiceWear(2.0);
        observeRoute(device, ra, obs);
        observeRoute(device, rb, obs);
        obs.push_back(static_cast<double>(device.materializedCount()));
        obs.push_back(static_cast<double>(device.journaledKeyCount()));
        obs.push_back(static_cast<double>(device.timelineSegments()));
        return obs;
    };
    expectSameSeries(continuation(straight), continuation(restored));
}

TEST(SnapshotDevice, RestoreRequiresPristineTarget)
{
    pf::Device source(tinyConfig(5));
    source.advanceAt(3.0, 349.0);
    const std::vector<std::uint8_t> image = saveDeviceImage(source);

    pf::Device used(tinyConfig(5));
    used.advanceAt(1.0, 349.0);
    const pu::Expected<void> result = restoreDeviceImage(image, used);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.error().find("pristine"), std::string::npos);
}

TEST(SnapshotDevice, ConfigFingerprintSkewRejected)
{
    pf::Device source(tinyConfig(5));
    source.advanceAt(3.0, 349.0);
    const std::vector<std::uint8_t> image = saveDeviceImage(source);

    pf::Device other_seed(tinyConfig(6));
    const pu::Expected<void> result =
        restoreDeviceImage(image, other_seed);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.error().find("fingerprint"), std::string::npos);
}

TEST(SnapshotDevice, CorruptImageNeverAborts)
{
    pf::Device source(tinyConfig(9));
    const pf::RouteSpec r = source.allocateRoute("r", 500.0);
    auto d = std::make_shared<pf::Design>("d");
    d->setRouteValue(r, true);
    source.loadDesign(d);
    source.advanceAt(20.0, 350.0);
    const std::vector<std::uint8_t> image = saveDeviceImage(source);

    // A flip anywhere in the device chunk must surface as an Expected
    // error (CRC), not reach any constructor fatal.
    for (std::size_t i = 20; i < image.size(); i += 97) {
        std::vector<std::uint8_t> corrupt = image;
        corrupt[i] ^= 0x20;
        pf::Device target(tinyConfig(9));
        EXPECT_FALSE(restoreDeviceImage(std::move(corrupt), target).ok())
            << "flip at byte " << i;
    }
    // Truncations likewise.
    for (const std::size_t len :
         {image.size() / 4, image.size() / 2, image.size() - 5}) {
        std::vector<std::uint8_t> cut(
            image.begin(),
            image.begin() + static_cast<std::ptrdiff_t>(len));
        pf::Device target(tinyConfig(9));
        EXPECT_FALSE(restoreDeviceImage(std::move(cut), target).ok())
            << "truncation to " << len;
    }
}

TEST(SnapshotDevice, AgingStoreRehashRoundTrip)
{
    // Materialise past one slab chunk (1024) so the open-addressing
    // index has grown through at least one rehash before the save.
    pf::Device straight(tinyConfig(55));
    std::vector<pf::ResourceId> ids;
    for (std::uint16_t x = 0; x < 8; ++x) {
        for (std::uint16_t y = 0; y < 8; ++y) {
            for (std::uint16_t i = 0; i < 20; ++i) {
                ids.push_back(pf::ResourceId{
                    x, y, pf::ResourceType::RoutingNode, i});
            }
        }
    }
    for (const pf::ResourceId &id : ids) {
        (void)straight.element(id);
    }
    straight.applyServiceWear(10.0);
    ASSERT_GT(straight.materializedCount(), 1024u);

    const std::vector<std::uint8_t> image = saveDeviceImage(straight);
    pf::Device restored(tinyConfig(55));
    const pu::Expected<void> result = restoreDeviceImage(image, restored);
    ASSERT_TRUE(result.ok()) << result.error();

    // Identical listing order and identical flat-index probes: every
    // id must land on the same dense handle it held before the save.
    const std::vector<pf::ResourceId> a = straight.materializedIds();
    const std::vector<pf::ResourceId> b = restored.materializedIds();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].key(), b[i].key()) << "listing order at " << i;
    }
    for (const pf::ResourceId &id : ids) {
        EXPECT_EQ(straight.bindElement(id), restored.bindElement(id));
    }
    const pf::DeviceConfig &cfg = straight.config();
    for (std::size_t i = 0; i < ids.size(); i += 97) {
        const double sa = straight.element(ids[i]).delayPs(
            cfg.bti, cfg.delay, pp::Transition::Rising, 348.15);
        const double sb = restored.element(ids[i]).delayPs(
            cfg.bti, cfg.delay, pp::Transition::Rising, 348.15);
        EXPECT_EQ(sa, sb);
    }
}

TEST(SnapshotDevice, SpillArenaRestoreThenLateKeyAndWear)
{
    // Five activity changes on the same never-observed key push its
    // run list past the two inline slots into the spill arena; the
    // checkpoint lands mid-pending.
    pf::Device straight(tinyConfig(99));
    const pf::RouteSpec rx = straight.allocateRoute("x", 500.0);
    std::vector<std::shared_ptr<pf::Design>> designs;
    for (int i = 0; i < 5; ++i) {
        auto d = std::make_shared<pf::Design>("d" + std::to_string(i));
        if (i % 2 == 0) {
            d->setRouteValue(rx, true);
        } else {
            d->setRouteToggling(rx, 0.2 + 0.1 * i);
        }
        straight.loadDesign(d);
        straight.advanceAt(6.0 + i, 348.0 + i);
        designs.push_back(d);
    }
    ASSERT_GT(straight.journaledKeyCount(), 0u);

    const std::vector<std::uint8_t> image = saveDeviceImage(straight);
    pf::Device restored(tinyConfig(99));
    const pu::Expected<void> result = restoreDeviceImage(image, restored);
    ASSERT_TRUE(result.ok()) << result.error();

    // Immediately after restore: configure a brand-new key alongside
    // the spilled one, then a whole-fabric service-wear sweep — the
    // orderings most likely to trip a mis-restored arena link or pin.
    const auto continuation = [&](pf::Device &device) {
        std::vector<double> obs;
        device.loadDesign(designs.back());
        const pf::RouteSpec ry = device.allocateRoute("y", 450.0);
        auto late = std::make_shared<pf::Design>("late");
        late->setRouteValue(rx, true);
        late->setRouteToggling(ry, 0.5);
        device.loadDesign(late);
        device.advanceAt(9.0, 352.0);
        device.applyServiceWear(4.0);
        observeRoute(device, rx, obs);
        observeRoute(device, ry, obs);
        obs.push_back(static_cast<double>(device.journaledKeyCount()));
        obs.push_back(static_cast<double>(device.materializedCount()));
        return obs;
    };
    expectSameSeries(continuation(straight), continuation(restored));
}

TEST(SnapshotDevice, CompactionPinRebaseAfterRestore)
{
    // Eighty distinct-temperature segments with a journal-deferred key
    // pinned at position zero: the restored timeline must compact with
    // the same prefix drop and pin rebase as the straight run once the
    // pin lifts.
    pf::Device straight(tinyConfig(101));
    const pf::RouteSpec rp = straight.allocateRoute("p", 500.0);
    auto dp = std::make_shared<pf::Design>("dp");
    dp->setRouteValue(rp, true);
    straight.loadDesign(dp);
    for (int i = 0; i < 80; ++i) {
        straight.advanceAt(1.0, 340.0 + static_cast<double>(i % 7));
    }
    ASSERT_GT(straight.journaledKeyCount(), 0u);

    const std::vector<std::uint8_t> image = saveDeviceImage(straight);
    pf::Device restored(tinyConfig(101));
    const pu::Expected<void> result = restoreDeviceImage(image, restored);
    ASSERT_TRUE(result.ok()) << result.error();

    const auto continuation = [&](pf::Device &device) {
        std::vector<double> obs;
        device.loadDesign(dp);
        const pf::RouteSpec rq = device.allocateRoute("q", 420.0);
        auto dq = std::make_shared<pf::Design>("dq");
        dq->setRouteValue(rp, false);
        dq->setRouteToggling(rq, 0.6);
        device.loadDesign(dq);
        device.advanceAt(30.0, 345.0);
        observeRoute(device, rp, obs); // materialise: replay + unpin
        observeRoute(device, rq, obs);
        device.advanceAt(40.0, 346.0);
        device.loadDesign(dp); // flip flush → compaction opportunity
        device.advanceAt(10.0, 347.0);
        observeRoute(device, rp, obs);
        observeRoute(device, rq, obs);
        obs.push_back(static_cast<double>(device.timelineSegments()));
        obs.push_back(static_cast<double>(device.materializedCount()));
        return obs;
    };
    expectSameSeries(continuation(straight), continuation(restored));
}

// ---------------------------------------------- platform round trips

namespace {

pc::PlatformConfig
smallRegion(std::size_t fleet, std::uint64_t seed)
{
    pc::PlatformConfig config = pentimento::core::awsF1Region(seed);
    config.fleet_size = fleet;
    config.device_template.tiles_x = 32;
    config.device_template.tiles_y = 32;
    return config;
}

std::vector<std::uint8_t>
savePlatformImage(const pc::CloudPlatform &platform)
{
    pu::SnapshotWriter writer;
    platform.saveState(writer);
    return writer.finish();
}

pu::Expected<void>
restorePlatformImage(std::vector<std::uint8_t> image,
                     pc::CloudPlatform &platform,
                     std::vector<std::string> *boards_with_design = nullptr)
{
    pu::Expected<pu::SnapshotReader> made =
        pu::SnapshotReader::fromBuffer(std::move(image));
    if (!made.ok()) {
        return pu::unexpected(made.error());
    }
    pu::SnapshotReader &reader = made.value();
    const pu::Expected<void> restored =
        platform.restoreState(reader, boards_with_design);
    if (!restored.ok()) {
        return restored;
    }
    if (!reader.expectEnd()) {
        return reader.status();
    }
    return {};
}

} // namespace

TEST(SnapshotPlatform, MidTenancyRoundTripIsBitIdentical)
{
    const pc::PlatformConfig config = smallRegion(3, 21);
    pc::CloudPlatform straight(config);
    const std::optional<std::string> board = straight.rent();
    ASSERT_TRUE(board.has_value());
    pf::Device &device = straight.instance(*board).device();
    const pf::RouteSpec r0 = device.allocateRoute("r0", 800.0);
    const pf::RouteSpec r1 = device.allocateRoute("r1", 650.0);
    auto design = std::make_shared<pf::Design>("tenant");
    design->setRouteValue(r0, true);
    design->setRouteToggling(r1, 0.4);
    design->setPowerW(20.0);
    ASSERT_TRUE(straight.loadDesign(*board, design).empty());
    straight.advanceHours(48.0); // idle boards defer, tenant walks

    const std::vector<std::uint8_t> image = savePlatformImage(straight);

    pc::CloudPlatform resumed(config);
    std::vector<std::string> with_design;
    const pu::Expected<void> result =
        restorePlatformImage(image, resumed, &with_design);
    ASSERT_TRUE(result.ok()) << result.error();
    ASSERT_EQ(with_design.size(), 1u);
    EXPECT_EQ(with_design[0], *board);
    EXPECT_EQ(resumed.nowHours(), straight.nowHours());

    const auto continuation = [&](pc::CloudPlatform &platform) {
        std::vector<double> doubles;
        std::vector<std::string> strings;
        EXPECT_TRUE(platform.loadDesign(*board, design).empty());
        platform.advanceHours(25.0);
        doubles.push_back(platform.nowHours());
        for (const std::string &id : platform.allInstanceIds()) {
            pc::FpgaInstance &inst = platform.instance(id);
            doubles.push_back(inst.dieTempK());
            doubles.push_back(inst.rng().uniform());
        }
        pf::Device &dev = platform.instance(*board).device();
        pf::Route a(dev, r0);
        pf::Route b(dev, r1);
        const double die = platform.instance(*board).dieTempK();
        doubles.push_back(a.delayPs(pp::Transition::Rising, die));
        doubles.push_back(a.delayPs(pp::Transition::Falling, die));
        doubles.push_back(b.delayPs(pp::Transition::Rising, die));
        doubles.push_back(b.delayPs(pp::Transition::Falling, die));
        platform.advanceHours(10.0);
        for (const std::string &id : platform.allInstanceIds()) {
            doubles.push_back(platform.instance(id).dieTempK());
        }
        const std::optional<std::string> next = platform.rent();
        strings.push_back(next.value_or("<none>"));
        return std::make_pair(doubles, strings);
    };
    const auto obs_straight = continuation(straight);
    const auto obs_resumed = continuation(resumed);
    expectSameSeries(obs_straight.first, obs_resumed.first);
    EXPECT_EQ(obs_straight.second, obs_resumed.second);
}

TEST(SnapshotPlatform, UnflushedDeferredIdleRoundTrips)
{
    const pc::PlatformConfig config = smallRegion(3, 22);
    pc::CloudPlatform straight(config);
    straight.advanceHours(500.0); // every board defers its walk

    const std::vector<std::uint8_t> image = savePlatformImage(straight);
    // Saving must not flush the deferred backlog.
    for (const std::string &id : straight.allInstanceIds()) {
        EXPECT_EQ(straight.instance(id).deferredIdleHours(), 500.0);
    }

    pc::CloudPlatform resumed(config);
    const pu::Expected<void> result = restorePlatformImage(image, resumed);
    ASSERT_TRUE(result.ok()) << result.error();
    for (const std::string &id : resumed.allInstanceIds()) {
        EXPECT_EQ(resumed.instance(id).deferredIdleHours(), 500.0);
    }

    const auto continuation = [](pc::CloudPlatform &platform) {
        std::vector<double> obs;
        for (const std::string &id : platform.allInstanceIds()) {
            obs.push_back(platform.instance(id).dieTempK()); // flushes
        }
        platform.advanceHours(100.0);
        for (const std::string &id : platform.allInstanceIds()) {
            obs.push_back(platform.instance(id).dieTempK());
            obs.push_back(platform.instance(id).rng().uniform());
        }
        return obs;
    };
    expectSameSeries(continuation(straight), continuation(resumed));
}

TEST(SnapshotPlatform, SchedulerRngStreamContinues)
{
    pc::PlatformConfig config = smallRegion(4, 23);
    config.policy = pc::AllocationPolicy::Random;
    pc::CloudPlatform straight(config);
    const std::optional<std::string> first = straight.rent();
    ASSERT_TRUE(first.has_value());
    straight.advanceHours(10.0);
    straight.release(*first);

    const std::vector<std::uint8_t> image = savePlatformImage(straight);
    pc::CloudPlatform resumed(config);
    const pu::Expected<void> result = restorePlatformImage(image, resumed);
    ASSERT_TRUE(result.ok()) << result.error();

    // The Random policy draws from the scheduler stream on every rent:
    // the restored platform must pick the exact same board sequence.
    const auto drain = [](pc::CloudPlatform &platform) {
        std::vector<std::string> order;
        while (const std::optional<std::string> id = platform.rent()) {
            order.push_back(*id);
        }
        return order;
    };
    EXPECT_EQ(drain(straight), drain(resumed));
}

TEST(SnapshotPlatform, ConfigSkewAndCorruptionRejectedGracefully)
{
    pc::CloudPlatform source(smallRegion(3, 31));
    source.advanceHours(24.0);
    const std::vector<std::uint8_t> image = savePlatformImage(source);

    {
        pc::CloudPlatform other(smallRegion(3, 32));
        const pu::Expected<void> result =
            restorePlatformImage(image, other);
        ASSERT_FALSE(result.ok());
        EXPECT_NE(result.error().find("fingerprint"), std::string::npos);
    }
    {
        std::vector<std::uint8_t> corrupt = image;
        corrupt[corrupt.size() / 2] ^= 0x10;
        pc::CloudPlatform target(smallRegion(3, 31));
        EXPECT_FALSE(restorePlatformImage(std::move(corrupt), target).ok());
    }
    {
        std::vector<std::uint8_t> cut(
            image.begin(),
            image.begin() +
                static_cast<std::ptrdiff_t>(image.size() * 2 / 3));
        pc::CloudPlatform target(smallRegion(3, 31));
        EXPECT_FALSE(restorePlatformImage(std::move(cut), target).ok());
    }
}
