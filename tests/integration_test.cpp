/**
 * @file
 * End-to-end integration tests: miniature versions of the paper's
 * three experiments, the attack facades (marketplace extraction and
 * user-data recovery), mitigation effectiveness and provider-side
 * quarantine. Scales are reduced for test runtime; the full-scale
 * reproductions live in bench/.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/attack.hpp"
#include "core/classifier.hpp"
#include "core/experiment.hpp"
#include "core/presets.hpp"
#include "mitigation/strategies.hpp"
#include "util/logging.hpp"

namespace pc = pentimento::core;
namespace pcl = pentimento::cloud;
namespace pf = pentimento::fabric;
namespace pm = pentimento::mitigation;
namespace pu = pentimento::util;

namespace {

pc::Experiment1Config
miniExp1()
{
    pc::Experiment1Config config;
    config.groups = {{2000.0, 4}, {8000.0, 4}};
    config.burn_hours = 40.0;
    config.recovery_hours = 30.0;
    config.measure_every_h = 5.0;
    config.arith.dsp_count = 64;
    config.seed = 31;
    return config;
}

pc::Experiment2Config
miniExp2()
{
    pc::Experiment2Config config;
    config.groups = {{4000.0, 4}, {10000.0, 4}};
    config.burn_hours = 60.0;
    config.measure_every_h = 5.0;
    config.platform.fleet_size = 2;
    config.seed = 32;
    return config;
}

pc::Experiment3Config
miniExp3()
{
    pc::Experiment3Config config;
    config.groups = {{8000.0, 6}};
    config.burn_hours = 120.0;
    config.recovery_hours = 25.0;
    config.measure_every_h = 1.0;
    config.platform.fleet_size = 2;
    config.seed = 33;
    return config;
}

} // namespace

// ----------------------------------------------------- Experiment 1

TEST(Experiment1, BurnPolaritySeparatesDeltas)
{
    const pc::ExperimentResult result = pc::runExperiment1(miniExp1());
    ASSERT_EQ(result.routes.size(), 8u);
    for (const auto &route : result.routes) {
        const double at_burn_end = route.series.meanBetweenHours(
            30.0, 40.0);
        if (route.burn_value) {
            EXPECT_GT(at_burn_end, 0.1)
                << route.name << " should drift positive";
        } else {
            EXPECT_LT(at_burn_end, -0.1)
                << route.name << " should drift negative";
        }
    }
}

TEST(Experiment1, LongerRoutesDriftMore)
{
    const pc::ExperimentResult result = pc::runExperiment1(miniExp1());
    double short_mag = 0.0, long_mag = 0.0;
    int short_n = 0, long_n = 0;
    for (const auto &route : result.routes) {
        const double mag =
            std::abs(route.series.meanBetweenHours(30.0, 40.0));
        if (route.target_ps == 2000.0) {
            short_mag += mag;
            ++short_n;
        } else {
            long_mag += mag;
            ++long_n;
        }
    }
    EXPECT_GT(long_mag / long_n, 2.0 * short_mag / short_n);
}

TEST(Experiment1, SeriesCenteredAtFirstSample)
{
    const pc::ExperimentResult result = pc::runExperiment1(miniExp1());
    for (const auto &route : result.routes) {
        ASSERT_FALSE(route.series.empty());
        EXPECT_DOUBLE_EQ(route.series.values().front(), 0.0);
        EXPECT_DOUBLE_EQ(route.series.hours().front(), 0.0);
    }
}

TEST(Experiment1, RecoveryMovesTowardZeroForBurnOne)
{
    const pc::ExperimentResult result = pc::runExperiment1(miniExp1());
    for (const auto &route : result.routes) {
        if (!route.burn_value) {
            continue;
        }
        const double at_burn_end =
            route.series.meanBetweenHours(30.0, 40.0);
        const double at_recovery_end =
            route.series.meanBetweenHours(60.0, 70.0);
        EXPECT_LT(at_recovery_end, at_burn_end)
            << route.name << " must recover downward";
    }
}

TEST(Experiment1, DeterministicForSeed)
{
    const pc::ExperimentResult a = pc::runExperiment1(miniExp1());
    const pc::ExperimentResult b = pc::runExperiment1(miniExp1());
    ASSERT_EQ(a.routes.size(), b.routes.size());
    for (std::size_t i = 0; i < a.routes.size(); ++i) {
        EXPECT_EQ(a.routes[i].burn_value, b.routes[i].burn_value);
        EXPECT_EQ(a.routes[i].series.values(),
                  b.routes[i].series.values());
    }
}

TEST(Experiment1, MeasurementCostTracked)
{
    const pc::ExperimentResult result = pc::runExperiment1(miniExp1());
    EXPECT_GT(result.measure_seconds, 0.0);
    EXPECT_GT(result.sweeps, 10u);
    EXPECT_LT(result.measurementFraction(), 0.05);
}

// ----------------------------------------------------- Experiment 2

TEST(Experiment2, ThreatModel1RecoversMostBits)
{
    const pc::ExperimentResult result = pc::runExperiment2(miniExp2());
    const auto report = pc::ThreatModel1Classifier().classify(result);
    EXPECT_GE(report.accuracy, 0.75);
}

TEST(Experiment2, CloudContrastSmallerThanLab)
{
    pc::Experiment1Config lab = miniExp1();
    lab.groups = {{8000.0, 4}};
    lab.recovery_hours = 0.0;
    pc::Experiment2Config cloud = miniExp2();
    cloud.groups = {{8000.0, 4}};
    cloud.burn_hours = lab.burn_hours;

    const pc::ExperimentResult lab_result = pc::runExperiment1(lab);
    const pc::ExperimentResult cloud_result =
        pc::runExperiment2(cloud);
    double lab_mag = 0.0, cloud_mag = 0.0;
    for (const auto &route : lab_result.routes) {
        lab_mag +=
            std::abs(route.series.meanBetweenHours(30.0, 40.0)) / 4.0;
    }
    for (const auto &route : cloud_result.routes) {
        cloud_mag +=
            std::abs(route.series.meanBetweenHours(30.0, 40.0)) / 4.0;
    }
    EXPECT_LT(cloud_mag, 0.5 * lab_mag);
}

// ----------------------------------------------------- Experiment 3

TEST(Experiment3, SeriesStartAtVictimReleaseHour)
{
    const pc::ExperimentResult result = pc::runExperiment3(miniExp3());
    for (const auto &route : result.routes) {
        EXPECT_DOUBLE_EQ(route.series.hours().front(), 120.0);
        EXPECT_DOUBLE_EQ(route.series.values().front(), 0.0);
    }
}

TEST(Experiment3, ThreatModel2RecoversLongRouteBits)
{
    const pc::ExperimentResult result = pc::runExperiment3(miniExp3());
    const auto report = pc::ThreatModel2Classifier().classify(result);
    EXPECT_GE(report.accuracy, 0.8);
}

TEST(Experiment3, BurnOneRoutesShowRecoverySlope)
{
    const pc::ExperimentResult result = pc::runExperiment3(miniExp3());
    double one_slope = 0.0, zero_slope = 0.0;
    int ones = 0, zeros = 0;
    for (const auto &route : result.routes) {
        if (route.burn_value) {
            one_slope += route.series.slopePerHour();
            ++ones;
        } else {
            zero_slope += route.series.slopePerHour();
            ++zeros;
        }
    }
    if (ones > 0 && zeros > 0) {
        EXPECT_LT(one_slope / ones, zero_slope / zeros);
    }
}

// ------------------------------------------------- marketplace attack

TEST(MarketplaceAttack, ExtractsAfiConstants)
{
    pcl::PlatformConfig region = pc::awsF1Region(41);
    region.fleet_size = 2;
    pcl::CloudPlatform platform(region);

    // Publisher builds an AFI holding an 8-bit secret on 8 ns routes
    // and lists it with its (public) skeleton.
    pf::Device scratch(pc::awsF1Silicon(7));
    const std::vector<bool> secret{true, false, true,  true,
                                   false, true, false, false};
    pc::SecretBundle bundle =
        pc::makeSecretTarget(scratch, secret, 8000.0, "vendor_afi");
    const std::string afi_id = platform.marketplace().publish(
        "vendor", bundle.design, bundle.skeleton);

    pc::Tm1Options options;
    options.burn_hours = 60.0;
    options.measure_every_h = 5.0;
    options.seed = 77;
    const pc::Tm1Report report =
        pc::extractDesignData(platform, afi_id, options);

    EXPECT_EQ(report.recovered_bits.size(), secret.size());
    EXPECT_GE(report.classification.accuracy, 0.75);
}

TEST(MarketplaceAttack, RequiresSkeleton)
{
    pcl::PlatformConfig region = pc::awsF1Region(42);
    region.fleet_size = 1;
    pcl::CloudPlatform platform(region);
    auto design = std::make_shared<pf::Design>("opaque");
    const std::string afi_id =
        platform.marketplace().publish("vendor", design, {});
    EXPECT_THROW(pc::extractDesignData(platform, afi_id),
                 pu::FatalError);
}

// ---------------------------------------------------- TM2 full story

TEST(UserDataRecovery, EndToEndOnVictimBoard)
{
    pcl::PlatformConfig region = pc::awsF1Region(43);
    region.fleet_size = 3;
    pcl::CloudPlatform platform(region);

    const std::vector<bool> secret{true, true, false, true, false,
                                   false};
    pc::Tm2Options options;
    options.victim_hours = 120.0;
    options.recovery_hours = 25.0;
    options.route_ps = 8000.0;
    options.seed = 99;
    const pc::Tm2Report report =
        pc::recoverUserData(platform, secret, options);

    EXPECT_TRUE(report.reacquired_same_board);
    EXPECT_GT(report.fingerprint_similarity, 0.9);
    EXPECT_EQ(report.flash_rented, 3u);
    EXPECT_GE(report.classification.accuracy, 0.8);
}

TEST(UserDataRecovery, QuarantineDefeatsReacquisition)
{
    // §8.2 launch-rate control: with the victim board quarantined,
    // the flash acquisition cannot grab it and recovery fails.
    pcl::PlatformConfig region = pc::awsF1Region(44);
    region.fleet_size = 3;
    region.quarantine_hours = 500.0;
    pcl::CloudPlatform platform(region);

    const std::vector<bool> secret{true, true, true, false};
    pc::Tm2Options options;
    options.victim_hours = 60.0;
    options.recovery_hours = 10.0;
    options.route_ps = 8000.0;
    options.seed = 17;
    const pc::Tm2Report report =
        pc::recoverUserData(platform, secret, options);
    EXPECT_FALSE(report.reacquired_same_board);
    EXPECT_LT(report.fingerprint_similarity, 0.9);
}

// ----------------------------------------------------- mitigations

TEST(Mitigations, HourlyInversionSuppressesTm1)
{
    // Inversion equalises the stress both bit values apply, so what
    // vanishes is the *separation between the classes* (a common-mode
    // drift remains because NBTI is stronger than PBTI — it carries
    // no data).
    const auto classSeparation = [](const pc::ExperimentResult &r) {
        double one = 0.0, zero = 0.0;
        int ones = 0, zeros = 0;
        for (const auto &route : r.routes) {
            if (route.burn_value) {
                one += route.series.tailMean(3);
                ++ones;
            } else {
                zero += route.series.tailMean(3);
                ++zeros;
            }
        }
        if (ones == 0 || zeros == 0) {
            return -1.0;
        }
        return std::abs(one / ones - zero / zeros);
    };

    pc::Experiment2Config vulnerable = miniExp2();
    vulnerable.groups = {{8000.0, 8}};
    const pc::ExperimentResult open = pc::runExperiment2(vulnerable);
    const double open_sep = classSeparation(open);
    ASSERT_GT(open_sep, 0.0) << "need both bit values in the sample";

    pm::InversionMitigation invert(5.0);
    pc::Experiment2Config defended = vulnerable;
    defended.strategy = &invert;
    const pc::ExperimentResult closed = pc::runExperiment2(defended);
    const double closed_sep = classSeparation(closed);

    EXPECT_LT(closed_sep, 0.3 * open_sep);
}

TEST(Mitigations, WearLevelingDilutesImprint)
{
    // The attacker keeps measuring the ORIGINAL skeleton; rotating
    // the data across k physical sites leaves only ~1/k of the stress
    // at the measured location.
    pc::Experiment1Config open_config = miniExp1();
    open_config.groups = {{8000.0, 4}};
    open_config.recovery_hours = 0.0;
    const pc::ExperimentResult open =
        pc::runExperiment1(open_config);

    pm::WearLevelMitigation wear(5.0, 4);
    pc::Experiment1Config defended = open_config;
    defended.strategy = &wear;
    const pc::ExperimentResult closed = pc::runExperiment1(defended);

    double open_mag = 0.0, closed_mag = 0.0;
    for (std::size_t i = 0; i < open.routes.size(); ++i) {
        open_mag += std::abs(
            open.routes[i].series.meanBetweenHours(30.0, 40.0));
        closed_mag += std::abs(
            closed.routes[i].series.meanBetweenHours(30.0, 40.0));
    }
    EXPECT_LT(closed_mag, 0.7 * open_mag);
}

TEST(Mitigations, HoldComplementEpilogueWeakensTm2)
{
    pc::Experiment3Config base = miniExp3();
    const pc::ExperimentResult open = pc::runExperiment3(base);
    const auto open_report =
        pc::ThreatModel2Classifier().classify(open);

    pm::HoldRecoveryMitigation hold(pm::Epilogue::Policy::Complement,
                                    60.0);
    pc::Experiment3Config defended = miniExp3();
    defended.strategy = &hold;
    const pc::ExperimentResult closed = pc::runExperiment3(defended);

    // The complement hold bleeds the PBTI imprint and pre-stresses
    // the other side, shrinking the recovery slopes the attacker
    // keys on.
    double open_spread = 0.0, closed_spread = 0.0;
    double open_min = 1e9, open_max = -1e9;
    double closed_min = 1e9, closed_max = -1e9;
    for (const auto &route : open.routes) {
        const double s = route.series.slopePerHour();
        open_min = std::min(open_min, s);
        open_max = std::max(open_max, s);
    }
    for (const auto &route : closed.routes) {
        const double s = route.series.slopePerHour();
        closed_min = std::min(closed_min, s);
        closed_max = std::max(closed_max, s);
    }
    open_spread = open_max - open_min;
    closed_spread = closed_max - closed_min;
    EXPECT_LT(closed_spread, open_spread);
    (void)open_report;
}

// --------------------------------------------------------- wipe e2e

TEST(WipeSemantics, PentimentoSurvivesProviderScrub)
{
    pcl::PlatformConfig region = pc::awsF1Region(45);
    region.fleet_size = 1;
    pcl::CloudPlatform platform(region);

    const auto victim = platform.rent();
    pf::Device &device = platform.instance(*victim).device();
    const pf::RouteSpec spec = device.allocateRoute("secret", 8000.0);
    auto design = std::make_shared<pf::Design>("victim");
    design->setRouteValue(spec, true);
    design->setPowerW(20.0);
    ASSERT_TRUE(platform.loadDesign(*victim, design).empty());
    platform.advanceHours(100.0);
    platform.release(*victim); // wipe happens here

    pf::Route route = device.bindRoute(spec);
    EXPECT_EQ(device.currentDesign(), nullptr);
    EXPECT_GT(
        route.btiShiftPs(pentimento::phys::Transition::Falling), 0.1);
}
