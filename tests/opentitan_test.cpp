/**
 * @file
 * Tests for the OpenTitan asset database (Table 1), the route-length
 * synthesizer and the vulnerability metric.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "fabric/device.hpp"
#include "opentitan/assets.hpp"
#include "opentitan/route_synth.hpp"
#include "opentitan/vulnerability.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"

namespace po = pentimento::opentitan;
namespace pf = pentimento::fabric;
namespace pu = pentimento::util;

// --------------------------------------------------------- asset table

TEST(Assets, TwentyRows)
{
    EXPECT_EQ(po::earlGreyAssets().size(), 20u);
}

TEST(Assets, SortedAscendingByMax)
{
    const auto &assets = po::earlGreyAssets();
    for (std::size_t i = 1; i < assets.size(); ++i) {
        EXPECT_LE(assets[i - 1].reference.max, assets[i].reference.max);
    }
}

TEST(Assets, FirstRowMatchesPaper)
{
    const po::AssetInfo &a = po::assetByIndex(1);
    EXPECT_EQ(a.path, "/otp_ctrl_otp_lc_data[state]");
    EXPECT_EQ(a.type, po::AssetType::StateToken);
    EXPECT_EQ(a.bus_width, 320);
    EXPECT_DOUBLE_EQ(a.reference.mean, 169.5);
    EXPECT_DOUBLE_EQ(a.reference.sd, 98.1);
    EXPECT_DOUBLE_EQ(a.reference.min, 39.0);
    EXPECT_DOUBLE_EQ(a.reference.p50, 157.5);
    EXPECT_DOUBLE_EQ(a.reference.max, 509.0);
}

TEST(Assets, LastRowMatchesPaper)
{
    const po::AssetInfo &a = po::assetByIndex(20);
    EXPECT_EQ(a.path, "/aes_tl_req[a_data]");
    EXPECT_EQ(a.type, po::AssetType::Signal);
    EXPECT_EQ(a.bus_width, 32);
    EXPECT_DOUBLE_EQ(a.reference.max, 3946.0);
}

TEST(Assets, TypeCountsMatchPaper)
{
    int ck = 0, svt = 0, s = 0;
    for (const auto &a : po::earlGreyAssets()) {
        switch (a.type) {
          case po::AssetType::CryptographicKey:
            ++ck;
            break;
          case po::AssetType::StateToken:
            ++svt;
            break;
          case po::AssetType::Signal:
            ++s;
            break;
        }
    }
    EXPECT_EQ(ck, 11);
    EXPECT_EQ(svt, 4);
    EXPECT_EQ(s, 5);
}

TEST(Assets, IndexBoundsChecked)
{
    EXPECT_THROW(po::assetByIndex(0), pu::FatalError);
    EXPECT_THROW(po::assetByIndex(21), pu::FatalError);
    EXPECT_EQ(po::assetByIndex(18).bus_width, 777);
}

TEST(Assets, TypeNames)
{
    EXPECT_STREQ(po::toString(po::AssetType::CryptographicKey), "CK");
    EXPECT_STREQ(po::toString(po::AssetType::StateToken), "SV/T");
    EXPECT_STREQ(po::toString(po::AssetType::Signal), "S");
}

// ----------------------------------------------------- synthesizer

/** Property suite over every Table 1 asset. */
class AssetSweep : public ::testing::TestWithParam<int>
{
  protected:
    const po::AssetInfo &
    asset() const
    {
        return po::assetByIndex(GetParam());
    }
    po::RouteLengthSynthesizer synth_;
};

TEST_P(AssetSweep, CountEqualsBusWidth)
{
    EXPECT_EQ(synth_.synthesize(asset()).size(),
              static_cast<std::size_t>(asset().bus_width));
}

TEST_P(AssetSweep, MinAndMaxExact)
{
    const auto lengths = synth_.synthesize(asset());
    const auto [min_it, max_it] =
        std::minmax_element(lengths.begin(), lengths.end());
    EXPECT_NEAR(*min_it, asset().reference.min, 1e-9);
    EXPECT_NEAR(*max_it, asset().reference.max, 1e-9);
}

TEST_P(AssetSweep, QuartilesCloseToReference)
{
    const auto lengths = synth_.synthesize(asset());
    const pu::Summary s = pu::summarize(lengths);
    const double span = asset().reference.max - asset().reference.min;
    EXPECT_NEAR(s.p25, asset().reference.p25, 0.02 * span + 1.0);
    EXPECT_NEAR(s.p50, asset().reference.p50, 0.02 * span + 1.0);
    EXPECT_NEAR(s.p75, asset().reference.p75, 0.02 * span + 1.0);
}

TEST_P(AssetSweep, MeanMatchedByTailWarp)
{
    const auto lengths = synth_.synthesize(asset());
    const pu::Summary s = pu::summarize(lengths);
    // The tail warp solves for the mean analytically; discretisation
    // leaves a small residual.
    EXPECT_NEAR(s.mean, asset().reference.mean,
                0.05 * asset().reference.mean + 2.0);
}

TEST_P(AssetSweep, AllLengthsNonNegativeAndSorted)
{
    const auto lengths = synth_.synthesize(asset());
    for (std::size_t i = 0; i < lengths.size(); ++i) {
        EXPECT_GE(lengths[i], 0.0);
        if (i > 0) {
            EXPECT_GE(lengths[i], lengths[i - 1]);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllTwenty, AssetSweep,
                         ::testing::Range(1, 21));

TEST(Synthesizer, DeterministicAcrossCalls)
{
    po::RouteLengthSynthesizer synth;
    const auto a = synth.synthesize(po::assetByIndex(5));
    const auto b = synth.synthesize(po::assetByIndex(5));
    EXPECT_EQ(a, b);
}

TEST(Synthesizer, RoutesMaterializeOnDevice)
{
    pf::DeviceConfig config;
    config.tiles_x = 64;
    config.tiles_y = 64;
    pf::Device device(config);
    po::RouteLengthSynthesizer synth;
    const auto specs =
        synth.synthesizeRoutes(device, po::assetByIndex(13));
    EXPECT_EQ(specs.size(), 32u);
    for (const auto &spec : specs) {
        EXPECT_GE(spec.target_ps, device.config().routing_pitch_ps);
        EXPECT_FALSE(spec.elements.empty());
    }
}

TEST(Synthesizer, ZeroMinAssetHandled)
{
    // Asset 11 reports MIN = 0 ps; routes still occupy one element.
    pf::DeviceConfig config;
    config.tiles_x = 64;
    config.tiles_y = 64;
    pf::Device device(config);
    po::RouteLengthSynthesizer synth;
    const auto specs =
        synth.synthesizeRoutes(device, po::assetByIndex(11));
    for (const auto &spec : specs) {
        EXPECT_GE(spec.size(), 1u);
    }
}

// ------------------------------------------------------ vulnerability

TEST(Vulnerability, DeltaLinearInLength)
{
    const po::VulnerabilityMetric metric;
    const double one = metric.expectedDeltaPs(1000.0);
    EXPECT_NEAR(metric.expectedDeltaPs(2000.0), 2.0 * one, 1e-12);
}

TEST(Vulnerability, Burn0StrongerThanBurn1)
{
    // NBTI (burn 0) carries the larger prefactor.
    const po::VulnerabilityMetric metric;
    EXPECT_GT(metric.expectedDeltaPs(1000.0, false),
              metric.expectedDeltaPs(1000.0, true));
}

TEST(Vulnerability, ZeroBurnHoursZeroDelta)
{
    po::AttackScenario scenario;
    scenario.burn_hours = 0.0;
    const po::VulnerabilityMetric metric(scenario);
    EXPECT_DOUBLE_EQ(metric.expectedDeltaPs(1000.0), 0.0);
}

TEST(Vulnerability, NewDeviceMoreVulnerable)
{
    po::AttackScenario lab;
    lab.device_age_h = 0.0;
    po::AttackScenario cloud;
    cloud.device_age_h = 30000.0;
    EXPECT_GT(po::VulnerabilityMetric(lab).expectedDeltaPs(1000.0),
              3.0 * po::VulnerabilityMetric(cloud).expectedDeltaPs(
                        1000.0));
}

TEST(Vulnerability, HotterBurnMoreVulnerable)
{
    po::AttackScenario cool;
    cool.temp_k = 298.15;
    po::AttackScenario hot;
    hot.temp_k = 348.15;
    EXPECT_GT(po::VulnerabilityMetric(hot).expectedDeltaPs(1000.0),
              po::VulnerabilityMetric(cool).expectedDeltaPs(1000.0));
}

TEST(Vulnerability, EvaluateFractionsInRange)
{
    const po::VulnerabilityMetric metric;
    po::RouteLengthSynthesizer synth;
    const auto &asset = po::assetByIndex(19);
    const auto v =
        metric.evaluate(asset, synth.synthesize(asset));
    EXPECT_EQ(v.asset_index, 19);
    EXPECT_GE(v.recoverable_fraction, 0.0);
    EXPECT_LE(v.recoverable_fraction, 1.0);
    EXPECT_GT(v.mean_snr, 0.0);
    EXPECT_EQ(v.routes, 128u);
}

TEST(Vulnerability, LongRouteAssetsMoreRecoverable)
{
    const po::VulnerabilityMetric metric;
    const auto report = metric.evaluateEarlGrey();
    ASSERT_EQ(report.size(), 20u);
    // Asset 20 (max 3946 ps) must beat asset 1 (max 509 ps).
    EXPECT_GT(report[19].median_delta_ps, report[0].median_delta_ps);
}

TEST(Vulnerability, EmptyRouteListFatal)
{
    const po::VulnerabilityMetric metric;
    EXPECT_THROW(metric.evaluate(po::assetByIndex(1), {}),
                 pu::FatalError);
}

TEST(Vulnerability, BadScenarioFatal)
{
    po::AttackScenario scenario;
    scenario.sensor_noise_ps = 0.0;
    EXPECT_THROW(po::VulnerabilityMetric{scenario}, pu::FatalError);
}
