#!/bin/sh
# CLI-hardening contract for bench/fleet_campaign: every malformed
# invocation must exit 2 and print a usage synopsis to stderr, and a
# valid invocation must not trip the whitelist. Run by CTest as
#   sh fleet_campaign_cli_test.sh <path-to-fleet_campaign>
set -u

bin="${1:?usage: fleet_campaign_cli_test.sh <fleet_campaign-binary>}"
failures=0

expect_usage_error() {
    desc="$1"
    shift
    err=$("$bin" "$@" 2>&1 >/dev/null)
    code=$?
    if [ "$code" -ne 2 ]; then
        echo "FAIL [$desc]: exit $code, want 2" >&2
        failures=$((failures + 1))
        return
    fi
    case "$err" in
      *"usage: fleet_campaign"*) ;;
      *)
        echo "FAIL [$desc]: no usage synopsis on stderr" >&2
        failures=$((failures + 1))
        return
        ;;
    esac
    echo "ok [$desc]"
}

expect_usage_error "--years 0"          --years 0
expect_usage_error "--years -3"         --years -3
expect_usage_error "--years junk"       --years junk
expect_usage_error "--fleet 0"          --fleet 0
expect_usage_error "--seed abc"         --seed abc
expect_usage_error "unknown flag"       --bogus-flag
expect_usage_error "missing value"      --fleet
expect_usage_error "missing ckpt value" --checkpoint-every
expect_usage_error "bad ckpt cadence"   --checkpoint-every 0

# A valid (tiny) invocation must pass the whitelist and succeed.
if ! "$bin" --fleet 4 --years 1 --seed 7 >/dev/null 2>&1; then
    echo "FAIL [valid invocation]: nonzero exit" >&2
    failures=$((failures + 1))
else
    echo "ok [valid invocation]"
fi

if [ "$failures" -ne 0 ]; then
    echo "$failures CLI contract failure(s)" >&2
    exit 1
fi
echo "fleet_campaign CLI contract: all cases pass"
