/**
 * @file
 * Regression locks for the dense-aging-store refactor.
 *
 *  - Golden values: a small Figure-6-style Experiment 1 (fixed seed,
 *    4 routes, 6 sweeps) recorded from the pre-refactor hash-map
 *    implementation. The dense slab, bind-time handles, per-step
 *    kinetics context and epoch-keyed arrival caches must reproduce
 *    every ∆ps sample bit for bit.
 *  - State-epoch semantics: advance/loadDesign/wipe/applyServiceWear
 *    bump the epoch (cache invalidation), reads don't.
 *  - Worker-count invariance of the dense aging sweep and the
 *    measurement sweep: 1 lane vs 4 lanes, bit-identical.
 *  - materializedIds() determinism: sorted by packed key.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/experiment.hpp"
#include "fabric/design.hpp"
#include "fabric/device.hpp"
#include "phys/thermal.hpp"
#include "tdc/measure_design.hpp"
#include "tdc/tdc.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace pc = pentimento::core;
namespace pf = pentimento::fabric;
namespace pp = pentimento::phys;
namespace pt = pentimento::tdc;
namespace pu = pentimento::util;

namespace {

pc::Experiment1Config
goldenConfig()
{
    pc::Experiment1Config config;
    config.groups = {{1000.0, 2}, {2000.0, 2}};
    config.burn_hours = 6.0;
    config.recovery_hours = 4.0;
    config.measure_every_h = 2.0;
    config.arith.dsp_count = 8;
    config.seed = 424242;
    return config;
}

struct GoldenRoute
{
    const char *name;
    bool burn_value;
    std::vector<double> hours;
    std::vector<double> delta_ps;
};

/** Recorded from the pre-refactor implementation (hexfloat exact). */
const std::vector<GoldenRoute> kGolden = {
    {"rut_1000ps_0", false,
     {0x0p+0, 0x1p+1, 0x1p+2, 0x1.8p+2, 0x1p+3, 0x1.4p+3},
     {0x0p+0, -0x1.06d3a06d3ap-1, -0x1.6c5f92c5f938p-1,
      -0x1.06d3a06d3ap-1, -0x1.ddddddddddep-3, -0x1.06d3a06d3a2p-3}},
    {"rut_1000ps_1", true,
     {0x0p+0, 0x1p+1, 0x1p+2, 0x1.8p+2, 0x1p+3, 0x1.4p+3},
     {0x0p+0, 0x1.dddddddddep-3, 0x1.7e4b17e4b19p-2,
      0x1.428f5c28f5dp-2, -0x1.06d3a06d3ap-2, -0x1.2aaaaaaaaaap-2}},
    {"rut_2000ps_0", false,
     {0x0p+0, 0x1p+1, 0x1p+2, 0x1.8p+2, 0x1p+3, 0x1.4p+3},
     {0x0p+0, -0x1.844444444438p-1, -0x1.ddddddddddd8p-1,
      -0x1.0fc962fc962cp+0, -0x1.428f5c28f5b8p-1,
      -0x1.7e4b17e4b16p-3}},
    {"rut_2000ps_1", true,
     {0x0p+0, 0x1p+1, 0x1p+2, 0x1.8p+2, 0x1p+3, 0x1.4p+3},
     {0x0p+0, 0x1.48888888888p-1, 0x1.4e81b4e81b5p-1,
      0x1.a2222222222p-1, 0x1.1eb851eb84cp-3, -0x1.7e4b17e4b4p-6}},
};

void
expectMatchesGolden(const pc::ExperimentResult &result)
{
    ASSERT_EQ(result.routes.size(), kGolden.size());
    EXPECT_EQ(result.sweeps, 6u);
    EXPECT_EQ(result.measure_seconds, 0x1.16c8b43958106p+4);
    for (std::size_t r = 0; r < kGolden.size(); ++r) {
        const pc::RouteRecord &route = result.routes[r];
        const GoldenRoute &golden = kGolden[r];
        EXPECT_EQ(route.name, golden.name);
        EXPECT_EQ(route.burn_value, golden.burn_value);
        ASSERT_EQ(route.series.size(), golden.hours.size());
        for (std::size_t k = 0; k < golden.hours.size(); ++k) {
            // Bit-exact: the refactor's caches must return the same
            // doubles the per-element recomputation produced.
            EXPECT_EQ(route.series.hours()[k], golden.hours[k])
                << route.name << " point " << k;
            EXPECT_EQ(route.series.values()[k], golden.delta_ps[k])
                << route.name << " point " << k;
        }
    }
}

TEST(GoldenRegression, Figure6StyleRunIsBitIdenticalToSeed)
{
    expectMatchesGolden(pc::runExperiment1(goldenConfig()));
}

TEST(GoldenRegression, Figure6StyleRunIsBitIdenticalWithWorkers)
{
    pu::ThreadPool pool(3);
    pc::Experiment1Config config = goldenConfig();
    config.pool = &pool;
    expectMatchesGolden(pc::runExperiment1(config));
}

// --------------------------------------------------- state epoch

pf::DeviceConfig
tinyConfig()
{
    pf::DeviceConfig config;
    config.tiles_x = 8;
    config.tiles_y = 8;
    config.nodes_per_tile = 32;
    return config;
}

TEST(StateEpoch, AdvanceBumps)
{
    pf::Device device(tinyConfig());
    pp::OvenEnvironment oven(333.15);
    const std::uint64_t before = device.stateEpoch();
    device.advance(1.0, oven);
    EXPECT_GT(device.stateEpoch(), before);
}

TEST(StateEpoch, LoadDesignBumps)
{
    pf::Device device(tinyConfig());
    const pf::RouteSpec spec = device.allocateRoute("r", 250.0);
    auto design = std::make_shared<pf::Design>("d");
    design->setRouteValue(spec, true);
    const std::uint64_t before = device.stateEpoch();
    device.loadDesign(design);
    EXPECT_GT(device.stateEpoch(), before);
}

TEST(StateEpoch, WipeBumps)
{
    pf::Device device(tinyConfig());
    const pf::RouteSpec spec = device.allocateRoute("r", 250.0);
    auto design = std::make_shared<pf::Design>("d");
    design->setRouteValue(spec, true);
    device.loadDesign(design);
    const std::uint64_t before = device.stateEpoch();
    device.wipe();
    EXPECT_GT(device.stateEpoch(), before);
}

TEST(StateEpoch, ServiceWearBumpsOnlyWhenWearing)
{
    pf::Device device(tinyConfig());
    device.element(device.allocateRoute("r", 250.0).elements[0]);
    const std::uint64_t before = device.stateEpoch();
    device.applyServiceWear(0.0);
    EXPECT_EQ(device.stateEpoch(), before);
    device.applyServiceWear(100.0);
    EXPECT_GT(device.stateEpoch(), before);
}

TEST(StateEpoch, ReadsDoNotBump)
{
    pf::Device device(tinyConfig());
    const pf::RouteSpec spec = device.allocateRoute("r", 250.0);
    pf::Route route = device.bindRoute(spec);
    const std::uint64_t before = device.stateEpoch();
    (void)route.delayPs(pp::Transition::Rising, 333.15);
    (void)device.materializedIds();
    (void)device.findElement(spec.elements[0]);
    EXPECT_EQ(device.stateEpoch(), before);
}

// ------------------------------------------- cache invalidation

TEST(ArrivalCache, SameStateSameRngGivesSameCapture)
{
    pf::Device device(tinyConfig());
    pt::Tdc sensor(device, device.allocateRoute("r", 500.0),
                   device.allocateCarryChain("c", 64));
    pu::Rng rng_a(7);
    pu::Rng rng_b(7);
    // First call populates the cache, second reads through it; both
    // must see identical arrivals.
    const pt::Capture a =
        sensor.capture(pp::Transition::Rising, 700.0, 333.15, rng_a);
    const pt::Capture b =
        sensor.capture(pp::Transition::Rising, 700.0, 333.15, rng_b);
    EXPECT_EQ(a.bits, b.bits);
}

TEST(ArrivalCache, AgingInvalidatesCachedArrivals)
{
    pf::Device device(tinyConfig());
    const pf::RouteSpec route = device.allocateRoute("r", 500.0);
    pt::Tdc sensor(device, route, device.allocateCarryChain("c", 64));
    pu::Rng rng(7);
    sensor.calibrate(333.15, rng);
    const double before = sensor.measure(333.15, rng).deltaPs();

    // Burn the route hard; a stale arrival cache would keep reporting
    // the pre-burn delta.
    auto design = std::make_shared<pf::Design>("burn");
    design->setRouteValue(route, true);
    device.loadDesign(design);
    pp::OvenEnvironment oven(333.15);
    device.advance(500.0, oven);
    device.wipe();

    pu::Rng rng2(7);
    const double after = sensor.measure(333.15, rng2).deltaPs();
    EXPECT_GT(after - before, 0.5);
}

TEST(ArrivalCache, TemperatureChangeInvalidates)
{
    pf::Device device(tinyConfig());
    pt::Tdc sensor(device, device.allocateRoute("r", 500.0),
                   device.allocateCarryChain("c", 64));
    pu::Rng rng(7);
    const double theta = sensor.calibrate(333.15, rng);
    // Warmer die, slower route: fewer taps passed at the same θ.
    pu::Rng rng_cool(9);
    pu::Rng rng_hot(9);
    const auto cool =
        sensor.capture(pp::Transition::Rising, theta, 333.15, rng_cool);
    const auto hot =
        sensor.capture(pp::Transition::Rising, theta, 363.15, rng_hot);
    EXPECT_LT(hot.hammingDistance(), cool.hammingDistance());
}

TEST(ActivityCache, RecycledDesignAllocationDoesNotAliasCache)
{
    // The ablation_device_age pattern: each burn phase builds a fresh
    // Design (often landing on the just-freed allocation, with the
    // same revision count), loads it, advances, wipes. A cache keyed
    // on a raw pointer would mistake the new design for the old one
    // and keep aging with stale activity.
    pf::Device device(tinyConfig());
    const pf::RouteSpec route = device.allocateRoute("r", 500.0);
    pp::OvenEnvironment oven(333.15);
    {
        auto burn1 = std::make_shared<pf::Design>("burn1");
        burn1->setRouteValue(route, true);
        device.loadDesign(burn1);
    }
    device.advance(50.0, oven);
    device.wipe();
    {
        auto burn0 = std::make_shared<pf::Design>("burn0");
        burn0->setRouteValue(route, false);
        device.loadDesign(burn0);
    }
    device.advance(50.0, oven);
    pf::Route bound = device.bindRoute(route);
    // Both phases must have imprinted: burn 1 slows falling edges,
    // burn 0 slows rising edges.
    EXPECT_GT(bound.btiShiftPs(pp::Transition::Falling), 0.1);
    EXPECT_GT(bound.btiShiftPs(pp::Transition::Rising), 0.1);
}

TEST(ActivityCache, LateMaterialisedElementAgesAfterInPlaceMutation)
{
    pf::Device device(tinyConfig());
    const pf::RouteSpec route_a = device.allocateRoute("a", 250.0);
    const pf::RouteSpec route_b = device.allocateRoute("b", 250.0);
    pp::OvenEnvironment oven(333.15);
    auto design = std::make_shared<pf::Design>("d");
    design->setRouteValue(route_a, true);
    device.loadDesign(design);
    device.advance(1.0, oven); // builds the dense activity cache
    // Mutate the loaded design in place to also burn route b, whose
    // elements only materialise afterwards (via binding, not via a
    // reload). The slab-growth check must fold them into the sweep.
    design->setRouteValue(route_b, true);
    pf::Route bound_b = device.bindRoute(route_b);
    device.advance(50.0, oven);
    EXPECT_GT(bound_b.btiShiftPs(pp::Transition::Falling), 0.1);
}

// ------------------------------------- dense sweep determinism

TEST(DenseSweep, WorkerCountInvariantAging)
{
    const auto runAging = [](pu::ThreadPool *pool) {
        pf::Device device(tinyConfig());
        std::vector<pf::RouteSpec> specs;
        auto design = std::make_shared<pf::Design>("d");
        for (int r = 0; r < 6; ++r) {
            specs.push_back(
                device.allocateRoute("r" + std::to_string(r), 400.0));
            if (r % 3 == 0) {
                design->setRouteValue(specs.back(), r % 2 == 0);
            } else {
                design->setRouteToggling(specs.back(), 0.3);
            }
        }
        device.setWorkPool(pool);
        device.loadDesign(design);
        pp::OvenEnvironment oven(333.15);
        for (int step = 0; step < 10; ++step) {
            device.advance(1.0, oven);
        }
        device.setWorkPool(nullptr);
        std::vector<double> delays;
        for (const pf::RouteSpec &spec : specs) {
            pf::Route route = device.bindRoute(spec);
            delays.push_back(
                route.delayPs(pp::Transition::Rising, 333.15));
            delays.push_back(
                route.delayPs(pp::Transition::Falling, 333.15));
        }
        return delays;
    };
    pu::ThreadPool pool(3);
    const std::vector<double> serial = runAging(nullptr);
    const std::vector<double> parallel = runAging(&pool);
    EXPECT_EQ(serial, parallel);
}

TEST(DenseSweep, WorkerCountInvariantMeasurement)
{
    const auto runSweep = [](pu::ThreadPool *pool) {
        pf::Device device(tinyConfig());
        std::vector<pf::RouteSpec> routes;
        for (int r = 0; r < 6; ++r) {
            routes.push_back(
                device.allocateRoute("r" + std::to_string(r), 400.0));
        }
        pt::MeasureDesign design(device, routes);
        pu::Rng rng(21);
        design.calibrateAll(333.15, rng, pool);
        const pt::MeasurementSweep sweep =
            design.measureAll(333.15, rng, pool);
        std::vector<double> flat;
        for (const pt::Measurement &m : sweep.per_route) {
            flat.push_back(m.rising_distance_ps);
            flat.push_back(m.falling_distance_ps);
        }
        return flat;
    };
    pu::ThreadPool pool(3);
    const std::vector<double> serial = runSweep(nullptr);
    const std::vector<double> parallel = runSweep(&pool);
    EXPECT_EQ(serial, parallel);
}

// ---------------------------------------- tenancy-churn golden

/**
 * Multi-tenant golden: 16 journal-backed tenancies (mid-tenancy
 * mitigation flips, fresh routes each, idle recovery between), with
 * only the last two tenancies' routes observed. Recorded from the
 * PR 5 implementation, which is bit-identical to eager
 * materialisation (journal_test locks that equivalence; this golden
 * pins the absolute values so a future PR cannot silently perturb
 * the variation/tenancy draw streams or the replay arithmetic).
 */
const std::vector<double> kChurnGolden = {
    0x1.f43518bc3cc1fp+9, 0x1.f511461078846p+9,
    0x1.f4255cef75926p+9, 0x1.f4101631150a4p+9,
    0x1.f49153a7bc7fp+9,  0x1.f2f8a24502bd6p+9,
    0x1.f3681bae805edp+9, 0x1.f2f3a1c61ad86p+9,
    0x1.f2dbfca84afb4p+9, 0x1.ef52fc1ee34afp+9,
    0x1.f5f416203389ep+9, 0x1.f43ff8d492b4fp+9,
    0x1.f4e28b69e0397p+9, 0x1.f0ee594ab659ep+9,
    0x1.f5685bdfbe82cp+9, 0x1.f654550b4683ep+9,
};

TEST(GoldenRegression, TenancyChurnIsBitIdentical)
{
    const pc::TenancyChurnResult result =
        pc::runTenancyChurn(pc::TenancyChurnConfig{});
    ASSERT_EQ(result.observed_delays_ps.size(), kChurnGolden.size());
    for (std::size_t i = 0; i < kChurnGolden.size(); ++i) {
        EXPECT_EQ(result.observed_delays_ps[i], kChurnGolden[i])
            << "churn delay " << i;
    }
    // Only the two observed tenancies' routes materialised; the other
    // fourteen (plus the arithmetic-heavy filler) stay journaled.
    EXPECT_EQ(result.materialized, 320u);
    EXPECT_EQ(result.journaled, 2272u);
    EXPECT_EQ(result.elapsed_h, 0x1.36cp+10);
}

TEST(GoldenRegression, TenancyChurnEagerMatchesSameGolden)
{
    // The eager path must land on the identical doubles — this is the
    // regression-level statement of eager/lazy equivalence.
    pc::TenancyChurnConfig config;
    config.device.eager_materialisation = true;
    const pc::TenancyChurnResult result = pc::runTenancyChurn(config);
    ASSERT_EQ(result.observed_delays_ps.size(), kChurnGolden.size());
    for (std::size_t i = 0; i < kChurnGolden.size(); ++i) {
        EXPECT_EQ(result.observed_delays_ps[i], kChurnGolden[i])
            << "eager churn delay " << i;
    }
    EXPECT_EQ(result.materialized, 2592u);
    EXPECT_EQ(result.journaled, 0u);
}

// ------------------------------------------- deterministic ids

TEST(MaterializedIds, SortedByPackedKey)
{
    pf::Device device(tinyConfig());
    // Materialise in deliberately shuffled order.
    const pf::RouteSpec spec = device.allocateRoute("r", 500.0);
    std::vector<pf::ResourceId> shuffled = spec.elements;
    std::reverse(shuffled.begin(), shuffled.end());
    std::swap(shuffled.front(), shuffled[shuffled.size() / 2]);
    for (const pf::ResourceId &id : shuffled) {
        device.element(id);
    }
    const std::vector<pf::ResourceId> ids = device.materializedIds();
    ASSERT_EQ(ids.size(), spec.elements.size());
    EXPECT_TRUE(std::is_sorted(
        ids.begin(), ids.end(),
        [](const pf::ResourceId &a, const pf::ResourceId &b) {
            return a.key() < b.key();
        }));
}

} // namespace
