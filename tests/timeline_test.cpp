/**
 * @file
 * Locks for the segment-timeline aging model (PR 3).
 *
 *  - Partition invariance: advancing a constant-condition span as
 *    hourly steps, as one jump, or as a random dyadic partition
 *    produces bit-identical aged delays — including across activity
 *    flips (stress -> recover -> re-stress), mid-span mitigation-style
 *    value toggles, and 1-vs-N worker pools. This is the property
 *    that lets the experiment engine collapse uninterrupted burns
 *    into single jumps without perturbing a single output bit.
 *  - Laziness: advance() is O(1) bookkeeping — unobserved elements
 *    hold no aged state until a query forces a replay, same-condition
 *    steps coalesce into one segment, and an empty fabric records
 *    nothing at all (idle fleet stock ages for free).
 *  - Compensated time accumulation: a million irregular steps land on
 *    the closed-form total instead of drifting.
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "fabric/design.hpp"
#include "fabric/device.hpp"
#include "phys/thermal.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace pf = pentimento::fabric;
namespace pp = pentimento::phys;
namespace pu = pentimento::util;

namespace {

pf::DeviceConfig
tinyConfig()
{
    pf::DeviceConfig config;
    config.tiles_x = 8;
    config.tiles_y = 8;
    config.nodes_per_tile = 32;
    return config;
}

/** Split total hours into random multiples of 1/64 h (sums exactly). */
std::vector<double>
dyadicPartition(double total_h, std::uint64_t seed)
{
    pu::Rng rng(seed);
    auto ticks = static_cast<std::uint64_t>(total_h * 64.0);
    std::vector<double> parts;
    while (ticks > 0) {
        const std::uint64_t take =
            rng.uniformInt(1, std::min<std::uint64_t>(ticks, 192));
        parts.push_back(static_cast<double>(take) / 64.0);
        ticks -= take;
    }
    return parts;
}

using Stepper = std::function<void(pf::Device &,
                                   pp::ThermalEnvironment &, double)>;

const Stepper kSingleJump = [](pf::Device &device,
                               pp::ThermalEnvironment &thermal,
                               double hours) {
    device.advance(hours, thermal);
};

const Stepper kHourly = [](pf::Device &device,
                           pp::ThermalEnvironment &thermal,
                           double hours) {
    double advanced = 0.0;
    while (advanced < hours - 1e-12) {
        const double dt = std::min(1.0, hours - advanced);
        device.advance(dt, thermal);
        advanced += dt;
    }
};

Stepper
randomStepper(std::uint64_t seed)
{
    return [seed](pf::Device &device, pp::ThermalEnvironment &thermal,
                  double hours) {
        for (const double dt : dyadicPartition(hours, seed)) {
            device.advance(dt, thermal);
        }
    };
}

/**
 * The stress -> recover -> re-stress scenario, with a mid-burn value
 * toggle (an inversion-mitigation-style flip) at a fixed hour. All
 * queries happen at the very end: queries are timeline observations,
 * so mid-run reads would themselves be segment boundaries.
 */
std::vector<double>
runScenario(const Stepper &step, pu::ThreadPool *pool)
{
    pf::Device device(tinyConfig());
    device.setWorkPool(pool);
    // 75 C: the Arrhenius pair is far from 1, so coalescing must
    // defer the duration x acceleration multiply to stay exact.
    pp::OvenEnvironment oven(pu::celsiusToKelvin(75.0));
    const pf::RouteSpec burn_route = device.allocateRoute("b", 500.0);
    const pf::RouteSpec idle_route = device.allocateRoute("i", 500.0);

    auto design = std::make_shared<pf::Design>("d");
    design->setRouteValue(burn_route, true);
    design->setRouteToggling(idle_route, 0.3);
    device.loadDesign(design);
    step(device, oven, 37.0); // burn 1
    design->setRouteValue(burn_route, false);
    device.loadDesign(design);
    step(device, oven, 25.0); // mid-tenancy toggle: burn 0
    device.wipe();
    step(device, oven, 16.0); // released: recovery
    auto again = std::make_shared<pf::Design>("d2");
    again->setRouteValue(burn_route, true);
    device.loadDesign(again);
    step(device, oven, 9.0); // re-stress after recovery
    device.applyServiceWear(5.0, 0.25); // pool-exercised dense sweep
    step(device, oven, 3.0);

    std::vector<double> out;
    for (const pf::RouteSpec &spec : {burn_route, idle_route}) {
        pf::Route route = device.bindRoute(spec);
        out.push_back(route.delayPs(pp::Transition::Rising, 333.15));
        out.push_back(route.delayPs(pp::Transition::Falling, 333.15));
    }
    out.push_back(device.elapsedHours());
    device.setWorkPool(nullptr);
    return out;
}

TEST(SegmentTimeline, PartitionInvariantAgedDelays)
{
    const std::vector<double> jump = runScenario(kSingleJump, nullptr);
    const std::vector<double> hourly = runScenario(kHourly, nullptr);
    EXPECT_EQ(jump, hourly);
    for (const std::uint64_t seed : {11u, 12u, 13u, 14u}) {
        EXPECT_EQ(jump, runScenario(randomStepper(seed), nullptr))
            << "random partition seed " << seed;
    }
}

TEST(SegmentTimeline, PartitionInvarianceHoldsAcrossWorkerCounts)
{
    pu::ThreadPool pool(3);
    const std::vector<double> serial = runScenario(kSingleJump, nullptr);
    EXPECT_EQ(serial, runScenario(kSingleJump, &pool));
    EXPECT_EQ(serial, runScenario(kHourly, &pool));
    EXPECT_EQ(serial, runScenario(randomStepper(21), &pool));
}

TEST(SegmentTimeline, ConstantConditionHoursCoalesceIntoOneSegment)
{
    pf::Device device(tinyConfig());
    pp::OvenEnvironment oven(333.15);
    const pf::RouteSpec spec = device.allocateRoute("r", 500.0);
    auto design = std::make_shared<pf::Design>("d");
    design->setRouteValue(spec, true);
    device.loadDesign(design);
    for (int h = 0; h < 200; ++h) {
        device.advance(1.0, oven);
    }
    EXPECT_EQ(device.timelineSegments(), 1u);
    // Nothing observed yet: the elements are not even materialised —
    // the design load only journaled their activity.
    EXPECT_EQ(device.findElement(spec.elements[0]), nullptr);
    EXPECT_EQ(device.materializedCount(), 0u);
    // The first query materialises and replays the single 200 h
    // segment in one update.
    pf::Route route = device.bindRoute(spec);
    EXPECT_GT(route.btiShiftPs(pp::Transition::Falling), 0.5);
    const pf::RoutingElement *elem =
        device.findElement(spec.elements[0]);
    ASSERT_NE(elem, nullptr);
    EXPECT_EQ(elem->aging()
                  .state(pp::TransistorType::Nmos)
                  .stressHours(),
              200.0);
}

TEST(SegmentTimeline, EmptyFabricRecordsNoSegments)
{
    pf::Device device(tinyConfig());
    pp::OvenEnvironment oven(333.15);
    for (int h = 0; h < 1000; ++h) {
        device.advance(1.0, oven);
    }
    EXPECT_EQ(device.timelineSegments(), 0u);
    EXPECT_DOUBLE_EQ(device.elapsedHours(), 1000.0);
    // A later tenancy starts from pristine silicon regardless.
    pf::Route route =
        device.bindRoute(device.allocateRoute("r", 500.0));
    EXPECT_NEAR(route.btiShiftPs(pp::Transition::Falling), 0.0, 1e-12);
}

TEST(SegmentTimeline, TemperatureChangeOpensNewSegment)
{
    pf::Device device(tinyConfig());
    const pf::RouteSpec spec = device.allocateRoute("r", 250.0);
    auto design = std::make_shared<pf::Design>("d");
    design->setRouteValue(spec, true);
    device.loadDesign(design);
    pp::OvenEnvironment warm(333.15);
    pp::OvenEnvironment hot(353.15);
    device.advance(5.0, warm);
    device.advance(5.0, warm);
    EXPECT_EQ(device.timelineSegments(), 1u);
    device.advance(5.0, hot);
    EXPECT_EQ(device.timelineSegments(), 2u);
    device.advance(5.0, hot);
    EXPECT_EQ(device.timelineSegments(), 2u);
}

TEST(SegmentTimeline, WipeIsAnActivityBoundaryNotAnEraser)
{
    // The core paper invariant survives laziness: wiping flips the
    // configured elements to released (their pending burn is replayed
    // first), and the imprint remains queryable afterwards.
    pf::Device device(tinyConfig());
    pp::OvenEnvironment oven(333.15);
    const pf::RouteSpec spec = device.allocateRoute("r", 1000.0);
    auto design = std::make_shared<pf::Design>("d");
    design->setRouteValue(spec, true);
    device.loadDesign(design);
    device.advance(150.0, oven);
    device.wipe(); // flush happens here, before any query
    pf::Route route = device.bindRoute(spec);
    const double imprint = route.btiShiftPs(pp::Transition::Falling);
    EXPECT_GT(imprint, 0.5);
    device.advance(50.0, oven); // released time: recovery
    EXPECT_LT(route.btiShiftPs(pp::Transition::Falling), imprint);
}

TEST(SegmentTimeline, IngestedSpansMatchAdvance)
{
    // The externally-coalesced ingestion API (credit the hours now,
    // hand the segments over later) must be indistinguishable from
    // eager advance() at the same temperatures.
    const auto run = [](bool ingested) {
        pf::Device device(tinyConfig());
        const pf::RouteSpec spec = device.allocateRoute("r", 500.0);
        auto design = std::make_shared<pf::Design>("d");
        design->setRouteValue(spec, true);
        device.loadDesign(design);
        const double temps[] = {333.15, 335.4, 331.9};
        if (ingested) {
            device.creditIdleHours(15.0);
            for (const double t : temps) {
                device.ingestSegment(5.0, t);
            }
        } else {
            for (const double t : temps) {
                pp::OvenEnvironment oven(t);
                device.advance(5.0, oven);
            }
        }
        pf::Route route = device.bindRoute(spec);
        return std::pair(device.elapsedHours(),
                         route.delayPs(pp::Transition::Falling, 333.15));
    };
    EXPECT_EQ(run(true), run(false));
}

TEST(SegmentTimeline, LongRunReductionIsPartitionInvariant)
{
    // A run long enough for the pre-reduced replay path (hundreds of
    // distinct-temperature segments) must still be independent of how
    // the span was partitioned into advance() calls.
    const auto run = [](double step_h) {
        pf::Device device(tinyConfig());
        const pf::RouteSpec spec = device.allocateRoute("r", 500.0);
        auto design = std::make_shared<pf::Design>("d");
        design->setRouteValue(spec, true);
        device.loadDesign(design);
        for (int seg = 0; seg < 200; ++seg) {
            // One distinct temperature per hour, like the cloud
            // ambient: no two segments coalesce.
            pp::OvenEnvironment oven(330.0 + 0.01 * seg);
            double remaining = 1.0;
            while (remaining > 1e-12) {
                const double dt = std::min(step_h, remaining);
                device.advance(dt, oven);
                remaining -= dt;
            }
        }
        pf::Route route = device.bindRoute(spec);
        return route.delayPs(pp::Transition::Falling, 333.15);
    };
    const double jump = run(1.0);
    EXPECT_EQ(run(0.5), jump);
    EXPECT_EQ(run(0.25), jump);
}

TEST(CompensatedTime, MillionIrregularStepsMatchClosedForm)
{
    pf::Device device(tinyConfig());
    pp::OvenEnvironment oven(333.15);
    long double expected = 0.0L;
    for (int i = 0; i < 1000000; ++i) {
        const double dt = static_cast<double>(i % 9 + 1) * 0.1;
        device.advance(dt, oven);
        expected += static_cast<long double>(dt);
    }
    // Compensated accumulation holds the closed-form total to within
    // a few ulp (~6e-11 at this magnitude); naive summation drifts
    // orders of magnitude further after 10^6 irregular steps.
    EXPECT_NEAR(device.elapsedHours(),
                static_cast<double>(expected), 1e-9);
}

} // namespace
