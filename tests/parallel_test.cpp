/**
 * @file
 * Thread-pool correctness, exception propagation, RNG stream
 * stability, and end-to-end determinism of the parallel experiment
 * engine (same seed => identical output for 1 vs. N workers).
 */

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "util/parallel.hpp"

namespace pentimento {
namespace {

TEST(ThreadPool, RunsEveryIterationExactlyOnce)
{
    util::ThreadPool pool(3);
    constexpr std::size_t kN = 10000;
    std::vector<std::atomic<int>> hits(kN);
    pool.parallelFor(0, kN,
                     [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kN; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ThreadPool, ZeroWorkerPoolRunsInline)
{
    util::ThreadPool pool(0);
    EXPECT_EQ(pool.workerCount(), 0u);
    const std::thread::id caller = std::this_thread::get_id();
    std::vector<std::thread::id> seen(64);
    pool.parallelFor(0, seen.size(), [&](std::size_t i) {
        seen[i] = std::this_thread::get_id();
    });
    for (const std::thread::id &id : seen) {
        EXPECT_EQ(id, caller);
    }
}

TEST(ThreadPool, EmptyRangeIsANoop)
{
    util::ThreadPool pool(2);
    std::atomic<int> calls{0};
    pool.parallelFor(5, 5, [&](std::size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ParallelForAccumulatesCorrectSum)
{
    util::ThreadPool pool(4);
    constexpr std::size_t kN = 4096;
    std::vector<std::uint64_t> out(kN, 0);
    pool.parallelFor(0, kN, [&](std::size_t i) { out[i] = i * i; });
    std::uint64_t expect = 0;
    for (std::size_t i = 0; i < kN; ++i) {
        expect += i * i;
    }
    EXPECT_EQ(std::accumulate(out.begin(), out.end(),
                              std::uint64_t{0}),
              expect);
}

TEST(ThreadPool, ExceptionPropagatesToCaller)
{
    util::ThreadPool pool(3);
    EXPECT_THROW(pool.parallelFor(0, 1000,
                                  [&](std::size_t i) {
                                      if (i == 417) {
                                          throw std::runtime_error(
                                              "boom");
                                      }
                                  }),
                 std::runtime_error);
    // The pool must stay usable after an exception drained through.
    std::atomic<int> ok{0};
    pool.parallelFor(0, 100, [&](std::size_t) { ok.fetch_add(1); });
    EXPECT_EQ(ok.load(), 100);
}

TEST(ThreadPool, ExceptionInZeroWorkerPoolPropagates)
{
    util::ThreadPool pool(0);
    EXPECT_THROW(pool.parallelFor(0, 4,
                                  [](std::size_t) {
                                      throw std::logic_error("inline");
                                  }),
                 std::logic_error);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock)
{
    util::ThreadPool pool(2);
    std::atomic<int> total{0};
    pool.parallelFor(0, 8, [&](std::size_t) {
        pool.parallelFor(0, 8,
                         [&](std::size_t) { total.fetch_add(1); });
    });
    EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, SubmitDrainsBeforeDestruction)
{
    std::atomic<int> ran{0};
    {
        util::ThreadPool pool(2);
        for (int i = 0; i < 200; ++i) {
            pool.submit([&] { ran.fetch_add(1); });
        }
    }
    EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPool, DefaultWorkersHonorsEnvironment)
{
    // PENTIMENTO_WORKERS names total lanes; the pool spawns one fewer.
    ::setenv("PENTIMENTO_WORKERS", "4", 1);
    EXPECT_EQ(util::ThreadPool::defaultWorkers(), 3u);
    ::setenv("PENTIMENTO_WORKERS", "1", 1);
    EXPECT_EQ(util::ThreadPool::defaultWorkers(), 0u);
    ::unsetenv("PENTIMENTO_WORKERS");
}

TEST(SplitStreams, StreamsAreStableAndIndependentOfConsumption)
{
    util::Rng parent_a(42);
    util::Rng parent_b(42);
    std::vector<util::Rng> a = util::splitStreams(parent_a, 8, "tag");
    std::vector<util::Rng> b = util::splitStreams(parent_b, 8, "tag");
    ASSERT_EQ(a.size(), 8u);
    // Identical parents => identical child streams, pairwise.
    for (std::size_t i = 0; i < a.size(); ++i) {
        for (int k = 0; k < 16; ++k) {
            EXPECT_EQ(a[i](), b[i]());
        }
    }
    // Parents advanced identically despite children being consumed
    // differently above.
    EXPECT_EQ(parent_a(), parent_b());
}

TEST(SplitStreams, DistinctIndicesAndTagsDiverge)
{
    util::Rng parent(7);
    std::vector<util::Rng> streams =
        util::splitStreams(parent, 16, "alpha");
    std::set<std::uint64_t> firsts;
    for (util::Rng &rng : streams) {
        firsts.insert(rng());
    }
    EXPECT_EQ(firsts.size(), 16u) << "stream collision";

    util::Rng p1(7), p2(7);
    std::vector<util::Rng> s1 = util::splitStreams(p1, 4, "alpha");
    std::vector<util::Rng> s2 = util::splitStreams(p2, 4, "beta");
    EXPECT_NE(s1[0](), s2[0]());
}

TEST(ParallelMap, PreservesIndexOrder)
{
    const std::vector<int> out = util::parallelMap<int>(
        257, [](std::size_t i) { return static_cast<int>(i) * 3; });
    ASSERT_EQ(out.size(), 257u);
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i], static_cast<int>(i) * 3);
    }
}

/** Flatten an experiment result into a comparable byte-exact vector. */
std::vector<double>
flatten(const core::ExperimentResult &result)
{
    std::vector<double> flat;
    for (const core::RouteRecord &route : result.routes) {
        flat.push_back(route.target_ps);
        flat.push_back(route.burn_value ? 1.0 : 0.0);
        for (std::size_t k = 0; k < route.series.size(); ++k) {
            flat.push_back(route.series.hours()[k]);
            flat.push_back(route.series.values()[k]);
        }
    }
    return flat;
}

TEST(Determinism, Experiment1IdenticalAcrossWorkerCounts)
{
    core::Experiment1Config config;
    config.groups = {{1000.0, 4}, {5000.0, 4}};
    config.burn_hours = 6.0;
    config.recovery_hours = 4.0;
    config.seed = 12345;

    util::ThreadPool serial(0);
    util::ThreadPool wide(4);

    config.pool = &serial;
    const std::vector<double> one = flatten(core::runExperiment1(config));
    config.pool = &wide;
    const std::vector<double> many =
        flatten(core::runExperiment1(config));

    ASSERT_EQ(one.size(), many.size());
    for (std::size_t i = 0; i < one.size(); ++i) {
        // Bit-identical, not approximately equal.
        EXPECT_EQ(one[i], many[i]) << "flat index " << i;
    }
}

TEST(Determinism, Experiment2IdenticalAcrossWorkerCounts)
{
    core::Experiment2Config config;
    config.groups = {{2000.0, 6}};
    config.burn_hours = 5.0;
    config.seed = 777;

    util::ThreadPool serial(0);
    util::ThreadPool wide(3);

    config.pool = &serial;
    const std::vector<double> one = flatten(core::runExperiment2(config));
    config.pool = &wide;
    const std::vector<double> many =
        flatten(core::runExperiment2(config));

    ASSERT_EQ(one.size(), many.size());
    for (std::size_t i = 0; i < one.size(); ++i) {
        EXPECT_EQ(one[i], many[i]) << "flat index " << i;
    }
}

TEST(Determinism, RepeatedRunsOnSamePoolAreIdentical)
{
    core::Experiment1Config config;
    config.groups = {{1000.0, 3}};
    config.burn_hours = 3.0;
    config.recovery_hours = 2.0;
    config.seed = 9;

    util::ThreadPool pool(4);
    config.pool = &pool;
    const std::vector<double> first =
        flatten(core::runExperiment1(config));
    const std::vector<double> second =
        flatten(core::runExperiment1(config));
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i], second[i]);
    }
}

} // namespace
} // namespace pentimento
