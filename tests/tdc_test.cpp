/**
 * @file
 * Unit tests for the TDC sensor: capture semantics, Hamming-distance
 * post-processing, calibration, measurement, the Measure design and
 * the ring-oscillator baseline.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "fabric/device.hpp"
#include "fabric/drc.hpp"
#include "phys/aging.hpp"
#include "phys/bti.hpp"
#include "phys/thermal.hpp"
#include "tdc/measure_design.hpp"
#include "tdc/ro_sensor.hpp"
#include "tdc/tdc.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"

namespace pf = pentimento::fabric;
namespace pp = pentimento::phys;
namespace pt = pentimento::tdc;
namespace pu = pentimento::util;

namespace {

pf::DeviceConfig
deviceConfig(std::uint64_t seed = 1)
{
    pf::DeviceConfig config;
    config.tiles_x = 32;
    config.tiles_y = 32;
    config.nodes_per_tile = 64;
    config.seed = seed;
    return config;
}

pt::TdcConfig
quietTdc()
{
    pt::TdcConfig config;
    config.jitter_sigma_ps = 0.0;
    config.metastable_window_ps = 1e-9;
    return config;
}

struct Bench
{
    explicit Bench(double route_ps = 1000.0,
                   pt::TdcConfig tdc_config = {},
                   std::uint64_t seed = 1)
        : device(deviceConfig(seed)),
          route(device.allocateRoute("rut", route_ps)),
          chain(device.allocateCarryChain("chain", tdc_config.taps)),
          sensor(device, route, chain, tdc_config), rng(seed)
    {
    }

    pf::Device device;
    pf::RouteSpec route;
    pf::RouteSpec chain;
    pt::Tdc sensor;
    pu::Rng rng;
};

} // namespace

// ------------------------------------------------------------ Capture

TEST(Capture, HammingDistanceRisingCountsOnes)
{
    pt::Capture cap;
    cap.polarity = pp::Transition::Rising;
    cap.bits = {true, true, true, false, false};
    EXPECT_EQ(cap.hammingDistance(), 3u);
}

TEST(Capture, HammingDistanceFallingCountsZeros)
{
    pt::Capture cap;
    cap.polarity = pp::Transition::Falling;
    cap.bits = {false, false, true, true, true, true};
    EXPECT_EQ(cap.hammingDistance(), 2u);
}

TEST(Capture, HammingHandlesBubbles)
{
    // The paper's falling example: 0000_0110_1111... has HD 6 from
    // all-ones (six zeros).
    pt::Capture cap;
    cap.polarity = pp::Transition::Falling;
    cap.bits = {false, false, false, false, false, true, true, false,
                true,  true,  true,  true};
    EXPECT_EQ(cap.hammingDistance(), 6u);
}

TEST(Trace, MeanHamming)
{
    pt::Trace trace;
    trace.hamming = {10.0, 12.0, 14.0};
    EXPECT_DOUBLE_EQ(trace.meanHamming(), 12.0);
}

// ---------------------------------------------------------------- Tdc

TEST(Tdc, ConstructorValidatesChainArity)
{
    pf::Device device(deviceConfig());
    const pf::RouteSpec route = device.allocateRoute("r", 500.0);
    const pf::RouteSpec chain = device.allocateCarryChain("c", 32);
    pt::TdcConfig config; // expects 64 taps
    EXPECT_THROW(pt::Tdc(device, route, chain, config), pu::FatalError);
}

TEST(Tdc, CaptureAtZeroThetaSeesNothing)
{
    Bench bench(1000.0, quietTdc());
    const pt::Capture cap = bench.sensor.capture(
        pp::Transition::Rising, 0.0, 333.15, bench.rng);
    EXPECT_EQ(cap.hammingDistance(), 0u);
}

TEST(Tdc, CaptureAtHugeThetaSeesFullChain)
{
    Bench bench(1000.0, quietTdc());
    const pt::Capture cap = bench.sensor.capture(
        pp::Transition::Rising, 1e6, 333.15, bench.rng);
    EXPECT_EQ(cap.hammingDistance(), bench.sensor.config().taps);
}

TEST(Tdc, FallingCaptureConventions)
{
    Bench bench(1000.0, quietTdc());
    const pt::Capture none = bench.sensor.capture(
        pp::Transition::Falling, 0.0, 333.15, bench.rng);
    // Nothing propagated: the chain still shows the old all-ones
    // state, so HD from all-ones is zero.
    EXPECT_EQ(none.hammingDistance(), 0u);
    for (const bool bit : none.bits) {
        EXPECT_TRUE(bit);
    }
}

class ThetaSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(ThetaSweep, HammingMonotoneInTheta)
{
    Bench bench(1000.0, quietTdc());
    const double theta = GetParam();
    const auto hd_at = [&](double t) {
        return bench.sensor
            .capture(pp::Transition::Rising, t, 333.15, bench.rng)
            .hammingDistance();
    };
    EXPECT_LE(hd_at(theta), hd_at(theta + 15.0));
}

INSTANTIATE_TEST_SUITE_P(AroundRouteDelay, ThetaSweep,
                         ::testing::Values(950.0, 1000.0, 1050.0,
                                           1100.0, 1150.0));

TEST(Tdc, MetastabilityCreatesVariedCaptures)
{
    pt::TdcConfig config;
    config.jitter_sigma_ps = 0.0;
    config.metastable_window_ps = 6.0;
    Bench bench(1000.0, config);
    // Park θ mid-chain so several taps sit inside the aperture.
    const double theta = 1000.0 * 1.02 + 32 * 2.8;
    bool varied = false;
    const auto first =
        bench.sensor
            .capture(pp::Transition::Rising, theta, 333.15, bench.rng)
            .hammingDistance();
    for (int i = 0; i < 50 && !varied; ++i) {
        varied = bench.sensor
                     .capture(pp::Transition::Rising, theta, 333.15,
                              bench.rng)
                     .hammingDistance() != first;
    }
    EXPECT_TRUE(varied);
}

TEST(Tdc, QuietConfigIsDeterministic)
{
    Bench bench(1000.0, quietTdc());
    const double theta = 1100.0;
    const auto a = bench.sensor.capture(pp::Transition::Rising, theta,
                                        333.15, bench.rng);
    const auto b = bench.sensor.capture(pp::Transition::Rising, theta,
                                        333.15, bench.rng);
    EXPECT_EQ(a.bits, b.bits);
}

TEST(Tdc, CalibrationLandsMidChain)
{
    Bench bench(2000.0);
    const double theta = bench.sensor.calibrate(333.15, bench.rng);
    EXPECT_GT(theta, 0.0);
    const pt::Trace rise = bench.sensor.takeTrace(
        pp::Transition::Rising, theta, 333.15, bench.rng);
    const pt::Trace fall = bench.sensor.takeTrace(
        pp::Transition::Falling, theta, 333.15, bench.rng);
    const double margin =
        static_cast<double>(bench.sensor.config().calibration_margin);
    const double taps = static_cast<double>(bench.sensor.config().taps);
    EXPECT_GT(rise.meanHamming(), margin - 1.0);
    EXPECT_LT(rise.meanHamming(), taps - margin + 1.0);
    EXPECT_GT(fall.meanHamming(), margin - 1.0);
    EXPECT_LT(fall.meanHamming(), taps - margin + 1.0);
}

class CalibrationSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(CalibrationSweep, WorksAcrossRouteLengths)
{
    Bench bench(GetParam());
    const double theta = bench.sensor.calibrate(333.15, bench.rng);
    // θ_init must exceed the route transit plus part of the chain.
    EXPECT_GT(theta, GetParam() * 0.8);
    const pt::Trace rise = bench.sensor.takeTrace(
        pp::Transition::Rising, theta, 333.15, bench.rng);
    EXPECT_GT(rise.meanHamming(), 4.0);
    EXPECT_LT(rise.meanHamming(),
              static_cast<double>(bench.sensor.config().taps) - 4.0);
}

INSTANTIATE_TEST_SUITE_P(PaperLengths, CalibrationSweep,
                         ::testing::Values(1000.0, 2000.0, 5000.0,
                                           10000.0));

TEST(Tdc, MeasureRequiresCalibration)
{
    Bench bench;
    EXPECT_THROW(bench.sensor.measure(333.15, bench.rng),
                 pu::FatalError);
}

TEST(Tdc, ThetaInitAdoption)
{
    Bench bench;
    bench.sensor.setThetaInit(1234.5);
    EXPECT_DOUBLE_EQ(bench.sensor.thetaInit(), 1234.5);
}

TEST(Tdc, MeasureWallClockModel)
{
    Bench bench;
    bench.sensor.calibrate(333.15, bench.rng);
    const pt::Measurement m = bench.sensor.measure(333.15, bench.rng);
    const auto &config = bench.sensor.config();
    const double expected =
        config.traces_per_measurement *
        (config.retune_seconds +
         2.0 * config.samples_per_trace * config.sample_seconds);
    EXPECT_DOUBLE_EQ(m.wall_seconds, expected);
}

TEST(Tdc, PristineRouteDeltaNearZero)
{
    Bench bench(1000.0);
    bench.sensor.calibrate(333.15, bench.rng);
    const pt::Measurement m = bench.sensor.measure(333.15, bench.rng);
    EXPECT_LT(std::abs(m.deltaPs()), 6.0);
}

TEST(Tdc, Burn1RaisesDeltaPs)
{
    Bench bench(2000.0);
    bench.sensor.calibrate(333.15, bench.rng);
    const pt::Measurement before =
        bench.sensor.measure(333.15, bench.rng);

    // Age the route under logic 1 (PBTI slows the falling edge).
    auto design = std::make_shared<pf::Design>("burn");
    design->setRouteValue(bench.route, true);
    bench.device.loadDesign(design);
    pp::OvenEnvironment oven(333.15);
    bench.device.advance(200.0, oven);
    bench.device.wipe();

    const pt::Measurement after =
        bench.sensor.measure(333.15, bench.rng);
    EXPECT_GT(after.deltaPs() - before.deltaPs(), 1.0);
}

TEST(Tdc, Burn0LowersDeltaPs)
{
    Bench bench(2000.0);
    bench.sensor.calibrate(333.15, bench.rng);
    const pt::Measurement before =
        bench.sensor.measure(333.15, bench.rng);

    auto design = std::make_shared<pf::Design>("burn");
    design->setRouteValue(bench.route, false);
    bench.device.loadDesign(design);
    pp::OvenEnvironment oven(333.15);
    bench.device.advance(200.0, oven);
    bench.device.wipe();

    const pt::Measurement after =
        bench.sensor.measure(333.15, bench.rng);
    EXPECT_LT(after.deltaPs() - before.deltaPs(), -1.0);
}

class BurnContrastSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(BurnContrastSweep, ContrastScalesWithRouteLength)
{
    const double length = GetParam();
    Bench bench(length);
    bench.sensor.calibrate(333.15, bench.rng);
    const double before =
        bench.sensor.measure(333.15, bench.rng).deltaPs();
    auto design = std::make_shared<pf::Design>("burn");
    design->setRouteValue(bench.route, true);
    bench.device.loadDesign(design);
    pp::OvenEnvironment oven(333.15);
    bench.device.advance(200.0, oven);
    bench.device.wipe();
    const double after =
        bench.sensor.measure(333.15, bench.rng).deltaPs();
    const double contrast = after - before;
    // Roughly 1.05 ps per ns of route (the Figure 6 envelope).
    EXPECT_GT(contrast, 0.7 * length / 1000.0);
    EXPECT_LT(contrast, 1.6 * length / 1000.0);
}

INSTANTIATE_TEST_SUITE_P(PaperLengths, BurnContrastSweep,
                         ::testing::Values(1000.0, 2000.0, 5000.0,
                                           10000.0));

// ------------------------------------------------ TdcConfig validation

namespace {

/** Expect the Tdc constructor to reject the mutated config. */
template <typename Mutate>
void
expectConfigRejected(Mutate mutate)
{
    pf::Device device(deviceConfig());
    const pf::RouteSpec route = device.allocateRoute("r", 500.0);
    const pf::RouteSpec chain = device.allocateCarryChain("c", 64);
    pt::TdcConfig config;
    mutate(config);
    EXPECT_THROW(pt::Tdc(device, route, chain, config), pu::FatalError);
}

} // namespace

TEST(TdcConfigValidation, RejectsZeroWindow)
{
    // A zero/negative aperture would divide the per-tap predicate by
    // zero and emit NaN hamming with no diagnostic.
    expectConfigRejected(
        [](pt::TdcConfig &c) { c.metastable_window_ps = 0.0; });
    expectConfigRejected(
        [](pt::TdcConfig &c) { c.metastable_window_ps = -4.0; });
}

TEST(TdcConfigValidation, RejectsZeroTaps)
{
    expectConfigRejected([](pt::TdcConfig &c) { c.taps = 0; });
}

TEST(TdcConfigValidation, RejectsNonPositiveSamplesPerTrace)
{
    expectConfigRejected(
        [](pt::TdcConfig &c) { c.samples_per_trace = 0; });
    expectConfigRejected(
        [](pt::TdcConfig &c) { c.samples_per_trace = -3; });
}

TEST(TdcConfigValidation, RejectsNonPositiveTracesPerMeasurement)
{
    expectConfigRejected(
        [](pt::TdcConfig &c) { c.traces_per_measurement = 0; });
}

TEST(TdcConfigValidation, RejectsNegativeOrNonFiniteJitter)
{
    expectConfigRejected(
        [](pt::TdcConfig &c) { c.jitter_sigma_ps = -0.1; });
    expectConfigRejected([](pt::TdcConfig &c) {
        c.jitter_sigma_ps = std::numeric_limits<double>::quiet_NaN();
    });
}

TEST(TdcConfigValidation, RejectsNonPositivePsPerBit)
{
    expectConfigRejected([](pt::TdcConfig &c) { c.ps_per_bit = 0.0; });
}

TEST(TdcConfigValidation, ZeroJitterStaysLegal)
{
    // The quiet (noiseless) sensors used throughout these tests must
    // keep constructing.
    pf::Device device(deviceConfig());
    const pf::RouteSpec route = device.allocateRoute("r", 500.0);
    const pf::RouteSpec chain = device.allocateCarryChain("c", 64);
    EXPECT_NO_THROW(pt::Tdc(device, route, chain, quietTdc()));
}

// ------------------------------------------- calibration bracketing

namespace {

/**
 * Age every route element far beyond its target delay, with the AC
 * duty chosen so NBTI's stronger prefactor is offset by less stress
 * time — both polarities slow by the same factor, which is what keeps
 * the falling front inside the chain once the rising front is tuned
 * mid-chain. (duty/(1-duty))^n == (nbti/pbti prefactor ratio) with
 * n = 0.25.
 */
void
injectExtremeAging(pf::Device &device, const pf::RouteSpec &route,
                   double scale)
{
    const pp::BtiParams params = pp::BtiParams::ultrascalePlus();
    const double ratio = std::pow(
        params.nbti.prefactor_v / params.pbti.prefactor_v,
        1.0 / params.pbti.time_exponent);
    const double duty = ratio / (1.0 + ratio);
    for (const pf::ResourceId &id : route.elements) {
        pf::RoutingElement &elem = device.element(id);
        elem.aging().setScale(scale);
        elem.aging().holdToggling(params, duty, 333.15, 100.0);
    }
}

} // namespace

TEST(Tdc, CalibrateWidensBracketForExtremeAgedRoute)
{
    // A route aged ~9x past its target exceeds the nominal θ search
    // bracket; the old fixed bracket silently saturated and returned
    // a θ below the route transit, biasing every measurement.
    Bench bench(1000.0);
    injectExtremeAging(bench.device, bench.route, 1e4);
    const double nominal_hi = 1000.0 * 2.0 + 64 * 2.8 + 2000.0;
    const double theta = bench.sensor.calibrate(333.15, bench.rng);
    EXPECT_GT(theta, nominal_hi);
    const pt::Trace rise = bench.sensor.takeTrace(
        pp::Transition::Rising, theta, 333.15, bench.rng);
    EXPECT_GT(rise.meanHamming(), 4.0);
    EXPECT_LT(rise.meanHamming(), 60.0);
}

TEST(Tdc, CalibrateFatalWhenRouteExceedsMaxBracket)
{
    // Beyond the bounded geometric widening the sensor must fail
    // loudly instead of returning a saturated θ.
    Bench bench(1000.0);
    injectExtremeAging(bench.device, bench.route, 1e8);
    EXPECT_THROW(bench.sensor.calibrate(333.15, bench.rng),
                 pu::FatalError);
}

// --------------------------------------- capture/sample lockstep

TEST(Tdc, SampleHammingMatchesCaptureLockstep)
{
    // sampleHamming duplicates captureFromArrivals' aperture
    // predicate without materialising bits; the two must agree on the
    // Hamming distance AND consume the identical draw sequence for
    // random θ, temperature and aging states.
    const pp::BtiParams params = pp::BtiParams::ultrascalePlus();
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
        Bench bench(1500.0, pt::TdcConfig{}, seed + 10);
        pu::Rng setup(seed * 77 + 5);
        for (const pf::ResourceId &id : bench.route.elements) {
            if (setup.bernoulli(0.7)) {
                bench.device.element(id).aging().holdStatic(
                    params, setup.bernoulli(0.5),
                    setup.uniform(300.0, 360.0),
                    setup.uniform(0.0, 300.0));
            }
        }
        for (int trial = 0; trial < 30; ++trial) {
            const double temp = setup.uniform(300.0, 370.0);
            const pp::Transition polarity = setup.bernoulli(0.5)
                                                ? pp::Transition::Rising
                                                : pp::Transition::Falling;
            const auto &arrivals =
                bench.sensor.arrivals(polarity, temp);
            const double theta = setup.uniform(
                arrivals.front() - 50.0, arrivals.back() + 50.0);
            pu::Rng rng_cap(seed * 1000 + trial);
            pu::Rng rng_fast(seed * 1000 + trial);
            const std::size_t cap_hd =
                bench.sensor
                    .captureFromArrivals(arrivals, polarity, theta,
                                         rng_cap)
                    .hammingDistance();
            const std::size_t fast_hd = bench.sensor.sampleHamming(
                arrivals, theta, rng_fast);
            EXPECT_EQ(cap_hd, fast_hd)
                << "seed " << seed << " trial " << trial;
            // Lockstep: both paths must have consumed the same draws.
            EXPECT_EQ(rng_cap(), rng_fast())
                << "seed " << seed << " trial " << trial;
        }
    }
}

// -------------------------------------------- fast sampling mode

TEST(FastSampling, StatisticallyEquivalentAcrossSeeds)
{
    // fast_sampling deliberately re-rolls sample paths (ziggurat
    // jitter, fused integer traces), so per-seed values differ; the
    // distribution of the measured observable must not move. Same
    // devices, same aging, same burn in both arms — only the sampling
    // draws differ.
    pu::RunningStats exact_stats;
    pu::RunningStats fast_stats;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        for (int fast = 0; fast < 2; ++fast) {
            pt::TdcConfig config;
            config.fast_sampling = fast == 1;
            Bench bench(2000.0, config, seed);
            bench.sensor.calibrate(333.15, bench.rng);
            auto design = std::make_shared<pf::Design>("burn");
            design->setRouteValue(bench.route, true);
            bench.device.loadDesign(design);
            pp::OvenEnvironment oven(333.15);
            bench.device.advance(200.0, oven);
            bench.device.wipe();
            const double delta =
                bench.sensor.measure(333.15, bench.rng).deltaPs();
            (fast == 1 ? fast_stats : exact_stats).add(delta);
        }
    }
    // Burn 1 drives ∆ps positive in both modes…
    EXPECT_GT(exact_stats.mean(), 1.0);
    EXPECT_GT(fast_stats.mean(), 1.0);
    // …and the seed-sweep means and spreads agree within sampling
    // noise (tolerances ~3x the empirical SEM of the 10-seed means).
    EXPECT_NEAR(fast_stats.mean(), exact_stats.mean(), 0.4);
    EXPECT_LT(std::abs(fast_stats.stddev() - exact_stats.stddev()),
              0.5);
}

TEST(FastSampling, CalibratesToSameThetaNeighbourhood)
{
    // Calibration is a statistic of many traces; fast and exact modes
    // must land θ_init within a few taps of each other.
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        pt::TdcConfig exact_config;
        pt::TdcConfig fast_config;
        fast_config.fast_sampling = true;
        Bench exact_bench(2000.0, exact_config, seed);
        Bench fast_bench(2000.0, fast_config, seed);
        const double exact_theta =
            exact_bench.sensor.calibrate(333.15, exact_bench.rng);
        const double fast_theta =
            fast_bench.sensor.calibrate(333.15, fast_bench.rng);
        EXPECT_NEAR(fast_theta, exact_theta, 4.0 * 2.8)
            << "seed " << seed;
    }
}

// -------------------------------------------------------MeasureDesign

TEST(MeasureDesign, OneSensorPerRoute)
{
    pf::Device device(deviceConfig());
    std::vector<pf::RouteSpec> routes{device.allocateRoute("a", 1000.0),
                                      device.allocateRoute("b", 2000.0)};
    pt::MeasureDesign design(device, routes);
    EXPECT_EQ(design.sensorCount(), 2u);
    EXPECT_EQ(design.sensor(0).routeSpec().name, "a");
    EXPECT_EQ(design.sensor(1).routeSpec().name, "b");
    EXPECT_THROW(design.sensor(2), pu::FatalError);
}

TEST(MeasureDesign, EmptyRouteListFatal)
{
    pf::Device device(deviceConfig());
    EXPECT_THROW(pt::MeasureDesign(device, {}), pu::FatalError);
}

TEST(MeasureDesign, PassesProviderDrc)
{
    pf::Device device(deviceConfig());
    std::vector<pf::RouteSpec> routes{device.allocateRoute("a", 1000.0)};
    pt::MeasureDesign design(device, routes);
    const pf::DesignRuleChecker drc;
    EXPECT_TRUE(drc.accepts(design));
}

TEST(MeasureDesign, CalibrateAllAndMeasureAll)
{
    pf::Device device(deviceConfig());
    std::vector<pf::RouteSpec> routes{device.allocateRoute("a", 1000.0),
                                      device.allocateRoute("b", 5000.0)};
    pt::MeasureDesign design(device, routes);
    pu::Rng rng(3);
    const std::vector<double> thetas = design.calibrateAll(333.15, rng);
    ASSERT_EQ(thetas.size(), 2u);
    EXPECT_GT(thetas[1], thetas[0]); // longer route needs larger θ
    const pt::MeasurementSweep sweep = design.measureAll(333.15, rng);
    EXPECT_EQ(sweep.per_route.size(), 2u);
    EXPECT_GT(sweep.wall_seconds, 0.0);
}

TEST(MeasureDesign, AdoptThetaInitsArityChecked)
{
    pf::Device device(deviceConfig());
    std::vector<pf::RouteSpec> routes{device.allocateRoute("a", 1000.0)};
    pt::MeasureDesign design(device, routes);
    EXPECT_THROW(design.adoptThetaInits({1.0, 2.0}), pu::FatalError);
    design.adoptThetaInits({1111.0});
    EXPECT_DOUBLE_EQ(design.sensor(0).thetaInit(), 1111.0);
}

TEST(MeasureDesign, MarksRoutesAndChainsToggling)
{
    pf::Device device(deviceConfig());
    std::vector<pf::RouteSpec> routes{device.allocateRoute("a", 500.0)};
    pt::MeasureDesign design(device, routes);
    EXPECT_EQ(design.activityFor(routes[0].elements[0]).kind,
              pf::Activity::Toggle);
    EXPECT_EQ(
        design.activityFor(design.sensor(0).chainSpec().elements[0])
            .kind,
        pf::Activity::Toggle);
}

// ------------------------------------------------------------ RO base

TEST(RoSensor, PeriodSumsBothPolarities)
{
    pf::Device device(deviceConfig());
    const pf::RouteSpec route = device.allocateRoute("r", 1000.0);
    pt::RoConfig config;
    pt::RingOscillatorSensor ro(device, route, config);
    pf::Route bound = device.bindRoute(route);
    const double expected =
        bound.delayPs(pp::Transition::Rising, 333.15) +
        bound.delayPs(pp::Transition::Falling, 333.15) +
        2.0 * config.inverter_ps;
    EXPECT_NEAR(ro.periodPs(333.15), expected, 1e-9);
}

TEST(RoSensor, CannotDistinguishBurnPolarity)
{
    // The paper's core argument against RO sensing: both burn
    // polarities slow the loop, so the scalar output loses the sign.
    pf::DeviceConfig config = deviceConfig();
    pf::Device dev_one(config);
    pf::Device dev_zero(config);
    const pf::RouteSpec route_one = dev_one.allocateRoute("r", 2000.0);
    const pf::RouteSpec route_zero = dev_zero.allocateRoute("r", 2000.0);

    pp::OvenEnvironment oven(333.15);
    auto design_one = std::make_shared<pf::Design>("one");
    design_one->setRouteValue(route_one, true);
    dev_one.loadDesign(design_one);
    dev_one.advance(200.0, oven);

    auto design_zero = std::make_shared<pf::Design>("zero");
    design_zero->setRouteValue(route_zero, false);
    dev_zero.loadDesign(design_zero);
    dev_zero.advance(200.0, oven);

    pt::RingOscillatorSensor ro_one(dev_one, route_one);
    pt::RingOscillatorSensor ro_zero(dev_zero, route_zero);
    const double p1 = ro_one.periodPs(333.15);
    const double p0 = ro_zero.periodPs(333.15);
    // Both periods grew; their difference is far smaller than either
    // growth (NBTI vs PBTI prefactor gap only).
    pf::Device fresh(config);
    const pf::RouteSpec route_f = fresh.allocateRoute("r", 2000.0);
    pt::RingOscillatorSensor ro_fresh(fresh, route_f);
    const double pf_ = ro_fresh.periodPs(333.15);
    EXPECT_GT(p1, pf_);
    EXPECT_GT(p0, pf_);
    EXPECT_LT(std::abs(p1 - p0), 0.6 * std::min(p1 - pf_, p0 - pf_));
}

TEST(RoSensor, DesignFailsDrc)
{
    pf::Device device(deviceConfig());
    const pf::RouteSpec route = device.allocateRoute("r", 1000.0);
    pt::RingOscillatorSensor ro(device, route);
    const pf::DesignRuleChecker drc;
    const auto violations = drc.check(*ro.buildDesign());
    ASSERT_FALSE(violations.empty());
    EXPECT_EQ(violations[0].rule, "combinational-loop");
}

TEST(RoSensor, FrequencyReadingIsNoisyButClose)
{
    pf::Device device(deviceConfig());
    const pf::RouteSpec route = device.allocateRoute("r", 1000.0);
    pt::RingOscillatorSensor ro(device, route);
    pu::Rng rng(5);
    const double nominal = 1e6 / ro.periodPs(333.15);
    for (int i = 0; i < 20; ++i) {
        EXPECT_NEAR(ro.readFrequencyMhz(333.15, rng), nominal,
                    nominal * 1e-3);
    }
}

TEST(RoSensor, EmptyRouteFatal)
{
    pf::Device device(deviceConfig());
    pf::RouteSpec empty;
    EXPECT_THROW(pt::RingOscillatorSensor(device, empty),
                 pu::FatalError);
}
