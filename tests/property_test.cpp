/**
 * @file
 * Property-style suites: randomized aging schedules, platform rental
 * fuzzing, TDC linearity, and classifier behaviour across SNR — the
 * invariants that must hold for *any* input, not just the paper's
 * configurations.
 */

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "cloud/fingerprint.hpp"
#include "cloud/platform.hpp"
#include "core/classifier.hpp"
#include "core/delta_series.hpp"
#include "core/presets.hpp"
#include "fabric/design.hpp"
#include "fabric/device.hpp"
#include "phys/aging.hpp"
#include "phys/thermal.hpp"
#include "tdc/tdc.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace pc = pentimento::core;
namespace pcl = pentimento::cloud;
namespace pf = pentimento::fabric;
namespace pp = pentimento::phys;
namespace pt = pentimento::tdc;
namespace pu = pentimento::util;

// ------------------------------------------- random aging schedules

class AgingScheduleFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(AgingScheduleFuzz, ShiftStaysNonNegativeAndBounded)
{
    const pp::BtiParams params = pp::BtiParams::ultrascalePlus();
    pu::Rng rng(GetParam());
    pp::ElementAging aging;
    pp::ElementAging pure_stress; // upper bound: never recovers

    double stressed_hours = 0.0;
    for (int step = 0; step < 200; ++step) {
        const double dt = rng.uniform(0.1, 5.0);
        const double temp = rng.uniform(300.0, 360.0);
        const int action = static_cast<int>(rng.uniformInt(0, 3));
        switch (action) {
          case 0:
            aging.holdStatic(params, true, temp, dt);
            pure_stress.holdStatic(params, true, temp, dt);
            stressed_hours += dt;
            break;
          case 1:
            aging.holdStatic(params, false, temp, dt);
            break;
          case 2:
            aging.holdToggling(params, rng.uniform(0.0, 1.0), temp, dt);
            break;
          default:
            aging.release(params, temp, dt);
            break;
        }
        const double nmos =
            aging.deltaVth(params, pp::TransistorType::Nmos);
        const double pmos =
            aging.deltaVth(params, pp::TransistorType::Pmos);
        EXPECT_GE(nmos, 0.0);
        EXPECT_GE(pmos, 0.0);
        // An element that also saw hold-0 / toggle / release time can
        // never have MORE NMOS stress than one that spent every
        // hold-1 interval stressing and never recovered, plus the
        // toggle contributions bounded by full-time stress.
        EXPECT_LE(nmos,
                  pure_stress.deltaVth(params,
                                       pp::TransistorType::Nmos) +
                      params.pbti.prefactor_v *
                          std::pow(4000.0, 0.5));
    }
}

TEST_P(AgingScheduleFuzz, DeterministicReplay)
{
    const pp::BtiParams params = pp::BtiParams::ultrascalePlus();
    const auto run = [&](std::uint64_t seed) {
        pu::Rng rng(seed);
        pp::ElementAging aging;
        for (int step = 0; step < 100; ++step) {
            const double dt = rng.uniform(0.1, 3.0);
            if (rng.bernoulli(0.5)) {
                aging.holdStatic(params, rng.bernoulli(0.5), 330.0, dt);
            } else {
                aging.release(params, 330.0, dt);
            }
        }
        return aging.deltaVth(params, pp::TransistorType::Nmos) +
               aging.deltaVth(params, pp::TransistorType::Pmos);
    };
    EXPECT_DOUBLE_EQ(run(GetParam()), run(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AgingScheduleFuzz,
                         ::testing::Values(1, 7, 42, 1337, 99999));

// --------------------------------------------------- platform fuzzing

class PlatformFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PlatformFuzz, RentalInvariantsSurviveRandomOperations)
{
    pcl::PlatformConfig config = pc::awsF1Region(GetParam());
    config.fleet_size = 4;
    config.device_template.tiles_x = 32;
    config.device_template.tiles_y = 32;
    pcl::CloudPlatform platform(config);
    pu::Rng rng(GetParam());

    std::vector<std::string> held;
    for (int step = 0; step < 120; ++step) {
        const int action = static_cast<int>(rng.uniformInt(0, 3));
        if (action == 0) {
            if (const auto id = platform.rent()) {
                // A freshly rented board must be clean.
                EXPECT_EQ(platform.instance(*id)
                              .device()
                              .currentDesign(),
                          nullptr);
                held.push_back(*id);
            }
        } else if (action == 1 && !held.empty()) {
            const std::size_t pick =
                rng.uniformIndex(held.size());
            platform.release(held[pick]);
            held.erase(held.begin() +
                       static_cast<std::ptrdiff_t>(pick));
        } else if (action == 2 && !held.empty()) {
            const std::size_t pick =
                rng.uniformIndex(held.size());
            auto design = std::make_shared<pf::Design>(
                "fuzz" + std::to_string(step));
            design->setPowerW(rng.uniform(1.0, 80.0));
            EXPECT_TRUE(
                platform.loadDesign(held[pick], design).empty());
        } else {
            platform.advanceHours(rng.uniform(0.1, 3.0));
        }
        // Conservation: held + available == fleet.
        EXPECT_EQ(held.size() + platform.availableCount(),
                  config.fleet_size);
        // No duplicates among held ids.
        for (std::size_t i = 0; i < held.size(); ++i) {
            for (std::size_t j = i + 1; j < held.size(); ++j) {
                EXPECT_NE(held[i], held[j]);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlatformFuzz,
                         ::testing::Values(3, 17, 23571));

// ------------------------------------------------------ TDC linearity

class TdcLinearity : public ::testing::TestWithParam<double>
{
};

TEST_P(TdcLinearity, MeasuredDriftTracksInjectedShift)
{
    // Burn for the parameter hours; the measured ∆ps drift must match
    // the route's true (internal) BTI shift within sensor noise.
    const double hours = GetParam();
    pf::Device device{pf::DeviceConfig{}};
    pp::OvenEnvironment oven(333.15);
    pu::Rng rng(5);

    const pf::RouteSpec route = device.allocateRoute("r", 5000.0);
    pt::Tdc sensor(device, route, device.allocateCarryChain("c", 64));
    sensor.calibrate(oven.dieTempK(), rng);
    const double before =
        sensor.measure(oven.dieTempK(), rng).deltaPs();

    auto design = std::make_shared<pf::Design>("burn");
    design->setRouteValue(route, true);
    device.loadDesign(design);
    device.advance(hours, oven);
    device.wipe();

    pf::Route bound = device.bindRoute(route);
    const double truth = bound.btiShiftPs(pp::Transition::Falling);
    const double measured =
        sensor.measure(oven.dieTempK(), rng).deltaPs() - before;
    EXPECT_NEAR(measured, truth, 0.6);
}

INSTANTIATE_TEST_SUITE_P(BurnDurations, TdcLinearity,
                         ::testing::Values(10.0, 50.0, 100.0, 200.0));

// ----------------------------------------------- classifier SNR sweep

class ClassifierSnr : public ::testing::TestWithParam<double>
{
};

TEST_P(ClassifierSnr, AccuracyReachesCeilingAboveSnrTwo)
{
    // Synthetic TM1 records at the parameter SNR: drift 1 ps, noise
    // 1/SNR ps.
    const double snr = GetParam();
    pu::Rng rng(31);
    pc::ExperimentResult result;
    for (int i = 0; i < 32; ++i) {
        pc::RouteRecord record;
        record.target_ps = 5000.0;
        record.burn_value = i % 2 == 0;
        const double drift = record.burn_value ? 1.0 : -1.0;
        for (int h = 0; h <= 60; ++h) {
            record.series.addPoint(
                h, drift * h / 60.0 +
                       rng.gaussian(0.0, 1.0 / snr));
        }
        result.routes.push_back(std::move(record));
    }
    const double accuracy =
        pc::ThreatModel1Classifier().classify(result).accuracy;
    if (snr >= 2.0) {
        EXPECT_GE(accuracy, 0.95);
    } else if (snr <= 0.25) {
        EXPECT_LE(accuracy, 0.95);
        EXPECT_GE(accuracy, 0.4); // never worse than near-chance
    }
}

INSTANTIATE_TEST_SUITE_P(SnrGrid, ClassifierSnr,
                         ::testing::Values(0.125, 0.25, 1.0, 2.0, 8.0));

// --------------------------------------- fingerprint stability

TEST(FingerprintProperty, SurvivesHeavyBurnIn)
{
    // Assumption 2 needs re-identification to work *after* the victim
    // used the board: the process-variation fingerprint must dominate
    // the few-ps aging drift.
    pcl::PlatformConfig config = pc::awsF1Region(66);
    config.fleet_size = 2;
    config.device_template.tiles_x = 64;
    config.device_template.tiles_y = 64;
    pcl::CloudPlatform platform(config);
    pcl::Fingerprinter fingerprinter;

    const auto a = platform.rent();
    const auto before =
        fingerprinter.probe(platform.instance(*a), "before");

    // Heavy tenant usage on that board.
    pf::Device &device = platform.instance(*a).device();
    auto design = std::make_shared<pf::Design>("tenant");
    for (int r = 0; r < 8; ++r) {
        design->setRouteValue(
            device.allocateRoute("n" + std::to_string(r), 5000.0),
            r % 2 == 0);
    }
    design->setPowerW(60.0);
    ASSERT_TRUE(platform.loadDesign(*a, design).empty());
    platform.advanceHours(200.0);

    const auto after =
        fingerprinter.probe(platform.instance(*a), "after");
    EXPECT_GT(pcl::Fingerprinter::similarity(before, after), 0.9);

    // And it still beats a different board.
    const auto b = platform.rent();
    const auto other =
        fingerprinter.probe(platform.instance(*b), "other");
    EXPECT_GT(pcl::Fingerprinter::similarity(before, after),
              pcl::Fingerprinter::similarity(before, other));
}

// --------------------------------------------- OU ambient properties

TEST(AmbientProperty, PackageNeverLeavesPhysicalRange)
{
    pcl::AmbientModel ambient({}, pu::Rng(8));
    pp::PackageThermalModel pkg(ambient.ambientK());
    for (int i = 0; i < 5000; ++i) {
        pkg.setAmbientK(ambient.step(1.0));
        const double die = pkg.step(63.0, 1.0);
        EXPECT_GT(die, 273.15); // above freezing
        EXPECT_LT(die, 400.0);  // below silicon limits
    }
}

// ------------------------------ series insertion-order invariance

class SeriesInsertionOrder
    : public ::testing::TestWithParam<std::uint64_t>
{
};

/**
 * Slope (and every other point-set statistic) must not depend on the
 * order points were inserted: parallel campaigns merge per-worker
 * partial series in completion order, which the estimates must not
 * see. Hours are kept distinct so the sorted series is unique and the
 * comparison is exact, not approximate.
 */
TEST_P(SeriesInsertionOrder, SlopeInvariantUnderInsertionOrder)
{
    pu::Rng rng(GetParam());
    const std::size_t n = 16 + rng.uniformInt(0, 48);

    // Distinct, strictly increasing hours with random gaps.
    std::vector<double> hours(n);
    std::vector<double> values(n);
    double h = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        h += rng.uniform(0.1, 4.0);
        hours[i] = h;
        values[i] = rng.gaussian(0.0, 3.0) + 0.05 * h;
    }

    // Baseline: chronological append.
    pc::DeltaSeries chronological;
    for (std::size_t i = 0; i < n; ++i) {
        chronological.addPoint(hours[i], values[i]);
    }

    // Shuffled insertion via insertPoint (Fisher-Yates on indices).
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) {
        order[i] = i;
    }
    for (std::size_t i = n - 1; i > 0; --i) {
        const std::size_t j = rng.uniformInt(0, i);
        std::swap(order[i], order[j]);
    }
    pc::DeltaSeries shuffled;
    for (const std::size_t i : order) {
        shuffled.insertPoint(hours[i], values[i]);
    }

    // The reassembled series is the same array, so every estimate is
    // bit-identical — not merely close.
    ASSERT_EQ(shuffled.size(), chronological.size());
    EXPECT_EQ(shuffled.hours(), chronological.hours());
    EXPECT_EQ(shuffled.values(), chronological.values());
    EXPECT_DOUBLE_EQ(shuffled.slopePerHour(),
                     chronological.slopePerHour());
    EXPECT_DOUBLE_EQ(shuffled.slopeStdErrorPerHour(),
                     chronological.slopeStdErrorPerHour());
    EXPECT_DOUBLE_EQ(shuffled.netDriftPs(),
                     chronological.netDriftPs());
    EXPECT_DOUBLE_EQ(shuffled.meanBetweenHours(hours.front(),
                                               hours.back()),
                     chronological.meanBetweenHours(hours.front(),
                                                    hours.back()));
}

/** Equal-hour ties keep arrival order (stable), like addPoint. */
TEST(SeriesInsertionOrder, TiesAreStable)
{
    pc::DeltaSeries a;
    a.addPoint(1.0, 10.0);
    a.addPoint(2.0, 20.0);
    a.addPoint(2.0, 21.0);
    a.addPoint(3.0, 30.0);

    pc::DeltaSeries b;
    b.insertPoint(1.0, 10.0);
    b.insertPoint(2.0, 20.0);
    b.insertPoint(2.0, 21.0);
    b.insertPoint(3.0, 30.0);
    EXPECT_EQ(a.hours(), b.hours());
    EXPECT_EQ(a.values(), b.values());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeriesInsertionOrder,
                         ::testing::Values(1u, 7u, 99u, 1234u,
                                           0xfeedu, 0xdeadbeefu));

// ----------------------- journal interleaving / observation order

class JournalInterleaving
    : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    static pf::DeviceConfig
    deviceConfig(bool eager)
    {
        pf::DeviceConfig config;
        config.tiles_x = 8;
        config.tiles_y = 8;
        config.nodes_per_tile = 32;
        config.eager_materialisation = eager;
        return config;
    }

    /**
     * Drive a device through a random-but-reproducible tenancy
     * interleaving: design loads over random route subsets, wipes,
     * in-place mutations of the resident design, and irregular
     * advances at random temperatures. The op sequence is a pure
     * function of the seed, so an eager and a lazy device fed the
     * same seed experience identical physical histories.
     */
    static std::vector<pf::RouteSpec>
    drive(pf::Device &device, std::uint64_t seed)
    {
        pu::Rng rng(seed);
        std::vector<pf::RouteSpec> routes;
        for (int r = 0; r < 6; ++r) {
            routes.push_back(device.allocateRoute(
                "pool" + std::to_string(r), 400.0));
        }
        std::shared_ptr<pf::Design> resident;
        for (int step = 0; step < 60; ++step) {
            const auto action =
                static_cast<int>(rng.uniformInt(0, 3));
            if (action == 0) {
                auto design = std::make_shared<pf::Design>(
                    "d" + std::to_string(step));
                for (const pf::RouteSpec &route : routes) {
                    if (!rng.bernoulli(0.5)) {
                        continue;
                    }
                    if (rng.bernoulli(0.3)) {
                        design->setRouteToggling(
                            route,
                            0.125 * static_cast<double>(
                                        rng.uniformInt(1, 7)));
                    } else {
                        design->setRouteValue(route,
                                              rng.bernoulli(0.5));
                    }
                }
                if (design->configuredElements() == 0) {
                    design->setRouteValue(routes[0], true);
                }
                device.loadDesign(design);
                resident = std::move(design);
            } else if (action == 1) {
                device.wipe();
                resident.reset();
            } else if (action == 2 && resident != nullptr) {
                const std::size_t pick =
                    rng.uniformIndex(routes.size());
                resident->setRouteValue(routes[pick],
                                        rng.bernoulli(0.5));
            } else {
                const double dt =
                    0.25 * static_cast<double>(rng.uniformInt(1, 16));
                const double temp =
                    320.0 +
                    static_cast<double>(rng.uniformInt(0, 40));
                device.advanceAt(dt, temp);
            }
        }
        return routes;
    }

    static std::vector<double>
    observe(pf::Device &device, const pf::RouteSpec &spec)
    {
        pf::Route route = device.bindRoute(spec);
        return {route.delayPs(pp::Transition::Rising, 333.15),
                route.delayPs(pp::Transition::Falling, 333.15)};
    }
};

TEST_P(JournalInterleaving, FullObservationConvergesToEagerSet)
{
    pf::Device eager(deviceConfig(true));
    pf::Device lazy(deviceConfig(false));
    const std::vector<pf::RouteSpec> routes_e =
        drive(eager, GetParam());
    const std::vector<pf::RouteSpec> routes_l =
        drive(lazy, GetParam());

    // Full observation: bind and read every pool route on both.
    std::vector<double> delays_e;
    std::vector<double> delays_l;
    for (std::size_t r = 0; r < routes_e.size(); ++r) {
        for (const double d : observe(eager, routes_e[r])) {
            delays_e.push_back(d);
        }
        for (const double d : observe(lazy, routes_l[r])) {
            delays_l.push_back(d);
        }
    }
    EXPECT_EQ(delays_e, delays_l);
    EXPECT_EQ(lazy.journaledKeyCount(), 0u);

    // The materialised populations converge to the same sorted set.
    const std::vector<pf::ResourceId> ids_e = eager.materializedIds();
    const std::vector<pf::ResourceId> ids_l = lazy.materializedIds();
    ASSERT_EQ(ids_e.size(), ids_l.size());
    for (std::size_t i = 0; i < ids_e.size(); ++i) {
        EXPECT_EQ(ids_e[i].key(), ids_l[i].key());
    }
}

TEST_P(JournalInterleaving, ObservationOrderNeverChangesAnyDelay)
{
    // Replay the same interleaving several times, observing the pool
    // in different seeded shuffle orders; each route's delays must be
    // bit-identical however late (or early) its journal is consumed.
    const auto runWithOrder = [&](std::uint64_t shuffle_seed) {
        pf::Device device(deviceConfig(false));
        const std::vector<pf::RouteSpec> routes =
            drive(device, GetParam());
        std::vector<std::size_t> order(routes.size());
        for (std::size_t i = 0; i < order.size(); ++i) {
            order[i] = i;
        }
        if (shuffle_seed != 0) {
            pu::Rng shuffle(shuffle_seed);
            for (std::size_t i = order.size() - 1; i > 0; --i) {
                const std::size_t j = shuffle.uniformInt(0, i);
                std::swap(order[i], order[j]);
            }
        }
        std::vector<std::vector<double>> per_route(routes.size());
        for (const std::size_t r : order) {
            per_route[r] = observe(device, routes[r]);
        }
        return per_route;
    };
    const auto reference = runWithOrder(0);
    for (const std::uint64_t shuffle_seed : {11u, 12u, 13u, 14u}) {
        EXPECT_EQ(reference, runWithOrder(shuffle_seed))
            << "shuffle seed " << shuffle_seed;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JournalInterleaving,
                         ::testing::Values(5u, 29u, 4242u));
