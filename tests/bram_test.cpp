/**
 * @file
 * BRAM content-remanence battery (PR 10).
 *
 * The second resource class, with persistence semantics opposite the
 * aging channel's: contents survive power events and PCIe resets
 * (inside a per-block retention window) but are zeroed by any
 * (re)configuration and by provider scrub policy. Locks:
 *
 *  - the BramBlock state machine and its lazy retention resolution;
 *  - Device semantics: configuration zeroes, wipe alone preserves,
 *    design BRAM inits apply under bramRevision gating;
 *  - deterministic per-block retention and decay-noise draws (pure
 *    split streams — observation order and device twins agree);
 *  - instance power events: powerCycle accrues off-power and drops
 *    the configuration, pcieReset touches nothing;
 *  - platform scrub policies, including the unclean-teardown bypass
 *    of ZeroOnRelease;
 *  - snapshot round-trips at adversarial cut points (pending decay
 *    resolution, mid-campaign checkpoints, fault-injected resume);
 *  - the campaign-level scrub-policy ordering the ablation prices:
 *    none > zero-on-release > zero-on-rent;
 *  - satellites: the active-scrub lifecycle regressions and the
 *    Rng::uniformIndex / uniformInt empty-range guards.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cloud/instance.hpp"
#include "cloud/platform.hpp"
#include "core/presets.hpp"
#include "fabric/bram_block.hpp"
#include "fabric/design.hpp"
#include "fabric/device.hpp"
#include "fabric/route.hpp"
#include "mitigation/advisor.hpp"
#include "serve/campaign.hpp"
#include "util/fault.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/snapshot.hpp"

namespace pcl = pentimento::cloud;
namespace pco = pentimento::core;
namespace pf = pentimento::fabric;
namespace pm = pentimento::mitigation;
namespace pp = pentimento::phys;
namespace ps = pentimento::serve;
namespace pu = pentimento::util;

namespace {

constexpr std::uint32_t kDevTag = pu::snapshotTag('B', 'D', 'V', '!');

pf::ResourceId
bramId(std::uint16_t index)
{
    pf::ResourceId id;
    id.type = pf::ResourceType::Bram;
    id.index = index;
    return id;
}

std::string
tempPath(const std::string &leaf)
{
    return ::testing::TempDir() + leaf;
}

} // namespace

// ------------------------------------------------ block state machine

TEST(BramBlock, StateMachineTransitions)
{
    pf::BramBlock block;
    block.id_ = bramId(0);
    block.retention_limit_h = 1.0;
    EXPECT_EQ(block.state, pf::BramState::Unwritten);
    EXPECT_FALSE(block.resolveRetention());

    block.write(0x1234, 5.0);
    EXPECT_EQ(block.state, pf::BramState::Written);
    EXPECT_EQ(block.content, 0x1234u);
    EXPECT_EQ(block.written_at_h, 5.0);
    // No off-power exposure yet: resolution is a no-op.
    EXPECT_FALSE(block.resolveRetention());
    EXPECT_EQ(block.state, pf::BramState::Written);

    // Inside the retention window: survives as Retained.
    block.accrueOffPower(0.25);
    EXPECT_FALSE(block.resolveRetention());
    EXPECT_EQ(block.state, pf::BramState::Retained);
    EXPECT_EQ(block.content, 0x1234u);

    // Accumulated exposure exceeds the window: the caller owes the
    // block its cell-noise content.
    block.accrueOffPower(0.9);
    EXPECT_TRUE(block.resolveRetention());
    EXPECT_EQ(block.state, pf::BramState::Decayed);
    // Decayed content cannot decay again.
    EXPECT_FALSE(block.resolveRetention());
    block.accrueOffPower(10.0);
    EXPECT_FALSE(block.resolveRetention());
    EXPECT_EQ(block.state, pf::BramState::Decayed);

    block.zero();
    EXPECT_EQ(block.state, pf::BramState::Zeroed);
    EXPECT_EQ(block.content, 0u);
    // Zeroed content has nothing left to decay.
    block.accrueOffPower(10.0);
    EXPECT_FALSE(block.resolveRetention());
    EXPECT_EQ(block.state, pf::BramState::Zeroed);
}

TEST(BramBlock, StateNames)
{
    EXPECT_STREQ(pf::toString(pf::BramState::Unwritten), "unwritten");
    EXPECT_STREQ(pf::toString(pf::BramState::Written), "written");
    EXPECT_STREQ(pf::toString(pf::BramState::Retained), "retained");
    EXPECT_STREQ(pf::toString(pf::BramState::Decayed), "decayed");
    EXPECT_STREQ(pf::toString(pf::BramState::Zeroed), "zeroed");
}

// -------------------------------------------------- device semantics

TEST(BramDevice, ConfigurationZeroesWipeAlonePreserves)
{
    pf::Device device{pf::DeviceConfig{}};
    device.writeBram(bramId(0), 0xdeadbeefULL);
    device.writeBram(bramId(1), 0xfeedfaceULL);
    ASSERT_EQ(device.bramBlockCount(), 2u);

    // A wipe clears configuration; memory cells keep their charge.
    device.wipe();
    EXPECT_EQ(device.readBram(bramId(0)).state, pf::BramState::Written);
    EXPECT_EQ(device.readBram(bramId(0)).content, 0xdeadbeefULL);
    EXPECT_EQ(device.readBram(bramId(1)).content, 0xfeedfaceULL);

    // Configuring a bitstream zeroes every block.
    auto design = std::make_shared<pf::Design>("next_tenant");
    device.loadDesign(design);
    EXPECT_EQ(device.readBram(bramId(0)).state, pf::BramState::Zeroed);
    EXPECT_EQ(device.readBram(bramId(0)).content, 0u);
    EXPECT_EQ(device.readBram(bramId(1)).state, pf::BramState::Zeroed);
}

TEST(BramDevice, DesignInitsApplyUnderRevisionGating)
{
    pf::Device device{pf::DeviceConfig{}};
    auto design = std::make_shared<pf::Design>("with_inits");
    design->setBramInit(bramId(0), 0xaaaaULL);
    device.loadDesign(design);
    EXPECT_EQ(device.readBram(bramId(0)).state, pf::BramState::Written);
    EXPECT_EQ(device.readBram(bramId(0)).content, 0xaaaaULL);

    // Scribble on the live block, then re-load the unchanged design:
    // same (name, bramRevision) means no reconfiguration, so the
    // scribble survives (this is what makes checkpoint-resume's
    // re-load of the rebuilt design BRAM-neutral).
    device.writeBram(bramId(1), 0xbbbbULL);
    device.loadDesign(design);
    EXPECT_EQ(device.readBram(bramId(1)).content, 0xbbbbULL);

    // Mutating the inits bumps bramRevision: the next load of the
    // *same* design object is a real reconfiguration again.
    design->setBramInit(bramId(2), 0xccccULL);
    device.loadDesign(design);
    EXPECT_EQ(device.readBram(bramId(0)).content, 0xaaaaULL);
    EXPECT_EQ(device.readBram(bramId(1)).state, pf::BramState::Zeroed);
    EXPECT_EQ(device.readBram(bramId(2)).content, 0xccccULL);

    // A wipe clears the applied-configuration tracking: any load
    // after it reconfigures even though (name, revision) match.
    device.writeBram(bramId(3), 0xddddULL);
    device.wipe();
    EXPECT_EQ(device.findBramBlock(bramId(3))->content, 0xddddULL);
    device.loadDesign(design);
    EXPECT_EQ(device.readBram(bramId(3)).state, pf::BramState::Zeroed);
    EXPECT_EQ(device.readBram(bramId(0)).content, 0xaaaaULL);
}

TEST(BramDevice, RetentionDrawsAreDeterministicPerSeed)
{
    pf::DeviceConfig config;
    config.seed = 4242;
    pf::Device a(config);
    pf::Device b(config);
    a.writeBram(bramId(0), 7);
    b.writeBram(bramId(0), 7);
    ASSERT_NE(a.findBramBlock(bramId(0)), nullptr);
    EXPECT_GT(a.findBramBlock(bramId(0))->retention_limit_h, 0.0);
    EXPECT_EQ(a.findBramBlock(bramId(0))->retention_limit_h,
              b.findBramBlock(bramId(0))->retention_limit_h);

    // Far beyond any plausible draw from the default lognormal: both
    // twins decay, and their cell-noise contents agree (pure per-id
    // draw from the device seed), while differing from the data.
    a.accrueBramOffPower(1.0e6);
    b.accrueBramOffPower(1.0e6);
    const pf::BramBlock &ra = a.readBram(bramId(0));
    const pf::BramBlock &rb = b.readBram(bramId(0));
    EXPECT_EQ(ra.state, pf::BramState::Decayed);
    EXPECT_EQ(rb.state, pf::BramState::Decayed);
    EXPECT_EQ(ra.content, rb.content);
    EXPECT_NE(ra.content, 7u);

    // A different silicon seed re-rolls the per-block draws.
    config.seed = 4243;
    pf::Device c(config);
    c.writeBram(bramId(0), 7);
    EXPECT_NE(c.findBramBlock(bramId(0))->retention_limit_h,
              a.findBramBlock(bramId(0))->retention_limit_h);
}

// ------------------------------------------------ instance semantics

TEST(BramInstance, PowerCycleDropsConfigurationAndAgesContents)
{
    pcl::PlatformConfig config = pco::awsF1Region(11);
    config.fleet_size = 1;
    // Retention long enough that the short outage below never decays.
    config.device_template.bram_retention_median_h = 1000.0;
    config.device_template.bram_retention_sigma = 0.1;
    pcl::CloudPlatform platform(config);
    const auto id = platform.rent();
    pcl::FpgaInstance &inst = platform.instance(*id);
    pf::Device &device = inst.device();

    auto design = std::make_shared<pf::Design>("tenant");
    ASSERT_TRUE(platform.loadDesign(*id, design).empty());
    device.writeBram(bramId(0), 0xabcdULL);

    inst.powerCycle(0.5);
    EXPECT_EQ(inst.powerCycles(), 1u);
    // Configuration is SRAM: gone. Contents: retained (short outage).
    EXPECT_EQ(device.currentDesign(), nullptr);
    const pf::BramBlock &block = device.readBram(bramId(0));
    EXPECT_EQ(block.state, pf::BramState::Retained);
    EXPECT_EQ(block.content, 0xabcdULL);
    EXPECT_EQ(block.off_power_h, 0.5);
}

TEST(BramInstance, LongOutageDecaysContents)
{
    pcl::PlatformConfig config = pco::awsF1Region(12);
    config.fleet_size = 1;
    config.device_template.bram_retention_median_h = 1.0e-4;
    config.device_template.bram_retention_sigma = 0.01;
    pcl::CloudPlatform platform(config);
    const auto id = platform.rent();
    pcl::FpgaInstance &inst = platform.instance(*id);
    inst.device().writeBram(bramId(0), 0x5555ULL);
    inst.powerCycle(10.0);
    const pf::BramBlock &block = inst.device().readBram(bramId(0));
    EXPECT_EQ(block.state, pf::BramState::Decayed);
    EXPECT_NE(block.content, 0x5555ULL);
}

TEST(BramInstance, PcieResetTouchesNothing)
{
    pcl::PlatformConfig config = pco::awsF1Region(13);
    config.fleet_size = 1;
    pcl::CloudPlatform platform(config);
    const auto id = platform.rent();
    pcl::FpgaInstance &inst = platform.instance(*id);
    auto design = std::make_shared<pf::Design>("tenant");
    ASSERT_TRUE(platform.loadDesign(*id, design).empty());
    inst.device().writeBram(bramId(0), 0x9999ULL);

    inst.pcieReset();
    EXPECT_EQ(inst.pcieResets(), 1u);
    // The headline observation of the data-persistence literature:
    // configuration AND contents survive a PCIe hot reset.
    EXPECT_NE(inst.device().currentDesign(), nullptr);
    const pf::BramBlock &block = inst.device().readBram(bramId(0));
    EXPECT_EQ(block.state, pf::BramState::Written);
    EXPECT_EQ(block.content, 0x9999ULL);
    EXPECT_EQ(block.off_power_h, 0.0);
}

// ------------------------------------------------- platform policies

TEST(BramPlatform, ZeroOnReleaseScrubsCleanReleasesOnly)
{
    pcl::PlatformConfig config = pco::awsF1Region(21);
    config.fleet_size = 2;
    config.bram_scrub = pcl::BramScrubPolicy::ZeroOnRelease;
    pcl::CloudPlatform platform(config);

    const auto a = platform.rent();
    platform.instance(*a).device().writeBram(bramId(0), 0x1111ULL);
    platform.release(*a);
    EXPECT_EQ(platform.instance(*a).device().readBram(bramId(0)).state,
              pf::BramState::Zeroed);
    EXPECT_EQ(platform.bramScrubOps(), 1u);

    // An unclean teardown bypasses the release pipeline — and with it
    // the scrub. The content merely ages against retention.
    const auto b = platform.rent();
    pf::Device &dev_b = platform.instance(*b).device();
    dev_b.writeBram(bramId(0), 0x2222ULL);
    platform.releaseUnclean(*b, 0.001);
    EXPECT_EQ(platform.bramScrubOps(), 1u);
    const pf::BramBlock &block = dev_b.readBram(bramId(0));
    EXPECT_NE(block.state, pf::BramState::Zeroed);
    EXPECT_EQ(block.off_power_h, 0.001);
}

TEST(BramPlatform, ZeroOnRentScrubsAtHandOver)
{
    pcl::PlatformConfig config = pco::awsF1Region(22);
    config.fleet_size = 1;
    config.bram_scrub = pcl::BramScrubPolicy::ZeroOnRent;
    pcl::CloudPlatform platform(config);

    const auto a = platform.rent();
    EXPECT_EQ(platform.bramScrubOps(), 1u);
    pf::Device &device = platform.instance(*a).device();
    device.writeBram(bramId(0), 0x3333ULL);
    platform.releaseUnclean(*a, 0.0); // bypasses nothing: no release scrub
    EXPECT_EQ(device.readBram(bramId(0)).content, 0x3333ULL);

    // The next tenant's hand-over catches what the teardown left.
    const auto b = platform.rent();
    EXPECT_EQ(platform.bramScrubOps(), 2u);
    EXPECT_EQ(device.readBram(bramId(0)).state, pf::BramState::Zeroed);
}

// --------------------------------- active-scrub lifecycle regressions

namespace {

/**
 * One rent→burn→release→pool→re-rent→measure lifecycle under
 * active_scrub. pool_hours = 0 reproduces the zero-elapsed re-rent
 * (released and re-acquired before the pool ever advances).
 */
double
scrubLifecycleDelay(bool eager, double pool_hours, bool active_scrub)
{
    pcl::PlatformConfig config = pco::awsF1Region(31);
    config.fleet_size = 1;
    config.active_scrub = active_scrub;
    config.device_template.eager_materialisation = eager;
    pcl::CloudPlatform platform(config);
    const auto id = platform.rent();
    pf::Device &device = platform.instance(*id).device();
    const pf::RouteSpec net = device.allocateRoute("net", 4000.0);
    auto victim = std::make_shared<pf::Design>("victim");
    victim->setRouteValue(net, true);
    if (!platform.loadDesign(*id, victim).empty()) {
        ADD_FAILURE() << "victim design failed DRC";
        return 0.0;
    }
    platform.advanceHours(50.0);
    platform.release(*id); // active_scrub loads the pooled scrub design
    if (pool_hours > 0.0) {
        platform.advanceHours(pool_hours);
    }
    // Re-rent: rent()'s wipe() must close the scrub design's journal
    // runs correctly before the attacker observes anything.
    const auto again = platform.rent();
    if (!again.has_value()) {
        ADD_FAILURE() << "re-rent failed";
        return 0.0;
    }
    platform.advanceHours(1.0);
    pf::Route route = device.bindRoute(net);
    return route.delayPs(pp::Transition::Falling, 333.15);
}

} // namespace

TEST(ActiveScrubLifecycle, ZeroElapsedReRentAccruesNoScrubStress)
{
    // Released with active_scrub and re-rented before the pool ever
    // advances: the scrub design was resident for zero hours, so the
    // measured delay must match a platform that never scrubbed.
    const double scrubbed = scrubLifecycleDelay(false, 0.0, true);
    const double idle = scrubLifecycleDelay(false, 0.0, false);
    EXPECT_EQ(scrubbed, idle);
}

TEST(ActiveScrubLifecycle, EagerAndLazyAgreeThroughPooledScrub)
{
    // The pooled scrub design's activity runs live in the journal on
    // the lazy path and as materialised flips on the eager path;
    // rent()'s wipe must close them identically.
    for (const double pool_hours : {0.0, 24.0}) {
        const double lazy =
            scrubLifecycleDelay(false, pool_hours, true);
        const double eager =
            scrubLifecycleDelay(true, pool_hours, true);
        EXPECT_EQ(lazy, eager) << "pooled for " << pool_hours << " h";
    }
}

// ------------------------------------------------- rng empty ranges

TEST(RngGuards, UniformIndexFatalsOnEmptyContainer)
{
    pu::Rng rng(1);
    const std::vector<int> empty;
    EXPECT_THROW((void)rng.uniformIndex(empty.size()), pu::FatalError);
    // The guard uniformInt cannot provide: an empty container's
    // size()-1 wraps to the legitimate full-range request.
    EXPECT_NO_THROW((void)rng.uniformInt(0, ~0ULL));
    EXPECT_THROW((void)rng.uniformInt(5, 3), pu::FatalError);
    // Draw compatibility: switching a call site from uniformInt(0,
    // n-1) to uniformIndex(n) must not move the stream.
    pu::Rng a(9), b(9);
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(a.uniformInt(0, 12), b.uniformIndex(13));
    }
}

// ------------------------------------------------ snapshot round trip

TEST(BramSnapshot, RoundTripsPendingAndResolvedStatesBitIdentically)
{
    pf::DeviceConfig config;
    config.seed = 616;
    config.bram_retention_median_h = 0.5;
    pf::Device straight(config);

    // Adversarial mix at the cut: Zeroed blocks, a Written block with
    // accrued-but-unresolved off-power (its decay draw still pending),
    // and a block already resolved at readback.
    straight.writeBram(bramId(0), 0xa0a0ULL);
    straight.writeBram(bramId(1), 0xb1b1ULL);
    straight.zeroBram();
    straight.writeBram(bramId(2), 0xc2c2ULL);
    straight.writeBram(bramId(3), 0xd3d3ULL);
    straight.accrueBramOffPower(0.7);
    (void)straight.readBram(bramId(3)); // resolved; b2 stays pending

    pu::SnapshotWriter writer;
    writer.beginChunk(kDevTag);
    straight.saveState(writer);
    writer.endChunk();
    pu::Expected<pu::SnapshotReader> made =
        pu::SnapshotReader::fromBuffer(writer.finish());
    ASSERT_TRUE(made.ok()) << made.error();

    pf::Device restored(config);
    ASSERT_TRUE(made.value().enterChunk(kDevTag));
    const pu::Expected<void> result =
        restored.restoreState(made.value());
    ASSERT_TRUE(result.ok()) << result.error();
    ASSERT_EQ(restored.bramBlockCount(), straight.bramBlockCount());

    for (std::uint16_t i = 0; i < 4; ++i) {
        const pf::BramBlock *s = straight.findBramBlock(bramId(i));
        const pf::BramBlock *r = restored.findBramBlock(bramId(i));
        ASSERT_NE(s, nullptr);
        ASSERT_NE(r, nullptr);
        EXPECT_EQ(s->state, r->state) << "block " << i;
        EXPECT_EQ(s->content, r->content) << "block " << i;
        EXPECT_EQ(s->written_at_h, r->written_at_h) << "block " << i;
        EXPECT_EQ(s->off_power_h, r->off_power_h) << "block " << i;
        EXPECT_EQ(s->retention_limit_h, r->retention_limit_h)
            << "block " << i;
    }
    // The pending block resolves identically on both twins.
    const pf::BramBlock &sp = straight.readBram(bramId(2));
    const pf::BramBlock &rp = restored.readBram(bramId(2));
    EXPECT_EQ(sp.state, rp.state);
    EXPECT_EQ(sp.content, rp.content);
}

// -------------------------------------------------- campaign channel

namespace {

ps::FleetScanConfig
smallCampaign(pcl::BramScrubPolicy policy)
{
    ps::FleetScanConfig config;
    config.fleet = 12;
    config.days = 60;
    config.seed = 505;
    config.routes_per_tenant = 4;
    config.max_measured = 4;
    config.bram_channel = true;
    config.bram_scrub = policy;
    return config;
}

void
expectSameResult(const ps::FleetScanResult &a,
                 const ps::FleetScanResult &b)
{
    EXPECT_EQ(a.tenancies, b.tenancies);
    EXPECT_EQ(a.simulated_h, b.simulated_h);
    ASSERT_EQ(a.boards.size(), b.boards.size());
    for (std::size_t i = 0; i < a.boards.size(); ++i) {
        EXPECT_EQ(a.boards[i].board, b.boards[i].board);
        EXPECT_EQ(a.boards[i].bits, b.boards[i].bits);
        EXPECT_EQ(a.boards[i].correct, b.boards[i].correct);
        EXPECT_EQ(a.boards[i].accuracy, b.boards[i].accuracy);
    }
    ASSERT_EQ(a.bram_boards.size(), b.bram_boards.size());
    for (std::size_t i = 0; i < a.bram_boards.size(); ++i) {
        EXPECT_EQ(a.bram_boards[i].board, b.bram_boards[i].board);
        EXPECT_EQ(a.bram_boards[i].blocks, b.bram_boards[i].blocks);
        EXPECT_EQ(a.bram_boards[i].recovered,
                  b.bram_boards[i].recovered);
        EXPECT_EQ(a.bram_boards[i].decayed, b.bram_boards[i].decayed);
        EXPECT_EQ(a.bram_boards[i].zeroed, b.bram_boards[i].zeroed);
        EXPECT_EQ(a.bram_boards[i].unclean, b.bram_boards[i].unclean);
    }
    EXPECT_EQ(a.bram_scrub_ops, b.bram_scrub_ops);
}

double
campaignRecovery(const ps::FleetScanResult &result)
{
    std::uint64_t blocks = 0;
    std::uint64_t recovered = 0;
    for (const ps::FleetScanBramScore &s : result.bram_boards) {
        blocks += s.blocks;
        recovered += s.recovered;
    }
    return blocks > 0 ? static_cast<double>(recovered) /
                            static_cast<double>(blocks)
                      : 0.0;
}

} // namespace

TEST(BramCampaign, ChannelIsNeutralForTheAgingScores)
{
    ps::FleetScanConfig with = smallCampaign(pcl::BramScrubPolicy::None);
    ps::FleetScanConfig without = with;
    without.bram_channel = false;
    const auto a = ps::runFleetScan(with);
    const auto b = ps::runFleetScan(without);
    ASSERT_TRUE(a.ok()) << a.error();
    ASSERT_TRUE(b.ok()) << b.error();
    // The interconnect channel must not move by a single draw.
    ASSERT_EQ(a.value().boards.size(), b.value().boards.size());
    for (std::size_t i = 0; i < a.value().boards.size(); ++i) {
        EXPECT_EQ(a.value().boards[i].board, b.value().boards[i].board);
        EXPECT_EQ(a.value().boards[i].correct,
                  b.value().boards[i].correct);
        EXPECT_EQ(a.value().boards[i].accuracy,
                  b.value().boards[i].accuracy);
    }
    EXPECT_TRUE(b.value().bram_boards.empty());
    EXPECT_FALSE(a.value().bram_boards.empty());
}

TEST(BramCampaign, ScrubPolicyOrderingIsStrict)
{
    // The acceptance ordering the ablation prices: content rides along
    // under no scrub, the release-pipeline scrub leaves the unclean-
    // teardown window open, and scrub-at-hand-over closes everything.
    // Same scenario as bench/ablation_bram_scrub, smaller horizon.
    ps::FleetScanConfig config;
    config.fleet = 24;
    config.days = 180;
    config.seed = 777;
    config.bram_channel = true;

    config.bram_scrub = pcl::BramScrubPolicy::None;
    const auto none = ps::runFleetScan(config);
    config.bram_scrub = pcl::BramScrubPolicy::ZeroOnRelease;
    const auto on_release = ps::runFleetScan(config);
    config.bram_scrub = pcl::BramScrubPolicy::ZeroOnRent;
    const auto on_rent = ps::runFleetScan(config);
    ASSERT_TRUE(none.ok() && on_release.ok() && on_rent.ok());

    const double r_none = campaignRecovery(none.value());
    const double r_release = campaignRecovery(on_release.value());
    const double r_rent = campaignRecovery(on_rent.value());
    EXPECT_GT(r_none, r_release);
    EXPECT_GT(r_release, r_rent);
    EXPECT_EQ(r_rent, 0.0);
    // The cost side orders the other way round: hand-over scrubbing
    // pays on every rental, pipeline scrubbing only on clean releases.
    EXPECT_GT(on_rent.value().bram_scrub_ops,
              on_release.value().bram_scrub_ops);
    EXPECT_EQ(none.value().bram_scrub_ops, 0u);
}

TEST(BramCampaign, CheckpointResumeReproducesTheBramReadout)
{
    const std::string path = tempPath("bram_campaign.ckpt");
    std::remove(path.c_str());
    std::remove((path + ".prev").c_str());

    const auto straight =
        ps::runFleetScan(smallCampaign(pcl::BramScrubPolicy::None));
    ASSERT_TRUE(straight.ok()) << straight.error();

    // Adversarial cut: halt mid-campaign with tenancies in flight —
    // written-but-unread blocks, unclean fates decided but not yet
    // executed, and pending retention draws all live in the snapshot.
    ps::FleetScanConfig halted =
        smallCampaign(pcl::BramScrubPolicy::None);
    halted.checkpoint_path = path;
    halted.checkpoint_every_days = 7;
    halted.halt_at_day = 31;
    const auto first = ps::runFleetScan(halted);
    ASSERT_TRUE(first.ok()) << first.error();
    ASSERT_EQ(first.value().halted_after_day, 31);

    ps::FleetScanConfig resumed =
        smallCampaign(pcl::BramScrubPolicy::None);
    resumed.checkpoint_path = path;
    resumed.resume = ps::ResumeMode::Require;
    const auto second = ps::runFleetScan(resumed);
    ASSERT_TRUE(second.ok()) << second.error();
    EXPECT_EQ(second.value().resumed_day, 31);
    expectSameResult(straight.value(), second.value());
    std::remove(path.c_str());
    std::remove((path + ".prev").c_str());
}

TEST(BramCampaign, FaultInjectedResumeStillReproducesTheResult)
{
    const std::string path = tempPath("bram_campaign_fault.ckpt");
    std::remove(path.c_str());
    std::remove((path + ".prev").c_str());

    const auto straight =
        ps::runFleetScan(smallCampaign(pcl::BramScrubPolicy::None));
    ASSERT_TRUE(straight.ok()) << straight.error();

    ps::FleetScanConfig halted =
        smallCampaign(pcl::BramScrubPolicy::None);
    halted.checkpoint_path = path;
    halted.checkpoint_every_days = 7;
    halted.halt_at_day = 31;
    ASSERT_TRUE(ps::runFleetScan(halted).ok());

    // Corrupt the primary generation on load: resume must fall back
    // to .prev (an even more adversarial cut, three weeks earlier)
    // and still reproduce the identical result.
    const pu::Expected<pu::fault::Schedule> schedule =
        pu::fault::parseSchedule(
            "seed=1;snapshot.load.corrupt_crc:max=1");
    ASSERT_TRUE(schedule.ok()) << schedule.error();
    pu::fault::arm(schedule.value());
    ps::FleetScanConfig resumed =
        smallCampaign(pcl::BramScrubPolicy::None);
    resumed.checkpoint_path = path;
    resumed.resume = ps::ResumeMode::Require;
    const auto second = ps::runFleetScan(resumed);
    pu::fault::disarm();
    ASSERT_TRUE(second.ok()) << second.error();
    EXPECT_EQ(second.value().resumed_from, path + ".prev");
    expectSameResult(straight.value(), second.value());
    std::remove(path.c_str());
    std::remove((path + ".prev").c_str());
}

// ------------------------------------------------------ advisor

TEST(ScrubPolicyAdvisor, RanksByBenefitThenCost)
{
    std::vector<pm::ScrubPolicyOutcome> outcomes = {
        {"none", 0.8, 0},
        {"zero-on-release", 0.2, 90},
        {"zero-on-rent", 0.0, 140},
    };
    const std::vector<pm::ScrubPolicyAdvice> ranked =
        pm::ScrubPolicyAdvisor().rank(outcomes, "none");
    ASSERT_EQ(ranked.size(), 3u);
    EXPECT_EQ(ranked[0].name, "zero-on-rent");
    EXPECT_EQ(ranked[0].rank, 1);
    EXPECT_DOUBLE_EQ(ranked[0].benefit, 0.8);
    EXPECT_DOUBLE_EQ(ranked[0].cost_per_benefit, 140.0 / 0.8);
    EXPECT_EQ(ranked[1].name, "zero-on-release");
    EXPECT_DOUBLE_EQ(ranked[1].benefit, 0.6000000000000001);
    EXPECT_EQ(ranked[2].name, "none");
    EXPECT_DOUBLE_EQ(ranked[2].benefit, 0.0);
    EXPECT_TRUE(std::isinf(ranked[2].cost_per_benefit));

    EXPECT_THROW(pm::ScrubPolicyAdvisor().rank(outcomes, "missing"),
                 pu::FatalError);
}
