/**
 * @file
 * Tests for the core module: ∆ps series analysis, presets, experiment
 * plumbing and both threat-model classifiers (on synthetic data; the
 * end-to-end miniature experiments live in integration_test.cpp).
 */

#include <gtest/gtest.h>

#include "core/classifier.hpp"
#include "core/delta_series.hpp"
#include "core/experiment.hpp"
#include "core/presets.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace pc = pentimento::core;
namespace pu = pentimento::util;

namespace {

pc::DeltaSeries
makeSeries(const std::vector<double> &values, double dt = 1.0)
{
    pc::DeltaSeries series;
    for (std::size_t i = 0; i < values.size(); ++i) {
        series.addPoint(static_cast<double>(i) * dt, values[i]);
    }
    return series;
}

/** Synthetic route record with a linear ∆ps ramp plus noise. */
pc::RouteRecord
syntheticRecord(double slope_per_h, double noise_sd, bool truth,
                double target_ps, std::uint64_t seed, int points = 40)
{
    pu::Rng rng(seed);
    pc::RouteRecord record;
    record.name = "synthetic";
    record.target_ps = target_ps;
    record.burn_value = truth;
    for (int i = 0; i < points; ++i) {
        record.series.addPoint(i, slope_per_h * i +
                                      rng.gaussian(0.0, noise_sd));
    }
    return record;
}

} // namespace

// -------------------------------------------------------- DeltaSeries

TEST(DeltaSeries, AddPointEnforcesMonotoneHours)
{
    pc::DeltaSeries series;
    series.addPoint(0.0, 1.0);
    series.addPoint(1.0, 2.0);
    EXPECT_THROW(series.addPoint(0.5, 3.0), pu::FatalError);
}

TEST(DeltaSeries, CenteredAtFirst)
{
    const pc::DeltaSeries series = makeSeries({5.0, 6.0, 7.5});
    const pc::DeltaSeries centered = series.centeredAtFirst();
    EXPECT_DOUBLE_EQ(centered.values()[0], 0.0);
    EXPECT_DOUBLE_EQ(centered.values()[2], 2.5);
    EXPECT_EQ(centered.hours(), series.hours());
}

TEST(DeltaSeries, CenteredEmptyIsEmpty)
{
    const pc::DeltaSeries series;
    EXPECT_TRUE(series.centeredAtFirst().empty());
}

TEST(DeltaSeries, SlopeOfLinearRamp)
{
    std::vector<double> values;
    for (int i = 0; i < 20; ++i) {
        values.push_back(0.25 * i);
    }
    EXPECT_NEAR(makeSeries(values).slopePerHour(), 0.25, 1e-12);
}

TEST(DeltaSeries, SlopeOfShortSeriesIsZero)
{
    EXPECT_DOUBLE_EQ(makeSeries({1.0}).slopePerHour(), 0.0);
}

TEST(DeltaSeries, NetDriftOfRamp)
{
    std::vector<double> values;
    for (int i = 0; i < 30; ++i) {
        values.push_back(0.1 * i);
    }
    EXPECT_NEAR(makeSeries(values).netDriftPs(5.0), 2.9, 0.05);
}

TEST(DeltaSeries, MeanBetweenHours)
{
    const pc::DeltaSeries series = makeSeries({1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(series.meanBetweenHours(1.0, 2.0), 2.5);
    EXPECT_DOUBLE_EQ(series.meanBetweenHours(0.0, 3.0), 2.5);
}

TEST(DeltaSeries, TailMean)
{
    const pc::DeltaSeries series = makeSeries({1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(series.tailMean(2), 3.5);
    EXPECT_DOUBLE_EQ(series.tailMean(10), 2.5); // clamps to size
}

TEST(DeltaSeries, ResidualSdTracksNoise)
{
    pu::Rng rng(3);
    std::vector<double> values;
    for (int i = 0; i < 200; ++i) {
        values.push_back(rng.gaussian(0.0, 0.5));
    }
    const double sd = makeSeries(values).residualSd(20.0);
    EXPECT_NEAR(sd, 0.5, 0.12);
}

TEST(DeltaSeries, SmoothedShortSeriesPassesThrough)
{
    const pc::DeltaSeries series = makeSeries({1.0, 2.0});
    EXPECT_EQ(series.smoothed(), series.values());
}

// ------------------------------------------------------------ presets

TEST(Presets, Zcu102IsFactoryNew)
{
    const auto config = pc::zcu102New();
    EXPECT_EQ(config.family, "xczu9eg");
    EXPECT_DOUBLE_EQ(config.service_age_h, 0.0);
}

TEST(Presets, F1RegionMatchesPaperSetup)
{
    const auto config = pc::awsF1Region();
    EXPECT_EQ(config.region, "eu-west-2");
    EXPECT_DOUBLE_EQ(config.max_power_w, 85.0);
    EXPECT_GT(config.min_service_age_h, 10000.0);
    EXPECT_EQ(config.policy,
              pentimento::cloud::AllocationPolicy::MostRecentlyReleased);
}

TEST(Presets, PaperRouteGroups)
{
    const auto groups = pc::paperRouteGroups();
    ASSERT_EQ(groups.size(), 4u);
    EXPECT_DOUBLE_EQ(groups[0].target_ps, 1000.0);
    EXPECT_DOUBLE_EQ(groups[3].target_ps, 10000.0);
    for (const auto &g : groups) {
        EXPECT_EQ(g.count, 16);
    }
}

// -------------------------------------------------- ExperimentResult

TEST(ExperimentResult, MeasurementFraction)
{
    pc::ExperimentResult result;
    result.condition_hours = 1.0;     // 3600 s
    result.measure_seconds = 36.0;    // ~1%
    result.sweeps = 2;
    EXPECT_NEAR(result.measurementFraction(), 36.0 / 3636.0, 1e-12);
    EXPECT_DOUBLE_EQ(result.secondsPerSweep(), 18.0);
}

TEST(ExperimentResult, EmptyFractionIsZero)
{
    const pc::ExperimentResult result;
    EXPECT_DOUBLE_EQ(result.measurementFraction(), 0.0);
    EXPECT_DOUBLE_EQ(result.secondsPerSweep(), 0.0);
}

TEST(ExperimentResult, GroupIndices)
{
    pc::ExperimentResult result;
    for (int i = 0; i < 6; ++i) {
        pc::RouteRecord record;
        record.target_ps = (i % 2 == 0) ? 1000.0 : 2000.0;
        result.routes.push_back(record);
    }
    EXPECT_EQ(result.groupIndices(1000.0),
              (std::vector<std::size_t>{0, 2, 4}));
    EXPECT_EQ(result.groupIndices(2000.0),
              (std::vector<std::size_t>{1, 3, 5}));
    EXPECT_TRUE(result.groupIndices(500.0).empty());
}

// ----------------------------------------------------- TM1 classifier

TEST(Tm1Classifier, PositiveDriftMeansOne)
{
    const pc::ThreatModel1Classifier classifier;
    const auto up =
        classifier.classifyRoute(syntheticRecord(0.01, 0.05, true, 1000,
                                                 1));
    const auto down = classifier.classifyRoute(
        syntheticRecord(-0.01, 0.05, false, 1000, 2));
    EXPECT_TRUE(up.value);
    EXPECT_FALSE(down.value);
}

TEST(Tm1Classifier, ConfidenceGrowsWithSignal)
{
    const pc::ThreatModel1Classifier classifier;
    const auto strong = classifier.classifyRoute(
        syntheticRecord(0.05, 0.02, true, 1000, 3));
    const auto weak = classifier.classifyRoute(
        syntheticRecord(0.001, 0.2, true, 1000, 3));
    EXPECT_GT(strong.confidence, weak.confidence);
    EXPECT_GE(strong.confidence, 0.9);
}

TEST(Tm1Classifier, ScoresAgainstGroundTruth)
{
    pc::ExperimentResult result;
    result.routes.push_back(syntheticRecord(0.02, 0.02, true, 1000, 4));
    result.routes.push_back(
        syntheticRecord(-0.02, 0.02, false, 1000, 5));
    result.routes.push_back(
        syntheticRecord(0.02, 0.02, false, 1000, 6)); // mislabeled
    const auto report =
        pc::ThreatModel1Classifier().classify(result);
    EXPECT_EQ(report.correct, 2u);
    EXPECT_NEAR(report.accuracy, 2.0 / 3.0, 1e-12);
}

TEST(Tm1Classifier, BadBandwidthFatal)
{
    EXPECT_THROW(pc::ThreatModel1Classifier(0.0), pu::FatalError);
}

TEST(Tm1Classifier, ScoreArityMismatchFatal)
{
    pc::ExperimentResult result;
    result.routes.push_back(syntheticRecord(0.0, 0.1, false, 1000, 7));
    EXPECT_THROW(pc::score({}, result), pu::FatalError);
}

// ----------------------------------------------------- TM2 classifier

TEST(Tm2Classifier, SeparatesTwoClusters)
{
    pc::ExperimentResult result;
    for (int i = 0; i < 8; ++i) {
        // Burn-1 routes recover (negative slope); burn-0 stay flat.
        const bool was_one = i % 2 == 0;
        result.routes.push_back(syntheticRecord(
            was_one ? -0.02 : 0.0, 0.01, was_one, 1000, 100 + i));
    }
    const auto report = pc::ThreatModel2Classifier().classify(result);
    EXPECT_DOUBLE_EQ(report.accuracy, 1.0);
}

TEST(Tm2Classifier, AllFlatMeansAllZero)
{
    pc::ExperimentResult result;
    for (int i = 0; i < 8; ++i) {
        result.routes.push_back(
            syntheticRecord(0.0, 0.01, false, 1000, 200 + i));
    }
    const auto report = pc::ThreatModel2Classifier().classify(result);
    EXPECT_DOUBLE_EQ(report.accuracy, 1.0);
}

TEST(Tm2Classifier, AllRecoveringMeansAllOne)
{
    pc::ExperimentResult result;
    for (int i = 0; i < 8; ++i) {
        result.routes.push_back(
            syntheticRecord(-0.05, 0.005, true, 1000, 300 + i));
    }
    const auto report = pc::ThreatModel2Classifier().classify(result);
    EXPECT_DOUBLE_EQ(report.accuracy, 1.0);
}

TEST(Tm2Classifier, GroupsClassifiedIndependently)
{
    pc::ExperimentResult result;
    // Long routes: strong separation. Short routes: flat zeros.
    for (int i = 0; i < 6; ++i) {
        const bool was_one = i < 3;
        result.routes.push_back(syntheticRecord(
            was_one ? -0.2 : 0.0, 0.02, was_one, 10000, 400 + i));
    }
    for (int i = 0; i < 6; ++i) {
        result.routes.push_back(
            syntheticRecord(0.0, 0.02, false, 1000, 500 + i));
    }
    const auto report = pc::ThreatModel2Classifier().classify(result);
    EXPECT_DOUBLE_EQ(report.accuracy, 1.0);
}

TEST(Tm2Classifier, EmptyResultEmptyReport)
{
    const auto report =
        pc::ThreatModel2Classifier().classify(pc::ExperimentResult{});
    EXPECT_TRUE(report.bits.empty());
}

TEST(Tm2Classifier, StatisticNormalisedByLength)
{
    const auto a = syntheticRecord(-0.02, 0.0, true, 1000, 600);
    const auto b = syntheticRecord(-0.04, 0.0, true, 2000, 600);
    EXPECT_NEAR(pc::ThreatModel2Classifier::statistic(a),
                pc::ThreatModel2Classifier::statistic(b), 1e-6);
}

// ----------------------------------------------------- config checks

TEST(ExperimentConfig, BadRouteGroupIsFatal)
{
    pc::Experiment1Config config;
    config.groups = {{-1.0, 4}};
    config.burn_hours = 1.0;
    config.recovery_hours = 0.0;
    EXPECT_THROW(pc::runExperiment1(config), pu::FatalError);
}

TEST(ExperimentConfig, EmptyGroupsFatal)
{
    pc::Experiment1Config config;
    config.groups = {};
    EXPECT_THROW(pc::runExperiment1(config), pu::FatalError);
}
