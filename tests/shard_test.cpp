/**
 * @file
 * serve/shard: partition invariance, merge contract, retry timing.
 *
 * The supervisor's whole correctness story rests on one invariant:
 * running the fleet-scan engine per shard and concatenating board
 * scores in shard order is byte-identical to an unsharded run. This
 * suite locks that invariant *in process* (no worker processes, so it
 * runs everywhere fast and under sanitizers), plus the merge's
 * divergence refusal and the pure-function retry-delay contracts the
 * chaos harness replays against. Process-level supervision — spawn,
 * kill -9, stall, resume — is exercised end-to-end by
 * tests/shard_chaos_test.sh.
 */

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/campaign.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/shard.hpp"

namespace ps = pentimento::serve;
namespace pu = pentimento::util;

namespace {

/** Small but non-trivial scenario: several boards, reuse, skips. */
ps::FleetScanConfig
scanConfig()
{
    ps::FleetScanConfig config;
    config.fleet = 8;
    config.days = 45;
    config.seed = 1717;
    config.routes_per_tenant = 2;
    config.max_measured = 4;
    return config;
}

/** Wire bytes of a result — the strongest equality we can assert. */
std::vector<std::uint8_t>
resultBytes(const ps::FleetScanResult &result)
{
    return ps::encodeFleetScanResult(1, result);
}

} // namespace

// -------------------------------------------- partition invariance

TEST(ShardEquivalence, AnyShardCountMergesByteIdentical)
{
    const pu::Expected<ps::FleetScanResult> unsharded =
        ps::runFleetScan(scanConfig());
    ASSERT_TRUE(unsharded.ok()) << unsharded.error();
    ASSERT_GT(unsharded.value().boards.size(), 1u)
        << "scenario too small to exercise partitioning";
    const std::vector<std::uint8_t> want =
        resultBytes(unsharded.value());

    for (const std::uint32_t shard_count : {1u, 2u, 3u, 5u}) {
        std::vector<ps::FleetScanResult> pieces;
        for (std::uint32_t shard = 0; shard < shard_count; ++shard) {
            ps::FleetScanConfig config = scanConfig();
            config.shard_index = shard;
            config.shard_count = shard_count;
            const pu::Expected<ps::FleetScanResult> piece =
                ps::runFleetScan(config);
            ASSERT_TRUE(piece.ok())
                << "shard " << shard << "/" << shard_count << ": "
                << piece.error();
            pieces.push_back(piece.value());
        }
        const pu::Expected<ps::FleetScanResult> merged =
            ps::mergeShardResults(pieces);
        ASSERT_TRUE(merged.ok()) << merged.error();
        EXPECT_EQ(resultBytes(merged.value()), want)
            << shard_count << " shards did not merge byte-identical";
    }
}

TEST(ShardEquivalence, ShardCountBeyondTargetsYieldsEmptyTailShards)
{
    // More shards than scan targets: the tail shards attack nothing
    // but still agree on the simulation phase, and the merge is still
    // byte-identical.
    const pu::Expected<ps::FleetScanResult> unsharded =
        ps::runFleetScan(scanConfig());
    ASSERT_TRUE(unsharded.ok()) << unsharded.error();
    const std::uint32_t shard_count =
        static_cast<std::uint32_t>(unsharded.value().boards.size()) + 3;

    std::vector<ps::FleetScanResult> pieces;
    std::size_t empty_shards = 0;
    for (std::uint32_t shard = 0; shard < shard_count; ++shard) {
        ps::FleetScanConfig config = scanConfig();
        config.shard_index = shard;
        config.shard_count = shard_count;
        const pu::Expected<ps::FleetScanResult> piece =
            ps::runFleetScan(config);
        ASSERT_TRUE(piece.ok()) << piece.error();
        empty_shards += piece.value().boards.empty() ? 1 : 0;
        pieces.push_back(piece.value());
    }
    EXPECT_GE(empty_shards, 3u);
    const pu::Expected<ps::FleetScanResult> merged =
        ps::mergeShardResults(pieces);
    ASSERT_TRUE(merged.ok()) << merged.error();
    EXPECT_EQ(resultBytes(merged.value()),
              resultBytes(unsharded.value()));
}

TEST(ShardEquivalence, ShardIndexOutOfRangeRejected)
{
    ps::FleetScanConfig config = scanConfig();
    config.shard_index = 2;
    config.shard_count = 2;
    const pu::Expected<ps::FleetScanResult> run =
        ps::runFleetScan(config);
    ASSERT_FALSE(run.ok());
    EXPECT_NE(run.error().find("shard_index"), std::string::npos)
        << run.error();

    // Unsharded (count 0) must not carry a stray index either.
    config.shard_index = 1;
    config.shard_count = 0;
    EXPECT_FALSE(ps::runFleetScan(config).ok());
}

// ---------------------------------------------------------- merging

TEST(ShardMerge, RefusesDivergentSimulationPhase)
{
    ps::FleetScanResult a;
    a.tenancies = 10;
    a.simulated_h = 100.0;
    a.skipped = 1;
    ps::FleetScanResult b = a;
    b.boards.push_back({"board_3", 64, 60, 60.0 / 64.0});

    // Identical phases merge fine.
    ASSERT_TRUE(ps::mergeShardResults({a, b}).ok());

    // Any divergence in the replicated phase is refused loudly.
    for (int field = 0; field < 3; ++field) {
        ps::FleetScanResult diverged = b;
        if (field == 0) {
            diverged.tenancies += 1;
        } else if (field == 1) {
            diverged.simulated_h += 0.5;
        } else {
            diverged.skipped += 1;
        }
        const pu::Expected<ps::FleetScanResult> merged =
            ps::mergeShardResults({a, diverged});
        ASSERT_FALSE(merged.ok());
        EXPECT_NE(merged.error().find("shard 1 disagrees"),
                  std::string::npos)
            << merged.error();
    }
}

TEST(ShardMerge, ConcatenatesBoardsInShardOrder)
{
    ps::FleetScanResult a;
    a.boards.push_back({"board_7", 64, 50, 50.0 / 64.0});
    ps::FleetScanResult b;
    b.boards.push_back({"board_2", 64, 40, 40.0 / 64.0});
    b.boards.push_back({"board_9", 64, 30, 30.0 / 64.0});

    const pu::Expected<ps::FleetScanResult> merged =
        ps::mergeShardResults({a, b});
    ASSERT_TRUE(merged.ok());
    ASSERT_EQ(merged.value().boards.size(), 3u);
    EXPECT_EQ(merged.value().boards[0].board, "board_7");
    EXPECT_EQ(merged.value().boards[1].board, "board_2");
    EXPECT_EQ(merged.value().boards[2].board, "board_9");

    EXPECT_FALSE(ps::mergeShardResults({}).ok());
}

// ------------------------------------------------------ retry timing

TEST(ShardBackoff, DeterministicBoundedAndGrowing)
{
    // Pure function: same arguments, same delay.
    for (std::uint32_t attempt = 0; attempt < 12; ++attempt) {
        const std::uint32_t a =
            ps::shardRetryDelayMs(42, 3, attempt, 50, 2000);
        const std::uint32_t b =
            ps::shardRetryDelayMs(42, 3, attempt, 50, 2000);
        EXPECT_EQ(a, b);

        // Jittered into [backoff/2, backoff] with backoff capped.
        const std::uint32_t backoff =
            std::min<std::uint32_t>(2000, 50u << std::min(attempt, 20u));
        EXPECT_GE(a, backoff / 2) << "attempt " << attempt;
        EXPECT_LE(a, backoff) << "attempt " << attempt;
    }

    // Distinct shards and seeds draw distinct jitter streams (equal
    // values are possible per-attempt; across 12 attempts they are
    // not all equal).
    bool any_shard_diff = false;
    bool any_seed_diff = false;
    for (std::uint32_t attempt = 0; attempt < 12; ++attempt) {
        any_shard_diff |=
            ps::shardRetryDelayMs(42, 0, attempt, 50, 2000) !=
            ps::shardRetryDelayMs(42, 1, attempt, 50, 2000);
        any_seed_diff |=
            ps::shardRetryDelayMs(42, 0, attempt, 50, 2000) !=
            ps::shardRetryDelayMs(43, 0, attempt, 50, 2000);
    }
    EXPECT_TRUE(any_shard_diff);
    EXPECT_TRUE(any_seed_diff);

    // Attempt 40 must not shift past 32 bits.
    const std::uint32_t deep = ps::shardRetryDelayMs(1, 0, 40, 50, 2000);
    EXPECT_GE(deep, 1000u);
    EXPECT_LE(deep, 2000u);
}

TEST(ClientBackoff, HonorsServerHintFloorAndCap)
{
    ps::ClientConfig config;
    config.backoff_base_ms = 25;
    config.backoff_cap_ms = 400;
    config.jitter_seed = 7;

    for (std::uint32_t attempt = 0; attempt < 8; ++attempt) {
        for (const std::uint32_t hint : {0u, 10u, 300u, 5000u}) {
            const std::uint32_t a =
                ps::retryDelayMs(config, attempt, hint);
            EXPECT_EQ(a, ps::retryDelayMs(config, attempt, hint));
            const std::uint32_t backoff = std::min<std::uint32_t>(
                400, 25u << std::min(attempt, 20u));
            const std::uint32_t floor = std::max(hint, backoff);
            EXPECT_GE(a, floor / 2)
                << "attempt " << attempt << " hint " << hint;
            EXPECT_LE(a, floor)
                << "attempt " << attempt << " hint " << hint;
            // A server hint above the local backoff must dominate.
            if (hint >= backoff) {
                EXPECT_GE(a, hint / 2);
            }
        }
    }
}

// -------------------------------------------- supervisor validation

TEST(ShardSupervisor, RejectsBadConfigWithoutSpawning)
{
    ps::ShardSupervisorConfig config;
    config.worker_binary = "/does/not/matter";
    config.shard_count = 0;
    EXPECT_FALSE(ps::runShardedFleetScan(config).ok());
    config.shard_count = ps::kMaxShards + 1;
    EXPECT_FALSE(ps::runShardedFleetScan(config).ok());

    config.shard_count = 2;
    config.worker_binary = "";
    const pu::Expected<ps::ShardedScanResult> run =
        ps::runShardedFleetScan(config);
    ASSERT_FALSE(run.ok());
    EXPECT_NE(run.error().find("worker binary"), std::string::npos);
}
