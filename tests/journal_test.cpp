/**
 * @file
 * Equivalence battery for the activity journal (PR 5).
 *
 * The journal defers element materialisation from design load to
 * first observation; these tests lock the property that makes that
 * deferral legal: *aged delays are bit-identical to eager
 * materialisation*, for every schedule shape the engine uses —
 * hourly stepping, single jumps, random dyadic partitions — across
 * mid-tenancy mitigation flips, design replacement without a wipe,
 * partial mid-tenancy observation, service wear, timeline compaction,
 * and the cloud instance's deferred idle walk (creditIdleHours).
 * Each scenario runs 2 x N ways (eager/lazy x schedules) and every
 * output double must be EQ, not NEAR.
 *
 * Bookkeeping locks ride along: what is journaled vs materialised at
 * each phase, imprintedIds as the union listing, and convergence of
 * materializedIds to the eager set after full observation.
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cloud/instance.hpp"
#include "core/experiment.hpp"
#include "fabric/design.hpp"
#include "fabric/device.hpp"
#include "util/rng.hpp"

namespace pc = pentimento::core;
namespace pcl = pentimento::cloud;
namespace pf = pentimento::fabric;
namespace pp = pentimento::phys;
namespace pu = pentimento::util;

namespace {

pf::DeviceConfig
tinyConfig(bool eager)
{
    pf::DeviceConfig config;
    config.tiles_x = 8;
    config.tiles_y = 8;
    config.nodes_per_tile = 32;
    config.eager_materialisation = eager;
    return config;
}

/** Advance `hours` at a fixed die temperature, in schedule-shaped
 *  steps. */
using Stepper =
    std::function<void(pf::Device &, double hours, double temp_k)>;

const Stepper kJump = [](pf::Device &device, double hours,
                         double temp_k) {
    device.advanceAt(hours, temp_k);
};

const Stepper kHourly = [](pf::Device &device, double hours,
                           double temp_k) {
    double advanced = 0.0;
    while (advanced < hours - 1e-12) {
        const double dt = std::min(1.0, hours - advanced);
        device.advanceAt(dt, temp_k);
        advanced += dt;
    }
};

Stepper
dyadicStepper(std::uint64_t seed)
{
    return [seed](pf::Device &device, double hours, double temp_k) {
        pu::Rng rng(seed);
        auto ticks = static_cast<std::uint64_t>(hours * 64.0);
        while (ticks > 0) {
            const std::uint64_t take =
                rng.uniformInt(1, std::min<std::uint64_t>(ticks, 192));
            device.advanceAt(static_cast<double>(take) / 64.0,
                             temp_k);
            ticks -= take;
        }
    };
}

/**
 * Two tenancies with a mid-tenancy mitigation flip, a design replace
 * without an intervening wipe, a partial mid-tenancy observation, a
 * service-wear sweep, and a full final observation. Returns every
 * observed double.
 */
std::vector<double>
runTenancyScenario(bool eager, const Stepper &step)
{
    pf::Device device(tinyConfig(eager));
    const pf::RouteSpec route_a = device.allocateRoute("a", 600.0);
    const pf::RouteSpec route_b = device.allocateRoute("b", 400.0);
    const pf::RouteSpec route_c = device.allocateRoute("c", 500.0);

    // Tenancy 1: burn a, toggle b.
    auto design1 = std::make_shared<pf::Design>("t1");
    design1->setRouteValue(route_a, true);
    design1->setRouteToggling(route_b, 0.3);
    device.loadDesign(design1);
    step(device, 37.0, 348.15);
    // Mid-tenancy mitigation flip: rotate the burn value in place and
    // re-load the (mutated) resident design.
    design1->setRouteValue(route_a, false);
    device.loadDesign(design1);
    step(device, 20.0, 348.15);
    // Replace without wipe: b's release and c's configuration are one
    // boundary; a keeps its value across the replace (no flip).
    auto design2 = std::make_shared<pf::Design>("t2");
    design2->setRouteValue(route_a, false);
    design2->setRouteValue(route_c, true);
    device.loadDesign(design2);
    step(device, 12.0, 351.4);
    // Partial observation mid-tenancy: c materialises (consuming its
    // journal) while a and b stay deferred in the lazy run.
    pf::Route bound_c = device.bindRoute(route_c);
    std::vector<double> out;
    out.push_back(bound_c.delayPs(pp::Transition::Rising, 333.15));
    step(device, 9.0, 351.4);
    device.wipe();
    step(device, 16.0, 330.0);
    // Whole-fabric wear: lazily deferred elements must join the sweep.
    device.applyServiceWear(5.0, 0.25);
    step(device, 3.0, 330.0);

    for (const pf::RouteSpec *spec : {&route_a, &route_b, &route_c}) {
        pf::Route route = device.bindRoute(*spec);
        out.push_back(route.delayPs(pp::Transition::Rising, 333.15));
        out.push_back(route.delayPs(pp::Transition::Falling, 333.15));
        out.push_back(route.delayPs(pp::Transition::Falling, 358.15));
    }
    out.push_back(device.elapsedHours());
    out.push_back(static_cast<double>(device.materializedCount()));
    out.push_back(static_cast<double>(device.journaledKeyCount()));
    return out;
}

TEST(JournalEquivalence, TenancyScenarioBitIdenticalAcrossSchedules)
{
    const std::vector<double> reference =
        runTenancyScenario(true, kJump);
    EXPECT_EQ(reference, runTenancyScenario(false, kJump));
    EXPECT_EQ(reference, runTenancyScenario(true, kHourly));
    EXPECT_EQ(reference, runTenancyScenario(false, kHourly));
    for (const std::uint64_t seed : {31u, 32u, 33u}) {
        EXPECT_EQ(reference,
                  runTenancyScenario(true, dyadicStepper(seed)))
            << "eager dyadic seed " << seed;
        EXPECT_EQ(reference,
                  runTenancyScenario(false, dyadicStepper(seed)))
            << "lazy dyadic seed " << seed;
    }
}

TEST(JournalEquivalence, TenancyChurnScenarioMatchesEagerBitwise)
{
    // The shared churn fixture (mid-tenancy mitigation flips, fresh
    // routes per tenancy, observation of the last two tenancies only)
    // must not see the journal either.
    pc::TenancyChurnConfig lazy;
    pc::TenancyChurnConfig eager;
    eager.device.eager_materialisation = true;
    const pc::TenancyChurnResult a = pc::runTenancyChurn(lazy);
    const pc::TenancyChurnResult b = pc::runTenancyChurn(eager);
    EXPECT_EQ(a.observed_delays_ps, b.observed_delays_ps);
    EXPECT_EQ(a.elapsed_h, b.elapsed_h);
    // Only the observed tenancies' elements materialised in the lazy
    // run; the eager run paid for every tenancy ever.
    EXPECT_LT(a.materialized, b.materialized);
    EXPECT_EQ(a.materialized + a.journaled, b.materialized);
    EXPECT_EQ(b.journaled, 0u);
}

TEST(JournalEquivalence, CompactionRebaseKeepsDeferredReplayExact)
{
    // Hundreds of distinct-temperature segments with a periodically
    // observed route keep timeline compaction active; a route
    // configured late (in place, mid-run) journals its first run deep
    // into the segment list, so later compactions drop a consumed
    // prefix and must rebase the deferred positions — and the late
    // replay must still be bit-identical to eager.
    const auto run = [](bool eager) {
        pf::Device device(tinyConfig(eager));
        const pf::RouteSpec pinned = device.allocateRoute("p", 500.0);
        const pf::RouteSpec watched = device.allocateRoute("w", 500.0);
        auto design = std::make_shared<pf::Design>("d");
        design->setRouteValue(watched, false);
        device.loadDesign(design);
        pf::Route bound = device.bindRoute(watched);
        std::vector<double> out;
        for (int seg = 0; seg < 100; ++seg) {
            device.advanceAt(1.0, 330.0 + 0.01 * seg);
            if (seg % 10 == 0) {
                out.push_back(
                    bound.delayPs(pp::Transition::Falling, 333.15));
            }
        }
        // Late in-place configuration: the journal run starts ~100
        // segments in (folded at the next recorded span).
        design->setRouteValue(pinned, true);
        for (int seg = 0; seg < 120; ++seg) {
            device.advanceAt(1.0, 340.0 + 0.01 * seg);
            if (seg % 10 == 0) {
                out.push_back(
                    bound.delayPs(pp::Transition::Falling, 333.15));
            }
        }
        device.wipe();
        device.advanceAt(30.0, 320.0);
        pf::Route late = device.bindRoute(pinned);
        out.push_back(late.delayPs(pp::Transition::Rising, 333.15));
        out.push_back(late.delayPs(pp::Transition::Falling, 333.15));
        return out;
    };
    EXPECT_EQ(run(true), run(false));
}

TEST(JournalEquivalence, ReserveAfterLoadInvalidatesResolutionRefresh)
{
    // reserveActivity() can rehash the activity map and permute its
    // iteration order; the values-only resolution refresh pairs the
    // walked activities positionally against cached cohorts, so a
    // reserve must invalidate cached resolutions like a key-set edit.
    // (Found by review: without the keyset bump the delays silently
    // diverge.)
    const auto run = [](bool reserve_between) {
        pf::Device device(tinyConfig(false));
        std::vector<pf::RouteSpec> routes;
        auto design = std::make_shared<pf::Design>("d");
        for (int r = 0; r < 6; ++r) {
            routes.push_back(device.allocateRoute(
                "r" + std::to_string(r), 500.0));
            design->setRouteValue(routes.back(), r % 2 == 0);
        }
        device.loadDesign(design);
        device.advanceAt(10.0, 340.0);
        if (reserve_between) {
            design->reserveActivity(4096); // may permute map order
        }
        for (int r = 0; r < 6; ++r) {
            design->setRouteValue(routes[r], r % 2 != 0); // rotate
        }
        device.advanceAt(10.0, 340.0);
        std::vector<double> out;
        for (const pf::RouteSpec &spec : routes) {
            pf::Route route = device.bindRoute(spec);
            out.push_back(
                route.delayPs(pp::Transition::Rising, 333.15));
            out.push_back(
                route.delayPs(pp::Transition::Falling, 333.15));
        }
        return out;
    };
    EXPECT_EQ(run(false), run(true));
}

TEST(JournalLaziness, LoadWipeChurnTouchesNoElements)
{
    // A year of unmeasured tenancies materialises nothing at all.
    pc::TenancyChurnConfig config;
    config.tenancies = 40;
    config.observe_last = 0;
    const pc::TenancyChurnResult result = pc::runTenancyChurn(config);
    EXPECT_EQ(result.materialized, 0u);
    EXPECT_GT(result.journaled, 0u);
    EXPECT_TRUE(result.observed_delays_ps.empty());
}

TEST(JournalLaziness, ImprintedIdsListsDeferredAndMaterialised)
{
    pf::Device device(tinyConfig(false));
    const pf::RouteSpec burned = device.allocateRoute("x", 500.0);
    const pf::RouteSpec seen = device.allocateRoute("y", 500.0);
    auto design = std::make_shared<pf::Design>("d");
    design->setRouteValue(burned, true);
    design->setRouteValue(seen, false);
    device.loadDesign(design);
    pf::Route bound = device.bindRoute(seen); // materialises y only
    (void)bound.delayPs(pp::Transition::Rising, 333.15);
    EXPECT_EQ(device.materializedCount(), seen.size());
    EXPECT_EQ(device.journaledKeyCount(), burned.size());
    const std::vector<pf::ResourceId> ids = device.imprintedIds();
    EXPECT_EQ(ids.size(), burned.size() + seen.size());
    EXPECT_TRUE(std::is_sorted(
        ids.begin(), ids.end(),
        [](const pf::ResourceId &a, const pf::ResourceId &b) {
            return a.key() < b.key();
        }));
}

// ----------------------------------------- cloud deferral interplay

/**
 * Idle (deferred ambient walk) -> tenancy (journal) -> idle -> late
 * observation. The two laziness layers — creditIdleHours at the
 * instance, the activity journal at the device — must compose without
 * perturbing a bit relative to an eager-materialising instance.
 */
std::vector<double>
runCloudScenario(bool eager)
{
    pcl::AmbientParams ambient;
    pcl::FpgaInstance inst("fpga-jx", tinyConfig(eager), ambient,
                           pu::Rng(909));
    pf::Device &device = inst.device();
    const pf::RouteSpec spec = device.allocateRoute("r", 800.0);
    inst.advanceHours(48.0); // pooled, unobserved
    auto design = std::make_shared<pf::Design>("tenant");
    design->setRouteValue(spec, true);
    design->setPowerW(20.0);
    device.loadDesign(design);
    inst.advanceHours(24.0); // computing (eager walk)
    device.wipe();
    inst.advanceHours(72.0); // pooled again
    pf::Route route = device.bindRoute(spec);
    return {route.delayPs(pp::Transition::Rising, 333.15),
            route.delayPs(pp::Transition::Falling, 333.15),
            device.elapsedHours(), inst.dieTempK()};
}

TEST(JournalCloudDeferral, CreditIdleHoursComposesWithJournal)
{
    EXPECT_EQ(runCloudScenario(true), runCloudScenario(false));
}

TEST(JournalCloudDeferral, IdleBacklogStaysDeferredUntilObservation)
{
    pcl::AmbientParams ambient;
    pcl::FpgaInstance inst("fpga-jy", tinyConfig(false), ambient,
                           pu::Rng(910));
    // Allocation is pure bookkeeping: no observation, no flush.
    pf::RouteSpec spec;
    {
        pf::Device &device = inst.device();
        spec = device.allocateRoute("r", 500.0);
    }
    inst.advanceHours(100.0);
    EXPECT_DOUBLE_EQ(inst.deferredIdleHours(), 100.0);
    // Loading a design is a flip boundary: the idle walk must land on
    // the timeline first (the pre-observation hook flushes it).
    pf::Device &device = inst.device();
    EXPECT_DOUBLE_EQ(inst.deferredIdleHours(), 0.0);
    auto design = std::make_shared<pf::Design>("tenant");
    design->setRouteValue(spec, true);
    device.loadDesign(design);
    EXPECT_EQ(device.materializedCount(), 0u);
    EXPECT_EQ(device.journaledKeyCount(), spec.size());
    inst.advanceHours(10.0);
    device.wipe();
    inst.advanceHours(50.0);
    EXPECT_DOUBLE_EQ(inst.deferredIdleHours(), 50.0);
    EXPECT_EQ(device.journaledKeyCount(), spec.size());
    // Observation flushes the backlog AND consumes the journal.
    pf::Route route = device.bindRoute(spec);
    EXPECT_GT(route.btiShiftPs(pp::Transition::Falling), 0.0);
    EXPECT_DOUBLE_EQ(inst.deferredIdleHours(), 0.0);
    EXPECT_EQ(device.journaledKeyCount(), 0u);
}

} // namespace
