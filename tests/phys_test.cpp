/**
 * @file
 * Unit and property tests for the physics module: BTI kinetics,
 * delay sensitivity, thermal models, process variation, device aging.
 */

#include <gtest/gtest.h>

#include "phys/aging.hpp"
#include "phys/bti.hpp"
#include "phys/delay_model.hpp"
#include "phys/thermal.hpp"
#include "phys/variation.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace pp = pentimento::phys;
namespace pu = pentimento::util;

namespace {

pp::BtiParams
params()
{
    return pp::BtiParams::ultrascalePlus();
}

} // namespace

// -------------------------------------------------------- mechanisms

TEST(Mechanism, MappingBetweenTransistorsAndMechanisms)
{
    EXPECT_EQ(pp::mechanismFor(pp::TransistorType::Pmos),
              pp::BtiMechanism::Nbti);
    EXPECT_EQ(pp::mechanismFor(pp::TransistorType::Nmos),
              pp::BtiMechanism::Pbti);
    EXPECT_EQ(pp::transistorFor(pp::BtiMechanism::Nbti),
              pp::TransistorType::Pmos);
    EXPECT_EQ(pp::transistorFor(pp::BtiMechanism::Pbti),
              pp::TransistorType::Nmos);
}

TEST(Mechanism, ValueStressPolarity)
{
    // Logic 1 stresses NMOS (PBTI); logic 0 stresses PMOS (NBTI).
    EXPECT_TRUE(pp::valueStresses(true, pp::TransistorType::Nmos));
    EXPECT_FALSE(pp::valueStresses(true, pp::TransistorType::Pmos));
    EXPECT_TRUE(pp::valueStresses(false, pp::TransistorType::Pmos));
    EXPECT_FALSE(pp::valueStresses(false, pp::TransistorType::Nmos));
}

TEST(BtiParams, NbtiStrongerThanPbti)
{
    const pp::BtiParams p = params();
    EXPECT_GT(p.nbti.prefactor_v, p.pbti.prefactor_v);
}

TEST(BtiParams, NbtiSlowerToRecover)
{
    const pp::BtiParams p = params();
    EXPECT_GT(p.nbti.recovery_tau_h, p.pbti.recovery_tau_h);
    EXPECT_GT(p.nbti.permanent_fraction, p.pbti.permanent_fraction);
}

// --------------------------------------------------------- arrhenius

TEST(Arrhenius, UnityAtReference)
{
    EXPECT_DOUBLE_EQ(pp::arrheniusAccel(0.8, 333.15, 333.15), 1.0);
}

TEST(Arrhenius, AcceleratesAboveReference)
{
    EXPECT_GT(pp::arrheniusAccel(0.8, 358.15, 333.15), 1.0);
    EXPECT_LT(pp::arrheniusAccel(0.8, 298.15, 333.15), 1.0);
}

TEST(Arrhenius, MonotoneInTemperature)
{
    double prev = 0.0;
    for (double t = 280.0; t <= 380.0; t += 10.0) {
        const double a = pp::arrheniusAccel(0.8, t, 333.15);
        EXPECT_GT(a, prev);
        prev = a;
    }
}

TEST(Arrhenius, ZeroActivationIsFlat)
{
    EXPECT_DOUBLE_EQ(pp::arrheniusAccel(0.0, 300.0, 350.0), 1.0);
}

TEST(Arrhenius, FatalOnNonPositiveTemperature)
{
    EXPECT_THROW(pp::arrheniusAccel(0.8, -1.0, 300.0), pu::FatalError);
    EXPECT_THROW(pp::arrheniusAccel(0.8, 300.0, 0.0), pu::FatalError);
}

// ---------------------------------------------------------- BtiState

TEST(BtiState, PristineHasNoShift)
{
    const pp::BtiState state;
    EXPECT_TRUE(state.pristine());
    EXPECT_DOUBLE_EQ(state.deltaVth(params().nbti, 1.0), 0.0);
}

TEST(BtiState, StressRaisesShift)
{
    pp::BtiState state;
    state.applyStress(params().nbti, 1.0, 10.0);
    EXPECT_GT(state.deltaVth(params().nbti, 1.0), 0.0);
    EXPECT_FALSE(state.pristine());
}

TEST(BtiState, StressMonotoneInTime)
{
    pp::BtiState state;
    double prev = 0.0;
    for (int i = 0; i < 20; ++i) {
        state.applyStress(params().nbti, 1.0, 5.0);
        const double dv = state.deltaVth(params().nbti, 1.0);
        EXPECT_GT(dv, prev);
        prev = dv;
    }
}

TEST(BtiState, PowerLawIsSublinear)
{
    pp::BtiState a, b;
    a.applyStress(params().nbti, 1.0, 100.0);
    b.applyStress(params().nbti, 1.0, 200.0);
    const double dv_a = a.deltaVth(params().nbti, 1.0);
    const double dv_b = b.deltaVth(params().nbti, 1.0);
    EXPECT_LT(dv_b, 2.0 * dv_a);
    EXPECT_GT(dv_b, dv_a);
}

TEST(BtiState, IncrementalStressEqualsBulk)
{
    pp::BtiState inc, bulk;
    for (int i = 0; i < 100; ++i) {
        inc.applyStress(params().pbti, 1.0, 2.0);
    }
    bulk.applyStress(params().pbti, 1.0, 200.0);
    EXPECT_NEAR(inc.deltaVth(params().pbti, 1.0),
                bulk.deltaVth(params().pbti, 1.0), 1e-12);
}

TEST(BtiState, RecoveryReducesShift)
{
    pp::BtiState state;
    state.applyStress(params().pbti, 1.0, 200.0);
    const double before = state.deltaVth(params().pbti, 1.0);
    state.applyRecovery(params().pbti, 50.0);
    const double after = state.deltaVth(params().pbti, 1.0);
    EXPECT_LT(after, before);
    EXPECT_GT(after, 0.0);
}

TEST(BtiState, RecoveryMonotone)
{
    pp::BtiState state;
    state.applyStress(params().pbti, 1.0, 200.0);
    double prev = state.deltaVth(params().pbti, 1.0);
    for (int i = 0; i < 10; ++i) {
        state.applyRecovery(params().pbti, 20.0);
        const double dv = state.deltaVth(params().pbti, 1.0);
        EXPECT_LT(dv, prev);
        prev = dv;
    }
}

TEST(BtiState, PermanentFractionFloorsRecovery)
{
    const pp::BtiParams p = params();
    pp::BtiState state;
    state.applyStress(p.nbti, 1.0, 200.0);
    const double raw = state.deltaVth(p.nbti, 1.0);
    state.applyRecovery(p.nbti, 1e7);
    EXPECT_GE(state.deltaVth(p.nbti, 1.0),
              0.99 * p.nbti.permanent_fraction * raw);
}

TEST(BtiState, RecoveryOnPristineIsNoOp)
{
    pp::BtiState state;
    state.applyRecovery(params().nbti, 100.0);
    EXPECT_TRUE(state.pristine());
    EXPECT_DOUBLE_EQ(state.deltaVth(params().nbti, 1.0), 0.0);
}

TEST(BtiState, RestressCollapsesRecoveredState)
{
    const pp::BtiParams p = params();
    pp::BtiState state;
    state.applyStress(p.pbti, 1.0, 100.0);
    state.applyRecovery(p.pbti, 100.0);
    const double recovered = state.deltaVth(p.pbti, 1.0);
    state.applyStress(p.pbti, 1.0, 1e-9);
    // Resuming stress continues from the recovered level, not the
    // pre-recovery one.
    EXPECT_NEAR(state.deltaVth(p.pbti, 1.0), recovered, 1e-8);
    EXPECT_DOUBLE_EQ(state.recoveryHours(), 0.0);
}

TEST(BtiState, ScaleMultipliesShift)
{
    pp::BtiState a, b;
    a.applyStress(params().nbti, 1.0, 50.0);
    b.applyStress(params().nbti, 2.0, 50.0);
    EXPECT_NEAR(b.deltaVth(params().nbti, 2.0),
                2.0 * a.deltaVth(params().nbti, 1.0), 1e-12);
}

TEST(BtiState, NegativeTimeStepsAreFatal)
{
    pp::BtiState state;
    EXPECT_THROW(state.applyStress(params().nbti, 1.0, -1.0),
                 pu::FatalError);
    EXPECT_THROW(state.applyRecovery(params().nbti, -1.0),
                 pu::FatalError);
}

/** Property sweep: kinetics invariants hold for both mechanisms. */
class MechanismSweep
    : public ::testing::TestWithParam<pp::BtiMechanism>
{
  protected:
    const pp::MechanismParams &
    mech() const
    {
        return GetParam() == pp::BtiMechanism::Nbti ? params_.nbti
                                                    : params_.pbti;
    }
    pp::BtiParams params_ = params();
};

TEST_P(MechanismSweep, StressThenFullCycleNeverNegative)
{
    pp::BtiState state;
    for (int cycle = 0; cycle < 5; ++cycle) {
        state.applyStress(mech(), 1.0, 20.0);
        state.applyRecovery(mech(), 15.0);
        EXPECT_GE(state.deltaVth(mech(), 1.0), 0.0);
    }
}

TEST_P(MechanismSweep, RecoveryNeverIncreasesShift)
{
    pp::BtiState state;
    state.applyStress(mech(), 1.0, 100.0);
    double prev = state.deltaVth(mech(), 1.0);
    for (int i = 0; i < 30; ++i) {
        state.applyRecovery(mech(), 7.0);
        const double dv = state.deltaVth(mech(), 1.0);
        EXPECT_LE(dv, prev + 1e-15);
        prev = dv;
    }
}

INSTANTIATE_TEST_SUITE_P(BothMechanisms, MechanismSweep,
                         ::testing::Values(pp::BtiMechanism::Nbti,
                                           pp::BtiMechanism::Pbti));

// ------------------------------------------------------ ElementAging

TEST(ElementAging, Hold1StressesNmosOnly)
{
    pp::ElementAging aging;
    aging.holdStatic(params(), true, 333.15, 100.0);
    EXPECT_GT(aging.deltaVth(params(), pp::TransistorType::Nmos), 0.0);
    EXPECT_DOUBLE_EQ(aging.deltaVth(params(), pp::TransistorType::Pmos),
                     0.0);
}

TEST(ElementAging, Hold0StressesPmosOnly)
{
    pp::ElementAging aging;
    aging.holdStatic(params(), false, 333.15, 100.0);
    EXPECT_GT(aging.deltaVth(params(), pp::TransistorType::Pmos), 0.0);
    EXPECT_DOUBLE_EQ(aging.deltaVth(params(), pp::TransistorType::Nmos),
                     0.0);
}

TEST(ElementAging, ToggleStressesBothByDuty)
{
    pp::ElementAging aging;
    aging.holdToggling(params(), 0.5, 333.15, 100.0);
    const double nmos =
        aging.deltaVth(params(), pp::TransistorType::Nmos);
    const double pmos =
        aging.deltaVth(params(), pp::TransistorType::Pmos);
    EXPECT_GT(nmos, 0.0);
    EXPECT_GT(pmos, 0.0);
    // NBTI prefactor is larger, so PMOS accumulates more at 50% duty.
    EXPECT_GT(pmos, nmos);
}

TEST(ElementAging, ToggleDutyExtremesMatchStatic)
{
    pp::ElementAging toggled, held;
    toggled.holdToggling(params(), 1.0, 333.15, 80.0);
    held.holdStatic(params(), true, 333.15, 80.0);
    EXPECT_NEAR(toggled.deltaVth(params(), pp::TransistorType::Nmos),
                held.deltaVth(params(), pp::TransistorType::Nmos),
                1e-12);
}

TEST(ElementAging, ReleaseRecoversBoth)
{
    pp::ElementAging aging;
    aging.holdStatic(params(), true, 333.15, 100.0);
    aging.holdStatic(params(), false, 333.15, 100.0);
    const double nmos_before =
        aging.deltaVth(params(), pp::TransistorType::Nmos);
    const double pmos_before =
        aging.deltaVth(params(), pp::TransistorType::Pmos);
    aging.release(params(), 333.15, 100.0);
    EXPECT_LT(aging.deltaVth(params(), pp::TransistorType::Nmos),
              nmos_before);
    EXPECT_LT(aging.deltaVth(params(), pp::TransistorType::Pmos),
              pmos_before);
}

TEST(ElementAging, HigherTemperatureAgesFaster)
{
    pp::ElementAging cool, hot;
    cool.holdStatic(params(), true, 318.15, 100.0);
    hot.holdStatic(params(), true, 348.15, 100.0);
    EXPECT_GT(hot.deltaVth(params(), pp::TransistorType::Nmos),
              cool.deltaVth(params(), pp::TransistorType::Nmos));
}

TEST(ElementAging, BadDutyIsFatal)
{
    pp::ElementAging aging;
    EXPECT_THROW(aging.holdToggling(params(), -0.1, 333.15, 1.0),
                 pu::FatalError);
    EXPECT_THROW(aging.holdToggling(params(), 1.1, 333.15, 1.0),
                 pu::FatalError);
}

TEST(ElementAging, ScaleStored)
{
    pp::ElementAging aging;
    aging.setScale(0.5);
    EXPECT_DOUBLE_EQ(aging.scale(), 0.5);
}

// -------------------------------------------------------- delay model

TEST(DelayModel, ShiftFractionLinearInVth)
{
    const pp::DelayParams p;
    EXPECT_DOUBLE_EQ(p.delayShiftFraction(0.0), 0.0);
    EXPECT_NEAR(p.delayShiftFraction(2e-3),
                2.0 * p.delayShiftFraction(1e-3), 1e-15);
}

TEST(DelayModel, ShiftFractionUsesAlphaPowerLaw)
{
    const pp::DelayParams p;
    EXPECT_NEAR(p.delayShiftFraction(1e-3),
                p.alpha * 1e-3 / (p.vdd_v - p.vth0_v), 1e-15);
}

TEST(DelayModel, TemperatureFactorUnityAtReference)
{
    const pp::DelayParams p;
    EXPECT_DOUBLE_EQ(
        p.temperatureFactor(pp::Transition::Rising, p.ref_temp_k), 1.0);
    EXPECT_DOUBLE_EQ(
        p.temperatureFactor(pp::Transition::Falling, p.ref_temp_k),
        1.0);
}

TEST(DelayModel, RiseTempCoefficientExceedsFall)
{
    const pp::DelayParams p;
    const double hot = p.ref_temp_k + 20.0;
    EXPECT_GT(p.temperatureFactor(pp::Transition::Rising, hot),
              p.temperatureFactor(pp::Transition::Falling, hot));
}

TEST(DelayModel, AgedDelayGrowsWithShiftAndTemp)
{
    const pp::DelayParams p;
    const double base =
        pp::agedDelayPs(p, pp::Transition::Falling, 100.0, 0.0,
                        p.ref_temp_k);
    EXPECT_DOUBLE_EQ(base, 100.0);
    EXPECT_GT(pp::agedDelayPs(p, pp::Transition::Falling, 100.0, 1e-3,
                              p.ref_temp_k),
              base);
    EXPECT_GT(pp::agedDelayPs(p, pp::Transition::Falling, 100.0, 0.0,
                              p.ref_temp_k + 30.0),
              base);
}

TEST(DelayModel, LimitingTransistorConvention)
{
    EXPECT_EQ(pp::limitingTransistor(pp::Transition::Falling),
              pp::TransistorType::Nmos);
    EXPECT_EQ(pp::limitingTransistor(pp::Transition::Rising),
              pp::TransistorType::Pmos);
}

TEST(DelayModel, FatalWhenVddBelowVth)
{
    pp::DelayParams p;
    p.vdd_v = 0.2;
    p.vth0_v = 0.3;
    EXPECT_THROW(p.delayShiftFraction(1e-3), pu::FatalError);
}

// ------------------------------------------------------------ thermal

TEST(Thermal, OvenPinsTemperature)
{
    pp::OvenEnvironment oven(333.15);
    EXPECT_DOUBLE_EQ(oven.step(100.0, 5.0), 333.15);
    EXPECT_DOUBLE_EQ(oven.dieTempK(), 333.15);
}

TEST(Thermal, OvenRejectsNonPositive)
{
    EXPECT_THROW(pp::OvenEnvironment(0.0), pu::FatalError);
}

TEST(Thermal, PackageConvergesToAmbientPlusRP)
{
    pp::PackageThermalModel pkg(318.15, 0.35, 0.005);
    double temp = 0.0;
    for (int i = 0; i < 100; ++i) {
        temp = pkg.step(60.0, 0.01);
    }
    EXPECT_NEAR(temp, 318.15 + 0.35 * 60.0, 0.01);
}

TEST(Thermal, PackageCoolsWhenIdle)
{
    pp::PackageThermalModel pkg(318.15, 0.35, 0.005);
    for (int i = 0; i < 100; ++i) {
        pkg.step(60.0, 0.01);
    }
    for (int i = 0; i < 100; ++i) {
        pkg.step(0.0, 0.01);
    }
    EXPECT_NEAR(pkg.dieTempK(), 318.15, 0.01);
}

TEST(Thermal, PackageTracksAmbientChange)
{
    pp::PackageThermalModel pkg(318.15);
    pkg.setAmbientK(325.0);
    for (int i = 0; i < 200; ++i) {
        pkg.step(0.0, 0.01);
    }
    EXPECT_NEAR(pkg.dieTempK(), 325.0, 0.01);
    EXPECT_DOUBLE_EQ(pkg.ambientK(), 325.0);
}

TEST(Thermal, PackageApproachIsMonotone)
{
    pp::PackageThermalModel pkg(318.15, 0.35, 0.01);
    double prev = pkg.dieTempK();
    for (int i = 0; i < 20; ++i) {
        const double t = pkg.step(50.0, 0.002);
        EXPECT_GE(t, prev);
        prev = t;
    }
}

TEST(Thermal, PackageRejectsBadInput)
{
    EXPECT_THROW(pp::PackageThermalModel(-1.0), pu::FatalError);
    EXPECT_THROW(pp::PackageThermalModel(300.0, -0.1), pu::FatalError);
    pp::PackageThermalModel pkg(300.0);
    EXPECT_THROW(pkg.step(-1.0, 1.0), pu::FatalError);
    EXPECT_THROW(pkg.step(1.0, -1.0), pu::FatalError);
}

// ---------------------------------------------------------- variation

TEST(Variation, DeterministicGivenSameStream)
{
    const pp::VariationParams vp;
    pp::VariationSampler a(vp, pu::Rng(5));
    pp::VariationSampler b(vp, pu::Rng(5));
    for (int i = 0; i < 10; ++i) {
        const pp::ElementVariation va = a.sample();
        const pp::ElementVariation vb = b.sample();
        EXPECT_DOUBLE_EQ(va.rise_mult, vb.rise_mult);
        EXPECT_DOUBLE_EQ(va.fall_mult, vb.fall_mult);
        EXPECT_DOUBLE_EQ(va.bti_mult, vb.bti_mult);
    }
}

TEST(Variation, MultipliersPositiveAndNearUnity)
{
    const pp::VariationParams vp;
    pp::VariationSampler sampler(vp, pu::Rng(6));
    pu::RunningStats rise;
    for (int i = 0; i < 20000; ++i) {
        const pp::ElementVariation v = sampler.sample();
        EXPECT_GT(v.rise_mult, 0.0);
        EXPECT_GT(v.fall_mult, 0.0);
        EXPECT_GT(v.bti_mult, 0.0);
        rise.add(v.rise_mult);
    }
    EXPECT_NEAR(rise.mean(), 1.0, 0.01);
    EXPECT_NEAR(rise.stddev(), vp.delay_sigma, 0.005);
}

TEST(Variation, RiseFallCorrelated)
{
    const pp::VariationParams vp;
    pp::VariationSampler sampler(vp, pu::Rng(7));
    std::vector<double> rise, fall;
    for (int i = 0; i < 5000; ++i) {
        const pp::ElementVariation v = sampler.sample();
        rise.push_back(v.rise_mult);
        fall.push_back(v.fall_mult);
    }
    const double corr = pu::correlation(rise, fall);
    EXPECT_GT(corr, 0.2);
    EXPECT_LT(corr, 0.95);
}

// ----------------------------------------------------- device aging

TEST(DeviceAge, NewDeviceHasFullScale)
{
    const pp::DeviceAgeModel model;
    EXPECT_DOUBLE_EQ(model.freshStressScale(0.0), 1.0);
}

TEST(DeviceAge, ScaleDecreasesWithAge)
{
    const pp::DeviceAgeModel model;
    double prev = 1.1;
    for (double age = 0.0; age <= 50000.0; age += 5000.0) {
        const double s = model.freshStressScale(age);
        EXPECT_LT(s, prev);
        EXPECT_GT(s, 0.0);
        prev = s;
    }
}

TEST(DeviceAge, CalibrationPoints)
{
    const pp::DeviceAgeModel model;
    // ~1 year and ~3.5 years of service: the Figure 6 vs Figure 7
    // amplitude ratio.
    EXPECT_NEAR(model.freshStressScale(8760.0), 0.36, 0.05);
    EXPECT_NEAR(model.freshStressScale(30000.0), 0.17, 0.04);
}

TEST(DeviceAge, NegativeAgeIsFatal)
{
    const pp::DeviceAgeModel model;
    EXPECT_THROW(model.freshStressScale(-1.0), pu::FatalError);
}

/** Temperature sweep: stress acceleration is monotone end to end. */
class TemperatureSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(TemperatureSweep, HotterMeansMoreShift)
{
    const double temp_c = GetParam();
    pp::ElementAging cool, hot;
    cool.holdStatic(params(), true, pu::celsiusToKelvin(temp_c), 50.0);
    hot.holdStatic(params(), true, pu::celsiusToKelvin(temp_c + 15.0),
                   50.0);
    EXPECT_GT(hot.deltaVth(params(), pp::TransistorType::Nmos),
              cool.deltaVth(params(), pp::TransistorType::Nmos));
}

INSTANTIATE_TEST_SUITE_P(TwentyFiveToEighty, TemperatureSweep,
                         ::testing::Values(25.0, 40.0, 55.0, 70.0));

// ------------------------------------------------ step-context cache

TEST(StepContextCache, HitsAreEquivalentToFreshConstruction)
{
    const pp::BtiParams p = pp::BtiParams::ultrascalePlus();
    pp::StepContextCache cache;

    const pp::AgingStepContext &warm = cache.get(p, 333.15);
    const pp::AgingStepContext fresh_warm(p, 333.15);
    EXPECT_EQ(warm.stress_accel, fresh_warm.stress_accel);
    EXPECT_EQ(warm.recovery_accel, fresh_warm.recovery_accel);
    EXPECT_EQ(cache.misses(), 1u);

    // Same (params, temperature): a hit, and bitwise the same values.
    const pp::AgingStepContext &again = cache.get(p, 333.15);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(again.stress_accel, fresh_warm.stress_accel);
    EXPECT_EQ(again.recovery_accel, fresh_warm.recovery_accel);

    // Temperature change: recomputed, and again bit-equal to fresh.
    const pp::AgingStepContext &hot = cache.get(p, 363.15);
    const pp::AgingStepContext fresh_hot(p, 363.15);
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(hot.stress_accel, fresh_hot.stress_accel);
    EXPECT_EQ(hot.recovery_accel, fresh_hot.recovery_accel);

    // Different parameter block (same temperature): must not hit.
    pp::BtiParams other = pp::BtiParams::ultrascalePlus();
    other.stress_activation_ev = 0.5;
    const pp::AgingStepContext &alt = cache.get(other, 363.15);
    const pp::AgingStepContext fresh_alt(other, 363.15);
    EXPECT_EQ(cache.misses(), 3u);
    EXPECT_EQ(alt.stress_accel, fresh_alt.stress_accel);
}

TEST(StepContextCache, DeviceAdvanceSharesOneContextPerTemperature)
{
    // An aging sweep at a pinned temperature must pay the two exp()
    // calls once, not once per advance call.
    pp::StepContextCache cache;
    const pp::BtiParams p = pp::BtiParams::ultrascalePlus();
    for (int i = 0; i < 100; ++i) {
        (void)cache.get(p, 318.15);
    }
    EXPECT_EQ(cache.misses(), 1u);
}
