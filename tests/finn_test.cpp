/**
 * @file
 * Tests for the bitstream layer and the FINN-style accelerator:
 * compilation, encryption semantics, skeleton extraction, weight
 * encode/decode, and the end-to-end weight-theft flow at reduced
 * scale.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/attack.hpp"
#include "core/presets.hpp"
#include "fabric/bitstream.hpp"
#include "fabric/device.hpp"
#include "fabric/drc.hpp"
#include "finn/accelerator.hpp"
#include "util/logging.hpp"

namespace pc = pentimento::core;
namespace pcl = pentimento::cloud;
namespace pf = pentimento::fabric;
namespace pfn = pentimento::finn;
namespace pu = pentimento::util;

namespace {

pf::DeviceConfig
family()
{
    pf::DeviceConfig config;
    config.tiles_x = 64;
    config.tiles_y = 64;
    return config;
}

} // namespace

// ----------------------------------------------------------bitstream

TEST(Bitstream, CompileRejectsBadInput)
{
    EXPECT_THROW(pf::Bitstream::compile(nullptr, family()),
                 pu::FatalError);
    pf::DeviceConfig bad = family();
    bad.family = "";
    EXPECT_THROW(pf::Bitstream::compile(
                     std::make_shared<pf::Design>("d"), bad),
                 pu::FatalError);
}

TEST(Bitstream, FrameCountTracksConfiguration)
{
    pf::Device device(family());
    auto design = std::make_shared<pf::Design>("d");
    design->setRouteValue(device.allocateRoute("r", 1000.0), true);
    const pf::Bitstream image =
        pf::Bitstream::compile(design, family());
    // 40 elements -> 2 payload frames + header.
    EXPECT_EQ(image.frameCount(), 3u);
    EXPECT_EQ(image.deviceFamily(), family().family);
}

TEST(Bitstream, InstantiateReturnsTheDesign)
{
    auto design = std::make_shared<pf::Design>("d");
    const pf::Bitstream image =
        pf::Bitstream::compile(design, family());
    EXPECT_EQ(image.instantiate().get(), design.get());
}

TEST(Bitstream, EncryptedImageRefusesInspection)
{
    auto design = std::make_shared<pf::Design>("d");
    const pf::Bitstream image =
        pf::Bitstream::compileEncrypted(design, family());
    EXPECT_TRUE(image.encrypted());
    EXPECT_THROW(image.extractSkeleton(), pu::FatalError);
    // ...but it still loads.
    EXPECT_NE(image.instantiate(), nullptr);
}

TEST(Bitstream, SkeletonExtractionRecoversRoutes)
{
    pf::Device device(family());
    const pf::RouteSpec a = device.allocateRoute("a", 500.0);
    const pf::RouteSpec gap =
        device.allocateRoute("gap", device.config().routing_pitch_ps);
    const pf::RouteSpec b = device.allocateRoute("b", 750.0);
    auto design = std::make_shared<pf::Design>("d");
    design->setRouteValue(a, true);
    design->setRouteToggling(gap, 0.5);
    design->setRouteValue(b, true);

    const pf::Bitstream image =
        pf::Bitstream::compile(design, family());
    const auto skeleton = image.extractSkeleton();
    ASSERT_EQ(skeleton.size(), 3u);
    EXPECT_EQ(skeleton[0].size(), a.size());
    EXPECT_EQ(skeleton[1].size(), 1u);
    EXPECT_EQ(skeleton[2].size(), b.size());
    // Element identity, not just counts.
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(skeleton[0].elements[i], a.elements[i]);
    }
}

TEST(Bitstream, SkeletonSurvivesTileBoundaries)
{
    // A route long enough to span several tiles must still extract
    // as a single net.
    pf::DeviceConfig config = family();
    config.nodes_per_tile = 8;
    pf::Device device(config);
    const pf::RouteSpec long_route = device.allocateRoute("r", 1000.0);
    auto design = std::make_shared<pf::Design>("d");
    design->setRouteValue(long_route, false);
    const pf::Bitstream image = pf::Bitstream::compile(design, config);
    const auto skeleton = image.extractSkeleton();
    ASSERT_EQ(skeleton.size(), 1u);
    EXPECT_EQ(skeleton[0].size(), long_route.size());
}

TEST(Bitstream, NonRoutingResourcesExcludedFromSkeleton)
{
    pf::Device device(family());
    auto design = std::make_shared<pf::Design>("d");
    design->setRouteValue(device.allocateLutPath("lut", 4), true);
    const pf::Bitstream image =
        pf::Bitstream::compile(design, family());
    EXPECT_TRUE(image.extractSkeleton().empty());
}

// --------------------------------------------------------------- finn

TEST(Finn, WeightEncodeDecodeRoundTrip)
{
    pfn::FinnConfig config;
    config.weight_bits = 4;
    const std::vector<int> weights{0, 15, 7, 9, 1, 14, 3, 12, 5, 10,
                                   2, 13};
    const std::vector<bool> bits =
        pfn::FinnAccelerator::encodeWeights(weights, config);
    EXPECT_EQ(bits.size(), weights.size() * 4);
    EXPECT_EQ(pfn::FinnAccelerator::decodeWeights(bits, config),
              weights);
}

TEST(Finn, EncodeRejectsOutOfRange)
{
    pfn::FinnConfig config;
    config.weight_bits = 2;
    EXPECT_THROW(pfn::FinnAccelerator::encodeWeights({4}, config),
                 pu::FatalError);
    EXPECT_THROW(pfn::FinnAccelerator::encodeWeights({-1}, config),
                 pu::FatalError);
}

TEST(Finn, DecodeRejectsRaggedInput)
{
    pfn::FinnConfig config;
    config.weight_bits = 4;
    EXPECT_THROW(pfn::FinnAccelerator::decodeWeights(
                     std::vector<bool>(6), config),
                 pu::FatalError);
}

TEST(Finn, ConstructionValidatesArity)
{
    pf::Device device(family());
    pfn::FinnConfig config;
    config.layer_weights = {4};
    EXPECT_THROW(pfn::FinnAccelerator(device, config, {1, 2}),
                 pu::FatalError);
}

TEST(Finn, DesignEncodesWeightsAsBurnValues)
{
    pf::Device device(family());
    pfn::FinnConfig config;
    config.layer_weights = {2};
    config.weight_bits = 3;
    pfn::FinnAccelerator accel(device, config, {5, 2}); // 101, 010
    const std::vector<bool> expected{true, false, true,
                                     false, true, false};
    EXPECT_EQ(accel.weightBits(), expected);
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(accel.design()->burnValue(i), expected[i]);
    }
    EXPECT_EQ(accel.weightSkeleton().size(), 6u);
}

TEST(Finn, DesignPassesProviderDrc)
{
    pf::Device device(family());
    pfn::FinnConfig config;
    pu::Rng rng(1);
    pfn::FinnAccelerator accel(
        device, config, pfn::FinnAccelerator::randomWeights(config, rng));
    const pf::DesignRuleChecker drc;
    EXPECT_TRUE(drc.accepts(*accel.design()));
    EXPECT_LT(accel.design()->powerW(), 85.0);
}

TEST(Finn, ReferenceBitstreamSkeletonMatchesVendorPlacement)
{
    // The attack's key step: the PUBLIC reference build places the
    // weight routes exactly where the vendor's private build does.
    pf::Device vendor_box(family());
    pfn::FinnConfig config;
    config.layer_weights = {3};
    config.weight_bits = 2;
    pu::Rng rng(2);
    pfn::FinnAccelerator vendor(
        vendor_box, config,
        pfn::FinnAccelerator::randomWeights(config, rng));

    pu::Rng ref_rng(99); // different placeholder weights
    const pf::Bitstream reference =
        vendor.referenceBitstream(family(), ref_rng);
    std::vector<pf::RouteSpec> extracted;
    for (auto &net : reference.extractSkeleton()) {
        if (net.size() >= 2) {
            extracted.push_back(std::move(net));
        }
    }
    ASSERT_EQ(extracted.size(), vendor.weightSkeleton().size());
    for (std::size_t r = 0; r < extracted.size(); ++r) {
        ASSERT_EQ(extracted[r].size(),
                  vendor.weightSkeleton()[r].size());
        for (std::size_t e = 0; e < extracted[r].size(); ++e) {
            EXPECT_EQ(extracted[r].elements[e],
                      vendor.weightSkeleton()[r].elements[e]);
        }
    }
}

TEST(Finn, EndToEndWeightTheftMini)
{
    pcl::PlatformConfig region = pc::awsF1Region(12);
    region.fleet_size = 1;
    pcl::CloudPlatform platform(region);

    pfn::FinnConfig config;
    config.layer_weights = {4};
    config.weight_bits = 2;
    config.route_ps = 8000.0;
    pf::Device build_box(pc::awsF1Silicon());
    pu::Rng rng(42);
    const std::vector<int> secret =
        pfn::FinnAccelerator::randomWeights(config, rng);
    pfn::FinnAccelerator accel(build_box, config, secret);

    const std::string afi_id = platform.marketplace().publish(
        "vendor", accel.design(), accel.weightSkeleton());
    pc::Tm1Options options;
    options.burn_hours = 80.0;
    options.measure_every_h = 4.0;
    options.seed = 7;
    const pc::Tm1Report report =
        pc::extractDesignData(platform, afi_id, options);
    const std::vector<int> recovered =
        pfn::FinnAccelerator::decodeWeights(report.recovered_bits,
                                            config);
    int exact = 0;
    for (std::size_t w = 0; w < recovered.size(); ++w) {
        exact += recovered[w] == secret[w];
    }
    EXPECT_GE(exact, 3); // 8 ns routes: nearly every weight lands
}
