/**
 * @file
 * Tests for the key-rank / guessing-entropy analysis and for the new
 * substrate features added beyond the first milestone: LUT paths,
 * provider active scrub, attacker quarantine waits and skeleton
 * necessity.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/attack.hpp"
#include "core/classifier.hpp"
#include "core/experiment.hpp"
#include "core/keyrank.hpp"
#include "core/presets.hpp"
#include "fabric/device.hpp"
#include "phys/thermal.hpp"
#include "tdc/tdc.hpp"
#include "util/logging.hpp"

namespace pc = pentimento::core;
namespace pcl = pentimento::cloud;
namespace pf = pentimento::fabric;
namespace pp = pentimento::phys;
namespace pt = pentimento::tdc;
namespace pu = pentimento::util;

namespace {

pc::BitEstimate
bit(bool value, double confidence)
{
    pc::BitEstimate estimate;
    estimate.value = value;
    estimate.confidence = confidence;
    return estimate;
}

} // namespace

// ------------------------------------------------------ binaryEntropy

TEST(BinaryEntropy, ExtremesAreZero)
{
    EXPECT_DOUBLE_EQ(pc::binaryEntropy(0.0), 0.0);
    EXPECT_DOUBLE_EQ(pc::binaryEntropy(1.0), 0.0);
}

TEST(BinaryEntropy, MaximalAtHalf)
{
    EXPECT_DOUBLE_EQ(pc::binaryEntropy(0.5), 1.0);
    EXPECT_GT(pc::binaryEntropy(0.5), pc::binaryEntropy(0.3));
    EXPECT_GT(pc::binaryEntropy(0.5), pc::binaryEntropy(0.9));
}

TEST(BinaryEntropy, Symmetric)
{
    EXPECT_NEAR(pc::binaryEntropy(0.2), pc::binaryEntropy(0.8), 1e-12);
}

// ------------------------------------------------------- key ranking

TEST(KeyRank, AllCertainBitsNeedNoBruteForce)
{
    std::vector<pc::BitEstimate> bits(16, bit(true, 1.0));
    const pc::KeyRankReport report = pc::analyzeKeyRank(bits);
    EXPECT_EQ(report.key_bits, 16u);
    EXPECT_EQ(report.brute_force_bits, 0u);
    EXPECT_NEAR(report.residual_entropy_bits, 0.0, 1e-9);
    EXPECT_GE(report.success_probability, 0.9);
}

TEST(KeyRank, CoinFlipBitsMustAllBeEnumerated)
{
    std::vector<pc::BitEstimate> bits(8, bit(false, 0.0));
    const pc::KeyRankReport report = pc::analyzeKeyRank(bits, 0.9);
    EXPECT_EQ(report.brute_force_bits, 8u);
    EXPECT_NEAR(report.residual_entropy_bits, 8.0, 1e-9);
}

TEST(KeyRank, WeakestBitsEnumeratedFirst)
{
    std::vector<pc::BitEstimate> bits;
    for (int i = 0; i < 12; ++i) {
        bits.push_back(bit(true, 0.999));
    }
    bits.push_back(bit(true, 0.0));
    bits.push_back(bit(false, 0.1));
    const pc::KeyRankReport report = pc::analyzeKeyRank(bits, 0.9);
    // Only the two weak bits need enumeration.
    EXPECT_LE(report.brute_force_bits, 3u);
    EXPECT_GE(report.brute_force_bits, 2u);
    EXPECT_GE(report.success_probability, 0.9);
}

TEST(KeyRank, EmptyKeyIsTrivial)
{
    const pc::KeyRankReport report = pc::analyzeKeyRank({});
    EXPECT_EQ(report.key_bits, 0u);
    EXPECT_DOUBLE_EQ(report.success_probability, 1.0);
}

TEST(KeyRank, BadTargetFatal)
{
    std::vector<pc::BitEstimate> bits(2, bit(true, 0.5));
    EXPECT_THROW(pc::analyzeKeyRank(bits, 0.0), pu::FatalError);
    EXPECT_THROW(pc::analyzeKeyRank(bits, 1.0), pu::FatalError);
}

TEST(KeyRank, EntropyDecreasesWithConfidence)
{
    std::vector<pc::BitEstimate> weak(8, bit(true, 0.2));
    std::vector<pc::BitEstimate> strong(8, bit(true, 0.95));
    EXPECT_GT(pc::analyzeKeyRank(weak).residual_entropy_bits,
              pc::analyzeKeyRank(strong).residual_entropy_bits);
}

TEST(KeyRank, RealClassificationIsNearlyBruteForceFree)
{
    pc::Experiment2Config config;
    config.groups = {{8000.0, 8}};
    config.burn_hours = 60.0;
    config.measure_every_h = 5.0;
    config.platform.fleet_size = 2;
    config.seed = 32;
    const auto result = pc::runExperiment2(config);
    const auto report = pc::ThreatModel1Classifier().classify(result);
    const pc::KeyRankReport rank =
        pc::analyzeKeyRank(report.bits, 0.75);
    EXPECT_LE(rank.brute_force_bits, 3u);
}

// ------------------------------------------------------- LUT paths

TEST(LutPath, AllocatesLutResources)
{
    pf::Device device{pf::DeviceConfig{}};
    const pf::RouteSpec path = device.allocateLutPath("lut", 10);
    EXPECT_EQ(path.size(), 10u);
    for (const auto &id : path.elements) {
        EXPECT_EQ(id.type, pf::ResourceType::Lut);
    }
    EXPECT_THROW(device.allocateLutPath("bad", 0), pu::FatalError);
}

TEST(LutPath, CouplingSuppressesObservableShift)
{
    pf::Device device{pf::DeviceConfig{}};
    const pf::RouteSpec net = device.allocateRoute("net", 5000.0);
    const pf::RouteSpec lut = device.allocateLutPath("lut", 40);
    auto design = std::make_shared<pf::Design>("burn");
    design->setRouteValue(net, true);
    design->setRouteValue(lut, true);
    device.loadDesign(design);
    pp::OvenEnvironment oven(333.15);
    device.advance(200.0, oven);

    pf::Route net_route = device.bindRoute(net);
    pf::Route lut_route = device.bindRoute(lut);
    const double net_shift =
        net_route.btiShiftPs(pp::Transition::Falling);
    const double lut_shift =
        lut_route.btiShiftPs(pp::Transition::Falling);
    EXPECT_GT(net_shift, 1.0);
    EXPECT_LT(lut_shift, 0.1 * net_shift);
    EXPECT_GT(lut_shift, 0.0); // the imprint exists, just tiny
}

TEST(LutPath, ImprintedIdsReportsEverything)
{
    // The provider-scrub support listing: configured-but-unobserved
    // (journal-deferred) elements must show up even though they are
    // not materialised yet — the scrub has to drive them too.
    pf::Device device{pf::DeviceConfig{}};
    EXPECT_TRUE(device.imprintedIds().empty());
    const pf::RouteSpec net = device.allocateRoute("net", 250.0);
    auto design = std::make_shared<pf::Design>("d");
    design->setRouteValue(net, true);
    device.loadDesign(design);
    EXPECT_TRUE(device.materializedIds().empty());
    EXPECT_EQ(device.imprintedIds().size(), net.size());
    // Full observation converges the two listings.
    pf::Route route = device.bindRoute(net);
    EXPECT_EQ(device.materializedIds().size(), net.size());
    EXPECT_EQ(device.imprintedIds().size(), net.size());
}

// ------------------------------------------------- provider scrub

TEST(ActiveScrub, ScrubDesignLoadedOnRelease)
{
    pcl::PlatformConfig config = pc::awsF1Region(3);
    config.fleet_size = 1;
    config.active_scrub = true;
    pcl::CloudPlatform platform(config);

    const auto id = platform.rent();
    pf::Device &device = platform.instance(*id).device();
    const pf::RouteSpec net = device.allocateRoute("net", 1000.0);
    auto design = std::make_shared<pf::Design>("victim");
    design->setRouteValue(net, true);
    ASSERT_TRUE(platform.loadDesign(*id, design).empty());
    platform.advanceHours(10.0);
    platform.release(*id);

    ASSERT_NE(device.currentDesign(), nullptr);
    EXPECT_EQ(device.currentDesign()->name(), "provider_scrub");
    // Scrub toggles the previously-used elements.
    EXPECT_EQ(device.currentDesign()->activityFor(net.elements[0]).kind,
              pf::Activity::Toggle);

    // Renting hands over a clean configuration again.
    const auto again = platform.rent();
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(device.currentDesign(), nullptr);
}

TEST(ActiveScrub, ReducesDifferentialImprint)
{
    const auto imprintAfterPool = [](bool scrub) {
        pcl::PlatformConfig config = pc::awsF1Region(4);
        config.fleet_size = 1;
        config.active_scrub = scrub;
        pcl::CloudPlatform platform(config);
        const auto id = platform.rent();
        pf::Device &device = platform.instance(*id).device();
        const pf::RouteSpec net = device.allocateRoute("net", 5000.0);
        auto design = std::make_shared<pf::Design>("victim");
        design->setRouteValue(net, true);
        platform.loadDesign(*id, design);
        platform.advanceHours(100.0);
        platform.release(*id);
        platform.advanceHours(72.0); // pooled (idle or scrubbed)
        pf::Route route = device.bindRoute(net);
        return route.btiShiftPs(pp::Transition::Falling) -
               route.btiShiftPs(pp::Transition::Rising);
    };
    const double idle = imprintAfterPool(false);
    const double scrubbed = imprintAfterPool(true);
    EXPECT_GT(idle, 0.0);
    EXPECT_LT(scrubbed, 0.75 * idle);
}

// ----------------------------------------------- attacker wait (TM2)

TEST(AttackerWait, QuarantineWaitStillFindsBoardInTinyRegion)
{
    pc::Experiment3Config config;
    config.groups = {{8000.0, 6}};
    config.burn_hours = 100.0;
    config.recovery_hours = 20.0;
    config.attacker_wait_h = 48.0;
    config.platform.fleet_size = 1;
    config.platform.quarantine_hours = 48.0;
    config.seed = 99;
    const pc::ExperimentResult result = pc::runExperiment3(config);
    // Series start after burn + wait.
    EXPECT_DOUBLE_EQ(result.routes[0].series.hours().front(), 148.0);
}

// --------------------------------------- skeleton necessity (Assum.1)

TEST(SkeletonNecessity, WrongSkeletonYieldsNoSignal)
{
    pf::Device device{pf::DeviceConfig{}};
    pp::OvenEnvironment oven(333.15);
    pu::Rng rng(5);

    const pf::RouteSpec truth = device.allocateRoute("true", 5000.0);
    const pf::RouteSpec decoy = device.allocateRoute("decoy", 5000.0);

    pt::Tdc sensor(device, decoy,
                   device.allocateCarryChain("c", 64));
    sensor.calibrate(oven.dieTempK(), rng);
    const double before =
        sensor.measure(oven.dieTempK(), rng).deltaPs();

    auto design = std::make_shared<pf::Design>("victim");
    design->setRouteValue(truth, true);
    device.loadDesign(design);
    device.advance(200.0, oven);
    device.wipe();

    const double drift =
        sensor.measure(oven.dieTempK(), rng).deltaPs() - before;
    // The decoy saw no stress: drift stays inside the noise floor,
    // far below the ~5 ps a correct skeleton would show.
    EXPECT_LT(std::abs(drift), 1.0);
}
