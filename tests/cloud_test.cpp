/**
 * @file
 * Unit tests for the cloud platform: ambient process, instances,
 * marketplace, rental lifecycle (wipe semantics, policies, quarantine,
 * flash acquisition) and fingerprint-based board re-identification.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "cloud/ambient.hpp"
#include "cloud/fingerprint.hpp"
#include "cloud/instance.hpp"
#include "cloud/marketplace.hpp"
#include "cloud/platform.hpp"
#include "core/presets.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"

namespace pc = pentimento::cloud;
namespace pf = pentimento::fabric;
namespace pu = pentimento::util;

namespace {

pc::PlatformConfig
smallRegion(std::size_t fleet = 3, std::uint64_t seed = 11)
{
    pc::PlatformConfig config = pentimento::core::awsF1Region(seed);
    config.fleet_size = fleet;
    config.device_template.tiles_x = 32;
    config.device_template.tiles_y = 32;
    return config;
}

} // namespace

// ------------------------------------------------------------ ambient

TEST(Ambient, StartsAtMean)
{
    pc::AmbientModel model({}, pu::Rng(1));
    EXPECT_DOUBLE_EQ(model.ambientK(), pc::AmbientParams{}.mean_k);
}

TEST(Ambient, StationaryMomentsMatchParams)
{
    pc::AmbientParams params;
    pc::AmbientModel model(params, pu::Rng(2));
    pu::RunningStats stats;
    for (int i = 0; i < 20000; ++i) {
        stats.add(model.step(1.0));
    }
    EXPECT_NEAR(stats.mean(), params.mean_k, 0.1);
    EXPECT_NEAR(stats.stddev(), params.sigma_k, 0.15);
}

TEST(Ambient, ZeroStepKeepsState)
{
    pc::AmbientModel model({}, pu::Rng(3));
    const double before = model.ambientK();
    EXPECT_DOUBLE_EQ(model.step(0.0), before);
}

TEST(Ambient, NegativeStepFatal)
{
    pc::AmbientModel model({}, pu::Rng(3));
    EXPECT_THROW(model.step(-1.0), pu::FatalError);
}

TEST(Ambient, DeterministicPerSeed)
{
    pc::AmbientModel a({}, pu::Rng(9));
    pc::AmbientModel b({}, pu::Rng(9));
    for (int i = 0; i < 10; ++i) {
        EXPECT_DOUBLE_EQ(a.step(1.0), b.step(1.0));
    }
}

TEST(Ambient, BadParamsFatal)
{
    pc::AmbientParams params;
    params.mean_k = -1.0;
    EXPECT_THROW(pc::AmbientModel(params, pu::Rng(1)), pu::FatalError);
    params = {};
    params.sigma_k = -0.5;
    EXPECT_THROW(pc::AmbientModel(params, pu::Rng(1)), pu::FatalError);
    params = {};
    params.event_every_h = 0.0;
    EXPECT_THROW(pc::AmbientModel(params, pu::Rng(1)), pu::FatalError);
}

// ------------------------------------------- event-driven ambient

/** Split total hours into random multiples of 1/4 h (sums exactly). */
std::vector<double>
dyadicSpanPartition(double total_h, std::uint64_t seed)
{
    pu::Rng rng(seed);
    auto ticks = static_cast<std::uint64_t>(total_h * 4.0);
    std::vector<double> parts;
    while (ticks > 0) {
        const std::uint64_t take =
            rng.uniformInt(1, std::min<std::uint64_t>(ticks, 96));
        parts.push_back(static_cast<double>(take) / 4.0);
        ticks -= take;
    }
    return parts;
}

TEST(Ambient, AdvanceIsLazyUntilObserved)
{
    pc::AmbientModel model({}, pu::Rng(5));
    model.advance(1000.0);
    EXPECT_EQ(model.committedEvents(), 0u);
    EXPECT_EQ(model.pendingEvents(), 1000u);
    model.ambientK();
    EXPECT_EQ(model.committedEvents(), 1000u);
    EXPECT_EQ(model.pendingEvents(), 0u);
}

TEST(Ambient, JumpMatchesHourlyStepsBitExactly)
{
    // The tentpole property: a 24 h jump produces the same
    // temperature as 24 x 1 h observed steps — the draws are keyed to
    // absolute event indices, not to the call pattern.
    pc::AmbientModel hourly({}, pu::Rng(9));
    pc::AmbientModel jump({}, pu::Rng(9));
    double last = 0.0;
    for (int h = 0; h < 24; ++h) {
        last = hourly.step(1.0);
    }
    EXPECT_EQ(jump.step(24.0), last);
    EXPECT_EQ(jump.committedEvents(), hourly.committedEvents());
}

TEST(Ambient, EventTracePartitionInvariant)
{
    // Random dyadic splits of a 30-day span: after any prefix, the
    // temperature is bit-identical to a fresh model jumped straight
    // to the same clock — the trace depends only on absolute time.
    for (const std::uint64_t seed : {3u, 4u, 5u}) {
        pc::AmbientModel split({}, pu::Rng(77));
        double t = 0.0;
        for (const double dt : dyadicSpanPartition(720.0, seed)) {
            split.advance(dt);
            t += dt;
            pc::AmbientModel direct({}, pu::Rng(77));
            direct.advance(t);
            ASSERT_EQ(split.ambientK(), direct.ambientK())
                << "prefix ending at t=" << t << " (seed " << seed
                << ")";
        }
        EXPECT_DOUBLE_EQ(t, 720.0);
    }
}

TEST(Ambient, StationaryMomentsOverManyEvents)
{
    // 1e5 events at the default hourly cadence: the exact transition
    // must hold the stationary moments.
    pc::AmbientParams params;
    pc::AmbientModel model(params, pu::Rng(11));
    pu::RunningStats stats;
    for (int i = 0; i < 100000; ++i) {
        stats.add(model.step(1.0));
    }
    EXPECT_NEAR(stats.mean(), params.mean_k, 0.05);
    EXPECT_NEAR(stats.stddev(), params.sigma_k, 0.1);
}

TEST(Ambient, CoarseCadenceKeepsStationaryMoments)
{
    // A day-long event cadence (whole idle days coalesced into one
    // draw) is still the exact OU transition: same stationary law.
    pc::AmbientParams params;
    params.event_every_h = 24.0;
    pc::AmbientModel model(params, pu::Rng(13));
    pu::RunningStats stats;
    for (int i = 0; i < 100000; ++i) {
        stats.add(model.step(24.0));
    }
    EXPECT_NEAR(stats.mean(), params.mean_k, 0.05);
    EXPECT_NEAR(stats.stddev(), params.sigma_k, 0.1);
}

// ----------------------------------------------------------- instance

TEST(Instance, AdvanceAccumulatesDeviceHours)
{
    pc::FpgaInstance inst("fpga-x",
                          smallRegion().device_template, {},
                          pu::Rng(1));
    inst.advanceHours(3.0, 1.0);
    EXPECT_DOUBLE_EQ(inst.device().elapsedHours(), 3.0);
}

TEST(Instance, DieHeatsUnderLoad)
{
    pc::FpgaInstance inst("fpga-x", smallRegion().device_template, {},
                          pu::Rng(1));
    auto design = std::make_shared<pf::Design>("hot");
    design->setPowerW(60.0);
    inst.device().loadDesign(design);
    const double idle = inst.dieTempK();
    inst.advanceHours(1.0, 0.25);
    EXPECT_GT(inst.dieTempK(), idle + 10.0);
}

TEST(Instance, EmptyIdFatal)
{
    EXPECT_THROW(pc::FpgaInstance("", smallRegion().device_template, {},
                                  pu::Rng(1)),
                 pu::FatalError);
}

TEST(Instance, BadStepFatal)
{
    pc::FpgaInstance inst("fpga-x", smallRegion().device_template, {},
                          pu::Rng(1));
    EXPECT_THROW(inst.advanceHours(-1.0), pu::FatalError);
    EXPECT_THROW(inst.advanceHours(1.0, 0.0), pu::FatalError);
}

TEST(Instance, DeferredIdleMatchesHourlyObservation)
{
    // An idle card advanced in one 240 h jump and observed once must
    // be bit-identical to a twin advanced hour by hour with the die
    // temperature read every hour: laziness is unobservable.
    const auto config = smallRegion().device_template;
    pc::FpgaInstance lazy("fpga-a", config, {}, pu::Rng(21));
    pc::FpgaInstance eager("fpga-a", config, {}, pu::Rng(21));
    double last = 0.0;
    for (int h = 0; h < 240; ++h) {
        eager.advanceHours(1.0);
        last = eager.dieTempK();
    }
    lazy.advanceHours(240.0);
    EXPECT_EQ(lazy.dieTempK(), last);
    EXPECT_DOUBLE_EQ(lazy.device().elapsedHours(), 240.0);
    EXPECT_DOUBLE_EQ(eager.device().elapsedHours(), 240.0);
}

/**
 * The paper-shaped fleet scenario: burn a route for 72 h, provider
 * wipe, idle in the pool for 30 days, then measure. The burn and the
 * idle span are partitioned differently per run; the aged delay must
 * not depend on the partition. Dyadic quarter-hour splits stay above
 * the package model's full-relaxation horizon (~0.2 h at tau = 18 s),
 * below which sub-partitioning a span changes the die temperature in
 * the last ulp.
 */
double
agedDelayAfterFleetScenario(const std::vector<double> &burn_parts,
                            const std::vector<double> &idle_parts)
{
    pc::FpgaInstance inst("fpga-x", smallRegion().device_template, {},
                          pu::Rng(31));
    pf::Device &device = inst.device();
    const pf::RouteSpec spec = device.allocateRoute("r", 1000.0);
    auto design = std::make_shared<pf::Design>("burn");
    design->setRouteValue(spec, true);
    design->setPowerW(30.0);
    device.loadDesign(design);
    for (const double dt : burn_parts) {
        inst.advanceHours(dt);
    }
    device.wipe();
    for (const double dt : idle_parts) {
        inst.advanceHours(dt);
    }
    // Read through a directly-bound Route: the device's
    // pre-observation hook must flush the deferred idle backlog.
    pf::Route route = device.bindRoute(spec);
    return route.delayPs(pentimento::phys::Transition::Falling, 333.15);
}

TEST(Instance, PartitionInvariantAgedDelays)
{
    const std::vector<double> burn_jump{72.0};
    const std::vector<double> idle_jump{720.0};
    const double golden =
        agedDelayAfterFleetScenario(burn_jump, idle_jump);
    // Hourly burn + daily idle.
    std::vector<double> burn_hourly(72, 1.0);
    std::vector<double> idle_daily(30, 24.0);
    EXPECT_EQ(agedDelayAfterFleetScenario(burn_hourly, idle_daily),
              golden);
    // Random dyadic splits of both spans.
    for (const std::uint64_t seed : {41u, 42u, 43u}) {
        EXPECT_EQ(agedDelayAfterFleetScenario(
                      dyadicSpanPartition(72.0, seed),
                      dyadicSpanPartition(720.0, seed + 100)),
                  golden)
            << "dyadic partition seed " << seed;
    }
}

// -------------------------------------------------------- marketplace

TEST(Marketplace, PublishAndFetch)
{
    pc::Marketplace market;
    auto design = std::make_shared<pf::Design>("afi");
    const std::string id = market.publish("vendor", design, {});
    EXPECT_EQ(market.fetchDesign(id).get(), design.get());
    EXPECT_EQ(market.record(id).publisher, "vendor");
    EXPECT_EQ(market.size(), 1u);
}

TEST(Marketplace, IdsAreUnique)
{
    pc::Marketplace market;
    auto design = std::make_shared<pf::Design>("afi");
    const std::string a = market.publish("v", design, {});
    const std::string b = market.publish("v", design, {});
    EXPECT_NE(a, b);
}

TEST(Marketplace, UnknownAfiFatal)
{
    pc::Marketplace market;
    EXPECT_THROW(market.fetchDesign("agfi-404"), pu::FatalError);
}

TEST(Marketplace, NullDesignFatal)
{
    pc::Marketplace market;
    EXPECT_THROW(market.publish("v", nullptr, {}), pu::FatalError);
}

TEST(Marketplace, SkeletonRoundTrip)
{
    pc::Marketplace market;
    auto design = std::make_shared<pf::Design>("afi");
    pf::RouteSpec spec;
    spec.name = "secret";
    spec.target_ps = 1000.0;
    spec.elements.push_back({});
    const std::string id = market.publish("v", design, {spec});
    ASSERT_EQ(market.skeleton(id).size(), 1u);
    EXPECT_EQ(market.skeleton(id)[0].name, "secret");
}

// ----------------------------------------------------------- platform

TEST(Platform, FleetSizeRespected)
{
    pc::CloudPlatform platform(smallRegion(4));
    EXPECT_EQ(platform.allInstanceIds().size(), 4u);
    EXPECT_EQ(platform.availableCount(), 4u);
}

TEST(Platform, EmptyFleetFatal)
{
    pc::PlatformConfig config = smallRegion(1);
    config.fleet_size = 0;
    EXPECT_THROW(pc::CloudPlatform{config}, pu::FatalError);
}

TEST(Platform, RentReducesAvailability)
{
    pc::CloudPlatform platform(smallRegion(2));
    const auto id = platform.rent();
    ASSERT_TRUE(id.has_value());
    EXPECT_EQ(platform.availableCount(), 1u);
    EXPECT_TRUE(platform.instance(*id).rented());
}

TEST(Platform, ExhaustionReturnsNullopt)
{
    // The paper hit exactly this error on AWS, motivating the flash
    // attack.
    pc::CloudPlatform platform(smallRegion(2));
    EXPECT_TRUE(platform.rent().has_value());
    EXPECT_TRUE(platform.rent().has_value());
    EXPECT_FALSE(platform.rent().has_value());
}

TEST(Platform, RentAllGrabsEverything)
{
    pc::CloudPlatform platform(smallRegion(5));
    const auto ids = platform.rentAll();
    EXPECT_EQ(ids.size(), 5u);
    EXPECT_EQ(platform.availableCount(), 0u);
}

TEST(Platform, ReleaseWipesDesignButKeepsInstance)
{
    pc::CloudPlatform platform(smallRegion(2));
    const auto id = platform.rent();
    auto design = std::make_shared<pf::Design>("d");
    EXPECT_TRUE(platform.loadDesign(*id, design).empty());
    EXPECT_NE(platform.instance(*id).device().currentDesign(), nullptr);
    platform.release(*id);
    EXPECT_EQ(platform.instance(*id).device().currentDesign(), nullptr);
    EXPECT_FALSE(platform.instance(*id).rented());
}

TEST(Platform, ReleaseNotRentedFatal)
{
    pc::CloudPlatform platform(smallRegion(2));
    EXPECT_THROW(platform.release("fpga-0"), pu::FatalError);
    EXPECT_THROW(platform.release("nope"), pu::FatalError);
}

TEST(Platform, UnknownInstanceFatal)
{
    pc::CloudPlatform platform(smallRegion(2));
    EXPECT_THROW(platform.instance("missing"), pu::FatalError);
}

TEST(Platform, LifoPolicyReturnsVictimBoard)
{
    pc::PlatformConfig config = smallRegion(3);
    config.policy = pc::AllocationPolicy::MostRecentlyReleased;
    pc::CloudPlatform platform(config);
    // Rent two boards, release them in order; LIFO returns the last
    // released first.
    const auto a = platform.rent();
    const auto b = platform.rent();
    platform.advanceHours(1.0);
    platform.release(*a);
    platform.advanceHours(1.0);
    platform.release(*b);
    const auto next = platform.rent();
    EXPECT_EQ(*next, *b);
}

TEST(Platform, FifoPolicyReturnsOldestBoard)
{
    pc::PlatformConfig config = smallRegion(2);
    config.policy = pc::AllocationPolicy::LeastRecentlyReleased;
    pc::CloudPlatform platform(config);
    const auto a = platform.rent();
    const auto b = platform.rent();
    platform.advanceHours(1.0);
    platform.release(*a);
    platform.advanceHours(1.0);
    platform.release(*b);
    const auto next = platform.rent();
    EXPECT_EQ(*next, *a);
}

TEST(Platform, QuarantineDelaysRerental)
{
    // §8.2 launch-rate control: released boards are withheld.
    pc::PlatformConfig config = smallRegion(1);
    config.quarantine_hours = 24.0;
    pc::CloudPlatform platform(config);
    const auto id = platform.rent();
    platform.advanceHours(1.0);
    platform.release(*id);
    EXPECT_EQ(platform.availableCount(), 0u);
    EXPECT_FALSE(platform.rent().has_value());
    platform.advanceHours(25.0);
    EXPECT_EQ(platform.availableCount(), 1u);
    EXPECT_TRUE(platform.rent().has_value());
}

TEST(Platform, DrcBlocksRingOscillator)
{
    pc::CloudPlatform platform(smallRegion(2));
    const auto id = platform.rent();
    auto ro = std::make_shared<pf::Design>("ro");
    ro->addCombinationalEdge("a", "b");
    ro->addCombinationalEdge("b", "a");
    const auto violations = platform.loadDesign(*id, ro);
    ASSERT_FALSE(violations.empty());
    EXPECT_EQ(violations[0].rule, "combinational-loop");
    // Rejected design is not resident.
    EXPECT_EQ(platform.instance(*id).device().currentDesign(), nullptr);
}

TEST(Platform, DrcBlocksOverPowerDesign)
{
    pc::CloudPlatform platform(smallRegion(2));
    const auto id = platform.rent();
    auto hot = std::make_shared<pf::Design>("hot");
    hot->setPowerW(100.0);
    const auto violations = platform.loadDesign(*id, hot);
    ASSERT_FALSE(violations.empty());
    EXPECT_EQ(violations[0].rule, "power-cap");
}

TEST(Platform, LoadOnUnrentedInstanceFatal)
{
    pc::CloudPlatform platform(smallRegion(2));
    auto design = std::make_shared<pf::Design>("d");
    EXPECT_THROW(platform.loadDesign("fpga-0", design), pu::FatalError);
}

TEST(Platform, AdvanceMovesClock)
{
    pc::CloudPlatform platform(smallRegion(2));
    platform.advanceHours(5.0);
    EXPECT_DOUBLE_EQ(platform.nowHours(), 5.0);
}

TEST(Platform, AdvanceBadArgsFatal)
{
    pc::CloudPlatform platform(smallRegion(2));
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_THROW(platform.advanceHours(-1.0), pu::FatalError);
    EXPECT_THROW(platform.advanceHours(nan), pu::FatalError);
    EXPECT_THROW(platform.advanceHours(inf), pu::FatalError);
    EXPECT_THROW(platform.advanceHours(1.0, 0.0), pu::FatalError);
    EXPECT_THROW(platform.advanceHours(1.0, -0.5), pu::FatalError);
    EXPECT_THROW(platform.advanceHours(1.0, nan), pu::FatalError);
    // Validation happens before any board advances: the clock (and
    // the fleet) are untouched by the failed calls.
    EXPECT_DOUBLE_EQ(platform.nowHours(), 0.0);
    for (const auto &id : platform.allInstanceIds()) {
        EXPECT_DOUBLE_EQ(
            platform.instance(id).device().elapsedHours(), 0.0);
    }
}

TEST(Platform, FleetAgesDifferently)
{
    pc::CloudPlatform platform(smallRegion(4, 77));
    double min_scale = 1.0, max_scale = 0.0;
    for (const auto &id : platform.allInstanceIds()) {
        // Not rented, but accessing silicon parameters is fine for
        // the test's purpose.
        const double s = platform.instance(id).device().freshScale();
        min_scale = std::min(min_scale, s);
        max_scale = std::max(max_scale, s);
        EXPECT_LT(s, 0.35); // all cards are years old
    }
    EXPECT_NE(min_scale, max_scale);
}

// -------------------------------------------------------- fingerprint

TEST(Fingerprint, ProbeSpecsDeterministic)
{
    const pc::Fingerprinter fp;
    const auto config = smallRegion().device_template;
    const auto a = fp.probeSpecs(config);
    const auto b = fp.probeSpecs(config);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].elements.size(), b[i].elements.size());
        for (std::size_t e = 0; e < a[i].elements.size(); ++e) {
            EXPECT_EQ(a[i].elements[e], b[i].elements[e]);
        }
    }
}

TEST(Fingerprint, SelfSimilarityHigh)
{
    pc::CloudPlatform platform(smallRegion(2, 5));
    const auto id = platform.rent();
    pc::Fingerprinter fp;
    const auto fp1 = fp.probe(platform.instance(*id), "p1");
    const auto fp2 = fp.probe(platform.instance(*id), "p2");
    EXPECT_GT(pc::Fingerprinter::similarity(fp1, fp2), 0.9);
}

TEST(Fingerprint, CrossDeviceSimilarityLow)
{
    pc::CloudPlatform platform(smallRegion(2, 5));
    const auto a = platform.rent();
    const auto b = platform.rent();
    pc::Fingerprinter fp;
    const auto fpa = fp.probe(platform.instance(*a), "a");
    const auto fpb = fp.probe(platform.instance(*b), "b");
    EXPECT_LT(pc::Fingerprinter::similarity(fpa, fpb), 0.6);
}

TEST(Fingerprint, MatchFindsCorrectBoard)
{
    pc::CloudPlatform platform(smallRegion(3, 5));
    const auto ids = platform.rentAll();
    pc::Fingerprinter fp;
    std::vector<pc::Fingerprint> catalog;
    for (const auto &id : ids) {
        catalog.push_back(fp.probe(platform.instance(id), id));
    }
    const auto probe = fp.probe(platform.instance(ids[1]), "again");
    EXPECT_EQ(pc::Fingerprinter::match(probe, catalog), 1);
}

TEST(Fingerprint, MatchRespectsThreshold)
{
    pc::CloudPlatform platform(smallRegion(2, 5));
    const auto a = platform.rent();
    const auto b = platform.rent();
    pc::Fingerprinter fp;
    const auto fpa = fp.probe(platform.instance(*a), "a");
    const auto fpb = fp.probe(platform.instance(*b), "b");
    EXPECT_EQ(pc::Fingerprinter::match(fpa, {fpb}, 0.95), -1);
}

TEST(Fingerprint, SimilaritySizeMismatchFatal)
{
    pc::Fingerprint a, b;
    a.route_delays_ps = {1.0, 2.0};
    b.route_delays_ps = {1.0};
    EXPECT_THROW(pc::Fingerprinter::similarity(a, b), pu::FatalError);
}

TEST(Fingerprint, TooFewProbesFatal)
{
    pc::FingerprintConfig config;
    config.probe_routes = 1;
    EXPECT_THROW(pc::Fingerprinter{config}, pu::FatalError);
}
