#!/bin/sh
# Signal-safety contract for bench/fleet_campaign: SIGTERM (and
# SIGINT) mid-campaign must flush a final checkpoint at the current
# day boundary and exit 128+sig, leaving the campaign --resume-able.
# Run by CTest as
#   sh fleet_campaign_signal_test.sh <path-to-fleet_campaign>
set -u

bin="${1:?usage: fleet_campaign_signal_test.sh <fleet_campaign-binary>}"
workdir=$(mktemp -d) || exit 1
ckpt="$workdir/signal.ckpt"
log="$workdir/run.log"
failures=0

cleanup() {
    rm -rf "$workdir"
}
trap cleanup EXIT

# Throttled campaign in the background: ~50 ms per simulated day
# leaves a wide window to signal it mid-loop.
"$bin" --fleet 8 --years 1 --seed 7 --day-sleep-ms 50 \
    --checkpoint-path "$ckpt" >"$log" 2>&1 &
pid=$!
sleep 2
kill -TERM "$pid"
wait "$pid"
code=$?

if [ "$code" -ne 143 ]; then
    echo "FAIL [exit code]: got $code, want 143 (128+SIGTERM)" >&2
    failures=$((failures + 1))
else
    echo "ok [exit code 143]"
fi

if [ ! -s "$ckpt" ]; then
    echo "FAIL [checkpoint]: $ckpt missing or empty after SIGTERM" >&2
    failures=$((failures + 1))
else
    echo "ok [final checkpoint written]"
fi

if ! grep -q "checkpoint written" "$log"; then
    echo "FAIL [message]: no 'checkpoint written' notice in output" >&2
    failures=$((failures + 1))
else
    echo "ok [operator notice]"
fi

# The interrupted campaign must be resumable: pick up from the
# checkpoint and halt a few days later, exiting cleanly.
if ! "$bin" --fleet 8 --years 1 --seed 7 --resume \
        --checkpoint-path "$ckpt" --halt-at-day 360 \
        >"$workdir/resume.log" 2>&1; then
    echo "FAIL [resume]: nonzero exit resuming from signal checkpoint" >&2
    cat "$workdir/resume.log" >&2
    failures=$((failures + 1))
elif ! grep -q "resumed from" "$workdir/resume.log"; then
    echo "FAIL [resume]: output does not report a resume" >&2
    failures=$((failures + 1))
else
    echo "ok [resume after signal]"
fi

if [ "$failures" -ne 0 ]; then
    echo "$failures signal contract failure(s)" >&2
    exit 1
fi
echo "fleet_campaign signal contract: all cases pass"
