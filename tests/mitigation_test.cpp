/**
 * @file
 * Tests for the §8.1 user mitigations and the route-shortening
 * advisor.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "fabric/device.hpp"
#include "mitigation/advisor.hpp"
#include "mitigation/strategies.hpp"
#include "mitigation/strategy.hpp"
#include "util/logging.hpp"

namespace pf = pentimento::fabric;
namespace pm = pentimento::mitigation;
namespace pu = pentimento::util;

namespace {

struct Fixture
{
    Fixture()
    {
        pf::DeviceConfig config;
        config.tiles_x = 64;
        config.tiles_y = 64;
        device = std::make_unique<pf::Device>(config);
        for (int i = 0; i < 4; ++i) {
            specs.push_back(device->allocateRoute(
                "r" + std::to_string(i), 500.0));
        }
        logical = {true, false, true, true};
        pf::ArithmeticHeavyConfig arith;
        arith.dsp_count = 0;
        design = std::make_unique<pf::TargetDesign>("t", specs, logical,
                                                    arith);
    }

    std::vector<bool>
    heldValues() const
    {
        std::vector<bool> held;
        for (std::size_t i = 0; i < specs.size(); ++i) {
            held.push_back(design->burnValue(i));
        }
        return held;
    }

    std::unique_ptr<pf::Device> device;
    std::vector<pf::RouteSpec> specs;
    std::vector<bool> logical;
    std::unique_ptr<pf::TargetDesign> design;
};

} // namespace

// ------------------------------------------------------- NoMitigation

TEST(NoMitigation, PassesValuesThrough)
{
    Fixture f;
    pm::NoMitigation none;
    none.apply(*f.design, *f.device, f.logical, 17.0);
    EXPECT_EQ(f.heldValues(), f.logical);
    EXPECT_EQ(none.name(), "none");
    EXPECT_EQ(none.epilogue().policy, pm::Epilogue::Policy::None);
}

// --------------------------------------------------------- inversion

TEST(Inversion, IdentityInFirstPeriod)
{
    Fixture f;
    pm::InversionMitigation invert(1.0);
    invert.apply(*f.design, *f.device, f.logical, 0.0);
    EXPECT_EQ(f.heldValues(), f.logical);
    invert.apply(*f.design, *f.device, f.logical, 0.5);
    EXPECT_EQ(f.heldValues(), f.logical);
}

TEST(Inversion, ComplementInOddPeriods)
{
    Fixture f;
    pm::InversionMitigation invert(1.0);
    invert.apply(*f.design, *f.device, f.logical, 1.0);
    const std::vector<bool> held = f.heldValues();
    for (std::size_t i = 0; i < held.size(); ++i) {
        EXPECT_EQ(held[i], !f.logical[i]);
    }
}

TEST(Inversion, AlternatesByPeriod)
{
    Fixture f;
    pm::InversionMitigation invert(2.0);
    invert.apply(*f.design, *f.device, f.logical, 2.0); // period 1 -> inverted
    EXPECT_NE(f.heldValues(), f.logical);
    invert.apply(*f.design, *f.device, f.logical, 4.0); // period 2 -> identity
    EXPECT_EQ(f.heldValues(), f.logical);
}

TEST(Inversion, NonPositivePeriodFatal)
{
    EXPECT_THROW(pm::InversionMitigation(0.0), pu::FatalError);
}

// ------------------------------------------------------------ shuffle

TEST(Shuffle, PreservesMultiset)
{
    Fixture f;
    pm::ShuffleMitigation shuffle(1.0, 99);
    shuffle.apply(*f.design, *f.device, f.logical, 5.0);
    std::vector<bool> held = f.heldValues();
    EXPECT_EQ(std::count(held.begin(), held.end(), true),
              std::count(f.logical.begin(), f.logical.end(), true));
}

TEST(Shuffle, StableWithinPeriod)
{
    Fixture f;
    pm::ShuffleMitigation shuffle(2.0, 99);
    shuffle.apply(*f.design, *f.device, f.logical, 0.0);
    const auto first = f.heldValues();
    shuffle.apply(*f.design, *f.device, f.logical, 1.9);
    EXPECT_EQ(f.heldValues(), first);
}

TEST(Shuffle, ChangesAcrossPeriods)
{
    // With 8 routes the chance of two independent permutations
    // colliding on the same value assignment is negligible for this
    // specific seed.
    pf::DeviceConfig config;
    config.tiles_x = 64;
    config.tiles_y = 64;
    pf::Device device(config);
    std::vector<pf::RouteSpec> specs;
    std::vector<bool> logical;
    for (int i = 0; i < 8; ++i) {
        specs.push_back(device.allocateRoute("r" + std::to_string(i),
                                             250.0));
        logical.push_back(i % 3 == 0);
    }
    pf::ArithmeticHeavyConfig arith;
    arith.dsp_count = 0;
    pf::TargetDesign design("t", specs, logical, arith);

    pm::ShuffleMitigation shuffle(1.0, 7);
    shuffle.apply(design, device, logical, 0.0);
    std::vector<bool> first;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        first.push_back(design.burnValue(i));
    }
    shuffle.apply(design, device, logical, 1.0);
    std::vector<bool> second;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        second.push_back(design.burnValue(i));
    }
    EXPECT_NE(first, second);
}

TEST(Shuffle, DeterministicForSeed)
{
    Fixture f1, f2;
    pm::ShuffleMitigation a(1.0, 42), b(1.0, 42);
    a.apply(*f1.design, *f1.device, f1.logical, 3.0);
    b.apply(*f2.design, *f2.device, f2.logical, 3.0);
    EXPECT_EQ(f1.heldValues(), f2.heldValues());
}

TEST(Shuffle, NonPositivePeriodFatal)
{
    EXPECT_THROW(pm::ShuffleMitigation(0.0, 1), pu::FatalError);
}

// --------------------------------------------------------- wear level

TEST(WearLevel, RelocatesAcrossSites)
{
    Fixture f;
    pm::WearLevelMitigation wear(1.0, 3);
    wear.apply(*f.design, *f.device, f.logical, 0.0);
    const pf::RouteSpec site0 = f.design->routeSpec(0);
    wear.apply(*f.design, *f.device, f.logical, 1.0);
    const pf::RouteSpec site1 = f.design->routeSpec(0);
    EXPECT_NE(site0.elements[0].key(), site1.elements[0].key());
    // Old site released, new site holds the value.
    EXPECT_EQ(f.design->activityFor(site0.elements[0]).kind,
              pf::Activity::Unused);
    EXPECT_EQ(f.design->activityFor(site1.elements[0]).kind,
              pf::Activity::Hold1);
}

TEST(WearLevel, CyclesBackToOriginalSite)
{
    Fixture f;
    pm::WearLevelMitigation wear(1.0, 2);
    wear.apply(*f.design, *f.device, f.logical, 0.0);
    const auto site0 = f.design->routeSpec(0).elements[0].key();
    wear.apply(*f.design, *f.device, f.logical, 1.0);
    wear.apply(*f.design, *f.device, f.logical, 2.0);
    EXPECT_EQ(f.design->routeSpec(0).elements[0].key(), site0);
}

TEST(WearLevel, ValuesPreservedAfterRelocation)
{
    Fixture f;
    pm::WearLevelMitigation wear(1.0, 3);
    wear.apply(*f.design, *f.device, f.logical, 0.0);
    wear.apply(*f.design, *f.device, f.logical, 1.0);
    EXPECT_EQ(f.heldValues(), f.logical);
}

TEST(WearLevel, BadConfigFatal)
{
    Fixture f;
    EXPECT_THROW(pm::WearLevelMitigation(0.0, 2), pu::FatalError);
    EXPECT_THROW(pm::WearLevelMitigation(1.0, 1), pu::FatalError);
}

// ------------------------------------------------------ hold-recovery

TEST(HoldRecovery, EpilogueCarriesPolicy)
{
    pm::HoldRecoveryMitigation hold(pm::Epilogue::Policy::Complement,
                                    48.0);
    EXPECT_EQ(hold.epilogue().policy,
              pm::Epilogue::Policy::Complement);
    EXPECT_DOUBLE_EQ(hold.epilogue().hours, 48.0);
    EXPECT_EQ(hold.name(), "hold-complement");
}

TEST(HoldRecovery, NamesPerPolicy)
{
    EXPECT_EQ(pm::HoldRecoveryMitigation(pm::Epilogue::Policy::AllZero,
                                         1.0)
                  .name(),
              "hold-zero");
    EXPECT_EQ(pm::HoldRecoveryMitigation(pm::Epilogue::Policy::AllOne,
                                         1.0)
                  .name(),
              "hold-one");
}

TEST(HoldRecovery, ValuesPassThroughDuringCompute)
{
    Fixture f;
    pm::HoldRecoveryMitigation hold(pm::Epilogue::Policy::Complement,
                                    10.0);
    hold.apply(*f.design, *f.device, f.logical, 7.0);
    EXPECT_EQ(f.heldValues(), f.logical);
}

TEST(HoldRecovery, NegativeHoldFatal)
{
    EXPECT_THROW(
        pm::HoldRecoveryMitigation(pm::Epilogue::Policy::AllZero, -1.0),
        pu::FatalError);
}

// ------------------------------------------------------------ advisor

TEST(Advisor, SafeLengthPositiveFinite)
{
    const pm::RouteShorteningAdvisor advisor;
    EXPECT_GT(advisor.safeLengthPs(), 0.0);
    EXPECT_LT(advisor.safeLengthPs(), 1e9);
}

TEST(Advisor, FlagsLongRoutesOnly)
{
    const pm::RouteShorteningAdvisor advisor;
    const double safe = advisor.safeLengthPs();
    const auto report = advisor.analyze(
        {{"short", safe * 0.5}, {"long", safe * 4.0}});
    ASSERT_EQ(report.routes.size(), 2u);
    EXPECT_FALSE(report.routes[0].flagged);
    EXPECT_TRUE(report.routes[1].flagged);
    EXPECT_EQ(report.flagged_count, 1u);
}

TEST(Advisor, SplitRecommendationBringsSnrBelowThreshold)
{
    const pm::RouteShorteningAdvisor advisor;
    const double safe = advisor.safeLengthPs();
    const auto report = advisor.analyze({{"long", safe * 3.7}});
    const auto &advice = report.routes[0];
    EXPECT_GE(advice.recommended_segments, 4);
    EXPECT_LE(advice.post_split_snr, 2.0 + 1e-9);
}

TEST(Advisor, SnrScalesWithScenario)
{
    pentimento::opentitan::AttackScenario harsh;
    harsh.device_age_h = 0.0; // new silicon leaks more
    const pm::RouteShorteningAdvisor strict(harsh);
    const pm::RouteShorteningAdvisor lax;
    EXPECT_LT(strict.safeLengthPs(), lax.safeLengthPs());
}
