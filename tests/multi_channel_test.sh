#!/bin/sh
# Multi-channel recovery experiment: the interconnect-aging channel and
# the BRAM content-remanence channel run in the same campaign without
# perturbing each other. Run by CTest as
#   sh multi_channel_test.sh <path-to-fleet_campaign>
#
# Locks three properties:
#  1. Enabling --bram leaves the aging-channel CSV byte-identical (all
#     BRAM draws come from fresh pure streams). At the default scale
#     this is the committed golden; here a small fleet keeps the
#     sanitizer legs fast, so the reference CSV is the same binary run
#     without --bram.
#  2. The BRAM readout is deterministic across worker counts.
#  3. Under the no-scrub policy the attacker actually recovers words
#     (the channel is live, not silently disabled).
set -u

bin="${1:?usage: multi_channel_test.sh <fleet_campaign-binary>}"
work="${TMPDIR:-/tmp}/multi_channel_$$"
mkdir -p "$work"
trap 'rm -rf "$work"' EXIT
failures=0

run() {
    out="$1"
    csv="$2"
    shift 2
    if ! "$bin" --fleet 24 --years 1 --seed 777 --csv "$csv" "$@" \
        >"$out" 2>&1; then
        echo "FAIL: campaign exited non-zero ($*)" >&2
        cat "$out" >&2
        exit 1
    fi
}

run "$work/aging.out" "$work/aging.csv"
run "$work/multi.out" "$work/multi.csv" --bram
run "$work/multi2.out" "$work/multi2.csv" --bram --workers 2

# 1. aging channel untouched by the BRAM channel
if cmp -s "$work/aging.csv" "$work/multi.csv"; then
    echo "ok [aging CSV byte-identical under --bram]"
else
    echo "FAIL: --bram perturbed the aging-channel CSV" >&2
    failures=$((failures + 1))
fi

# 2. worker-count invariance of both channels
bram_summary() {
    sed -n '/BRAM channel/,/wall clock/p' "$1" | grep -v "wall clock"
}
if cmp -s "$work/multi.csv" "$work/multi2.csv" &&
    [ "$(bram_summary "$work/multi.out")" = \
      "$(bram_summary "$work/multi2.out")" ]; then
    echo "ok [worker-count invariant]"
else
    echo "FAIL: worker count changed the multi-channel result" >&2
    failures=$((failures + 1))
fi

# 3. the content channel is live: no-scrub recovery is non-zero
recovered=$(bram_summary "$work/multi.out" |
    awk '$1 ~ /^fpga-/ { sum += $3 } END { print sum + 0 }')
if [ "$recovered" -gt 0 ]; then
    echo "ok [no-scrub recovery non-zero: $recovered words]"
else
    echo "FAIL: BRAM channel recovered nothing under no-scrub" >&2
    failures=$((failures + 1))
fi

if [ "$failures" -ne 0 ]; then
    echo "$failures multi-channel check(s) failed" >&2
    exit 1
fi
echo "multi-channel experiment OK"
