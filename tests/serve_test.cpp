/**
 * @file
 * Campaign-server battery: wire codec, hardened framing, protocol
 * validation, and the live-server robustness contract — fuzz
 * (truncation at every offset, oversized lengths, garbage, slowloris,
 * mid-request disconnect), deadlines, backpressure, drain,
 * determinism across pool widths and concurrent traffic, and
 * checkpoint/resume byte-identity.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "serve/campaign.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"
#include "util/fault.hpp"
#include "util/logging.hpp"

namespace {

using namespace pentimento;
using serve::ErrorCode;
using serve::Frame;
using serve::FrameDecoder;
using serve::FrameType;
using serve::Request;
using serve::RequestKind;

// ------------------------------------------------------- wire codec

TEST(Wire, RoundTripsScalarsAndStrings)
{
    serve::WireWriter writer;
    writer.u8(7);
    writer.u32(0xdeadbeefu);
    writer.u64(0x0123456789abcdefull);
    writer.f64(-1234.5);
    writer.str("pentimento");
    const std::vector<std::uint8_t> bytes = writer.take();

    serve::WireReader reader(bytes.data(), bytes.size());
    EXPECT_EQ(reader.u8(), 7);
    EXPECT_EQ(reader.u32(), 0xdeadbeefu);
    EXPECT_EQ(reader.u64(), 0x0123456789abcdefull);
    EXPECT_EQ(reader.f64(), -1234.5);
    EXPECT_EQ(reader.str(), "pentimento");
    EXPECT_TRUE(reader.ok());
    EXPECT_TRUE(reader.atEnd());
}

TEST(Wire, TruncationPoisonsTheReader)
{
    serve::WireWriter writer;
    writer.u32(42);
    const std::vector<std::uint8_t> bytes = writer.take();
    serve::WireReader reader(bytes.data(), bytes.size());
    EXPECT_EQ(reader.u32(), 42u);
    EXPECT_EQ(reader.u64(), 0u); // past the end: zero, not UB
    EXPECT_FALSE(reader.ok());
    EXPECT_EQ(reader.u32(), 0u); // sticky
}

TEST(Wire, StringLengthBeyondPayloadFails)
{
    serve::WireWriter writer;
    writer.u32(1000); // declared string length far past the end
    writer.u8('x');
    const std::vector<std::uint8_t> bytes = writer.take();
    serve::WireReader reader(bytes.data(), bytes.size());
    EXPECT_EQ(reader.str(), "");
    EXPECT_FALSE(reader.ok());
}

// ---------------------------------------------------------- framing

TEST(Framing, RoundTripsAnyPayload)
{
    const std::vector<std::uint8_t> payload = {1, 2, 3, 250, 0, 7};
    const std::vector<std::uint8_t> bytes =
        serve::encodeFrame(FrameType::Sweep, payload);
    FrameDecoder decoder(1 << 16);
    decoder.feed(bytes.data(), bytes.size());
    Frame frame;
    ASSERT_EQ(decoder.next(&frame), FrameDecoder::Status::Ready);
    EXPECT_EQ(frame.type, FrameType::Sweep);
    EXPECT_EQ(frame.payload, payload);
    EXPECT_EQ(decoder.next(&frame), FrameDecoder::Status::NeedMore);
}

TEST(Framing, ByteAtATimeDecodesIdentically)
{
    const std::vector<std::uint8_t> payload(100, 0xab);
    const std::vector<std::uint8_t> bytes =
        serve::encodeFrame(FrameType::Request, payload);
    FrameDecoder decoder(1 << 16);
    Frame frame;
    for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
        decoder.feed(&bytes[i], 1);
        EXPECT_EQ(decoder.next(&frame),
                  FrameDecoder::Status::NeedMore);
    }
    decoder.feed(&bytes.back(), 1);
    ASSERT_EQ(decoder.next(&frame), FrameDecoder::Status::Ready);
    EXPECT_EQ(frame.payload, payload);
}

TEST(Framing, TruncationAtEveryOffsetNeverProducesAFrame)
{
    const std::vector<std::uint8_t> bytes = serve::encodeFrame(
        FrameType::Request, {10, 20, 30, 40, 50});
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        FrameDecoder decoder(1 << 16);
        decoder.feed(bytes.data(), cut);
        Frame frame;
        EXPECT_EQ(decoder.next(&frame),
                  FrameDecoder::Status::NeedMore)
            << "cut at " << cut;
    }
}

TEST(Framing, BadMagicIsCorrupt)
{
    std::vector<std::uint8_t> bytes =
        serve::encodeFrame(FrameType::Request, {1});
    bytes[0] ^= 0xff;
    FrameDecoder decoder(1 << 16);
    decoder.feed(bytes.data(), bytes.size());
    Frame frame;
    EXPECT_EQ(decoder.next(&frame), FrameDecoder::Status::Corrupt);
    EXPECT_NE(decoder.error().find("magic"), std::string::npos);
    // Sticky: feeding more valid bytes cannot revive the stream.
    const std::vector<std::uint8_t> good =
        serve::encodeFrame(FrameType::Request, {1});
    decoder.feed(good.data(), good.size());
    EXPECT_EQ(decoder.next(&frame), FrameDecoder::Status::Corrupt);
}

TEST(Framing, OversizedDeclaredLengthIsRejectedFromTheHeader)
{
    serve::WireWriter writer;
    writer.u32(serve::kFrameMagic);
    writer.u32(1);
    writer.u32(0x7fffffffu); // 2 GiB declared; never buffered
    const std::vector<std::uint8_t> bytes = writer.take();
    FrameDecoder decoder(1 << 16);
    decoder.feed(bytes.data(), bytes.size());
    Frame frame;
    EXPECT_EQ(decoder.next(&frame), FrameDecoder::Status::Corrupt);
    EXPECT_NE(decoder.error().find("exceeds limit"),
              std::string::npos);
}

TEST(Framing, CorruptedCrcIsDetected)
{
    std::vector<std::uint8_t> bytes =
        serve::encodeFrame(FrameType::Request, {1, 2, 3});
    bytes[bytes.size() - 2] ^= 0x40;
    FrameDecoder decoder(1 << 16);
    decoder.feed(bytes.data(), bytes.size());
    Frame frame;
    EXPECT_EQ(decoder.next(&frame), FrameDecoder::Status::Corrupt);
    EXPECT_NE(decoder.error().find("checksum"), std::string::npos);
}

TEST(Framing, RandomGarbageNeverAborts)
{
    util::Rng rng(20240807);
    for (int trial = 0; trial < 200; ++trial) {
        FrameDecoder decoder(1 << 12);
        std::vector<std::uint8_t> junk(
            static_cast<std::size_t>(rng.uniformInt(1, 400)));
        for (std::uint8_t &byte : junk) {
            byte = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
        }
        decoder.feed(junk.data(), junk.size());
        Frame frame;
        // Must terminate with NeedMore or Corrupt; Ready would mean a
        // forged CRC on random bytes, astronomically unlikely.
        while (decoder.next(&frame) == FrameDecoder::Status::Ready) {
        }
    }
}

// --------------------------------------------------------- protocol

Request
pingRequest(std::uint64_t id)
{
    Request request;
    request.request_id = id;
    request.seed = 1;
    request.kind = RequestKind::Ping;
    return request;
}

Request
smallChurnRequest(std::uint64_t id, std::uint64_t seed)
{
    Request request;
    request.request_id = id;
    request.seed = seed;
    request.kind = RequestKind::TenancyChurn;
    request.tenancies = 4;
    request.routes_per_tenant = 2;
    request.burn_hours_min = 4.0;
    request.burn_hours_max = 12.0;
    request.idle_hours = 2.0;
    request.midflip = true;
    request.observe_last = 2;
    request.dsp_count = 8;
    return request;
}

Request
smallExp1Request(std::uint64_t id, std::uint64_t seed)
{
    Request request;
    request.request_id = id;
    request.seed = seed;
    request.kind = RequestKind::Experiment1;
    request.burn_hours = 2.0;
    request.recovery_hours = 1.0;
    request.measure_every_h = 1.0;
    request.groups = {{1000.0, 2}};
    return request;
}

Request
smallFleetScanRequest(std::uint64_t id, std::uint64_t seed)
{
    Request request;
    request.request_id = id;
    request.seed = seed;
    request.kind = RequestKind::FleetScan;
    request.fleet = 6;
    request.days = 30;
    request.scan_routes_per_tenant = 2;
    request.max_measured = 2;
    return request;
}

TEST(Protocol, RequestRoundTrips)
{
    const Request request = smallChurnRequest(77, 42);
    Request decoded;
    const auto error =
        serve::decodeRequest(serve::encodeRequest(request), &decoded);
    ASSERT_FALSE(error.has_value()) << error->message;
    EXPECT_EQ(decoded.request_id, 77u);
    EXPECT_EQ(decoded.seed, 42u);
    EXPECT_EQ(decoded.kind, RequestKind::TenancyChurn);
    EXPECT_EQ(decoded.tenancies, 4u);
    EXPECT_EQ(decoded.burn_hours_max, 12.0);
    EXPECT_TRUE(decoded.midflip);
}

TEST(Protocol, TrailingBytesAreMalformed)
{
    std::vector<std::uint8_t> payload =
        serve::encodeRequest(pingRequest(1));
    payload.push_back(0);
    Request decoded;
    const auto error = serve::decodeRequest(payload, &decoded);
    ASSERT_TRUE(error.has_value());
    EXPECT_EQ(error->code, ErrorCode::Malformed);
    EXPECT_EQ(error->request_id, 1u);
}

TEST(Protocol, TruncatedPayloadAtEveryOffsetIsTyped)
{
    const std::vector<std::uint8_t> payload =
        serve::encodeRequest(smallExp1Request(9, 5));
    for (std::size_t cut = 0; cut < payload.size(); ++cut) {
        const std::vector<std::uint8_t> prefix(payload.begin(),
                                               payload.begin() +
                                                   static_cast<
                                                       std::ptrdiff_t>(
                                                       cut));
        Request decoded;
        const auto error = serve::decodeRequest(prefix, &decoded);
        ASSERT_TRUE(error.has_value()) << "cut at " << cut;
        EXPECT_EQ(error->code, ErrorCode::Malformed);
    }
}

TEST(Protocol, UnknownVersionKindAndFlagsAreUnsupported)
{
    Request request = pingRequest(3);
    std::vector<std::uint8_t> payload = serve::encodeRequest(request);
    payload[0] = 9; // version (first LE u32 byte)
    Request decoded;
    auto error = serve::decodeRequest(payload, &decoded);
    ASSERT_TRUE(error.has_value());
    EXPECT_EQ(error->code, ErrorCode::Unsupported);

    payload = serve::encodeRequest(request);
    payload.back() = 99; // kind is the final header byte for Ping
    error = serve::decodeRequest(payload, &decoded);
    ASSERT_TRUE(error.has_value());
    EXPECT_EQ(error->code, ErrorCode::Unsupported);

    request.flags = 0x80;
    error = serve::decodeRequest(serve::encodeRequest(request),
                                 &decoded);
    ASSERT_TRUE(error.has_value());
    EXPECT_EQ(error->code, ErrorCode::Unsupported);
}

TEST(Protocol, CapViolationsAreInvalidArgument)
{
    Request request = smallExp1Request(4, 1);
    request.groups = {{1000.0, 9999}};
    Request decoded;
    auto error = serve::decodeRequest(serve::encodeRequest(request),
                                      &decoded);
    ASSERT_TRUE(error.has_value());
    EXPECT_EQ(error->code, ErrorCode::InvalidArgument);
    EXPECT_EQ(error->request_id, 4u);

    Request scan = smallFleetScanRequest(5, 1);
    scan.days = 100000;
    error = serve::decodeRequest(serve::encodeRequest(scan), &decoded);
    ASSERT_TRUE(error.has_value());
    EXPECT_EQ(error->code, ErrorCode::InvalidArgument);

    Request churn = smallChurnRequest(6, 1);
    churn.burn_hours_max = 2.0; // below min
    error = serve::decodeRequest(serve::encodeRequest(churn),
                                 &decoded);
    ASSERT_TRUE(error.has_value());
    EXPECT_EQ(error->code, ErrorCode::InvalidArgument);
}

TEST(Protocol, ZeroRequestIdIsRejected)
{
    Request decoded;
    const auto error = serve::decodeRequest(
        serve::encodeRequest(pingRequest(0)), &decoded);
    ASSERT_TRUE(error.has_value());
    EXPECT_EQ(error->code, ErrorCode::InvalidArgument);
}

// ---------------------------------------------------------- logging

TEST(Logging, ThreadContextIsPerThread)
{
    util::setThreadLogContext("req 1");
    EXPECT_EQ(util::threadLogContext(), "req 1");
    std::thread other([] {
        EXPECT_EQ(util::threadLogContext(), "");
        util::setThreadLogContext("req 2");
        EXPECT_EQ(util::threadLogContext(), "req 2");
    });
    other.join();
    EXPECT_EQ(util::threadLogContext(), "req 1");
    util::setThreadLogContext("");
}

TEST(Logging, ConcurrentEmissionIsRaceFree)
{
    // Exercised under TSan/ASan in CI: unsynchronised verbosity or
    // stream writes would flag here.
    util::setVerbosity(util::Verbosity::Silent);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([t] {
            util::setThreadLogContext("t" + std::to_string(t));
            for (int i = 0; i < 200; ++i) {
                util::warn("concurrent warn");
                util::inform("concurrent inform");
                util::setVerbosity(i % 2 == 0
                                       ? util::Verbosity::Silent
                                       : util::Verbosity::Warning);
            }
            util::setThreadLogContext("");
        });
    }
    for (std::thread &thread : threads) {
        thread.join();
    }
    util::setVerbosity(util::Verbosity::Silent);
}

// ------------------------------------------------------ live server

class ServeTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        util::setVerbosity(util::Verbosity::Silent);
    }

    serve::CampaignServerConfig
    baseConfig()
    {
        serve::CampaignServerConfig config;
        config.port = 0;
        config.executors = 1;
        config.sim_workers = 0;
        config.queue_capacity = 8;
        config.default_deadline_ms = 60000;
        config.frame_timeout_ms = 5000;
        return config;
    }

    /** Start a server or fail the test. */
    std::unique_ptr<serve::CampaignServer>
    startServer(const serve::CampaignServerConfig &config)
    {
        auto server = std::make_unique<serve::CampaignServer>(config);
        const util::Expected<void> started = server->start();
        EXPECT_TRUE(started.ok()) << started.error();
        return server;
    }

    /** Connect, send one request, return the first reply frame. */
    util::Expected<Frame>
    roundTrip(std::uint16_t port, const Request &request,
              std::uint32_t timeout_ms = 60000)
    {
        serve::ClientConnection conn;
        const util::Expected<void> connected = conn.connect(port);
        if (!connected.ok()) {
            return util::unexpected(connected.error());
        }
        const util::Expected<void> sent = conn.sendFrame(
            FrameType::Request, serve::encodeRequest(request));
        if (!sent.ok()) {
            return util::unexpected(sent.error());
        }
        return conn.readFrame(timeout_ms);
    }

    /** RESULT payload bytes for a request, asserting success. */
    std::vector<std::uint8_t>
    resultBytes(std::uint16_t port, const Request &request)
    {
        const util::Expected<Frame> reply = roundTrip(port, request);
        EXPECT_TRUE(reply.ok()) << reply.error();
        if (!reply.ok()) {
            return {};
        }
        EXPECT_EQ(reply.value().type, FrameType::Result);
        return reply.value().payload;
    }

    /** Expect an ERROR reply with the given code. */
    serve::ErrorInfo
    expectError(const util::Expected<Frame> &reply, ErrorCode code)
    {
        EXPECT_TRUE(reply.ok()) << reply.error();
        serve::ErrorInfo info;
        if (!reply.ok()) {
            return info;
        }
        EXPECT_EQ(reply.value().type, FrameType::Error);
        const auto decoded = serve::decodeError(reply.value().payload);
        EXPECT_TRUE(decoded.has_value());
        if (decoded) {
            info = *decoded;
            EXPECT_EQ(info.code, code) << info.message;
        }
        return info;
    }
};

TEST_F(ServeTest, PingRoundTrips)
{
    auto server = startServer(baseConfig());
    const util::Expected<Frame> reply =
        roundTrip(server->port(), pingRequest(11));
    ASSERT_TRUE(reply.ok()) << reply.error();
    EXPECT_EQ(reply.value().type, FrameType::Result);
    serve::WireReader reader(reply.value().payload.data(),
                             reply.value().payload.size());
    EXPECT_EQ(reader.u64(), 11u);
    EXPECT_EQ(reader.u8(),
              static_cast<std::uint8_t>(RequestKind::Ping));
    EXPECT_EQ(reader.u32(), serve::kProtocolVersion);
}

TEST_F(ServeTest, GarbageGetsTypedErrorAndServerStaysServiceable)
{
    auto server = startServer(baseConfig());
    serve::ClientConnection conn;
    ASSERT_TRUE(conn.connect(server->port()).ok());
    const std::uint8_t junk[] = {0xde, 0xad, 0xbe, 0xef,
                                 1,    2,    3,    4};
    ASSERT_TRUE(conn.sendRaw(junk, sizeof(junk)).ok());
    expectError(conn.readFrame(5000), ErrorCode::Malformed);
    // The poisoned connection closes...
    const util::Expected<Frame> after = conn.readFrame(5000);
    EXPECT_FALSE(after.ok());
    // ...and a fresh connection still serves.
    const util::Expected<Frame> reply =
        roundTrip(server->port(), pingRequest(12));
    ASSERT_TRUE(reply.ok()) << reply.error();
    EXPECT_EQ(reply.value().type, FrameType::Result);
}

TEST_F(ServeTest, TruncatedFramesAtEveryOffsetNeverWedgeTheServer)
{
    auto server = startServer(baseConfig());
    const std::vector<std::uint8_t> frame = serve::encodeFrame(
        FrameType::Request, serve::encodeRequest(pingRequest(13)));
    for (std::size_t cut = 1; cut < frame.size(); ++cut) {
        serve::ClientConnection conn;
        ASSERT_TRUE(conn.connect(server->port()).ok());
        ASSERT_TRUE(conn.sendRaw(frame.data(), cut).ok());
        conn.close(); // mid-request disconnect at every offset
    }
    const util::Expected<Frame> reply =
        roundTrip(server->port(), pingRequest(14));
    ASSERT_TRUE(reply.ok()) << reply.error();
    EXPECT_EQ(reply.value().type, FrameType::Result);
}

TEST_F(ServeTest, OversizedDeclaredLengthIsRefusedCheaply)
{
    auto server = startServer(baseConfig());
    serve::ClientConnection conn;
    ASSERT_TRUE(conn.connect(server->port()).ok());
    serve::WireWriter writer;
    writer.u32(serve::kFrameMagic);
    writer.u32(1);
    writer.u32(0x7fffffffu);
    const std::vector<std::uint8_t> bytes = writer.bytes();
    ASSERT_TRUE(conn.sendRaw(bytes.data(), bytes.size()).ok());
    expectError(conn.readFrame(5000), ErrorCode::Malformed);
}

TEST_F(ServeTest, SlowlorisByteAtATimeStillDecodes)
{
    auto server = startServer(baseConfig());
    serve::ClientConnection conn;
    ASSERT_TRUE(conn.connect(server->port()).ok());
    const std::vector<std::uint8_t> frame = serve::encodeFrame(
        FrameType::Request, serve::encodeRequest(pingRequest(15)));
    for (const std::uint8_t byte : frame) {
        ASSERT_TRUE(conn.sendRaw(&byte, 1).ok());
    }
    const util::Expected<Frame> reply = conn.readFrame(10000);
    ASSERT_TRUE(reply.ok()) << reply.error();
    EXPECT_EQ(reply.value().type, FrameType::Result);
}

TEST_F(ServeTest, StalledMidFrameTimesOut)
{
    serve::CampaignServerConfig config = baseConfig();
    config.frame_timeout_ms = 150;
    auto server = startServer(config);
    serve::ClientConnection conn;
    ASSERT_TRUE(conn.connect(server->port()).ok());
    const std::vector<std::uint8_t> frame = serve::encodeFrame(
        FrameType::Request, serve::encodeRequest(pingRequest(16)));
    ASSERT_TRUE(conn.sendRaw(frame.data(), 6).ok()); // stall mid-frame
    const serve::ErrorInfo info =
        expectError(conn.readFrame(5000), ErrorCode::Malformed);
    EXPECT_NE(info.message.find("timed out"), std::string::npos);
}

TEST_F(ServeTest, MalformedPayloadKeepsConnectionServiceable)
{
    auto server = startServer(baseConfig());
    serve::ClientConnection conn;
    ASSERT_TRUE(conn.connect(server->port()).ok());
    // CRC-valid frame whose payload fails request decoding.
    ASSERT_TRUE(conn.sendFrame(FrameType::Request, {1, 2, 3}).ok());
    expectError(conn.readFrame(5000), ErrorCode::Malformed);
    // Same connection, well-formed request: still answered.
    ASSERT_TRUE(conn.sendFrame(FrameType::Request,
                               serve::encodeRequest(pingRequest(17)))
                    .ok());
    const util::Expected<Frame> reply = conn.readFrame(5000);
    ASSERT_TRUE(reply.ok()) << reply.error();
    EXPECT_EQ(reply.value().type, FrameType::Result);
}

TEST_F(ServeTest, NonRequestFramesAreRefused)
{
    auto server = startServer(baseConfig());
    serve::ClientConnection conn;
    ASSERT_TRUE(conn.connect(server->port()).ok());
    ASSERT_TRUE(conn.sendFrame(FrameType::Result, {1}).ok());
    expectError(conn.readFrame(5000), ErrorCode::Unsupported);
}

TEST_F(ServeTest, QueueFullShedsWithRetryAfter)
{
    serve::CampaignServerConfig config = baseConfig();
    config.queue_capacity = 1;
    auto server = startServer(config);

    // Occupy the single executor with a throttled campaign (~2 s).
    Request slow = smallFleetScanRequest(20, 9);
    slow.days = 40;
    slow.throttle_ms_per_day = 50;
    serve::ClientConnection busy;
    ASSERT_TRUE(busy.connect(server->port()).ok());
    ASSERT_TRUE(busy.sendFrame(FrameType::Request,
                               serve::encodeRequest(slow))
                    .ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(400));

    // Fill the queue...
    serve::ClientConnection queued;
    ASSERT_TRUE(queued.connect(server->port()).ok());
    ASSERT_TRUE(queued.sendFrame(
                         FrameType::Request,
                         serve::encodeRequest(smallChurnRequest(21, 1)))
                    .ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    // ...and the next request sheds with an explicit hint.
    const util::Expected<Frame> shed =
        roundTrip(server->port(), smallChurnRequest(22, 1), 5000);
    const serve::ErrorInfo info =
        expectError(shed, ErrorCode::RetryAfter);
    EXPECT_GT(info.retry_after_ms, 0u);
    EXPECT_EQ(info.request_id, 22u);

    // Ping bypasses admission: the saturated server is still alive.
    const util::Expected<Frame> ping =
        roundTrip(server->port(), pingRequest(23), 5000);
    ASSERT_TRUE(ping.ok()) << ping.error();
    EXPECT_EQ(ping.value().type, FrameType::Result);

    // Let the in-flight work finish so stop() drains promptly.
    const util::Expected<Frame> busy_reply = busy.readFrame(30000);
    EXPECT_TRUE(busy_reply.ok()) << busy_reply.error();
    const util::Expected<Frame> queued_reply = queued.readFrame(30000);
    EXPECT_TRUE(queued_reply.ok()) << queued_reply.error();
}

TEST_F(ServeTest, ShedHintGrowsUnderSustainedOverload)
{
    serve::CampaignServerConfig config = baseConfig();
    config.queue_capacity = 1;
    config.retry_after_ms = 50;
    auto server = startServer(config);

    // Occupy the single executor with a throttled campaign (~2 s)...
    Request slow = smallFleetScanRequest(25, 9);
    slow.days = 40;
    slow.throttle_ms_per_day = 50;
    serve::ClientConnection busy;
    ASSERT_TRUE(busy.connect(server->port()).ok());
    ASSERT_TRUE(busy.sendFrame(FrameType::Request,
                               serve::encodeRequest(slow))
                    .ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    // ...and fill the queue.
    serve::ClientConnection queued;
    ASSERT_TRUE(queued.connect(server->port()).ok());
    ASSERT_TRUE(queued.sendFrame(
                         FrameType::Request,
                         serve::encodeRequest(smallChurnRequest(26, 1)))
                    .ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    // Every further request sheds — with a hint that pushes clients
    // progressively further out the longer the overload lasts.
    std::vector<std::uint32_t> hints;
    for (std::uint64_t id = 27; id < 32; ++id) {
        const util::Expected<Frame> shed =
            roundTrip(server->port(), smallChurnRequest(id, 1), 5000);
        const serve::ErrorInfo info =
            expectError(shed, ErrorCode::RetryAfter);
        hints.push_back(info.retry_after_ms);
    }
    ASSERT_EQ(hints.size(), 5u);
    EXPECT_GE(hints.front(), config.retry_after_ms);
    for (std::size_t i = 1; i < hints.size(); ++i) {
        EXPECT_GE(hints[i], hints[i - 1]) << "hint " << i << " shrank";
        EXPECT_LE(hints[i], config.retry_after_cap_ms);
    }
    EXPECT_GT(hints.back(), hints.front())
        << "sustained overload must grow the hint";

    // Drain the in-flight work so stop() is prompt.
    EXPECT_TRUE(busy.readFrame(30000).ok());
    EXPECT_TRUE(queued.readFrame(30000).ok());
}

TEST_F(ServeTest, ClientCallRetriesShedsUntilAdmitted)
{
    serve::CampaignServerConfig config = baseConfig();
    config.queue_capacity = 1;
    config.retry_after_ms = 50;
    auto server = startServer(config);

    // Same overload shape as above: executor busy (~1.5 s), queue full.
    Request slow = smallFleetScanRequest(35, 9);
    slow.days = 30;
    slow.throttle_ms_per_day = 50;
    serve::ClientConnection busy;
    ASSERT_TRUE(busy.connect(server->port()).ok());
    ASSERT_TRUE(busy.sendFrame(FrameType::Request,
                               serve::encodeRequest(slow))
                    .ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    serve::ClientConnection queued;
    ASSERT_TRUE(queued.connect(server->port()).ok());
    ASSERT_TRUE(queued.sendFrame(
                         FrameType::Request,
                         serve::encodeRequest(smallChurnRequest(36, 1)))
                    .ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    // A retrying call() absorbs the sheds and lands once the backlog
    // clears — the caller never sees a RETRY_AFTER.
    serve::ClientConfig retry_config;
    retry_config.max_retries = 40;
    retry_config.backoff_base_ms = 50;
    retry_config.backoff_cap_ms = 200;
    retry_config.jitter_seed = 7;
    serve::ClientConnection caller;
    ASSERT_TRUE(caller.connect(server->port()).ok());
    std::uint32_t retries = 0;
    const util::Expected<Frame> reply = caller.call(
        smallChurnRequest(37, 1), retry_config, 30000, &retries);
    ASSERT_TRUE(reply.ok()) << reply.error();
    EXPECT_EQ(reply.value().type, FrameType::Result);
    EXPECT_GE(retries, 1u) << "the first submission must have shed";
    serve::WireReader reader(reply.value().payload.data(),
                             reply.value().payload.size());
    EXPECT_EQ(reader.u64(), 37u);

    EXPECT_TRUE(busy.readFrame(30000).ok());
    EXPECT_TRUE(queued.readFrame(30000).ok());
}

TEST_F(ServeTest, DeadlineExceededMidCampaign)
{
    auto server = startServer(baseConfig());
    Request slow = smallFleetScanRequest(30, 9);
    slow.days = 2000;
    slow.throttle_ms_per_day = 20; // ~40 s straight through
    slow.deadline_ms = 300;
    const auto start = std::chrono::steady_clock::now();
    const util::Expected<Frame> reply =
        roundTrip(server->port(), slow, 20000);
    expectError(reply, ErrorCode::DeadlineExceeded);
    const double waited_s =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_LT(waited_s, 10.0); // cancelled cooperatively, not ran out
}

TEST_F(ServeTest, ExpiredWhileQueuedIsDeadlineExceeded)
{
    serve::CampaignServerConfig config = baseConfig();
    auto server = startServer(config);
    // Executor busy for ~1.5 s; the queued request's 100 ms deadline
    // expires before it is ever dequeued.
    Request slow = smallFleetScanRequest(31, 9);
    slow.days = 30;
    slow.throttle_ms_per_day = 50;
    serve::ClientConnection busy;
    ASSERT_TRUE(busy.connect(server->port()).ok());
    ASSERT_TRUE(busy.sendFrame(FrameType::Request,
                               serve::encodeRequest(slow))
                    .ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    Request quick = smallChurnRequest(32, 1);
    quick.deadline_ms = 100;
    const util::Expected<Frame> reply =
        roundTrip(server->port(), quick, 30000);
    expectError(reply, ErrorCode::DeadlineExceeded);
    const util::Expected<Frame> busy_reply = busy.readFrame(30000);
    EXPECT_TRUE(busy_reply.ok()) << busy_reply.error();
}

TEST_F(ServeTest, DrainRefusesNewWorkAndCancelsCampaigns)
{
    auto server = startServer(baseConfig());
    Request slow = smallFleetScanRequest(40, 9);
    slow.days = 2000;
    slow.throttle_ms_per_day = 20;
    serve::ClientConnection campaign;
    ASSERT_TRUE(campaign.connect(server->port()).ok());
    ASSERT_TRUE(campaign
                    .sendFrame(FrameType::Request,
                               serve::encodeRequest(slow))
                    .ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(300));

    server->requestDrain();
    // New non-ping work is refused...
    const util::Expected<Frame> refused =
        roundTrip(server->port(), smallChurnRequest(41, 1), 5000);
    expectError(refused, ErrorCode::ShuttingDown);
    // ...and the in-flight campaign cancels at its next day boundary.
    const util::Expected<Frame> cancelled = campaign.readFrame(20000);
    expectError(cancelled, ErrorCode::ShuttingDown);
    server->stop();
}

TEST_F(ServeTest, ChurnResponseMatchesDirectRun)
{
    auto server = startServer(baseConfig());
    const Request request = smallChurnRequest(50, 4242);
    const std::vector<std::uint8_t> via_server =
        resultBytes(server->port(), request);

    core::TenancyChurnConfig config;
    config.tenancies = request.tenancies;
    config.routes_per_tenant = request.routes_per_tenant;
    config.dsp_count = static_cast<int>(request.dsp_count);
    config.burn_hours_min = request.burn_hours_min;
    config.burn_hours_max = request.burn_hours_max;
    config.idle_hours = request.idle_hours;
    config.midflip = request.midflip;
    config.observe_last = request.observe_last;
    config.seed = request.seed;
    const std::vector<std::uint8_t> direct = serve::encodeChurnResult(
        request.request_id, core::runTenancyChurn(config));
    EXPECT_EQ(via_server, direct);
}

TEST_F(ServeTest, ResponseBytesAreIdenticalAcrossPoolWidths)
{
    serve::CampaignServerConfig serial = baseConfig();
    serial.sim_workers = 0;
    serve::CampaignServerConfig wide = baseConfig();
    wide.sim_workers = 3;

    const Request request = smallExp1Request(60, 777);
    std::vector<std::uint8_t> bytes_serial;
    {
        auto server = startServer(serial);
        bytes_serial = resultBytes(server->port(), request);
    }
    std::vector<std::uint8_t> bytes_wide;
    {
        auto server = startServer(wide);
        bytes_wide = resultBytes(server->port(), request);
    }
    ASSERT_FALSE(bytes_serial.empty());
    EXPECT_EQ(bytes_serial, bytes_wide);
}

TEST_F(ServeTest, DeterministicUnderConcurrentMixedTraffic)
{
    serve::CampaignServerConfig config = baseConfig();
    config.executors = 2;
    config.sim_workers = 2;
    auto server = startServer(config);
    const std::uint16_t port = server->port();

    // Reference bytes from a quiet round-trip.
    const Request request = smallExp1Request(70, 31337);
    const std::vector<std::uint8_t> reference =
        resultBytes(port, request);
    ASSERT_FALSE(reference.empty());

    // The same request under concurrent mixed traffic (pings, churn,
    // adversarial connections) must produce the same bytes.
    std::atomic<bool> go{true};
    std::thread noise([&] {
        std::uint64_t id = 1000;
        while (go.load(std::memory_order_relaxed)) {
            (void)roundTrip(port, pingRequest(++id), 5000);
            serve::ClientConnection junk;
            if (junk.connect(port).ok()) {
                const std::uint8_t garbage[] = {0xff, 0xfe, 0xfd,
                                                0xfc, 0xfb};
                (void)junk.sendRaw(garbage, sizeof(garbage));
            }
        }
    });
    std::thread churn_noise([&] {
        std::uint64_t id = 5000;
        while (go.load(std::memory_order_relaxed)) {
            (void)roundTrip(port, smallChurnRequest(++id, 3), 30000);
        }
    });
    std::vector<std::uint8_t> under_load;
    Request repeat = request;
    repeat.request_id = 71;
    under_load = resultBytes(port, repeat);
    go.store(false, std::memory_order_relaxed);
    noise.join();
    churn_noise.join();

    // Responses echo their own request id; normalise it before
    // comparing the remainder byte-for-byte.
    ASSERT_GE(under_load.size(), 8u);
    ASSERT_GE(reference.size(), 8u);
    std::vector<std::uint8_t> reference_body(reference.begin() + 8,
                                             reference.end());
    std::vector<std::uint8_t> loaded_body(under_load.begin() + 8,
                                          under_load.end());
    EXPECT_EQ(reference_body, loaded_body);
}

TEST_F(ServeTest, StreamedSweepsArriveBeforeTheResult)
{
    auto server = startServer(baseConfig());
    Request request = smallExp1Request(80, 99);
    request.flags = serve::kFlagStreamSweeps;
    serve::ClientConnection conn;
    ASSERT_TRUE(conn.connect(server->port()).ok());
    ASSERT_TRUE(conn.sendFrame(FrameType::Request,
                               serve::encodeRequest(request))
                    .ok());
    std::size_t sweeps = 0;
    Frame final_frame;
    for (;;) {
        const util::Expected<Frame> frame = conn.readFrame(60000);
        ASSERT_TRUE(frame.ok()) << frame.error();
        if (frame.value().type == FrameType::Sweep) {
            serve::WireReader reader(frame.value().payload.data(),
                                     frame.value().payload.size());
            EXPECT_EQ(reader.u64(), 80u);
            EXPECT_EQ(reader.u32(), sweeps); // in-order sweep index
            ++sweeps;
            continue;
        }
        final_frame = frame.value();
        break;
    }
    EXPECT_EQ(final_frame.type, FrameType::Result);
    // exp1: baseline + 2 burn + 1 recovery sweeps.
    EXPECT_EQ(sweeps, 4u);
    serve::WireReader reader(final_frame.payload.data(),
                             final_frame.payload.size());
    EXPECT_EQ(reader.u64(), 80u);
    (void)reader.u8();
    EXPECT_EQ(reader.u64(), 4u); // result agrees on the sweep count
}

// ----------------------------------------- checkpoint/resume engine

class FleetScanResumeTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        util::setVerbosity(util::Verbosity::Silent);
        char tmpl[] = "/tmp/serve_scan_XXXXXX";
        ASSERT_NE(::mkdtemp(tmpl), nullptr);
        dir_ = tmpl;
    }

    void
    TearDown() override
    {
        // Best-effort cleanup of the handful of checkpoint files.
        for (const char *suffix :
             {"/scan.ckpt", "/scan.ckpt.prev", "/scan.ckpt.tmp"}) {
            ::unlink((dir_ + suffix).c_str());
        }
        ::rmdir(dir_.c_str());
    }

    serve::FleetScanConfig
    scanConfig()
    {
        serve::FleetScanConfig config;
        config.fleet = 6;
        config.days = 30;
        config.seed = 1717;
        config.routes_per_tenant = 2;
        config.max_measured = 2;
        return config;
    }

    std::string dir_;
};

/** Observer cancelling after a fixed number of days. */
class CancelAfter : public core::SweepObserver
{
  public:
    explicit CancelAfter(std::size_t days) : days_(days) {}
    bool
    onSweep(std::size_t day, double, const double *,
            std::size_t) override
    {
        return day < days_;
    }

  private:
    std::size_t days_;
};

TEST_F(FleetScanResumeTest, ResumedRunIsByteIdentical)
{
    const util::Expected<serve::FleetScanResult> straight =
        serve::runFleetScan(scanConfig());
    ASSERT_TRUE(straight.ok()) << straight.error();
    const std::vector<std::uint8_t> reference =
        serve::encodeFleetScanResult(1, straight.value());

    // Interrupted run: checkpoints every 5 days, cancelled at day 12
    // (which flushes a final checkpoint at the cancellation boundary).
    serve::FleetScanConfig interrupted = scanConfig();
    interrupted.checkpoint_every_days = 5;
    interrupted.checkpoint_path = dir_ + "/scan.ckpt";
    CancelAfter cancel(12);
    interrupted.observer = &cancel;
    EXPECT_THROW((void)serve::runFleetScan(interrupted),
                 util::CancelledError);

    // Resubmission resumes from the checkpoint and re-delivers the
    // byte-identical result.
    serve::FleetScanConfig resumed = scanConfig();
    resumed.checkpoint_every_days = 5;
    resumed.checkpoint_path = dir_ + "/scan.ckpt";
    const util::Expected<serve::FleetScanResult> result =
        serve::runFleetScan(resumed);
    ASSERT_TRUE(result.ok()) << result.error();
    EXPECT_EQ(serve::encodeFleetScanResult(1, result.value()),
              reference);
}

#if defined(PENTIMENTO_FAULT_INJECTION)

TEST_F(FleetScanResumeTest, BitRottenPrimaryResumesFromPrevGeneration)
{
    const util::Expected<serve::FleetScanResult> straight =
        serve::runFleetScan(scanConfig());
    ASSERT_TRUE(straight.ok()) << straight.error();
    const std::vector<std::uint8_t> reference =
        serve::encodeFleetScanResult(1, straight.value());

    // Interrupted run leaves two generations: .ckpt at day 12 (the
    // cancellation flush) and .prev at day 10 (the last periodic one).
    serve::FleetScanConfig interrupted = scanConfig();
    interrupted.checkpoint_every_days = 5;
    interrupted.checkpoint_path = dir_ + "/scan.ckpt";
    CancelAfter cancel(12);
    interrupted.observer = &cancel;
    EXPECT_THROW((void)serve::runFleetScan(interrupted),
                 util::CancelledError);

    // One in-flight bit flip (max=1): the newest generation fails its
    // CRC on load, and the .prev generation must rescue the resume —
    // Require turns a silent fresh rerun into a hard failure, so this
    // also proves a real resume happened.
    const util::Expected<util::fault::Schedule> schedule =
        util::fault::parseSchedule(
            "seed=1;snapshot.load.corrupt_crc:max=1");
    ASSERT_TRUE(schedule.ok()) << schedule.error();
    util::fault::arm(schedule.value());
    serve::FleetScanConfig resumed = scanConfig();
    resumed.checkpoint_every_days = 5;
    resumed.checkpoint_path = dir_ + "/scan.ckpt";
    resumed.resume = serve::ResumeMode::Require;
    const util::Expected<serve::FleetScanResult> result =
        serve::runFleetScan(resumed);
    util::fault::disarm();

    ASSERT_TRUE(result.ok()) << result.error();
    EXPECT_EQ(result.value().resumed_from, dir_ + "/scan.ckpt.prev");
    // The .prev generation predates the cancellation flush.
    EXPECT_GT(result.value().resumed_day, 0);
    EXPECT_LT(result.value().resumed_day, 12);
    EXPECT_EQ(serve::encodeFleetScanResult(1, result.value()),
              reference);
}

#endif // PENTIMENTO_FAULT_INJECTION

TEST_F(FleetScanResumeTest, CorruptCheckpointFallsBackToFreshRun)
{
    const util::Expected<serve::FleetScanResult> straight =
        serve::runFleetScan(scanConfig());
    ASSERT_TRUE(straight.ok()) << straight.error();

    // Plant garbage where the checkpoint would be.
    const std::string path = dir_ + "/scan.ckpt";
    std::FILE *file = std::fopen(path.c_str(), "wb");
    ASSERT_NE(file, nullptr);
    std::fputs("not a snapshot", file);
    std::fclose(file);

    serve::FleetScanConfig config = scanConfig();
    config.checkpoint_path = path;
    const util::Expected<serve::FleetScanResult> result =
        serve::runFleetScan(config);
    ASSERT_TRUE(result.ok()) << result.error();
    EXPECT_EQ(serve::encodeFleetScanResult(1, result.value()),
              serve::encodeFleetScanResult(1, straight.value()));
}

TEST_F(FleetScanResumeTest, ConfigSkewIgnoresTheCheckpoint)
{
    serve::FleetScanConfig first = scanConfig();
    first.checkpoint_every_days = 5;
    first.checkpoint_path = dir_ + "/scan.ckpt";
    CancelAfter cancel(10);
    first.observer = &cancel;
    EXPECT_THROW((void)serve::runFleetScan(first),
                 util::CancelledError);

    // Different seed: the stale checkpoint must not leak into it.
    serve::FleetScanConfig skewed = scanConfig();
    skewed.seed = 9999;
    skewed.checkpoint_path = dir_ + "/scan.ckpt";
    const util::Expected<serve::FleetScanResult> via_ckpt =
        serve::runFleetScan(skewed);
    ASSERT_TRUE(via_ckpt.ok()) << via_ckpt.error();

    serve::FleetScanConfig clean = scanConfig();
    clean.seed = 9999;
    const util::Expected<serve::FleetScanResult> direct =
        serve::runFleetScan(clean);
    ASSERT_TRUE(direct.ok()) << direct.error();
    EXPECT_EQ(serve::encodeFleetScanResult(1, via_ckpt.value()),
              serve::encodeFleetScanResult(1, direct.value()));
}

TEST_F(FleetScanResumeTest, ServerResumesAfterRestart)
{
    // The in-process version of the CI kill -9 test: run the campaign
    // straight on one server, then on a second server cancel it
    // mid-flight by draining, "restart" (a third server on the same
    // checkpoint dir), resubmit, and compare RESULT bytes.
    util::setVerbosity(util::Verbosity::Silent);
    serve::CampaignServerConfig server_config;
    server_config.port = 0;
    server_config.executors = 1;
    server_config.checkpoint_dir = dir_;

    Request request;
    request.request_id = 90;
    request.seed = 1717;
    request.kind = RequestKind::FleetScan;
    request.fleet = 6;
    request.days = 30;
    request.scan_routes_per_tenant = 2;
    request.max_measured = 2;
    request.checkpoint_every_days = 5;

    std::vector<std::uint8_t> reference;
    {
        serve::CampaignServer server(server_config);
        ASSERT_TRUE(server.start().ok());
        serve::ClientConnection conn;
        ASSERT_TRUE(conn.connect(server.port()).ok());
        ASSERT_TRUE(conn.sendFrame(FrameType::Request,
                                   serve::encodeRequest(request))
                        .ok());
        const util::Expected<Frame> reply = conn.readFrame(120000);
        ASSERT_TRUE(reply.ok()) << reply.error();
        ASSERT_EQ(reply.value().type, FrameType::Result);
        reference = reply.value().payload;
        server.stop();
    }
    // Clear the finished campaign's checkpoint so the next run starts
    // fresh, then cancel it mid-flight via drain.
    {
        char name[64];
        std::snprintf(name, sizeof(name), "/campaign_%016llx.ckpt",
                      static_cast<unsigned long long>(90));
        ::unlink((dir_ + name).c_str());
        ::unlink((dir_ + name + ".prev").c_str());
    }
    {
        serve::CampaignServer server(server_config);
        ASSERT_TRUE(server.start().ok());
        Request throttled = request;
        throttled.throttle_ms_per_day = 30;
        serve::ClientConnection conn;
        ASSERT_TRUE(conn.connect(server.port()).ok());
        ASSERT_TRUE(conn.sendFrame(FrameType::Request,
                                   serve::encodeRequest(throttled))
                        .ok());
        std::this_thread::sleep_for(std::chrono::milliseconds(400));
        server.requestDrain();
        const util::Expected<Frame> cancelled = conn.readFrame(20000);
        ASSERT_TRUE(cancelled.ok()) << cancelled.error();
        EXPECT_EQ(cancelled.value().type, FrameType::Error);
        server.stop();
    }
    {
        serve::CampaignServer server(server_config);
        ASSERT_TRUE(server.start().ok());
        serve::ClientConnection conn;
        ASSERT_TRUE(conn.connect(server.port()).ok());
        ASSERT_TRUE(conn.sendFrame(FrameType::Request,
                                   serve::encodeRequest(request))
                        .ok());
        const util::Expected<Frame> reply = conn.readFrame(120000);
        ASSERT_TRUE(reply.ok()) << reply.error();
        ASSERT_EQ(reply.value().type, FrameType::Result);
        EXPECT_EQ(reply.value().payload, reference);
        server.stop();
    }
    // Cleanup the campaign checkpoints this test created.
    char name[64];
    std::snprintf(name, sizeof(name), "/campaign_%016llx.ckpt",
                  static_cast<unsigned long long>(90));
    ::unlink((dir_ + name).c_str());
    ::unlink((dir_ + name + ".prev").c_str());
    ::unlink((dir_ + name + ".tmp").c_str());
}

} // namespace
