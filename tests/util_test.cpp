/**
 * @file
 * Unit tests for the util module: RNG, statistics, kernel regression,
 * chart/table/CSV rendering, logging.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdio>
#include <fstream>
#include <vector>

#include "util/ascii_chart.hpp"
#include "util/compensated.hpp"
#include "util/csv.hpp"
#include "util/kernel_regression.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace pu = pentimento::util;

// ---------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSameSeed)
{
    pu::Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a(), b());
    }
}

TEST(Rng, DifferentSeedsDiverge)
{
    pu::Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (a() == b()) {
            ++equal;
        }
    }
    EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    pu::Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    pu::Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.5);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.5);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    pu::Rng rng(11);
    pu::RunningStats stats;
    for (int i = 0; i < 50000; ++i) {
        stats.add(rng.uniform());
    }
    EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(Rng, GaussianMoments)
{
    pu::Rng rng(13);
    pu::RunningStats stats;
    for (int i = 0; i < 100000; ++i) {
        stats.add(rng.gaussian());
    }
    EXPECT_NEAR(stats.mean(), 0.0, 0.02);
    EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, GaussianShifted)
{
    pu::Rng rng(17);
    pu::RunningStats stats;
    for (int i = 0; i < 50000; ++i) {
        stats.add(rng.gaussian(10.0, 2.0));
    }
    EXPECT_NEAR(stats.mean(), 10.0, 0.05);
    EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, BernoulliProbability)
{
    pu::Rng rng(19);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        hits += rng.bernoulli(0.3) ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, UniformIntBounds)
{
    pu::Rng rng(23);
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.uniformInt(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
    }
}

TEST(Rng, UniformIntSingleton)
{
    pu::Rng rng(23);
    EXPECT_EQ(rng.uniformInt(4, 4), 4u);
}

TEST(Rng, LognormalPositive)
{
    pu::Rng rng(29);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_GT(rng.lognormal(0.0, 0.5), 0.0);
    }
}

TEST(Rng, SplitStreamsAreIndependent)
{
    pu::Rng parent(31);
    pu::Rng a = parent.split("a");
    pu::Rng b = parent.split("b");
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (a() == b()) {
            ++equal;
        }
    }
    EXPECT_LT(equal, 2);
}

TEST(Rng, SplitByTagIsDeterministic)
{
    pu::Rng p1(37), p2(37);
    pu::Rng a = p1.split("stream");
    pu::Rng b = p2.split("stream");
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(a(), b());
    }
}

TEST(Rng, GaussianBlockMatchesSequentialDraws)
{
    for (const std::size_t n : {1u, 2u, 7u, 8u, 33u}) {
        pu::Rng seq(41), blk(41);
        std::vector<double> expected(n), got(n);
        for (std::size_t i = 0; i < n; ++i) {
            expected[i] = seq.gaussian(3.0, 0.7);
        }
        blk.gaussianBlock(3.0, 0.7, got.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(expected[i], got[i]) << "n=" << n << " i=" << i;
        }
        // The polar method caches its second variate; the block must
        // leave the generator in the same cached state as the loop.
        EXPECT_EQ(seq.gaussian(), blk.gaussian());
        EXPECT_EQ(seq(), blk());
    }
}

TEST(Rng, GaussianBlockHonoursPreCachedVariate)
{
    pu::Rng seq(43), blk(43);
    // Prime both generators with one draw so a cached second variate
    // is pending when the block starts.
    EXPECT_EQ(seq.gaussian(), blk.gaussian());
    std::vector<double> expected(5), got(5);
    for (auto &v : expected) {
        v = seq.gaussian(-1.0, 2.5);
    }
    blk.gaussianBlock(-1.0, 2.5, got.data(), got.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(expected[i], got[i]);
    }
    EXPECT_EQ(seq(), blk());
}

TEST(Rng, GaussianFastMoments)
{
    pu::Rng rng(47);
    pu::RunningStats stats;
    const int n = 1000000;
    int beyond_3sigma = 0;
    double sum_x4 = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.gaussianFast();
        stats.add(x);
        sum_x4 += x * x * x * x;
        beyond_3sigma += std::abs(x) > 3.0 ? 1 : 0;
    }
    EXPECT_NEAR(stats.mean(), 0.0, 0.005);
    EXPECT_NEAR(stats.stddev(), 1.0, 0.005);
    // Excess-free kurtosis and the 3-sigma tail mass check the ziggurat
    // layer table and its tail sampler, not just the bulk.
    EXPECT_NEAR(sum_x4 / n, 3.0, 0.1);
    EXPECT_NEAR(static_cast<double>(beyond_3sigma) / n, 0.0027, 0.0006);
}

TEST(Rng, GaussianFastBlockShiftedMoments)
{
    pu::Rng rng(53);
    std::vector<double> block(200000);
    rng.gaussianFastBlock(10.0, 2.0, block.data(), block.size());
    pu::RunningStats stats;
    for (const double v : block) {
        stats.add(v);
    }
    EXPECT_NEAR(stats.mean(), 10.0, 0.05);
    EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

// ------------------------------------------------------ RunningStats

TEST(RunningStats, KnownSample)
{
    pu::RunningStats stats;
    for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
        stats.add(v);
    }
    EXPECT_EQ(stats.count(), 8u);
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    EXPECT_NEAR(stats.stddev(), 2.13809, 1e-4);
    EXPECT_DOUBLE_EQ(stats.min(), 2.0);
    EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, EmptyIsZero)
{
    pu::RunningStats stats;
    EXPECT_EQ(stats.count(), 0u);
    EXPECT_EQ(stats.mean(), 0.0);
    EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, SingleSampleVarianceZero)
{
    pu::RunningStats stats;
    stats.add(3.0);
    EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesCombined)
{
    pu::RunningStats a, b, all;
    for (int i = 0; i < 50; ++i) {
        const double v = i * 0.37 - 3.0;
        (i % 2 == 0 ? a : b).add(v);
        all.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
    EXPECT_EQ(a.min(), all.min());
    EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty)
{
    pu::RunningStats a, b;
    a.add(1.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    b.merge(a);
    EXPECT_EQ(b.count(), 1u);
    EXPECT_EQ(b.mean(), 1.0);
}

// -------------------------------------------------------- percentiles

TEST(Percentile, Anchors)
{
    const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
    EXPECT_DOUBLE_EQ(pu::percentileSorted(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(pu::percentileSorted(v, 0.5), 3.0);
    EXPECT_DOUBLE_EQ(pu::percentileSorted(v, 1.0), 5.0);
}

TEST(Percentile, LinearInterpolation)
{
    const std::vector<double> v{0.0, 10.0};
    EXPECT_DOUBLE_EQ(pu::percentileSorted(v, 0.25), 2.5);
    EXPECT_DOUBLE_EQ(pu::percentileSorted(v, 0.75), 7.5);
}

TEST(Percentile, SingleElement)
{
    const std::vector<double> v{42.0};
    EXPECT_DOUBLE_EQ(pu::percentileSorted(v, 0.3), 42.0);
}

TEST(Percentile, RejectsEmpty)
{
    EXPECT_THROW(pu::percentileSorted({}, 0.5), std::invalid_argument);
}

TEST(Percentile, RejectsOutOfRangeQ)
{
    const std::vector<double> v{1.0, 2.0};
    EXPECT_THROW(pu::percentileSorted(v, -0.1), std::invalid_argument);
    EXPECT_THROW(pu::percentileSorted(v, 1.1), std::invalid_argument);
}

class PercentileSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(PercentileSweep, MonotoneInQ)
{
    const std::vector<double> v{1.0, 4.0, 4.5, 8.0, 9.0, 12.0, 20.0};
    const double q = GetParam();
    if (q > 0.04) {
        EXPECT_GE(pu::percentileSorted(v, q),
                  pu::percentileSorted(v, q - 0.04));
    }
}

INSTANTIATE_TEST_SUITE_P(QGrid, PercentileSweep,
                         ::testing::Values(0.05, 0.15, 0.25, 0.35, 0.5,
                                           0.65, 0.75, 0.85, 0.95, 1.0));

TEST(Summarize, MatchesManual)
{
    const std::vector<double> v{3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
    const pu::Summary s = pu::summarize(v);
    EXPECT_EQ(s.count, 8u);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 9.0);
    EXPECT_NEAR(s.mean, 3.875, 1e-12);
    EXPECT_DOUBLE_EQ(s.p50, 3.5);
}

TEST(Summarize, EmptyInput)
{
    const pu::Summary s = pu::summarize({});
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.mean, 0.0);
}

// ------------------------------------------------------------ fitLine

TEST(FitLine, RecoversExactLine)
{
    std::vector<double> x, y;
    for (int i = 0; i < 20; ++i) {
        x.push_back(i);
        y.push_back(3.0 + 0.5 * i);
    }
    const pu::LineFit fit = pu::fitLine(x, y);
    EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
    EXPECT_NEAR(fit.slope, 0.5, 1e-12);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(FitLine, FlatLineZeroSlope)
{
    const std::vector<double> x{0, 1, 2, 3};
    const std::vector<double> y{2, 2, 2, 2};
    const pu::LineFit fit = pu::fitLine(x, y);
    EXPECT_DOUBLE_EQ(fit.slope, 0.0);
    EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
}

TEST(FitLine, RejectsMismatch)
{
    const std::vector<double> x{1, 2, 3};
    const std::vector<double> y{1, 2};
    EXPECT_THROW(pu::fitLine(x, y), std::invalid_argument);
}

TEST(FitLine, RejectsTooFewPoints)
{
    const std::vector<double> x{1};
    const std::vector<double> y{1};
    EXPECT_THROW(pu::fitLine(x, y), std::invalid_argument);
}

TEST(FitLine, DegenerateXGivesMean)
{
    const std::vector<double> x{2, 2, 2};
    const std::vector<double> y{1, 2, 3};
    const pu::LineFit fit = pu::fitLine(x, y);
    EXPECT_DOUBLE_EQ(fit.slope, 0.0);
    EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
}

TEST(Correlation, PerfectPositive)
{
    const std::vector<double> x{1, 2, 3, 4};
    const std::vector<double> y{2, 4, 6, 8};
    EXPECT_NEAR(pu::correlation(x, y), 1.0, 1e-12);
}

TEST(Correlation, PerfectNegative)
{
    const std::vector<double> x{1, 2, 3, 4};
    const std::vector<double> y{8, 6, 4, 2};
    EXPECT_NEAR(pu::correlation(x, y), -1.0, 1e-12);
}

TEST(Correlation, ConstantInputGivesZero)
{
    const std::vector<double> x{1, 1, 1};
    const std::vector<double> y{1, 2, 3};
    EXPECT_DOUBLE_EQ(pu::correlation(x, y), 0.0);
}

TEST(Correlation, RejectsBadSizes)
{
    const std::vector<double> x{1.0};
    const std::vector<double> y{1.0};
    EXPECT_THROW(pu::correlation(x, y), std::invalid_argument);
}

TEST(Centered, SubtractsOrigin)
{
    const std::vector<double> v{1.0, 2.0, 3.0};
    const std::vector<double> c = pu::centered(v, 1.0);
    EXPECT_EQ(c, (std::vector<double>{0.0, 1.0, 2.0}));
}

// ------------------------------------------------- kernel regression

TEST(KernelRegression, ConstantDataStaysConstant)
{
    std::vector<double> x, y;
    for (int i = 0; i < 30; ++i) {
        x.push_back(i);
        y.push_back(5.0);
    }
    const pu::KernelRegression kr(x, y);
    for (const double fit : kr.fittedValues()) {
        EXPECT_NEAR(fit, 5.0, 1e-9);
    }
}

TEST(KernelRegression, LinearDataRecovered)
{
    std::vector<double> x, y;
    for (int i = 0; i < 50; ++i) {
        x.push_back(i);
        y.push_back(1.0 + 2.0 * i);
    }
    const pu::KernelRegression kr(x, y, 5.0);
    // Local *linear* regression is exact on straight lines, including
    // at the boundaries (unlike Nadaraya-Watson).
    EXPECT_NEAR(kr.at(0.0), 1.0, 1e-6);
    EXPECT_NEAR(kr.at(25.0), 51.0, 1e-6);
    EXPECT_NEAR(kr.at(49.0), 99.0, 1e-6);
}

TEST(KernelRegression, SmoothingReducesNoise)
{
    pu::Rng rng(5);
    std::vector<double> x, y, clean;
    for (int i = 0; i < 200; ++i) {
        x.push_back(i);
        clean.push_back(0.01 * i);
        y.push_back(clean.back() + rng.gaussian(0.0, 0.5));
    }
    const std::vector<double> smooth = pu::kernelSmooth(x, y, 10.0);
    double raw_err = 0.0, smooth_err = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        raw_err += (y[i] - clean[i]) * (y[i] - clean[i]);
        smooth_err += (smooth[i] - clean[i]) * (smooth[i] - clean[i]);
    }
    EXPECT_LT(smooth_err, raw_err / 4.0);
}

TEST(KernelRegression, RuleOfThumbBandwidthPositive)
{
    const std::vector<double> x{1, 2, 3, 4, 5};
    const std::vector<double> y{1, 2, 1, 2, 1};
    const pu::KernelRegression kr(x, y);
    EXPECT_GT(kr.bandwidth(), 0.0);
}

TEST(KernelRegression, DegenerateSameXFallsBack)
{
    const std::vector<double> x{2, 2, 2};
    const std::vector<double> y{1, 2, 3};
    const pu::KernelRegression kr(x, y, 1.0);
    EXPECT_NEAR(kr.at(2.0), 2.0, 1e-9);
}

TEST(KernelRegression, RejectsEmptyAndMismatch)
{
    const std::vector<double> x{1.0};
    const std::vector<double> none{};
    EXPECT_THROW(pu::KernelRegression(none, none),
                 std::invalid_argument);
    const std::vector<double> y2{1.0, 2.0};
    EXPECT_THROW(pu::KernelRegression(x, y2), std::invalid_argument);
}

TEST(KernelRegression, VectorQueryMatchesScalar)
{
    const std::vector<double> x{0, 1, 2, 3, 4};
    const std::vector<double> y{0, 1, 4, 9, 16};
    const pu::KernelRegression kr(x, y, 1.0);
    const std::vector<double> at = kr.at(std::vector<double>{1.5, 2.5});
    EXPECT_DOUBLE_EQ(at[0], kr.at(1.5));
    EXPECT_DOUBLE_EQ(at[1], kr.at(2.5));
}

// -------------------------------------------------------- ascii chart

TEST(AsciiChart, RendersSeriesAndLegend)
{
    pu::AsciiChart chart(40, 10);
    const std::vector<double> x{0, 1, 2, 3};
    const std::vector<double> y{0, 1, 2, 3};
    chart.addSeries("ramp", '*', x, y);
    chart.setTitle("test chart");
    const std::string out = chart.render();
    EXPECT_NE(out.find("test chart"), std::string::npos);
    EXPECT_NE(out.find('*'), std::string::npos);
    EXPECT_NE(out.find("ramp"), std::string::npos);
}

TEST(AsciiChart, VerticalMarkerAppears)
{
    pu::AsciiChart chart(40, 8);
    const std::vector<double> x{0, 10};
    const std::vector<double> y{0, 1};
    chart.addSeries("s", 'o', x, y);
    chart.addVerticalMarker(5.0, '|');
    const std::string out = chart.render();
    EXPECT_NE(out.find('|'), std::string::npos);
}

TEST(AsciiChart, EmptyChartHasPlaceholder)
{
    pu::AsciiChart chart;
    EXPECT_NE(chart.render().find("empty"), std::string::npos);
}

TEST(AsciiChart, RejectsMismatchedSeries)
{
    pu::AsciiChart chart;
    const std::vector<double> x{1, 2};
    const std::vector<double> y{1};
    EXPECT_THROW(chart.addSeries("bad", 'x', x, y),
                 std::invalid_argument);
}

TEST(AsciiChart, RejectsTinyCanvas)
{
    EXPECT_THROW(pu::AsciiChart(2, 1), std::invalid_argument);
}

TEST(AsciiChart, ZeroLineDrawnWhenRangeSpansZero)
{
    pu::AsciiChart chart(30, 9);
    const std::vector<double> x{0, 1};
    const std::vector<double> y{-1, 1};
    chart.addSeries("s", '#', x, y);
    EXPECT_NE(chart.render().find('-'), std::string::npos);
}

// -------------------------------------------------------------- table

TEST(TablePrinter, AlignsAndRenders)
{
    pu::TablePrinter table({"Asset", "MEAN", "MAX"});
    table.addRow({"foo", "1.5", "10"});
    table.addRow({"longer_name", "22.4", "3946"});
    const std::string out = table.render();
    EXPECT_NE(out.find("Asset"), std::string::npos);
    EXPECT_NE(out.find("longer_name"), std::string::npos);
    EXPECT_NE(out.find("3946"), std::string::npos);
}

TEST(TablePrinter, RejectsArityMismatch)
{
    pu::TablePrinter table({"a", "b"});
    EXPECT_THROW(table.addRow({"only one"}), std::invalid_argument);
}

TEST(TablePrinter, RejectsEmptyHeaders)
{
    EXPECT_THROW(pu::TablePrinter({}), std::invalid_argument);
}

TEST(TablePrinter, NumFormatsPrecision)
{
    EXPECT_EQ(pu::TablePrinter::num(1.23456, 2), "1.23");
    EXPECT_EQ(pu::TablePrinter::num(10.0, 0), "10");
}

// ---------------------------------------------------------------- csv

TEST(CsvWriter, WritesRows)
{
    const std::string path = ::testing::TempDir() + "csv_test.csv";
    {
        pu::CsvWriter csv(path);
        csv.writeRow(std::vector<std::string>{"h", "v"});
        csv.writeRow(std::vector<double>{1.0, 2.5});
    }
    std::ifstream in(path);
    std::string line1, line2;
    std::getline(in, line1);
    std::getline(in, line2);
    EXPECT_EQ(line1, "h,v");
    EXPECT_EQ(line2, "1,2.5");
    std::remove(path.c_str());
}

TEST(CsvWriter, EscapesSpecialCells)
{
    const std::string path = ::testing::TempDir() + "csv_escape.csv";
    {
        pu::CsvWriter csv(path);
        csv.writeRow(std::vector<std::string>{"a,b", "say \"hi\""});
    }
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "\"a,b\",\"say \"\"hi\"\"\"");
    std::remove(path.c_str());
}

TEST(CsvWriter, FatalOnBadPath)
{
    EXPECT_THROW(pu::CsvWriter("/nonexistent_dir_x/y.csv"),
                 pu::FatalError);
}

// -------------------------------------------------------------- units

TEST(Units, TemperatureRoundTrip)
{
    EXPECT_DOUBLE_EQ(pu::celsiusToKelvin(60.0), 333.15);
    EXPECT_DOUBLE_EQ(pu::kelvinToCelsius(pu::celsiusToKelvin(45.0)),
                     45.0);
}

TEST(Units, TimeConversions)
{
    EXPECT_DOUBLE_EQ(pu::hoursToSeconds(2.0), 7200.0);
    EXPECT_DOUBLE_EQ(pu::secondsToHours(1800.0), 0.5);
    EXPECT_DOUBLE_EQ(pu::nsToPs(1.5), 1500.0);
    EXPECT_DOUBLE_EQ(pu::psToNs(2800.0), 2.8);
}

// ------------------------------------------------------------ logging

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(pu::fatal("boom"), pu::FatalError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(pu::panic("bug"), pu::PanicError);
}

TEST(Logging, VerbositySetGet)
{
    const pu::Verbosity before = pu::verbosity();
    pu::setVerbosity(pu::Verbosity::Silent);
    EXPECT_EQ(pu::verbosity(), pu::Verbosity::Silent);
    pu::setVerbosity(before);
}

TEST(Logging, FatalMessagePreserved)
{
    try {
        pu::fatal("specific message");
        FAIL() << "fatal must throw";
    } catch (const pu::FatalError &e) {
        EXPECT_STREQ(e.what(), "specific message");
    }
}

TEST(CompensatedSum, MillionIrregularStepsMatchClosedForm)
{
    // The classic drift case: a million 0.1-hour steps. fl(0.1) is
    // not dyadic, so naive accumulation walks away from the closed
    // form by ~1e-6 while the compensated sum stays within an ulp.
    pu::CompensatedSum sum;
    double naive = 0.0;
    long double exact = 0.0L;
    for (int i = 0; i < 1000000; ++i) {
        const double dt = static_cast<double>(i % 7 + 1) * 0.1;
        sum.add(dt);
        naive += dt;
        exact += static_cast<long double>(dt);
    }
    const double reference = static_cast<double>(exact);
    EXPECT_NEAR(sum.value(), reference, 1e-9);
    EXPECT_GT(std::abs(naive - reference),
              10.0 * std::abs(sum.value() - reference));
}

TEST(CompensatedSum, ExactStepsStayBitExact)
{
    // Hourly experiment steps sum exactly in plain doubles; the
    // compensation term must stay zero so golden outputs that
    // depended on plain accumulation are unchanged bit for bit.
    pu::CompensatedSum sum;
    for (int i = 0; i < 200; ++i) {
        sum.add(1.0);
    }
    EXPECT_EQ(sum.value(), 200.0);
    sum.reset();
    sum.add(2.5);
    sum.add(1.5);
    EXPECT_EQ(sum.value(), 4.0);
}
