/**
 * @file
 * Unit tests for the fabric module: resources, elements, routes,
 * devices, designs and design-rule checking. The central invariant —
 * wiping a design does not erase aging — lives here.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "fabric/aging_store.hpp"
#include "fabric/design.hpp"
#include "fabric/device.hpp"
#include "fabric/drc.hpp"
#include "fabric/resource.hpp"
#include "fabric/route.hpp"
#include "fabric/routing_element.hpp"
#include "phys/thermal.hpp"
#include "util/logging.hpp"

namespace pf = pentimento::fabric;
namespace pp = pentimento::phys;
namespace pu = pentimento::util;

namespace {

pf::DeviceConfig
smallConfig(std::uint64_t seed = 1)
{
    pf::DeviceConfig config;
    config.tiles_x = 16;
    config.tiles_y = 16;
    config.nodes_per_tile = 32;
    config.seed = seed;
    return config;
}

pf::ResourceId
nodeId(std::uint16_t x, std::uint16_t y, std::uint16_t index)
{
    pf::ResourceId id;
    id.tile_x = x;
    id.tile_y = y;
    id.type = pf::ResourceType::RoutingNode;
    id.index = index;
    return id;
}

} // namespace

// --------------------------------------------------------- ResourceId

TEST(ResourceId, KeyRoundTrip)
{
    const pf::ResourceId id = nodeId(12, 40, 7);
    const pf::ResourceId back = pf::ResourceId::fromKey(id.key());
    EXPECT_EQ(back, id);
}

class ResourceIdSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(ResourceIdSweep, RoundTripAcrossTypes)
{
    const auto [x, y, index] = GetParam();
    for (const auto type :
         {pf::ResourceType::RoutingNode, pf::ResourceType::CarryElement,
          pf::ResourceType::Register, pf::ResourceType::Lut,
          pf::ResourceType::Dsp}) {
        pf::ResourceId id;
        id.tile_x = static_cast<std::uint16_t>(x);
        id.tile_y = static_cast<std::uint16_t>(y);
        id.type = type;
        id.index = static_cast<std::uint16_t>(index);
        EXPECT_EQ(pf::ResourceId::fromKey(id.key()), id);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Corners, ResourceIdSweep,
    ::testing::Values(std::make_tuple(0, 0, 0),
                      std::make_tuple(1, 2, 3),
                      std::make_tuple(65535, 0, 65535),
                      std::make_tuple(255, 65535, 1)));

TEST(ResourceId, DistinctIdsHaveDistinctKeys)
{
    EXPECT_NE(nodeId(1, 2, 3).key(), nodeId(1, 2, 4).key());
    EXPECT_NE(nodeId(1, 2, 3).key(), nodeId(2, 1, 3).key());
}

TEST(ResourceId, ToStringIsReadable)
{
    const std::string s = nodeId(3, 4, 5).toString();
    EXPECT_NE(s.find("INT_X3Y4"), std::string::npos);
    EXPECT_NE(s.find("NODE_5"), std::string::npos);
}

TEST(ResourceType, Names)
{
    EXPECT_STREQ(pf::toString(pf::ResourceType::CarryElement), "CARRY");
    EXPECT_STREQ(pf::toString(pf::ResourceType::Dsp), "DSP");
}

// ----------------------------------------------------- RoutingElement

TEST(RoutingElement, BaseDelaysIncludeVariation)
{
    pp::ElementVariation var;
    var.rise_mult = 1.1;
    var.fall_mult = 0.9;
    const pf::RoutingElement elem(nodeId(0, 0, 0), 25.0, 25.0, var, 1.0);
    EXPECT_DOUBLE_EQ(elem.basePs(pp::Transition::Rising), 27.5);
    EXPECT_DOUBLE_EQ(elem.basePs(pp::Transition::Falling), 22.5);
}

TEST(RoutingElement, RejectsNonPositiveBase)
{
    const pp::ElementVariation var;
    EXPECT_THROW(pf::RoutingElement(nodeId(0, 0, 0), 0.0, 25.0, var, 1.0),
                 pu::FatalError);
}

TEST(RoutingElement, Hold1SlowsFallingOnly)
{
    const pf::DeviceConfig cfg = smallConfig();
    const pp::ElementVariation var;
    pf::RoutingElement elem(nodeId(0, 0, 0), 25.0, 25.0, var, 1.0);
    const double rise0 = elem.delayPs(cfg.bti, cfg.delay,
                                      pp::Transition::Rising, 333.15);
    const double fall0 = elem.delayPs(cfg.bti, cfg.delay,
                                      pp::Transition::Falling, 333.15);
    elem.age(cfg.bti, {pf::Activity::Hold1, 0.5}, 333.15, 200.0);
    EXPECT_GT(elem.delayPs(cfg.bti, cfg.delay, pp::Transition::Falling,
                           333.15),
              fall0);
    EXPECT_DOUBLE_EQ(elem.delayPs(cfg.bti, cfg.delay,
                                  pp::Transition::Rising, 333.15),
                     rise0);
}

TEST(RoutingElement, Hold0SlowsRisingOnly)
{
    const pf::DeviceConfig cfg = smallConfig();
    const pp::ElementVariation var;
    pf::RoutingElement elem(nodeId(0, 0, 0), 25.0, 25.0, var, 1.0);
    const double rise0 = elem.delayPs(cfg.bti, cfg.delay,
                                      pp::Transition::Rising, 333.15);
    elem.age(cfg.bti, {pf::Activity::Hold0, 0.5}, 333.15, 200.0);
    EXPECT_GT(elem.delayPs(cfg.bti, cfg.delay, pp::Transition::Rising,
                           333.15),
              rise0);
    EXPECT_DOUBLE_EQ(
        elem.deltaVth(cfg.bti, pp::TransistorType::Nmos), 0.0);
}

TEST(RoutingElement, UnusedActivityRecovers)
{
    const pf::DeviceConfig cfg = smallConfig();
    const pp::ElementVariation var;
    pf::RoutingElement elem(nodeId(0, 0, 0), 25.0, 25.0, var, 1.0);
    elem.age(cfg.bti, {pf::Activity::Hold1, 0.5}, 333.15, 100.0);
    const double before =
        elem.deltaVth(cfg.bti, pp::TransistorType::Nmos);
    elem.age(cfg.bti, {pf::Activity::Unused, 0.5}, 333.15, 100.0);
    EXPECT_LT(elem.deltaVth(cfg.bti, pp::TransistorType::Nmos), before);
}

// --------------------------------------------------------------Device

TEST(Device, ElementVariationIsPureFunctionOfSeedAndId)
{
    pf::Device a(smallConfig(77));
    pf::Device b(smallConfig(77));
    const pf::ResourceId id = nodeId(3, 3, 3);
    EXPECT_DOUBLE_EQ(a.element(id).basePs(pp::Transition::Rising),
                     b.element(id).basePs(pp::Transition::Rising));
    EXPECT_DOUBLE_EQ(a.element(id).basePs(pp::Transition::Falling),
                     b.element(id).basePs(pp::Transition::Falling));
}

TEST(Device, DifferentSeedsGiveDifferentSilicon)
{
    pf::Device a(smallConfig(1));
    pf::Device b(smallConfig(2));
    const pf::ResourceId id = nodeId(3, 3, 3);
    EXPECT_NE(a.element(id).basePs(pp::Transition::Rising),
              b.element(id).basePs(pp::Transition::Rising));
}

TEST(Device, MaterializationOrderIrrelevant)
{
    pf::Device a(smallConfig(9));
    pf::Device b(smallConfig(9));
    const pf::ResourceId first = nodeId(1, 1, 1);
    const pf::ResourceId second = nodeId(2, 2, 2);
    const double a1 = a.element(first).basePs(pp::Transition::Rising);
    (void)a.element(second);
    (void)b.element(second);
    const double b1 = b.element(first).basePs(pp::Transition::Rising);
    EXPECT_DOUBLE_EQ(a1, b1);
}

TEST(Device, FindElementDoesNotMaterialize)
{
    pf::Device device(smallConfig());
    EXPECT_EQ(device.findElement(nodeId(0, 0, 0)), nullptr);
    EXPECT_EQ(device.materializedCount(), 0u);
    device.element(nodeId(0, 0, 0));
    EXPECT_NE(device.findElement(nodeId(0, 0, 0)), nullptr);
    EXPECT_EQ(device.materializedCount(), 1u);
}

// -------------------------------------- aging-store index growth

TEST(AgingStoreIndex, GrowthAndRehashBeyondChunkCapacity)
{
    // 3000 insertions cross two chunk boundaries (1024 elements per
    // chunk) and several open-addressing rehashes (the index doubles
    // whenever its load factor would exceed 1/2). Handles must stay
    // dense in insertion order, element addresses must never move,
    // and every key must stay findable through all of it.
    pf::AgingStore store;
    constexpr std::uint32_t kCount = 3000;
    const pp::ElementVariation variation{};
    const auto make = [&](pf::ResourceId rid) {
        return pf::RoutingElement(rid, 25.0, 25.0, variation, 1.0);
    };
    std::vector<const pf::RoutingElement *> addresses;
    std::vector<std::uint64_t> keys;
    for (std::uint32_t i = 0; i < kCount; ++i) {
        const pf::ResourceId id =
            nodeId(static_cast<std::uint16_t>(i & 0x3f),
                   static_cast<std::uint16_t>((i >> 6) & 0x3f),
                   static_cast<std::uint16_t>(i >> 12));
        const pf::ElementHandle h = store.ensure(id, make);
        ASSERT_EQ(h, i); // dense, insertion-ordered
        addresses.push_back(&store.sweepAt(h));
        keys.push_back(id.key());
    }
    EXPECT_EQ(store.size(), kCount);
    for (std::uint32_t i = 0; i < kCount; ++i) {
        // Lookup survives every intervening rehash...
        EXPECT_EQ(store.find(keys[i]), i);
        // ...the chunked slab never relocated anything...
        EXPECT_EQ(&store.sweepAt(i), addresses[i]);
        // ...and the slot still holds the element it was built for.
        EXPECT_EQ(store.sweepAt(i).id().key(), keys[i]);
    }
    // Re-ensuring an existing key is a pure lookup.
    const pf::ResourceId again = nodeId(1, 0, 0);
    EXPECT_LT(store.ensure(again, make), kCount);
    EXPECT_EQ(store.size(), kCount);
    // Absent keys miss cleanly even at high occupancy.
    EXPECT_EQ(store.find(nodeId(63, 63, 63).key()),
              pf::kInvalidElement);
    // The deterministic listing covers the whole population.
    const std::vector<pf::ResourceId> ids = store.sortedIds();
    ASSERT_EQ(ids.size(), kCount);
    EXPECT_TRUE(std::is_sorted(
        ids.begin(), ids.end(),
        [](const pf::ResourceId &a, const pf::ResourceId &b) {
            return a.key() < b.key();
        }));
}

TEST(Device, AllocateRouteElementCount)
{
    pf::Device device(smallConfig());
    const pf::RouteSpec spec = device.allocateRoute("r", 1000.0);
    EXPECT_EQ(spec.size(), 40u); // 1000 ps / 25 ps per element
    EXPECT_EQ(spec.name, "r");
    EXPECT_DOUBLE_EQ(spec.target_ps, 1000.0);
}

TEST(Device, AllocateRouteIdsAreUnique)
{
    pf::Device device(smallConfig());
    const pf::RouteSpec a = device.allocateRoute("a", 500.0);
    const pf::RouteSpec b = device.allocateRoute("b", 500.0);
    for (const auto &ida : a.elements) {
        for (const auto &idb : b.elements) {
            EXPECT_NE(ida.key(), idb.key());
        }
    }
}

TEST(Device, AllocateRouteExhaustionIsFatal)
{
    pf::DeviceConfig config = smallConfig();
    config.tiles_x = 1;
    config.tiles_y = 1;
    config.nodes_per_tile = 8;
    pf::Device device(config);
    EXPECT_THROW(device.allocateRoute("too_big", 1000.0),
                 pu::FatalError);
}

TEST(Device, AllocateCarryChainSeparateAddressSpace)
{
    pf::Device device(smallConfig());
    const pf::RouteSpec route = device.allocateRoute("r", 500.0);
    const pf::RouteSpec chain = device.allocateCarryChain("c", 64);
    EXPECT_EQ(chain.size(), 64u);
    for (const auto &id : chain.elements) {
        EXPECT_EQ(id.type, pf::ResourceType::CarryElement);
    }
    for (const auto &id : route.elements) {
        EXPECT_EQ(id.type, pf::ResourceType::RoutingNode);
    }
}

TEST(Device, CarryChainZeroTapsFatal)
{
    pf::Device device(smallConfig());
    EXPECT_THROW(device.allocateCarryChain("c", 0), pu::FatalError);
}

TEST(Device, BadConfigIsFatal)
{
    pf::DeviceConfig config = smallConfig();
    config.tiles_x = 0;
    EXPECT_THROW(pf::Device{config}, pu::FatalError);
    config = smallConfig();
    config.routing_pitch_ps = 0.0;
    EXPECT_THROW(pf::Device{config}, pu::FatalError);
}

TEST(Device, FreshScaleReflectsServiceAge)
{
    pf::DeviceConfig aged = smallConfig();
    aged.service_age_h = 30000.0;
    pf::Device new_dev(smallConfig());
    pf::Device old_dev(aged);
    EXPECT_DOUBLE_EQ(new_dev.freshScale(), 1.0);
    EXPECT_LT(old_dev.freshScale(), 0.3);
}

// ---------------------------------------------------------------Route

TEST(Route, BaseDelayNearTarget)
{
    pf::Device device(smallConfig());
    const pf::RouteSpec spec = device.allocateRoute("r", 2000.0);
    pf::Route route = device.bindRoute(spec);
    EXPECT_NEAR(route.baseDelayPs(pp::Transition::Rising), 2000.0,
                2000.0 * 0.1);
    EXPECT_NEAR(route.baseDelayPs(pp::Transition::Falling), 2000.0,
                2000.0 * 0.1);
}

TEST(Route, EmptySpecIsFatal)
{
    pf::Device device(smallConfig());
    pf::RouteSpec empty;
    empty.name = "empty";
    EXPECT_THROW(device.bindRoute(empty), pu::FatalError);
}

TEST(Route, PristineRouteHasNoBtiShift)
{
    pf::Device device(smallConfig());
    pf::Route route = device.bindRoute(device.allocateRoute("r", 1000.0));
    EXPECT_NEAR(route.btiShiftPs(pp::Transition::Rising), 0.0, 1e-9);
    EXPECT_NEAR(route.btiShiftPs(pp::Transition::Falling), 0.0, 1e-9);
}

// --------------------------------------------------------------Design

TEST(Design, EmptyNameIsFatal)
{
    EXPECT_THROW(pf::Design(""), pu::FatalError);
}

TEST(Design, RouteValueSetsActivityOnEveryElement)
{
    pf::Device device(smallConfig());
    const pf::RouteSpec spec = device.allocateRoute("r", 500.0);
    pf::Design design("d");
    design.setRouteValue(spec, true);
    EXPECT_EQ(design.configuredElements(), spec.size());
    for (const auto &id : spec.elements) {
        EXPECT_EQ(design.activityFor(id).kind, pf::Activity::Hold1);
    }
}

TEST(Design, ClearRouteRemovesActivity)
{
    pf::Device device(smallConfig());
    const pf::RouteSpec spec = device.allocateRoute("r", 500.0);
    pf::Design design("d");
    design.setRouteValue(spec, false);
    design.clearRoute(spec);
    EXPECT_EQ(design.configuredElements(), 0u);
    EXPECT_EQ(design.activityFor(spec.elements[0]).kind,
              pf::Activity::Unused);
}

TEST(Design, TogglingDutyStored)
{
    pf::Device device(smallConfig());
    const pf::RouteSpec spec = device.allocateRoute("r", 100.0);
    pf::Design design("d");
    design.setRouteToggling(spec, 0.75);
    EXPECT_DOUBLE_EQ(design.activityFor(spec.elements[0]).duty_one,
                     0.75);
    EXPECT_THROW(design.setRouteToggling(spec, 1.5), pu::FatalError);
}

TEST(Design, SettingUnusedErasesEntry)
{
    pf::Design design("d");
    const pf::ResourceId id = nodeId(1, 1, 1);
    design.setElementActivity(id, {pf::Activity::Hold1, 0.5});
    EXPECT_EQ(design.configuredElements(), 1u);
    design.setElementActivity(id, {pf::Activity::Unused, 0.5});
    EXPECT_EQ(design.configuredElements(), 0u);
}

TEST(Design, NegativePowerIsFatal)
{
    pf::Design design("d");
    EXPECT_THROW(design.setPowerW(-1.0), pu::FatalError);
}

// -------------------------------------------------------- TargetDesign

TEST(TargetDesign, BurnValuesApplied)
{
    pf::Device device(smallConfig());
    std::vector<pf::RouteSpec> specs{device.allocateRoute("a", 250.0),
                                     device.allocateRoute("b", 250.0)};
    pf::ArithmeticHeavyConfig arith;
    arith.dsp_count = 4;
    pf::TargetDesign design("t", specs, {true, false}, arith);
    EXPECT_TRUE(design.burnValue(0));
    EXPECT_FALSE(design.burnValue(1));
    EXPECT_EQ(design.activityFor(specs[0].elements[0]).kind,
              pf::Activity::Hold1);
    EXPECT_EQ(design.activityFor(specs[1].elements[0]).kind,
              pf::Activity::Hold0);
}

TEST(TargetDesign, MismatchedBurnValuesFatal)
{
    pf::Device device(smallConfig());
    std::vector<pf::RouteSpec> specs{device.allocateRoute("a", 250.0)};
    EXPECT_THROW(pf::TargetDesign("t", specs, {true, false}),
                 pu::FatalError);
}

TEST(TargetDesign, SetBurnValueFlipsActivity)
{
    pf::Device device(smallConfig());
    std::vector<pf::RouteSpec> specs{device.allocateRoute("a", 250.0)};
    pf::ArithmeticHeavyConfig arith;
    arith.dsp_count = 0;
    pf::TargetDesign design("t", specs, {false}, arith);
    design.setBurnValue(0, true);
    EXPECT_TRUE(design.burnValue(0));
    EXPECT_EQ(design.activityFor(specs[0].elements[0]).kind,
              pf::Activity::Hold1);
}

TEST(TargetDesign, RelocateRouteMovesActivity)
{
    pf::Device device(smallConfig());
    std::vector<pf::RouteSpec> specs{device.allocateRoute("a", 250.0)};
    pf::ArithmeticHeavyConfig arith;
    arith.dsp_count = 0;
    pf::TargetDesign design("t", specs, {true}, arith);
    const pf::RouteSpec new_site = device.allocateRoute("a2", 250.0);
    design.relocateRoute(0, new_site);
    EXPECT_EQ(design.activityFor(specs[0].elements[0]).kind,
              pf::Activity::Unused);
    EXPECT_EQ(design.activityFor(new_site.elements[0]).kind,
              pf::Activity::Hold1);
    EXPECT_EQ(design.routeSpec(0).name, "a2");
}

TEST(TargetDesign, Experiment2PowerBudget)
{
    pf::Device device(smallConfig());
    std::vector<pf::RouteSpec> specs{device.allocateRoute("a", 250.0)};
    pf::TargetDesign design("t", specs, {true});
    // 3896 DSPs at the default per-DSP power: the paper's 63 W,
    // inside the 85 W cap.
    EXPECT_NEAR(design.powerW(), 63.0, 1.5);
    EXPECT_LT(design.powerW(), 85.0);
}

TEST(TargetDesign, IndexOutOfRangeFatal)
{
    pf::Device device(smallConfig());
    std::vector<pf::RouteSpec> specs{device.allocateRoute("a", 250.0)};
    pf::ArithmeticHeavyConfig arith;
    arith.dsp_count = 0;
    pf::TargetDesign design("t", specs, {true}, arith);
    EXPECT_THROW(design.burnValue(1), pu::FatalError);
    EXPECT_THROW(design.routeSpec(1), pu::FatalError);
    EXPECT_THROW(design.setBurnValue(1, false), pu::FatalError);
}

// ------------------------------------------------- design lifecycle

TEST(DeviceLifecycle, LoadDesignDefersMaterialisationToObservation)
{
    pf::Device device(smallConfig());
    const pf::RouteSpec spec = device.allocateRoute("r", 500.0);
    auto design = std::make_shared<pf::Design>("d");
    design->setRouteValue(spec, true);
    EXPECT_EQ(device.materializedCount(), 0u);
    device.loadDesign(design);
    // The load journals the configuration instead of touching the
    // slab; the elements are still owed their imprint.
    EXPECT_EQ(device.materializedCount(), 0u);
    EXPECT_EQ(device.journaledKeyCount(), spec.size());
    EXPECT_EQ(device.imprintedIds().size(), spec.size());
    // First observation materialises.
    pf::Route route = device.bindRoute(spec);
    EXPECT_EQ(device.materializedCount(), spec.size());
    EXPECT_EQ(device.journaledKeyCount(), 0u);
}

TEST(DeviceLifecycle, EagerConfigMaterializesAtLoad)
{
    pf::DeviceConfig config = smallConfig();
    config.eager_materialisation = true;
    pf::Device device(config);
    const pf::RouteSpec spec = device.allocateRoute("r", 500.0);
    auto design = std::make_shared<pf::Design>("d");
    design->setRouteValue(spec, true);
    device.loadDesign(design);
    EXPECT_EQ(device.materializedCount(), spec.size());
    EXPECT_EQ(device.journaledKeyCount(), 0u);
}

TEST(DeviceLifecycle, NullDesignIsFatal)
{
    pf::Device device(smallConfig());
    EXPECT_THROW(device.loadDesign(nullptr), pu::FatalError);
}

TEST(DeviceLifecycle, WipeClearsDesignButNotAging)
{
    // THE core invariant of the paper: the provider's wipe removes
    // the configuration, the analog imprint stays.
    pf::Device device(smallConfig());
    const pf::RouteSpec spec = device.allocateRoute("r", 1000.0);
    auto design = std::make_shared<pf::Design>("burner");
    design->setRouteValue(spec, true);
    device.loadDesign(design);

    pp::OvenEnvironment oven(333.15);
    device.advance(200.0, oven);
    pf::Route route = device.bindRoute(spec);
    const double imprint = route.btiShiftPs(pp::Transition::Falling);
    EXPECT_GT(imprint, 0.5);

    device.wipe();
    EXPECT_EQ(device.currentDesign(), nullptr);
    EXPECT_NEAR(route.btiShiftPs(pp::Transition::Falling), imprint,
                1e-9);
}

TEST(DeviceLifecycle, AdvanceWithoutDesignRecovers)
{
    pf::Device device(smallConfig());
    const pf::RouteSpec spec = device.allocateRoute("r", 1000.0);
    auto design = std::make_shared<pf::Design>("burner");
    design->setRouteValue(spec, true);
    device.loadDesign(design);
    pp::OvenEnvironment oven(333.15);
    device.advance(200.0, oven);
    pf::Route route = device.bindRoute(spec);
    const double imprint = route.btiShiftPs(pp::Transition::Falling);
    device.wipe();
    device.advance(100.0, oven);
    const double later = route.btiShiftPs(pp::Transition::Falling);
    EXPECT_LT(later, imprint);
    EXPECT_GT(later, 0.0); // recovery is partial, not erasure
}

TEST(DeviceLifecycle, AdvanceAccumulatesElapsedHours)
{
    pf::Device device(smallConfig());
    pp::OvenEnvironment oven(333.15);
    device.advance(2.5, oven);
    device.advance(1.5, oven);
    EXPECT_DOUBLE_EQ(device.elapsedHours(), 4.0);
    EXPECT_THROW(device.advance(-1.0, oven), pu::FatalError);
}

TEST(DeviceLifecycle, BurnPolarityVisibleInRouteDelays)
{
    pf::Device device(smallConfig());
    const pf::RouteSpec one = device.allocateRoute("one", 1000.0);
    const pf::RouteSpec zero = device.allocateRoute("zero", 1000.0);
    auto design = std::make_shared<pf::Design>("d");
    design->setRouteValue(one, true);
    design->setRouteValue(zero, false);
    device.loadDesign(design);
    pp::OvenEnvironment oven(333.15);
    device.advance(200.0, oven);

    pf::Route r_one = device.bindRoute(one);
    pf::Route r_zero = device.bindRoute(zero);
    EXPECT_GT(r_one.btiShiftPs(pp::Transition::Falling), 0.5);
    EXPECT_NEAR(r_one.btiShiftPs(pp::Transition::Rising), 0.0, 1e-6);
    EXPECT_GT(r_zero.btiShiftPs(pp::Transition::Rising), 0.5);
    EXPECT_NEAR(r_zero.btiShiftPs(pp::Transition::Falling), 0.0, 1e-6);
}

TEST(DeviceLifecycle, ServiceWearAgesMaterializedElements)
{
    pf::Device device(smallConfig());
    const pf::RouteSpec spec = device.allocateRoute("r", 500.0);
    device.element(spec.elements[0]);
    device.applyServiceWear(10000.0);
    const auto &elem = *device.findElement(spec.elements[0]);
    EXPECT_GT(elem.deltaVth(device.config().bti,
                            pp::TransistorType::Nmos),
              0.0);
    EXPECT_THROW(device.applyServiceWear(-1.0), pu::FatalError);
}

// ---------------------------------------------- design portability

TEST(DesignPortability, SpecsFromScratchDeviceBindOnAnotherDevice)
{
    // The marketplace flow depends on this: a vendor compiles a
    // design against the device *family* (a scratch Device), and the
    // resulting specs/design must work on any physical card of that
    // family.
    pf::Device scratch(smallConfig(111));
    const pf::RouteSpec spec = scratch.allocateRoute("net", 1000.0);
    auto design = std::make_shared<pf::Design>("afi");
    design->setRouteValue(spec, true);

    pf::Device card(smallConfig(222)); // different silicon, same grid
    card.loadDesign(design);
    pp::OvenEnvironment oven(333.15);
    card.advance(100.0, oven);

    pf::Route route = card.bindRoute(spec);
    EXPECT_GT(route.btiShiftPs(pp::Transition::Falling), 0.3);
    // The scratch device was never aged.
    pf::Route scratch_route = scratch.bindRoute(spec);
    EXPECT_NEAR(scratch_route.btiShiftPs(pp::Transition::Falling), 0.0,
                1e-9);
}

TEST(DesignPortability, SameFamilyCardsDifferInBaseDelayOnly)
{
    pf::Device a(smallConfig(1));
    pf::Device b(smallConfig(2));
    const pf::RouteSpec spec = a.allocateRoute("net", 2000.0);
    const double da = a.bindRoute(spec).baseDelayPs(
        pp::Transition::Rising);
    const double db = b.bindRoute(spec).baseDelayPs(
        pp::Transition::Rising);
    EXPECT_NE(da, db);                    // silicon-unique variation
    EXPECT_NEAR(da, db, 0.05 * da);       // but the same design delay
}

// ----------------------------------------------------------------- DRC

TEST(Drc, AcceptsFeedForwardDesign)
{
    pf::Design design("ok");
    design.addCombinationalEdge("a", "b");
    design.addCombinationalEdge("b", "c");
    design.addCombinationalEdge("a", "c");
    design.setPowerW(10.0);
    const pf::DesignRuleChecker drc;
    EXPECT_TRUE(drc.accepts(design));
}

TEST(Drc, RejectsDirectLoop)
{
    pf::Design design("ro");
    design.addCombinationalEdge("route", "inverter");
    design.addCombinationalEdge("inverter", "route");
    const pf::DesignRuleChecker drc;
    const auto violations = drc.check(design);
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_EQ(violations[0].rule, "combinational-loop");
}

TEST(Drc, RejectsLongCycle)
{
    pf::Design design("long_loop");
    design.addCombinationalEdge("a", "b");
    design.addCombinationalEdge("b", "c");
    design.addCombinationalEdge("c", "d");
    design.addCombinationalEdge("d", "a");
    const pf::DesignRuleChecker drc;
    EXPECT_FALSE(drc.accepts(design));
}

TEST(Drc, SelfLoopDetected)
{
    pf::Design design("self");
    design.addCombinationalEdge("x", "x");
    const pf::DesignRuleChecker drc;
    EXPECT_FALSE(drc.accepts(design));
}

TEST(Drc, PowerCapEnforced)
{
    pf::Design design("hot");
    design.setPowerW(90.0);
    const pf::DesignRuleChecker drc(85.0);
    const auto violations = drc.check(design);
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_EQ(violations[0].rule, "power-cap");
}

TEST(Drc, PowerAtCapAccepted)
{
    pf::Design design("edge");
    design.setPowerW(85.0);
    const pf::DesignRuleChecker drc(85.0);
    EXPECT_TRUE(drc.accepts(design));
}

TEST(Drc, MultipleViolationsReported)
{
    pf::Design design("bad");
    design.setPowerW(100.0);
    design.addCombinationalEdge("a", "a");
    const pf::DesignRuleChecker drc(85.0);
    EXPECT_EQ(drc.check(design).size(), 2u);
}

TEST(Drc, EmptyDesignAccepted)
{
    const pf::Design design("empty");
    const pf::DesignRuleChecker drc;
    EXPECT_TRUE(drc.accepts(design));
}

TEST(Drc, DiamondIsNotALoop)
{
    pf::Design design("diamond");
    design.addCombinationalEdge("a", "b");
    design.addCombinationalEdge("a", "c");
    design.addCombinationalEdge("b", "d");
    design.addCombinationalEdge("c", "d");
    const pf::DesignRuleChecker drc;
    EXPECT_TRUE(drc.accepts(design));
}
