/**
 * @file
 * util/fault: schedule grammar, determinism, and arming semantics.
 *
 * The injection registry underpins every chaos battery in the repo, so
 * its contract is locked here in isolation: the `seed=N;point:k=v`
 * grammar rejects every malformed schedule loudly (a typo silently
 * arming nothing would fake a green chaos run), and the fire sequence
 * at a point is a pure function of (schedule seed, point name,
 * evaluation ordinal) — re-arming replays it, and evaluations at
 * *other* points never perturb it.
 */

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/fault.hpp"

namespace pf = pentimento::util::fault;
namespace pu = pentimento::util;

namespace {

/** Evaluate `point` n times, returning the fire pattern. */
std::vector<bool>
firePattern(const char *point, std::size_t n)
{
    std::vector<bool> fires;
    fires.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        fires.push_back(pf::shouldFail(point));
    }
    return fires;
}

/** RAII guard: whatever a test arms is gone when it exits. */
struct DisarmGuard
{
    ~DisarmGuard() { pf::disarm(); }
};

} // namespace

// ------------------------------------------------------------- grammar

TEST(FaultSchedule, ParsesSeedAndPoints)
{
    const pu::Expected<pf::Schedule> parsed = pf::parseSchedule(
        "seed=42;snapshot.commit.short_write:p=0.5,skip=2,max=1;"
        "client.send.reset:p=0.25");
    ASSERT_TRUE(parsed.ok()) << parsed.error();
    const pf::Schedule &s = parsed.value();
    EXPECT_EQ(s.seed, 42u);
    ASSERT_EQ(s.points.size(), 2u);
    EXPECT_EQ(s.points[0].point, "snapshot.commit.short_write");
    EXPECT_DOUBLE_EQ(s.points[0].probability, 0.5);
    EXPECT_EQ(s.points[0].skip, 2u);
    EXPECT_EQ(s.points[0].max_fires, 1u);
    EXPECT_EQ(s.points[1].point, "client.send.reset");
    EXPECT_DOUBLE_EQ(s.points[1].probability, 0.25);
    EXPECT_EQ(s.points[1].skip, 0u);
    EXPECT_EQ(s.points[1].max_fires, ~0ULL);
}

TEST(FaultSchedule, DefaultsAndWhitespaceTolerated)
{
    const pu::Expected<pf::Schedule> parsed =
        pf::parseSchedule("  seed=7 ; a.b.c ; d.e_f : p=1 ;; ");
    ASSERT_TRUE(parsed.ok()) << parsed.error();
    EXPECT_EQ(parsed.value().seed, 7u);
    ASSERT_EQ(parsed.value().points.size(), 2u);
    EXPECT_EQ(parsed.value().points[0].point, "a.b.c");
    EXPECT_DOUBLE_EQ(parsed.value().points[0].probability, 1.0);
    EXPECT_EQ(parsed.value().points[1].point, "d.e_f");
}

TEST(FaultSchedule, EmptyScheduleIsValidAndEmpty)
{
    const pu::Expected<pf::Schedule> parsed = pf::parseSchedule("");
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().seed, 0u);
    EXPECT_TRUE(parsed.value().points.empty());
}

TEST(FaultSchedule, SeedOnlyInFirstClause)
{
    // A later "seed=9" clause is parsed as a point name — and rejected
    // because '=' is not a point character.
    EXPECT_FALSE(pf::parseSchedule("a.b:p=1;seed=9").ok());
}

TEST(FaultSchedule, MalformedSchedulesAreLoudErrors)
{
    const char *broken[] = {
        "seed=nope",                // non-numeric seed
        "seed=1;:p=1",              // empty point name
        "seed=1;Bad.Name:p=1",      // upper case not a point char
        "seed=1;a b:p=1",           // embedded space
        "seed=1;a.b:p",             // bare key, no '='
        "seed=1;a.b:frequency=2",   // unknown key
        "seed=1;a.b:p=1.5",         // probability above 1
        "seed=1;a.b:p=-0.5",        // probability below 0
        "seed=1;a.b:p=abc",         // non-numeric probability
        "seed=1;a.b:skip=-1",       // negative count
        "seed=1;a.b:max=1x",        // trailing junk in count
        "seed=1;a.b:p=1;a.b:p=1",   // duplicate point
    };
    for (const char *text : broken) {
        EXPECT_FALSE(pf::parseSchedule(text).ok())
            << "schedule parsed but should not have: " << text;
    }
}

TEST(FaultSchedule, FormatParsesBackIdentically)
{
    const pu::Expected<pf::Schedule> parsed = pf::parseSchedule(
        "seed=9001;a.b.c:p=0.5,skip=3,max=2;x.y:p=1");
    ASSERT_TRUE(parsed.ok());
    const std::string text = pf::formatSchedule(parsed.value());
    const pu::Expected<pf::Schedule> reparsed = pf::parseSchedule(text);
    ASSERT_TRUE(reparsed.ok()) << reparsed.error();
    const pf::Schedule &a = parsed.value();
    const pf::Schedule &b = reparsed.value();
    EXPECT_EQ(a.seed, b.seed);
    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t i = 0; i < a.points.size(); ++i) {
        EXPECT_EQ(a.points[i].point, b.points[i].point);
        EXPECT_DOUBLE_EQ(a.points[i].probability,
                         b.points[i].probability);
        EXPECT_EQ(a.points[i].skip, b.points[i].skip);
        EXPECT_EQ(a.points[i].max_fires, b.points[i].max_fires);
    }
}

#if defined(PENTIMENTO_FAULT_INJECTION)

// -------------------------------------------------- arming & counters

TEST(FaultRegistry, DisarmedByDefaultAndAfterDisarm)
{
    DisarmGuard guard;
    pf::disarm();
    EXPECT_FALSE(pf::armed());
    EXPECT_FALSE(pf::shouldFail("snapshot.commit.enospc"));
    EXPECT_TRUE(pf::stats().empty());

    pf::arm(pf::parseSchedule("seed=1;a.b:p=1").value());
    EXPECT_TRUE(pf::armed());
    pf::disarm();
    EXPECT_FALSE(pf::armed());
    EXPECT_FALSE(pf::shouldFail("a.b"));
}

TEST(FaultRegistry, ArmingEmptyScheduleDisarms)
{
    DisarmGuard guard;
    pf::arm(pf::parseSchedule("seed=1;a.b:p=1").value());
    ASSERT_TRUE(pf::armed());
    pf::arm(pf::Schedule{});
    EXPECT_FALSE(pf::armed());
}

TEST(FaultRegistry, UnknownPointNeverFires)
{
    DisarmGuard guard;
    pf::arm(pf::parseSchedule("seed=1;a.b:p=1").value());
    EXPECT_FALSE(pf::shouldFail("never.configured"));
    EXPECT_TRUE(pf::shouldFail("a.b"));
}

TEST(FaultRegistry, SkipAndMaxShapeTheWindow)
{
    DisarmGuard guard;
    // p=1, skip=2, max=1: fires exactly on the third evaluation.
    pf::arm(pf::parseSchedule("seed=1;a.b:p=1,skip=2,max=1").value());
    const std::vector<bool> fires = firePattern("a.b", 6);
    const std::vector<bool> want = {false, false, true,
                                    false, false, false};
    EXPECT_EQ(fires, want);

    const std::vector<pf::PointStats> stats = pf::stats();
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_EQ(stats[0].point, "a.b");
    EXPECT_EQ(stats[0].evaluations, 6u);
    EXPECT_EQ(stats[0].fires, 1u);
}

TEST(FaultRegistry, FireSequenceReplaysAcrossRearm)
{
    DisarmGuard guard;
    const pf::Schedule schedule =
        pf::parseSchedule("seed=777;a.b:p=0.4").value();
    pf::arm(schedule);
    const std::vector<bool> first = firePattern("a.b", 64);
    pf::arm(schedule);
    const std::vector<bool> second = firePattern("a.b", 64);
    EXPECT_EQ(first, second);
    // Not degenerate: p=0.4 over 64 draws fires some but not all.
    int fired = 0;
    for (const bool f : first) {
        fired += f ? 1 : 0;
    }
    EXPECT_GT(fired, 0);
    EXPECT_LT(fired, 64);
}

TEST(FaultRegistry, PointsDrawIndependentStreams)
{
    DisarmGuard guard;
    // Reference: a.b evaluated alone.
    pf::arm(pf::parseSchedule("seed=5;a.b:p=0.5").value());
    const std::vector<bool> alone = firePattern("a.b", 48);

    // Same point, same seed, but with another point's evaluations
    // interleaved between every draw: a.b's sequence must not move.
    pf::arm(pf::parseSchedule("seed=5;a.b:p=0.5;x.y:p=0.5").value());
    std::vector<bool> interleaved;
    for (std::size_t i = 0; i < 48; ++i) {
        (void)pf::shouldFail("x.y");
        interleaved.push_back(pf::shouldFail("a.b"));
        (void)pf::shouldFail("x.y");
    }
    EXPECT_EQ(alone, interleaved);
}

TEST(FaultRegistry, DifferentSeedsDifferentSequences)
{
    DisarmGuard guard;
    pf::arm(pf::parseSchedule("seed=1;a.b:p=0.5").value());
    const std::vector<bool> one = firePattern("a.b", 64);
    pf::arm(pf::parseSchedule("seed=2;a.b:p=0.5").value());
    const std::vector<bool> two = firePattern("a.b", 64);
    EXPECT_NE(one, two);
}

// ----------------------------------------------------------- armFromEnv

TEST(FaultRegistry, ArmFromEnvRoundTrip)
{
    DisarmGuard guard;
    ASSERT_EQ(::setenv("PENTIMENTO_FAULTS",
                       "seed=3;a.b:p=1,max=2", 1),
              0);
    const pu::Expected<void> armed = pf::armFromEnv();
    ASSERT_TRUE(armed.ok()) << armed.error();
    EXPECT_TRUE(pf::armed());
    EXPECT_TRUE(pf::shouldFail("a.b"));
    EXPECT_TRUE(pf::shouldFail("a.b"));
    EXPECT_FALSE(pf::shouldFail("a.b")) << "max=2 must cap fires";
    ::unsetenv("PENTIMENTO_FAULTS");
}

TEST(FaultRegistry, ArmFromEnvMalformedIsErrorNotHalfArmed)
{
    DisarmGuard guard;
    pf::disarm();
    ASSERT_EQ(::setenv("PENTIMENTO_FAULTS", "seed=1;a.b:bogus=1", 1), 0);
    const pu::Expected<void> armed = pf::armFromEnv();
    EXPECT_FALSE(armed.ok());
    EXPECT_NE(armed.error().find("PENTIMENTO_FAULTS"),
              std::string::npos)
        << armed.error();
    EXPECT_FALSE(pf::armed()) << "a malformed schedule must arm nothing";
    ::unsetenv("PENTIMENTO_FAULTS");
}

TEST(FaultRegistry, ArmFromEnvUnsetIsNoOp)
{
    DisarmGuard guard;
    ::unsetenv("PENTIMENTO_FAULTS");
    pf::disarm();
    EXPECT_TRUE(pf::armFromEnv().ok());
    EXPECT_FALSE(pf::armed());
}

#endif // PENTIMENTO_FAULT_INJECTION
