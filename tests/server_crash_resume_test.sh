#!/bin/sh
# Crash-recovery contract for bench/campaign_server: kill -9 the
# server mid-campaign, restart it on the same checkpoint directory,
# resubmit the identical request, and the resumed campaign must
# deliver a byte-identical RESULT (checksummed net of the echoed
# request id). Run by CTest (and CI) as
#   sh server_crash_resume_test.sh <campaign_server> <server_loadgen>
set -u

server="${1:?usage: server_crash_resume_test.sh <campaign_server> <server_loadgen>}"
loadgen="${2:?usage: server_crash_resume_test.sh <campaign_server> <server_loadgen>}"
workdir=$(mktemp -d) || exit 1
ckpt_dir="$workdir/ckpt"
failures=0
server_pid=""

cleanup() {
    [ -n "$server_pid" ] && kill -9 "$server_pid" 2>/dev/null
    rm -rf "$workdir"
}
trap cleanup EXIT

start_server() {
    log="$1"
    "$server" --port 0 --checkpoint-dir "$ckpt_dir" >"$log" 2>&1 &
    server_pid=$!
    # The server prints its ephemeral port once the socket is bound.
    for _ in $(seq 1 100); do
        port=$(sed -n 's/.*listening on port \([0-9]*\).*/\1/p' "$log")
        [ -n "$port" ] && return 0
        sleep 0.1
    done
    echo "FAIL: server did not report a port" >&2
    cat "$log" >&2
    return 1
}

# --- reference: the same campaign straight through, no crash --------
start_server "$workdir/ref.log" || exit 1
ref=$("$loadgen" --port "$port" --scan-days 40 --scan-id 1 \
      --scan-seed 1717 --scan-checkpoint-every 5)
code=$?
ref_crc=$(printf '%s\n' "$ref" | sed -n 's/^scan_payload_crc //p')
if [ "$code" -ne 0 ] || [ -z "$ref_crc" ]; then
    echo "FAIL [reference run]: exit $code, output: $ref" >&2
    exit 1
fi
echo "ok [reference scan] crc=$ref_crc"
kill -TERM "$server_pid"
wait "$server_pid" 2>/dev/null
server_pid=""
# Reference used request id 1; the crash run uses id 2 with its own
# (empty) checkpoint history.

# --- crash run: kill -9 mid-campaign --------------------------------
# Throttled to 40 ms per simulated day (the protocol caps the pacing
# at 50) with a checkpoint every 5 days; kill -9 as soon as the first
# checkpoint generation lands, guaranteeing the crash is mid-campaign.
start_server "$workdir/crash.log" || exit 1
"$loadgen" --port "$port" --scan-days 40 --scan-id 2 \
    --scan-seed 1717 --scan-throttle-ms 40 \
    --scan-checkpoint-every 5 >"$workdir/victim.out" 2>&1 &
victim_pid=$!
victim_ckpt="$ckpt_dir/campaign_0000000000000002.ckpt"
for _ in $(seq 1 100); do
    [ -s "$victim_ckpt" ] && break
    sleep 0.1
done
kill -9 "$server_pid"
server_pid=""
wait "$victim_pid" 2>/dev/null
if [ ! -s "$victim_ckpt" ]; then
    echo "FAIL [crash]: no checkpoint for request 2 after kill -9" >&2
    ls -la "$ckpt_dir" >&2
    cat "$workdir/victim.out" >&2
    failures=$((failures + 1))
else
    echo "ok [kill -9 left a checkpoint behind]"
fi

# --- restart + resubmit: must resume and match the reference --------
start_server "$workdir/resume.log" || exit 1
res=$("$loadgen" --port "$port" --scan-days 40 --scan-id 2 \
      --scan-seed 1717 --scan-checkpoint-every 5)
code=$?
res_crc=$(printf '%s\n' "$res" | sed -n 's/^scan_payload_crc //p')
if [ "$code" -ne 0 ] || [ -z "$res_crc" ]; then
    echo "FAIL [resume run]: exit $code, output: $res" >&2
    failures=$((failures + 1))
elif [ "$res_crc" != "$ref_crc" ]; then
    echo "FAIL [byte identity]: resumed crc $res_crc != reference $ref_crc" >&2
    failures=$((failures + 1))
else
    echo "ok [resumed result byte-identical] crc=$res_crc"
fi
kill -TERM "$server_pid"
wait "$server_pid" 2>/dev/null
server_pid=""

if [ "$failures" -ne 0 ]; then
    echo "$failures crash-recovery failure(s)" >&2
    exit 1
fi
echo "campaign_server crash-recovery contract: all cases pass"
