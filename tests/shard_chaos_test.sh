#!/bin/sh
# Chaos battery for the shard supervisor: the merged CSV of a sharded
# fleet campaign must be byte-identical to a single-process run under
# (a) a clean multi-shard run, (b) three seeded deterministic fault
# schedules (worker result-send resets, supervisor-side send resets,
# checkpoint-commit failures plus one load-time bit flip), and
# (c) a kill -9 sweep that SIGKILLs every worker process twice
# mid-campaign, forcing respawn + checkpoint resume.
#
# The reference is computed HERE, by the same binary, not compared to
# the committed golden CSV: Debug/sanitizer builds may drift in
# floating point relative to the Release build that produced the
# golden. The committed-golden comparison is the Release CI leg's job.
# Run by CTest (and CI) as
#   sh shard_chaos_test.sh <fleet_campaign> <campaign_server>
set -u

campaign="${1:?usage: shard_chaos_test.sh <fleet_campaign> <campaign_server>}"
server="${2:?usage: shard_chaos_test.sh <fleet_campaign> <campaign_server>}"
workdir=$(mktemp -d) || exit 1
failures=0

cleanup() {
    # Workers name their checkpoint dir on the command line; anything
    # still under $workdir is an orphan of a failed scenario.
    pkill -9 -f -- "--worker --port 0 .*$workdir" 2>/dev/null
    rm -rf "$workdir"
}
trap cleanup EXIT

note() { printf '%s\n' "$*"; }
fail() {
    note "FAIL: $*"
    failures=$((failures + 1))
}

fleet=24

# ---- single-process reference ------------------------------------
if ! "$campaign" --fleet $fleet --csv "$workdir/ref.csv" \
        >"$workdir/ref.log" 2>&1; then
    note "FAIL: reference run failed"
    tail -5 "$workdir/ref.log"
    exit 1
fi

# One sharded scenario: run, expect exit 0, expect CSV == reference.
#   run_sharded <name> <shards> [extra flags...]
run_sharded() {
    name="$1"
    nshards="$2"
    shift 2
    if ! "$campaign" --fleet $fleet --shards "$nshards" \
            --worker-binary "$server" \
            --checkpoint-path "$workdir/$name.ckpt" \
            --checkpoint-every 30 \
            --csv "$workdir/$name.csv" "$@" \
            >"$workdir/$name.log" 2>&1; then
        fail "$name: sharded campaign exited nonzero"
        tail -5 "$workdir/$name.log"
        return 1
    fi
    if ! cmp -s "$workdir/ref.csv" "$workdir/$name.csv"; then
        fail "$name: merged CSV differs from the single-process run"
        return 1
    fi
    note "ok: $name ($(sed -n 's/^  shards  *//p' "$workdir/$name.log"))"
    return 0
}

# ---- clean sharded run -------------------------------------------
run_sharded clean 3

# ---- seeded fault schedules --------------------------------------
# Each schedule is capped (max=) so the run provably converges; the
# per-point seeds make every injected failure replayable. Workers
# inherit the schedule via PENTIMENTO_FAULTS.
run_sharded fault_server_reset 2 \
    --fault-schedule "seed=101;server.send.reset:max=2"
run_sharded fault_client_reset 2 \
    --fault-schedule "seed=202;client.send.reset:skip=1,max=2"
run_sharded fault_snapshot 2 \
    --fault-schedule "seed=303;snapshot.commit.enospc:p=0.5,max=4;snapshot.load.corrupt_crc:max=1"

# ---- kill -9 sweep -----------------------------------------------
# Throttle the simulated days so the campaign is alive long enough to
# be shot at, then SIGKILL every worker twice. The supervisor must
# respawn them and resume each shard from its checkpoint.
name=kill9
"$campaign" --fleet $fleet --shards 2 \
    --worker-binary "$server" \
    --checkpoint-path "$workdir/$name.ckpt" \
    --checkpoint-every 30 --day-sleep-ms 5 \
    --csv "$workdir/$name.csv" \
    >"$workdir/$name.log" 2>&1 &
campaign_pid=$!
kills=0
for _ in 1 2; do
    sleep 1
    if pkill -9 -f -- "--worker --port 0 .*$workdir/$name.ckpt.shards" \
            2>/dev/null; then
        kills=$((kills + 1))
    fi
done
if ! wait "$campaign_pid"; then
    fail "$name: campaign exited nonzero after worker kills"
    tail -5 "$workdir/$name.log"
elif [ "$kills" -eq 0 ]; then
    fail "$name: no worker was ever killed (campaign too fast to test)"
elif ! cmp -s "$workdir/ref.csv" "$workdir/$name.csv"; then
    fail "$name: merged CSV differs after kill -9 recovery"
else
    spawned=$(sed -n 's/.*attempts, \([0-9]*\) processes spawned.*/\1/p' \
        "$workdir/$name.log")
    if [ -n "$spawned" ] && [ "$spawned" -le 2 ]; then
        fail "$name: workers were killed but never respawned"
    else
        note "ok: $name ($kills kill sweeps, $spawned processes spawned)"
    fi
fi

if [ "$failures" -ne 0 ]; then
    note "$failures chaos scenario(s) failed"
    exit 1
fi
note "all chaos scenarios byte-identical to the single-process run"
exit 0
