/**
 * @file
 * The cloud FPGA platform (AWS F1 model, paper §2).
 *
 * A fleet of FpgaInstances with the provider behaviours the paper's
 * threat models depend on:
 *
 *  - rent / release lifecycle with a *design wipe* on release — which
 *    clears configuration but cannot clear BTI;
 *  - design-rule checking at load time (ring oscillators rejected,
 *    85 W power cap);
 *  - a finite regional fleet, so an attacker can flash-acquire all
 *    available capacity to guarantee receiving a victim's board
 *    (Assumption 2);
 *  - optional launch-rate control (a §8.2 provider mitigation):
 *    released boards are quarantined for a configurable number of
 *    hours before re-entering the pool.
 */

#ifndef PENTIMENTO_CLOUD_PLATFORM_HPP
#define PENTIMENTO_CLOUD_PLATFORM_HPP

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cloud/instance.hpp"
#include "cloud/marketplace.hpp"
#include "fabric/drc.hpp"

namespace pentimento::cloud {

/** How the scheduler picks among available instances. */
enum class AllocationPolicy
{
    MostRecentlyReleased, ///< LIFO: favours temporal adversaries
    LeastRecentlyReleased, ///< FIFO
    Random
};

/**
 * When (if ever) the provider zeroes BRAM contents around a tenancy
 * change. Orthogonal to the interconnect-side wipe — a wipe clears
 * configuration, which cannot touch memory contents — and to
 * active_scrub, which drives *analog* wear. The ablation_bram_scrub
 * bench prices these against each other.
 */
enum class BramScrubPolicy : std::uint8_t
{
    /** Contents ride along to the next tenant untouched. */
    None,
    /** Scrub when the provider processes a clean release. Unclean
     *  teardowns (tenant crash, power event — releaseUnclean) bypass
     *  the release pipeline and therefore the scrub: the residual
     *  exposure window this leaves is exactly what the ablation
     *  measures against ZeroOnRent. */
    ZeroOnRelease,
    /** Scrub at hand-over to the next tenant: catches unclean
     *  teardowns too, at one scrub per rent. */
    ZeroOnRent
};

/** Fleet configuration. */
struct PlatformConfig
{
    /** Cards in the region (the paper hit regional limits quickly). */
    std::size_t fleet_size = 8;
    /** Region label, e.g. "eu-west-2" (Experiment 2's region). */
    std::string region = "eu-west-2";
    /** Template silicon configuration; per-card seed/age overrides. */
    fabric::DeviceConfig device_template{};
    /** Card service age range, hours (eu-west-2: up to ~4 years). */
    double min_service_age_h = 18000.0;
    double max_service_age_h = 36000.0;
    /** Ambient process at each card. */
    AmbientParams ambient{};
    /** Power cap enforced by the DRC, watts. */
    double max_power_w = 85.0;
    /** Scheduler behaviour. */
    AllocationPolicy policy = AllocationPolicy::MostRecentlyReleased;
    /** §8.2 launch-rate control: hold released boards this long. */
    double quarantine_hours = 0.0;
    /**
     * Provider active scrub: while a released board sits in the pool,
     * drive every previously-used element with toggling data (a
     * best-effort "analog erase" — the provider cannot complement
     * values it never knew). The ablation_provider_scrub bench
     * quantifies how little this helps, supporting the paper's claim
     * that logical erasure cannot remove burn-in.
     */
    bool active_scrub = false;
    /** BRAM content-scrub policy (see BramScrubPolicy). */
    BramScrubPolicy bram_scrub = BramScrubPolicy::None;
    /** Master seed for the fleet. */
    std::uint64_t seed = 1234;
};

/**
 * The rentable fleet plus its marketplace.
 */
class CloudPlatform
{
  public:
    explicit CloudPlatform(PlatformConfig config);

    /** Fleet configuration. */
    const PlatformConfig &config() const { return config_; }

    /** The marketplace attached to this platform. */
    Marketplace &marketplace() { return marketplace_; }

    /** Platform wall clock, hours since epoch. */
    double nowHours() const { return now_h_; }

    /** Instances currently available for rent. */
    std::size_t availableCount() const;

    /**
     * Rent one instance according to the allocation policy.
     * @return instance id, or nullopt when the region is exhausted
     *         (the paper's "reached the limit of F1 devices" error)
     */
    std::optional<std::string> rent();

    /** Flash attack: rent everything currently available. */
    std::vector<std::string> rentAll();

    /**
     * Release an instance back into the pool. The provider wipes the
     * design ("scrubs FPGA state on termination") — aging persists.
     */
    void release(const std::string &instance_id);

    /**
     * Unclean teardown: the board returns to the pool outside the
     * provider's release pipeline (tenant crash, host power event).
     * Same configuration wipe and pool bookkeeping as release(), but
     * the ZeroOnRelease content scrub is bypassed — that residual is
     * the exposure window the BRAM channel exploits — and the
     * board's BRAM blocks accrue `off_power_hours` against their
     * retention windows. Interconnect-side behaviour (wipe, active
     * scrub) is identical to release(), so enabling unclean
     * teardowns never perturbs the aging channel.
     */
    void releaseUnclean(const std::string &instance_id,
                        double off_power_hours = 0.0);

    /** BRAM scrub operations performed so far (the cost side of the
     *  scrub-policy ablation). */
    std::uint64_t bramScrubOps() const { return bram_scrub_ops_; }

    /** Access an instance (caller must have rented it). */
    FpgaInstance &instance(const std::string &instance_id);

    /**
     * Load a design after provider-side design rule checks; on
     * violations the design is NOT loaded and the violations are
     * returned (ring oscillators die here).
     */
    std::vector<fabric::DrcViolation>
    loadDesign(const std::string &instance_id,
               std::shared_ptr<const fabric::Design> design);

    /**
     * Advance the whole region: every card ages under its loaded
     * design (or recovers when idle). The per-card walk is event-
     * driven: ambient events (hourly by default) bound the spans, and
     * each span costs one package-model relaxation plus one O(1)
     * timeline segment. Idle pooled stock skips even that — the walk
     * is deferred in O(1) per call and replayed only when a board is
     * next observed — so fleet-scale campaigns (hundreds of boards,
     * simulated years, a handful ever measured) are bounded by the
     * boards tenants and attackers actually touch. step_h further
     * caps span length for configured boards that want finer thermal
     * relaxation. Fatals on negative/non-finite hours or
     * non-positive step_h before any board advances.
     */
    void advanceHours(double hours, double step_h = 1.0);

    /** Ids of all instances (diagnostics / experiments). */
    std::vector<std::string> allInstanceIds() const;

    /**
     * Serialize the whole fleet: one "PLT!" chunk (config
     * fingerprint, wall clock, scheduler RNG) followed by one "BRD!"
     * chunk per instance, in fleet order. Strictly non-flushing (see
     * FpgaInstance::saveState). The marketplace is NOT serialized —
     * it holds published design images (code, not board state);
     * campaigns re-publish on resume.
     */
    void saveState(util::SnapshotWriter &writer) const;

    /**
     * Restore into a platform freshly constructed from the same
     * PlatformConfig — construction re-derives each board's silicon
     * seed and service age deterministically, then this restores the
     * dynamic state on top. Any corruption or config skew is returned
     * as a recoverable error (never fatal); the platform must then be
     * discarded. `boards_with_design` (optional) collects the ids of
     * boards that had a design resident at save time, for the owner
     * to re-load.
     */
    util::Expected<void> restoreState(
        util::SnapshotReader &reader,
        std::vector<std::string> *boards_with_design = nullptr);

  private:
    FpgaInstance *find(const std::string &instance_id);
    bool availableForRent(const FpgaInstance &inst) const;
    /** Shared body of release()/releaseUnclean(). */
    void releaseImpl(const std::string &instance_id, bool clean,
                     double off_power_hours);

    PlatformConfig config_;
    Marketplace marketplace_;
    fabric::DesignRuleChecker drc_;
    std::vector<std::unique_ptr<FpgaInstance>> fleet_;
    /** id → fleet_ index. The fleet is fixed at construction and
     *  restore never reorders it (board chunks are fingerprint-
     *  checked against ids in fleet order), so the index is built
     *  once and stays valid across snapshot round-trips. Every
     *  rent/release/loadDesign/instance call resolves through it —
     *  the linear scan it replaced made fleet-wide campaign phases
     *  O(N²). */
    std::unordered_map<std::string, std::size_t> index_;
    util::Rng rng_;
    double now_h_ = 0.0;
    std::uint64_t bram_scrub_ops_ = 0;
};

} // namespace pentimento::cloud

#endif // PENTIMENTO_CLOUD_PLATFORM_HPP
