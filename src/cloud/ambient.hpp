/**
 * @file
 * Data-centre ambient temperature model.
 *
 * The cloud provides "substantially less control over environmental
 * conditions" than the lab oven (paper §5): inlet temperature drifts
 * with load, neighbours and HVAC cycles. We model the ambient seen by
 * an F1 card as an Ornstein–Uhlenbeck process — mean-reverting noise —
 * which is what turns the clean Figure 6 curves into the noisier
 * Figure 7/8 ones.
 *
 * Event-driven trace (PR 4): the process is sampled only at *ambient
 * events*, a fixed grid at multiples of `event_every_h` on the model's
 * own clock, using the exact OU transition over one event interval.
 * The ambient is piecewise constant between events, and the k-th draw
 * is a pure function of the model's seed and the event index k (the
 * draws come from a private stream consumed strictly in event order),
 * so any partition of a span into advance() calls — hourly steps, one
 * multi-day jump, random dyadic splits — crosses the same events and
 * produces the bit-identical temperature sequence. Under the default
 * hourly cadence this reproduces the draw-per-hour sequences of the
 * previous per-step walk exactly.
 *
 * advance() is O(1) bookkeeping: the draws for crossed events are
 * deferred until something observes the temperature (ambientK()), so
 * idle fleet stock pays nothing per simulated day until a tenant or a
 * measurement actually looks.
 */

#ifndef PENTIMENTO_CLOUD_AMBIENT_HPP
#define PENTIMENTO_CLOUD_AMBIENT_HPP

#include <cstdint>

#include "util/compensated.hpp"
#include "util/rng.hpp"

namespace pentimento::util {
class SnapshotWriter;
class SnapshotReader;
} // namespace pentimento::util

namespace pentimento::cloud {

/** Ornstein–Uhlenbeck parameters for ambient temperature. */
struct AmbientParams
{
    /** Long-run mean ambient, kelvin. */
    double mean_k = 318.15; // 45 C at the card
    /** Mean-reversion rate per hour. */
    double reversion_per_h = 0.25;
    /** Stationary standard deviation, kelvin. */
    double sigma_k = 1.6;
    /**
     * Ambient event cadence, hours. The process changes value only at
     * multiples of this interval; the default preserves the hourly
     * draw sequence of the historical per-hour walk bit for bit.
     */
    double event_every_h = 1.0;
};

/**
 * Mean-reverting ambient temperature, sampled at ambient events.
 */
class AmbientModel
{
  public:
    AmbientModel(AmbientParams params, util::Rng rng);

    /**
     * Account dt hours of simulated time. O(1): events crossed by the
     * span are only counted here; their draws happen lazily at the
     * next observation, in event order.
     */
    void advance(double dt_h);

    /**
     * Advance the process by dt hours and return the new ambient
     * (compatibility form of advance() + ambientK()).
     */
    double step(double dt_h);

    /**
     * Current ambient temperature in kelvin. Replays any pending
     * event draws first, so the result reflects every advance() so
     * far regardless of how the span was partitioned.
     */
    double ambientK();

    /** Events whose draws are folded into ambientK() already. */
    std::uint64_t committedEvents() const { return committed_; }

    /** Events crossed but not yet drawn (diagnostics / tests). */
    std::uint64_t
    pendingEvents() const
    {
        return targetEvents() - committed_;
    }

    /** Event cadence, hours. */
    double eventCadenceH() const { return params_.event_every_h; }

    /**
     * Hours from the current clock to the end of the current event
     * cell — the longest span over which the ambient is guaranteed
     * constant. Callers that need per-event temperatures (the cloud
     * instance's aging walk) bound their spans with this.
     */
    double hoursUntilBoundary() const;

    /**
     * Serialize the OU walk into the writer's current chunk: last
     * committed temperature, the compensated clock, the event cursor,
     * and the draw stream — pending (uncommitted) events stay pending,
     * so checkpointing never consumes a draw early.
     */
    void saveState(util::SnapshotWriter &writer) const;

    /**
     * Restore into a model freshly constructed with the same params
     * (the chunk carries a parameter fingerprint). Returns ok().
     */
    bool restoreState(util::SnapshotReader &reader);

  private:
    /** Draws committed after all advanced time is observed. */
    std::uint64_t targetEvents() const;

    /** Replay pending event draws, in event order. */
    void materialize();

    AmbientParams params_;
    util::Rng rng_;
    /** Exact one-event OU transition, precomputed once. */
    double decay_;
    double noise_sd_;
    double temp_k_;
    /** Simulated hours accounted so far (compensated: dyadic step
     *  patterns sum exactly, so event crossings are partition-
     *  invariant). */
    util::CompensatedSum clock_h_;
    std::uint64_t committed_ = 0;
};

} // namespace pentimento::cloud

#endif // PENTIMENTO_CLOUD_AMBIENT_HPP
