/**
 * @file
 * Data-centre ambient temperature model.
 *
 * The cloud provides "substantially less control over environmental
 * conditions" than the lab oven (paper §5): inlet temperature drifts
 * with load, neighbours and HVAC cycles. We model the ambient seen by
 * an F1 card as an Ornstein–Uhlenbeck process — mean-reverting noise —
 * which is what turns the clean Figure 6 curves into the noisier
 * Figure 7/8 ones.
 */

#ifndef PENTIMENTO_CLOUD_AMBIENT_HPP
#define PENTIMENTO_CLOUD_AMBIENT_HPP

#include "util/rng.hpp"

namespace pentimento::cloud {

/** Ornstein–Uhlenbeck parameters for ambient temperature. */
struct AmbientParams
{
    /** Long-run mean ambient, kelvin. */
    double mean_k = 318.15; // 45 C at the card
    /** Mean-reversion rate per hour. */
    double reversion_per_h = 0.25;
    /** Stationary standard deviation, kelvin. */
    double sigma_k = 1.6;
};

/**
 * Mean-reverting ambient temperature process.
 */
class AmbientModel
{
  public:
    AmbientModel(AmbientParams params, util::Rng rng);

    /** Advance the process by dt hours and return the new ambient. */
    double step(double dt_h);

    /** Current ambient temperature in kelvin. */
    double ambientK() const { return temp_k_; }

  private:
    AmbientParams params_;
    util::Rng rng_;
    double temp_k_;
};

} // namespace pentimento::cloud

#endif // PENTIMENTO_CLOUD_AMBIENT_HPP
