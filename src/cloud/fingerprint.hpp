/**
 * @file
 * Device fingerprinting (Assumption 2 support).
 *
 * Threat Model 2 needs the attacker to confirm they were handed the
 * *victim's* physical board. The paper cites cloud-FPGA
 * fingerprinting work; the mechanism here is process variation: the
 * un-aged per-element delay pattern of a device is silicon-unique and
 * stable. The fingerprinter probes a canonical set of routes with a
 * TDC and matches delay vectors by correlation.
 */

#ifndef PENTIMENTO_CLOUD_FINGERPRINT_HPP
#define PENTIMENTO_CLOUD_FINGERPRINT_HPP

#include <string>
#include <vector>

#include "cloud/instance.hpp"
#include "fabric/route.hpp"
#include "tdc/tdc.hpp"

namespace pentimento::cloud {

/** A measured delay vector identifying a physical device. */
struct Fingerprint
{
    std::string label;
    std::vector<double> route_delays_ps;
};

/** Fingerprinting configuration. */
struct FingerprintConfig
{
    /** Number of canonical probe routes. */
    std::size_t probe_routes = 24;
    /** Nominal probe route delay, ps. */
    double probe_route_ps = 400.0;
    /** TDC settings used for probing. */
    tdc::TdcConfig tdc{};
};

/**
 * Probes devices and matches fingerprints.
 */
class Fingerprinter
{
  public:
    explicit Fingerprinter(FingerprintConfig config = {});

    /**
     * Measure the canonical probe routes on an instance. The probe
     * skeletons are a pure function of the device family, so the same
     * routes are compared across boards.
     */
    Fingerprint probe(FpgaInstance &instance,
                      const std::string &label) const;

    /** Similarity in [-1, 1]: Pearson correlation of delay vectors. */
    static double similarity(const Fingerprint &a, const Fingerprint &b);

    /**
     * Index of the best-matching catalog entry for a probe, or -1
     * when the best similarity is below the threshold.
     */
    static int match(const Fingerprint &probe,
                     const std::vector<Fingerprint> &catalog,
                     double threshold = 0.8);

    /** The canonical probe skeletons for a device family. */
    std::vector<fabric::RouteSpec>
    probeSpecs(const fabric::DeviceConfig &config) const;

  private:
    FingerprintConfig config_;
};

} // namespace pentimento::cloud

#endif // PENTIMENTO_CLOUD_FINGERPRINT_HPP
