#include "cloud/ambient.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace pentimento::cloud {

AmbientModel::AmbientModel(AmbientParams params, util::Rng rng)
    : params_(params), rng_(rng), temp_k_(params.mean_k)
{
    if (params_.mean_k <= 0.0) {
        util::fatal("AmbientModel: non-positive mean temperature");
    }
    if (params_.reversion_per_h < 0.0 || params_.sigma_k < 0.0) {
        util::fatal("AmbientModel: negative process parameter");
    }
}

double
AmbientModel::step(double dt_h)
{
    if (dt_h < 0.0) {
        util::fatal("AmbientModel::step: negative time step");
    }
    if (dt_h == 0.0) {
        return temp_k_;
    }
    // Exact OU discretisation: the stationary sd equals sigma_k
    // regardless of step size.
    const double a = std::exp(-params_.reversion_per_h * dt_h);
    const double noise_sd =
        params_.sigma_k * std::sqrt(1.0 - a * a);
    temp_k_ = params_.mean_k + (temp_k_ - params_.mean_k) * a +
              rng_.gaussian(0.0, noise_sd);
    return temp_k_;
}

} // namespace pentimento::cloud
