#include "cloud/ambient.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace pentimento::cloud {

AmbientModel::AmbientModel(AmbientParams params, util::Rng rng)
    : params_(params), rng_(rng), temp_k_(params.mean_k)
{
    if (params_.mean_k <= 0.0) {
        util::fatal("AmbientModel: non-positive mean temperature");
    }
    if (params_.reversion_per_h < 0.0 || params_.sigma_k < 0.0) {
        util::fatal("AmbientModel: negative process parameter");
    }
    if (!(params_.event_every_h > 0.0) ||
        !std::isfinite(params_.event_every_h)) {
        util::fatal("AmbientModel: event cadence must be positive");
    }
    // Exact OU discretisation over one event interval: the stationary
    // sd equals sigma_k regardless of cadence. Same expressions the
    // per-step walk evaluated per call, hoisted to construction.
    decay_ = std::exp(-params_.reversion_per_h * params_.event_every_h);
    noise_sd_ = params_.sigma_k * std::sqrt(1.0 - decay_ * decay_);
}

std::uint64_t
AmbientModel::targetEvents() const
{
    const double t = clock_h_.value();
    if (t <= 0.0) {
        return 0;
    }
    // Event k covers the cell ((k-1)e, ke]: entering a cell commits
    // its draw, so at clock t every event with boundary strictly
    // below t plus the one covering t itself has fired.
    return static_cast<std::uint64_t>(
        std::ceil(t / params_.event_every_h));
}

double
AmbientModel::hoursUntilBoundary() const
{
    const double e = params_.event_every_h;
    const double t = clock_h_.value();
    const double cells = std::floor(t / e);
    double span = (cells + 1.0) * e - t;
    // Guard the cell arithmetic against rounding at huge clock/cadence
    // ratios: never report a non-positive or over-long span.
    if (span <= 0.0) {
        span = e;
    }
    return span < e ? span : e;
}

void
AmbientModel::advance(double dt_h)
{
    if (!(dt_h >= 0.0)) {
        util::fatal("AmbientModel::advance: negative time step");
    }
    clock_h_.add(dt_h);
}

void
AmbientModel::materialize()
{
    const std::uint64_t target = targetEvents();
    // Draws are consumed from the private stream strictly in event
    // order, so the value of draw k depends only on (seed, k): any
    // partition of the advanced span replays the same sequence.
    while (committed_ < target) {
        temp_k_ = params_.mean_k + (temp_k_ - params_.mean_k) * decay_ +
                  rng_.gaussian(0.0, noise_sd_);
        ++committed_;
    }
}

double
AmbientModel::ambientK()
{
    materialize();
    return temp_k_;
}

double
AmbientModel::step(double dt_h)
{
    if (!(dt_h >= 0.0)) {
        util::fatal("AmbientModel::step: negative time step");
    }
    advance(dt_h);
    return ambientK();
}

} // namespace pentimento::cloud
