#include "cloud/ambient.hpp"

#include <cmath>

#include "util/logging.hpp"
#include "util/snapshot.hpp"

namespace pentimento::cloud {

AmbientModel::AmbientModel(AmbientParams params, util::Rng rng)
    : params_(params), rng_(rng), temp_k_(params.mean_k)
{
    if (params_.mean_k <= 0.0) {
        util::fatal("AmbientModel: non-positive mean temperature");
    }
    if (params_.reversion_per_h < 0.0 || params_.sigma_k < 0.0) {
        util::fatal("AmbientModel: negative process parameter");
    }
    if (!(params_.event_every_h > 0.0) ||
        !std::isfinite(params_.event_every_h)) {
        util::fatal("AmbientModel: event cadence must be positive");
    }
    // Exact OU discretisation over one event interval: the stationary
    // sd equals sigma_k regardless of cadence. Same expressions the
    // per-step walk evaluated per call, hoisted to construction.
    decay_ = std::exp(-params_.reversion_per_h * params_.event_every_h);
    noise_sd_ = params_.sigma_k * std::sqrt(1.0 - decay_ * decay_);
}

std::uint64_t
AmbientModel::targetEvents() const
{
    const double t = clock_h_.value();
    if (t <= 0.0) {
        return 0;
    }
    // Event k covers the cell ((k-1)e, ke]: entering a cell commits
    // its draw, so at clock t every event with boundary strictly
    // below t plus the one covering t itself has fired.
    return static_cast<std::uint64_t>(
        std::ceil(t / params_.event_every_h));
}

double
AmbientModel::hoursUntilBoundary() const
{
    const double e = params_.event_every_h;
    const double t = clock_h_.value();
    const double cells = std::floor(t / e);
    double span = (cells + 1.0) * e - t;
    // Guard the cell arithmetic against rounding at huge clock/cadence
    // ratios: never report a non-positive or over-long span.
    if (span <= 0.0) {
        span = e;
    }
    return span < e ? span : e;
}

void
AmbientModel::advance(double dt_h)
{
    if (!(dt_h >= 0.0)) {
        util::fatal("AmbientModel::advance: negative time step");
    }
    clock_h_.add(dt_h);
}

void
AmbientModel::materialize()
{
    const std::uint64_t target = targetEvents();
    // Draws are consumed from the private stream strictly in event
    // order, so the value of draw k depends only on (seed, k): any
    // partition of the advanced span replays the same sequence.
    while (committed_ < target) {
        temp_k_ = params_.mean_k + (temp_k_ - params_.mean_k) * decay_ +
                  rng_.gaussian(0.0, noise_sd_);
        ++committed_;
    }
}

double
AmbientModel::ambientK()
{
    materialize();
    return temp_k_;
}

double
AmbientModel::step(double dt_h)
{
    if (!(dt_h >= 0.0)) {
        util::fatal("AmbientModel::step: negative time step");
    }
    advance(dt_h);
    return ambientK();
}

void
AmbientModel::saveState(util::SnapshotWriter &writer) const
{
    // Parameter fingerprint: the draw sequence is a pure function of
    // (params, seed), so restoring under different params would splice
    // two different processes together.
    writer.f64(params_.mean_k);
    writer.f64(params_.reversion_per_h);
    writer.f64(params_.sigma_k);
    writer.f64(params_.event_every_h);
    writer.f64(temp_k_);
    writer.f64(clock_h_.rawSum());
    writer.f64(clock_h_.rawCompensation());
    writer.u64(committed_);
    const util::Rng::State rng = rng_.state();
    for (const std::uint64_t word : rng.words) {
        writer.u64(word);
    }
    writer.f64(rng.cached);
    writer.u8(rng.have_cached ? 1 : 0);
}

bool
AmbientModel::restoreState(util::SnapshotReader &reader)
{
    const double mean_k = reader.f64();
    const double reversion = reader.f64();
    const double sigma_k = reader.f64();
    const double cadence = reader.f64();
    const double temp_k = reader.f64();
    const double clock_sum = reader.f64();
    const double clock_comp = reader.f64();
    const std::uint64_t committed = reader.u64();
    util::Rng::State rng;
    for (std::uint64_t &word : rng.words) {
        word = reader.u64();
    }
    rng.cached = reader.f64();
    rng.have_cached = reader.u8() != 0;
    if (!reader.ok()) {
        return false;
    }
    if (mean_k != params_.mean_k ||
        reversion != params_.reversion_per_h ||
        sigma_k != params_.sigma_k ||
        cadence != params_.event_every_h) {
        reader.fail("snapshot: ambient parameter fingerprint mismatch");
        return false;
    }
    if (!std::isfinite(temp_k) || temp_k <= 0.0 ||
        !std::isfinite(clock_sum)) {
        reader.fail("snapshot: ambient state is not physical");
        return false;
    }
    temp_k_ = temp_k;
    clock_h_.restoreParts(clock_sum, clock_comp);
    committed_ = committed;
    if (committed_ > targetEvents()) {
        reader.fail("snapshot: ambient event cursor is ahead of its "
                    "clock");
        return false;
    }
    rng_.setState(rng);
    return true;
}

} // namespace pentimento::cloud
