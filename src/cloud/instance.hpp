/**
 * @file
 * One rentable cloud FPGA card.
 *
 * Bundles the physical device with its thermal environment (package
 * model driven by the OU ambient) and rental bookkeeping. The
 * provider wipes the design on release; the silicon keeps its aging —
 * the whole point of the paper.
 *
 * Event-driven advancement (PR 4): advanceHours() walks whole spans
 * between ambient events — one package-model relaxation and one
 * aging-timeline segment per event instead of one per sub-step — and,
 * while the card is unconfigured (pooled stock with no design
 * loaded), defers the walk entirely: time is credited to the device
 * in O(1) and the ambient draws, thermal relaxations and timeline
 * segments materialise only when something observes the card again
 * (device access, die-temperature query, or any element read via the
 * device's pre-observation hook). A board that idles for a simulated
 * year and is never measured costs a few arithmetic operations per
 * advance call; a board that is re-rented replays its backlog
 * bit-identically to an eagerly stepped one.
 */

#ifndef PENTIMENTO_CLOUD_INSTANCE_HPP
#define PENTIMENTO_CLOUD_INSTANCE_HPP

#include <memory>
#include <string>

#include "cloud/ambient.hpp"
#include "fabric/device.hpp"
#include "phys/thermal.hpp"
#include "util/compensated.hpp"
#include "util/rng.hpp"

namespace pentimento::cloud {

/**
 * A physical F1 card in the fleet.
 */
class FpgaInstance
{
  public:
    /**
     * @param id provider-assigned identifier (e.g. "fpga-0003")
     * @param device_config silicon configuration (age, seed, family)
     * @param ambient ambient-process parameters
     * @param rng per-instance noise stream
     */
    FpgaInstance(std::string id, fabric::DeviceConfig device_config,
                 AmbientParams ambient, util::Rng rng);

    FpgaInstance(const FpgaInstance &) = delete;
    FpgaInstance &operator=(const FpgaInstance &) = delete;

    /** Provider-assigned identifier. */
    const std::string &id() const { return id_; }

    /**
     * The silicon. Materialises any deferred idle time first, so a
     * caller holding the reference always sees fully-aged state.
     */
    fabric::Device &
    device()
    {
        materializeDeferred();
        return device_;
    }
    const fabric::Device &
    device() const
    {
        materializeDeferred();
        return device_;
    }

    /**
     * Present die temperature (kelvin). Logically const: replays any
     * deferred ambient events and thermal relaxation first.
     */
    double
    dieTempK() const
    {
        materializeDeferred();
        return thermal_.dieTempK();
    }

    /**
     * Advance simulated time. The walk is bounded by ambient events
     * (and by step_h, for callers that want finer thermal relaxation
     * while a design is loaded): per span, the ambient is constant,
     * the package model relaxes once, and the device records a single
     * timeline segment. Unconfigured cards defer the walk entirely
     * and replay it — at event granularity — on next observation.
     * Partition-invariant: any split of a span into advanceHours
     * calls crosses the same ambient events and yields bit-identical
     * temperatures and aged delays.
     */
    void advanceHours(double hours, double step_h = 1.0);

    /** Per-instance measurement-noise stream. */
    util::Rng &rng() { return rng_; }

    /**
     * Idle hours advanced but not yet walked (diagnostic for the
     * deferred-walk tests). The backlog composes with the device's
     * activity journal: an idle board accrues hours here in O(1), the
     * walk materialises ambient events and timeline segments at first
     * observation, and only then can journal-deferred elements replay
     * against those segments — the pre-observation hook orders the
     * two.
     */
    double deferredIdleHours() const { return deferred_h_.value(); }

    /** Rental bookkeeping (maintained by the platform). */
    bool rented() const { return rented_; }
    void setRented(bool rented) { rented_ = rented; }

    /**
     * Platform hour at which the card last returned to the pool.
     * Fresh cards report a far-past time so quarantine policies never
     * withhold never-rented stock.
     */
    double releasedAtHour() const { return released_at_h_; }
    void setReleasedAtHour(double hour) { released_at_h_ = hour; }

    /**
     * Power event (host reboot / instance stop): the SRAM-based
     * configuration is lost — a wipe, with all its activity-flip
     * bookkeeping — and every BRAM block accrues `off_hours` against
     * its retention window, while interconnect aging is untouched
     * (it is physical wear). The die relaxes to ambient. Does NOT
     * advance simulated time: the owner advances the clock through
     * the normal advanceHours path.
     */
    void powerCycle(double off_hours);

    /**
     * PCIe hot reset: the configuration stays resident and BRAM
     * contents survive untouched (the data-persistence literature's
     * headline observation) — only the event counter moves. Exists so
     * experiments can assert the survival, not fake it.
     */
    void pcieReset();

    /** Power events seen (diagnostics + snapshot). */
    std::uint64_t powerCycles() const { return power_cycles_; }
    /** PCIe resets seen (diagnostics + snapshot). */
    std::uint64_t pcieResets() const { return pcie_resets_; }

    /**
     * Serialize the card into the writer's current chunk. Strictly
     * non-flushing: the deferred idle backlog and the device's raw
     * lazy state checkpoint as-is, so a restored card replays them at
     * its next observation exactly as the uncheckpointed card would
     * have.
     */
    void saveState(util::SnapshotWriter &writer) const;

    /**
     * Restore into a freshly constructed card with the same identity
     * and configuration (fingerprint-checked). On failure the card
     * must be discarded. `had_design` reports whether a design was
     * resident at save time (designs are not serialized; the owner
     * re-loads them).
     */
    util::Expected<void> restoreState(util::SnapshotReader &reader,
                                      bool *had_design = nullptr);

  private:
    /**
     * Replay deferred idle time: walk the backlog at ambient-event
     * granularity, feeding each span's settled die temperature to the
     * device as one ingested segment. Const because deferral is an
     * internal representation choice — observable state is identical
     * before and after (single-threaded by construction: deferral
     * only accrues while the card is unobserved).
     */
    void materializeDeferred() const;

    /**
     * Walk spans bounded by ambient events and step_h; when
     * credit_elapsed is false the device hours were already credited
     * at deferral time.
     */
    void walkSpans(double hours, double step_h,
                   bool credit_elapsed) const;

    std::string id_;
    /** Lazily-materialised members are mutable so const observers
     *  (dieTempK, const device()) can flush the deferred backlog. */
    mutable fabric::Device device_;
    mutable AmbientModel ambient_;
    mutable phys::PackageThermalModel thermal_;
    /** Idle hours advanced but not yet walked (design-free spans). */
    mutable util::CompensatedSum deferred_h_;
    util::Rng rng_;
    bool rented_ = false;
    double released_at_h_ = -1.0e18;
    std::uint64_t power_cycles_ = 0;
    std::uint64_t pcie_resets_ = 0;
};

} // namespace pentimento::cloud

#endif // PENTIMENTO_CLOUD_INSTANCE_HPP
