/**
 * @file
 * One rentable cloud FPGA card.
 *
 * Bundles the physical device with its thermal environment (package
 * model driven by the OU ambient) and rental bookkeeping. The
 * provider wipes the design on release; the silicon keeps its aging —
 * the whole point of the paper.
 */

#ifndef PENTIMENTO_CLOUD_INSTANCE_HPP
#define PENTIMENTO_CLOUD_INSTANCE_HPP

#include <memory>
#include <string>

#include "cloud/ambient.hpp"
#include "fabric/device.hpp"
#include "phys/thermal.hpp"
#include "util/rng.hpp"

namespace pentimento::cloud {

/**
 * A physical F1 card in the fleet.
 */
class FpgaInstance
{
  public:
    /**
     * @param id provider-assigned identifier (e.g. "fpga-0003")
     * @param device_config silicon configuration (age, seed, family)
     * @param ambient ambient-process parameters
     * @param rng per-instance noise stream
     */
    FpgaInstance(std::string id, fabric::DeviceConfig device_config,
                 AmbientParams ambient, util::Rng rng);

    /** Provider-assigned identifier. */
    const std::string &id() const { return id_; }

    /** The silicon. */
    fabric::Device &device() { return device_; }
    const fabric::Device &device() const { return device_; }

    /** Present die temperature (kelvin). */
    double dieTempK() const { return thermal_.dieTempK(); }

    /**
     * Advance simulated time in sub-steps: the ambient process is
     * stepped, fed into the package model, and the device ages under
     * whatever design is loaded. Each sub-step costs O(1) on the
     * device (a segment-timeline append); elements materialise their
     * BTI state only when something later observes them, so idle
     * pooled cards accrue simulated years at bookkeeping cost.
     */
    void advanceHours(double hours, double step_h = 1.0);

    /** Per-instance measurement-noise stream. */
    util::Rng &rng() { return rng_; }

    /** Rental bookkeeping (maintained by the platform). */
    bool rented() const { return rented_; }
    void setRented(bool rented) { rented_ = rented; }

    /**
     * Platform hour at which the card last returned to the pool.
     * Fresh cards report a far-past time so quarantine policies never
     * withhold never-rented stock.
     */
    double releasedAtHour() const { return released_at_h_; }
    void setReleasedAtHour(double hour) { released_at_h_ = hour; }

  private:
    std::string id_;
    fabric::Device device_;
    AmbientModel ambient_;
    phys::PackageThermalModel thermal_;
    util::Rng rng_;
    bool rented_ = false;
    double released_at_h_ = -1.0e18;
};

} // namespace pentimento::cloud

#endif // PENTIMENTO_CLOUD_INSTANCE_HPP
