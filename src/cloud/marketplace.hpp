/**
 * @file
 * The AWS-marketplace abstraction (paper §2).
 *
 * Publishers sell Amazon FPGA Images (AFIs). A leased AFI can be
 * *loaded* but not *inspected*: "no FPGA internal design code is
 * exposed". Threat Model 1 violates exactly this promise — the
 * attacker rents an AFI whose netlist constants (keys, weights) are
 * opaque, and recovers them through BTI burn-in.
 *
 * The marketplace hands attackers an opaque design handle plus, when
 * the publisher's sources are public (OpenTitan, FINN), the placement
 * skeleton (Assumption 1). Ground-truth burn values stay inside the
 * TargetDesign and are only consulted by scoring code.
 */

#ifndef PENTIMENTO_CLOUD_MARKETPLACE_HPP
#define PENTIMENTO_CLOUD_MARKETPLACE_HPP

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "fabric/design.hpp"
#include "fabric/route.hpp"

namespace pentimento::cloud {

/** One marketplace listing. */
struct AfiRecord
{
    std::string afi_id;
    std::string publisher;
    /** The encrypted design image: loadable, not inspectable. */
    std::shared_ptr<const fabric::Design> design;
    /**
     * The public placement skeleton (Assumption 1): available when
     * the design's sources or prebuilt bitstreams are public.
     */
    std::vector<fabric::RouteSpec> skeleton;
};

/**
 * Registry of published AFIs.
 */
class Marketplace
{
  public:
    /**
     * Publish a design; returns the assigned AFI id.
     */
    std::string publish(const std::string &publisher,
                        std::shared_ptr<const fabric::Design> design,
                        std::vector<fabric::RouteSpec> skeleton);

    /** Loadable (opaque) design image for an AFI. */
    std::shared_ptr<const fabric::Design>
    fetchDesign(const std::string &afi_id) const;

    /** Public skeleton for an AFI (may be empty for closed designs). */
    const std::vector<fabric::RouteSpec> &
    skeleton(const std::string &afi_id) const;

    /** Full record (scoring / ground-truth access for experiments). */
    const AfiRecord &record(const std::string &afi_id) const;

    /** Number of published AFIs. */
    std::size_t size() const { return records_.size(); }

  private:
    const AfiRecord &lookup(const std::string &afi_id) const;

    std::unordered_map<std::string, AfiRecord> records_;
    std::size_t next_id_ = 0;
};

} // namespace pentimento::cloud

#endif // PENTIMENTO_CLOUD_MARKETPLACE_HPP
