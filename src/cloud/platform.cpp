#include "cloud/platform.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"
#include "util/snapshot.hpp"

namespace pentimento::cloud {

namespace {

constexpr std::uint32_t kPlatformTag =
    util::snapshotTag('P', 'L', 'T', '!');
constexpr std::uint32_t kBoardTag = util::snapshotTag('B', 'R', 'D', '!');

} // namespace

CloudPlatform::CloudPlatform(PlatformConfig config)
    : config_(std::move(config)), drc_(config_.max_power_w),
      rng_(config_.seed)
{
    if (config_.fleet_size == 0) {
        util::fatal("CloudPlatform: empty fleet");
    }
    for (std::size_t i = 0; i < config_.fleet_size; ++i) {
        fabric::DeviceConfig dc = config_.device_template;
        dc.seed = rng_();
        dc.service_age_h = rng_.uniform(config_.min_service_age_h,
                                        config_.max_service_age_h);
        std::string id = "fpga-" + std::to_string(i);
        fleet_.push_back(std::make_unique<FpgaInstance>(
            id, std::move(dc), config_.ambient, rng_.split(id)));
        index_.emplace(fleet_.back()->id(), i);
    }
}

bool
CloudPlatform::availableForRent(const FpgaInstance &inst) const
{
    if (inst.rented()) {
        return false;
    }
    // Launch-rate control: a released board stays quarantined.
    return now_h_ - inst.releasedAtHour() >= config_.quarantine_hours;
}

std::size_t
CloudPlatform::availableCount() const
{
    std::size_t count = 0;
    for (const auto &inst : fleet_) {
        if (availableForRent(*inst)) {
            ++count;
        }
    }
    return count;
}

std::optional<std::string>
CloudPlatform::rent()
{
    std::vector<FpgaInstance *> candidates;
    for (const auto &inst : fleet_) {
        if (availableForRent(*inst)) {
            candidates.push_back(inst.get());
        }
    }
    if (candidates.empty()) {
        return std::nullopt;
    }
    FpgaInstance *chosen = nullptr;
    switch (config_.policy) {
      case AllocationPolicy::MostRecentlyReleased:
        chosen = *std::max_element(
            candidates.begin(), candidates.end(),
            [](const FpgaInstance *a, const FpgaInstance *b) {
                return a->releasedAtHour() < b->releasedAtHour();
            });
        break;
      case AllocationPolicy::LeastRecentlyReleased:
        chosen = *std::min_element(
            candidates.begin(), candidates.end(),
            [](const FpgaInstance *a, const FpgaInstance *b) {
                return a->releasedAtHour() < b->releasedAtHour();
            });
        break;
      case AllocationPolicy::Random:
        // uniformIndex = uniformInt(0, n-1) with a fatal guard on
        // n == 0 instead of a silent wrap to the full 64-bit range
        // (candidates is non-empty here, but the guard costs nothing
        // and the size()-1 underflow class bit other call sites).
        chosen = candidates[rng_.uniformIndex(candidates.size())];
        break;
    }
    // Hand the board over with a clean configuration (drops any
    // provider scrub design that ran while pooled).
    chosen->device().wipe();
    if (config_.bram_scrub == BramScrubPolicy::ZeroOnRent) {
        // Scrub at hand-over: catches content left by unclean
        // teardowns that bypassed the release pipeline.
        chosen->device().zeroBram();
        ++bram_scrub_ops_;
    }
    chosen->setRented(true);
    return chosen->id();
}

std::vector<std::string>
CloudPlatform::rentAll()
{
    std::vector<std::string> rented;
    while (auto id = rent()) {
        rented.push_back(*id);
    }
    return rented;
}

FpgaInstance *
CloudPlatform::find(const std::string &instance_id)
{
    const auto it = index_.find(instance_id);
    return it == index_.end() ? nullptr : fleet_[it->second].get();
}

void
CloudPlatform::release(const std::string &instance_id)
{
    releaseImpl(instance_id, /*clean=*/true, 0.0);
}

void
CloudPlatform::releaseUnclean(const std::string &instance_id,
                              double off_power_hours)
{
    if (!(off_power_hours >= 0.0) || !std::isfinite(off_power_hours)) {
        util::fatal("CloudPlatform::releaseUnclean: bad off-power "
                    "hours");
    }
    releaseImpl(instance_id, /*clean=*/false, off_power_hours);
}

void
CloudPlatform::releaseImpl(const std::string &instance_id, bool clean,
                           double off_power_hours)
{
    FpgaInstance *inst = find(instance_id);
    if (inst == nullptr || !inst->rented()) {
        util::fatal("CloudPlatform::release: '" + instance_id +
                    "' is not rented");
    }
    // Provider-side scrub: the configuration is cleared, the silicon
    // keeps its BTI imprint.
    inst->device().wipe();
    if (!clean) {
        // Unclean teardown: the board saw a power event on its way
        // back to the pool. Content ages against retention; nothing
        // on the interconnect side differs from a clean release.
        inst->device().accrueBramOffPower(off_power_hours);
    } else if (config_.bram_scrub == BramScrubPolicy::ZeroOnRelease) {
        // The release-pipeline content scrub — exactly the step an
        // unclean teardown bypasses.
        inst->device().zeroBram();
        ++bram_scrub_ops_;
    }
    inst->setRented(false);
    inst->setReleasedAtHour(now_h_);

    if (config_.active_scrub) {
        // Best-effort analog scrub: toggle everything that was ever
        // configured while the board waits in the pool. This stresses
        // both transistor polarities equally — it can shrink but not
        // invert or erase the differential imprint. imprintedIds (not
        // materializedIds): a tenancy nobody measured leaves its
        // elements journal-deferred, and the scrub must drive those
        // too — it is erasing what it cannot see.
        auto scrub = std::make_shared<fabric::Design>("provider_scrub");
        for (const fabric::ResourceId &id :
             inst->device().imprintedIds()) {
            scrub->setElementActivity(
                id, fabric::ElementActivity{fabric::Activity::Toggle,
                                            0.5});
        }
        scrub->setPowerW(10.0);
        if (scrub->configuredElements() > 0) {
            inst->device().loadDesign(std::move(scrub));
        }
    }
}

FpgaInstance &
CloudPlatform::instance(const std::string &instance_id)
{
    FpgaInstance *inst = find(instance_id);
    if (inst == nullptr) {
        util::fatal("CloudPlatform::instance: unknown id '" +
                    instance_id + "'");
    }
    return *inst;
}

std::vector<fabric::DrcViolation>
CloudPlatform::loadDesign(const std::string &instance_id,
                          std::shared_ptr<const fabric::Design> design)
{
    FpgaInstance *inst = find(instance_id);
    if (inst == nullptr || !inst->rented()) {
        util::fatal("CloudPlatform::loadDesign: '" + instance_id +
                    "' is not rented");
    }
    if (!design) {
        util::fatal("CloudPlatform::loadDesign: null design");
    }
    std::vector<fabric::DrcViolation> violations = drc_.check(*design);
    if (!violations.empty()) {
        return violations;
    }
    inst->device().loadDesign(std::move(design));
    return {};
}

void
CloudPlatform::advanceHours(double hours, double step_h)
{
    // Validate here, not just per instance: a bad span would
    // otherwise fatal mid-fleet with some boards already advanced.
    if (!(hours >= 0.0) || !std::isfinite(hours)) {
        util::fatal("CloudPlatform::advanceHours: bad hours");
    }
    if (!(step_h > 0.0)) {
        util::fatal("CloudPlatform::advanceHours: bad step");
    }
    // Idle pooled stock advances in O(1) per board (deferred ambient
    // walk); rented/configured boards sub-step between ambient
    // events. Fleet-scale campaigns are bounded by the boards a
    // tenant or attacker actually touches, not the fleet.
    for (const auto &inst : fleet_) {
        inst->advanceHours(hours, step_h);
    }
    now_h_ += hours;
}

std::vector<std::string>
CloudPlatform::allInstanceIds() const
{
    std::vector<std::string> ids;
    ids.reserve(fleet_.size());
    for (const auto &inst : fleet_) {
        ids.push_back(inst->id());
    }
    return ids;
}

void
CloudPlatform::saveState(util::SnapshotWriter &writer) const
{
    writer.beginChunk(kPlatformTag);
    writer.u64(config_.fleet_size);
    writer.u64(config_.seed);
    writer.str(config_.region);
    writer.u8(static_cast<std::uint8_t>(config_.policy));
    writer.f64(config_.quarantine_hours);
    writer.u8(config_.active_scrub ? 1 : 0);
    writer.u8(static_cast<std::uint8_t>(config_.bram_scrub));
    writer.u64(bram_scrub_ops_);
    writer.f64(now_h_);
    const util::Rng::State rng = rng_.state();
    for (const std::uint64_t word : rng.words) {
        writer.u64(word);
    }
    writer.f64(rng.cached);
    writer.u8(rng.have_cached ? 1 : 0);
    writer.endChunk();
    for (const auto &inst : fleet_) {
        writer.beginChunk(kBoardTag);
        inst->saveState(writer);
        writer.endChunk();
    }
}

util::Expected<void>
CloudPlatform::restoreState(util::SnapshotReader &reader,
                            std::vector<std::string> *boards_with_design)
{
    if (!reader.enterChunk(kPlatformTag)) {
        return reader.status();
    }
    const std::uint64_t fleet_size = reader.u64();
    const std::uint64_t seed = reader.u64();
    const std::string region = reader.str();
    const std::uint8_t policy = reader.u8();
    const double quarantine = reader.f64();
    const bool active_scrub = reader.u8() != 0;
    const std::uint8_t bram_scrub = reader.u8();
    const std::uint64_t bram_scrub_ops = reader.u64();
    const double now_h = reader.f64();
    util::Rng::State rng;
    for (std::uint64_t &word : rng.words) {
        word = reader.u64();
    }
    rng.cached = reader.f64();
    rng.have_cached = reader.u8() != 0;
    if (!reader.leaveChunk()) {
        return reader.status();
    }
    if (fleet_size != config_.fleet_size || seed != config_.seed ||
        region != config_.region ||
        policy != static_cast<std::uint8_t>(config_.policy) ||
        quarantine != config_.quarantine_hours ||
        active_scrub != config_.active_scrub ||
        bram_scrub != static_cast<std::uint8_t>(config_.bram_scrub)) {
        reader.fail("snapshot: platform config fingerprint mismatch "
                    "(checkpoint belongs to a different fleet)");
        return reader.status();
    }
    if (!std::isfinite(now_h) || now_h < 0.0) {
        reader.fail("snapshot: platform clock is not physical");
        return reader.status();
    }
    for (const auto &inst : fleet_) {
        if (!reader.enterChunk(kBoardTag)) {
            return reader.status();
        }
        bool had_design = false;
        const util::Expected<void> result =
            inst->restoreState(reader, &had_design);
        if (!result.ok()) {
            return result;
        }
        if (!reader.leaveChunk()) {
            return reader.status();
        }
        if (had_design && boards_with_design != nullptr) {
            boards_with_design->push_back(inst->id());
        }
    }
    now_h_ = now_h;
    rng_.setState(rng);
    bram_scrub_ops_ = bram_scrub_ops;
    return reader.status();
}

} // namespace pentimento::cloud
