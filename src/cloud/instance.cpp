#include "cloud/instance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hpp"

namespace pentimento::cloud {

FpgaInstance::FpgaInstance(std::string id,
                           fabric::DeviceConfig device_config,
                           AmbientParams ambient, util::Rng rng)
    : id_(std::move(id)), device_(std::move(device_config)),
      ambient_(ambient, rng.split("ambient")),
      thermal_(ambient.mean_k), rng_(rng.split("noise"))
{
    if (id_.empty()) {
        util::fatal("FpgaInstance: empty id");
    }
    // Any read or flip of element aging state (a bound Route or TDC
    // walking the device directly, a design load, a wipe) replays the
    // deferred idle backlog first, so laziness is unobservable.
    device_.setPreObservationHook([this] { materializeDeferred(); });
}

void
FpgaInstance::walkSpans(double hours, double step_h,
                        bool credit_elapsed) const
{
    // One iteration per span over which everything is constant: the
    // ambient (between events), the dissipated power, and therefore
    // the segment's Arrhenius context. Under the default hourly
    // cadence and hourly stepping this reproduces the historical
    // per-hour walk bit for bit — same draw per hour, same package
    // relaxation, same per-hour segment.
    const fabric::Design *design = device_.currentDesign();
    const double power = design != nullptr ? design->powerW() : 0.0;
    double remaining = hours;
    while (remaining > 1e-12) {
        const double dt =
            std::min({remaining, step_h, ambient_.hoursUntilBoundary()});
        ambient_.advance(dt);
        thermal_.setAmbientK(ambient_.ambientK());
        const double die_k = thermal_.step(power, dt);
        if (credit_elapsed) {
            device_.advanceAt(dt, die_k);
        } else {
            device_.ingestSegment(dt, die_k);
        }
        remaining -= dt;
    }
}

void
FpgaInstance::materializeDeferred() const
{
    const double backlog = deferred_h_.value();
    if (backlog <= 0.0) {
        return;
    }
    deferred_h_.reset();
    // Deferred spans are design-free by construction, so the walk is
    // bounded only by ambient events: one relaxation + one ingested
    // segment per event cell, regardless of how the idle time was
    // split across advanceHours calls.
    walkSpans(backlog, std::numeric_limits<double>::infinity(), false);
}

void
FpgaInstance::advanceHours(double hours, double step_h)
{
    if (!(hours >= 0.0) || !(step_h > 0.0) || !std::isfinite(hours)) {
        util::fatal("FpgaInstance::advanceHours: bad time step");
    }
    if (device_.currentDesign() == nullptr) {
        // Unconfigured card: nothing dissipates power and nothing is
        // being observed — credit the hours now (O(1)) and walk the
        // ambient events when (if ever) someone looks. Idle pooled
        // stock accrues simulated years at bookkeeping cost.
        deferred_h_.add(hours);
        device_.creditIdleHours(hours);
        return;
    }
    materializeDeferred();
    walkSpans(hours, step_h, true);
}

} // namespace pentimento::cloud
