#include "cloud/instance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hpp"
#include "util/snapshot.hpp"

namespace pentimento::cloud {

FpgaInstance::FpgaInstance(std::string id,
                           fabric::DeviceConfig device_config,
                           AmbientParams ambient, util::Rng rng)
    : id_(std::move(id)), device_(std::move(device_config)),
      ambient_(ambient, rng.split("ambient")),
      thermal_(ambient.mean_k), rng_(rng.split("noise"))
{
    if (id_.empty()) {
        util::fatal("FpgaInstance: empty id");
    }
    // Any read or flip of element aging state (a bound Route or TDC
    // walking the device directly, a design load, a wipe) replays the
    // deferred idle backlog first, so laziness is unobservable.
    device_.setPreObservationHook([this] { materializeDeferred(); });
}

void
FpgaInstance::walkSpans(double hours, double step_h,
                        bool credit_elapsed) const
{
    // One iteration per span over which everything is constant: the
    // ambient (between events), the dissipated power, and therefore
    // the segment's Arrhenius context. Under the default hourly
    // cadence and hourly stepping this reproduces the historical
    // per-hour walk bit for bit — same draw per hour, same package
    // relaxation, same per-hour segment.
    const fabric::Design *design = device_.currentDesign();
    const double power = design != nullptr ? design->powerW() : 0.0;
    double remaining = hours;
    while (remaining > 1e-12) {
        const double dt =
            std::min({remaining, step_h, ambient_.hoursUntilBoundary()});
        ambient_.advance(dt);
        thermal_.setAmbientK(ambient_.ambientK());
        const double die_k = thermal_.step(power, dt);
        if (credit_elapsed) {
            device_.advanceAt(dt, die_k);
        } else {
            device_.ingestSegment(dt, die_k);
        }
        remaining -= dt;
    }
}

void
FpgaInstance::materializeDeferred() const
{
    const double backlog = deferred_h_.value();
    if (backlog <= 0.0) {
        return;
    }
    deferred_h_.reset();
    // Deferred spans are design-free by construction, so the walk is
    // bounded only by ambient events: one relaxation + one ingested
    // segment per event cell, regardless of how the idle time was
    // split across advanceHours calls.
    walkSpans(backlog, std::numeric_limits<double>::infinity(), false);
}

void
FpgaInstance::advanceHours(double hours, double step_h)
{
    if (!(hours >= 0.0) || !(step_h > 0.0) || !std::isfinite(hours)) {
        util::fatal("FpgaInstance::advanceHours: bad time step");
    }
    if (device_.currentDesign() == nullptr) {
        // Unconfigured card: nothing dissipates power and nothing is
        // being observed — credit the hours now (O(1)) and walk the
        // ambient events when (if ever) someone looks. Idle pooled
        // stock accrues simulated years at bookkeeping cost.
        deferred_h_.add(hours);
        device_.creditIdleHours(hours);
        return;
    }
    materializeDeferred();
    walkSpans(hours, step_h, true);
}

void
FpgaInstance::powerCycle(double off_hours)
{
    if (!(off_hours >= 0.0) || !std::isfinite(off_hours)) {
        util::fatal("FpgaInstance::powerCycle: bad off-power hours");
    }
    // The wipe is an observation (it flips configured activities), so
    // the deferred idle backlog must land first.
    materializeDeferred();
    device_.wipe();
    device_.accrueBramOffPower(off_hours);
    // Unpowered silicon holds no heat: the die is at ambient when the
    // card comes back.
    thermal_.restoreState(thermal_.ambientK(), thermal_.ambientK());
    ++power_cycles_;
}

void
FpgaInstance::pcieReset()
{
    materializeDeferred();
    ++pcie_resets_;
}

void
FpgaInstance::saveState(util::SnapshotWriter &writer) const
{
    writer.str(id_);
    device_.saveState(writer);
    ambient_.saveState(writer);
    writer.f64(thermal_.ambientK());
    writer.f64(thermal_.dieTempK());
    writer.f64(deferred_h_.rawSum());
    writer.f64(deferred_h_.rawCompensation());
    const util::Rng::State rng = rng_.state();
    for (const std::uint64_t word : rng.words) {
        writer.u64(word);
    }
    writer.f64(rng.cached);
    writer.u8(rng.have_cached ? 1 : 0);
    writer.u8(rented_ ? 1 : 0);
    writer.f64(released_at_h_);
    writer.u64(power_cycles_);
    writer.u64(pcie_resets_);
}

util::Expected<void>
FpgaInstance::restoreState(util::SnapshotReader &reader,
                           bool *had_design)
{
    const std::string id = reader.str();
    if (!reader.ok()) {
        return reader.status();
    }
    if (id != id_) {
        reader.fail("snapshot: instance id mismatch (expected '" + id_ +
                    "', checkpoint has '" + id + "')");
        return reader.status();
    }
    const util::Expected<void> device_result =
        device_.restoreState(reader, had_design);
    if (!device_result.ok()) {
        return device_result;
    }
    if (!ambient_.restoreState(reader)) {
        return reader.status();
    }
    const double ambient_k = reader.f64();
    const double die_k = reader.f64();
    const double deferred_sum = reader.f64();
    const double deferred_comp = reader.f64();
    util::Rng::State rng;
    for (std::uint64_t &word : rng.words) {
        word = reader.u64();
    }
    rng.cached = reader.f64();
    rng.have_cached = reader.u8() != 0;
    const bool rented = reader.u8() != 0;
    const double released_at_h = reader.f64();
    const std::uint64_t power_cycles = reader.u64();
    const std::uint64_t pcie_resets = reader.u64();
    if (!reader.ok()) {
        return reader.status();
    }
    if (!std::isfinite(ambient_k) || ambient_k <= 0.0 ||
        !std::isfinite(die_k) || die_k <= 0.0 ||
        !std::isfinite(deferred_sum) || deferred_sum < 0.0 ||
        !std::isfinite(released_at_h)) {
        reader.fail("snapshot: instance thermal/deferred state is not "
                    "physical");
        return reader.status();
    }
    thermal_.restoreState(ambient_k, die_k);
    deferred_h_.restoreParts(deferred_sum, deferred_comp);
    rng_.setState(rng);
    rented_ = rented;
    released_at_h_ = released_at_h;
    power_cycles_ = power_cycles;
    pcie_resets_ = pcie_resets;
    return reader.status();
}

} // namespace pentimento::cloud
