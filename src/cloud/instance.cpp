#include "cloud/instance.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace pentimento::cloud {

FpgaInstance::FpgaInstance(std::string id,
                           fabric::DeviceConfig device_config,
                           AmbientParams ambient, util::Rng rng)
    : id_(std::move(id)), device_(std::move(device_config)),
      ambient_(ambient, rng.split("ambient")),
      thermal_(ambient.mean_k), rng_(rng.split("noise"))
{
    if (id_.empty()) {
        util::fatal("FpgaInstance: empty id");
    }
}

void
FpgaInstance::advanceHours(double hours, double step_h)
{
    if (hours < 0.0 || step_h <= 0.0) {
        util::fatal("FpgaInstance::advanceHours: bad time step");
    }
    double remaining = hours;
    while (remaining > 1e-12) {
        const double dt = std::min(step_h, remaining);
        thermal_.setAmbientK(ambient_.step(dt));
        device_.advance(dt, thermal_);
        remaining -= dt;
    }
}

} // namespace pentimento::cloud
