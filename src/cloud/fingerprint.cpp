#include "cloud/fingerprint.hpp"

#include <cmath>

#include "util/logging.hpp"
#include "util/stats.hpp"

namespace pentimento::cloud {

Fingerprinter::Fingerprinter(FingerprintConfig config)
    : config_(std::move(config))
{
    if (config_.probe_routes < 2) {
        util::fatal("Fingerprinter: need at least two probe routes");
    }
}

std::vector<fabric::RouteSpec>
Fingerprinter::probeSpecs(const fabric::DeviceConfig &config) const
{
    // Canonical locations at the top edge of the fabric, far from the
    // linear allocator's range, identical for every device of the
    // family. This mirrors an attacker shipping a fixed probe
    // bitstream to every rented card.
    std::vector<fabric::RouteSpec> specs;
    const auto per_route = static_cast<std::size_t>(std::max(
        1.0, std::round(config_.probe_route_ps / config.routing_pitch_ps)));
    std::uint64_t cursor = 0;
    for (std::size_t r = 0; r < config_.probe_routes; ++r) {
        fabric::RouteSpec spec;
        spec.name = "probe_" + std::to_string(r);
        spec.target_ps = config_.probe_route_ps;
        for (std::size_t e = 0; e < per_route; ++e) {
            fabric::ResourceId id;
            id.type = fabric::ResourceType::RoutingNode;
            id.tile_y = static_cast<std::uint16_t>(config.tiles_y - 1 -
                                                   cursor /
                                                       config.tiles_x);
            id.tile_x = static_cast<std::uint16_t>(cursor % config.tiles_x);
            id.index =
                static_cast<std::uint16_t>(config.nodes_per_tile - 1);
            spec.elements.push_back(id);
            ++cursor;
        }
        specs.push_back(std::move(spec));
    }
    return specs;
}

Fingerprint
Fingerprinter::probe(FpgaInstance &instance,
                     const std::string &label) const
{
    Fingerprint fp;
    fp.label = label;
    fabric::Device &device = instance.device();
    const double temp_k = instance.dieTempK();
    for (const fabric::RouteSpec &spec : probeSpecs(device.config())) {
        fabric::RouteSpec chain = device.allocateCarryChain(
            "probe_chain_" + spec.name, config_.tdc.taps);
        tdc::Tdc sensor(device, spec, std::move(chain), config_.tdc);
        sensor.calibrate(temp_k, instance.rng());
        // θ_init lands the front mid-chain; the calibrated θ itself
        // is the variation-bearing quantity (route delay + chain
        // spread), so it is the fingerprint coordinate.
        fp.route_delays_ps.push_back(sensor.thetaInit());
    }
    return fp;
}

double
Fingerprinter::similarity(const Fingerprint &a, const Fingerprint &b)
{
    if (a.route_delays_ps.size() != b.route_delays_ps.size()) {
        util::fatal("Fingerprinter::similarity: size mismatch");
    }
    return util::correlation(a.route_delays_ps, b.route_delays_ps);
}

int
Fingerprinter::match(const Fingerprint &probe,
                     const std::vector<Fingerprint> &catalog,
                     double threshold)
{
    int best = -1;
    double best_sim = threshold;
    for (std::size_t i = 0; i < catalog.size(); ++i) {
        const double sim = similarity(probe, catalog[i]);
        if (sim > best_sim) {
            best_sim = sim;
            best = static_cast<int>(i);
        }
    }
    return best;
}

} // namespace pentimento::cloud
