#include "cloud/marketplace.hpp"

#include "util/logging.hpp"

namespace pentimento::cloud {

std::string
Marketplace::publish(const std::string &publisher,
                     std::shared_ptr<const fabric::Design> design,
                     std::vector<fabric::RouteSpec> skeleton)
{
    if (!design) {
        util::fatal("Marketplace::publish: null design");
    }
    AfiRecord record;
    record.afi_id = "agfi-" + std::to_string(next_id_++);
    record.publisher = publisher;
    record.design = std::move(design);
    record.skeleton = std::move(skeleton);
    const std::string id = record.afi_id;
    records_.emplace(id, std::move(record));
    return id;
}

const AfiRecord &
Marketplace::lookup(const std::string &afi_id) const
{
    const auto it = records_.find(afi_id);
    if (it == records_.end()) {
        util::fatal("Marketplace: unknown AFI '" + afi_id + "'");
    }
    return it->second;
}

std::shared_ptr<const fabric::Design>
Marketplace::fetchDesign(const std::string &afi_id) const
{
    return lookup(afi_id).design;
}

const std::vector<fabric::RouteSpec> &
Marketplace::skeleton(const std::string &afi_id) const
{
    return lookup(afi_id).skeleton;
}

const AfiRecord &
Marketplace::record(const std::string &afi_id) const
{
    return lookup(afi_id);
}

} // namespace pentimento::cloud
