#include "tdc/measure_design.hpp"

#include "util/logging.hpp"

namespace pentimento::tdc {

MeasureDesign::MeasureDesign(fabric::Device &device,
                             const std::vector<fabric::RouteSpec> &routes,
                             const TdcConfig &config)
    : fabric::Design("measure")
{
    if (routes.empty()) {
        util::fatal("MeasureDesign: no routes to observe");
    }
    sensors_.reserve(routes.size());
    for (std::size_t i = 0; i < routes.size(); ++i) {
        fabric::RouteSpec chain = device.allocateCarryChain(
            "tdc_chain_" + std::to_string(i), config.taps);
        // While the Measure design is resident, the routes under test
        // and the chains carry launch transitions: low-duty toggling.
        setRouteToggling(routes[i], 0.5);
        setRouteToggling(chain, 0.5);
        sensors_.emplace_back(device, routes[i], std::move(chain),
                              config);
        // Feed-forward netlist arcs: transition generator -> route ->
        // chain. Loop-free by construction, so the design passes the
        // provider DRC (unlike a ring oscillator).
        const std::string tag = "tdc" + std::to_string(i);
        addCombinationalEdge("transition_gen", tag + "/route");
        addCombinationalEdge(tag + "/route", tag + "/chain");
    }
    // A TDC array is small: clock generator + chains + capture FFs.
    setPowerW(2.5);
}

Tdc &
MeasureDesign::sensor(std::size_t i)
{
    if (i >= sensors_.size()) {
        util::fatal("MeasureDesign::sensor: index out of range");
    }
    return sensors_[i];
}

const Tdc &
MeasureDesign::sensor(std::size_t i) const
{
    if (i >= sensors_.size()) {
        util::fatal("MeasureDesign::sensor: index out of range");
    }
    return sensors_[i];
}

std::vector<double>
MeasureDesign::calibrateAll(double temp_k, util::Rng &rng,
                            util::ThreadPool *pool)
{
    // Streams are split serially, in index order, before any fan-out:
    // sensor i's draws depend only on (rng state, i), never on how
    // the loop below is scheduled.
    std::vector<util::Rng> streams =
        util::splitStreams(rng, sensors_.size(), "calibrate");
    std::vector<double> thetas(sensors_.size());
    const auto tune = [&](std::size_t i) {
        thetas[i] = sensors_[i].calibrate(temp_k, streams[i]);
    };
    if (pool != nullptr) {
        pool->parallelFor(0, sensors_.size(), tune);
    } else {
        for (std::size_t i = 0; i < sensors_.size(); ++i) {
            tune(i);
        }
    }
    return thetas;
}

void
MeasureDesign::adoptThetaInits(const std::vector<double> &thetas)
{
    if (thetas.size() != sensors_.size()) {
        util::fatal("MeasureDesign::adoptThetaInits: arity mismatch");
    }
    for (std::size_t i = 0; i < sensors_.size(); ++i) {
        sensors_[i].setThetaInit(thetas[i]);
    }
}

MeasurementSweep
MeasureDesign::measureAll(double temp_k, util::Rng &rng,
                          util::ThreadPool *pool) const
{
    std::vector<util::Rng> streams =
        util::splitStreams(rng, sensors_.size(), "measure");
    MeasurementSweep sweep;
    sweep.per_route.resize(sensors_.size());
    const auto probe = [&](std::size_t i) {
        sweep.per_route[i] = sensors_[i].measure(temp_k, streams[i]);
    };
    if (pool != nullptr) {
        pool->parallelFor(0, sensors_.size(), probe);
    } else {
        for (std::size_t i = 0; i < sensors_.size(); ++i) {
            probe(i);
        }
    }
    // Reduce serially, in index order, so the float sum never depends
    // on completion order.
    for (const Measurement &m : sweep.per_route) {
        sweep.wall_seconds += m.wall_seconds;
    }
    return sweep;
}

} // namespace pentimento::tdc
