#include "tdc/ro_sensor.hpp"

#include "util/logging.hpp"

namespace pentimento::tdc {

RingOscillatorSensor::RingOscillatorSensor(fabric::Device &device,
                                           fabric::RouteSpec route,
                                           RoConfig config)
    : device_(&device), route_(std::move(route)), config_(config)
{
    if (route_.elements.empty()) {
        util::fatal("RingOscillatorSensor: empty route");
    }
}

double
RingOscillatorSensor::periodPs(double temp_k) const
{
    // One oscillation traverses the loop twice: once rising, once
    // falling. The scalar period therefore *sums* the NMOS-limited
    // and PMOS-limited transits — polarity information is destroyed.
    fabric::Route bound(*device_, route_);
    const double rise = bound.delayPs(phys::Transition::Rising, temp_k);
    const double fall = bound.delayPs(phys::Transition::Falling, temp_k);
    return rise + fall + 2.0 * config_.inverter_ps;
}

double
RingOscillatorSensor::readFrequencyMhz(double temp_k,
                                       util::Rng &rng) const
{
    const double period_ps = periodPs(temp_k);
    const double freq_mhz = 1e6 / period_ps;
    return freq_mhz * (1.0 + rng.gaussian(0.0, config_.reading_sigma));
}

std::shared_ptr<fabric::Design>
RingOscillatorSensor::buildDesign() const
{
    auto design = std::make_shared<fabric::Design>("ro_sensor");
    design->setRouteToggling(route_, 0.5);
    design->setPowerW(1.0);
    // The defining structure: the loop. This is what FPGADefender-
    // style scanning and the AWS DRC look for.
    design->addCombinationalEdge("ro/route", "ro/inverter");
    design->addCombinationalEdge("ro/inverter", "ro/route");
    design->addCombinationalEdge("ro/route", "ro/counter");
    return design;
}

} // namespace pentimento::tdc
