/**
 * @file
 * Ring-oscillator sensor baseline (paper §7, related work).
 *
 * Prior FPGA aging studies use ring oscillators: a combinational loop
 * through the tested resource whose oscillation frequency reflects the
 * loop delay. The paper identifies two limitations that the RO
 * baseline here reproduces:
 *
 *  1. a single scalar output integrates the NMOS and PMOS propagation
 *     paths, so the burn *polarity* — which transistor type degraded —
 *     is invisible;
 *  2. the loop is a self-oscillating circuit, so provider design rule
 *     checks (as on AWS F1) reject the design outright.
 */

#ifndef PENTIMENTO_TDC_RO_SENSOR_HPP
#define PENTIMENTO_TDC_RO_SENSOR_HPP

#include <memory>

#include "fabric/design.hpp"
#include "fabric/device.hpp"
#include "fabric/route.hpp"
#include "util/rng.hpp"

namespace pentimento::tdc {

/** Ring-oscillator configuration. */
struct RoConfig
{
    /** Extra inverter delay closing the loop, ps. */
    double inverter_ps = 35.0;
    /** Counter gate time for one frequency reading, seconds. */
    double gate_seconds = 0.1;
    /** Relative jitter of a frequency reading (sigma). */
    double reading_sigma = 2e-5;
};

/**
 * A ring oscillator wrapped around a route under test.
 */
class RingOscillatorSensor
{
  public:
    RingOscillatorSensor(fabric::Device &device, fabric::RouteSpec route,
                         RoConfig config = {});

    /** Oscillation period: rise + fall transit plus the inverter. */
    double periodPs(double temp_k) const;

    /** One noisy frequency reading in MHz. */
    double readFrequencyMhz(double temp_k, util::Rng &rng) const;

    /**
     * The loadable design for this sensor. Its netlist contains the
     * combinational loop, so DesignRuleChecker rejects it — run the
     * ablation_sensor bench to see the paper's DRC argument play out.
     */
    std::shared_ptr<fabric::Design> buildDesign() const;

    /** The observed route. */
    const fabric::RouteSpec &routeSpec() const { return route_; }

  private:
    fabric::Device *device_;
    fabric::RouteSpec route_;
    RoConfig config_;
};

} // namespace pentimento::tdc

#endif // PENTIMENTO_TDC_RO_SENSOR_HPP
