/**
 * @file
 * The Measure design (paper Figure 5).
 *
 * An array of TDC sensors, one per route under test, sharing a
 * transition generator and capture clock. The routes reuse the exact
 * skeletons of the Target design (Assumption 1); the carry chains are
 * placed in the slice region the Target design deliberately left
 * unconfigured.
 */

#ifndef PENTIMENTO_TDC_MEASURE_DESIGN_HPP
#define PENTIMENTO_TDC_MEASURE_DESIGN_HPP

#include <memory>
#include <vector>

#include "fabric/design.hpp"
#include "fabric/device.hpp"
#include "tdc/tdc.hpp"
#include "util/parallel.hpp"

namespace pentimento::tdc {

/** Result of measuring every sensor in a Measure design once. */
struct MeasurementSweep
{
    std::vector<Measurement> per_route;
    /** Total modeled wall-clock cost of the sweep, in seconds. */
    double wall_seconds = 0.0;
};

/**
 * A loadable design wrapping an array of TDCs.
 *
 * Construction binds every sensor to the device's dense aging store
 * (one id resolution per element, ever); measurement sweeps are then
 * pure flat reads plus per-sensor RNG, and each sensor memoizes its
 * tap arrivals on the device's state epoch, so the per-trace cost is
 * dominated by sampling, not route walking.
 */
class MeasureDesign : public fabric::Design
{
  public:
    /**
     * Build sensors over the given route skeletons. One carry chain
     * is allocated per route on the target device.
     *
     * @param device device the design will be loaded onto
     * @param routes skeletons of the routes to observe
     * @param config common sensor configuration
     */
    MeasureDesign(fabric::Device &device,
                  const std::vector<fabric::RouteSpec> &routes,
                  const TdcConfig &config = {});

    /** Number of sensors (== number of routes). */
    std::size_t sensorCount() const { return sensors_.size(); }

    /** Sensor for route i. */
    Tdc &sensor(std::size_t i);
    const Tdc &sensor(std::size_t i) const;

    /**
     * Calibration phase: tune every sensor, return each θ_init.
     *
     * Each sensor draws from its own stream split serially off `rng`
     * (one split per sensor, always, in index order), so the result —
     * and the state `rng` is left in — is identical whether the
     * sensors are tuned serially or fanned out across `pool`.
     */
    std::vector<double> calibrateAll(double temp_k, util::Rng &rng,
                                     util::ThreadPool *pool = nullptr);

    /** Adopt θ_init values captured on another device of this type. */
    void adoptThetaInits(const std::vector<double> &thetas);

    /**
     * Measurement phase over every sensor. Same per-sensor stream
     * discipline as calibrateAll: sweeps are bit-identical for any
     * worker count, including the serial `pool == nullptr` case.
     */
    MeasurementSweep measureAll(double temp_k, util::Rng &rng,
                                util::ThreadPool *pool = nullptr) const;

  private:
    std::vector<Tdc> sensors_;
};

} // namespace pentimento::tdc

#endif // PENTIMENTO_TDC_MEASURE_DESIGN_HPP
