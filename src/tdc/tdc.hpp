/**
 * @file
 * Tunable Dual-Polarity time-to-digital converter (paper §4).
 *
 * The TDC measures the propagation delay of a Route Under Test:
 *
 *  - a Programmable Clock Generator produces a Launch and a Capture
 *    clock with a runtime-tunable phase relationship θ;
 *  - a Transition Generator converts the launch edge into a rising
 *    (0→1) or falling (1→0) transition that travels through the route
 *    under test and into a Carry Chain of nominally identical delay
 *    elements (2.8 ps/bit on UltraScale+);
 *  - Capture Registers snapshot the chain on the capture edge; the
 *    distance the transition front travelled is read out as a Binary
 *    Hamming Distance (from all-zeros for rising, from all-ones for
 *    falling);
 *  - taps whose transition arrival falls inside the register aperture
 *    resolve randomly, producing the metastable "bubbles" visible in
 *    the paper's Figure 3 output sequences.
 *
 * BTI degradation of the route increases the route delay, so fewer
 * taps are passed by capture time and the Hamming distance shrinks;
 * recovery does the opposite. Because NMOS health governs falling
 * edges and PMOS health governs rising edges, the difference
 * (falling − rising) isolates burn polarity.
 */

#ifndef PENTIMENTO_TDC_TDC_HPP
#define PENTIMENTO_TDC_TDC_HPP

#include <cstddef>
#include <vector>

#include "fabric/device.hpp"
#include "fabric/route.hpp"
#include "phys/delay_model.hpp"
#include "util/rng.hpp"

namespace pentimento::tdc {

/** Sensor geometry, noise and sampling policy. */
struct TdcConfig
{
    /** Carry-chain taps (capture register width). */
    std::size_t taps = 64;
    /** Nominal conversion constant, ps per bit (paper: 2.8). */
    double ps_per_bit = 2.8;
    /** Register aperture: metastability window width in ps. */
    double metastable_window_ps = 4.0;
    /** Clock jitter sigma applied to θ per sample, ps. */
    double jitter_sigma_ps = 0.9;
    /** Samples per trace (paper: 24 in calibration). */
    int samples_per_trace = 24;
    /** Traces per measurement (paper: 10). */
    int traces_per_measurement = 10;
    /** θ decrement applied between consecutive traces, ps (§5.2). */
    double trace_theta_step_ps = 0.35;
    /** Wall-clock cost of retuning θ once, seconds. */
    double retune_seconds = 0.015;
    /** Wall-clock cost of one launch/capture sample, seconds. */
    double sample_seconds = 0.0012;
    /** Margin (taps) required from the chain ends at calibration. */
    std::size_t calibration_margin = 8;
    /**
     * Opt-in fast sampling: calibrate/measure traces draw jitter from
     * the ziggurat generator in per-trace blocks and accumulate
     * Hamming sums as integers, fused over the trace. ~3x faster
     * measurement, statistically equivalent (locked by the tdc_test
     * seed-sweep battery) but NOT draw-compatible with the default
     * path — sample paths re-roll, so leave this off wherever a
     * recorded golden must stay bit-identical. Mirrors the PR-4
     * precedent of opt-in re-rolled fast paths.
     */
    bool fast_sampling = false;
};

/** One raw capture: the register snapshot for one polarity. */
struct Capture
{
    phys::Transition polarity = phys::Transition::Rising;
    std::vector<bool> bits;

    /**
     * Binary Hamming distance as the paper defines it: from all-zeros
     * for rising captures, from all-ones for falling captures.
     */
    std::size_t hammingDistance() const;
};

/** A trace: per-sample Hamming distances at one θ. */
struct Trace
{
    phys::Transition polarity = phys::Transition::Rising;
    double theta_ps = 0.0;
    std::vector<double> hamming;

    /** Mean Hamming distance over the trace's samples. */
    double meanHamming() const;
};

/** Aggregated result of one measurement phase for one route. */
struct Measurement
{
    /**
     * Mean distance travelled by the rising front by capture time,
     * converted to ps (mean HD * ps_per_bit).
     */
    double rising_distance_ps = 0.0;
    /** Mean distance travelled by the falling front, in ps. */
    double falling_distance_ps = 0.0;
    /** Modeled wall-clock cost of the measurement, seconds. */
    double wall_seconds = 0.0;

    /**
     * The paper's ∆ps observable: the falling-minus-rising *route
     * delay* difference. A slower route shortens the distance its
     * front travels by capture time (distance ≈ θ − delay), so the
     * delay difference d_fall − d_rise equals the distance difference
     * dist_rise − dist_fall. Burn 1 (PBTI, slow falling) drives this
     * positive; burn 0 (NBTI, slow rising) drives it negative —
     * matching the cyan/magenta trends of Figures 6-8.
     */
    double deltaPs() const
    {
        return rising_distance_ps - falling_distance_ps;
    }
};

/**
 * One TDC instance: a route under test feeding a dedicated carry
 * chain on a specific device.
 */
class Tdc
{
  public:
    /**
     * @param device device the sensor is programmed onto
     * @param route skeleton of the route under test
     * @param chain skeleton of the carry chain (allocate with
     *        Device::allocateCarryChain, taps must match config)
     * @param config sensor configuration
     */
    Tdc(fabric::Device &device, fabric::RouteSpec route,
        fabric::RouteSpec chain, TdcConfig config = {});

    /** The route under test. */
    const fabric::RouteSpec &routeSpec() const { return route_; }

    /** The carry-chain skeleton. */
    const fabric::RouteSpec &chainSpec() const { return chain_; }

    /** Sensor configuration. */
    const TdcConfig &config() const { return config_; }

    /**
     * Perform one launch/capture for the given polarity with capture
     * phase θ (ps after launch).
     */
    Capture capture(phys::Transition polarity, double theta_ps,
                    double temp_k, util::Rng &rng) const;

    /** Take a trace of samples at fixed θ. */
    Trace takeTrace(phys::Transition polarity, double theta_ps,
                    double temp_k, util::Rng &rng) const;

    /**
     * Calibration phase (§5.2): iteratively tune θ until both
     * polarities land mid-chain, store and return θ_init.
     */
    double calibrate(double temp_k, util::Rng &rng);

    /** θ_init from the last calibration (or setThetaInit). */
    double thetaInit() const { return theta_init_; }

    /**
     * Adopt a θ_init captured elsewhere. Experiment 3 relies on
     * θ_init being consistent across devices of the same type (§6.3).
     */
    void setThetaInit(double theta_ps) { theta_init_ = theta_ps; }

    /**
     * Measurement phase (§5.2): ten traces per polarity with θ
     * stepped down from θ_init, mean Hamming distance per trace, mean
     * of traces, converted at ps_per_bit.
     */
    Measurement measure(double temp_k, util::Rng &rng) const;

    /** Device access (e.g. to co-locate further sensors). */
    fabric::Device &device() { return *device_; }

    /**
     * Cached tap arrival times for one polarity at one temperature
     * (exposed for lockstep verification; capture()/takeTrace() feed
     * themselves).
     */
    const std::vector<double> &
    arrivals(phys::Transition polarity, double temp_k) const
    {
        return cachedArrivalsPs(polarity, temp_k);
    }

    /** Capture with precomputed arrivals (hot path of takeTrace).
     *  Public so tests can lock its draw sequence against
     *  sampleHamming. */
    Capture captureFromArrivals(const std::vector<double> &arrivals,
                                phys::Transition polarity,
                                double theta_ps, util::Rng &rng) const;

    /**
     * Hamming distance of one launch/capture without materialising
     * the bit vector. Arrivals increase monotonically along the
     * chain, so the taps deterministically passed (and missed) by the
     * capture edge are found by partition point; only the metastable
     * aperture draws randomness — the same draws, in the same order,
     * as captureFromArrivals (property-tested lockstep).
     */
    std::size_t sampleHamming(const std::vector<double> &arrivals,
                              double theta_ps, util::Rng &rng) const;

  private:
    /**
     * Refill BOTH polarity caches with one handle sync and one walk
     * over the bound elements. calibrate/measure always probe both
     * polarities at the same (state, temperature), so pairing the
     * walks halves the sync + traversal work; the ΔVth epoch cache
     * supplies each element's two threshold shifts without re-running
     * the BTI power law. Per-polarity sums accumulate in the original
     * element order, so each cache is bit-identical to what a
     * single-polarity walk would produce (locked by the regression
     * goldens).
     */
    void fillArrivalCaches(double temp_k) const;

    /**
     * Arrival times memoized on the device's state epoch: the 24
     * samples x 10 traces x ~80 calibration iterations at one device
     * state and temperature share one route walk per polarity instead
     * of recomputing identical arrivals every trace.
     */
    const std::vector<double> &cachedArrivalsPs(
        phys::Transition polarity, double temp_k) const;

    /**
     * Fast-mode trace (TdcConfig::fast_sampling): block of ziggurat
     * jitter, per-trace fixed window of jitter-reachable taps with
     * branch-predictable fixed-trip aperture draws, integer Hamming
     * sum. Statistically matches meanTraceHamming's default path but
     * draws differently.
     */
    double fastTraceMeanHamming(const std::vector<double> &arrivals,
                                double theta_ps, util::Rng &rng) const;

    /**
     * takeTrace(...).meanHamming() without materialising the Trace:
     * same samples, same draws, same Welford accumulation — the form
     * calibration and measurement loops use (tens of thousands of
     * traces per fleet scan, none of which need the raw vector).
     */
    double meanTraceHamming(phys::Transition polarity, double theta_ps,
                            double temp_k, util::Rng &rng) const;

    fabric::Device *device_;
    fabric::RouteSpec route_;
    fabric::RouteSpec chain_;
    TdcConfig config_;
    double theta_init_ = 0.0;
    /** Dense element pointers resolved at construction (bind time). */
    std::vector<fabric::RoutingElement *> route_elems_;
    std::vector<fabric::RoutingElement *> chain_elems_;
    /** Route + chain handles, for the pre-walk lazy-aging sync. */
    std::vector<fabric::ElementHandle> bound_handles_;
    /** Per-polarity arrival cache, keyed on (state epoch, temp). Each
     *  sensor is driven by one lane at a time (per-sensor fan-out),
     *  so the mutable cache needs no lock. */
    struct ArrivalCache
    {
        std::uint64_t epoch = 0;
        double temp_k = 0.0;
        std::vector<double> arrivals;
    };
    mutable ArrivalCache arrival_cache_[2];
    /** Per-trace jitter block for the fast sampling path (scratch,
     *  same single-lane contract as the arrival caches). */
    mutable std::vector<double> jitter_scratch_;
};

} // namespace pentimento::tdc

#endif // PENTIMENTO_TDC_TDC_HPP
