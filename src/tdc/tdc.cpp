#include "tdc/tdc.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"
#include "util/stats.hpp"

namespace pentimento::tdc {

std::size_t
Capture::hammingDistance() const
{
    // Rising: distance from 64'h0 = popcount of ones.
    // Falling: distance from 64'hffff... = popcount of zeros.
    std::size_t count = 0;
    const bool counted = polarity == phys::Transition::Rising;
    for (const bool bit : bits) {
        if (bit == counted) {
            ++count;
        }
    }
    return count;
}

double
Trace::meanHamming() const
{
    return util::mean(hamming);
}

Tdc::Tdc(fabric::Device &device, fabric::RouteSpec route,
         fabric::RouteSpec chain, TdcConfig config)
    : device_(&device), route_(std::move(route)), chain_(std::move(chain)),
      config_(config)
{
    // Reject configurations that would silently produce NaN/inf
    // hamming (the aperture predicate divides by the window; the
    // trace means divide by the sample counts) before any capture
    // runs. A zero jitter sigma stays legal — tests use noiseless
    // sensors — but a negative or non-finite one is nonsense.
    if (!(config_.metastable_window_ps > 0.0)) {
        util::fatal("TdcConfig: metastable_window_ps must be > 0");
    }
    if (config_.taps == 0) {
        util::fatal("TdcConfig: taps must be > 0");
    }
    if (config_.samples_per_trace <= 0) {
        util::fatal("TdcConfig: samples_per_trace must be > 0");
    }
    if (config_.traces_per_measurement <= 0) {
        util::fatal("TdcConfig: traces_per_measurement must be > 0");
    }
    if (!(config_.jitter_sigma_ps >= 0.0) ||
        !std::isfinite(config_.jitter_sigma_ps)) {
        util::fatal("TdcConfig: jitter_sigma_ps must be finite and "
                    ">= 0");
    }
    if (!(config_.ps_per_bit > 0.0)) {
        util::fatal("TdcConfig: ps_per_bit must be > 0");
    }
    if (chain_.elements.size() != config_.taps) {
        util::fatal("Tdc: carry chain has " +
                    std::to_string(chain_.elements.size()) +
                    " taps but config expects " +
                    std::to_string(config_.taps));
    }
    if (route_.elements.empty()) {
        util::fatal("Tdc: empty route under test");
    }
    // Bind once: resolve every id to its dense element so the
    // measurement path never hashes or locks.
    route_elems_.reserve(route_.elements.size());
    chain_elems_.reserve(chain_.elements.size());
    bound_handles_.reserve(route_.elements.size() +
                           chain_.elements.size());
    for (const fabric::ResourceId &id : route_.elements) {
        const fabric::ElementHandle h = device_->bindElement(id);
        bound_handles_.push_back(h);
        route_elems_.push_back(&device_->elementAt(h));
    }
    for (const fabric::ResourceId &id : chain_.elements) {
        const fabric::ElementHandle h = device_->bindElement(id);
        bound_handles_.push_back(h);
        chain_elems_.push_back(&device_->elementAt(h));
    }
}

void
Tdc::fillArrivalCaches(double temp_k) const
{
    // Fold pending aging segments into the bound elements before the
    // walk. This runs only on an arrival-cache miss (state epoch or
    // temperature changed), so the per-trace hot path never syncs.
    device_->syncHandles(bound_handles_.data(), bound_handles_.size());
    // Read the epoch after the sync: syncing folds segments the epoch
    // bump already announced, it never bumps the epoch itself.
    const std::uint64_t epoch = device_->stateEpoch();
    const auto &cfg = device_->config();
    const double rise_factor =
        cfg.delay.temperatureFactor(phys::Transition::Rising, temp_k);
    const double fall_factor =
        cfg.delay.temperatureFactor(phys::Transition::Falling, temp_k);
    ArrivalCache &rise = arrival_cache_[0];
    ArrivalCache &fall = arrival_cache_[1];
    rise.arrivals.clear();
    fall.arrivals.clear();
    rise.arrivals.reserve(chain_elems_.size());
    fall.arrivals.reserve(chain_elems_.size());
    double t_rise = 0.0;
    double t_fall = 0.0;
    // One traversal computes both polarities: the ΔVth memo hands
    // each element its NMOS and PMOS shifts (filled at most once per
    // state epoch), and the two running sums accumulate in the same
    // element order as a single-polarity walk, so each polarity's
    // arrivals stay bit-identical to the historical per-polarity
    // recompute.
    std::size_t k = 0;
    const auto walk = [&](const fabric::RoutingElement *elem,
                          bool is_tap) {
        fabric::DvthCacheEntry &memo =
            device_->dvthCacheAt(bound_handles_[k++]);
        if (memo.epoch != epoch) {
            elem->deltaVthPair(cfg.bti, memo.nmos_v, memo.pmos_v);
            memo.epoch = epoch;
        }
        // Rising edges are limited by the PMOS pull-up, falling edges
        // by the NMOS pull-down (phys::limitingTransistor).
        t_rise += elem->delayPsCached(cfg.delay,
                                      phys::Transition::Rising,
                                      memo.pmos_v, rise_factor);
        t_fall += elem->delayPsCached(cfg.delay,
                                      phys::Transition::Falling,
                                      memo.nmos_v, fall_factor);
        if (is_tap) {
            rise.arrivals.push_back(t_rise);
            fall.arrivals.push_back(t_fall);
        }
    };
    for (const fabric::RoutingElement *elem : route_elems_) {
        walk(elem, false);
    }
    for (const fabric::RoutingElement *elem : chain_elems_) {
        walk(elem, true);
    }
    rise.epoch = epoch;
    fall.epoch = epoch;
    rise.temp_k = temp_k;
    fall.temp_k = temp_k;
}

const std::vector<double> &
Tdc::cachedArrivalsPs(phys::Transition polarity, double temp_k) const
{
    ArrivalCache &cache =
        arrival_cache_[polarity == phys::Transition::Falling ? 1 : 0];
    const std::uint64_t epoch = device_->stateEpoch();
    if (cache.arrivals.empty() || cache.epoch != epoch ||
        cache.temp_k != temp_k) {
        // calibrate/measure always probe both polarities at this
        // (state, temperature), so one miss refills both caches with
        // a single sync + walk.
        fillArrivalCaches(temp_k);
    }
    return cache.arrivals;
}

Capture
Tdc::captureFromArrivals(const std::vector<double> &arrivals,
                         phys::Transition polarity, double theta_ps,
                         util::Rng &rng) const
{
    const double theta_eff =
        theta_ps + rng.gaussian(0.0, config_.jitter_sigma_ps);

    Capture cap;
    cap.polarity = polarity;
    cap.bits.reserve(arrivals.size());
    const double w = config_.metastable_window_ps;
    for (const double arrival : arrivals) {
        // Has the front passed this tap by the capture edge? Inside
        // the register aperture the outcome is probabilistic, which
        // produces the metastable bubbles of Figure 3.
        const double x = (theta_eff - arrival) / w;
        bool passed;
        if (x >= 0.5) {
            passed = true;
        } else if (x <= -0.5) {
            passed = false;
        } else {
            passed = rng.bernoulli(x + 0.5);
        }
        // A passed tap shows the new value: 1 for a rising front,
        // 0 for a falling front.
        const bool new_value = polarity == phys::Transition::Rising;
        cap.bits.push_back(passed ? new_value : !new_value);
    }
    return cap;
}

std::size_t
Tdc::sampleHamming(const std::vector<double> &arrivals, double theta_ps,
                   util::Rng &rng) const
{
    const double theta_eff =
        theta_ps + rng.gaussian(0.0, config_.jitter_sigma_ps);
    const double w = config_.metastable_window_ps;
    // The per-tap predicate x = (theta_eff - arrival) / w is weakly
    // decreasing along the (strictly increasing) arrivals, so the
    // chain splits into a passed prefix (x >= 0.5), a metastable
    // aperture, and a missed suffix (x <= -0.5). Both boundaries use
    // the exact same predicate as captureFromArrivals, so the
    // bernoulli draw sequence — and thus every downstream random
    // number — is identical.
    const auto x = [&](double arrival) {
        return (theta_eff - arrival) / w;
    };
    // The division in x() dominates a binary search (one divide per
    // probe), so locate each boundary with division-free approximate
    // predicates first and then fix up with the exact predicate: the
    // two forms can only disagree within an ulp of the aperture
    // edges, so the fixup loops run 0-1 iterations and the result —
    // including which taps consume bernoulli draws — is bit-identical
    // to probing with x() directly.
    const double hi_cut = theta_eff - 0.5 * w; // x >= 0.5 ~ a <= hi
    const double lo_cut = theta_eff + 0.5 * w; // x > -0.5 ~ a < lo
    auto first_unpassed = std::partition_point(
        arrivals.begin(), arrivals.end(),
        [&](double arrival) { return arrival <= hi_cut; });
    while (first_unpassed != arrivals.begin() &&
           !(x(*(first_unpassed - 1)) >= 0.5)) {
        --first_unpassed;
    }
    while (first_unpassed != arrivals.end() &&
           x(*first_unpassed) >= 0.5) {
        ++first_unpassed;
    }
    auto first_missed = std::partition_point(
        first_unpassed, arrivals.end(),
        [&](double arrival) { return arrival < lo_cut; });
    while (first_missed != first_unpassed &&
           !(x(*(first_missed - 1)) > -0.5)) {
        --first_missed;
    }
    while (first_missed != arrivals.end() && x(*first_missed) > -0.5) {
        ++first_missed;
    }
    std::size_t passed =
        static_cast<std::size_t>(first_unpassed - arrivals.begin());
    for (auto it = first_unpassed; it != first_missed; ++it) {
        if (rng.bernoulli(x(*it) + 0.5)) {
            ++passed;
        }
    }
    // Both polarities read out as the number of passed taps: rising
    // counts ones from all-zeros, falling counts zeros from all-ones.
    return passed;
}

Capture
Tdc::capture(phys::Transition polarity, double theta_ps, double temp_k,
             util::Rng &rng) const
{
    return captureFromArrivals(cachedArrivalsPs(polarity, temp_k),
                               polarity, theta_ps, rng);
}

Trace
Tdc::takeTrace(phys::Transition polarity, double theta_ps, double temp_k,
               util::Rng &rng) const
{
    // Arrival times are deterministic for a fixed device state and
    // temperature; the epoch-keyed cache shares them across traces
    // and calibration iterations (only jitter and metastability vary
    // per sample).
    const std::vector<double> &arrivals =
        cachedArrivalsPs(polarity, temp_k);
    Trace trace;
    trace.polarity = polarity;
    trace.theta_ps = theta_ps;
    trace.hamming.reserve(
        static_cast<std::size_t>(config_.samples_per_trace));
    for (int s = 0; s < config_.samples_per_trace; ++s) {
        trace.hamming.push_back(static_cast<double>(
            sampleHamming(arrivals, theta_ps, rng)));
    }
    return trace;
}

double
Tdc::fastTraceMeanHamming(const std::vector<double> &arrivals,
                          double theta_ps, util::Rng &rng) const
{
    const std::size_t n =
        static_cast<std::size_t>(config_.samples_per_trace);
    jitter_scratch_.resize(n);
    // Whole trace's jitter up front: the ziggurat draws ~1 raw 64-bit
    // word per variate with no transcendentals, and the block loop
    // keeps the generator state hot instead of round-tripping through
    // the sampling state machine per sample.
    rng.gaussianFastBlock(0.0, config_.jitter_sigma_ps,
                          jitter_scratch_.data(), n);
    const double w = config_.metastable_window_ps;
    // One FP divide per metastable tap adds up at ~1.4 aperture taps
    // per sample; the reciprocal turns it into a multiply.
    const double inv_w = 1.0 / w;
    const std::size_t taps = arrivals.size();
    // Every tap whose pass/miss outcome could depend on this trace's
    // jitter lies inside a fixed window around θ: the aperture spans
    // w, and jitter moves it by at most ±guard (6σ — beyond that the
    // sample takes the full search below, ~1e-9 of draws). Resolving
    // the window once per trace lets the per-sample front positions
    // come from short fixed-trip counting loops instead of
    // data-dependent walks, which the branch predictor hates.
    const double guard = 6.0 * config_.jitter_sigma_ps;
    const auto lower = [&](double cut) {
        return static_cast<std::size_t>(
            std::partition_point(arrivals.begin(), arrivals.end(),
                                 [&](double a) { return a <= cut; }) -
            arrivals.begin());
    };
    const auto upper = [&](double cut) {
        return static_cast<std::size_t>(
            std::partition_point(arrivals.begin(), arrivals.end(),
                                 [&](double a) { return a < cut; }) -
            arrivals.begin());
    };
    const std::size_t wlo = lower(theta_ps - guard - 0.5 * w);
    const std::size_t whi = upper(theta_ps + guard + 0.5 * w);
    std::uint64_t sum = 0;
    for (std::size_t s = 0; s < n; ++s) {
        const double jitter = jitter_scratch_[s];
        const double theta_eff = theta_ps + jitter;
        // Same aperture predicate as sampleHamming, in cut form:
        // passed for arrival <= theta_eff - w/2, missed for
        // arrival >= theta_eff + w/2, bernoulli in between.
        const double hi_cut = theta_eff - 0.5 * w;
        const double lo_cut = theta_eff + 0.5 * w;
        std::size_t fu;
        std::size_t fm;
        if (std::abs(jitter) > guard) {
            // Tail jitter escaped the precomputed window: fall back
            // to full partition searches for this sample.
            fu = lower(hi_cut);
            fm = upper(lo_cut);
        } else {
            fu = wlo;
            fm = wlo;
            for (std::size_t i = wlo; i < whi; ++i) {
                fu += arrivals[i] <= hi_cut ? 1u : 0u;
                fm += arrivals[i] < lo_cut ? 1u : 0u;
            }
        }
        std::uint64_t passed = fu;
        // With the default geometry (w ≈ 1.4 tap pitches) at most two
        // taps are metastable, so the first two draws run as a
        // fixed-trip masked loop — a draw is consumed even when the
        // aperture holds one tap, keeping the trip count (and the
        // branch pattern) constant. Wider-than-pitch apertures spill
        // into the generic tail loop.
        for (std::size_t k = 0; k < 2; ++k) {
            const std::size_t idx = fu + k;
            const std::size_t safe = idx < taps ? idx : taps - 1;
            const double p = (theta_eff - arrivals[safe]) * inv_w + 0.5;
            passed += (rng.uniform() < p && idx < fm) ? 1u : 0u;
        }
        for (std::size_t i = fu + 2; i < fm; ++i) {
            const double p = (theta_eff - arrivals[i]) * inv_w + 0.5;
            passed += rng.uniform() < p ? 1u : 0u;
        }
        sum += passed;
    }
    // The Hamming sum is an exact integer (≤ samples·taps), so the
    // plain division is the trace mean with no Welford passes.
    return static_cast<double>(sum) / static_cast<double>(n);
}

double
Tdc::meanTraceHamming(phys::Transition polarity, double theta_ps,
                      double temp_k, util::Rng &rng) const
{
    const std::vector<double> &arrivals =
        cachedArrivalsPs(polarity, temp_k);
    if (config_.fast_sampling) {
        return fastTraceMeanHamming(arrivals, theta_ps, rng);
    }
    // Identical accumulation to util::mean over the trace vector
    // (Welford, samples in draw order) — bit-for-bit the same mean.
    util::RunningStats stats;
    for (int s = 0; s < config_.samples_per_trace; ++s) {
        stats.add(static_cast<double>(
            sampleHamming(arrivals, theta_ps, rng)));
    }
    return stats.mean();
}

double
Tdc::calibrate(double temp_k, util::Rng &rng)
{
    // The physical procedure iteratively reduces θ until the fronts
    // appear mid-chain (§5.2). HD(θ) is monotone, so we binary-search
    // the rising polarity to the chain midpoint and then verify the
    // falling front also sits inside the margins.
    const double mid = static_cast<double>(config_.taps) / 2.0;
    const double span =
        static_cast<double>(config_.taps) * config_.ps_per_bit;
    double hi = route_.target_ps * 2.0 + span + 2000.0;
    // A route aged (or mis-specified) far beyond its target can push
    // the true θ* past the nominal bracket; the old code silently
    // saturated at hi and biased every downstream measurement. The
    // search itself detects that for free: HD(θ) is monotone in θ, so
    // hi never moving means every probe sat below the midpoint — the
    // front never reached mid-chain anywhere inside [0, hi]. Widen
    // geometrically and retry; fail loudly if even a ~512x bracket
    // cannot contain the route. Well-bracketed routes take the first
    // pass and consume exactly the historical draw sequence.
    const double hi_limit = hi * 600.0;
    double theta = 0.0;

    const auto meanHdAt = [&](double theta_probe) {
        return meanTraceHamming(phys::Transition::Rising, theta_probe,
                                temp_k, rng);
    };

    while (true) {
        double lo = 0.0;
        double hi_cur = hi;
        bool hi_moved = false;
        for (int iter = 0; iter < 48 && hi_cur - lo > 0.25; ++iter) {
            const double probe = 0.5 * (lo + hi_cur);
            if (meanHdAt(probe) < mid) {
                lo = probe;
            } else {
                hi_cur = probe;
                hi_moved = true;
            }
        }
        theta = 0.5 * (lo + hi_cur);
        if (hi_moved) {
            break;
        }
        hi *= 2.0;
        if (hi > hi_limit) {
            util::fatal(
                "Tdc::calibrate: route '" + route_.name +
                "' delay exceeds the maximum search bracket (" +
                std::to_string(hi_limit) +
                " ps) — front never reached mid-chain");
        }
    }

    // Nudge until the falling front is inside the margins too.
    const double lo_taps = static_cast<double>(config_.calibration_margin);
    const double hi_taps =
        static_cast<double>(config_.taps - config_.calibration_margin);
    for (int iter = 0; iter < 32; ++iter) {
        const double fall = meanTraceHamming(phys::Transition::Falling,
                                             theta, temp_k, rng);
        if (fall < lo_taps) {
            theta += config_.ps_per_bit;
        } else if (fall > hi_taps) {
            theta -= config_.ps_per_bit;
        } else {
            break;
        }
    }
    theta_init_ = theta;
    return theta;
}

Measurement
Tdc::measure(double temp_k, util::Rng &rng) const
{
    if (theta_init_ <= 0.0) {
        util::fatal("Tdc::measure: sensor not calibrated (θ_init unset)");
    }
    util::RunningStats rise_traces;
    util::RunningStats fall_traces;
    double seconds = 0.0;
    for (int t = 0; t < config_.traces_per_measurement; ++t) {
        const double theta =
            theta_init_ -
            static_cast<double>(t) * config_.trace_theta_step_ps;
        rise_traces.add(meanTraceHamming(phys::Transition::Rising,
                                         theta, temp_k, rng));
        fall_traces.add(meanTraceHamming(phys::Transition::Falling,
                                         theta, temp_k, rng));
        seconds +=
            config_.retune_seconds +
            2.0 * config_.samples_per_trace * config_.sample_seconds;
    }
    Measurement m;
    m.rising_distance_ps = rise_traces.mean() * config_.ps_per_bit;
    m.falling_distance_ps = fall_traces.mean() * config_.ps_per_bit;
    m.wall_seconds = seconds;
    return m;
}

} // namespace pentimento::tdc
