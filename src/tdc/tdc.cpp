#include "tdc/tdc.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"
#include "util/stats.hpp"

namespace pentimento::tdc {

std::size_t
Capture::hammingDistance() const
{
    // Rising: distance from 64'h0 = popcount of ones.
    // Falling: distance from 64'hffff... = popcount of zeros.
    std::size_t count = 0;
    const bool counted = polarity == phys::Transition::Rising;
    for (const bool bit : bits) {
        if (bit == counted) {
            ++count;
        }
    }
    return count;
}

double
Trace::meanHamming() const
{
    return util::mean(hamming);
}

Tdc::Tdc(fabric::Device &device, fabric::RouteSpec route,
         fabric::RouteSpec chain, TdcConfig config)
    : device_(&device), route_(std::move(route)), chain_(std::move(chain)),
      config_(config)
{
    if (chain_.elements.size() != config_.taps) {
        util::fatal("Tdc: carry chain has " +
                    std::to_string(chain_.elements.size()) +
                    " taps but config expects " +
                    std::to_string(config_.taps));
    }
    if (route_.elements.empty()) {
        util::fatal("Tdc: empty route under test");
    }
    // Bind once: resolve every id to its dense element so the
    // measurement path never hashes or locks.
    route_elems_.reserve(route_.elements.size());
    chain_elems_.reserve(chain_.elements.size());
    bound_handles_.reserve(route_.elements.size() +
                           chain_.elements.size());
    for (const fabric::ResourceId &id : route_.elements) {
        const fabric::ElementHandle h = device_->bindElement(id);
        bound_handles_.push_back(h);
        route_elems_.push_back(&device_->elementAt(h));
    }
    for (const fabric::ResourceId &id : chain_.elements) {
        const fabric::ElementHandle h = device_->bindElement(id);
        bound_handles_.push_back(h);
        chain_elems_.push_back(&device_->elementAt(h));
    }
}

std::vector<double>
Tdc::tapArrivalsPs(phys::Transition polarity, double temp_k) const
{
    // Fold pending aging segments into the bound elements before the
    // walk. This runs only on an arrival-cache miss (state epoch or
    // temperature changed), so the per-trace hot path never syncs.
    device_->syncHandles(bound_handles_.data(), bound_handles_.size());
    const auto &cfg = device_->config();
    const double temp_factor =
        cfg.delay.temperatureFactor(polarity, temp_k);
    double t = 0.0;
    for (const fabric::RoutingElement *elem : route_elems_) {
        t += elem->delayPsFactored(cfg.bti, cfg.delay, polarity,
                                   temp_factor);
    }
    std::vector<double> arrivals;
    arrivals.reserve(chain_elems_.size());
    for (const fabric::RoutingElement *elem : chain_elems_) {
        t += elem->delayPsFactored(cfg.bti, cfg.delay, polarity,
                                   temp_factor);
        arrivals.push_back(t);
    }
    return arrivals;
}

const std::vector<double> &
Tdc::cachedArrivalsPs(phys::Transition polarity, double temp_k) const
{
    ArrivalCache &cache =
        arrival_cache_[polarity == phys::Transition::Falling ? 1 : 0];
    const std::uint64_t epoch = device_->stateEpoch();
    if (cache.arrivals.empty() || cache.epoch != epoch ||
        cache.temp_k != temp_k) {
        cache.arrivals = tapArrivalsPs(polarity, temp_k);
        cache.epoch = epoch;
        cache.temp_k = temp_k;
    }
    return cache.arrivals;
}

Capture
Tdc::captureFromArrivals(const std::vector<double> &arrivals,
                         phys::Transition polarity, double theta_ps,
                         util::Rng &rng) const
{
    const double theta_eff =
        theta_ps + rng.gaussian(0.0, config_.jitter_sigma_ps);

    Capture cap;
    cap.polarity = polarity;
    cap.bits.reserve(arrivals.size());
    const double w = config_.metastable_window_ps;
    for (const double arrival : arrivals) {
        // Has the front passed this tap by the capture edge? Inside
        // the register aperture the outcome is probabilistic, which
        // produces the metastable bubbles of Figure 3.
        const double x = (theta_eff - arrival) / w;
        bool passed;
        if (x >= 0.5) {
            passed = true;
        } else if (x <= -0.5) {
            passed = false;
        } else {
            passed = rng.bernoulli(x + 0.5);
        }
        // A passed tap shows the new value: 1 for a rising front,
        // 0 for a falling front.
        const bool new_value = polarity == phys::Transition::Rising;
        cap.bits.push_back(passed ? new_value : !new_value);
    }
    return cap;
}

std::size_t
Tdc::sampleHamming(const std::vector<double> &arrivals, double theta_ps,
                   util::Rng &rng) const
{
    const double theta_eff =
        theta_ps + rng.gaussian(0.0, config_.jitter_sigma_ps);
    const double w = config_.metastable_window_ps;
    // The per-tap predicate x = (theta_eff - arrival) / w is weakly
    // decreasing along the (strictly increasing) arrivals, so the
    // chain splits into a passed prefix (x >= 0.5), a metastable
    // aperture, and a missed suffix (x <= -0.5). Both boundaries use
    // the exact same predicate as captureFromArrivals, so the
    // bernoulli draw sequence — and thus every downstream random
    // number — is identical.
    const auto x = [&](double arrival) {
        return (theta_eff - arrival) / w;
    };
    // The division in x() dominates a binary search (one divide per
    // probe), so locate each boundary with division-free approximate
    // predicates first and then fix up with the exact predicate: the
    // two forms can only disagree within an ulp of the aperture
    // edges, so the fixup loops run 0-1 iterations and the result —
    // including which taps consume bernoulli draws — is bit-identical
    // to probing with x() directly.
    const double hi_cut = theta_eff - 0.5 * w; // x >= 0.5 ~ a <= hi
    const double lo_cut = theta_eff + 0.5 * w; // x > -0.5 ~ a < lo
    auto first_unpassed = std::partition_point(
        arrivals.begin(), arrivals.end(),
        [&](double arrival) { return arrival <= hi_cut; });
    while (first_unpassed != arrivals.begin() &&
           !(x(*(first_unpassed - 1)) >= 0.5)) {
        --first_unpassed;
    }
    while (first_unpassed != arrivals.end() &&
           x(*first_unpassed) >= 0.5) {
        ++first_unpassed;
    }
    auto first_missed = std::partition_point(
        first_unpassed, arrivals.end(),
        [&](double arrival) { return arrival < lo_cut; });
    while (first_missed != first_unpassed &&
           !(x(*(first_missed - 1)) > -0.5)) {
        --first_missed;
    }
    while (first_missed != arrivals.end() && x(*first_missed) > -0.5) {
        ++first_missed;
    }
    std::size_t passed =
        static_cast<std::size_t>(first_unpassed - arrivals.begin());
    for (auto it = first_unpassed; it != first_missed; ++it) {
        if (rng.bernoulli(x(*it) + 0.5)) {
            ++passed;
        }
    }
    // Both polarities read out as the number of passed taps: rising
    // counts ones from all-zeros, falling counts zeros from all-ones.
    return passed;
}

Capture
Tdc::capture(phys::Transition polarity, double theta_ps, double temp_k,
             util::Rng &rng) const
{
    return captureFromArrivals(cachedArrivalsPs(polarity, temp_k),
                               polarity, theta_ps, rng);
}

Trace
Tdc::takeTrace(phys::Transition polarity, double theta_ps, double temp_k,
               util::Rng &rng) const
{
    // Arrival times are deterministic for a fixed device state and
    // temperature; the epoch-keyed cache shares them across traces
    // and calibration iterations (only jitter and metastability vary
    // per sample).
    const std::vector<double> &arrivals =
        cachedArrivalsPs(polarity, temp_k);
    Trace trace;
    trace.polarity = polarity;
    trace.theta_ps = theta_ps;
    trace.hamming.reserve(
        static_cast<std::size_t>(config_.samples_per_trace));
    for (int s = 0; s < config_.samples_per_trace; ++s) {
        trace.hamming.push_back(static_cast<double>(
            sampleHamming(arrivals, theta_ps, rng)));
    }
    return trace;
}

double
Tdc::meanTraceHamming(phys::Transition polarity, double theta_ps,
                      double temp_k, util::Rng &rng) const
{
    const std::vector<double> &arrivals =
        cachedArrivalsPs(polarity, temp_k);
    // Identical accumulation to util::mean over the trace vector
    // (Welford, samples in draw order) — bit-for-bit the same mean.
    util::RunningStats stats;
    for (int s = 0; s < config_.samples_per_trace; ++s) {
        stats.add(static_cast<double>(
            sampleHamming(arrivals, theta_ps, rng)));
    }
    return stats.mean();
}

double
Tdc::calibrate(double temp_k, util::Rng &rng)
{
    // The physical procedure iteratively reduces θ until the fronts
    // appear mid-chain (§5.2). HD(θ) is monotone, so we binary-search
    // the rising polarity to the chain midpoint and then verify the
    // falling front also sits inside the margins.
    const double mid = static_cast<double>(config_.taps) / 2.0;
    const double span =
        static_cast<double>(config_.taps) * config_.ps_per_bit;
    double lo = 0.0;
    double hi = route_.target_ps * 2.0 + span + 2000.0;

    const auto meanHdAt = [&](double theta) {
        return meanTraceHamming(phys::Transition::Rising, theta, temp_k,
                                rng);
    };

    for (int iter = 0; iter < 48 && hi - lo > 0.25; ++iter) {
        const double theta = 0.5 * (lo + hi);
        if (meanHdAt(theta) < mid) {
            lo = theta;
        } else {
            hi = theta;
        }
    }
    double theta = 0.5 * (lo + hi);

    // Nudge until the falling front is inside the margins too.
    const double lo_taps = static_cast<double>(config_.calibration_margin);
    const double hi_taps =
        static_cast<double>(config_.taps - config_.calibration_margin);
    for (int iter = 0; iter < 32; ++iter) {
        const double fall = meanTraceHamming(phys::Transition::Falling,
                                             theta, temp_k, rng);
        if (fall < lo_taps) {
            theta += config_.ps_per_bit;
        } else if (fall > hi_taps) {
            theta -= config_.ps_per_bit;
        } else {
            break;
        }
    }
    theta_init_ = theta;
    return theta;
}

Measurement
Tdc::measure(double temp_k, util::Rng &rng) const
{
    if (theta_init_ <= 0.0) {
        util::fatal("Tdc::measure: sensor not calibrated (θ_init unset)");
    }
    util::RunningStats rise_traces;
    util::RunningStats fall_traces;
    double seconds = 0.0;
    for (int t = 0; t < config_.traces_per_measurement; ++t) {
        const double theta =
            theta_init_ -
            static_cast<double>(t) * config_.trace_theta_step_ps;
        rise_traces.add(meanTraceHamming(phys::Transition::Rising,
                                         theta, temp_k, rng));
        fall_traces.add(meanTraceHamming(phys::Transition::Falling,
                                         theta, temp_k, rng));
        seconds +=
            config_.retune_seconds +
            2.0 * config_.samples_per_trace * config_.sample_seconds;
    }
    Measurement m;
    m.rising_distance_ps = rise_traces.mean() * config_.ps_per_bit;
    m.falling_distance_ps = fall_traces.mean() * config_.ps_per_bit;
    m.wall_seconds = seconds;
    return m;
}

} // namespace pentimento::tdc
