#include "opentitan/route_synth.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace pentimento::opentitan {

double
RouteLengthSynthesizer::quantile(const AssetInfo &asset, double u,
                                 double tail_gamma)
{
    const util::Summary &r = asset.reference;
    const double anchors_u[5] = {0.0, 0.25, 0.50, 0.75, 1.0};
    const double anchors_v[5] = {r.min, r.p25, r.p50, r.p75, r.max};
    u = std::clamp(u, 0.0, 1.0);
    for (int seg = 0; seg < 4; ++seg) {
        if (u > anchors_u[seg + 1] && seg < 3) {
            continue;
        }
        const double frac =
            (u - anchors_u[seg]) / (anchors_u[seg + 1] - anchors_u[seg]);
        if (seg == 3) {
            // Top bin: power-warped so the population mean can match
            // the reported mean despite the unknown tail shape.
            return anchors_v[3] +
                   (anchors_v[4] - anchors_v[3]) *
                       std::pow(frac, tail_gamma);
        }
        return anchors_v[seg] +
               (anchors_v[seg + 1] - anchors_v[seg]) * frac;
    }
    return r.max;
}

double
RouteLengthSynthesizer::solveTailGamma(const AssetInfo &asset)
{
    const util::Summary &r = asset.reference;
    // Lower three bins are linear, so their conditional means are the
    // segment midpoints; each bin holds probability 1/4. The top-bin
    // conditional mean under the gamma warp is p75 + span/(gamma+1).
    const double lower_mean_sum = 0.25 * ((r.min + r.p25) / 2.0 +
                                          (r.p25 + r.p50) / 2.0 +
                                          (r.p50 + r.p75) / 2.0);
    const double span = r.max - r.p75;
    if (span <= 0.0) {
        return 1.0;
    }
    // target = lower + 0.25 * (p75 + span / (gamma + 1))
    const double top_excess =
        (r.mean - lower_mean_sum) * 4.0 - r.p75;
    if (top_excess <= 0.0) {
        return 50.0; // mean at or below p75: squash the tail hard
    }
    const double gamma = span / top_excess - 1.0;
    return std::clamp(gamma, 0.05, 50.0);
}

std::vector<double>
RouteLengthSynthesizer::synthesize(const AssetInfo &asset) const
{
    if (asset.bus_width < 2) {
        util::fatal("RouteLengthSynthesizer: bus width below 2");
    }
    const double gamma = solveTailGamma(asset);
    const auto n = static_cast<std::size_t>(asset.bus_width);
    std::vector<double> lengths;
    lengths.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double u =
            static_cast<double>(i) / static_cast<double>(n - 1);
        lengths.push_back(quantile(asset, u, gamma));
    }
    return lengths;
}

std::vector<fabric::RouteSpec>
RouteLengthSynthesizer::synthesizeRoutes(fabric::Device &device,
                                         const AssetInfo &asset) const
{
    const std::vector<double> lengths = synthesize(asset);
    std::vector<fabric::RouteSpec> specs;
    specs.reserve(lengths.size());
    for (std::size_t bit = 0; bit < lengths.size(); ++bit) {
        // Routes shorter than one element pitch still occupy one
        // physical node (Table 1 row 11 reports a 0 ps minimum).
        const double target =
            std::max(lengths[bit], device.config().routing_pitch_ps);
        specs.push_back(device.allocateRoute(
            asset.path + "[" + std::to_string(bit) + "]", target));
    }
    return specs;
}

} // namespace pentimento::opentitan
