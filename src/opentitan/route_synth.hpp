/**
 * @file
 * Route-length synthesis from Table 1 statistics.
 *
 * We cannot run the vendor place-and-route flow, so per-asset route
 * populations are regenerated from the paper's reported quantiles:
 * stratified inverse-CDF sampling over the piecewise-linear quantile
 * function anchored at (MIN, 25%, 50%, 75%, MAX), with the top
 * segment warped by a power exponent solved so the population mean
 * matches the reported MEAN (heavy-tailed assets such as
 * /kmac_app_rsp need this). MIN/quartiles/MAX are reproduced almost
 * exactly by construction; MEAN is matched by the warp; SD lands
 * wherever the within-bin shapes put it and is reported as measured
 * in EXPERIMENTS.md.
 */

#ifndef PENTIMENTO_OPENTITAN_ROUTE_SYNTH_HPP
#define PENTIMENTO_OPENTITAN_ROUTE_SYNTH_HPP

#include <vector>

#include "fabric/device.hpp"
#include "fabric/route.hpp"
#include "opentitan/assets.hpp"

namespace pentimento::opentitan {

/**
 * Regenerates route-length populations matching Table 1 rows.
 */
class RouteLengthSynthesizer
{
  public:
    /**
     * Synthesize the asset's route lengths (ps), one per bus bit.
     * Deterministic: stratified quantile positions, no RNG.
     */
    std::vector<double> synthesize(const AssetInfo &asset) const;

    /**
     * Materialise the synthesized lengths as route skeletons on a
     * device (used by the audit example to wire assets to sensors).
     */
    std::vector<fabric::RouteSpec>
    synthesizeRoutes(fabric::Device &device,
                     const AssetInfo &asset) const;

  private:
    /** Quantile function value at u in [0,1] for an asset. */
    static double quantile(const AssetInfo &asset, double u,
                           double tail_gamma);

    /** Solve the top-bin warp exponent to match the reference mean. */
    static double solveTailGamma(const AssetInfo &asset);
};

} // namespace pentimento::opentitan

#endif // PENTIMENTO_OPENTITAN_ROUTE_SYNTH_HPP
