#include "opentitan/assets.hpp"

#include "util/logging.hpp"

namespace pentimento::opentitan {

const char *
toString(AssetType type)
{
    switch (type) {
      case AssetType::CryptographicKey:
        return "CK";
      case AssetType::StateToken:
        return "SV/T";
      case AssetType::Signal:
        return "S";
    }
    return "?";
}

namespace {

AssetInfo
makeAsset(int index, const char *path, AssetType type, int width,
          double mean, double sd, double min, double p25, double p50,
          double p75, double max)
{
    AssetInfo a;
    a.index = index;
    a.path = path;
    a.type = type;
    a.bus_width = width;
    a.reference.count = static_cast<std::size_t>(width);
    a.reference.mean = mean;
    a.reference.sd = sd;
    a.reference.min = min;
    a.reference.p25 = p25;
    a.reference.p50 = p50;
    a.reference.p75 = p75;
    a.reference.max = max;
    return a;
}

std::vector<AssetInfo>
buildTable()
{
    using enum AssetType;
    // Table 1 of the paper, verbatim: route lengths in ps of twenty
    // security-critical assets of OpenTitan Earl Grey on a Virtex
    // UltraScale+, sorted ascending by MAX.
    return {
        makeAsset(1, "/otp_ctrl_otp_lc_data[state]", StateToken, 320,
                  169.5, 98.1, 39, 95.5, 157.5, 228, 509),
        makeAsset(2, "/u_otp_ctrl/otp_ctrl_otp_lc_data[test_exit_token]",
                  StateToken, 128, 197.5, 115.4, 37, 114, 170, 242.2,
                  534),
        makeAsset(3, "/otp_ctrl_otp_lc_data[rma_token]", StateToken, 101,
                  239.8, 122.8, 38, 148, 222, 325, 583),
        makeAsset(4, "/otp_ctrl_otp_lc_data[test_unlock_token]",
                  StateToken, 128, 207.9, 120.1, 38, 130.5, 178.5, 247.2,
                  609),
        makeAsset(5, "/keymgr_aes_key[key][1]_282", CryptographicKey, 32,
                  538.3, 106.4, 380, 433.5, 551, 614, 738),
        makeAsset(6, "/keymgr_otbn_key[key][0]_285", CryptographicKey,
                  384, 219.8, 150.9, 41, 99, 167, 327.2, 919),
        makeAsset(7, "/keymgr_kmac_key[key][0]_28", CryptographicKey,
                  256, 317.6, 141.7, 49, 213.8, 291, 408, 1050),
        makeAsset(8, "/otp_ctrl_otp_keymgr_key[key_share0]",
                  CryptographicKey, 256, 187.3, 200.8, 37, 54, 109, 217,
                  1064),
        makeAsset(9, "/u_otp_ctrl/part_scrmbl_rsp_data",
                  CryptographicKey, 64, 353.4, 146.1, 116, 267.2, 348.5,
                  411.2, 1075),
        makeAsset(10, "/keymgr_aes_key[key][0]_283", CryptographicKey,
                  256, 360.3, 154.2, 86, 270, 333, 412.2, 1311),
        makeAsset(11, "/u_otp_ctrl/u_otp_ctrl_scrmbl/gen_anchor_keys",
                  CryptographicKey, 135, 220.1, 358.7, 0, 57, 94, 162.5,
                  1333),
        makeAsset(12, "/otp_ctrl_otp_keymgr_key[key_share1]",
                  CryptographicKey, 256, 262.5, 273.4, 37, 51, 158,
                  335.5, 1381),
        makeAsset(13, "/csrng_tl_rsp[d_data]", Signal, 32, 1291.8, 105.7,
                  1031, 1244.8, 1323, 1359.8, 1432),
        makeAsset(14, "/aes_tl_rsp[d_data]", Signal, 32, 1105.3, 411.4,
                  276, 1135.8, 1279, 1369.5, 1631),
        makeAsset(15, "/keymgr_otbn_key[key][1]_284", CryptographicKey,
                  32, 1062.7, 281.2, 480, 854, 1074.5, 1270, 1670),
        makeAsset(16, "/u_otp_ctrl/part_otp_rdata", Signal, 64, 1298.9,
                  213, 933, 1118.5, 1311.5, 1447.2, 1784),
        makeAsset(17, "/flash_ctrl_otp_rsp[key]", CryptographicKey, 128,
                  1816.6, 404.6, 1215, 1503, 1717.5, 2010.2, 3245),
        makeAsset(18, "/kmac_app_rsp", Signal, 777, 94.2, 179.7, 15, 40,
                  58, 97, 3398),
        makeAsset(19, "/flash_ctrl_otp_rsp[rand_key]", CryptographicKey,
                  128, 1908.1, 670.7, 553, 1337, 1882, 2308.8, 3706),
        makeAsset(20, "/aes_tl_req[a_data]", Signal, 32, 2114.8, 471.8,
                  1455, 1805, 2079.5, 2337.2, 3946),
    };
}

} // namespace

const std::vector<AssetInfo> &
earlGreyAssets()
{
    static const std::vector<AssetInfo> table = buildTable();
    return table;
}

const AssetInfo &
assetByIndex(int index)
{
    const auto &table = earlGreyAssets();
    if (index < 1 || static_cast<std::size_t>(index) > table.size()) {
        util::fatal("assetByIndex: row " + std::to_string(index) +
                    " outside Table 1");
    }
    return table[static_cast<std::size_t>(index - 1)];
}

} // namespace pentimento::opentitan
