/**
 * @file
 * OpenTitan Earl Grey security-asset database (paper §5.3, Table 1).
 *
 * OpenTitan is the paper's realistic target: an open-source hardware
 * root of trust whose prebuilt bitstreams make Assumption 1 (known
 * skeleton) hold. The paper identifies twenty security-critical
 * assets — cryptographic keys (CK), life-cycle state values/tokens
 * (SV/T) and sensitive signals (S) — and reports the distribution of
 * their route lengths on a Virtex UltraScale+.
 *
 * We cannot place-and-route OpenTitan here (no Vivado), so the table
 * is carried as reference data and the synthesizer in route_synth.hpp
 * regenerates per-asset route populations with matching statistics.
 */

#ifndef PENTIMENTO_OPENTITAN_ASSETS_HPP
#define PENTIMENTO_OPENTITAN_ASSETS_HPP

#include <string>
#include <vector>

#include "util/stats.hpp"

namespace pentimento::opentitan {

/** Asset classes from Table 1. */
enum class AssetType
{
    CryptographicKey, ///< "CK"
    StateToken,       ///< "SV/T"
    Signal            ///< "S"
};

/** Short table label for an asset class. */
const char *toString(AssetType type);

/** One security-critical asset with its paper-reported statistics. */
struct AssetInfo
{
    int index = 0;           ///< row number in Table 1
    std::string path;        ///< hierarchical net path
    AssetType type = AssetType::CryptographicKey;
    int bus_width = 0;       ///< number of routes in the asset
    util::Summary reference; ///< Table 1 row (lengths in ps)
};

/** The twenty Earl Grey assets of Table 1, in table order. */
const std::vector<AssetInfo> &earlGreyAssets();

/** Look up an asset by its Table 1 row number (1-based). */
const AssetInfo &assetByIndex(int index);

} // namespace pentimento::opentitan

#endif // PENTIMENTO_OPENTITAN_ASSETS_HPP
