#include "mitigation/advisor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hpp"

namespace pentimento::mitigation {

RouteShorteningAdvisor::RouteShorteningAdvisor(
    opentitan::AttackScenario scenario)
    : metric_(scenario)
{
}

double
RouteShorteningAdvisor::safeLengthPs() const
{
    // expectedDeltaPs is linear in route length, so invert directly:
    // the safe length is where SNR hits the detection threshold.
    const auto &sc = metric_.scenario();
    const double per_ps = metric_.expectedDeltaPs(1.0);
    if (per_ps <= 0.0) {
        return 1e12;
    }
    return sc.detection_snr * sc.sensor_noise_ps / per_ps;
}

AdvisorReport
RouteShorteningAdvisor::analyze(
    const std::vector<std::pair<std::string, double>> &routes) const
{
    AdvisorReport report;
    report.safe_length_ps = safeLengthPs();
    const auto &sc = metric_.scenario();
    for (const auto &[name, length] : routes) {
        RouteAdvice advice;
        advice.name = name;
        advice.length_ps = length;
        advice.snr = metric_.expectedDeltaPs(length) / sc.sensor_noise_ps;
        advice.flagged = advice.snr >= sc.detection_snr;
        if (advice.flagged) {
            advice.recommended_segments = static_cast<int>(
                std::ceil(length / report.safe_length_ps));
            // Splitting the net leaves each physical segment shorter;
            // a re-timed segment boundary (register) breaks the
            // attacker's single-route observable.
            advice.post_split_snr =
                metric_.expectedDeltaPs(
                    length / advice.recommended_segments) /
                sc.sensor_noise_ps;
            ++report.flagged_count;
        } else {
            advice.post_split_snr = advice.snr;
        }
        report.routes.push_back(std::move(advice));
    }
    return report;
}

std::vector<ScrubPolicyAdvice>
ScrubPolicyAdvisor::rank(const std::vector<ScrubPolicyOutcome> &outcomes,
                         const std::string &baseline) const
{
    const ScrubPolicyOutcome *base = nullptr;
    for (const ScrubPolicyOutcome &outcome : outcomes) {
        if (outcome.name == baseline) {
            base = &outcome;
            break;
        }
    }
    if (base == nullptr) {
        util::fatal("ScrubPolicyAdvisor: baseline policy '" + baseline +
                    "' is not among the outcomes");
    }
    std::vector<ScrubPolicyAdvice> advice;
    for (const ScrubPolicyOutcome &outcome : outcomes) {
        ScrubPolicyAdvice a;
        a.name = outcome.name;
        a.recovery_rate = outcome.recovery_rate;
        a.scrub_ops = outcome.scrub_ops;
        a.benefit = base->recovery_rate - outcome.recovery_rate;
        a.cost_per_benefit =
            a.benefit > 0.0
                ? static_cast<double>(outcome.scrub_ops) / a.benefit
                : std::numeric_limits<double>::infinity();
        advice.push_back(std::move(a));
    }
    std::sort(advice.begin(), advice.end(),
              [](const ScrubPolicyAdvice &a, const ScrubPolicyAdvice &b) {
                  if (a.benefit != b.benefit) {
                      return a.benefit > b.benefit;
                  }
                  if (a.scrub_ops != b.scrub_ops) {
                      return a.scrub_ops < b.scrub_ops;
                  }
                  return a.name < b.name;
              });
    for (std::size_t i = 0; i < advice.size(); ++i) {
        advice[i].rank = static_cast<int>(i) + 1;
    }
    return advice;
}

} // namespace pentimento::mitigation
