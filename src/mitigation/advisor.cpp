#include "mitigation/advisor.hpp"

#include <cmath>

namespace pentimento::mitigation {

RouteShorteningAdvisor::RouteShorteningAdvisor(
    opentitan::AttackScenario scenario)
    : metric_(scenario)
{
}

double
RouteShorteningAdvisor::safeLengthPs() const
{
    // expectedDeltaPs is linear in route length, so invert directly:
    // the safe length is where SNR hits the detection threshold.
    const auto &sc = metric_.scenario();
    const double per_ps = metric_.expectedDeltaPs(1.0);
    if (per_ps <= 0.0) {
        return 1e12;
    }
    return sc.detection_snr * sc.sensor_noise_ps / per_ps;
}

AdvisorReport
RouteShorteningAdvisor::analyze(
    const std::vector<std::pair<std::string, double>> &routes) const
{
    AdvisorReport report;
    report.safe_length_ps = safeLengthPs();
    const auto &sc = metric_.scenario();
    for (const auto &[name, length] : routes) {
        RouteAdvice advice;
        advice.name = name;
        advice.length_ps = length;
        advice.snr = metric_.expectedDeltaPs(length) / sc.sensor_noise_ps;
        advice.flagged = advice.snr >= sc.detection_snr;
        if (advice.flagged) {
            advice.recommended_segments = static_cast<int>(
                std::ceil(length / report.safe_length_ps));
            // Splitting the net leaves each physical segment shorter;
            // a re-timed segment boundary (register) breaks the
            // attacker's single-route observable.
            advice.post_split_snr =
                metric_.expectedDeltaPs(
                    length / advice.recommended_segments) /
                sc.sensor_noise_ps;
            ++report.flagged_count;
        } else {
            advice.post_split_snr = advice.snr;
        }
        report.routes.push_back(std::move(advice));
    }
    return report;
}

} // namespace pentimento::mitigation
