#include "mitigation/strategies.hpp"

#include <cmath>
#include <numeric>

#include "util/logging.hpp"

namespace pentimento::mitigation {

InversionMitigation::InversionMitigation(double period_h)
    : period_h_(period_h)
{
    if (period_h_ <= 0.0) {
        util::fatal("InversionMitigation: non-positive period");
    }
}

void
InversionMitigation::apply(fabric::TargetDesign &design,
                           fabric::Device &device,
                           const std::vector<bool> &logical_values,
                           double hour)
{
    (void)device;
    const auto period = static_cast<std::uint64_t>(hour / period_h_);
    const bool invert = (period % 2) == 1;
    for (std::size_t i = 0; i < logical_values.size(); ++i) {
        design.setBurnValue(i, logical_values[i] != invert);
    }
}

ShuffleMitigation::ShuffleMitigation(double period_h, std::uint64_t seed)
    : period_h_(period_h), seed_(seed)
{
    if (period_h_ <= 0.0) {
        util::fatal("ShuffleMitigation: non-positive period");
    }
}

std::vector<std::size_t>
ShuffleMitigation::permutationFor(std::uint64_t period,
                                  std::size_t n) const
{
    std::vector<std::size_t> perm(n);
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    util::Rng rng = util::Rng(seed_).split(period);
    for (std::size_t i = n; i > 1; --i) {
        const std::size_t j = rng.uniformIndex(i);
        std::swap(perm[i - 1], perm[j]);
    }
    return perm;
}

void
ShuffleMitigation::apply(fabric::TargetDesign &design,
                         fabric::Device &device,
                         const std::vector<bool> &logical_values,
                         double hour)
{
    (void)device;
    const auto period = static_cast<std::uint64_t>(hour / period_h_);
    const std::vector<std::size_t> perm =
        permutationFor(period, logical_values.size());
    for (std::size_t i = 0; i < logical_values.size(); ++i) {
        design.setBurnValue(i, logical_values[perm[i]]);
    }
}

WearLevelMitigation::WearLevelMitigation(double period_h,
                                         std::size_t locations)
    : period_h_(period_h), locations_(locations)
{
    if (period_h_ <= 0.0 || locations_ < 2) {
        util::fatal("WearLevelMitigation: bad configuration");
    }
}

void
WearLevelMitigation::apply(fabric::TargetDesign &design,
                           fabric::Device &device,
                           const std::vector<bool> &logical_values,
                           double hour)
{
    const std::size_t n = logical_values.size();
    if (sites_.empty()) {
        // Lazily set up the alternate sites: location 0 is the
        // design's original skeleton; the rest are fresh fabric.
        sites_.resize(n);
        for (std::size_t r = 0; r < n; ++r) {
            sites_[r].push_back(design.routeSpec(r));
            for (std::size_t l = 1; l < locations_; ++l) {
                sites_[r].push_back(device.allocateRoute(
                    design.routeSpec(r).name + "@site" +
                        std::to_string(l),
                    design.routeSpec(r).target_ps));
            }
        }
    }
    const auto period = static_cast<std::uint64_t>(hour / period_h_);
    const std::size_t site = period % locations_;
    if (site != current_site_ || hour == 0.0) {
        for (std::size_t r = 0; r < n; ++r) {
            design.relocateRoute(r, sites_[r][site]);
        }
        current_site_ = site;
    }
    for (std::size_t i = 0; i < n; ++i) {
        design.setBurnValue(i, logical_values[i]);
    }
}

HoldRecoveryMitigation::HoldRecoveryMitigation(Epilogue::Policy policy,
                                               double hold_hours)
{
    if (hold_hours < 0.0) {
        util::fatal("HoldRecoveryMitigation: negative hold");
    }
    epilogue_.policy = policy;
    epilogue_.hours = hold_hours;
}

std::string
HoldRecoveryMitigation::name() const
{
    switch (epilogue_.policy) {
      case Epilogue::Policy::Complement:
        return "hold-complement";
      case Epilogue::Policy::AllZero:
        return "hold-zero";
      case Epilogue::Policy::AllOne:
        return "hold-one";
      case Epilogue::Policy::None:
        break;
    }
    return "hold-none";
}

void
HoldRecoveryMitigation::apply(fabric::TargetDesign &design,
                              fabric::Device &device,
                              const std::vector<bool> &logical_values,
                              double hour)
{
    (void)device;
    (void)hour;
    for (std::size_t i = 0; i < logical_values.size(); ++i) {
        design.setBurnValue(i, logical_values[i]);
    }
}

Epilogue
HoldRecoveryMitigation::epilogue() const
{
    return epilogue_;
}

} // namespace pentimento::mitigation
