/**
 * @file
 * Route-shortening advisor (paper §8.1).
 *
 * "The user should strive to make routes that hold sensitive data as
 * short as possible... The ability to specify that the physical
 * design tools minimize sensitive routes would reduce vulnerability
 * to pentimento-style attacks." This advisor is that verification
 * aid: given a design's sensitive route lengths, it reports which
 * exceed a safe length for a given attack scenario and what the
 * leakage reduction from splitting them would be.
 */

#ifndef PENTIMENTO_MITIGATION_ADVISOR_HPP
#define PENTIMENTO_MITIGATION_ADVISOR_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "opentitan/vulnerability.hpp"

namespace pentimento::mitigation {

/** Advice for one route. */
struct RouteAdvice
{
    std::string name;
    double length_ps = 0.0;
    double snr = 0.0;
    bool flagged = false;       ///< SNR >= detection threshold
    /** Segments to split into so each falls below the safe length. */
    int recommended_segments = 1;
    /** SNR of one segment after the recommended split. */
    double post_split_snr = 0.0;
};

/** Whole-design report. */
struct AdvisorReport
{
    double safe_length_ps = 0.0; ///< longest route below threshold
    std::vector<RouteAdvice> routes;
    std::size_t flagged_count = 0;
};

/**
 * Analyses sensitive route lengths against an attack scenario.
 */
class RouteShorteningAdvisor
{
  public:
    explicit RouteShorteningAdvisor(
        opentitan::AttackScenario scenario = {});

    /** Longest route whose predicted SNR stays below the threshold. */
    double safeLengthPs() const;

    /** Evaluate a set of named route lengths. */
    AdvisorReport
    analyze(const std::vector<std::pair<std::string, double>> &routes)
        const;

  private:
    opentitan::VulnerabilityMetric metric_;
};

/** One BRAM scrub policy's measured campaign outcome. */
struct ScrubPolicyOutcome
{
    std::string name;
    /** Fraction of victim BRAM words the attacker recovered exactly. */
    double recovery_rate = 0.0;
    /** Provider scrub operations the policy cost over the campaign. */
    std::uint64_t scrub_ops = 0;
};

/** Ranked cost/benefit advice for one policy. */
struct ScrubPolicyAdvice
{
    std::string name;
    double recovery_rate = 0.0;
    std::uint64_t scrub_ops = 0;
    /** Absolute exposure reduction vs. the no-scrub baseline. */
    double benefit = 0.0;
    /** Scrub operations per point of exposure reduction; infinity
     *  when the policy buys nothing over the baseline. */
    double cost_per_benefit = 0.0;
    /** 1 = most exposure reduction (ties broken by fewer scrubs). */
    int rank = 0;
};

/**
 * Ranks provider BRAM content-scrub policies by measured cost and
 * benefit. The interconnect channel has no equivalent — a logical
 * scrub cannot erase analog burn-in (ablation_provider_scrub) — but
 * content remanence IS logically erasable, so here the provider's
 * question is only *when* to pay for the zeroing pass. Fed by
 * ablation_bram_scrub with one fleet-scan outcome per policy.
 */
class ScrubPolicyAdvisor
{
  public:
    /**
     * Rank `outcomes` against the outcome named `baseline` (the
     * no-scrub policy). Fatals if the baseline is missing. Returns
     * advice sorted best rank first: primary key exposure reduction
     * (descending), ties broken by fewer scrub operations, then name.
     */
    std::vector<ScrubPolicyAdvice>
    rank(const std::vector<ScrubPolicyOutcome> &outcomes,
         const std::string &baseline) const;
};

} // namespace pentimento::mitigation

#endif // PENTIMENTO_MITIGATION_ADVISOR_HPP
