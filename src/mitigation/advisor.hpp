/**
 * @file
 * Route-shortening advisor (paper §8.1).
 *
 * "The user should strive to make routes that hold sensitive data as
 * short as possible... The ability to specify that the physical
 * design tools minimize sensitive routes would reduce vulnerability
 * to pentimento-style attacks." This advisor is that verification
 * aid: given a design's sensitive route lengths, it reports which
 * exceed a safe length for a given attack scenario and what the
 * leakage reduction from splitting them would be.
 */

#ifndef PENTIMENTO_MITIGATION_ADVISOR_HPP
#define PENTIMENTO_MITIGATION_ADVISOR_HPP

#include <string>
#include <vector>

#include "opentitan/vulnerability.hpp"

namespace pentimento::mitigation {

/** Advice for one route. */
struct RouteAdvice
{
    std::string name;
    double length_ps = 0.0;
    double snr = 0.0;
    bool flagged = false;       ///< SNR >= detection threshold
    /** Segments to split into so each falls below the safe length. */
    int recommended_segments = 1;
    /** SNR of one segment after the recommended split. */
    double post_split_snr = 0.0;
};

/** Whole-design report. */
struct AdvisorReport
{
    double safe_length_ps = 0.0; ///< longest route below threshold
    std::vector<RouteAdvice> routes;
    std::size_t flagged_count = 0;
};

/**
 * Analyses sensitive route lengths against an attack scenario.
 */
class RouteShorteningAdvisor
{
  public:
    explicit RouteShorteningAdvisor(
        opentitan::AttackScenario scenario = {});

    /** Longest route whose predicted SNR stays below the threshold. */
    double safeLengthPs() const;

    /** Evaluate a set of named route lengths. */
    AdvisorReport
    analyze(const std::vector<std::pair<std::string, double>> &routes)
        const;

  private:
    opentitan::VulnerabilityMetric metric_;
};

} // namespace pentimento::mitigation

#endif // PENTIMENTO_MITIGATION_ADVISOR_HPP
