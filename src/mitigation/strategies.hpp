/**
 * @file
 * Concrete user mitigations from paper §8.1.
 *
 *  - InversionMitigation: "the data could be inverted at
 *    predetermined periods (e.g., every hour)" — both polarities see
 *    roughly equal stress, so the differential imprint cancels.
 *  - ShuffleMitigation: "deterministically shuffled at the source and
 *    unshuffled at the receiver" — each route carries a changing
 *    mixture of bits.
 *  - WearLevelMitigation: partial reconfiguration moves the sensitive
 *    routes between physical locations, diluting the burn at any one
 *    site (with the paper's caveat that it spreads the imprint).
 *  - HoldRecoveryMitigation: the tenant erases the design and holds
 *    the instance (optionally with complemented values) before
 *    releasing, paying rent to bleed off the BTI signal.
 */

#ifndef PENTIMENTO_MITIGATION_STRATEGIES_HPP
#define PENTIMENTO_MITIGATION_STRATEGIES_HPP

#include <cstdint>
#include <vector>

#include "fabric/device.hpp"
#include "mitigation/strategy.hpp"
#include "util/rng.hpp"

namespace pentimento::mitigation {

/**
 * Invert the held values every period.
 */
class InversionMitigation : public MitigationStrategy
{
  public:
    /** @param period_h hours between inversions (paper suggests 1 h) */
    explicit InversionMitigation(double period_h = 1.0);

    std::string name() const override { return "invert"; }
    void apply(fabric::TargetDesign &design, fabric::Device &device,
               const std::vector<bool> &logical_values,
               double hour) override;

  private:
    double period_h_;
};

/**
 * Deterministically permute which logical bit each route carries,
 * re-drawing the permutation every period.
 */
class ShuffleMitigation : public MitigationStrategy
{
  public:
    ShuffleMitigation(double period_h, std::uint64_t seed);

    std::string name() const override { return "shuffle"; }
    void apply(fabric::TargetDesign &design, fabric::Device &device,
               const std::vector<bool> &logical_values,
               double hour) override;

  private:
    std::vector<std::size_t> permutationFor(std::uint64_t period,
                                            std::size_t n) const;

    double period_h_;
    std::uint64_t seed_;
};

/**
 * Rotate the sensitive routes across several physical locations via
 * partial reconfiguration.
 */
class WearLevelMitigation : public MitigationStrategy
{
  public:
    /**
     * @param period_h hours between relocations
     * @param locations number of physical sites per route
     */
    explicit WearLevelMitigation(double period_h,
                                 std::size_t locations = 4);

    std::string name() const override { return "wear-level"; }
    void apply(fabric::TargetDesign &design, fabric::Device &device,
               const std::vector<bool> &logical_values,
               double hour) override;

  private:
    double period_h_;
    std::size_t locations_;
    /** [route][location] alternate skeletons, allocated lazily. */
    std::vector<std::vector<fabric::RouteSpec>> sites_;
    std::size_t current_site_ = 0;
};

/**
 * Pass the logical values through unchanged, but hold the instance
 * with an erase policy before release (§8.1's "erase their design and
 * hold on to the instance for some time").
 */
class HoldRecoveryMitigation : public MitigationStrategy
{
  public:
    HoldRecoveryMitigation(Epilogue::Policy policy, double hold_hours);

    std::string name() const override;
    void apply(fabric::TargetDesign &design, fabric::Device &device,
               const std::vector<bool> &logical_values,
               double hour) override;
    Epilogue epilogue() const override;

    /** apply() is a value passthrough: intervals may long-jump. */
    double cadenceHours() const override { return 0.0; }

  private:
    Epilogue epilogue_;
};

} // namespace pentimento::mitigation

#endif // PENTIMENTO_MITIGATION_STRATEGIES_HPP
