/**
 * @file
 * User-side mitigation interface (paper §8.1).
 *
 * A mitigation strategy decides which *physical* values sit on the
 * sensitive routes during each condition interval, given the
 * unchanging *logical* data, and optionally what the tenant does with
 * the instance after computing but before releasing it (the
 * hold-and-recover mitigation). The attack benches run the same
 * attacker against each strategy to quantify the residual leak.
 */

#ifndef PENTIMENTO_MITIGATION_STRATEGY_HPP
#define PENTIMENTO_MITIGATION_STRATEGY_HPP

#include <string>
#include <vector>

#include "fabric/design.hpp"
#include "fabric/device.hpp"

namespace pentimento::mitigation {

/** What the tenant does between finishing work and releasing. */
struct Epilogue
{
    enum class Policy
    {
        None,       ///< release immediately
        Complement, ///< invert route values to speed BTI recovery
        AllZero,    ///< park every route at 0
        AllOne      ///< park every route at 1
    };

    Policy policy = Policy::None;
    /** Hours the tenant pays to hold the instance after computing. */
    double hours = 0.0;
};

/**
 * Strategy interface: rewrite held values per interval.
 */
class MitigationStrategy
{
  public:
    virtual ~MitigationStrategy() = default;

    /** Strategy name for reports. */
    virtual std::string name() const = 0;

    /**
     * Configure the physical values for the next condition interval.
     *
     * @param design the tenant's loaded design (mutated in place)
     * @param device the device the design runs on (wear-leveling
     *        allocates alternate sites here)
     * @param logical_values the true data, one bit per route
     * @param hour simulated hour index since the tenancy started
     */
    virtual void apply(fabric::TargetDesign &design,
                       fabric::Device &device,
                       const std::vector<bool> &logical_values,
                       double hour) = 0;

    /** Pre-release behaviour; default: none. */
    virtual Epilogue epilogue() const { return {}; }

    /**
     * Hours between apply() invocations inside one condition
     * interval. Strategies with a schedule (inversion, shuffle,
     * wear-leveling) keep the historical 1 h stepping; a strategy
     * that returns 0 declares apply() idempotent over the interval,
     * letting the experiment engine collapse an uninterrupted
     * multi-hour burn into a single Device::advance jump — which the
     * segment-timeline aging model makes O(1) and bit-identical to
     * the stepped equivalent.
     */
    virtual double cadenceHours() const { return 1.0; }
};

/**
 * Baseline: the logical values sit on the routes untouched — the
 * vulnerable default every experiment in the paper uses.
 */
class NoMitigation : public MitigationStrategy
{
  public:
    std::string name() const override { return "none"; }

    void
    apply(fabric::TargetDesign &design, fabric::Device &device,
          const std::vector<bool> &logical_values, double hour) override
    {
        (void)device;
        (void)hour;
        for (std::size_t i = 0; i < logical_values.size(); ++i) {
            design.setBurnValue(i, logical_values[i]);
        }
    }

    /** The values never change: condition intervals may long-jump. */
    double cadenceHours() const override { return 0.0; }
};

} // namespace pentimento::mitigation

#endif // PENTIMENTO_MITIGATION_STRATEGY_HPP
