#include "phys/delay_model.hpp"

namespace pentimento::phys {

double
agedDelayPs(const DelayParams &p, Transition t, double base_ps,
            double delta_vth_v, double temp_k)
{
    return agedDelayPsFactored(p, base_ps, delta_vth_v,
                               p.temperatureFactor(t, temp_k));
}

} // namespace pentimento::phys
