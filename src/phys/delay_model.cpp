#include "phys/delay_model.hpp"

#include "util/logging.hpp"

namespace pentimento::phys {

double
DelayParams::delayShiftFraction(double delta_vth_v) const
{
    const double headroom = vdd_v - vth0_v;
    if (headroom <= 0.0) {
        util::fatal("DelayParams: Vdd must exceed Vth0");
    }
    return alpha * delta_vth_v / headroom;
}

double
DelayParams::temperatureFactor(Transition t, double temp_k) const
{
    const double tc = (t == Transition::Rising) ? temp_coeff_rise_per_k
                                                : temp_coeff_fall_per_k;
    return 1.0 + tc * (temp_k - ref_temp_k);
}

double
agedDelayPs(const DelayParams &p, Transition t, double base_ps,
            double delta_vth_v, double temp_k)
{
    return agedDelayPsFactored(p, base_ps, delta_vth_v,
                               p.temperatureFactor(t, temp_k));
}

double
agedDelayPsFactored(const DelayParams &p, double base_ps,
                    double delta_vth_v, double temp_factor)
{
    const double bti = 1.0 + p.delayShiftFraction(delta_vth_v);
    return base_ps * bti * temp_factor;
}

} // namespace pentimento::phys
