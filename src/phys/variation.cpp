#include "phys/variation.hpp"

#include <cmath>

namespace pentimento::phys {

VariationSampler::VariationSampler(const VariationParams &params,
                                   util::Rng rng)
    : params_(params), rng_(rng)
{
}

ElementVariation
VariationSampler::sample()
{
    ElementVariation v;
    // Correlated rise/fall draws: shared + independent components.
    const double rho = params_.rise_fall_correlation;
    const double shared = rng_.gaussian();
    const double ind_r = rng_.gaussian();
    const double ind_f = rng_.gaussian();
    const double mix = std::sqrt(std::max(0.0, 1.0 - rho * rho));
    const double zr = rho * shared + mix * ind_r;
    const double zf = rho * shared + mix * ind_f;
    v.rise_mult = std::exp(params_.delay_sigma * zr);
    v.fall_mult = std::exp(params_.delay_sigma * zf);
    v.bti_mult = std::exp(params_.bti_sigma * rng_.gaussian());
    return v;
}

} // namespace pentimento::phys
