/**
 * @file
 * Propagation-delay sensitivity to threshold shift and temperature.
 *
 * BTI is observable only through timing (paper §3-4): a ΔVth on the
 * NMOS side slows falling (1→0) transitions, a ΔVth on the PMOS side
 * slows rising (0→1) transitions. The alpha-power-law MOSFET model
 * gives, to first order,
 *
 *     Δd / d0 = alpha * ΔVth / (Vdd - Vth0)
 *
 * Temperature adds a small common-mode delay drift; rise and fall
 * temperature coefficients differ slightly (electron vs hole mobility)
 * which is what leaks ambient noise into the paper's differential
 * falling-minus-rising observable on the cloud platform.
 */

#ifndef PENTIMENTO_PHYS_DELAY_MODEL_HPP
#define PENTIMENTO_PHYS_DELAY_MODEL_HPP

#include "phys/bti.hpp"
#include "util/logging.hpp"

namespace pentimento::phys {

/** Transition polarities that propagate through a route. */
enum class Transition
{
    Rising, ///< 0 -> 1, limited by PMOS pull-up health
    Falling ///< 1 -> 0, limited by NMOS pull-down health
};

/** Transistor type whose degradation slows the given transition. */
constexpr TransistorType
limitingTransistor(Transition t)
{
    return t == Transition::Rising ? TransistorType::Pmos
                                   : TransistorType::Nmos;
}

/** Electrical constants for the delay sensitivity model. */
struct DelayParams
{
    /** Core supply voltage (UltraScale+ VCCINT). */
    double vdd_v = 0.85;
    /** Nominal threshold voltage. */
    double vth0_v = 0.30;
    /** Alpha-power-law velocity saturation exponent. */
    double alpha = 1.3;
    /** Fractional delay change per kelvin for rising transitions. */
    double temp_coeff_rise_per_k = 1.03e-4;
    /** Fractional delay change per kelvin for falling transitions. */
    double temp_coeff_fall_per_k = 0.97e-4;
    /** Temperature at which base delays are quoted. */
    double ref_temp_k = 333.15;

    /**
     * Fractional delay increase caused by a threshold shift.
     * Header-inline: this sits in the innermost loop of every route
     * walk (thousands of elements per arrival recompute).
     */
    double
    delayShiftFraction(double delta_vth_v) const
    {
        const double headroom = vdd_v - vth0_v;
        if (headroom <= 0.0) {
            util::fatal("DelayParams: Vdd must exceed Vth0");
        }
        return alpha * delta_vth_v / headroom;
    }

    /** Temperature multiplier for the given transition polarity. */
    double
    temperatureFactor(Transition t, double temp_k) const
    {
        const double tc = (t == Transition::Rising)
                              ? temp_coeff_rise_per_k
                              : temp_coeff_fall_per_k;
        return 1.0 + tc * (temp_k - ref_temp_k);
    }
};

/**
 * Delay of one element for one transition polarity, given its base
 * delay, the limiting transistor's ΔVth, and die temperature.
 */
double agedDelayPs(const DelayParams &p, Transition t, double base_ps,
                   double delta_vth_v, double temp_k);

/**
 * agedDelayPs with the temperature factor precomputed. Route sweeps
 * evaluate thousands of elements at one (polarity, temperature), so
 * they hoist temperatureFactor() out of the per-element loop; the
 * product order matches agedDelayPs bit for bit.
 */
inline double
agedDelayPsFactored(const DelayParams &p, double base_ps,
                    double delta_vth_v, double temp_factor)
{
    const double bti = 1.0 + p.delayShiftFraction(delta_vth_v);
    return base_ps * bti * temp_factor;
}

} // namespace pentimento::phys

#endif // PENTIMENTO_PHYS_DELAY_MODEL_HPP
