#include "phys/bti.hpp"

#include <cmath>

#include "util/logging.hpp"
#include "util/units.hpp"

namespace pentimento::phys {

BtiParams
BtiParams::ultrascalePlus()
{
    BtiParams p;
    // Calibrated so a 1000 ps route on a new device at 60 C develops
    // a falling-minus-rising contrast of ~ +1.05 ps (burn 1 / PBTI)
    // or ~ -1.26 ps (burn 0 / NBTI) after 200 h — matching the
    // Figure 6 envelopes, which scale ~1 ps per ns of route — and so
    // that §6.1's recovery asymmetry holds *as an observable*:
    //
    //  - a burn-1 route switched to 0 returns to ∆ps = 0 in 30-50 h:
    //    moderate PBTI relaxation plus the stronger fresh NBTI accrual
    //    on the freshly-stressed PMOS side;
    //  - a burn-0 route switched to 1 needs > 200 h: NBTI relaxes
    //    slowly (deep quasi-permanent component) and the weaker fresh
    //    PBTI cannot cancel it until well past 200 h.
    //
    // NBTI is the stronger mechanism (paper §1) and, on the paper's
    // 16 nm FinFET parts, the slower one to fade (§6.1: "fundamental
    // difference between the NBTI and PBTI effect").
    p.nbti.prefactor_v = 1.42e-4;
    p.nbti.time_exponent = 0.25;
    p.nbti.recovery_tau_h = 120.0;
    p.nbti.recovery_beta = 1.0;
    p.nbti.permanent_fraction = 0.84;

    p.pbti.prefactor_v = 1.18e-4;
    p.pbti.time_exponent = 0.25;
    p.pbti.recovery_tau_h = 40.0;
    p.pbti.recovery_beta = 1.0;
    p.pbti.permanent_fraction = 0.60;

    p.stress_activation_ev = 0.8;
    p.recovery_activation_ev = 0.8;
    p.reference_temp_k = util::celsiusToKelvin(60.0);
    return p;
}

double
arrheniusAccel(double activation_ev, double temp_k, double ref_k)
{
    if (temp_k <= 0.0 || ref_k <= 0.0) {
        util::fatal("arrheniusAccel: non-positive absolute temperature");
    }
    return std::exp(activation_ev / util::kBoltzmannEv *
                    (1.0 / ref_k - 1.0 / temp_k));
}

AgingStepContext::AgingStepContext(const BtiParams &params,
                                   double temperature_k)
    : stress_accel(arrheniusAccel(params.stress_activation_ev,
                                  temperature_k,
                                  params.reference_temp_k)),
      // Equal activation energies (the calibrated default) make the
      // two factors the same exp(): reuse it instead of recomputing —
      // bit-identical, and the cloud walk constructs one context per
      // ambient event per board.
      recovery_accel(
          params.recovery_activation_ev == params.stress_activation_ev
              ? stress_accel
              : arrheniusAccel(params.recovery_activation_ev,
                               temperature_k,
                               params.reference_temp_k))
{
}

const AgingStepContext &
StepContextCache::get(const BtiParams &params, double temp_k)
{
    if (params_ != &params || temp_k_ != temp_k) {
        ctx_ = AgingStepContext(params, temp_k);
        params_ = &params;
        temp_k_ = temp_k;
        ++misses_;
    }
    return ctx_;
}

void
BtiState::applyStress(const MechanismParams &p, double scale,
                      double dt_eff_h)
{
    if (dt_eff_h < 0.0) {
        util::fatal("BtiState::applyStress: negative time step");
    }
    if (dt_eff_h == 0.0) {
        return;
    }
    if (recovery_eff_h_ > 0.0) {
        // Collapse the partially recovered shift into the equivalent
        // stress time so renewed stress continues from the present
        // ΔVth rather than the pre-recovery one.
        const double dv = deltaVth(p, scale);
        const double a = scale * p.prefactor_v;
        if (a > 0.0 && dv > 0.0) {
            stress_eff_h_ = std::pow(dv / a, 1.0 / p.time_exponent);
        } else {
            stress_eff_h_ = 0.0;
        }
        recovery_eff_h_ = 0.0;
    }
    stress_eff_h_ += dt_eff_h;
}

void
BtiState::applyRecovery(const MechanismParams &p, double dt_eff_h)
{
    (void)p;
    if (dt_eff_h < 0.0) {
        util::fatal("BtiState::applyRecovery: negative time step");
    }
    if (stress_eff_h_ == 0.0) {
        return; // nothing to recover
    }
    recovery_eff_h_ += dt_eff_h;
}

double
BtiState::deltaVthStressed(const MechanismParams &p, double scale) const
{
    const double raw =
        scale * p.prefactor_v * std::pow(stress_eff_h_, p.time_exponent);
    if (recovery_eff_h_ <= 0.0) {
        return raw;
    }
    const double rec =
        std::pow(recovery_eff_h_ / p.recovery_tau_h, p.recovery_beta);
    const double recoverable = (1.0 - p.permanent_fraction) / (1.0 + rec);
    return raw * (p.permanent_fraction + recoverable);
}

double
DeviceAgeModel::freshStressScale(double age_hours) const
{
    if (age_hours < 0.0) {
        util::fatal("DeviceAgeModel: negative age");
    }
    return std::pow(1.0 + age_hours / tau_age_h, -exponent);
}

} // namespace pentimento::phys
