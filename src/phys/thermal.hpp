/**
 * @file
 * Die-temperature models.
 *
 * Temperature matters twice in the paper: it accelerates BTI (the
 * Target design's Arithmetic Heavy circuits exist partly to heat the
 * die, §5.1; Experiment 1 uses a 60 C oven) and it perturbs measured
 * delays (the cloud's uncontrolled environment makes Figures 7-8
 * noisier than Figure 6). Two environments are provided: a constant
 * oven and a first-order package model that tracks dissipated power
 * around a (possibly drifting) ambient.
 */

#ifndef PENTIMENTO_PHYS_THERMAL_HPP
#define PENTIMENTO_PHYS_THERMAL_HPP

namespace pentimento::phys {

/**
 * Source of die temperature over simulated time.
 */
class ThermalEnvironment
{
  public:
    virtual ~ThermalEnvironment() = default;

    /**
     * Advance the environment and return the die temperature.
     *
     * @param power_w power currently dissipated by the programmed
     *        design
     * @param dt_h simulated hours to advance
     * @return die temperature in kelvin at the end of the step
     */
    virtual double step(double power_w, double dt_h) = 0;

    /** Die temperature without advancing time. */
    virtual double dieTempK() const = 0;
};

/**
 * Temperature-controlled forced-convection oven (Experiment 1's Lab
 * Companion OF-01E at 60 C): die temperature is pinned.
 */
class OvenEnvironment : public ThermalEnvironment
{
  public:
    explicit OvenEnvironment(double temp_k);

    double step(double power_w, double dt_h) override;
    double dieTempK() const override { return temp_k_; }

  private:
    double temp_k_;
};

/**
 * First-order package thermal model: the die relaxes toward
 * ambient + R_th * P with time constant tau. Ambient can be updated
 * between steps (the cloud module drives it with a stochastic
 * process).
 */
class PackageThermalModel : public ThermalEnvironment
{
  public:
    /**
     * @param ambient_k initial ambient temperature
     * @param r_thermal_k_per_w junction-to-ambient thermal resistance
     * @param tau_h thermal time constant in hours (default 18 s: a
     *        die + heatsink settles within a measurement sweep)
     */
    PackageThermalModel(double ambient_k, double r_thermal_k_per_w = 0.35,
                        double tau_h = 0.005);

    double step(double power_w, double dt_h) override;
    double dieTempK() const override { return die_k_; }

    /** Update the ambient temperature (e.g. data-centre drift). */
    void setAmbientK(double ambient_k) { ambient_k_ = ambient_k; }

    /** Current ambient temperature. */
    double ambientK() const { return ambient_k_; }

    /**
     * Restore checkpointed dynamic state (ambient + die temperature);
     * R_th and tau are construction constants and stay as built.
     */
    void
    restoreState(double ambient_k, double die_k)
    {
        ambient_k_ = ambient_k;
        die_k_ = die_k;
    }

    /** Steady-state die temperature at the given dissipated power. */
    double
    settleK(double power_w) const
    {
        return ambient_k_ + r_thermal_ * power_w;
    }

    /**
     * True when a span of dt hours fully relaxes the die: the
     * first-order decay term underflows below half an ulp of any
     * kelvin-scale target, so step() lands bit-exactly on settleK()
     * without evaluating the exponential. The event-driven cloud walk
     * passes whole ambient cells (hours) through here with a thermal
     * time constant of seconds, so this is the common case.
     */
    bool
    fullyRelaxes(double dt_h) const
    {
        return dt_h >= 64.0 * tau_h_;
    }

  private:
    double ambient_k_;
    double r_thermal_;
    double tau_h_;
    double die_k_;
};

} // namespace pentimento::phys

#endif // PENTIMENTO_PHYS_THERMAL_HPP
