/**
 * @file
 * Within-die process variation.
 *
 * Every physical element gets fixed multiplicative offsets on its base
 * rise/fall delays and on its BTI susceptibility. Variation is what
 * makes TDC traces device-unique (the cloud module's fingerprinting
 * builds on it) and why the paper averages 10 traces against
 * "architectural irregularities".
 */

#ifndef PENTIMENTO_PHYS_VARIATION_HPP
#define PENTIMENTO_PHYS_VARIATION_HPP

#include "util/rng.hpp"

namespace pentimento::phys {

/** Fixed per-element variation multipliers. */
struct ElementVariation
{
    double rise_mult = 1.0;
    double fall_mult = 1.0;
    double bti_mult = 1.0;
};

/** Spread parameters for within-die variation. */
struct VariationParams
{
    /** Sigma of log base-delay multipliers. */
    double delay_sigma = 0.025;
    /** Sigma of log BTI-susceptibility multipliers. */
    double bti_sigma = 0.08;
    /** Correlation between rise and fall delay variation. */
    double rise_fall_correlation = 0.7;
};

/**
 * Draws per-element variation from a device-seeded stream, so two
 * devices differ but one device is stable across design loads.
 */
class VariationSampler
{
  public:
    VariationSampler(const VariationParams &params, util::Rng rng);

    /** Sample one element's fixed multipliers. */
    ElementVariation sample();

  private:
    VariationParams params_;
    util::Rng rng_;
};

} // namespace pentimento::phys

#endif // PENTIMENTO_PHYS_VARIATION_HPP
