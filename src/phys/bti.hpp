/**
 * @file
 * Bias temperature instability (BTI) kinetics.
 *
 * This is the analog mechanism behind "FPGA pentimenti" (paper §3):
 *
 *  - a CMOS transistor whose gate is stressed accumulates a threshold
 *    voltage shift ΔVth that grows as a saturating power law of
 *    effective stress time;
 *  - NBTI stresses PMOS transistors while they see a logic 0, PBTI
 *    stresses NMOS transistors while they see a logic 1;
 *  - removing the stress partially reverses the shift; a sizeable
 *    quasi-permanent component remains on experimental timescales.
 *    On the UltraScale+ 16 nm FinFET parts the paper measures, the
 *    *observable* burn-1 pentimento fades within 30-50 hours while
 *    the burn-0 pentimento persists beyond 200 hours (§6.1); in this
 *    model that asymmetry emerges from NBTI being both stronger and
 *    slower to relax than PBTI;
 *  - both stress accrual and recovery accelerate with temperature
 *    (Arrhenius).
 *
 * The model keeps, per transistor, an *effective stress time* and an
 * *effective recovery time*. ΔVth is
 *
 *     dVth = scale * A * s^n * (P + (1 - P) / (1 + (r / tau)^beta))
 *
 * with s the effective stress hours, r the effective recovery hours
 * since stress last ended, P a small permanent fraction, and `scale` a
 * per-element multiplier combining process variation and device-age
 * derating. Re-stressing collapses the recovered state back into an
 * equivalent stress time, so stress/recover cycles compose sensibly.
 *
 * Calibration note: prefactors are fitted so a fresh device at 60 °C
 * reproduces the paper's Figure 6 envelopes (±[1,2] ps on a 1000 ps
 * route after 200 h, scaling linearly in route length); they are not
 * transferable silicon constants.
 */

#ifndef PENTIMENTO_PHYS_BTI_HPP
#define PENTIMENTO_PHYS_BTI_HPP

#include <cstdint>

namespace pentimento::phys {

/** The two transistor types in a CMOS pair. */
enum class TransistorType
{
    Nmos,
    Pmos
};

/** The two BTI mechanisms. */
enum class BtiMechanism
{
    Nbti, ///< negative BTI: stresses PMOS while gate sees logic 0
    Pbti  ///< positive BTI: stresses NMOS while gate sees logic 1
};

/** Mechanism that degrades the given transistor type. */
constexpr BtiMechanism
mechanismFor(TransistorType type)
{
    return type == TransistorType::Pmos ? BtiMechanism::Nbti
                                        : BtiMechanism::Pbti;
}

/** Transistor type degraded by the given mechanism. */
constexpr TransistorType
transistorFor(BtiMechanism mech)
{
    return mech == BtiMechanism::Nbti ? TransistorType::Pmos
                                      : TransistorType::Nmos;
}

/**
 * True when a held logic value stresses the given transistor type.
 *
 * A route held at logic 1 stresses its NMOS pass devices (PBTI); a
 * route held at logic 0 stresses its PMOS devices (NBTI).
 */
constexpr bool
valueStresses(bool logic_value, TransistorType type)
{
    return logic_value ? type == TransistorType::Nmos
                       : type == TransistorType::Pmos;
}

/** Kinetic constants of one BTI mechanism. */
struct MechanismParams
{
    /** ΔVth in volts after one effective stress hour (at scale 1). */
    double prefactor_v = 0.0;
    /** Power-law time exponent n. */
    double time_exponent = 0.17;
    /** Recovery half-life style constant tau (effective hours). */
    double recovery_tau_h = 50.0;
    /** Recovery stretch exponent beta. */
    double recovery_beta = 1.0;
    /** Fraction of the shift that never recovers. */
    double permanent_fraction = 0.05;
};

/** Full BTI parameter set for a device family. */
struct BtiParams
{
    MechanismParams nbti;
    MechanismParams pbti;

    /**
     * Activation energy (eV) applied to *stress time* accumulation.
     *
     * Because ΔVth ~ t^n, the apparent activation energy at the ΔVth
     * level is n * Ea; the default yields a ~2.4x ΔVth swing between
     * 25 °C and 85 °C, consistent with the modest-but-real thermal
     * acceleration the paper leans on (§5.1 Arithmetic Heavy heating).
     */
    double stress_activation_ev = 0.8;
    /** Activation energy (eV) for recovery-time accumulation. */
    double recovery_activation_ev = 0.8;
    /** Temperature at which effective hours equal wall-clock hours. */
    double reference_temp_k = 333.15; // 60 C, the paper's oven

    /**
     * Calibration for a Virtex/Zynq UltraScale+ 16 nm part, fitted to
     * the paper's Experiment 1 (new ZCU102, 60 C oven).
     */
    static BtiParams ultrascalePlus();
};

/** Arrhenius acceleration factor relative to a reference temperature. */
double arrheniusAccel(double activation_ev, double temp_k, double ref_k);

/**
 * Per-step kinetics context.
 *
 * The Arrhenius acceleration factors depend only on (params, temp_k),
 * never on the element, so an aging sweep computes them once and
 * shares the context across every element instead of paying two
 * exp() calls per element per step.
 */
struct AgingStepContext
{
    /** Effective-hours multiplier for stress accrual. */
    double stress_accel = 1.0;
    /** Effective-hours multiplier for recovery accrual. */
    double recovery_accel = 1.0;

    AgingStepContext() = default;
    AgingStepContext(const BtiParams &params, double temperature_k);

    /** Same acceleration pair (used to coalesce timeline segments). */
    bool
    operator==(const AgingStepContext &other) const
    {
        return stress_accel == other.stress_accel &&
               recovery_accel == other.recovery_accel;
    }
};

/**
 * Memo of the last AgingStepContext by (params identity, temperature).
 *
 * A device steps at one temperature for hours at a time (ovens pin it
 * outright; the package model changes it only when the ambient or the
 * dissipated power moves), so consecutive advance() calls would
 * otherwise recompute the same two exp() factors. The cache compares
 * the parameter block by address and the temperature bitwise, which
 * is exact: a hit returns the identical context a fresh construction
 * would produce.
 */
class StepContextCache
{
  public:
    /** Context for (params, temp_k), recomputed only on change. */
    const AgingStepContext &get(const BtiParams &params, double temp_k);

    /** Number of cache misses so far (tests / diagnostics). */
    std::uint64_t misses() const { return misses_; }

  private:
    const BtiParams *params_ = nullptr;
    double temp_k_ = 0.0;
    AgingStepContext ctx_;
    std::uint64_t misses_ = 0;
};

/**
 * Aging state of a single transistor.
 *
 * The state is intentionally tiny (two doubles) because a simulated
 * device instantiates one per transistor across the whole fabric.
 */
class BtiState
{
  public:
    /**
     * Accrue stress.
     *
     * Any outstanding recovery is first collapsed into an equivalent
     * stress time so the power law resumes from the current ΔVth.
     *
     * @param p mechanism constants
     * @param scale per-element prefactor multiplier (variation * age)
     * @param dt_eff_h effective stress hours (wall hours * Arrhenius
     *        factor * duty)
     */
    void applyStress(const MechanismParams &p, double scale,
                     double dt_eff_h);

    /**
     * Accrue recovery (transistor unstressed).
     *
     * @param p mechanism constants
     * @param dt_eff_h effective recovery hours
     */
    void applyRecovery(const MechanismParams &p, double dt_eff_h);

    /**
     * Present threshold shift in volts. Header-inline: the pristine
     * early-out makes un-aged elements nearly free on route walks.
     */
    double
    deltaVth(const MechanismParams &p, double scale) const
    {
        if (stress_eff_h_ <= 0.0) {
            return 0.0;
        }
        return deltaVthStressed(p, scale);
    }

    /** Accumulated effective stress hours. */
    double stressHours() const { return stress_eff_h_; }

    /** Effective recovery hours since stress last ended. */
    double recoveryHours() const { return recovery_eff_h_; }

    /** True when the transistor has never been stressed. */
    bool pristine() const { return stress_eff_h_ == 0.0; }

    /** Restore checkpointed effective hours bit-exactly. */
    void
    restoreHours(double stress_eff_h, double recovery_eff_h)
    {
        stress_eff_h_ = stress_eff_h;
        recovery_eff_h_ = recovery_eff_h;
    }

  private:
    /** deltaVth's slow path (pow + recovery window). */
    double deltaVthStressed(const MechanismParams &p,
                            double scale) const;

    double stress_eff_h_ = 0.0;
    double recovery_eff_h_ = 0.0;
};

/**
 * Derating of *fresh* BTI contrast on an already-worn device.
 *
 * Cloud FPGAs are years old; the paper observes roughly 5-10x smaller
 * burn-in amplitudes on AWS F1 than on the factory-new ZCU102
 * (Figure 7 vs Figure 6) and attributes it to device age. We model the
 * reduced availability of fresh traps as a multiplicative derating of
 * the stress prefactor:
 *
 *     scale(age) = (1 + age_h / tau_age)^(-m)
 *
 * calibrated to ~0.36 after one year and ~0.15 after four years of
 * service.
 */
struct DeviceAgeModel
{
    double tau_age_h = 3000.0;
    double exponent = 0.75;

    /** Fresh-stress prefactor multiplier for a device of given age. */
    double freshStressScale(double age_hours) const;
};

} // namespace pentimento::phys

#endif // PENTIMENTO_PHYS_BTI_HPP
