#include "phys/thermal.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace pentimento::phys {

OvenEnvironment::OvenEnvironment(double temp_k) : temp_k_(temp_k)
{
    if (temp_k <= 0.0) {
        util::fatal("OvenEnvironment: non-positive absolute temperature");
    }
}

double
OvenEnvironment::step(double power_w, double dt_h)
{
    (void)power_w;
    (void)dt_h;
    return temp_k_;
}

PackageThermalModel::PackageThermalModel(double ambient_k,
                                         double r_thermal_k_per_w,
                                         double tau_h)
    : ambient_k_(ambient_k), r_thermal_(r_thermal_k_per_w), tau_h_(tau_h),
      die_k_(ambient_k)
{
    if (ambient_k <= 0.0) {
        util::fatal("PackageThermalModel: non-positive ambient");
    }
    if (r_thermal_ < 0.0 || tau_h_ <= 0.0) {
        util::fatal("PackageThermalModel: bad thermal constants");
    }
}

double
PackageThermalModel::step(double power_w, double dt_h)
{
    if (power_w < 0.0 || dt_h < 0.0) {
        util::fatal("PackageThermalModel::step: negative input");
    }
    const double target = ambient_k_ + r_thermal_ * power_w;
    if (fullyRelaxes(dt_h)) {
        // exp(-64) ~ 1.6e-28: for any kelvin-scale target and die
        // offset the residual term is far below target's ulp, so the
        // closed-form result rounds to the target exactly — same bits
        // as the exponential path, without the exp().
        die_k_ = target;
        return die_k_;
    }
    const double decay = std::exp(-dt_h / tau_h_);
    die_k_ = target + (die_k_ - target) * decay;
    return die_k_;
}

} // namespace pentimento::phys
