/**
 * @file
 * Per-element aging aggregate.
 *
 * An FPGA routing element is modelled as a complementary PMOS/NMOS
 * pair; ElementAging bundles the two BtiStates with the per-element
 * susceptibility scale and exposes the three ways a resource spends
 * simulated time: statically holding a value (the paper's burn-in
 * condition), toggling (Arithmetic Heavy style activity), or released
 * (unconfigured / wiped).
 */

#ifndef PENTIMENTO_PHYS_AGING_HPP
#define PENTIMENTO_PHYS_AGING_HPP

#include "phys/bti.hpp"

namespace pentimento::phys {

/**
 * Combined NBTI/PBTI aging state of one routing element.
 */
class ElementAging
{
  public:
    /** Set the per-element susceptibility (variation * device age). */
    void setScale(double scale) { scale_ = scale; }

    /** Per-element susceptibility multiplier. */
    double scale() const { return scale_; }

    /**
     * Hold a static logic value for dt wall-clock hours.
     *
     * The stressed transistor accrues effective stress time; the
     * complementary transistor accrues recovery time.
     */
    void holdStatic(const BtiParams &p, bool value, double temp_k,
                    double dt_h);

    /**
     * holdStatic with the Arrhenius factors precomputed — the form
     * aging sweeps use so the exp() calls are paid once per step, not
     * once per element.
     */
    void holdStatic(const BtiParams &p, const AgingStepContext &ctx,
                    bool value, double dt_h);

    /**
     * Carry a toggling signal for dt hours.
     *
     * @param duty_one fraction of time the signal is at logic 1
     */
    void holdToggling(const BtiParams &p, double duty_one, double temp_k,
                      double dt_h);

    /** holdToggling with the Arrhenius factors precomputed. */
    void holdToggling(const BtiParams &p, const AgingStepContext &ctx,
                      double duty_one, double dt_h);

    /**
     * Element unconfigured (design wiped / slice left empty): both
     * transistors recover.
     */
    void release(const BtiParams &p, double temp_k, double dt_h);

    /** release with the Arrhenius factors precomputed. */
    void release(const BtiParams &p, const AgingStepContext &ctx,
                 double dt_h);

    /**
     * Pre-reduced forms: the caller supplies the *effective* stress
     * and recovery hours already summed over a run of constant-
     * activity segments (Σ duration·accel), so a run of any length is
     * one state update. Identical state-machine transitions to the
     * per-segment forms — the single difference is the association of
     * the effective-hour sums.
     */
    void holdStaticEffective(const BtiParams &p, bool value,
                             double stress_eff_h, double recovery_eff_h);
    void holdTogglingEffective(const BtiParams &p, double duty_one,
                               double stress_eff_h);
    void releaseEffective(const BtiParams &p, double recovery_eff_h);

    /** Threshold shift of the chosen transistor, in volts.
     *  Header-inline: innermost call of every aged-delay read. */
    double
    deltaVth(const BtiParams &p, TransistorType type) const
    {
        if (type == TransistorType::Nmos) {
            return nmos_.deltaVth(p.pbti, scale_);
        }
        return pmos_.deltaVth(p.nbti, scale_);
    }

    /**
     * Both transistors' threshold shifts in one call — the form the
     * ΔVth epoch cache fills. Each value is bit-identical to the
     * corresponding deltaVth(p, type) call.
     */
    void
    deltaVthPair(const BtiParams &p, double &nmos_v, double &pmos_v) const
    {
        nmos_v = nmos_.deltaVth(p.pbti, scale_);
        pmos_v = pmos_.deltaVth(p.nbti, scale_);
    }

    /** Direct access for tests and persistence. */
    const BtiState &state(TransistorType type) const;

    /** Mutable access for checkpoint restore. */
    BtiState &
    state(TransistorType type)
    {
        return type == TransistorType::Nmos ? nmos_ : pmos_;
    }

  private:
    BtiState nmos_;
    BtiState pmos_;
    double scale_ = 1.0;
};

} // namespace pentimento::phys

#endif // PENTIMENTO_PHYS_AGING_HPP
