#include "phys/aging.hpp"

#include "util/logging.hpp"

namespace pentimento::phys {

void
ElementAging::holdStatic(const BtiParams &p, bool value, double temp_k,
                         double dt_h)
{
    const double s_acc =
        arrheniusAccel(p.stress_activation_ev, temp_k, p.reference_temp_k);
    const double r_acc = arrheniusAccel(p.recovery_activation_ev, temp_k,
                                        p.reference_temp_k);
    if (value) {
        // Logic 1 stresses NMOS pass devices (PBTI); the PMOS side
        // recovers.
        nmos_.applyStress(p.pbti, scale_, dt_h * s_acc);
        pmos_.applyRecovery(p.nbti, dt_h * r_acc);
    } else {
        pmos_.applyStress(p.nbti, scale_, dt_h * s_acc);
        nmos_.applyRecovery(p.pbti, dt_h * r_acc);
    }
}

void
ElementAging::holdToggling(const BtiParams &p, double duty_one,
                           double temp_k, double dt_h)
{
    if (duty_one < 0.0 || duty_one > 1.0) {
        util::fatal("ElementAging::holdToggling: duty outside [0,1]");
    }
    const double s_acc =
        arrheniusAccel(p.stress_activation_ev, temp_k, p.reference_temp_k);
    // A toggling node spends duty_one of the interval stressing the
    // NMOS and the rest stressing the PMOS. Interleaved micro-recovery
    // during the opposite half-cycles is folded into the effective
    // stress times (AC stress factor).
    nmos_.applyStress(p.pbti, scale_, dt_h * s_acc * duty_one);
    pmos_.applyStress(p.nbti, scale_, dt_h * s_acc * (1.0 - duty_one));
}

void
ElementAging::release(const BtiParams &p, double temp_k, double dt_h)
{
    const double r_acc = arrheniusAccel(p.recovery_activation_ev, temp_k,
                                        p.reference_temp_k);
    nmos_.applyRecovery(p.pbti, dt_h * r_acc);
    pmos_.applyRecovery(p.nbti, dt_h * r_acc);
}

double
ElementAging::deltaVth(const BtiParams &p, TransistorType type) const
{
    if (type == TransistorType::Nmos) {
        return nmos_.deltaVth(p.pbti, scale_);
    }
    return pmos_.deltaVth(p.nbti, scale_);
}

const BtiState &
ElementAging::state(TransistorType type) const
{
    return type == TransistorType::Nmos ? nmos_ : pmos_;
}

} // namespace pentimento::phys
