#include "phys/aging.hpp"

#include "util/logging.hpp"

namespace pentimento::phys {

void
ElementAging::holdStatic(const BtiParams &p, bool value, double temp_k,
                         double dt_h)
{
    holdStatic(p, AgingStepContext(p, temp_k), value, dt_h);
}

void
ElementAging::holdStatic(const BtiParams &p, const AgingStepContext &ctx,
                         bool value, double dt_h)
{
    if (value) {
        // Logic 1 stresses NMOS pass devices (PBTI); the PMOS side
        // recovers.
        nmos_.applyStress(p.pbti, scale_, dt_h * ctx.stress_accel);
        pmos_.applyRecovery(p.nbti, dt_h * ctx.recovery_accel);
    } else {
        pmos_.applyStress(p.nbti, scale_, dt_h * ctx.stress_accel);
        nmos_.applyRecovery(p.pbti, dt_h * ctx.recovery_accel);
    }
}

void
ElementAging::holdToggling(const BtiParams &p, double duty_one,
                           double temp_k, double dt_h)
{
    holdToggling(p, AgingStepContext(p, temp_k), duty_one, dt_h);
}

void
ElementAging::holdToggling(const BtiParams &p,
                           const AgingStepContext &ctx, double duty_one,
                           double dt_h)
{
    if (duty_one < 0.0 || duty_one > 1.0) {
        util::fatal("ElementAging::holdToggling: duty outside [0,1]");
    }
    // A toggling node spends duty_one of the interval stressing the
    // NMOS and the rest stressing the PMOS. Interleaved micro-recovery
    // during the opposite half-cycles is folded into the effective
    // stress times (AC stress factor).
    nmos_.applyStress(p.pbti, scale_,
                      dt_h * ctx.stress_accel * duty_one);
    pmos_.applyStress(p.nbti, scale_,
                      dt_h * ctx.stress_accel * (1.0 - duty_one));
}

void
ElementAging::release(const BtiParams &p, double temp_k, double dt_h)
{
    release(p, AgingStepContext(p, temp_k), dt_h);
}

void
ElementAging::release(const BtiParams &p, const AgingStepContext &ctx,
                      double dt_h)
{
    nmos_.applyRecovery(p.pbti, dt_h * ctx.recovery_accel);
    pmos_.applyRecovery(p.nbti, dt_h * ctx.recovery_accel);
}

void
ElementAging::holdStaticEffective(const BtiParams &p, bool value,
                                  double stress_eff_h,
                                  double recovery_eff_h)
{
    if (value) {
        nmos_.applyStress(p.pbti, scale_, stress_eff_h);
        pmos_.applyRecovery(p.nbti, recovery_eff_h);
    } else {
        pmos_.applyStress(p.nbti, scale_, stress_eff_h);
        nmos_.applyRecovery(p.pbti, recovery_eff_h);
    }
}

void
ElementAging::holdTogglingEffective(const BtiParams &p, double duty_one,
                                    double stress_eff_h)
{
    if (duty_one < 0.0 || duty_one > 1.0) {
        util::fatal(
            "ElementAging::holdTogglingEffective: duty outside [0,1]");
    }
    nmos_.applyStress(p.pbti, scale_, stress_eff_h * duty_one);
    pmos_.applyStress(p.nbti, scale_, stress_eff_h * (1.0 - duty_one));
}

void
ElementAging::releaseEffective(const BtiParams &p, double recovery_eff_h)
{
    nmos_.applyRecovery(p.pbti, recovery_eff_h);
    pmos_.applyRecovery(p.nbti, recovery_eff_h);
}

const BtiState &
ElementAging::state(TransistorType type) const
{
    return type == TransistorType::Nmos ? nmos_ : pmos_;
}

} // namespace pentimento::phys
