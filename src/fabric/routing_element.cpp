#include "fabric/routing_element.hpp"

#include "util/logging.hpp"

namespace pentimento::fabric {

RoutingElement::RoutingElement(ResourceId id, double base_rise_ps,
                               double base_fall_ps,
                               const phys::ElementVariation &variation,
                               double fresh_scale)
    : id_(id), base_rise_ps_(base_rise_ps * variation.rise_mult),
      base_fall_ps_(base_fall_ps * variation.fall_mult)
{
    if (base_rise_ps <= 0.0 || base_fall_ps <= 0.0) {
        util::fatal("RoutingElement: non-positive base delay");
    }
    aging_.setScale(variation.bti_mult * fresh_scale);
}

double
RoutingElement::basePs(phys::Transition t) const
{
    return t == phys::Transition::Rising ? base_rise_ps_ : base_fall_ps_;
}

double
RoutingElement::delayPs(const phys::BtiParams &bti,
                        const phys::DelayParams &dp, phys::Transition t,
                        double temp_k) const
{
    return delayPsFactored(bti, dp, t, dp.temperatureFactor(t, temp_k));
}

void
RoutingElement::age(const phys::BtiParams &bti,
                    const ElementActivity &activity, double temp_k,
                    double dt_h)
{
    age(bti, phys::AgingStepContext(bti, temp_k), activity, dt_h);
}

void
RoutingElement::age(const phys::BtiParams &bti,
                    const phys::AgingStepContext &ctx,
                    const ElementActivity &activity, double dt_h)
{
    switch (activity.kind) {
      case Activity::Hold0:
        aging_.holdStatic(bti, ctx, false, dt_h);
        break;
      case Activity::Hold1:
        aging_.holdStatic(bti, ctx, true, dt_h);
        break;
      case Activity::Toggle:
        aging_.holdToggling(bti, ctx, activity.duty_one, dt_h);
        break;
      case Activity::Unused:
        aging_.release(bti, ctx, dt_h);
        break;
    }
}

void
RoutingElement::ageEffective(const phys::BtiParams &bti,
                             const ElementActivity &activity,
                             double stress_eff_h, double recovery_eff_h)
{
    switch (activity.kind) {
      case Activity::Hold0:
        aging_.holdStaticEffective(bti, false, stress_eff_h,
                                   recovery_eff_h);
        break;
      case Activity::Hold1:
        aging_.holdStaticEffective(bti, true, stress_eff_h,
                                   recovery_eff_h);
        break;
      case Activity::Toggle:
        aging_.holdTogglingEffective(bti, activity.duty_one,
                                     stress_eff_h);
        break;
      case Activity::Unused:
        aging_.releaseEffective(bti, recovery_eff_h);
        break;
    }
}

double
RoutingElement::deltaVth(const phys::BtiParams &bti,
                         phys::TransistorType type) const
{
    return aging_.deltaVth(bti, type);
}

} // namespace pentimento::fabric
