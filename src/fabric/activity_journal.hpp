/**
 * @file
 * Per-design activity journal: deferred element materialisation.
 *
 * Eagerly materialising every element a tenant design configures —
 * variation sampling plus a slab insert per element, then a timeline
 * replay per activity flip — is the dominant cost of tenancy turnover
 * in fleet-scale campaigns, even though most configured elements are
 * never measured. The journal removes the AgingStore from the
 * load/wipe path entirely: a design load or wipe appends one
 * (timeline-position, activity) *run* per key whose activity actually
 * flips, in O(1) per key, and the element is materialised only at
 * first observation (a Route/Tdc bind, an element() read, a
 * service-wear sweep). Materialisation replays the recorded runs
 * against the device's AgingTimeline with the same per-segment /
 * pre-reduced arithmetic an eagerly materialised element would have
 * used at each flip, so aged delays are bit-identical — laziness is
 * unobservable except through materializedCount()-class diagnostics.
 *
 * Layout: a flat open-addressing key table (the AgingStore index
 * idiom — keys are never erased, linear probing, no tombstones). The
 * first two runs — the whole configure/release lifecycle of a
 * typical unmeasured tenancy — live INLINE in the slot, so the
 * record path costs one probe and one cache line with no per-key
 * heap allocation at all; third and later runs (mitigation flip
 * churn) spill into a linked arena. Consuming a key at
 * materialisation marks the slot spent; spilled runs become garbage
 * bounded by the number of flips ever recorded.
 *
 * Thread-safety: none. All writers (design load/wipe, element
 * materialisation) run in exclusive phases by the Device's existing
 * contract; the concurrent measurement fan-out only syncs handles
 * whose journal entries were consumed at bind time.
 */

#ifndef PENTIMENTO_FABRIC_ACTIVITY_JOURNAL_HPP
#define PENTIMENTO_FABRIC_ACTIVITY_JOURNAL_HPP

#include <cstdint>
#include <type_traits>
#include <vector>

#include "fabric/routing_element.hpp"

namespace pentimento::util {
class SnapshotWriter;
class SnapshotReader;
} // namespace pentimento::util

namespace pentimento::fabric {

/** One constant-activity run of a journaled (deferred) element. */
struct JournalRun
{
    /** Closed-segment timeline position the run starts at. */
    std::uint32_t from = 0;
    /** Activity in effect from `from` until the next run (or now). */
    ElementActivity activity;
};

/**
 * Keyed flip log for elements that are configured but not yet
 * materialised.
 */
class ActivityJournal
{
  public:
    /**
     * Journaled activity currently in effect for a key. Unused for
     * keys never journaled or already consumed (consumed keys are
     * materialised — the Device consults its live-activity arrays for
     * those, never the journal).
     */
    ElementActivity current(std::uint64_t key) const;

    /**
     * Append a run iff it is a flip: `key` behaves as `activity` from
     * timeline position `pos` on. Returns false (and records nothing)
     * when `activity` already equals the key's current journaled
     * activity — including the released/never-journaled case — so the
     * caller can mirror the eager path's flip detection with a single
     * probe per key. `pos` is the position the flip boundary WILL
     * have once the caller closes the open segment (callers
     * anticipate it as position() + openPending(), then close iff any
     * flip was recorded — exactly the eager close condition).
     * Recording against a consumed (materialised) key is a caller
     * bug and fatals: its activity lives in the device's live arrays.
     *
     * Header-inline: one call per configured key per design load and
     * wipe IS the tenancy-turnover hot path, and the two-inline-run
     * slot keeps the common case to a single cache line.
     */
    bool
    recordIfChanged(std::uint64_t key, ElementActivity activity,
                    std::uint32_t pos)
    {
        // Keep the load factor under 1/2 so probe runs stay short
        // (grown up front: this is the record path's single probe).
        if (2 * (used_ + 1) > slots_.size()) {
            grow();
        }
        Slot &slot = slots_[probe(key)];
        if (slot.count == 0) {
            if (activity == ElementActivity{}) {
                // Releasing a never-journaled key: no flip.
                return false;
            }
            slot.key = key;
            slot.runs[0] = pack(pos, activity);
            slot.count = 1;
            ++used_;
            ++active_;
            if (cached_min_ != kNpos && pos < cached_min_) {
                cached_min_ = pos;
            }
            return true;
        }
        if (slot.count <= 2) {
            if (sameActivity(slot.runs[slot.count - 1], activity)) {
                return false;
            }
            if (slot.count < 2) {
                slot.runs[1] = pack(pos, activity);
                slot.count = 2;
                return true;
            }
        }
        return recordOverflow(slot, activity, pos);
    }

    /**
     * Pre-size the table for `expected_keys` journaled keys (e.g. the
     * configured-element count of an incoming design), so a design
     * load grows the table at most once instead of doubling through
     * it mid-loop.
     */
    void reserve(std::size_t expected_keys);

    /**
     * Move a key's runs out, oldest first, and mark the key consumed
     * (it is being materialised). Returns an empty vector for keys
     * never journaled.
     */
    std::vector<JournalRun> consume(std::uint64_t key);

    /** Number of keys journaled and not yet consumed. */
    std::size_t activeKeyCount() const { return active_; }

    /** Keys journaled and not yet consumed, in table order. */
    std::vector<std::uint64_t> activeKeys() const;

    /**
     * Smallest timeline position any active key still needs for its
     * replay (the compaction pin). Returns `fallback` when no key is
     * active. O(1) while no key has been consumed since the last
     * query (the memoised min only falls or rebases); recomputed
     * lazily otherwise.
     */
    std::uint32_t minActivePosition(std::uint32_t fallback) const;

    /**
     * Shift every active run's position down by `delta` after the
     * timeline dropped `delta` consumed segments.
     */
    void rebase(std::uint32_t delta);

    /**
     * Serialize the journal into the writer's current chunk as an
     * exact structural clone: table geometry, occupied slots at their
     * probe positions (spent markers included — recording against a
     * consumed key must still be detected after a restore), the spill
     * arena with its chain links, and the memoised compaction pin.
     */
    void saveState(util::SnapshotWriter &writer) const;

    /**
     * Restore into a fresh journal from the reader's current chunk.
     * Structural corruption (out-of-range slot indices, broken chain
     * links, impossible counts) poisons the reader; returns ok().
     */
    bool restoreState(util::SnapshotReader &reader);

  private:
    static constexpr std::uint32_t kNpos =
        static_cast<std::uint32_t>(-1);
    /** Slot::count value marking a consumed (materialised) key. */
    static constexpr std::uint32_t kSpent =
        static_cast<std::uint32_t>(-2);

    /**
     * Trivially-copyable JournalRun so the Slot stays a POD: a
     * freshly grown table must be zero-fillable (memset), not
     * constructor-initialised — at fleet scale the rehash's
     * value-initialisation otherwise dominates the whole record path.
     * kind == 0 is Activity::Unused, so zero-filled slots read as
     * empty/benign.
     */
    struct RawRun
    {
        std::uint32_t from;
        Activity kind;
        double duty_one;
    };

    static RawRun
    pack(std::uint32_t from, const ElementActivity &activity)
    {
        return RawRun{from, activity.kind, activity.duty_one};
    }

    static JournalRun
    unpack(const RawRun &raw)
    {
        return JournalRun{raw.from,
                          ElementActivity{raw.kind, raw.duty_one}};
    }

    static bool
    sameActivity(const RawRun &raw, const ElementActivity &activity)
    {
        return raw.kind == activity.kind &&
               raw.duty_one == activity.duty_one;
    }

    /**
     * Key-table slot, trivial and probe-ordered: the probe loop reads
     * only the leading key/count fields; the run payload sits behind
     * them. The first two runs are inline — a tenancy that configures
     * and releases a key never touches the arena — and runs three and
     * up chain through arena nodes at `head`/`tail` (meaningful only
     * when count > 2; zero elsewhere). count == 0 marks an empty
     * slot, count == kSpent a consumed key.
     */
    struct Slot
    {
        std::uint64_t key;
        std::uint32_t count;
        std::uint32_t head;
        std::uint32_t tail;
        RawRun runs[2];
    };
    static_assert(std::is_trivially_copyable_v<Slot>);

    /** Arena node: an overflow run plus its chain link. */
    struct Node
    {
        RawRun run;
        std::uint32_t next;
    };

    static std::uint64_t
    hashKey(std::uint64_t key)
    {
        // splitmix64 finaliser, as in the AgingStore index.
        key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ULL;
        key = (key ^ (key >> 27)) * 0x94d049bb133111ebULL;
        return key ^ (key >> 31);
    }

    /** Probe for key; returns slot index or the empty slot to fill. */
    std::size_t
    probe(std::uint64_t key) const
    {
        const std::size_t mask = slots_.size() - 1;
        std::size_t i = hashKey(key) & mask;
        while (slots_[i].count != 0 && slots_[i].key != key) {
            i = (i + 1) & mask;
        }
        return i;
    }

    /** Double (or bootstrap) the probe table. */
    void grow();

    /** Grow until `total` keys fit under the 1/2 load factor. */
    void growFor(std::size_t total);

    /** Cold path of recordIfChanged: spent-key fatal and third-and-up
     *  runs (arena spill). */
    bool recordOverflow(Slot &slot, const ElementActivity &activity,
                        std::uint32_t pos);

    /** The key's most recent run (count != 0 and not spent). */
    const RawRun &lastRun(const Slot &slot) const;

    std::vector<Slot> slots_;
    std::vector<Node> arena_;
    std::size_t used_ = 0;
    std::size_t active_ = 0;
    /** Memoised minActivePosition: first-run positions only fall
     *  (rebase) or extend (new keys), so the min is maintained O(1)
     *  until a consume() may raise it — then it recomputes lazily.
     *  kNpos = unknown (recompute on next query). */
    mutable std::uint32_t cached_min_ = kNpos;
};

} // namespace pentimento::fabric

#endif // PENTIMENTO_FABRIC_ACTIVITY_JOURNAL_HPP
