/**
 * @file
 * The device's segment timeline: deferred aging time.
 *
 * Instead of eagerly sweeping every materialised element once per
 * simulated hour, a Device records *segments* — (duration, Arrhenius
 * acceleration pair) — and each element replays the segments it has
 * not yet consumed only when something actually observes or changes
 * it. This is mathematically exact because BtiState accumulates
 * *effective hours* additively, and it is numerically exact for any
 * step partition because consecutive advance() calls at the same
 * acceleration extend one open segment's duration (compensated
 * summation) and the duration-times-acceleration multiply happens
 * once, at replay: 200 hourly steps and one 200-hour jump both hand
 * an element the identical `duration * accel` effective time.
 *
 * Timeline positions are indices into the closed-segment list. The
 * open segment is closed (made replayable) by the first observation —
 * an element sync, an activity flip, a service-wear sweep — after
 * which new time opens a fresh segment. Elements that materialise
 * mid-timeline may safely start at position 0: a pristine element
 * replays pre-birth segments as released-recovery, which is a no-op.
 */

#ifndef PENTIMENTO_FABRIC_AGING_TIMELINE_HPP
#define PENTIMENTO_FABRIC_AGING_TIMELINE_HPP

#include <cstdint>
#include <mutex>
#include <vector>

#include "phys/bti.hpp"
#include "util/compensated.hpp"

namespace pentimento::fabric {

/** One closed, replayable span of constant-acceleration time. */
struct AgingSegment
{
    /** Wall-clock duration, hours (compensated sum of the steps). */
    double duration_h = 0.0;
    /** Arrhenius stress/recovery factors in effect over the span. */
    phys::AgingStepContext ctx;
};

/**
 * Pre-reduced effective hours of a run of closed segments.
 *
 * BtiState accrues *effective hours* additively, and between two
 * activity flips an element's activity is constant, so a run of n
 * segments collapses into one pair of totals: Σ duration·stress_accel
 * and Σ duration·recovery_accel. Applying the totals once replaces n
 * per-segment updates — this is what makes replaying months of
 * varying-ambient cloud segments O(1) per element. The totals are a
 * pure function of the segment contents (plain left-to-right sums),
 * so they are partition-invariant exactly like the segments
 * themselves; relative to one-update-per-segment replay they
 * re-associate the floating-point sums, which long-run callers accept
 * (short runs replay per segment so bit-exact goldens are untouched).
 */
struct RunTotals
{
    double stress_eff_h = 0.0;
    double recovery_eff_h = 0.0;
};

/**
 * Closed segments plus one open (still-extending) segment.
 */
class AgingTimeline
{
  public:
    /**
     * Record dt hours at the given kinetics. Extends the open segment
     * when the acceleration pair is unchanged, otherwise closes it
     * and opens a new one. O(1).
     */
    void
    append(double dt_h, const phys::AgingStepContext &ctx)
    {
        if (!open_valid_ || !(open_ctx_ == ctx)) {
            close();
            open_ctx_ = ctx;
            open_valid_ = true;
        }
        open_h_.add(dt_h);
    }

    /**
     * Close the open segment so its time becomes replayable. Called
     * by the first observation after time passed; a zero-duration
     * open segment is dropped.
     */
    void
    close()
    {
        if (!open_valid_) {
            return;
        }
        const double d = open_h_.value();
        if (d > 0.0) {
            closed_.push_back(AgingSegment{d, open_ctx_});
        }
        open_h_.reset();
        open_valid_ = false;
    }

    /** True when un-closed time is pending. */
    bool
    openPending() const
    {
        return open_valid_ && open_h_.value() > 0.0;
    }

    /** Number of closed segments (== the "current" position). */
    std::uint32_t
    position() const
    {
        return static_cast<std::uint32_t>(closed_.size());
    }

    /** Closed segments, oldest first. */
    const std::vector<AgingSegment> &closed() const { return closed_; }

    /**
     * Drop the oldest `count` closed segments (every consumer has
     * replayed them); callers rebase their positions by `count`.
     */
    void
    dropConsumed(std::uint32_t count)
    {
        closed_.erase(closed_.begin(),
                      closed_.begin() + static_cast<std::ptrdiff_t>(
                                            count));
        ++revision_;
    }

    /**
     * Effective-hour totals of closed segments [from, to).
     *
     * O(run length) on the first request for a range, O(1) for every
     * element that shares it afterwards — flips and measurement syncs
     * replay whole route/design cohorts whose elements share their
     * last-sync position, so the memo turns an
     * O(elements × segments) flush into O(elements + segments).
     * Thread-safe: concurrent replays (parallel service-wear sweeps)
     * hit the memo under its own mutex.
     */
    RunTotals
    runTotals(std::uint32_t from, std::uint32_t to) const
    {
        const std::lock_guard<std::mutex> lock(memo_mutex_);
        if (memo_valid_ && memo_revision_ == revision_ &&
            memo_from_ == from && memo_to_ == to) {
            return memo_totals_;
        }
        RunTotals totals;
        for (std::uint32_t k = from; k < to; ++k) {
            const AgingSegment &seg = closed_[k];
            totals.stress_eff_h +=
                seg.duration_h * seg.ctx.stress_accel;
            totals.recovery_eff_h +=
                seg.duration_h * seg.ctx.recovery_accel;
        }
        memo_totals_ = totals;
        memo_from_ = from;
        memo_to_ = to;
        memo_revision_ = revision_;
        memo_valid_ = true;
        return totals;
    }

    /**
     * Persistence accessors: the open segment's raw accumulator parts
     * must round-trip (its compensation term feeds future append()s),
     * and open_valid_ must survive even at zero duration — a valid
     * zero-duration open segment pins the *context*, which decides
     * whether the next append() extends or closes.
     */
    bool openValid() const { return open_valid_; }
    const phys::AgingStepContext &openContext() const { return open_ctx_; }
    const util::CompensatedSum &openHours() const { return open_h_; }

    /** Restore into a fresh timeline; memo and revision start cold. */
    void
    restoreState(std::vector<AgingSegment> closed,
                 const phys::AgingStepContext &open_ctx, double open_sum,
                 double open_comp, bool open_valid)
    {
        closed_ = std::move(closed);
        open_ctx_ = open_ctx;
        open_h_.restoreParts(open_sum, open_comp);
        open_valid_ = open_valid;
        revision_ = 0;
        memo_valid_ = false;
    }

  private:
    std::vector<AgingSegment> closed_;
    phys::AgingStepContext open_ctx_;
    util::CompensatedSum open_h_;
    bool open_valid_ = false;
    /** Bumped whenever closed-segment indices shift (compaction). */
    std::uint64_t revision_ = 0;
    /** Single-range memo for runTotals (guarded by memo_mutex_). */
    mutable std::mutex memo_mutex_;
    mutable RunTotals memo_totals_;
    mutable std::uint32_t memo_from_ = 0;
    mutable std::uint32_t memo_to_ = 0;
    mutable std::uint64_t memo_revision_ = 0;
    mutable bool memo_valid_ = false;
};

} // namespace pentimento::fabric

#endif // PENTIMENTO_FABRIC_AGING_TIMELINE_HPP
