/**
 * @file
 * The device's segment timeline: deferred aging time.
 *
 * Instead of eagerly sweeping every materialised element once per
 * simulated hour, a Device records *segments* — (duration, Arrhenius
 * acceleration pair) — and each element replays the segments it has
 * not yet consumed only when something actually observes or changes
 * it. This is mathematically exact because BtiState accumulates
 * *effective hours* additively, and it is numerically exact for any
 * step partition because consecutive advance() calls at the same
 * acceleration extend one open segment's duration (compensated
 * summation) and the duration-times-acceleration multiply happens
 * once, at replay: 200 hourly steps and one 200-hour jump both hand
 * an element the identical `duration * accel` effective time.
 *
 * Timeline positions are indices into the closed-segment list. The
 * open segment is closed (made replayable) by the first observation —
 * an element sync, an activity flip, a service-wear sweep — after
 * which new time opens a fresh segment. Elements that materialise
 * mid-timeline may safely start at position 0: a pristine element
 * replays pre-birth segments as released-recovery, which is a no-op.
 */

#ifndef PENTIMENTO_FABRIC_AGING_TIMELINE_HPP
#define PENTIMENTO_FABRIC_AGING_TIMELINE_HPP

#include <cstdint>
#include <vector>

#include "phys/bti.hpp"
#include "util/compensated.hpp"

namespace pentimento::fabric {

/** One closed, replayable span of constant-acceleration time. */
struct AgingSegment
{
    /** Wall-clock duration, hours (compensated sum of the steps). */
    double duration_h = 0.0;
    /** Arrhenius stress/recovery factors in effect over the span. */
    phys::AgingStepContext ctx;
};

/**
 * Closed segments plus one open (still-extending) segment.
 */
class AgingTimeline
{
  public:
    /**
     * Record dt hours at the given kinetics. Extends the open segment
     * when the acceleration pair is unchanged, otherwise closes it
     * and opens a new one. O(1).
     */
    void
    append(double dt_h, const phys::AgingStepContext &ctx)
    {
        if (!open_valid_ || !(open_ctx_ == ctx)) {
            close();
            open_ctx_ = ctx;
            open_valid_ = true;
        }
        open_h_.add(dt_h);
    }

    /**
     * Close the open segment so its time becomes replayable. Called
     * by the first observation after time passed; a zero-duration
     * open segment is dropped.
     */
    void
    close()
    {
        if (!open_valid_) {
            return;
        }
        const double d = open_h_.value();
        if (d > 0.0) {
            closed_.push_back(AgingSegment{d, open_ctx_});
        }
        open_h_.reset();
        open_valid_ = false;
    }

    /** True when un-closed time is pending. */
    bool
    openPending() const
    {
        return open_valid_ && open_h_.value() > 0.0;
    }

    /** Number of closed segments (== the "current" position). */
    std::uint32_t
    position() const
    {
        return static_cast<std::uint32_t>(closed_.size());
    }

    /** Closed segments, oldest first. */
    const std::vector<AgingSegment> &closed() const { return closed_; }

    /**
     * Drop the oldest `count` closed segments (every consumer has
     * replayed them); callers rebase their positions by `count`.
     */
    void
    dropConsumed(std::uint32_t count)
    {
        closed_.erase(closed_.begin(),
                      closed_.begin() + static_cast<std::ptrdiff_t>(
                                            count));
    }

  private:
    std::vector<AgingSegment> closed_;
    phys::AgingStepContext open_ctx_;
    util::CompensatedSum open_h_;
    bool open_valid_ = false;
};

} // namespace pentimento::fabric

#endif // PENTIMENTO_FABRIC_AGING_TIMELINE_HPP
