/**
 * @file
 * Physical resource naming.
 *
 * Every transistor-bearing site in the simulated fabric has a stable
 * ResourceId (tile coordinates, resource class, index within the
 * tile). Stability matters: aging state is keyed by ResourceId, so a
 * design loaded years later that touches the same physical site sees
 * the imprint left by earlier tenants — the paper's Assumption 1
 * ("the attacker knows the skeleton") is precisely knowledge of these
 * ids.
 */

#ifndef PENTIMENTO_FABRIC_RESOURCE_HPP
#define PENTIMENTO_FABRIC_RESOURCE_HPP

#include <cstdint>
#include <functional>
#include <string>

namespace pentimento::fabric {

/** Classes of transistor-bearing resources modelled in the fabric. */
enum class ResourceType : std::uint8_t
{
    RoutingNode,  ///< programmable interconnect segment + mux
    CarryElement, ///< fast carry-chain stage (CARRY8 style)
    Register,     ///< slice flip-flop
    Lut,          ///< slice look-up table
    Dsp,          ///< DSP block (used by Arithmetic Heavy circuits)
    Bram          ///< block RAM (content-remanence channel)
};

/** Human-readable resource-class name. */
const char *toString(ResourceType type);

/**
 * Stable identifier of one physical resource.
 */
struct ResourceId
{
    std::uint16_t tile_x = 0;
    std::uint16_t tile_y = 0;
    ResourceType type = ResourceType::RoutingNode;
    std::uint16_t index = 0;

    /** Pack into a 64-bit map key. */
    std::uint64_t
    key() const
    {
        return (static_cast<std::uint64_t>(tile_x) << 48) |
               (static_cast<std::uint64_t>(tile_y) << 32) |
               (static_cast<std::uint64_t>(type) << 16) |
               static_cast<std::uint64_t>(index);
    }

    /** Inverse of key(). */
    static ResourceId
    fromKey(std::uint64_t k)
    {
        ResourceId id;
        id.tile_x = static_cast<std::uint16_t>(k >> 48);
        id.tile_y = static_cast<std::uint16_t>(k >> 32);
        id.type = static_cast<ResourceType>((k >> 16) & 0xff);
        id.index = static_cast<std::uint16_t>(k);
        return id;
    }

    bool operator==(const ResourceId &other) const = default;

    /** Vivado-flavoured site string, e.g. "INT_X12Y40/NODE_7". */
    std::string toString() const;
};

} // namespace pentimento::fabric

template <>
struct std::hash<pentimento::fabric::ResourceId>
{
    std::size_t
    operator()(const pentimento::fabric::ResourceId &id) const noexcept
    {
        return std::hash<std::uint64_t>{}(id.key());
    }
};

#endif // PENTIMENTO_FABRIC_RESOURCE_HPP
