/**
 * @file
 * One transistor-bearing fabric element.
 *
 * A routing element stands for a programmable interconnect segment
 * (pass-transistor mux plus buffer) or one carry-chain stage. It owns
 * its base rise/fall delays (with frozen process variation) and its
 * BTI aging state — the aging state is the physical medium of the
 * pentimento.
 */

#ifndef PENTIMENTO_FABRIC_ROUTING_ELEMENT_HPP
#define PENTIMENTO_FABRIC_ROUTING_ELEMENT_HPP

#include <cstdint>

#include "fabric/resource.hpp"
#include "phys/aging.hpp"
#include "phys/delay_model.hpp"
#include "phys/variation.hpp"

namespace pentimento::fabric {

/** What a configured design does with an element over an interval. */
enum class Activity
{
    Unused, ///< not configured: both transistors recover
    Hold0,  ///< statically holds logic 0 (NBTI stress on PMOS)
    Hold1,  ///< statically holds logic 1 (PBTI stress on NMOS)
    Toggle  ///< carries switching data (AC stress on both)
};

/** Activity plus its duty parameter. */
struct ElementActivity
{
    Activity kind = Activity::Unused;
    /** For Toggle: fraction of time at logic 1. */
    double duty_one = 0.5;

    bool
    operator==(const ElementActivity &other) const
    {
        return kind == other.kind && duty_one == other.duty_one;
    }
};

/**
 * A single physical element: delays + aging.
 */
class RoutingElement
{
  public:
    /**
     * @param id physical identity
     * @param base_rise_ps un-aged rising-edge delay (variation baked in)
     * @param base_fall_ps un-aged falling-edge delay
     * @param variation frozen per-element multipliers
     * @param fresh_scale device-age derating of BTI susceptibility
     */
    RoutingElement(ResourceId id, double base_rise_ps, double base_fall_ps,
                   const phys::ElementVariation &variation,
                   double fresh_scale);

    /** Physical identity. */
    const ResourceId &id() const { return id_; }

    /** Un-aged delay for a polarity. */
    double basePs(phys::Transition t) const;

    /**
     * Present delay for a polarity, including BTI shift and
     * temperature.
     */
    double delayPs(const phys::BtiParams &bti, const phys::DelayParams &dp,
                   phys::Transition t, double temp_k) const;

    /**
     * delayPs with the polarity's temperature factor precomputed (the
     * per-element form of a route sweep at one temperature).
     * Header-inline: this is THE per-element operation of every route
     * walk and TDC arrival recompute.
     */
    double
    delayPsFactored(const phys::BtiParams &bti,
                    const phys::DelayParams &dp, phys::Transition t,
                    double temp_factor) const
    {
        const phys::TransistorType limiter =
            phys::limitingTransistor(t);
        const double dvth = aging_.deltaVth(bti, limiter);
        return phys::agedDelayPsFactored(dp, basePs(t), dvth,
                                         temp_factor);
    }

    /**
     * delayPsFactored with the limiting transistor's ΔVth already
     * known — the form walks take when the ΔVth epoch cache hits, so
     * the BTI power law is skipped entirely. Bit-identical to
     * delayPsFactored when dvth_v is the cached deltaVth value.
     */
    double
    delayPsCached(const phys::DelayParams &dp, phys::Transition t,
                  double dvth_v, double temp_factor) const
    {
        return phys::agedDelayPsFactored(dp, basePs(t), dvth_v,
                                         temp_factor);
    }

    /** Both transistors' ΔVth (fills one ΔVth cache entry). */
    void
    deltaVthPair(const phys::BtiParams &bti, double &nmos_v,
                 double &pmos_v) const
    {
        aging_.deltaVthPair(bti, nmos_v, pmos_v);
    }

    /** Advance aging for dt hours under the given activity. */
    void age(const phys::BtiParams &bti, const ElementActivity &activity,
             double temp_k, double dt_h);

    /**
     * age() with the per-step kinetics context precomputed — the form
     * the device's dense aging sweep uses.
     */
    void age(const phys::BtiParams &bti, const phys::AgingStepContext &ctx,
             const ElementActivity &activity, double dt_h);

    /**
     * Apply a whole run of constant-activity segments in one update,
     * given the run's pre-reduced effective stress/recovery hours
     * (Σ duration·accel over the run). The segment-timeline replay
     * uses this for long runs so a flip after months of hourly cloud
     * segments costs O(1) per element instead of O(segments).
     */
    void ageEffective(const phys::BtiParams &bti,
                      const ElementActivity &activity,
                      double stress_eff_h, double recovery_eff_h);

    /** Threshold shift of one transistor (volts). */
    double deltaVth(const phys::BtiParams &bti,
                    phys::TransistorType type) const;

    /** Mutable aging state (tests, pre-wear injection). */
    phys::ElementAging &aging() { return aging_; }

    /** Aging state, read-only. */
    const phys::ElementAging &aging() const { return aging_; }

  private:
    // Deliberately no lazy-timeline bookkeeping here: the device
    // keeps it in handle-indexed side arrays so the element stays a
    // single cache line for the dense measurement walks.
    ResourceId id_;
    double base_rise_ps_;
    double base_fall_ps_;
    phys::ElementAging aging_;
};

} // namespace pentimento::fabric

#endif // PENTIMENTO_FABRIC_ROUTING_ELEMENT_HPP
