/**
 * @file
 * The simulated FPGA device.
 *
 * A Device owns the persistent physical state: every materialised
 * element's process variation and BTI aging, held in a dense
 * AgingStore slab. Designs come and go — loadDesign()/wipe() change
 * only the logical configuration — while aging keyed by ResourceId
 * survives, which is exactly the data remanence the paper exploits.
 * Element variation is a pure function of (device seed, resource id),
 * so materialisation order never changes behaviour and two rentals of
 * the same board see the same silicon.
 *
 * Hot-path structure: consumers (Route, Tdc) resolve ResourceIds to
 * dense element pointers once, at bind time, so measurement sweeps
 * never hash or lock; advance() sweeps the slab densely against a
 * design-aligned activity vector with the Arrhenius factors hoisted
 * into one per-step context. A monotonically increasing *state epoch*
 * (bumped by advance/loadDesign/wipe/applyServiceWear) lets consumers
 * cache anything derived from aged delays and invalidate exactly when
 * the physical state may have moved.
 */

#ifndef PENTIMENTO_FABRIC_DEVICE_HPP
#define PENTIMENTO_FABRIC_DEVICE_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fabric/aging_store.hpp"
#include "fabric/design.hpp"
#include "fabric/resource.hpp"
#include "fabric/route.hpp"
#include "fabric/routing_element.hpp"
#include "phys/bti.hpp"
#include "phys/thermal.hpp"
#include "phys/variation.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace pentimento::fabric {

/** Static description of a device family + instance. */
struct DeviceConfig
{
    /** Family name, e.g. "xcvu9p" (AWS F1) or "xczu9eg" (ZCU102). */
    std::string family = "xcvu9p";
    /** Interconnect tile grid. */
    std::uint16_t tiles_x = 256;
    std::uint16_t tiles_y = 256;
    /** Routing nodes per interconnect tile. */
    std::uint16_t nodes_per_tile = 64;
    /** Mean per-element routing delay (ps). */
    double routing_pitch_ps = 25.0;
    /** Mean per-tap carry-chain delay (ps); the paper's 2.8 ps/bit. */
    double carry_pitch_ps = 2.8;
    /** Mean LUT read-path delay (ps). */
    double lut_pitch_ps = 124.0;
    /**
     * How strongly a LUT config-SRAM cell's BTI couples into its read
     * path delay. Zick et al. (paper §7) showed LUT imprints need
     * femtosecond-class off-chip instrumentation precisely because
     * the output-buffer coupling is orders of magnitude below a
     * route's; cloud TDCs (~ps class) cannot see them.
     */
    double lut_bti_coupling = 0.02;
    /** Physics calibration. */
    phys::BtiParams bti = phys::BtiParams::ultrascalePlus();
    phys::DelayParams delay{};
    phys::VariationParams variation{};
    /** Device-age derating model. */
    phys::DeviceAgeModel age_model{};
    /** Hours of prior service (0 = factory new ZCU102). */
    double service_age_h = 0.0;
    /** Per-device silicon seed (process variation identity). */
    std::uint64_t seed = 1;
};

/**
 * One physical FPGA: persistent aging plus at most one loaded design.
 */
class Device
{
  public:
    explicit Device(DeviceConfig config);

    /** Static configuration. */
    const DeviceConfig &config() const { return config_; }

    /** Fresh-BTI derating from the device's service age. */
    double freshScale() const { return fresh_scale_; }

    /** Simulated hours elapsed since construction. */
    double elapsedHours() const { return elapsed_h_; }

    /**
     * Materialise (if needed) and return an element. Variation is
     * deterministic per (seed, id). The reference stays valid for the
     * device's lifetime (the slab never relocates elements).
     */
    RoutingElement &element(ResourceId id);

    /** Look up an element without materialising it. */
    const RoutingElement *findElement(ResourceId id) const;

    /** Number of materialised elements. */
    std::size_t materializedCount() const { return store_.size(); }

    /**
     * Monotonic counter bumped whenever aged delays may have changed:
     * advance(), applyServiceWear(), loadDesign() and wipe(). Caches
     * keyed on (epoch, temperature, polarity) — e.g. a Tdc's tap
     * arrival times — stay valid exactly as long as the epoch does.
     */
    std::uint64_t stateEpoch() const { return state_epoch_; }

    /**
     * Allocate a route of roughly the requested delay out of
     * consecutive routing nodes (the paper composes arbitrarily long
     * route-under-test chains, §3).
     */
    RouteSpec allocateRoute(const std::string &name, double target_ps);

    /**
     * Allocate a TDC carry chain of the given number of taps.
     */
    RouteSpec allocateCarryChain(const std::string &name,
                                 std::size_t taps);

    /**
     * Allocate a read path through LUT configuration SRAM cells (the
     * resource Zick et al. targeted; paper §7). The cells imprint
     * like any transistor, but their delay coupling is
     * lut_bti_coupling — far below a TDC's reach.
     */
    RouteSpec allocateLutPath(const std::string &name,
                              std::size_t cells);

    /**
     * Ids of every materialised element (provider scrub support),
     * sorted by packed key so the listing is deterministic regardless
     * of materialisation order.
     */
    std::vector<ResourceId> materializedIds() const;

    /** Bind a skeleton to this device. */
    Route bindRoute(const RouteSpec &spec);

    /** Program a design (replaces any currently loaded design). */
    void loadDesign(std::shared_ptr<const Design> design);

    /**
     * Provider-style wipe: clears the logical configuration. The
     * physical aging state is untouched — that is the vulnerability.
     */
    void wipe();

    /** Currently loaded design, or nullptr. */
    const Design *currentDesign() const { return design_.get(); }

    /**
     * Advance simulated time: steps the thermal environment with the
     * loaded design's power and ages every materialised element
     * according to its activity. The sweep is a flat pass over the
     * dense slab with a design-aligned activity vector — no hashing —
     * and element updates are independent and RNG-free, so when a
     * work pool is attached they fan out across workers with
     * bit-identical results.
     */
    void advance(double dt_h, phys::ThermalEnvironment &thermal);

    /**
     * Pre-age the whole allocated fabric (used to model years of
     * anonymous prior service; complements the fresh-scale derating).
     */
    void applyServiceWear(double hours, double duty_one = 0.5);

    /**
     * Attach a work pool used by advance()/applyServiceWear() to age
     * elements in parallel (nullptr = serial). The pool must outlive
     * the device or be detached before destruction; results do not
     * depend on the pool's worker count.
     */
    void setWorkPool(util::ThreadPool *pool) { pool_ = pool; }

    /** The attached work pool, or nullptr. */
    util::ThreadPool *workPool() const { return pool_; }

  private:
    RoutingElement makeElement(ResourceId id) const;

    /**
     * Rebuild the dense activity vector (slab-index aligned) when the
     * loaded design changed — by identity, by in-place revision, or
     * because the slab grew (an element configured by an in-place
     * mutation may only materialise later). The cache retains the
     * design it was built from, so a recycled allocation address can
     * never alias a stale cache.
     */
    void refreshActivityCache();

    /** Run body(i) over the slab, on the pool when attached. */
    void sweepElements(std::size_t count,
                       const std::function<void(std::size_t)> &body);

    DeviceConfig config_;
    double fresh_scale_;
    double elapsed_h_ = 0.0;
    std::uint64_t state_epoch_ = 0;
    std::uint64_t alloc_cursor_ = 0;
    std::uint64_t carry_cursor_ = 0;
    std::uint64_t lut_cursor_ = 0;
    AgingStore store_;
    std::shared_ptr<const Design> design_;
    /** Dense activity cache: activity_dense_[handle] for the loaded
     *  design, rebuilt when (design identity, revision, slab size)
     *  changes. Holding the shared_ptr keeps the source design alive
     *  so identity comparison is sound. */
    std::shared_ptr<const Design> activity_design_;
    std::uint64_t activity_revision_ = 0;
    std::vector<ElementActivity> activity_dense_;
    util::ThreadPool *pool_ = nullptr;
};

} // namespace pentimento::fabric

#endif // PENTIMENTO_FABRIC_DEVICE_HPP
