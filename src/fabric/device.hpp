/**
 * @file
 * The simulated FPGA device.
 *
 * A Device owns the persistent physical state: every materialised
 * element's process variation and BTI aging, held in a dense
 * AgingStore slab. Designs come and go — loadDesign()/wipe() change
 * only the logical configuration — while aging keyed by ResourceId
 * survives, which is exactly the data remanence the paper exploits.
 * Element variation is a pure function of (device seed, resource id),
 * so materialisation order never changes behaviour and two rentals of
 * the same board see the same silicon.
 *
 * Hot-path structure (PR 3, segment-timeline aging): advance() is
 * O(1) — it appends a (duration, Arrhenius-context) segment to the
 * device's AgingTimeline instead of sweeping the slab. Each element
 * carries the activity in effect since its last sync and materialises
 * its BTI state lazily, replaying pending segments only when
 *
 *  - its aged delay is actually queried (a Route/Tdc read),
 *  - its activity flips (loadDesign / wipe / a mitigation mutating
 *    the resident design), or
 *  - a whole-fabric operation needs fresh state (applyServiceWear).
 *
 * Consecutive same-temperature steps coalesce into one segment whose
 * duration is a compensated sum, and the duration × acceleration
 * multiply happens once at replay — so a 200-hour uninterrupted burn
 * costs 200 O(1) appends plus one per-element replay at the first
 * measurement, and any partition of the same span (hourly, random,
 * single jump) produces bit-identical aged delays. Boards that are
 * never observed (idle fleet stock) age for free.
 *
 * Consumers (Route, Tdc) still resolve ResourceIds to dense element
 * pointers once, at bind time; the monotone *state epoch* (bumped by
 * advance/loadDesign/wipe/applyServiceWear) keys their derived-value
 * caches exactly as before.
 *
 * Tenancy structure (PR 5, activity journal): loadDesign()/wipe()
 * no longer materialise anything. A configured key whose element is
 * not yet in the slab gets its activity flips recorded in the
 * ActivityJournal — one O(1) run append per flip, no variation
 * sampling, no slab insert, no replay — and the element materialises
 * only at first observation (bindElement), replaying its journal runs
 * against the timeline with exactly the per-segment / pre-reduced
 * arithmetic the eager path would have used at each flip. Aged delays
 * are bit-identical to eager materialisation (locked by journal_test
 * and the regression goldens); only materialisation diagnostics
 * (materializedCount, findElement before observation) can tell the
 * difference. Whole-tenancy turnover on never-measured boards is
 * thereby O(configured keys) of hash appends instead of
 * O(configured keys) of element construction + replay — and a board
 * is only charged for silicon someone actually looks at.
 * DeviceConfig::eager_materialisation restores the eager path (the
 * equivalence tests run both and compare bitwise).
 */

#ifndef PENTIMENTO_FABRIC_DEVICE_HPP
#define PENTIMENTO_FABRIC_DEVICE_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fabric/activity_journal.hpp"
#include "fabric/aging_store.hpp"
#include "fabric/aging_timeline.hpp"
#include "fabric/bram_block.hpp"
#include "fabric/design.hpp"
#include "fabric/resource.hpp"
#include "fabric/route.hpp"
#include "fabric/routing_element.hpp"
#include "phys/bti.hpp"
#include "phys/thermal.hpp"
#include "phys/variation.hpp"
#include "util/compensated.hpp"
#include "util/expected.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace pentimento::util {
class SnapshotWriter;
class SnapshotReader;
} // namespace pentimento::util

namespace pentimento::fabric {

/** Static description of a device family + instance. */
struct DeviceConfig
{
    /** Family name, e.g. "xcvu9p" (AWS F1) or "xczu9eg" (ZCU102). */
    std::string family = "xcvu9p";
    /** Interconnect tile grid. */
    std::uint16_t tiles_x = 256;
    std::uint16_t tiles_y = 256;
    /** Routing nodes per interconnect tile. */
    std::uint16_t nodes_per_tile = 64;
    /** Mean per-element routing delay (ps). */
    double routing_pitch_ps = 25.0;
    /** Mean per-tap carry-chain delay (ps); the paper's 2.8 ps/bit. */
    double carry_pitch_ps = 2.8;
    /** Mean LUT read-path delay (ps). */
    double lut_pitch_ps = 124.0;
    /**
     * How strongly a LUT config-SRAM cell's BTI couples into its read
     * path delay. Zick et al. (paper §7) showed LUT imprints need
     * femtosecond-class off-chip instrumentation precisely because
     * the output-buffer coupling is orders of magnitude below a
     * route's; cloud TDCs (~ps class) cannot see them.
     */
    double lut_bti_coupling = 0.02;
    /** Physics calibration. */
    phys::BtiParams bti = phys::BtiParams::ultrascalePlus();
    phys::DelayParams delay{};
    phys::VariationParams variation{};
    /** Device-age derating model. */
    phys::DeviceAgeModel age_model{};
    /** Hours of prior service (0 = factory new ZCU102). */
    double service_age_h = 0.0;
    /** Per-device silicon seed (process variation identity). */
    std::uint64_t seed = 1;
    /**
     * BRAM cell retention across power-off, lognormal per block:
     * median off-power hours a block's contents survive before
     * decaying to cell noise. SRAM retention at room temperature is
     * seconds-to-minutes class; the per-block draw (split Rng stream
     * keyed by the block id, same idiom as process variation) models
     * the cell-to-cell spread the data-persistence literature
     * measures.
     */
    double bram_retention_median_h = 0.05;
    /** Lognormal sigma of the per-block retention draw. */
    double bram_retention_sigma = 1.0;
    /**
     * Materialise every configured element at design load (the
     * pre-journal behaviour) instead of deferring to first
     * observation. Aged delays are bit-identical either way — the
     * equivalence test battery runs both and compares — so this
     * exists for those tests and for eager-vs-lazy benchmarking, not
     * for correctness. Fixed at construction.
     */
    bool eager_materialisation = false;
};

/**
 * One physical FPGA: persistent aging plus at most one loaded design.
 */
class Device
{
  public:
    explicit Device(DeviceConfig config);

    /** Static configuration. */
    const DeviceConfig &config() const { return config_; }

    /** Fresh-BTI derating from the device's service age. */
    double freshScale() const { return fresh_scale_; }

    /** Simulated hours elapsed since construction (compensated). */
    double elapsedHours() const { return elapsed_h_.value(); }

    /**
     * Materialise (if needed), sync with the segment timeline, and
     * return an element. Variation is deterministic per (seed, id).
     * The reference stays valid for the device's lifetime (the slab
     * never relocates elements). Syncing makes direct aging()
     * reads/writes safe; note that a sync is a timeline observation
     * (it closes the open segment).
     */
    RoutingElement &element(ResourceId id);

    /**
     * Look up an element without materialising it. Journal-deferred
     * elements (configured but never observed) return nullptr — they
     * do not exist yet. A found element is NOT synced with the
     * timeline: its aging state reflects the last observation, not
     * pending idle time (use element() for current state).
     */
    const RoutingElement *findElement(ResourceId id) const;

    /** Number of materialised elements (journal-deferred ones are
     *  configured but not yet materialised, so they don't count). */
    std::size_t materializedCount() const { return store_.size(); }

    /** Number of configured-but-unmaterialised (journal-deferred)
     *  elements. Always 0 under eager_materialisation. */
    std::size_t journaledKeyCount() const
    {
        return journal_.activeKeyCount();
    }

    /**
     * Monotonic counter bumped whenever aged delays may have changed:
     * advance(), applyServiceWear(), loadDesign() and wipe(). Caches
     * keyed on (epoch, temperature, polarity) — e.g. a Tdc's tap
     * arrival times — stay valid exactly as long as the epoch does.
     */
    std::uint64_t stateEpoch() const { return state_epoch_; }

    /**
     * Materialise (if needed) an element and return its dense handle
     * WITHOUT syncing it — the bind-time form Route/Tdc use. Pair
     * with elementAt() for the pointer and syncHandles() before
     * reading aged state.
     */
    ElementHandle bindElement(ResourceId id);

    /** Element behind a bind-time handle. */
    RoutingElement &elementAt(ElementHandle h) { return store_.at(h); }

    /**
     * Epoch-keyed ΔVth memo of a bound element (see DvthCacheEntry
     * and AgingStore::dvthSlot for the fill and concurrency
     * contracts). Walks check entry.epoch against stateEpoch() and
     * refill via RoutingElement::deltaVthPair on a miss.
     */
    DvthCacheEntry &
    dvthCacheAt(ElementHandle h)
    {
        return store_.dvthSlot(h);
    }

    /**
     * Replay any pending timeline segments into the given elements
     * (the read-path hook: Route/Tdc call this before walking their
     * bound element pointers). Thread-safe for concurrent calls on
     * disjoint or overlapping handle sets — every call takes the
     * sync mutex, so callers must keep it off per-trace hot loops by
     * guarding with the state epoch / arrival caches, as Route and
     * Tdc do.
     */
    void syncHandles(const ElementHandle *handles, std::size_t count);

    /**
     * Closed-plus-open segment count currently pending replay for at
     * least one element (diagnostics / tests of the lazy model).
     */
    std::size_t timelineSegments() const;

    /**
     * Allocate a route of roughly the requested delay out of
     * consecutive routing nodes (the paper composes arbitrarily long
     * route-under-test chains, §3).
     */
    RouteSpec allocateRoute(const std::string &name, double target_ps);

    /**
     * Allocate a TDC carry chain of the given number of taps.
     */
    RouteSpec allocateCarryChain(const std::string &name,
                                 std::size_t taps);

    /**
     * Allocate a read path through LUT configuration SRAM cells (the
     * resource Zick et al. targeted; paper §7). The cells imprint
     * like any transistor, but their delay coupling is
     * lut_bti_coupling — far below a TDC's reach.
     */
    RouteSpec allocateLutPath(const std::string &name,
                              std::size_t cells);

    /**
     * Ids of every materialised element, sorted by packed key so the
     * listing is deterministic regardless of materialisation order.
     * Journal-deferred elements are not listed until first observed;
     * after full observation the listing equals the eager set.
     */
    std::vector<ResourceId> materializedIds() const;

    /**
     * Ids of every element that carries (or is still owed) an analog
     * imprint: the materialised set plus the journal-deferred set,
     * sorted by packed key. This is what a provider-side scrub must
     * drive — materializedIds() alone would miss elements whose
     * tenancies were never measured. Identical to materializedIds()
     * under eager_materialisation.
     */
    std::vector<ResourceId> imprintedIds() const;

    /** Bind a skeleton to this device. */
    Route bindRoute(const RouteSpec &spec);

    /**
     * Program a design (replaces any currently loaded design).
     * Materialised elements whose activity flips are flushed — their
     * pending timeline time is replayed under the outgoing activity —
     * so the flip is a segment boundary; configured elements not yet
     * materialised only get the flip journaled (O(1) per key) and
     * materialise at first observation. Re-loading the resident
     * design at an unchanged revision is a no-op.
     */
    void loadDesign(std::shared_ptr<const Design> design);

    /**
     * Provider-style wipe: clears the logical configuration. The
     * physical aging state is untouched — that is the vulnerability.
     * Journal-deferred elements get a released run journaled instead
     * of being materialised; their imprint stays owed.
     */
    void wipe();

    /** Currently loaded design, or nullptr. */
    const Design *currentDesign() const { return design_.get(); }

    // ── BRAM content remanence (the second resource class) ─────────
    //
    // Persistence semantics are the *inverse* of interconnect aging:
    // wipe() clears the logical configuration but leaves BRAM words
    // (they are physical SRAM state, not configuration), power events
    // and PCIe resets leave them too (within each block's retention
    // window), and only (re)configuration — loadDesign — or an
    // explicit provider scrub zeroes them. None of these paths touch
    // the aging slab, the journal, the timeline, or any Rng stream
    // the interconnect channel consumes: the routing goldens cannot
    // move.

    /** Tenant write of a block's representative word. Materialises
     *  the block (retention limit drawn from a split stream keyed by
     *  the id — pure, order-independent). */
    void writeBram(ResourceId id, std::uint64_t word);

    /**
     * Attacker/tenant readback. Resolves pending off-power exposure
     * lazily (Written → Retained or Decayed; a decayed block's word
     * is replaced by a deterministic per-id cell-noise draw) and
     * returns the block. Reading is not a timeline observation —
     * BRAM content carries no analog aging to replay.
     */
    const BramBlock &readBram(ResourceId id);

    /** Look up a block without materialising or resolving it.
     *  Returns nullptr when the block was never touched. */
    const BramBlock *findBramBlock(ResourceId id) const;

    /** Zero every materialised block (provider scrub / configuration
     *  clear). Unlike wipe(), this IS observable by a later tenant:
     *  it is the mitigation the scrub-policy ablation prices. */
    void zeroBram();

    /** Accrue off-power hours against every block's retention window
     *  (power loss; PCIe resets pass 0 hours and leave content). */
    void accrueBramOffPower(double hours);

    /** Number of materialised BRAM blocks. */
    std::size_t bramBlockCount() const { return bram_.size(); }

    /**
     * Advance simulated time: steps the thermal environment with the
     * loaded design's power and records the span on the segment
     * timeline. O(changed-elements) — usually O(1): per-element work
     * happens only if the resident design mutated since the last call
     * (those elements flush), never per hour. Same-temperature spans
     * coalesce, so the cost of a multi-hour uninterrupted burn is
     * independent of how it is partitioned into advance() calls.
     */
    void advance(double dt_h, phys::ThermalEnvironment &thermal);

    /**
     * advance() with the die temperature already computed by the
     * caller — the segment-ingestion form the cloud instance's
     * event-driven walk uses: one externally-coalesced span between
     * ambient events becomes one timeline segment, with no
     * ThermalEnvironment virtual dispatch on the walk.
     */
    void advanceAt(double dt_h, double die_temp_k);

    /**
     * Credit simulated hours without recording aging segments — the
     * first half of the deferred-time protocol. The caller owes the
     * timeline matching ingestSegment() spans totalling dt_h before
     * anything observes an element (the cloud instance flushes via
     * the pre-observation hook). Bumps the state epoch so derived-
     * value caches can never serve results that predate the credit.
     */
    void creditIdleHours(double dt_h);

    /**
     * Record one externally-coalesced aging span whose wall-clock
     * hours were already credited with creditIdleHours() — the second
     * half of the deferred-time protocol. Identical timeline effect
     * to advanceAt(), without double-counting elapsed time. This IS
     * the pre-observation flush's delivery channel (deliberately not
     * hooked); all other span producers should use advanceAt().
     */
    void ingestSegment(double dt_h, double die_temp_k);

    /**
     * Install a hook invoked before any observation that reads or
     * flips element aging state (element sync, design load, wipe,
     * service wear, advance). The cloud instance uses it to
     * materialise deferred idle time, so direct Device consumers
     * (bound Routes, TDCs) can never read state that is missing
     * deferred spans. Pass nullptr to detach.
     */
    void
    setPreObservationHook(std::function<void()> hook)
    {
        pre_observation_hook_ = std::move(hook);
    }

    /**
     * Pre-age the whole allocated fabric (used to model years of
     * anonymous prior service; complements the fresh-scale derating).
     * A whole-fabric observation: journal-deferred elements
     * materialise first so the wear lands on the same population the
     * eager path would have swept.
     */
    void applyServiceWear(double hours, double duty_one = 0.5);

    /**
     * Attach a work pool used by applyServiceWear() to age elements
     * in parallel (nullptr = serial). The pool must outlive the
     * device or be detached before destruction; results do not
     * depend on the pool's worker count.
     */
    void setWorkPool(util::ThreadPool *pool) { pool_ = pool; }

    /** The attached work pool, or nullptr. */
    util::ThreadPool *workPool() const { return pool_; }

    /**
     * Serialize the device's complete dynamic state into the writer's
     * current chunk. Const and strictly non-flushing: pending journal
     * runs, the open timeline segment, and externally deferred time
     * all serialize RAW, so taking a checkpoint never closes a
     * segment, materialises an element, or otherwise perturbs the run
     * being checkpointed.
     *
     * The loaded design is NOT serialized (designs are code, not
     * board state); a `had_design` flag records whether one was
     * resident so the owning campaign knows to re-load it. Re-loading
     * an equivalent design into a restored device is draw-neutral and
     * flip-free: live activities and journal runs already match, so
     * neither the timeline nor any RNG stream moves.
     */
    void saveState(util::SnapshotWriter &writer) const;

    /**
     * Restore into a freshly constructed device whose DeviceConfig
     * matches the one saved (the snapshot carries a fingerprint and
     * rejects mismatches). Corrupt or inconsistent payloads poison
     * the reader and return its error — never fatal/panic — and the
     * device must then be discarded (state may be partially applied).
     * On success `had_design` (optional) reports whether a design was
     * resident at save time; the caller re-loads it.
     */
    util::Expected<void> restoreState(util::SnapshotReader &reader,
                                      bool *had_design = nullptr);

  private:
    RoutingElement makeElement(ResourceId id) const;

    /** Fresh Unwritten block with its pure per-id retention draw. */
    BramBlock makeBramBlock(ResourceId id) const;

    /** Zero all blocks, then land the resident design's BRAM init
     *  words — what configuring a bitstream does to block RAM. */
    void applyBramConfiguration();

    /** Run the pre-observation hook (deferred-time flush), if any. */
    void
    flushExternalTime()
    {
        if (pre_observation_hook_) {
            pre_observation_hook_();
        }
    }

    /** Shared body of advance/advanceAt/ingestSegment. */
    void recordSpan(double dt_h, double die_temp_k,
                    bool credit_elapsed);

    /**
     * Fold the resident design's activity map into the elements' live
     * activities. Runs when the design is (re)loaded, when its
     * mutation revision changes, or when the slab grew (an element
     * configured by an in-place mutation may only materialise later).
     * Elements whose activity actually flips are flushed first; an
     * unchanged design never splits a segment.
     */
    void applyDesignActivity();

    /** applyDesignActivity only if design/revision/slab changed. */
    void syncActivityWithDesign();

    /**
     * A design's activity map split into cohorts: keys whose elements
     * are materialised resolve to dense handles; the rest stay packed
     * keys destined for the journal (under eager_materialisation the
     * deferred cohort is always empty — resolution materialises).
     * Cached per (design identity, revision, slab size) so the
     * attack-phase measure/park alternation — the same two designs
     * swapped every sweep — never re-hashes a thousand resource keys
     * per load; any materialisation grows the slab and so invalidates
     * entries whose cohort split went stale. Holding the shared_ptr
     * keeps identity comparison sound.
     */
    struct ResolvedDesign
    {
        std::shared_ptr<const Design> design;
        std::uint64_t revision = 0;
        std::uint64_t keyset_revision = 0;
        std::size_t slab = 0;
        std::vector<ElementHandle> handles;
        std::vector<ElementActivity> activities;
        /** Deferred cohort: not in the slab at resolution time. */
        std::vector<std::uint64_t> keys;
        std::vector<ElementActivity> key_activities;
        /** Cohort of each key in activity-map iteration order (true =
         *  deferred), so a values-only refresh can rewrite both
         *  activity vectors with one in-order walk and no hashing. */
        std::vector<bool> deferred_order;
    };

    /** Resolution for the resident design: cache hit, values-only
     *  refresh (same design, same key set and slab, rotated burn
     *  values — the mitigation-flip shape), or full rebuild. Shared
     *  ownership: the applied-configuration snapshot (configured_)
     *  aliases the cache entry, surviving eviction; a refresh may
     *  rewrite the aliased activities in place, which is safe because
     *  outgoing-flip processing reads only the handle/key lists.
     *
     *  Rebuild and refresh walk the activity map anyway, so they fold
     *  the deferred cohort's journal recording into the same pass
     *  (one probe per key per design load): flips recorded at
     *  flip_pos are counted into *journal_flips and *records_applied
     *  is set true. A pure cache hit leaves recording to the caller
     *  (*records_applied false). */
    std::shared_ptr<const ResolvedDesign>
    resolveResidentDesign(std::uint32_t flip_pos,
                          std::size_t *journal_flips,
                          bool *records_applied);

    /** Replay closed segments into one element (lock held/exclusive). */
    void replayHandle(ElementHandle h);

    /**
     * Apply closed segments [from, to) to one element under a fixed
     * activity — the shared replay chunk of replayHandle and journal
     * materialisation. Chunk boundaries are flip/observation points
     * in BOTH the eager and the lazy path, so the per-segment vs
     * pre-reduced decision (and with it every rounding step) is
     * identical whichever path runs.
     */
    void replaySpan(RoutingElement &elem,
                    const ElementActivity &activity, std::uint32_t from,
                    std::uint32_t to);

    /**
     * Fold a freshly materialised element's journal runs into its
     * aging state. Leaves the element exactly where the eager path
     * would have had it after the last recorded flip: live activity =
     * final run, synced position = final run start, the tail pending
     * for the next sync.
     */
    void replayJournalRuns(ElementHandle h,
                           const std::vector<JournalRun> &runs);

    /** Materialise every journal-deferred element (whole-fabric
     *  operations — service wear — need the full population). */
    void materializeJournal();

    /** Drop fully-consumed closed segments (bounds timeline memory). */
    void maybeCompactTimeline();

    /** Run body(i) over the slab, on the pool when attached. */
    void sweepElements(std::size_t count,
                       const std::function<void(std::size_t)> &body);

    DeviceConfig config_;
    double fresh_scale_;
    util::CompensatedSum elapsed_h_;
    std::uint64_t state_epoch_ = 0;
    std::uint64_t alloc_cursor_ = 0;
    std::uint64_t carry_cursor_ = 0;
    std::uint64_t lut_cursor_ = 0;
    AgingStore store_;
    /** BRAM content slab — the second element class. Deliberately a
     *  bare ElementSlab: content state needs no ΔVth memo, no journal
     *  (writes are explicit, not per-hour), and no timeline. */
    ElementSlab<BramBlock> bram_;
    /** (name, bramRevision) of the design whose BRAM configuration
     *  the blocks currently reflect. Keyed by name rather than object
     *  identity so the checkpoint-resume re-load of an equivalent
     *  design — rebuilt deterministically on the other side of the
     *  snapshot — is BRAM-neutral (see loadDesign). Cleared by wipe:
     *  configuring after a wipe always zeroes. */
    std::string bram_applied_design_;
    std::uint64_t bram_applied_revision_ = 0;
    AgingTimeline timeline_;
    /** Flip log for configured-but-unmaterialised elements. Invariant:
     *  a key is EITHER active here OR materialised (bindElement
     *  consumes its runs), never both. */
    ActivityJournal journal_;
    phys::StepContextCache ctx_cache_;
    /** Handle-indexed lazy-aging bookkeeping, kept OUT of the element
     *  slab so a RoutingElement stays one cache line on the dense
     *  measurement walks: the activity in effect since the element's
     *  last sync (constant between syncs — flips flush), and the
     *  closed timeline segments already folded into its aging. Grown
     *  only at materialisation points (exclusive phases). */
    std::vector<ElementActivity> live_;
    std::vector<std::uint32_t> synced_;
    /** Closed-segment count at which compaction first runs. */
    static constexpr std::size_t kCompactThreshold = 64;
    /**
     * Run length (segments) above which replayHandle applies the
     * timeline's pre-reduced effective-hour totals instead of one
     * update per segment. Short runs — everything the bit-exact
     * regression goldens exercise — keep the historical per-segment
     * arithmetic; long runs (months of varying-ambient cloud
     * segments) collapse to one update per element.
     */
    static constexpr std::uint32_t kReduceRunThreshold = 16;
    /** Closed-segment count that re-arms compaction (geometric
     *  back-off so a pinned stale element cannot make every sync pay
     *  an O(elements) min-position scan). */
    std::size_t compact_watermark_ = kCompactThreshold;
    std::shared_ptr<const Design> design_;
    /** Design whose activity map the elements' live activities
     *  reflect, plus the revision and slab size they were synced at.
     *  Holding the shared_ptr keeps the source design alive so
     *  identity comparison is sound (a recycled allocation address
     *  can never alias). */
    std::shared_ptr<const Design> activity_design_;
    std::uint64_t activity_revision_ = 0;
    std::size_t covered_slab_ = 0;
    /** Resolution applied at the last activity sync — the element
     *  set that must flip to Unused on wipe/replace. Null when no
     *  configuration has been applied. */
    std::shared_ptr<const ResolvedDesign> configured_;
    /** Two-slot LRU of resolved designs (see ResolvedDesign);
     *  non-const so values-only refreshes can rewrite in place. */
    std::shared_ptr<ResolvedDesign> resolved_designs_[2];
    std::uint8_t resolved_lru_ = 0;
    /** Handle-indexed mark scratch for set differences in
     *  applyDesignActivity (stamp = mark_stamp_). */
    std::vector<std::uint64_t> mark_scratch_;
    std::uint64_t mark_stamp_ = 0;
    /** Reused flip-collection scratch (applyDesignActivity). */
    std::vector<std::pair<ElementHandle, ElementActivity>>
        flip_scratch_;
    /** Serialises timeline closes + element replays triggered from
     *  concurrent read paths (measurement fan-out). */
    std::mutex sync_mutex_;
    /** Deferred-time flush, installed by the owning cloud instance.
     *  Invoked single-threaded by construction: deferral only happens
     *  while a board is idle and unobserved, and the concurrent
     *  measurement fan-out only runs on boards whose deferral was
     *  flushed when their design loaded. */
    std::function<void()> pre_observation_hook_;
    util::ThreadPool *pool_ = nullptr;
};

} // namespace pentimento::fabric

#endif // PENTIMENTO_FABRIC_DEVICE_HPP
