#include "fabric/route.hpp"

#include "fabric/device.hpp"
#include "util/logging.hpp"

namespace pentimento::fabric {

Route::Route(Device &device, RouteSpec spec)
    : device_(&device), spec_(std::move(spec))
{
    if (spec_.elements.empty()) {
        util::fatal("Route: spec '" + spec_.name + "' has no elements");
    }
    // Resolve every id to its dense element once: delay queries on
    // the measurement path then never touch the id index again.
    elements_.reserve(spec_.elements.size());
    for (const ResourceId &id : spec_.elements) {
        elements_.push_back(&device_->element(id));
    }
}

double
Route::baseDelayPs(phys::Transition t) const
{
    double total = 0.0;
    for (const RoutingElement *elem : elements_) {
        total += elem->basePs(t);
    }
    return total;
}

double
Route::delayPs(phys::Transition t, double temp_k) const
{
    const auto &cfg = device_->config();
    const double temp_factor = cfg.delay.temperatureFactor(t, temp_k);
    double total = 0.0;
    for (const RoutingElement *elem : elements_) {
        total += elem->delayPsFactored(cfg.bti, cfg.delay, t,
                                       temp_factor);
    }
    return total;
}

double
Route::btiShiftPs(phys::Transition t) const
{
    return delayPs(t, device_->config().delay.ref_temp_k) -
           baseDelayPs(t);
}

} // namespace pentimento::fabric
