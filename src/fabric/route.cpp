#include "fabric/route.hpp"

#include "fabric/device.hpp"
#include "util/logging.hpp"

namespace pentimento::fabric {

Route::Route(Device &device, RouteSpec spec)
    : device_(&device), spec_(std::move(spec))
{
    if (spec_.elements.empty()) {
        util::fatal("Route: spec '" + spec_.name + "' has no elements");
    }
}

double
Route::baseDelayPs(phys::Transition t) const
{
    double total = 0.0;
    for (const ResourceId &id : spec_.elements) {
        total += device_->element(id).basePs(t);
    }
    return total;
}

double
Route::delayPs(phys::Transition t, double temp_k) const
{
    const auto &cfg = device_->config();
    double total = 0.0;
    for (const ResourceId &id : spec_.elements) {
        total += device_->element(id).delayPs(cfg.bti, cfg.delay, t,
                                              temp_k);
    }
    return total;
}

double
Route::btiShiftPs(phys::Transition t) const
{
    return delayPs(t, device_->config().delay.ref_temp_k) -
           baseDelayPs(t);
}

} // namespace pentimento::fabric
