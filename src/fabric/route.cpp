#include "fabric/route.hpp"

#include <limits>

#include "fabric/device.hpp"
#include "util/logging.hpp"

namespace pentimento::fabric {

Route::Route(Device &device, RouteSpec spec)
    : device_(&device), spec_(std::move(spec)),
      synced_epoch_(std::numeric_limits<std::uint64_t>::max())
{
    if (spec_.elements.empty()) {
        util::fatal("Route: spec '" + spec_.name + "' has no elements");
    }
    // Resolve every id to its dense element once: delay queries on
    // the measurement path then never touch the id index again.
    elements_.reserve(spec_.elements.size());
    handles_.reserve(spec_.elements.size());
    for (const ResourceId &id : spec_.elements) {
        const ElementHandle h = device_->bindElement(id);
        handles_.push_back(h);
        elements_.push_back(&device_->elementAt(h));
    }
}

void
Route::syncForRead() const
{
    // A query is a timeline observation: pending segments must be
    // folded into the elements first. The device's state epoch moves
    // on every advance/load/wipe/wear, so an unchanged epoch means
    // the elements we synced last time are still current.
    const std::uint64_t epoch = device_->stateEpoch();
    if (synced_epoch_ == epoch) {
        return;
    }
    device_->syncHandles(handles_.data(), handles_.size());
    synced_epoch_ = epoch;
}

double
Route::baseDelayPs(phys::Transition t) const
{
    double total = 0.0;
    for (const RoutingElement *elem : elements_) {
        total += elem->basePs(t);
    }
    return total;
}

double
Route::delayPs(phys::Transition t, double temp_k) const
{
    syncForRead();
    const auto &cfg = device_->config();
    const double temp_factor = cfg.delay.temperatureFactor(t, temp_k);
    const phys::TransistorType limiter = phys::limitingTransistor(t);
    // synced_epoch_ is the state epoch as of syncForRead() above; the
    // ΔVth memo shares the power-law results across polarities,
    // temperatures and repeated queries at one device state.
    const std::uint64_t epoch = synced_epoch_;
    double total = 0.0;
    for (std::size_t i = 0; i < elements_.size(); ++i) {
        DvthCacheEntry &memo = device_->dvthCacheAt(handles_[i]);
        if (memo.epoch != epoch) {
            elements_[i]->deltaVthPair(cfg.bti, memo.nmos_v,
                                       memo.pmos_v);
            memo.epoch = epoch;
        }
        const double dvth = limiter == phys::TransistorType::Nmos
                                ? memo.nmos_v
                                : memo.pmos_v;
        total += elements_[i]->delayPsCached(cfg.delay, t, dvth,
                                             temp_factor);
    }
    return total;
}

double
Route::btiShiftPs(phys::Transition t) const
{
    return delayPs(t, device_->config().delay.ref_temp_k) -
           baseDelayPs(t);
}

} // namespace pentimento::fabric
