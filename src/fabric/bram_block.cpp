#include "fabric/bram_block.hpp"

namespace pentimento::fabric {

const char *
toString(BramState state)
{
    switch (state) {
      case BramState::Unwritten:
        return "unwritten";
      case BramState::Written:
        return "written";
      case BramState::Retained:
        return "retained";
      case BramState::Decayed:
        return "decayed";
      case BramState::Zeroed:
        return "zeroed";
    }
    return "?";
}

} // namespace pentimento::fabric
