#include "fabric/resource.hpp"

#include <sstream>

namespace pentimento::fabric {

const char *
toString(ResourceType type)
{
    switch (type) {
      case ResourceType::RoutingNode:
        return "NODE";
      case ResourceType::CarryElement:
        return "CARRY";
      case ResourceType::Register:
        return "FF";
      case ResourceType::Lut:
        return "LUT";
      case ResourceType::Dsp:
        return "DSP";
      case ResourceType::Bram:
        return "BRAM";
    }
    return "?";
}

std::string
ResourceId::toString() const
{
    std::ostringstream out;
    out << "INT_X" << tile_x << "Y" << tile_y << "/"
        << pentimento::fabric::toString(type) << "_" << index;
    return out.str();
}

} // namespace pentimento::fabric
