/**
 * @file
 * Designs: what a tenant programs onto the device.
 *
 * A Design maps physical elements to activities (hold 0 / hold 1 /
 * toggle / unused), carries a power estimate, and exposes a coarse
 * combinational netlist for design-rule checking. TargetDesign is the
 * paper's Figure 4 artifact: routes under test pinned to burn values,
 * surrounded by Arithmetic Heavy circuitry, with the measurement
 * region left unconfigured.
 */

#ifndef PENTIMENTO_FABRIC_DESIGN_HPP
#define PENTIMENTO_FABRIC_DESIGN_HPP

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "fabric/route.hpp"
#include "fabric/routing_element.hpp"

namespace pentimento::fabric {

/**
 * Base design: element activity map + power + netlist edges.
 */
class Design
{
  public:
    explicit Design(std::string name);
    virtual ~Design() = default;

    /** Design (or AFI) name. */
    const std::string &name() const { return name_; }

    /** Estimated power draw while loaded, in watts. */
    double powerW() const { return power_w_; }

    /** Set the power estimate. */
    void setPowerW(double watts);

    /** Configure a single element's activity. */
    void setElementActivity(ResourceId id, ElementActivity activity);

    /**
     * Pre-size the activity map for n configured elements. Builders
     * that know their element budget (TargetDesign does) avoid the
     * incremental rehashes, which dominate construction of
     * tenancy-sized designs.
     */
    void reserveActivity(std::size_t n);

    /** Pin every element of a route to a static burn value. */
    void setRouteValue(const RouteSpec &spec, bool value);

    /** Drive a route with toggling data. */
    void setRouteToggling(const RouteSpec &spec, double duty_one = 0.5);

    /** Remove any configuration from a route's elements. */
    void clearRoute(const RouteSpec &spec);

    /** Activity of an element (Unused when unconfigured). */
    ElementActivity activityFor(ResourceId id) const;

    /** Number of configured elements. */
    std::size_t configuredElements() const { return activity_.size(); }

    /** Iterate all configured (id, activity) pairs. */
    const std::unordered_map<std::uint64_t, ElementActivity> &
    activityMap() const
    {
        return activity_;
    }

    /**
     * Monotonic counter bumped by every activity mutation. Devices
     * snapshot it to detect in-place edits (e.g. a mitigation rotating
     * burn values) and rebuild their dense activity cache only when
     * the design actually changed.
     */
    std::uint64_t revision() const { return revision_; }

    /**
     * Monotonic counter bumped only when the *set* of configured
     * elements may have changed (an element added or removed), not
     * when values merely rotate in place. While it holds still, the
     * activity map's iteration order holds still too (no insert, no
     * erase, no rehash), so a device may refresh a cached resolution's
     * activities by a single in-order walk instead of rebuilding it —
     * the difference between a mitigation flip costing a map walk and
     * costing a full re-resolution.
     */
    std::uint64_t keysetRevision() const { return keyset_revision_; }

    /**
     * Initial content word for a BRAM block the design instantiates.
     * Applied by the device at configuration time (loadDesign): the
     * configured word lands in the block's content state, exactly as
     * a bitstream's BRAM init payload would.
     *
     * Deliberately separate from the element-activity map and its
     * revision counters: BRAM inits do not drive aging, so mutating
     * them must not perturb the device's activity-resolution caches
     * (nor any draw sequence downstream of them). Mutations on a
     * design that is already resident take effect at the *next*
     * loadDesign — configuration is the only write path into the
     * fabric, matching real hardware.
     */
    void setBramInit(ResourceId id, std::uint64_t word);

    /** All declared BRAM init words, keyed by packed ResourceId. */
    const std::unordered_map<std::uint64_t, std::uint64_t> &
    bramInitMap() const
    {
        return bram_init_;
    }

    /** Monotonic counter bumped by every BRAM init mutation (own
     *  counter so the activity caches stay undisturbed; see
     *  setBramInit). */
    std::uint64_t bramRevision() const { return bram_revision_; }

    /**
     * Declare a combinational arc between named logic nodes; the DRC
     * scans these for loops (ring-oscillator detection, as AWS does).
     */
    void addCombinationalEdge(const std::string &from,
                              const std::string &to);

    /** All declared combinational arcs. */
    const std::vector<std::pair<std::string, std::string>> &
    combinationalEdges() const
    {
        return edges_;
    }

  private:
    std::string name_;
    double power_w_ = 0.0;
    std::uint64_t revision_ = 0;
    std::uint64_t keyset_revision_ = 0;
    std::uint64_t bram_revision_ = 0;
    std::unordered_map<std::uint64_t, ElementActivity> activity_;
    std::unordered_map<std::uint64_t, std::uint64_t> bram_init_;
    std::vector<std::pair<std::string, std::string>> edges_;
};

/** Parameters of the Arithmetic Heavy filler (paper Figure 4). */
struct ArithmeticHeavyConfig
{
    /** DSP blocks used (Experiment 2 uses 3896). */
    int dsp_count = 3896;
    /** Power per active DSP column, watts. */
    double watts_per_dsp = 0.016;
    /** Static power of the shell + design, watts. */
    double base_watts = 0.7;
    /** Toggle duty (fraction of time at one) of the datapath. */
    double duty_one = 0.5;
};

/**
 * The paper's Target design (Figure 4): burn values held on the
 * routes under test, Arithmetic Heavy circuits around them, and the
 * slices above the routes left unconfigured for the later Measure
 * design.
 */
class TargetDesign : public Design
{
  public:
    /**
     * @param name design name
     * @param routes routes under test (the skeleton)
     * @param burn_values one burn bit per route
     * @param arith Arithmetic Heavy sizing; its DSP/datapath elements
     *        are synthesised beside the routes
     */
    TargetDesign(std::string name, const std::vector<RouteSpec> &routes,
                 const std::vector<bool> &burn_values,
                 const ArithmeticHeavyConfig &arith = {});

    /** The burn value applied to route i. */
    bool burnValue(std::size_t i) const;

    /** Number of routes under test. */
    std::size_t routeCount() const { return routes_.size(); }

    /** Skeleton of route i. */
    const RouteSpec &routeSpec(std::size_t i) const;

    /** Change the value held on route i (mitigations rotate these). */
    void setBurnValue(std::size_t i, bool value);

    /**
     * Move route i to a different physical location (wear-leveling /
     * partial-reconfiguration mitigation, §8.1): the old elements are
     * released and the burn value reappears on the new skeleton.
     */
    void relocateRoute(std::size_t i, RouteSpec new_spec);

    /** Arithmetic Heavy sizing in effect. */
    const ArithmeticHeavyConfig &arithmeticConfig() const { return arith_; }

  private:
    std::vector<RouteSpec> routes_;
    std::vector<bool> burn_values_;
    ArithmeticHeavyConfig arith_;
};

} // namespace pentimento::fabric

#endif // PENTIMENTO_FABRIC_DESIGN_HPP
