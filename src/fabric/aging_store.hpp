/**
 * @file
 * Dense slab storage for the device's persistent aging state.
 *
 * The store owns every materialised RoutingElement in a chunked slab:
 * elements are assigned *dense handles* (slab indices) in
 * materialisation order and are never erased or relocated, so both
 * handles and element addresses stay valid for the lifetime of the
 * store. Consumers resolve a ResourceId to a handle (or pointer)
 * exactly once — at bind time — and every subsequent hot-path access
 * is a flat array read with no hashing and no lock.
 *
 * Thread-safety: ensure()/find()/size()/sortedIds() may be called
 * concurrently (a shared_mutex guards the key index and slab growth).
 * sweepAt() is the unlocked dense accessor for exclusive phases
 * (aging sweeps): callers must guarantee no concurrent
 * materialisation, which the experiment loop does by construction —
 * condition and measurement phases alternate serially.
 */

#ifndef PENTIMENTO_FABRIC_AGING_STORE_HPP
#define PENTIMENTO_FABRIC_AGING_STORE_HPP

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "fabric/resource.hpp"
#include "fabric/routing_element.hpp"

namespace pentimento::fabric {

/** Dense index of a materialised element inside an AgingStore. */
using ElementHandle = std::uint32_t;

/** Sentinel for "not materialised". */
inline constexpr ElementHandle kInvalidElement =
    static_cast<ElementHandle>(-1);

/** Epoch value meaning "this ΔVth entry has never been filled". The
 *  device's state epoch counts up from zero, so ~0 is unreachable. */
inline constexpr std::uint64_t kDvthNeverCached = ~0ULL;

/**
 * Epoch-keyed ΔVth memo for one element.
 *
 * deltaVth is a pure function of the element's aging state — it never
 * depends on temperature or polarity — so it is constant between
 * state-epoch bumps. Caching both transistors' shifts per element
 * collapses the two pow() calls of BtiState::deltaVthStressed to once
 * per (element, epoch) instead of once per arrival recompute: a TDC
 * probing 10 temperatures at one device state pays the power law once.
 */
struct DvthCacheEntry
{
    /** State epoch the shifts were computed at. */
    std::uint64_t epoch = kDvthNeverCached;
    /** NMOS threshold shift (limits falling transitions), volts. */
    double nmos_v = 0.0;
    /** PMOS threshold shift (limits rising transitions), volts. */
    double pmos_v = 0.0;
};

/**
 * Chunked slab of RoutingElements plus a ResourceId-key index.
 */
class AgingStore
{
  public:
    AgingStore() = default;
    ~AgingStore();

    AgingStore(const AgingStore &) = delete;
    AgingStore &operator=(const AgingStore &) = delete;

    /** Number of materialised elements. Lock-free: the count only
     *  grows, and it is published (release) after the element is
     *  constructed, so a reader that observes handle h < size() can
     *  always dereference it. Called once per recorded aging span. */
    std::size_t
    size() const
    {
        return count_.load(std::memory_order_acquire);
    }

    /**
     * Handle for id, materialising via `make` when absent. `make` runs
     * outside the exclusive section (variation sampling is the
     * expensive part); when two threads race, one construction wins
     * and the other is discarded.
     */
    ElementHandle ensure(
        ResourceId id,
        const std::function<RoutingElement(ResourceId)> &make);

    /** Handle for a packed key, or kInvalidElement. */
    ElementHandle find(std::uint64_t key) const;

    /**
     * find() without the shared lock, for exclusive phases (design
     * load/wipe resolution — the tenancy-turnover hot path, which
     * probes once per configured key). Same contract as sweepAt():
     * the caller must guarantee no concurrent ensure().
     */
    ElementHandle
    findExclusive(std::uint64_t key) const
    {
        return lookup(key);
    }

    /** Element behind a handle (shared-locked bounds check). */
    RoutingElement &at(ElementHandle h);
    const RoutingElement &at(ElementHandle h) const;

    /**
     * Unlocked dense access for exclusive-phase sweeps. The handle
     * must be < size(); no concurrent ensure() may run.
     */
    RoutingElement &sweepAt(ElementHandle h)
    {
        return *slot(h);
    }
    const RoutingElement &sweepAt(ElementHandle h) const
    {
        return *slot(h);
    }

    /**
     * ΔVth cache entry of an element, unlocked like sweepAt(). The
     * handle must be < size(). Concurrency contract: entries may be
     * read/written during measurement fan-out, but (a) the state
     * epoch is constant throughout any measurement phase (reads never
     * bump it), and (b) concurrent lanes own disjoint element sets
     * (each sensor walks its own route + chain), so no two lanes
     * touch one entry — the same ownership discipline as a Tdc's
     * arrival caches.
     */
    DvthCacheEntry &
    dvthSlot(ElementHandle h)
    {
        return dvth_chunks_[h >> kChunkShift]
            ->entries[h & kChunkMask];
    }

    /**
     * Ids of every materialised element, sorted by packed key so the
     * listing is deterministic regardless of materialisation order.
     */
    std::vector<ResourceId> sortedIds() const;

  private:
    /** Elements per chunk; power of two so slot() is shift + mask. */
    static constexpr std::uint32_t kChunkShift = 10;
    static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
    static constexpr std::uint32_t kChunkMask = kChunkSize - 1;

    struct Chunk
    {
        alignas(RoutingElement) std::byte
            raw[sizeof(RoutingElement) * kChunkSize];
    };

    /** ΔVth memo chunk mirroring one element chunk, kept out of the
     *  element slab so a RoutingElement stays one cache line. */
    struct DvthChunk
    {
        DvthCacheEntry entries[kChunkSize];
    };

    RoutingElement *slot(ElementHandle h)
    {
        return reinterpret_cast<RoutingElement *>(
                   chunks_[h >> kChunkShift]->raw) +
               (h & kChunkMask);
    }
    const RoutingElement *slot(ElementHandle h) const
    {
        return reinterpret_cast<const RoutingElement *>(
                   chunks_[h >> kChunkShift]->raw) +
               (h & kChunkMask);
    }

    /**
     * Open-addressing key index: a power-of-two probe table of
     * (key, handle) with handle == kInvalidElement marking empty
     * slots. Keys are never erased, so linear probing needs no
     * tombstones; the flat layout keeps the bind/materialise paths —
     * a hash probe per configured element per design load — off the
     * node-allocating std::unordered_map.
     */
    struct IndexSlot
    {
        std::uint64_t key = 0;
        ElementHandle handle = kInvalidElement;
    };

    static std::uint64_t
    hashKey(std::uint64_t key)
    {
        // splitmix64 finaliser: full-avalanche mix of the packed id.
        key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ULL;
        key = (key ^ (key >> 27)) * 0x94d049bb133111ebULL;
        return key ^ (key >> 31);
    }

    /** Probe for key (caller holds a lock). */
    ElementHandle lookup(std::uint64_t key) const;

    /** Insert key -> h, growing as needed (caller holds the unique
     *  lock). */
    void indexInsert(std::uint64_t key, ElementHandle h);

    std::vector<std::unique_ptr<Chunk>> chunks_;
    /** Grown in lockstep with chunks_ (see ensure()). */
    std::vector<std::unique_ptr<DvthChunk>> dvth_chunks_;
    std::atomic<std::uint32_t> count_ = 0;
    std::vector<IndexSlot> index_;
    std::uint32_t index_used_ = 0;
    mutable std::shared_mutex mutex_;
};

} // namespace pentimento::fabric

#endif // PENTIMENTO_FABRIC_AGING_STORE_HPP
