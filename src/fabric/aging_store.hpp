/**
 * @file
 * Dense slab storage for the device's persistent aging state.
 *
 * The store owns every materialised RoutingElement in a chunked slab:
 * elements are assigned *dense handles* (slab indices) in
 * materialisation order and are never erased or relocated, so both
 * handles and element addresses stay valid for the lifetime of the
 * store. Consumers resolve a ResourceId to a handle (or pointer)
 * exactly once — at bind time — and every subsequent hot-path access
 * is a flat array read with no hashing and no lock.
 *
 * The slab + key-index machinery itself is the generic
 * ElementSlab<T> (fabric/element_slab.hpp); AgingStore layers the
 * epoch-keyed ΔVth memo on top, grown in lockstep with the element
 * chunks via the slab's chunk-grow hook so a RoutingElement stays one
 * cache line and the memo stays a flat side array.
 *
 * Thread-safety: ensure()/find()/size()/sortedIds() may be called
 * concurrently (a shared_mutex guards the key index and slab growth).
 * sweepAt() is the unlocked dense accessor for exclusive phases
 * (aging sweeps): callers must guarantee no concurrent
 * materialisation, which the experiment loop does by construction —
 * condition and measurement phases alternate serially.
 */

#ifndef PENTIMENTO_FABRIC_AGING_STORE_HPP
#define PENTIMENTO_FABRIC_AGING_STORE_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fabric/element_slab.hpp"
#include "fabric/resource.hpp"
#include "fabric/routing_element.hpp"

namespace pentimento::fabric {

/** Epoch value meaning "this ΔVth entry has never been filled". The
 *  device's state epoch counts up from zero, so ~0 is unreachable. */
inline constexpr std::uint64_t kDvthNeverCached = ~0ULL;

/**
 * Epoch-keyed ΔVth memo for one element.
 *
 * deltaVth is a pure function of the element's aging state — it never
 * depends on temperature or polarity — so it is constant between
 * state-epoch bumps. Caching both transistors' shifts per element
 * collapses the two pow() calls of BtiState::deltaVthStressed to once
 * per (element, epoch) instead of once per arrival recompute: a TDC
 * probing 10 temperatures at one device state pays the power law once.
 */
struct DvthCacheEntry
{
    /** State epoch the shifts were computed at. */
    std::uint64_t epoch = kDvthNeverCached;
    /** NMOS threshold shift (limits falling transitions), volts. */
    double nmos_v = 0.0;
    /** PMOS threshold shift (limits rising transitions), volts. */
    double pmos_v = 0.0;
};

/**
 * Chunked slab of RoutingElements plus a ResourceId-key index and a
 * ΔVth memo side array.
 */
class AgingStore
{
  public:
    AgingStore();
    ~AgingStore() = default;

    AgingStore(const AgingStore &) = delete;
    AgingStore &operator=(const AgingStore &) = delete;

    /** Number of materialised elements. Lock-free (see
     *  ElementSlab::size()). Called once per recorded aging span. */
    std::size_t
    size() const
    {
        return slab_.size();
    }

    /**
     * Handle for id, materialising via `make` when absent. `make` runs
     * outside the exclusive section (variation sampling is the
     * expensive part); when two threads race, one construction wins
     * and the other is discarded.
     */
    ElementHandle
    ensure(ResourceId id,
           const std::function<RoutingElement(ResourceId)> &make)
    {
        return slab_.ensure(id, make);
    }

    /** Handle for a packed key, or kInvalidElement. */
    ElementHandle
    find(std::uint64_t key) const
    {
        return slab_.find(key);
    }

    /**
     * find() without the shared lock, for exclusive phases (design
     * load/wipe resolution — the tenancy-turnover hot path, which
     * probes once per configured key). Same contract as sweepAt():
     * the caller must guarantee no concurrent ensure().
     */
    ElementHandle
    findExclusive(std::uint64_t key) const
    {
        return slab_.findExclusive(key);
    }

    /** Element behind a handle (shared-locked bounds check). */
    RoutingElement &
    at(ElementHandle h)
    {
        return slab_.at(h);
    }
    const RoutingElement &
    at(ElementHandle h) const
    {
        return slab_.at(h);
    }

    /**
     * Unlocked dense access for exclusive-phase sweeps. The handle
     * must be < size(); no concurrent ensure() may run.
     */
    RoutingElement &
    sweepAt(ElementHandle h)
    {
        return slab_.sweepAt(h);
    }
    const RoutingElement &
    sweepAt(ElementHandle h) const
    {
        return slab_.sweepAt(h);
    }

    /**
     * ΔVth cache entry of an element, unlocked like sweepAt(). The
     * handle must be < size(). Concurrency contract: entries may be
     * read/written during measurement fan-out, but (a) the state
     * epoch is constant throughout any measurement phase (reads never
     * bump it), and (b) concurrent lanes own disjoint element sets
     * (each sensor walks its own route + chain), so no two lanes
     * touch one entry — the same ownership discipline as a Tdc's
     * arrival caches.
     */
    DvthCacheEntry &
    dvthSlot(ElementHandle h)
    {
        return dvth_chunks_[h >> ElementSlab<RoutingElement>::kChunkShift]
            ->entries[h & ElementSlab<RoutingElement>::kChunkMask];
    }

    /**
     * Ids of every materialised element, sorted by packed key so the
     * listing is deterministic regardless of materialisation order.
     */
    std::vector<ResourceId>
    sortedIds() const
    {
        return slab_.sortedIds();
    }

  private:
    /** ΔVth memo chunk mirroring one element chunk, kept out of the
     *  element slab so a RoutingElement stays one cache line. */
    struct DvthChunk
    {
        DvthCacheEntry
            entries[ElementSlab<RoutingElement>::kChunkSize];
    };

    ElementSlab<RoutingElement> slab_;
    /** Grown in lockstep with the slab's chunks via the grow hook
     *  (installed in the constructor, invoked under the slab's unique
     *  lock). */
    std::vector<std::unique_ptr<DvthChunk>> dvth_chunks_;
};

} // namespace pentimento::fabric

#endif // PENTIMENTO_FABRIC_AGING_STORE_HPP
