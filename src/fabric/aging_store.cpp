#include "fabric/aging_store.hpp"

#include <algorithm>
#include <mutex>

#include "util/logging.hpp"

namespace pentimento::fabric {

AgingStore::~AgingStore()
{
    const std::uint32_t count = count_.load(std::memory_order_relaxed);
    for (std::uint32_t h = 0; h < count; ++h) {
        slot(h)->~RoutingElement();
    }
}

ElementHandle
AgingStore::lookup(std::uint64_t key) const
{
    if (index_.empty()) {
        return kInvalidElement;
    }
    const std::size_t mask = index_.size() - 1;
    std::size_t i = hashKey(key) & mask;
    while (true) {
        const IndexSlot &slot = index_[i];
        if (slot.handle == kInvalidElement) {
            return kInvalidElement;
        }
        if (slot.key == key) {
            return slot.handle;
        }
        i = (i + 1) & mask;
    }
}

void
AgingStore::indexInsert(std::uint64_t key, ElementHandle h)
{
    // Keep the load factor under 1/2 so probe runs stay short. The
    // arithmetic must run at std::size_t width: at uint32 width the
    // doubling overflows once index_used_ crosses 2^31, the grow
    // check goes false forever, and the table silently overfills
    // until lookup()'s probe loop can no longer terminate.
    if (2 * (static_cast<std::size_t>(index_used_) + 1) >
        index_.size()) {
        const std::size_t grown =
            index_.empty() ? 1024 : index_.size() * 2;
        std::vector<IndexSlot> rehashed(grown);
        const std::size_t mask = grown - 1;
        for (const IndexSlot &slot : index_) {
            if (slot.handle == kInvalidElement) {
                continue;
            }
            std::size_t i = hashKey(slot.key) & mask;
            while (rehashed[i].handle != kInvalidElement) {
                i = (i + 1) & mask;
            }
            rehashed[i] = slot;
        }
        index_ = std::move(rehashed);
    }
    const std::size_t mask = index_.size() - 1;
    std::size_t i = hashKey(key) & mask;
    while (index_[i].handle != kInvalidElement) {
        i = (i + 1) & mask;
    }
    index_[i] = IndexSlot{key, h};
    ++index_used_;
}

ElementHandle
AgingStore::ensure(ResourceId id,
                   const std::function<RoutingElement(ResourceId)> &make)
{
    const std::uint64_t key = id.key();
    {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        const ElementHandle h = lookup(key);
        if (h != kInvalidElement) {
            return h;
        }
    }
    RoutingElement fresh = make(id);
    std::unique_lock<std::shared_mutex> lock(mutex_);
    const ElementHandle existing = lookup(key);
    if (existing != kInvalidElement) {
        return existing; // another thread won the race
    }
    const std::uint32_t count = count_.load(std::memory_order_relaxed);
    if (count == kInvalidElement) {
        util::fatal("AgingStore: element capacity exhausted");
    }
    if ((count >> kChunkShift) == chunks_.size()) {
        chunks_.push_back(std::make_unique<Chunk>());
        dvth_chunks_.push_back(std::make_unique<DvthChunk>());
    }
    const ElementHandle h = count;
    new (slot(h)) RoutingElement(std::move(fresh));
    // Publish only after the element is constructed (see size()).
    count_.store(count + 1, std::memory_order_release);
    indexInsert(key, h);
    return h;
}

ElementHandle
AgingStore::find(std::uint64_t key) const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return lookup(key);
}

RoutingElement &
AgingStore::at(ElementHandle h)
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    if (h >= size()) {
        util::fatal("AgingStore::at: handle out of range");
    }
    return *slot(h);
}

const RoutingElement &
AgingStore::at(ElementHandle h) const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    if (h >= size()) {
        util::fatal("AgingStore::at: handle out of range");
    }
    return *slot(h);
}

std::vector<ResourceId>
AgingStore::sortedIds() const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    const std::uint32_t count = count_.load(std::memory_order_relaxed);
    std::vector<std::uint64_t> keys;
    keys.reserve(count);
    for (std::uint32_t h = 0; h < count; ++h) {
        keys.push_back(slot(h)->id().key());
    }
    std::sort(keys.begin(), keys.end());
    std::vector<ResourceId> ids;
    ids.reserve(keys.size());
    for (const std::uint64_t key : keys) {
        ids.push_back(ResourceId::fromKey(key));
    }
    return ids;
}

} // namespace pentimento::fabric
