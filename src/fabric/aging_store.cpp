#include "fabric/aging_store.hpp"

#include <algorithm>
#include <mutex>

#include "util/logging.hpp"

namespace pentimento::fabric {

AgingStore::~AgingStore()
{
    for (std::uint32_t h = 0; h < count_; ++h) {
        slot(h)->~RoutingElement();
    }
}

std::size_t
AgingStore::size() const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return count_;
}

ElementHandle
AgingStore::ensure(ResourceId id,
                   const std::function<RoutingElement(ResourceId)> &make)
{
    const std::uint64_t key = id.key();
    {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        const auto it = index_.find(key);
        if (it != index_.end()) {
            return it->second;
        }
    }
    RoutingElement fresh = make(id);
    std::unique_lock<std::shared_mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
        return it->second; // another thread won the race
    }
    if (count_ == kInvalidElement) {
        util::fatal("AgingStore: element capacity exhausted");
    }
    if ((count_ >> kChunkShift) == chunks_.size()) {
        chunks_.push_back(std::make_unique<Chunk>());
    }
    const ElementHandle h = count_;
    new (slot(h)) RoutingElement(std::move(fresh));
    ++count_;
    index_.emplace(key, h);
    return h;
}

ElementHandle
AgingStore::find(std::uint64_t key) const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    const auto it = index_.find(key);
    return it == index_.end() ? kInvalidElement : it->second;
}

RoutingElement &
AgingStore::at(ElementHandle h)
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    if (h >= count_) {
        util::fatal("AgingStore::at: handle out of range");
    }
    return *slot(h);
}

const RoutingElement &
AgingStore::at(ElementHandle h) const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    if (h >= count_) {
        util::fatal("AgingStore::at: handle out of range");
    }
    return *slot(h);
}

std::vector<ResourceId>
AgingStore::sortedIds() const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    std::vector<std::uint64_t> keys;
    keys.reserve(count_);
    for (std::uint32_t h = 0; h < count_; ++h) {
        keys.push_back(slot(h)->id().key());
    }
    std::sort(keys.begin(), keys.end());
    std::vector<ResourceId> ids;
    ids.reserve(keys.size());
    for (const std::uint64_t key : keys) {
        ids.push_back(ResourceId::fromKey(key));
    }
    return ids;
}

} // namespace pentimento::fabric
