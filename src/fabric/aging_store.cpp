#include "fabric/aging_store.hpp"

namespace pentimento::fabric {

AgingStore::AgingStore()
{
    slab_.setChunkGrowHook(
        [this] { dvth_chunks_.push_back(std::make_unique<DvthChunk>()); });
}

} // namespace pentimento::fabric
