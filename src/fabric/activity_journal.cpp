#include "fabric/activity_journal.hpp"

#include <algorithm>

#include "util/logging.hpp"
#include "util/snapshot.hpp"

namespace pentimento::fabric {

void
ActivityJournal::grow()
{
    growFor(used_ + 1);
}

void
ActivityJournal::growFor(std::size_t total)
{
    std::size_t grown = slots_.empty() ? 256 : slots_.size();
    while (2 * total > grown) {
        grown *= 2;
    }
    if (grown == slots_.size()) {
        return;
    }
    // Slot is trivial, so this is one memset-cheap allocation plus a
    // re-insert sweep — not 10^5 run constructors.
    std::vector<Slot> rehashed(grown);
    const std::size_t mask = grown - 1;
    for (const Slot &slot : slots_) {
        if (slot.count == 0) {
            continue;
        }
        std::size_t i = hashKey(slot.key) & mask;
        while (rehashed[i].count != 0) {
            i = (i + 1) & mask;
        }
        rehashed[i] = slot;
    }
    slots_ = std::move(rehashed);
}

void
ActivityJournal::reserve(std::size_t expected_keys)
{
    growFor(used_ + expected_keys);
}

const ActivityJournal::RawRun &
ActivityJournal::lastRun(const Slot &slot) const
{
    if (slot.count <= 2) {
        return slot.runs[slot.count - 1];
    }
    return arena_[slot.tail].run;
}

ElementActivity
ActivityJournal::current(std::uint64_t key) const
{
    if (slots_.empty()) {
        return ElementActivity{};
    }
    const Slot &slot = slots_[probe(key)];
    if (slot.count == 0 || slot.count == kSpent) {
        return ElementActivity{};
    }
    const RawRun &last = lastRun(slot);
    return ElementActivity{last.kind, last.duty_one};
}

bool
ActivityJournal::recordOverflow(Slot &slot,
                                const ElementActivity &activity,
                                std::uint32_t pos)
{
    if (slot.count == kSpent) {
        util::fatal("ActivityJournal: flip recorded for a consumed "
                    "(materialised) key");
    }
    if (slot.count > 2 && sameActivity(arena_[slot.tail].run, activity)) {
        return false;
    }
    const auto node = static_cast<std::uint32_t>(arena_.size());
    arena_.push_back(Node{pack(pos, activity), kNpos});
    if (slot.count > 2) {
        arena_[slot.tail].next = node;
    } else {
        slot.head = node;
    }
    slot.tail = node;
    ++slot.count;
    return true;
}

std::vector<JournalRun>
ActivityJournal::consume(std::uint64_t key)
{
    std::vector<JournalRun> runs;
    if (slots_.empty()) {
        return runs;
    }
    Slot &slot = slots_[probe(key)];
    if (slot.count == 0 || slot.count == kSpent) {
        return runs;
    }
    runs.reserve(slot.count);
    runs.push_back(unpack(slot.runs[0]));
    if (slot.count >= 2) {
        runs.push_back(unpack(slot.runs[1]));
    }
    if (slot.count > 2) {
        for (std::uint32_t i = slot.head; i != kNpos;
             i = arena_[i].next) {
            runs.push_back(unpack(arena_[i].run));
        }
    }
    // Invalidate the memoised min only when this key attained it
    // (its first-run position is still intact here) — an observation
    // burst consuming thousands of non-pin keys must not force an
    // O(table) rescan per subsequent compaction query.
    if (slot.runs[0].from == cached_min_) {
        cached_min_ = kNpos;
    }
    slot.count = kSpent;
    slot.head = 0;
    slot.tail = 0;
    --active_;
    return runs;
}

std::vector<std::uint64_t>
ActivityJournal::activeKeys() const
{
    std::vector<std::uint64_t> keys;
    keys.reserve(active_);
    for (const Slot &slot : slots_) {
        if (slot.count != 0 && slot.count != kSpent) {
            keys.push_back(slot.key);
        }
    }
    return keys;
}

std::uint32_t
ActivityJournal::minActivePosition(std::uint32_t fallback) const
{
    if (active_ == 0) {
        return fallback;
    }
    if (cached_min_ == kNpos) {
        std::uint32_t min_pos = static_cast<std::uint32_t>(-2);
        for (const Slot &slot : slots_) {
            if (slot.count != 0 && slot.count != kSpent) {
                min_pos = std::min(min_pos, slot.runs[0].from);
            }
        }
        cached_min_ = min_pos;
    }
    return std::min(cached_min_, fallback);
}

void
ActivityJournal::rebase(std::uint32_t delta)
{
    if (delta == 0) {
        return;
    }
    if (cached_min_ != kNpos) {
        cached_min_ -= delta;
    }
    for (Slot &slot : slots_) {
        if (slot.count == 0 || slot.count == kSpent) {
            continue;
        }
        slot.runs[0].from -= delta;
        if (slot.count >= 2) {
            slot.runs[1].from -= delta;
        }
        if (slot.count > 2) {
            for (std::uint32_t i = slot.head; i != kNpos;
                 i = arena_[i].next) {
                arena_[i].run.from -= delta;
            }
        }
    }
}

namespace {

void
saveRun(util::SnapshotWriter &writer,
        std::uint32_t from, Activity kind, double duty_one)
{
    writer.u32(from);
    writer.u8(static_cast<std::uint8_t>(kind));
    writer.f64(duty_one);
}

} // namespace

void
ActivityJournal::saveState(util::SnapshotWriter &writer) const
{
    writer.u64(slots_.size());
    writer.u64(used_);
    writer.u64(active_);
    writer.u32(cached_min_);
    writer.u64(arena_.size());
    for (const Node &node : arena_) {
        saveRun(writer, node.run.from, node.run.kind, node.run.duty_one);
        writer.u32(node.next);
    }
    std::uint64_t occupied = 0;
    for (const Slot &slot : slots_) {
        occupied += slot.count != 0 ? 1 : 0;
    }
    writer.u64(occupied);
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        const Slot &slot = slots_[i];
        if (slot.count == 0) {
            continue;
        }
        writer.u64(i);
        writer.u64(slot.key);
        writer.u32(slot.count);
        writer.u32(slot.head);
        writer.u32(slot.tail);
        saveRun(writer, slot.runs[0].from, slot.runs[0].kind,
                slot.runs[0].duty_one);
        saveRun(writer, slot.runs[1].from, slot.runs[1].kind,
                slot.runs[1].duty_one);
    }
}

namespace {

struct RestoreRun
{
    std::uint32_t from = 0;
    std::uint8_t kind = 0;
    double duty_one = 0.0;
};

RestoreRun
readRun(util::SnapshotReader &reader)
{
    RestoreRun run;
    run.from = reader.u32();
    run.kind = reader.u8();
    run.duty_one = reader.f64();
    if (run.kind > static_cast<std::uint8_t>(Activity::Toggle)) {
        reader.fail("snapshot: journal run has invalid activity kind");
    }
    return run;
}

} // namespace

bool
ActivityJournal::restoreState(util::SnapshotReader &reader)
{
    const std::uint64_t table_size = reader.u64();
    const std::uint64_t used = reader.u64();
    const std::uint64_t active = reader.u64();
    const std::uint32_t cached_min = reader.u32();
    const std::uint64_t arena_size = reader.u64();
    if (!reader.ok()) {
        return false;
    }
    if ((table_size & (table_size - 1)) != 0 ||
        (table_size == 0 && used != 0) || active > used ||
        (table_size != 0 && 2 * used > table_size)) {
        reader.fail("snapshot: journal table geometry is inconsistent");
        return false;
    }
    std::vector<Node> arena;
    arena.reserve(arena_size);
    for (std::uint64_t i = 0; i < arena_size && reader.ok(); ++i) {
        const RestoreRun run = readRun(reader);
        const std::uint32_t next = reader.u32();
        if (reader.ok() && next != kNpos && next >= arena_size) {
            reader.fail("snapshot: journal arena link out of range");
        }
        arena.push_back(Node{
            RawRun{run.from, static_cast<Activity>(run.kind),
                   run.duty_one},
            next});
    }
    const std::uint64_t occupied = reader.u64();
    if (reader.ok() && occupied > table_size) {
        reader.fail("snapshot: journal occupancy exceeds table size");
    }
    if (!reader.ok()) {
        return false;
    }
    std::vector<Slot> slots(table_size);
    std::uint64_t seen_active = 0;
    for (std::uint64_t n = 0; n < occupied && reader.ok(); ++n) {
        const std::uint64_t index = reader.u64();
        const std::uint64_t key = reader.u64();
        const std::uint32_t count = reader.u32();
        const std::uint32_t head = reader.u32();
        const std::uint32_t tail = reader.u32();
        const RestoreRun run0 = readRun(reader);
        const RestoreRun run1 = readRun(reader);
        if (!reader.ok()) {
            return false;
        }
        if (index >= table_size || slots[index].count != 0) {
            reader.fail("snapshot: journal slot index invalid or "
                        "duplicated");
            return false;
        }
        if (count == 0 ||
            (count != kSpent && count > 2 &&
             (head >= arena_size || tail >= arena_size ||
              count - 2 > arena_size))) {
            reader.fail("snapshot: journal slot run count/chain invalid");
            return false;
        }
        Slot &slot = slots[index];
        slot.key = key;
        slot.count = count;
        slot.head = head;
        slot.tail = tail;
        slot.runs[0] = RawRun{run0.from,
                              static_cast<Activity>(run0.kind),
                              run0.duty_one};
        slot.runs[1] = RawRun{run1.from,
                              static_cast<Activity>(run1.kind),
                              run1.duty_one};
        seen_active += (count != kSpent) ? 1 : 0;
    }
    if (!reader.ok()) {
        return false;
    }
    if (seen_active != active) {
        reader.fail("snapshot: journal active-key count mismatch");
        return false;
    }
    slots_ = std::move(slots);
    arena_ = std::move(arena);
    used_ = used;
    active_ = active;
    cached_min_ = cached_min;
    return true;
}

} // namespace pentimento::fabric
