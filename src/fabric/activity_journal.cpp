#include "fabric/activity_journal.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace pentimento::fabric {

void
ActivityJournal::grow()
{
    growFor(used_ + 1);
}

void
ActivityJournal::growFor(std::size_t total)
{
    std::size_t grown = slots_.empty() ? 256 : slots_.size();
    while (2 * total > grown) {
        grown *= 2;
    }
    if (grown == slots_.size()) {
        return;
    }
    // Slot is trivial, so this is one memset-cheap allocation plus a
    // re-insert sweep — not 10^5 run constructors.
    std::vector<Slot> rehashed(grown);
    const std::size_t mask = grown - 1;
    for (const Slot &slot : slots_) {
        if (slot.count == 0) {
            continue;
        }
        std::size_t i = hashKey(slot.key) & mask;
        while (rehashed[i].count != 0) {
            i = (i + 1) & mask;
        }
        rehashed[i] = slot;
    }
    slots_ = std::move(rehashed);
}

void
ActivityJournal::reserve(std::size_t expected_keys)
{
    growFor(used_ + expected_keys);
}

const ActivityJournal::RawRun &
ActivityJournal::lastRun(const Slot &slot) const
{
    if (slot.count <= 2) {
        return slot.runs[slot.count - 1];
    }
    return arena_[slot.tail].run;
}

ElementActivity
ActivityJournal::current(std::uint64_t key) const
{
    if (slots_.empty()) {
        return ElementActivity{};
    }
    const Slot &slot = slots_[probe(key)];
    if (slot.count == 0 || slot.count == kSpent) {
        return ElementActivity{};
    }
    const RawRun &last = lastRun(slot);
    return ElementActivity{last.kind, last.duty_one};
}

bool
ActivityJournal::recordOverflow(Slot &slot,
                                const ElementActivity &activity,
                                std::uint32_t pos)
{
    if (slot.count == kSpent) {
        util::fatal("ActivityJournal: flip recorded for a consumed "
                    "(materialised) key");
    }
    if (slot.count > 2 && sameActivity(arena_[slot.tail].run, activity)) {
        return false;
    }
    const auto node = static_cast<std::uint32_t>(arena_.size());
    arena_.push_back(Node{pack(pos, activity), kNpos});
    if (slot.count > 2) {
        arena_[slot.tail].next = node;
    } else {
        slot.head = node;
    }
    slot.tail = node;
    ++slot.count;
    return true;
}

std::vector<JournalRun>
ActivityJournal::consume(std::uint64_t key)
{
    std::vector<JournalRun> runs;
    if (slots_.empty()) {
        return runs;
    }
    Slot &slot = slots_[probe(key)];
    if (slot.count == 0 || slot.count == kSpent) {
        return runs;
    }
    runs.reserve(slot.count);
    runs.push_back(unpack(slot.runs[0]));
    if (slot.count >= 2) {
        runs.push_back(unpack(slot.runs[1]));
    }
    if (slot.count > 2) {
        for (std::uint32_t i = slot.head; i != kNpos;
             i = arena_[i].next) {
            runs.push_back(unpack(arena_[i].run));
        }
    }
    // Invalidate the memoised min only when this key attained it
    // (its first-run position is still intact here) — an observation
    // burst consuming thousands of non-pin keys must not force an
    // O(table) rescan per subsequent compaction query.
    if (slot.runs[0].from == cached_min_) {
        cached_min_ = kNpos;
    }
    slot.count = kSpent;
    slot.head = 0;
    slot.tail = 0;
    --active_;
    return runs;
}

std::vector<std::uint64_t>
ActivityJournal::activeKeys() const
{
    std::vector<std::uint64_t> keys;
    keys.reserve(active_);
    for (const Slot &slot : slots_) {
        if (slot.count != 0 && slot.count != kSpent) {
            keys.push_back(slot.key);
        }
    }
    return keys;
}

std::uint32_t
ActivityJournal::minActivePosition(std::uint32_t fallback) const
{
    if (active_ == 0) {
        return fallback;
    }
    if (cached_min_ == kNpos) {
        std::uint32_t min_pos = static_cast<std::uint32_t>(-2);
        for (const Slot &slot : slots_) {
            if (slot.count != 0 && slot.count != kSpent) {
                min_pos = std::min(min_pos, slot.runs[0].from);
            }
        }
        cached_min_ = min_pos;
    }
    return std::min(cached_min_, fallback);
}

void
ActivityJournal::rebase(std::uint32_t delta)
{
    if (delta == 0) {
        return;
    }
    if (cached_min_ != kNpos) {
        cached_min_ -= delta;
    }
    for (Slot &slot : slots_) {
        if (slot.count == 0 || slot.count == kSpent) {
            continue;
        }
        slot.runs[0].from -= delta;
        if (slot.count >= 2) {
            slot.runs[1].from -= delta;
        }
        if (slot.count > 2) {
            for (std::uint32_t i = slot.head; i != kNpos;
                 i = arena_[i].next) {
                arena_[i].run.from -= delta;
            }
        }
    }
}

} // namespace pentimento::fabric
