/**
 * @file
 * Bitstream images and skeleton extraction.
 *
 * Assumption 1 of the threat models rests on placement information
 * flowing out of *bitstreams*: "the OpenTitan hardware root of trust
 * distributes a prebuilt bitstream... Xilinx FINN provides prebuilt
 * bitstreams... which allows one to determine the locations of the
 * sensitive data" (paper §2). This module models that artifact:
 *
 *  - compile() serialises a Design into a frame-oriented image tied
 *    to a device geometry;
 *  - encrypted images (AWS marketplace AFIs) can be *loaded* but not
 *    inspected;
 *  - plaintext images (OpenTitan / FINN style) expose their
 *    configuration, and extractSkeleton() recovers the route
 *    placements — exactly the reverse-engineering step an attacker
 *    performs on a public prebuilt.
 */

#ifndef PENTIMENTO_FABRIC_BITSTREAM_HPP
#define PENTIMENTO_FABRIC_BITSTREAM_HPP

#include <memory>
#include <string>
#include <vector>

#include "fabric/design.hpp"
#include "fabric/device.hpp"
#include "fabric/route.hpp"

namespace pentimento::fabric {

/**
 * A compiled FPGA configuration image.
 */
class Bitstream
{
  public:
    /** Compile a design into a plaintext image for a device family. */
    static Bitstream compile(std::shared_ptr<const Design> design,
                             const DeviceConfig &target);

    /**
     * Compile with bitstream encryption (the marketplace case): the
     * image still loads, but its contents cannot be inspected.
     */
    static Bitstream
    compileEncrypted(std::shared_ptr<const Design> design,
                     const DeviceConfig &target);

    /** Whether the configuration payload is encrypted. */
    bool encrypted() const { return encrypted_; }

    /** Device family the image targets (must match at load). */
    const std::string &deviceFamily() const { return family_; }

    /**
     * Number of configuration frames (one frame per 32 configured
     * elements, plus a header) — a size metric for reports.
     */
    std::size_t frameCount() const;

    /**
     * Materialise the design for loading. Both plaintext and
     * encrypted images load — the platform holds the decryption key.
     */
    std::shared_ptr<const Design> instantiate() const { return design_; }

    /**
     * Reverse-engineer the net skeletons from a *plaintext* image:
     * maximal runs of consecutively-placed, identically-driven
     * routing elements are reported as one net each, ordered by
     * placement. Static values are deliberately not returned — for
     * the public prebuilt flows the secrets are loaded at runtime
     * (Type B), so placements are what the image leaks.
     *
     * @throws util::FatalError on an encrypted image
     */
    std::vector<RouteSpec> extractSkeleton() const;

  private:
    Bitstream(std::shared_ptr<const Design> design,
              const DeviceConfig &target, bool encrypted);

    /** Allocator-linear position of a routing node on the target. */
    std::uint64_t linearOf(const ResourceId &id) const;

    std::shared_ptr<const Design> design_;
    std::string family_;
    std::uint16_t tiles_x_;
    std::uint16_t nodes_per_tile_;
    double routing_pitch_ps_;
    bool encrypted_;
};

} // namespace pentimento::fabric

#endif // PENTIMENTO_FABRIC_BITSTREAM_HPP
