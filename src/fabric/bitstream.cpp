#include "fabric/bitstream.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace pentimento::fabric {

Bitstream::Bitstream(std::shared_ptr<const Design> design,
                     const DeviceConfig &target, bool encrypted)
    : design_(std::move(design)), family_(target.family),
      tiles_x_(target.tiles_x), nodes_per_tile_(target.nodes_per_tile),
      routing_pitch_ps_(target.routing_pitch_ps), encrypted_(encrypted)
{
    if (!design_) {
        util::fatal("Bitstream: null design");
    }
    if (family_.empty()) {
        util::fatal("Bitstream: empty device family");
    }
}

Bitstream
Bitstream::compile(std::shared_ptr<const Design> design,
                   const DeviceConfig &target)
{
    return Bitstream(std::move(design), target, false);
}

Bitstream
Bitstream::compileEncrypted(std::shared_ptr<const Design> design,
                            const DeviceConfig &target)
{
    return Bitstream(std::move(design), target, true);
}

std::size_t
Bitstream::frameCount() const
{
    return 1 + (design_->configuredElements() + 31) / 32;
}

std::uint64_t
Bitstream::linearOf(const ResourceId &id) const
{
    const std::uint64_t tile =
        static_cast<std::uint64_t>(id.tile_y) * tiles_x_ + id.tile_x;
    return tile * nodes_per_tile_ + id.index;
}

std::vector<RouteSpec>
Bitstream::extractSkeleton() const
{
    if (encrypted_) {
        util::fatal("Bitstream::extractSkeleton: image is encrypted "
                    "(\"no FPGA internal design code is exposed\")");
    }
    // Collect the configured routing elements in allocator-linear
    // placement order; maximal runs of adjacent positions with the
    // same drive class reconstruct the nets.
    struct Entry
    {
        std::uint64_t linear;
        ResourceId id;
        Activity kind;
    };
    std::vector<Entry> entries;
    for (const auto &[key, activity] : design_->activityMap()) {
        const ResourceId id = ResourceId::fromKey(key);
        if (id.type != ResourceType::RoutingNode) {
            continue;
        }
        entries.push_back({linearOf(id), id, activity.kind});
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.linear < b.linear;
              });

    std::vector<RouteSpec> skeleton;
    RouteSpec current;
    std::uint64_t prev_linear = 0;
    Activity prev_kind = Activity::Unused;
    const auto flush = [&] {
        if (!current.elements.empty()) {
            current.name = "net_" + std::to_string(skeleton.size());
            current.target_ps =
                static_cast<double>(current.elements.size()) *
                routing_pitch_ps_;
            skeleton.push_back(std::move(current));
            current = RouteSpec{};
        }
    };
    for (const Entry &entry : entries) {
        const bool adjacent = !current.elements.empty() &&
                              entry.linear == prev_linear + 1 &&
                              entry.kind == prev_kind;
        if (!adjacent) {
            flush();
        }
        current.elements.push_back(entry.id);
        prev_linear = entry.linear;
        prev_kind = entry.kind;
    }
    flush();
    return skeleton;
}

} // namespace pentimento::fabric
