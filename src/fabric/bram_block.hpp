/**
 * @file
 * BRAM content remanence: the second persistent resource class.
 *
 * Pentimento's channel is interconnect *aging*; the related work
 * (Zhang et al., "Security Risks Due to Data Persistence in Cloud
 * FPGA Platforms") attacks memory *contents* surviving tenancy
 * changes. The two channels have opposite persistence semantics:
 *
 *   - interconnect aging survives reconfiguration (it is physical
 *     wear) but recovers over time;
 *   - BRAM contents survive power events and PCIe resets (within a
 *     per-cell retention window) but are zeroed the moment a new
 *     bitstream is configured, and may additionally be scrubbed by
 *     provider policy.
 *
 * A BramBlock models one block RAM's representative word plus the
 * state machine that tracks what an attacker reading it back would
 * see:
 *
 *     Unwritten ──write──▶ Written ──survived power-off──▶ Retained
 *         │                  │  │
 *         │                  │  └──retention exceeded──▶ Decayed
 *         └──────────────────┴──(re)configuration/scrub──▶ Zeroed
 *
 * Written/Retained/Decayed resolution is lazy: power-off hours
 * accrue on the block (`accrueOffPower`) and the Written→Retained or
 * Written→Decayed transition happens only when the content is next
 * observed (`resolveRetention`) — mirroring how routing-element aging
 * replays lazily at observation. The retention limit is a
 * deterministic per-element draw (the Device seeds it from a split
 * Rng stream at materialisation), so resolution is pure and
 * independent of observation order and worker count.
 *
 * The struct is trivially copyable by design: it lives in an
 * ElementSlab chunk and is snapshotted field-by-field.
 */

#ifndef PENTIMENTO_FABRIC_BRAM_BLOCK_HPP
#define PENTIMENTO_FABRIC_BRAM_BLOCK_HPP

#include <cstdint>
#include <type_traits>

#include "fabric/resource.hpp"

namespace pentimento::fabric {

/** Observable lifecycle of one BRAM block's contents. */
enum class BramState : std::uint8_t
{
    Unwritten, ///< never initialised since device power-on
    Written,   ///< holds tenant data; retention not yet resolved
    Retained,  ///< survived power events inside the retention window
    Decayed,   ///< retention window exceeded; content is cell noise
    Zeroed     ///< cleared by (re)configuration or provider scrub
};

/** Human-readable state name (tests and experiment summaries). */
const char *toString(BramState state);

/**
 * One block RAM's persistent content state.
 */
struct BramBlock
{
    ResourceId id_{};
    BramState state = BramState::Unwritten;
    /** Representative 64-bit word of the block's contents. */
    std::uint64_t content = 0;
    /** Device-clock hour the content was last written. */
    double written_at_h = 0.0;
    /** Off-power hours accrued since the last write (pending decay
     *  resolution — see resolveRetention()). */
    double off_power_h = 0.0;
    /** Per-element retention limit: off-power time beyond which the
     *  content decays to cell noise. Drawn once at materialisation
     *  from a split Rng stream keyed by the element id. */
    double retention_limit_h = 0.0;

    ResourceId
    id() const
    {
        return id_;
    }

    /** Tenant write: content becomes live data, pending decay state
     *  resets. */
    void
    write(std::uint64_t word, double now_h)
    {
        state = BramState::Written;
        content = word;
        written_at_h = now_h;
        off_power_h = 0.0;
    }

    /** (Re)configuration or provider scrub: contents are cleared
     *  regardless of prior state. */
    void
    zero()
    {
        state = BramState::Zeroed;
        content = 0;
        off_power_h = 0.0;
    }

    /** Accrue off-power time against the retention window. Only
     *  content that exists can decay. */
    void
    accrueOffPower(double hours)
    {
        if (state == BramState::Written ||
            state == BramState::Retained) {
            off_power_h += hours;
        }
    }

    /**
     * Lazily resolve pending off-power exposure at observation time.
     * Returns true when the block just transitioned to Decayed — the
     * caller must then replace `content` with its deterministic
     * cell-noise draw (the draw needs the device seed, which the
     * block does not carry).
     */
    bool
    resolveRetention()
    {
        if (state != BramState::Written &&
            state != BramState::Retained) {
            return false;
        }
        if (off_power_h > retention_limit_h) {
            state = BramState::Decayed;
            return true;
        }
        if (off_power_h > 0.0) {
            state = BramState::Retained;
        }
        return false;
    }
};

static_assert(std::is_trivially_copyable_v<BramBlock>,
              "BramBlock lives in raw slab chunks and is snapshotted "
              "field-by-field");

} // namespace pentimento::fabric

#endif // PENTIMENTO_FABRIC_BRAM_BLOCK_HPP
