/**
 * @file
 * Routes and route skeletons.
 *
 * A RouteSpec is the paper's "skeleton": the ordered list of physical
 * resource ids a net occupies, with no knowledge of the value carried.
 * Threat-model Assumption 1 is that the attacker possesses the
 * victim's RouteSpecs (from an open-source bitstream such as OpenTitan
 * or FINN, or as the AFI author). A Route binds a spec to a concrete
 * Device for delay queries.
 */

#ifndef PENTIMENTO_FABRIC_ROUTE_HPP
#define PENTIMENTO_FABRIC_ROUTE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "fabric/aging_store.hpp"
#include "fabric/resource.hpp"
#include "phys/delay_model.hpp"

namespace pentimento::fabric {

class Device;

/**
 * Placement skeleton of one net (Assumption 1 artifact).
 */
struct RouteSpec
{
    /** Net name, e.g. "keymgr_aes_key[key][0][17]". */
    std::string name;
    /** Nominal design delay this route was allocated for (ps). */
    double target_ps = 0.0;
    /** Ordered physical elements the net traverses. */
    std::vector<ResourceId> elements;

    /** Number of physical elements (transistor stages). */
    std::size_t size() const { return elements.size(); }
};

class RoutingElement;

/**
 * A RouteSpec bound to a Device.
 *
 * Routes are cheap value types; the aging state lives in the Device.
 * Binding resolves every ResourceId to its dense element once, so
 * delay queries are flat pointer walks with no hashing or locking.
 */
class Route
{
  public:
    Route(Device &device, RouteSpec spec);

    /** The placement skeleton. */
    const RouteSpec &spec() const { return spec_; }

    /** Net name. */
    const std::string &name() const { return spec_.name; }

    /** Number of elements. */
    std::size_t size() const { return spec_.size(); }

    /** Sum of un-aged element delays for a polarity. */
    double baseDelayPs(phys::Transition t) const;

    /** Present delay including BTI and temperature. */
    double delayPs(phys::Transition t, double temp_k) const;

    /**
     * The pure BTI-induced delay shift for a polarity, in ps, at the
     * reference temperature (diagnostic; the TDC never sees this
     * directly).
     */
    double btiShiftPs(phys::Transition t) const;

    /** Device this route is bound to. */
    Device &device() { return *device_; }
    const Device &device() const { return *device_; }

  private:
    /** Replay pending aging segments before reading delays. */
    void syncForRead() const;

    Device *device_;
    RouteSpec spec_;
    /** Dense element pointers resolved at bind time (stable: the
     *  device's slab never relocates elements). */
    std::vector<RoutingElement *> elements_;
    /** Matching dense handles (for the pre-read lazy-aging sync). */
    std::vector<ElementHandle> handles_;
    /** Device state epoch the elements were last synced at: delay
     *  queries skip the per-element sync scan entirely while the
     *  device has not moved. */
    mutable std::uint64_t synced_epoch_;
};

} // namespace pentimento::fabric

#endif // PENTIMENTO_FABRIC_ROUTE_HPP
