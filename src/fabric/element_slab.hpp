/**
 * @file
 * Generic chunked-slab element storage with a packed-key index.
 *
 * The slab machinery AgingStore pioneered for RoutingElements — dense
 * handles assigned in materialisation order, never erased or
 * relocated, resolved from a ResourceId exactly once at bind time —
 * is not specific to interconnect aging. Any persistent per-resource
 * state class (BRAM content remanence, future flip-flop or DSP
 * channels) wants the same storage contract, so it lives here as a
 * template and AgingStore becomes a thin wrapper that adds its
 * ΔVth side arrays.
 *
 * Requirements on T: movable, and exposing `ResourceId id() const`
 * (sortedIds() uses it to produce the canonical packed-key listing).
 *
 * Thread-safety: ensure()/find()/size()/sortedIds() may be called
 * concurrently (a shared_mutex guards the key index and slab growth).
 * sweepAt()/findExclusive() are the unlocked accessors for exclusive
 * phases: callers must guarantee no concurrent ensure(), which the
 * experiment loop does by construction — condition and measurement
 * phases alternate serially.
 */

#ifndef PENTIMENTO_FABRIC_ELEMENT_SLAB_HPP
#define PENTIMENTO_FABRIC_ELEMENT_SLAB_HPP

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "fabric/resource.hpp"
#include "util/logging.hpp"

namespace pentimento::fabric {

/** Dense index of a materialised element inside a slab. */
using ElementHandle = std::uint32_t;

/** Sentinel for "not materialised". */
inline constexpr ElementHandle kInvalidElement =
    static_cast<ElementHandle>(-1);

/**
 * Chunked slab of T plus a ResourceId-key index.
 */
template <typename T>
class ElementSlab
{
  public:
    /** Elements per chunk; power of two so slot() is shift + mask.
     *  Public so side arrays (AgingStore's ΔVth memo) can mirror the
     *  chunk geometry exactly. */
    static constexpr std::uint32_t kChunkShift = 10;
    static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
    static constexpr std::uint32_t kChunkMask = kChunkSize - 1;

    ElementSlab() = default;

    ~ElementSlab()
    {
        const std::uint32_t count =
            count_.load(std::memory_order_relaxed);
        for (std::uint32_t h = 0; h < count; ++h) {
            slot(h)->~T();
        }
    }

    ElementSlab(const ElementSlab &) = delete;
    ElementSlab &operator=(const ElementSlab &) = delete;

    /**
     * Hook invoked (under the unique lock) whenever a new chunk is
     * appended, so owners can grow side arrays in lockstep with the
     * slab. Install before the first ensure().
     */
    void
    setChunkGrowHook(std::function<void()> hook)
    {
        grow_hook_ = std::move(hook);
    }

    /** Number of materialised elements. Lock-free: the count only
     *  grows, and it is published (release) after the element is
     *  constructed, so a reader that observes handle h < size() can
     *  always dereference it. */
    std::size_t
    size() const
    {
        return count_.load(std::memory_order_acquire);
    }

    /**
     * Handle for id, materialising via `make` when absent. `make` runs
     * outside the exclusive section (variation sampling is the
     * expensive part); when two threads race, one construction wins
     * and the other is discarded.
     */
    ElementHandle
    ensure(ResourceId id, const std::function<T(ResourceId)> &make)
    {
        const std::uint64_t key = id.key();
        {
            std::shared_lock<std::shared_mutex> lock(mutex_);
            const ElementHandle h = lookup(key);
            if (h != kInvalidElement) {
                return h;
            }
        }
        T fresh = make(id);
        std::unique_lock<std::shared_mutex> lock(mutex_);
        const ElementHandle existing = lookup(key);
        if (existing != kInvalidElement) {
            return existing; // another thread won the race
        }
        const std::uint32_t count =
            count_.load(std::memory_order_relaxed);
        if (count == kInvalidElement) {
            util::fatal("ElementSlab: element capacity exhausted");
        }
        if ((count >> kChunkShift) == chunks_.size()) {
            chunks_.push_back(std::make_unique<Chunk>());
            if (grow_hook_) {
                grow_hook_();
            }
        }
        const ElementHandle h = count;
        new (slot(h)) T(std::move(fresh));
        // Publish only after the element is constructed (see size()).
        count_.store(count + 1, std::memory_order_release);
        indexInsert(key, h);
        return h;
    }

    /** Handle for a packed key, or kInvalidElement. */
    ElementHandle
    find(std::uint64_t key) const
    {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        return lookup(key);
    }

    /**
     * find() without the shared lock, for exclusive phases (design
     * load/wipe resolution — the tenancy-turnover hot path). Same
     * contract as sweepAt(): no concurrent ensure() may run.
     */
    ElementHandle
    findExclusive(std::uint64_t key) const
    {
        return lookup(key);
    }

    /** Element behind a handle (shared-locked bounds check). */
    T &
    at(ElementHandle h)
    {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        if (h >= size()) {
            util::fatal("ElementSlab::at: handle out of range");
        }
        return *slot(h);
    }
    const T &
    at(ElementHandle h) const
    {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        if (h >= size()) {
            util::fatal("ElementSlab::at: handle out of range");
        }
        return *slot(h);
    }

    /**
     * Unlocked dense access for exclusive-phase sweeps. The handle
     * must be < size(); no concurrent ensure() may run.
     */
    T &sweepAt(ElementHandle h) { return *slot(h); }
    const T &sweepAt(ElementHandle h) const { return *slot(h); }

    /**
     * Ids of every materialised element, sorted by packed key so the
     * listing is deterministic regardless of materialisation order.
     */
    std::vector<ResourceId>
    sortedIds() const
    {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        const std::uint32_t count =
            count_.load(std::memory_order_relaxed);
        std::vector<std::uint64_t> keys;
        keys.reserve(count);
        for (std::uint32_t h = 0; h < count; ++h) {
            keys.push_back(slot(h)->id().key());
        }
        std::sort(keys.begin(), keys.end());
        std::vector<ResourceId> ids;
        ids.reserve(keys.size());
        for (const std::uint64_t key : keys) {
            ids.push_back(ResourceId::fromKey(key));
        }
        return ids;
    }

  private:
    struct Chunk
    {
        alignas(T) std::byte raw[sizeof(T) * kChunkSize];
    };

    T *
    slot(ElementHandle h)
    {
        return reinterpret_cast<T *>(chunks_[h >> kChunkShift]->raw) +
               (h & kChunkMask);
    }
    const T *
    slot(ElementHandle h) const
    {
        return reinterpret_cast<const T *>(
                   chunks_[h >> kChunkShift]->raw) +
               (h & kChunkMask);
    }

    /**
     * Open-addressing key index: a power-of-two probe table of
     * (key, handle) with handle == kInvalidElement marking empty
     * slots. Keys are never erased, so linear probing needs no
     * tombstones; the flat layout keeps the bind/materialise paths —
     * a hash probe per configured element per design load — off the
     * node-allocating std::unordered_map.
     */
    struct IndexSlot
    {
        std::uint64_t key = 0;
        ElementHandle handle = kInvalidElement;
    };

    static std::uint64_t
    hashKey(std::uint64_t key)
    {
        // splitmix64 finaliser: full-avalanche mix of the packed id.
        key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ULL;
        key = (key ^ (key >> 27)) * 0x94d049bb133111ebULL;
        return key ^ (key >> 31);
    }

    /** Probe for key (caller holds a lock). */
    ElementHandle
    lookup(std::uint64_t key) const
    {
        if (index_.empty()) {
            return kInvalidElement;
        }
        const std::size_t mask = index_.size() - 1;
        std::size_t i = hashKey(key) & mask;
        while (true) {
            const IndexSlot &s = index_[i];
            if (s.handle == kInvalidElement) {
                return kInvalidElement;
            }
            if (s.key == key) {
                return s.handle;
            }
            i = (i + 1) & mask;
        }
    }

    /** Insert key -> h, growing as needed (caller holds the unique
     *  lock). */
    void
    indexInsert(std::uint64_t key, ElementHandle h)
    {
        // Keep the load factor under 1/2 so probe runs stay short. The
        // arithmetic must run at std::size_t width: at uint32 width the
        // doubling overflows once index_used_ crosses 2^31, the grow
        // check goes false forever, and the table silently overfills
        // until lookup()'s probe loop can no longer terminate.
        if (2 * (static_cast<std::size_t>(index_used_) + 1) >
            index_.size()) {
            const std::size_t grown =
                index_.empty() ? 1024 : index_.size() * 2;
            std::vector<IndexSlot> rehashed(grown);
            const std::size_t mask = grown - 1;
            for (const IndexSlot &s : index_) {
                if (s.handle == kInvalidElement) {
                    continue;
                }
                std::size_t i = hashKey(s.key) & mask;
                while (rehashed[i].handle != kInvalidElement) {
                    i = (i + 1) & mask;
                }
                rehashed[i] = s;
            }
            index_ = std::move(rehashed);
        }
        const std::size_t mask = index_.size() - 1;
        std::size_t i = hashKey(key) & mask;
        while (index_[i].handle != kInvalidElement) {
            i = (i + 1) & mask;
        }
        index_[i] = IndexSlot{key, h};
        ++index_used_;
    }

    std::vector<std::unique_ptr<Chunk>> chunks_;
    std::atomic<std::uint32_t> count_ = 0;
    std::vector<IndexSlot> index_;
    std::uint32_t index_used_ = 0;
    std::function<void()> grow_hook_;
    mutable std::shared_mutex mutex_;
};

} // namespace pentimento::fabric

#endif // PENTIMENTO_FABRIC_ELEMENT_SLAB_HPP
