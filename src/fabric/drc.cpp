#include "fabric/drc.hpp"

#include <unordered_map>
#include <unordered_set>

namespace pentimento::fabric {

namespace {

/**
 * Iterative three-colour DFS over the combinational graph; returns a
 * node on a cycle, or empty when acyclic.
 */
std::string
findCombinationalLoop(
    const std::vector<std::pair<std::string, std::string>> &edges)
{
    std::unordered_map<std::string, std::vector<std::string>> adj;
    for (const auto &[from, to] : edges) {
        adj[from].push_back(to);
        adj.try_emplace(to);
    }
    enum class Colour { White, Grey, Black };
    std::unordered_map<std::string, Colour> colour;
    for (const auto &[node, _] : adj) {
        colour[node] = Colour::White;
    }
    for (const auto &[start, _] : adj) {
        if (colour[start] != Colour::White) {
            continue;
        }
        // Explicit stack of (node, next-child-index) frames.
        std::vector<std::pair<std::string, std::size_t>> stack;
        stack.emplace_back(start, 0);
        colour[start] = Colour::Grey;
        while (!stack.empty()) {
            auto &[node, child] = stack.back();
            const auto &next = adj[node];
            if (child < next.size()) {
                const std::string &target = next[child++];
                if (colour[target] == Colour::Grey) {
                    return target;
                }
                if (colour[target] == Colour::White) {
                    colour[target] = Colour::Grey;
                    stack.emplace_back(target, 0);
                }
            } else {
                colour[node] = Colour::Black;
                stack.pop_back();
            }
        }
    }
    return {};
}

} // namespace

DesignRuleChecker::DesignRuleChecker(double max_power_w)
    : max_power_w_(max_power_w)
{
}

std::vector<DrcViolation>
DesignRuleChecker::check(const Design &design) const
{
    std::vector<DrcViolation> violations;

    const std::string loop_node =
        findCombinationalLoop(design.combinationalEdges());
    if (!loop_node.empty()) {
        violations.push_back(
            {"combinational-loop",
             "self-oscillating structure through '" + loop_node +
                 "' (ring oscillators are rejected by the platform)"});
    }

    if (design.powerW() > max_power_w_) {
        violations.push_back(
            {"power-cap", "design draws " +
                              std::to_string(design.powerW()) +
                              " W, cap is " +
                              std::to_string(max_power_w_) + " W"});
    }

    return violations;
}

bool
DesignRuleChecker::accepts(const Design &design) const
{
    return check(design).empty();
}

} // namespace pentimento::fabric
