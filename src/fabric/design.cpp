#include "fabric/design.hpp"

#include "util/logging.hpp"

namespace pentimento::fabric {

Design::Design(std::string name) : name_(std::move(name))
{
    if (name_.empty()) {
        util::fatal("Design: empty name");
    }
}

void
Design::setPowerW(double watts)
{
    if (watts < 0.0) {
        util::fatal("Design::setPowerW: negative power");
    }
    power_w_ = watts;
}

void
Design::setElementActivity(ResourceId id, ElementActivity activity)
{
    ++revision_;
    if (activity.kind == Activity::Unused) {
        if (activity_.erase(id.key()) != 0) {
            ++keyset_revision_;
        }
        return;
    }
    const std::size_t before = activity_.size();
    activity_[id.key()] = activity;
    if (activity_.size() != before) {
        ++keyset_revision_;
    }
}

void
Design::reserveActivity(std::size_t n)
{
    // A reserve can rehash and permute the map's iteration order, so
    // it invalidates cached resolutions exactly like a key-set edit —
    // the values-only refresh walk pairs activities positionally and
    // must never see a reordered map.
    ++keyset_revision_;
    activity_.reserve(n);
}

void
Design::setRouteValue(const RouteSpec &spec, bool value)
{
    ++revision_;
    const ElementActivity a{value ? Activity::Hold1 : Activity::Hold0,
                            0.5};
    const std::size_t before = activity_.size();
    for (const ResourceId &id : spec.elements) {
        activity_[id.key()] = a;
    }
    if (activity_.size() != before) {
        ++keyset_revision_;
    }
}

void
Design::setRouteToggling(const RouteSpec &spec, double duty_one)
{
    if (duty_one < 0.0 || duty_one > 1.0) {
        util::fatal("Design::setRouteToggling: duty outside [0,1]");
    }
    ++revision_;
    const ElementActivity a{Activity::Toggle, duty_one};
    const std::size_t before = activity_.size();
    for (const ResourceId &id : spec.elements) {
        activity_[id.key()] = a;
    }
    if (activity_.size() != before) {
        ++keyset_revision_;
    }
}

void
Design::clearRoute(const RouteSpec &spec)
{
    ++revision_;
    const std::size_t before = activity_.size();
    for (const ResourceId &id : spec.elements) {
        activity_.erase(id.key());
    }
    if (activity_.size() != before) {
        ++keyset_revision_;
    }
}

ElementActivity
Design::activityFor(ResourceId id) const
{
    const auto it = activity_.find(id.key());
    if (it == activity_.end()) {
        return ElementActivity{};
    }
    return it->second;
}

void
Design::setBramInit(ResourceId id, std::uint64_t word)
{
    bram_init_[id.key()] = word;
    ++bram_revision_;
}

void
Design::addCombinationalEdge(const std::string &from,
                             const std::string &to)
{
    edges_.emplace_back(from, to);
}

TargetDesign::TargetDesign(std::string name,
                           const std::vector<RouteSpec> &routes,
                           const std::vector<bool> &burn_values,
                           const ArithmeticHeavyConfig &arith)
    : Design(std::move(name)), routes_(routes), burn_values_(burn_values),
      arith_(arith)
{
    if (routes_.size() != burn_values_.size()) {
        util::fatal("TargetDesign: routes/burn value count mismatch");
    }
    std::size_t budget = static_cast<std::size_t>(
        arith_.dsp_count < 0 ? 0 : arith_.dsp_count);
    for (const RouteSpec &route : routes_) {
        budget += route.size();
    }
    reserveActivity(budget);
    for (std::size_t i = 0; i < routes_.size(); ++i) {
        setRouteValue(routes_[i], burn_values_[i]);
    }
    // The Arithmetic Heavy datapath: fused multiply-add arrays around
    // the routes under test (paper Figure 4). We model its aging
    // contribution abstractly as DSP-site toggle activity and, more
    // importantly for the experiments, its heat.
    for (int d = 0; d < arith_.dsp_count; ++d) {
        ResourceId id;
        id.type = ResourceType::Dsp;
        id.tile_x = static_cast<std::uint16_t>(d & 0xff);
        id.tile_y = static_cast<std::uint16_t>((d >> 8) & 0xff);
        id.index = static_cast<std::uint16_t>(d >> 16);
        setElementActivity(id,
                           ElementActivity{Activity::Toggle,
                                           arith_.duty_one});
        // A pipelined FMA is feed-forward: declare a few arcs so the
        // DRC sees a realistic, loop-free netlist.
        if (d < 8) {
            addCombinationalEdge("fma" + std::to_string(d) + "/mul",
                                 "fma" + std::to_string(d) + "/add");
        }
    }
    setPowerW(arith_.base_watts + arith_.dsp_count * arith_.watts_per_dsp);
}

bool
TargetDesign::burnValue(std::size_t i) const
{
    if (i >= burn_values_.size()) {
        util::fatal("TargetDesign::burnValue: index out of range");
    }
    return burn_values_[i];
}

const RouteSpec &
TargetDesign::routeSpec(std::size_t i) const
{
    if (i >= routes_.size()) {
        util::fatal("TargetDesign::routeSpec: index out of range");
    }
    return routes_[i];
}

void
TargetDesign::relocateRoute(std::size_t i, RouteSpec new_spec)
{
    if (i >= routes_.size()) {
        util::fatal("TargetDesign::relocateRoute: index out of range");
    }
    clearRoute(routes_[i]);
    routes_[i] = std::move(new_spec);
    setRouteValue(routes_[i], burn_values_[i]);
}

void
TargetDesign::setBurnValue(std::size_t i, bool value)
{
    if (i >= routes_.size()) {
        util::fatal("TargetDesign::setBurnValue: index out of range");
    }
    burn_values_[i] = value;
    setRouteValue(routes_[i], value);
}

} // namespace pentimento::fabric
