/**
 * @file
 * Design rule checking.
 *
 * Cloud providers vet tenant bitstreams: AWS rejects self-oscillating
 * circuits (combinational loops, the substrate of ring-oscillator
 * sensors) and enforces a power cap (85 W on F1). The paper's TDC
 * passes these checks — a key advantage over RO sensors (§7) — and
 * the ablation_sensor bench demonstrates the RO baseline being
 * rejected here.
 */

#ifndef PENTIMENTO_FABRIC_DRC_HPP
#define PENTIMENTO_FABRIC_DRC_HPP

#include <string>
#include <vector>

#include "fabric/design.hpp"

namespace pentimento::fabric {

/** One rule violation found by the checker. */
struct DrcViolation
{
    std::string rule;   ///< e.g. "combinational-loop", "power-cap"
    std::string detail; ///< human-readable description
};

/**
 * Provider-side design rule checker.
 */
class DesignRuleChecker
{
  public:
    /** @param max_power_w platform power cap (AWS F1: 85 W) */
    explicit DesignRuleChecker(double max_power_w = 85.0);

    /** Run all rules; an empty result means the design is accepted. */
    std::vector<DrcViolation> check(const Design &design) const;

    /** Convenience: true when check() returns no violations. */
    bool accepts(const Design &design) const;

  private:
    double max_power_w_;
};

} // namespace pentimento::fabric

#endif // PENTIMENTO_FABRIC_DRC_HPP
